package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: state
// aggregation, steady-state solver selection, uniformization truncation
// accuracy, fluid integrator choice, and simulation-vs-numerical analysis.
// Run with: go test -bench=Ablation -benchmem

import (
	"strings"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/gpepa"
	"repro/internal/numeric/ode"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
	"repro/internal/pepa/sim"

	"repro/internal/core"
)

// replicatedToggles builds n interleaved copies of a 2-state component.
func replicatedToggles(n int) *pepa.Model {
	var b strings.Builder
	b.WriteString("C = (up, 1).D; D = (down, 2).C;\n")
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "C"
	}
	b.WriteString(strings.Join(parts, " || "))
	return pepa.MustParse(b.String())
}

// BenchmarkAblationAggregation compares exploration with and without
// symmetric-component lumping: 2^10 = 1024 states vs 11.
func BenchmarkAblationAggregation(b *testing.B) {
	m := replicatedToggles(10)
	b.Run("off-1024-states", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ss, err := derive.Explore(m, derive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if ss.NumStates() != 1024 {
				b.Fatalf("states = %d", ss.NumStates())
			}
		}
	})
	b.Run("on-11-states", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ss, err := derive.Explore(m, derive.Options{Aggregate: true})
			if err != nil {
				b.Fatal(err)
			}
			if ss.NumStates() != 11 {
				b.Fatalf("states = %d", ss.NumStates())
			}
		}
	})
}

// BenchmarkAblationSteadySolver compares the iterative Gauss–Seidel path
// against the dense LU fallback on a 150-state birth–death chain.
func BenchmarkAblationSteadySolver(b *testing.B) {
	k := 150
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = 1
		rates[[2]int{i + 1, i}] = 2
	}
	c := ctmc.NewChain(k+1, rates)
	b.Run("gauss-seidel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.SteadyState(ctmc.SteadyStateOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.SteadyState(ctmc.SteadyStateOptions{DenseOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationUniformizationEps shows the cost of tighter truncation
// accuracy in the transient solver.
func BenchmarkAblationUniformizationEps(b *testing.B) {
	k := 80
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = 2
		rates[[2]int{i + 1, i}] = 1
	}
	c := ctmc.NewChain(k+1, rates)
	p0 := c.PointMass(0)
	for _, eps := range []float64{1e-6, 1e-10, 1e-14} {
		name := "eps-1e-6"
		switch eps {
		case 1e-10:
			name = "eps-1e-10"
		case 1e-14:
			name = "eps-1e-14"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Transient(p0, 20, eps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFluidIntegrator compares fixed-step RK4 against
// adaptive Dormand–Prince on the client/server fluid ODEs at comparable
// accuracy.
func BenchmarkAblationFluidIntegrator(b *testing.B) {
	m := gpepa.MustParse(core.ClientServerGPEPAModel)
	sys, err := gpepa.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	f := func(t float64, y, dst []float64) { sys.Derivative(y, dst) }
	grid := ode.Grid(0, 50, 50)
	b.Run("rk4-fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ode.RK4(f, sys.X0, grid, 0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dp45-adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ode.DormandPrince(f, sys.X0, grid, ode.DormandPrinceOptions{RelTol: 1e-8, AbsTol: 1e-10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAnalysisMode compares exact numerical solution against
// stochastic simulation for a throughput estimate on the same model.
func BenchmarkAblationAnalysisMode(b *testing.B) {
	src := "mu = 3.0; lambda = 2.0; phi = 0.2; rho = 1.0;\n" +
		"Proc = (serve, mu).Proc + (fault, phi).Down;\n" +
		"Down = (repair, rho).Proc;\n" +
		"Jobs = (serve, T).Jobs + (arrive, lambda).Jobs;\n" +
		"Proc <serve> Jobs"
	m := pepa.MustParse(src)
	b.Run("numeric-steady-state", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ss, err := derive.Explore(m, derive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			chain := ctmc.FromStateSpace(ss)
			pi, err := chain.SteadyState(ctmc.SteadyStateOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := chain.Throughput(pi, "serve"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulation-t1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(m, sim.Options{Horizon: 1000, Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			_ = res.Throughput("serve")
		}
	})
}

// BenchmarkAblationMeanHittingTime compares the direct linear-system mean
// against integrating the passage-time CDF.
func BenchmarkAblationMeanHittingTime(b *testing.B) {
	c := ctmc.NewChain(4, map[[2]int]float64{
		{0, 1}: 1.5, {1, 0}: 0.5, {1, 2}: 2, {2, 3}: 0.8,
	})
	b.Run("direct-linear-solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.MeanTimeToAbsorption([]int{3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cdf-integration", func(b *testing.B) {
		times := make([]float64, 1001)
		for i := range times {
			times[i] = float64(i) * 0.04
		}
		for i := 0; i < b.N; i++ {
			cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{3}, times, 1e-10)
			if err != nil {
				b.Fatal(err)
			}
			_ = cdf.Mean()
		}
	})
}
