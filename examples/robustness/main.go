// Robustness: the ISPDC'18 replication of §III — Table I, the activity
// diagram of machine M3 (Fig 2), the finishing-time CDFs of machine M1
// under Mapping A and Mapping B (Figs 3 and 4), and the makespan-based
// robustness comparison of the two mappings.
package main

import (
	"fmt"
	"log"

	"repro/internal/robustness"
)

func main() {
	if err := robustness.CheckTableI(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I — mappings of applications to machines")
	fmt.Println(robustness.FormatTableI())

	s := robustness.NewStudy()

	fmt.Println("Fig 2 — activity diagram of machine M3, Mapping A")
	txt, err := s.ActivityText(robustness.MappingA, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(txt)

	times := make([]float64, 61)
	for i := range times {
		times[i] = float64(i) * 10
	}
	for _, spec := range []struct {
		fig     string
		mapping string
	}{
		{"Fig 3", robustness.MappingA},
		{"Fig 4", robustness.MappingB},
	} {
		cdf, err := s.FinishingCDF(spec.mapping, 0, times)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — finishing-time CDF of M1, Mapping %s\n", spec.fig, spec.mapping)
		fmt.Println("t\tP(T<=t)")
		for i := 0; i < len(times); i += 6 {
			fmt.Printf("%.0f\t%.6f\n", cdf.Times[i], cdf.Probs[i])
		}
		fmt.Printf("median %.1f  mean %.1f\n\n", cdf.Quantile(0.5), cdf.Mean())
	}

	// Robustness metric: probability each mapping meets a deadline.
	for _, tau := range []float64{200, 300, 400} {
		ra, err := s.Robustness(robustness.MappingA, tau, 40)
		if err != nil {
			log.Fatal(err)
		}
		rb, err := s.Robustness(robustness.MappingB, tau, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P(makespan <= %.0f): Mapping A %.4f, Mapping B %.4f\n", tau, ra, rb)
	}

	// §IV: robustness under unpredictable ETC variation — which static
	// allocation should be deployed when execution times are uncertain?
	fmt.Println("\nrobustness under ±20% ETC perturbation (deadline 300):")
	a, b, winner, err := s.CompareMappings(300, 0.2, 8, 2019, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mapping A: nominal %.4f, worst %.4f, mean %.4f, best %.4f\n",
		a.Nominal, a.Worst, a.Mean, a.Best)
	fmt.Printf("Mapping B: nominal %.4f, worst %.4f, mean %.4f, best %.4f\n",
		b.Nominal, b.Worst, b.Mean, b.Best)
	fmt.Printf("more robust allocation (worst case): Mapping %s\n", winner)
}
