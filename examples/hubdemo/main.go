// Hubdemo: the Fig 6 workflow — build all three PEPA-family containers on
// the CentOS build host, push them to a hub, list the collection, and pull
// each image with digest verification on every host profile.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hostenv"
	"repro/internal/hub"
)

func main() {
	fw := core.New()
	builder, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		log.Fatal(err)
	}
	if err := builder.InstallSingularity(); err != nil {
		log.Fatal(err)
	}
	builds, err := fw.BuildAll(builder)
	if err != nil {
		log.Fatal(err)
	}

	srv := hub.NewServer(hub.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client := hub.NewClient("http://" + addr)

	digests, err := fw.PushAll(client, builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub at http://%s\n\ncollection %q:\n", addr, fw.Collection)
	entries, err := client.List(fw.Collection)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %s:%s  %s  %d bytes\n", e.Container, e.Tag, e.Digest[:19], e.Size)
	}

	fmt.Println("\npulling every container on every host profile:")
	for _, name := range hostenv.Names() {
		host, err := hostenv.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := host.InstallSingularity(); err != nil {
			log.Fatal(err)
		}
		for _, tool := range core.Tools() {
			_, d, err := client.Pull(fw.Collection, string(tool), "latest", digests[tool])
			if err != nil {
				log.Fatalf("pull %s on %s: %v", tool, name, err)
			}
			fmt.Printf("  %-24s %-8s pulled, digest verified %s...\n", name, tool, d[:19])
		}
	}
	fmt.Println("\nall pulls verified — the containers are bit-identical everywhere.")
}
