// Biokinetics: the Bio-PEPA users' manual enzyme-kinetics examples used to
// validate the Bio-PEPA container — mass-action enzyme catalysis with and
// without a competitive inhibitor, analysed by ODE and by exact stochastic
// simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/biopepa"
	"repro/internal/core"
)

func main() {
	plain, err := biopepa.Parse(core.EnzymeBioPEPAModel)
	if err != nil {
		log.Fatal(err)
	}
	inhib, err := biopepa.Parse(core.InhibitedBioPEPAModel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("enzyme kinetics: E + S <-> ES -> E + P (mass action)")
	res, err := plain.SolveODE(200, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t\tS\tES\tP")
	s, _ := res.Series("S")
	es, _ := res.Series("ES")
	p, _ := res.Series("P")
	for k := range res.Times {
		if k%4 == 0 {
			fmt.Printf("%.0f\t%.3f\t%.3f\t%.3f\n", res.Times[k], s[k], es[k], p[k])
		}
	}

	// Inhibitor comparison at a fixed time.
	ri, err := inhib.SolveODE(200, 20)
	if err != nil {
		log.Fatal(err)
	}
	pi, _ := ri.Series("P")
	fmt.Printf("\nproduct at t=200: plain %.2f vs inhibited %.2f (inhibitor slows catalysis)\n",
		p[len(p)-1], pi[len(pi)-1])

	// Stochastic view: the ODE is the large-count limit of the SSA mean.
	ssa, err := plain.MeanSSA(200, 20, 20, 7)
	if err != nil {
		log.Fatal(err)
	}
	ps, _ := ssa.Series("P")
	fmt.Println("\nODE vs mean of 20 SSA runs (product):")
	fmt.Println("t\tODE\tSSA")
	for k := 0; k <= 20; k += 4 {
		fmt.Printf("%.0f\t%.2f\t%.2f\n", res.Times[k], p[k], ps[k])
	}

	// Small-population CTMC: extinction of a 3-molecule decay chain.
	decay, err := biopepa.Parse("k = 1.0;\nkineticLawOf decay : fMA(k);\nS = (decay, 1) <<;\nS[3]\n")
	if err != nil {
		log.Fatal(err)
	}
	space, err := decay.BuildCTMC(biopepa.CTMCOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscrete CTMC of S[3] decay: %d states, generator nnz %d\n",
		len(space.States), space.Chain.Q.NNZ())
}
