// Sweep: the workbench's experimentation facility — sensitivity of
// steady-state measures to a rate constant, the analysis style used by the
// robustness study the paper replicates. Sweeps the fault rate of a
// processor/jobs system and reports throughput, availability (utilization
// of the up state), and the median recovery passage time.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/pepa"
)

const model = `
mu     = 3.0;   // service rate
lambda = 2.0;   // arrival rate
phi    = 0.1;   // fault rate   (swept)
rho    = 1.0;   // repair rate

Proc      = (serve, mu).Proc + (fault, phi).ProcDown;
ProcDown  = (repair, rho).Proc;
Jobs      = (serve, T).Jobs + (arrive, lambda).Jobs;

Proc <serve> Jobs
`

func main() {
	m, err := pepa.Parse(model)
	if err != nil {
		log.Fatal(err)
	}
	values := experiment.Geomspace(0.01, 2, 9)

	tput, err := experiment.RateSweep(m, "phi", values, experiment.Throughput{Action: "serve"})
	if err != nil {
		log.Fatal(err)
	}
	avail, err := experiment.RateSweep(m, "phi", values, experiment.Utilization{Pattern: "ProcDown"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault-rate sensitivity (phi swept geometrically):")
	fmt.Println("phi\tserve-throughput\tP(down)")
	for i := range values {
		fmt.Printf("%.3f\t%.4f\t%.4f\n", values[i], tput.Points[i].Measure, avail.Points[i].Measure)
	}

	// As faults become more frequent, throughput must fall monotonically
	// and downtime must rise — the shape the robustness analyses rely on.
	for i := 1; i < len(values); i++ {
		if tput.Points[i].Measure >= tput.Points[i-1].Measure {
			log.Fatalf("throughput not monotone at phi=%g", values[i])
		}
	}
	fmt.Println("\nthroughput is strictly decreasing in the fault rate — as expected.")

	// Repair-rate sweep on a passage measure: median time for a down
	// processor to be serving again.
	med, err := experiment.RateSweep(m, "rho", experiment.Linspace(0.25, 2, 8),
		experiment.PassageQuantile{Pattern: "ProcDown", Quantile: 0.5, Horizon: 60, Samples: 600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmedian time to first fault vs repair rate (TSV):")
	fmt.Print(med.TSV())
}
