// Quickstart: parse a PEPA model, solve it natively, then build the PEPA
// container, run the same model inside it, and check the outputs match —
// the paper's whole workflow in one file.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/hostenv"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

const model = `
// A tiny processor/jobs system.
lambda = 2.0;
mu     = 3.0;
phi    = 0.1;
rho    = 1.0;

Proc      = (serve, mu).Proc + (fault, phi).ProcDown;
ProcDown  = (repair, rho).Proc;
Jobs      = (serve, T).Jobs + (arrive, lambda).Jobs;

Proc <serve> Jobs
`

func main() {
	// --- 1. Native analysis with the library API. ---
	m, err := pepa.Parse(model)
	if err != nil {
		log.Fatal(err)
	}
	if res := pepa.Check(m); res.Err() != nil {
		log.Fatal(res.Err())
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state space: %d states, %d transitions\n", ss.NumStates(), ss.NumTransitions())

	chain := ctmc.FromStateSpace(ss)
	pi, err := chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for s, p := range pi {
		fmt.Printf("  pi[%s] = %.6f\n", ss.States[s], p)
	}
	tput, err := chain.Throughput(pi, "serve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serve throughput: %.4f jobs/unit time\n\n", tput)

	// --- 2. The same model through the containerized solver. ---
	fw := core.New()
	host, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		log.Fatal(err)
	}
	if err := host.InstallSingularity(); err != nil {
		log.Fatal(err)
	}
	build, err := fw.Build(core.ToolPEPA, host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built container %s\n  digest %s\n", build.Image.Ref(), build.Digest)

	rep, err := fw.Validate(core.ToolPEPA, host, build.Image, "quickstart.pepa", model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containerized output identical to native: %v\n", rep.Match)
	fmt.Println("--- container output ---")
	fmt.Print(rep.ContainerOut)
}
