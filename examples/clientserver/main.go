// Clientserver: the Fig 5 workload — GPAnalyser's client/server
// scalability model — swept over server-pool sizes with the fluid engine,
// plus a fluid-vs-stochastic cross check.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/gpepa"
)

const template = `
rr = 2.0;
rt = 0.27;
rs = 4.0;
rb = 1.0;

Client = (request, rr).Client_think;
Client_think = (think, rt).Client;

Server = (request, rs).Server_log;
Server_log = (log, rb).Server;

Clients{Client[100]} <request> Servers{Server[NSERVERS]}
`

func build(servers int) *gpepa.FluidSystem {
	src := strings.Replace(template, "NSERVERS", fmt.Sprint(servers), 1)
	m, err := gpepa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gpepa.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	fmt.Println("client/server scalability (100 clients, varying servers)")
	fmt.Println("servers\trequest-throughput\tclients-waiting\tserver-utilization")
	for _, servers := range []int{2, 5, 10, 20, 40, 80} {
		sys := build(servers)
		res, err := sys.Solve(300, 60, gpepa.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		final := res.Final()
		tp := sys.ActionThroughput("request", final)
		waiting, err := res.Series("Clients", "Client")
		if err != nil {
			log.Fatal(err)
		}
		busy, err := res.Series("Servers", "Server_log")
		if err != nil {
			log.Fatal(err)
		}
		util := busy[len(busy)-1] / float64(servers)
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\n", servers, tp, waiting[len(waiting)-1], util)
	}

	// The same sweep through the ScalabilitySweep API, with automatic
	// saturation (knee) detection.
	m, err := gpepa.Parse(strings.Replace(template, "NSERVERS", "10", 1))
	if err != nil {
		log.Fatal(err)
	}
	counts := []float64{2, 5, 10, 20, 40, 80, 160}
	points, err := gpepa.ScalabilitySweep(m, "Servers", "Server", counts, 300, "request")
	if err != nil {
		log.Fatal(err)
	}
	if knee := gpepa.Saturation(points, 0.01); knee >= 0 {
		fmt.Printf("\nsaturation: adding servers past %.0f no longer improves throughput (%.2f req/s — clients are the bottleneck)\n",
			points[knee].Count, points[knee].Throughput)
	}

	// Cross-check the fluid limit against the mean of exact stochastic
	// trajectories for the 10-server configuration.
	sys := build(10)
	fluid, err := sys.Solve(30, 30, gpepa.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mean, err := sys.MeanOfSimulations(30, 30, 25, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfluid vs stochastic mean (clients thinking, 10 servers):")
	fmt.Println("t\tfluid\tsim-mean")
	ff, _ := fluid.Series("Clients", "Client_think")
	sm, _ := mean.Series("Clients", "Client_think")
	for k := 0; k <= 30; k += 5 {
		fmt.Printf("%.0f\t%.3f\t%.3f\n", fluid.Times[k], ff[k], sm[k])
	}
}
