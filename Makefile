# Container-based reproducibility framework for stochastic process algebra.
# Stdlib-only Go; no network access needed for any target.

GO ?= go

.PHONY: all build vet test race bench bench-snapshot bench-compare bench-baseline bench-scaling bench-sweep bench-build repro chaos chaos-cancel chaos-hub chaos-cluster conformance conformance-deep fuzz fuzz-smoke goldens clean

# Solve-path benchmarks recorded in BENCH_baseline.json (docs/PERFORMANCE.md).
# Which of them benchcmp actually gates is its -gate regex; the rest are
# reported with a baseline reference but never fail the build.
# -benchmem is part of the contract: benchcmp compares allocs/op alongside
# ns/op, which catches scratch-buffer regressions timing noise absorbs.
BENCH_GATED = ^(BenchmarkTransientSeries|BenchmarkTransientWorkers|BenchmarkFirstPassageCDF|BenchmarkToCSR|BenchmarkVecMulParallel|BenchmarkAssemblyReuse|BenchmarkPerturbationSweep|BenchmarkSteadyStateStiff)$$
BENCH_PKGS  = ./internal/ctmc ./internal/numeric/sparse ./internal/robustness

# Sweep-throughput benchmarks (ISSUE 9): assembly-plan reuse, the family-
# backed perturbation sweep, and the stiff steady-state ladder. Reported
# against the baseline without gating — the non-blocking CI lane.
BENCH_SWEEP = ^(BenchmarkAssemblyReuse|BenchmarkPerturbationSweep|BenchmarkSteadyStateStiff)$$

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations and parallel scaling.
bench:
	$(GO) test -bench=. -benchmem ./...

# Tier-1 benchmarks plus an instrumented full repro run whose metrics and
# span snapshot lands in BENCH_<date>.json (see docs/OBSERVABILITY.md).
bench-snapshot:
	$(GO) test -bench=. -benchtime=1x ./internal/ctmc ./internal/hub ./internal/pepa/... ./internal/gpepa
	$(GO) run ./cmd/repro -metrics-out BENCH_$$(date +%Y%m%d).json > /dev/null
	@echo "wrote BENCH_$$(date +%Y%m%d).json"

# Compare the solve-path benchmarks against the committed baseline; fails
# when a gated benchmark is >20% slower or >25% more allocs/op
# (docs/PERFORMANCE.md).
bench-compare:
	$(GO) test -run XXX -bench '$(BENCH_GATED)' -benchmem -benchtime 10x -count 3 $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_baseline.json -out bench_compare.json

# Re-record BENCH_baseline.json after an intentional performance change.
bench-baseline:
	$(GO) test -run XXX -bench '$(BENCH_GATED)' -benchmem -benchtime 10x -count 3 $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_baseline.json -update -note "make bench-baseline"

# Short-mode parallel-scaling sweep: run only the workers=N families and
# fail when any worker count is slower than workers=1 beyond the scaling
# threshold, within this run (no committed baseline involved, so the gate
# is portable across machines; docs/PERFORMANCE.md).
bench-scaling:
	$(GO) test -run XXX -bench '^BenchmarkTransientWorkers$$' -benchmem -benchtime 10x -count 3 ./internal/ctmc \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_baseline.json -gate '^$$' -out bench_scaling.json

# Sweep-throughput lane (docs/PERFORMANCE.md): assembly-plan reuse vs cold
# CSR assembly, the family-backed perturbation sweep vs per-sample
# re-derivation, and the stiff steady-state ladder with its Krylov rung.
# Non-blocking: everything is reported against the baseline but nothing is
# gated ('-gate ^$'), so CI surfaces drift without failing the build while
# the cache's hit pattern still settles across machine profiles.
bench-sweep:
	$(GO) test -run XXX -bench '$(BENCH_SWEEP)' -benchmem -benchtime 10x -count 3 $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_baseline.json -gate '^$$' -out bench_sweep.json

# Staged-build benchmarks (docs/PERFORMANCE.md): cold (all stages execute)
# vs warm (only the edited last stage executes). Informational — new
# families are reported against the recorded baseline without gating, and
# the warm/cold ratio itself is asserted by the benchmarks' stage counts.
bench-build:
	$(GO) test -run XXX -bench '^BenchmarkBuildStaged' -benchtime 3x -count 3 ./internal/runtime \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_baseline.json -gate '^$$' -out bench_build.json

# Regenerate every table and figure of the paper into ./out.
repro:
	$(GO) run ./cmd/repro -outdir out

# Chaos suite: the fault-injection round trips (fixed seeds, so failures
# replay exactly), then the Fig 6 pulls under a seeded fault plan.
chaos:
	$(GO) test -count=1 -run 'TestChaos|TestBreaker|TestClassify|TestValidationMatrix|TestPushAllPartial|TestFormatMatrixPartial' ./internal/hub ./internal/core ./cmd/repro
	$(GO) test -count=1 ./internal/faultinject
	$(GO) run ./cmd/repro -only chaos -chaos-seed 42

# Cancellation/checkpoint chaos lane (docs/RESILIENCE.md): interrupt
# studies and ensembles mid-flight, resume them from their checkpoints,
# and drain the hub under slow in-flight requests — all under -race.
chaos-cancel:
	$(GO) test -race -count=1 \
		-run 'TestStudy|TestEnsemble|TestMeanOfSim|TestShutdown|TestSave|TestLoad' \
		./internal/robustness ./internal/pepa/sim ./internal/gpepa ./internal/hub
	$(GO) test -race -count=1 ./internal/par ./internal/checkpoint ./internal/fsatomic ./internal/sigctx ./internal/runctx

# Durability/self-healing chaos lane (docs/RESILIENCE.md): WAL crash-point
# recovery, resumable chunked pulls under seeded truncation, scrub/
# quarantine/repair, and admission-control shedding — all under -race.
# Fault plans and jitter are seeded, so failures replay exactly.
chaos-hub:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestWAL|TestScrub|TestRepush|TestQuarantine|TestIdempotentPut|TestLoadReplays|TestPull|TestServeBlobRange|TestParseRange|TestChunkDigests|TestAdmission|TestTokenBucket|TestClientHonorsRetryAfter|TestClientThrottleCap' \
		./internal/hub
	$(GO) test -race -count=1 ./internal/fsatomic ./internal/faultinject

# Replicated-cluster chaos lane (docs/RESILIENCE.md): rendezvous
# placement, per-peer failover, hinted handoff, read repair after
# bit-rot, rebalancing on join/leave, per-host breaker scoping, and the
# hinted-handoff journal fuzz seeds — all under -race. Fault plans are
# seeded, so failures replay exactly.
chaos-cluster:
	$(GO) test -race -count=1 ./internal/hub/cluster
	$(GO) test -race -count=1 \
		-run 'TestBreakerForScopedPerHost|TestBreakerChaosFailingPeerDoesNotRejectHealthyPeer|TestThrottleFailover|TestHint|FuzzHintJournalRecords' \
		./internal/hub
	$(GO) test -race -count=1 -run 'TestCluster|TestServePeerFaultTargeting' ./cmd/schub

# Cross-solver conformance sweep (see docs/TESTING.md). The default slice
# matches CI; the deep sweep widens the model window and runs the slow
# fluid-vs-SSA ensemble on every model index.
conformance:
	$(GO) test -count=1 ./internal/conformance -conformance.n=25 -conformance.seed=1

conformance-deep:
	$(GO) test -count=1 -timeout 30m ./internal/conformance -conformance.n=200 -conformance.seed=1 -conformance.deep

# Run each fuzz target briefly (seeds always run under plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/pepa
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/biopepa
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/gpepa
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/recipe
	$(GO) test -fuzz=FuzzRun -fuzztime=30s ./internal/shellenv
	$(GO) test -fuzz=FuzzUnmarshalTar -fuzztime=30s ./internal/vfs
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/image
	$(GO) test -fuzz=FuzzHintJournalRecords -fuzztime=30s ./internal/hub

# CI smoke lane: a few seconds per target over the checked-in seed corpora,
# enough to catch freshly introduced panics without stalling the pipeline.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=5s ./internal/pepa
	$(GO) test -fuzz=FuzzParse -fuzztime=5s ./internal/gpepa
	$(GO) test -fuzz=FuzzUnmarshalTar -fuzztime=5s ./internal/vfs
	$(GO) test -fuzz=FuzzHintJournalRecords -fuzztime=5s ./internal/hub

# Rewrite the golden experiment outputs after an intentional change.
goldens:
	$(GO) test -run TestGolden -update .

clean:
	rm -rf out
	$(GO) clean -testcache
