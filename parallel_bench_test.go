package repro

// Parallel-scaling benchmarks: the hpc-parallel substance of the
// toolchain. Every parallel path is bit-identical to its sequential
// counterpart (results are reduced in index order), so these benches
// measure pure speedup. Run with: go test -bench=Parallel -cpu=1,4,8
import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gpepa"
	"repro/internal/hostenv"
	"repro/internal/numeric/sparse"
	"repro/internal/pepa"
	"repro/internal/pepa/sim"
)

// BenchmarkParallelSpMV measures the row-partitioned sparse
// matrix-vector product against the sequential kernel.
func BenchmarkParallelSpMV(b *testing.B) {
	n := 400000
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	m := coo.ToCSR()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecTo(y, x)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecToParallel(y, x, 0)
		}
	})
}

// BenchmarkParallelEnsemble measures PEPA simulation ensembles with one
// worker versus all cores.
func BenchmarkParallelEnsemble(b *testing.B) {
	m := pepa.MustParse("P = (work, 2).P1; P1 = (rest, 1).P; P")
	opts := sim.Options{Horizon: 2000, Seed: 11}
	b.Run("workers-1", func(b *testing.B) {
		o := opts
		o.Workers = 1
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunEnsemble(m, o, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers-all", func(b *testing.B) {
		o := opts
		o.Workers = 0
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunEnsemble(m, o, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSweep measures the rate-sweep fan-out (each point
// derives and solves its own CTMC).
func BenchmarkParallelSweep(b *testing.B) {
	m := pepa.MustParse(core.SimplePEPAModel)
	values := experiment.Linspace(0.5, 4, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RateSweep(m, "mu", values, experiment.Throughput{Action: "serve"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelGPEPAMean measures the fluid-vs-simulation validation
// workload (25 stochastic replications of the client/server model).
func BenchmarkParallelGPEPAMean(b *testing.B) {
	m := gpepa.MustParse(core.ClientServerGPEPAModel)
	sys, err := gpepa.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.MeanOfSimulations(20, 20, 25, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBuildAll measures the three-container build fan-out on
// the 20-core build host profile (cache disabled: cold builds each time).
func BenchmarkParallelBuildAll(b *testing.B) {
	fw := core.New()
	fw.Engine.CacheDisabled = true
	host, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		b.Fatal(err)
	}
	if err := host.InstallSingularity(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.BuildAll(host); err != nil {
			b.Fatal(err)
		}
	}
}
