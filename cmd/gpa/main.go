// Command gpa is the native GPEPA fluid analyser (the GPAnalyser
// stand-in): mean-field ODE analysis and exact stochastic simulation of
// grouped PEPA models.
//
// Usage:
//
//	gpa <model.gpepa> -analysis fluid -horizon 50 -n 100
//	gpa <model.gpepa> -analysis sim -horizon 50 -n 100 -seed 1 -reps 20
//	gpa <model.gpepa> -analysis sweep -sweep-group Servers -sweep-component Server \
//	    -sweep-counts 5,10,20,40 -horizon 300 -sweep-action request
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/gpepa"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpa:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("gpa", flag.ContinueOnError)
	analysis := fs.String("analysis", "fluid", "fluid or sim")
	horizon := fs.Float64("horizon", 50, "horizon")
	n := fs.Int("n", 100, "output intervals")
	seed := fs.Uint64("seed", 1, "simulation seed")
	reps := fs.Int("reps", 1, "simulation replications")
	sweepGroup := fs.String("sweep-group", "", "sweep: group label")
	sweepComponent := fs.String("sweep-component", "", "sweep: component name")
	sweepCounts := fs.String("sweep-counts", "", "sweep: comma-separated populations")
	sweepAction := fs.String("sweep-action", "", "sweep: action whose throughput is measured")
	workers := fs.Int("workers", 0, "bound the sweep-point fan-out (0 = all cores, 1 = sequential); output is identical for any value")
	timeout := fs.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); SIGINT/SIGTERM also cancel, a second signal force-aborts")
	ckPath := fs.String("checkpoint", "", "persist finished simulation replications to this file (crash-safe); with -resume, skip the ones already there")
	resume := fs.Bool("resume", false, "reuse matching replications from -checkpoint instead of starting fresh")

	args := os.Args[1:]
	if len(args) == 0 {
		return fmt.Errorf("usage: gpa <model.gpepa> [flags]")
	}
	path := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *ckPath != "" && !*resume {
		if err := os.Remove(*ckPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := gpepa.Parse(string(src))
	if err != nil {
		return err
	}
	if *analysis == "sweep" {
		if *sweepGroup == "" || *sweepComponent == "" || *sweepCounts == "" || *sweepAction == "" {
			return fmt.Errorf("sweep needs -sweep-group, -sweep-component, -sweep-counts, and -sweep-action")
		}
		var counts []float64
		for _, c := range strings.Split(*sweepCounts, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if err != nil {
				return fmt.Errorf("bad count %q", c)
			}
			counts = append(counts, v)
		}
		points, err := gpepa.ScalabilitySweepWorkers(m, *sweepGroup, *sweepComponent, counts, *horizon, *sweepAction, *workers)
		if err != nil {
			return err
		}
		fmt.Printf("count\tthroughput(%s)\n", *sweepAction)
		for _, p := range points {
			fmt.Printf("%g\t%.6f\n", p.Count, p.Throughput)
		}
		if knee := gpepa.Saturation(points, 0.01); knee >= 0 {
			fmt.Printf("saturation at count %g\n", points[knee].Count)
		}
		return nil
	}
	sys, err := gpepa.Compile(m)
	if err != nil {
		return err
	}
	fmt.Printf("GPEPA model: %d groups, %d local states, actions %v\n",
		len(m.Groups()), len(sys.Vars), sys.Actions)
	header := func() {
		fmt.Print("t")
		for _, v := range sys.Vars {
			fmt.Printf("\t%s:%s", v.Group, v.State)
		}
		fmt.Println()
	}
	switch *analysis {
	case "fluid":
		res, err := sys.SolveCtx(ctx, *horizon, *n, gpepa.SolveOptions{})
		if err != nil {
			return err
		}
		header()
		for k := range res.Times {
			fmt.Printf("%.4f", res.Times[k])
			for i := range sys.Vars {
				fmt.Printf("\t%.6f", res.X[k][i])
			}
			fmt.Println()
		}
		fmt.Println("action throughput at horizon:")
		final := res.Final()
		for _, a := range sys.Actions {
			fmt.Printf("  %-16s %.6f\n", a, sys.ActionThroughput(a, final))
		}
	case "sim":
		var res *gpepa.SimResult
		if *reps > 1 {
			res, err = sys.MeanOfSimulationsCtx(ctx, *horizon, *n, *reps, *seed, *ckPath)
		} else {
			res, err = sys.SimulateCtx(ctx, *horizon, *n, *seed)
		}
		if err != nil {
			return err
		}
		fmt.Printf("stochastic simulation: %d jumps\n", res.Jumps)
		header()
		for k := range res.Times {
			fmt.Printf("%.4f", res.Times[k])
			for i := range sys.Vars {
				fmt.Printf("\t%.4f", res.X[k][i])
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown analysis %q", *analysis)
	}
	return nil
}
