package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"gpa"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

const gpModel = `
rr = 2.0;
rt = 0.27;
rs = 4.0;
rb = 1.0;
Client = (request, rr).Client_think;
Client_think = (think, rt).Client;
Server = (request, rs).Server_log;
Server_log = (log, rb).Server;
Clients{Client[50]} <request> Servers{Server[5]}
`

func modelFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.gpepa")
	if err := os.WriteFile(path, []byte(gpModel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFluidAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "fluid", "-horizon", "20", "-n", "10")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPEPA model: 2 groups", "Clients:Client", "action throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "sim", "-horizon", "5", "-n", "5", "-reps", "2", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stochastic simulation") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSweepAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "sweep",
		"-sweep-group", "Servers", "-sweep-component", "Server",
		"-sweep-counts", "2,5,20,40", "-horizon", "300", "-sweep-action", "request")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "count\tthroughput(request)") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "saturation at count") {
		t.Errorf("saturation missing:\n%s", out)
	}
	if _, err := runCmd(t, modelFile(t), "-analysis", "sweep"); err == nil {
		t.Error("sweep without flags accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no args accepted")
	}
	if _, err := runCmd(t, modelFile(t), "-analysis", "wat"); err == nil {
		t.Error("unknown analysis accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.gpepa")
	os.WriteFile(bad, []byte("not a model"), 0o644)
	if _, err := runCmd(t, bad); err == nil {
		t.Error("bad model accepted")
	}
}
