package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout, oldFlags := os.Args, os.Stdout, flag.CommandLine
	defer func() {
		os.Args, os.Stdout, flag.CommandLine = oldArgs, oldStdout, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("scbuild", flag.ContinueOnError)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"scbuild"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestBuildCannedTool(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pepa.scif")
	stdout, err := runCmd(t, "-tool", "pepa", "-o", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "digest: sha256:") {
		t.Errorf("output:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) == 0 {
		t.Fatalf("image file missing: %v", err)
	}
}

func TestBuildFromRecipeFile(t *testing.T) {
	recipePath := filepath.Join(t.TempDir(), "r.def")
	os.WriteFile(recipePath, []byte("Bootstrap: library\nFrom: centos:7.4\n%runscript\n  echo hi\n"), 0o644)
	out := filepath.Join(t.TempDir(), "img.scif")
	stdout, err := runCmd(t, "-recipe", recipePath, "-name", "demo", "-o", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "built demo:latest") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestListHosts(t *testing.T) {
	stdout, err := runCmd(t, "-list-hosts")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "centos-7.4-proliant") || !strings.Contains(stdout, "gcp-n1-standard-8") {
		t.Errorf("output:\n%s", stdout)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("neither -recipe nor -tool rejected")
	}
	if _, err := runCmd(t, "-tool", "pepa", "-host", "amiga"); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := runCmd(t, "-recipe", filepath.Join(t.TempDir(), "none.def")); err == nil {
		t.Error("missing recipe file accepted")
	}
}
