// Command scbuild builds a container image from a Singularity definition
// file against a simulated host profile and writes the image to disk.
//
// Usage:
//
//	scbuild -recipe pepa.def -name pepa -tag latest -host centos-7.4-proliant -o pepa.scif
//	scbuild -tool pepa -o pepa.scif        # use the framework's canned recipe
//	scbuild -list-hosts
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hostenv"
	"repro/internal/recipe"
	"repro/internal/runtime"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbuild:", err)
		os.Exit(1)
	}
}

func run() error {
	recipePath := flag.String("recipe", "", "definition file to build")
	tool := flag.String("tool", "", "build a canned tool recipe (pepa, biopepa, gpa)")
	name := flag.String("name", "container", "image name")
	tag := flag.String("tag", "latest", "image tag")
	hostName := flag.String("host", hostenv.BuildHost, "host profile to build on")
	out := flag.String("o", "image.scif", "output image path")
	format := flag.String("format", "legacy", "output format: legacy (monolithic SCIF1) or layered (SCIF2 layer chain)")
	listHosts := flag.Bool("list-hosts", false, "list host profiles and exit")
	flag.Parse()

	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()

	if *listHosts {
		for _, h := range hostenv.Profiles() {
			fmt.Println(h)
		}
		return nil
	}
	host, err := hostenv.ByName(*hostName)
	if err != nil {
		return err
	}
	if err := host.InstallSingularity(); err != nil {
		return err
	}
	fw := core.New()
	var res *runtime.BuildResult
	switch {
	case *tool != "":
		res, err = fw.BuildCtx(ctx, core.Tool(*tool), host)
		if err != nil {
			return err
		}
	case *recipePath != "":
		src, err := os.ReadFile(*recipePath)
		if err != nil {
			return err
		}
		rcp, err := recipe.Parse(string(src))
		if err != nil {
			return err
		}
		res, err = fw.Engine.BuildCtx(ctx, rcp, host, runtime.BuildContext{}, *name, *tag)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -recipe or -tool is required")
	}
	var blob []byte
	switch *format {
	case "legacy":
		blob, err = res.Image.Marshal()
	case "layered":
		blob, err = res.Image.MarshalLayered()
	default:
		return fmt.Errorf("unknown -format %q (want legacy or layered)", *format)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("built %s on %s\n", res.Image.Ref(), host.Name)
	fmt.Printf("digest: %s\n", res.Digest)
	if res.StagesExecuted+res.StagesReplayed > 0 {
		fmt.Printf("stages: %d executed, %d replayed from cache\n", res.StagesExecuted, res.StagesReplayed)
	}
	if *format == "layered" {
		fmt.Printf("layers: %d\n", len(res.Image.Layers))
	}
	fmt.Printf("wrote %d bytes to %s\n", len(blob), *out)
	return nil
}
