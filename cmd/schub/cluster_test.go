package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hub"
)

// startPeers spins n named hub servers and returns the -peers spec plus
// the per-peer stores for direct assertions.
func startPeers(t *testing.T, names ...string) (string, map[string]*hub.Store) {
	t.Helper()
	stores := map[string]*hub.Store{}
	var clauses []string
	for _, n := range names {
		store := hub.NewStore()
		srv := hub.NewServer(store)
		srv.PeerName = n
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		stores[n] = store
		clauses = append(clauses, fmt.Sprintf("%s=http://%s", n, addr))
	}
	return strings.Join(clauses, ","), stores
}

func TestClusterPushPullCLI(t *testing.T) {
	peers, stores := startPeers(t, "a", "b", "c")
	img := buildImageFile(t)

	out, err := runCmd(t, "push", "-peers", peers, "-replication", "2", "-collection", "cc", "-image", img)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digest: sha256:") || !strings.Contains(out, "R=2") {
		t.Errorf("clustered push output:\n%s", out)
	}
	replicas := 0
	for _, s := range stores {
		replicas += s.EntryCount()
	}
	if replicas != 2 {
		t.Errorf("push landed on %d replicas, want 2", replicas)
	}

	target := filepath.Join(t.TempDir(), "pulled.scif")
	out, err = runCmd(t, "pull", "-peers", peers, "-replication", "2", "-collection", "cc", "-name", "pepa", "-o", target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pulled pepa:latest") {
		t.Errorf("clustered pull output:\n%s", out)
	}
	if _, err := os.Stat(target); err != nil {
		t.Errorf("pulled file missing: %v", err)
	}
}

func TestClusterStatusCLI(t *testing.T) {
	peers, _ := startPeers(t, "a", "b")
	out, err := runCmd(t, "cluster", "status", "-peers", peers)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cluster of 2 peers, replication 2") {
		t.Errorf("status header:\n%s", out)
	}
	for _, want := range []string{"a", "b"} {
		if !strings.Contains(out, want) || !strings.Contains(out, "up") {
			t.Errorf("status misses peer %s:\n%s", want, out)
		}
	}
	// A dead peer shows DOWN with a stable error class, not an address.
	out, err = runCmd(t, "cluster", "status", "-peers", peers+",ghost=http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ghost") || !strings.Contains(out, "DOWN") {
		t.Errorf("status misses the dead peer:\n%s", out)
	}
}

func TestClusterRebalanceAndDeliverCLI(t *testing.T) {
	peers, stores := startPeers(t, "a", "b")
	img := buildImageFile(t)
	if _, err := runCmd(t, "push", "-peers", peers, "-replication", "1", "-collection", "cc", "-image", img); err != nil {
		t.Fatal(err)
	}
	// Raising R and rebalancing copies the entry onto the second owner.
	out, err := runCmd(t, "cluster", "rebalance", "-peers", peers, "-replication", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 transferred") {
		t.Errorf("rebalance output:\n%s", out)
	}
	for n, s := range stores {
		if s.EntryCount() != 1 {
			t.Errorf("peer %s holds %d entries after rebalance, want 1", n, s.EntryCount())
		}
	}

	// deliver with nothing journaled is a clean no-op drive.
	out, err = runCmd(t, "cluster", "deliver", "-peers", peers, "-peer", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 hints") {
		t.Errorf("deliver output:\n%s", out)
	}
	if _, err := runCmd(t, "cluster", "deliver", "-peers", peers); err == nil {
		t.Error("deliver without -peer accepted")
	}
	if _, err := runCmd(t, "cluster", "frobnicate", "-peers", peers); err == nil {
		t.Error("unknown cluster subcommand accepted")
	}
	if _, err := runCmd(t, "cluster"); err == nil {
		t.Error("bare cluster command accepted")
	}
	if _, err := runCmd(t, "cluster", "status", "-peers", "badspec"); err == nil {
		t.Error("malformed -peers accepted")
	}
}

// TestServePeerFaultTargeting: a %peer clause in a -fault-spec plan
// shared by several servers (each started with its own -peer-name)
// fires only on the server carrying that name.
func TestServePeerFaultTargeting(t *testing.T) {
	rules, err := faultinject.ParseSpec("conn:1000@GET%b")
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1, rules...)
	mkServer := func(name string) string {
		srv := hub.NewServer(hub.NewStore())
		srv.PeerName = name // before EnableFaults, as serve does
		srv.EnableFaults(plan)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return "http://" + addr
	}
	urlA, urlB := mkServer("a"), mkServer("b")
	copts := hub.ClientOptions{Retry: hub.RetryPolicy{MaxAttempts: 2}, Sleep: func(time.Duration) {}}
	if _, err := hub.NewClientWithOptions(urlA, copts).NodeStatus(); err != nil {
		t.Errorf("peer a (untargeted) faulted: %v", err)
	}
	if _, err := hub.NewClientWithOptions(urlB, copts).NodeStatus(); err == nil {
		t.Error("peer b (targeted by the peer-scoped clause) served despite conn faults")
	}
}
