package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hub"
)

// faultyHub starts a hub whose handler is wrapped in the given spec's
// fault plan — the server-side of `schub serve -fault-spec`.
func faultyHub(t *testing.T, spec string) string {
	t.Helper()
	rules, err := faultinject.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := hub.NewServer(hub.NewStore())
	srv.EnableFaults(faultinject.NewPlan(1, rules...))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + addr
}

// TestClientRetriesAgainstFaultyHub: the CLI client's -retries budget
// rides out a 503 on push and another on pull.
func TestClientRetriesAgainstFaultyHub(t *testing.T) {
	hubURL := faultyHub(t, "503:1,503:1@GET")
	img := buildImageFile(t)
	out, err := runCmd(t, "push", "-hub", hubURL, "-collection", "cc", "-image", img, "-retries", "3")
	if err != nil {
		t.Fatalf("push did not ride out the 503: %v", err)
	}
	if !strings.Contains(out, "digest: sha256:") {
		t.Errorf("push output = %q", out)
	}
	target := filepath.Join(t.TempDir(), "out.scif")
	out, err = runCmd(t, "pull", "-hub", hubURL, "-collection", "cc", "-name", "pepa", "-o", target, "-retries", "3")
	if err != nil {
		t.Fatalf("pull did not ride out the 503: %v", err)
	}
	if !strings.Contains(out, "pulled pepa:latest") {
		t.Errorf("pull output = %q", out)
	}
}

// TestRetriesExhausted: a persistent fault plan defeats a one-attempt
// client, and the error mentions the attempt budget.
func TestRetriesExhausted(t *testing.T) {
	hubURL := faultyHub(t, "503:100")
	img := buildImageFile(t)
	_, err := runCmd(t, "push", "-hub", hubURL, "-collection", "cc", "-image", img, "-retries", "2")
	if err == nil {
		t.Fatal("push against a dead hub succeeded")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") {
		t.Errorf("err = %v, want attempt budget in message", err)
	}
}

// TestServeRejectsBadFaultSpec: an unparsable -fault-spec errors out
// before the server binds.
func TestServeRejectsBadFaultSpec(t *testing.T) {
	_, err := runCmd(t, "serve", "-addr", "127.0.0.1:0", "-fault-spec", "explode-randomly")
	if err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Errorf("err = %v, want fault-spec parse error", err)
	}
}
