// Command schub is the container hub: it serves the registry API and also
// acts as a push/pull/list client.
//
// Usage:
//
//	schub serve -addr 127.0.0.1:7443 [-autobuild]
//	schub push -hub http://127.0.0.1:7443 -collection pepa-containers -image pepa.scif [-layered]
//	schub pull -hub http://127.0.0.1:7443 -collection pepa-containers -name pepa -tag latest -o pepa.scif [-layered]
//	schub list -hub http://127.0.0.1:7443 -collection pepa-containers
//	schub build -hub http://127.0.0.1:7443 -collection pepa-containers -name pepa -tag v1 -recipe pepa.def
//	schub cluster status -peers a=http://h1:7443,b=http://h2:7443
//	schub cluster rebalance -peers ... [-replication 2]
//	schub cluster deliver -peers ... -peer b
//
// With -autobuild the server builds pushed recipes itself on the CentOS
// build-host profile (Singularity-Hub's model); the build subcommand is
// the matching client.
//
// With -peers, push and pull route through the replicated-cluster layer
// (internal/hub/cluster): a push fans out to the R rendezvous owners of
// the content digest (degrading to journaled hinted handoff when an
// owner is down) and a pull fails over between replicas, repairing any
// found missing or quarantined. See docs/RESILIENCE.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hub"
	"repro/internal/hub/cluster"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schub:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: schub serve|push|pull|list|build|cluster [flags]")
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	sub := ""
	if cmd == "cluster" {
		if len(os.Args) < 3 {
			return fmt.Errorf("usage: schub cluster status|rebalance|deliver -peers name=url,... [flags]")
		}
		sub = os.Args[2]
		args = os.Args[3:]
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7443", "serve address")
	hubURL := fs.String("hub", "http://127.0.0.1:7443", "hub base URL")
	collection := fs.String("collection", "pepa-containers", "collection name")
	imagePath := fs.String("image", "", "image file (push)")
	name := fs.String("name", "", "container name (pull)")
	tag := fs.String("tag", "latest", "tag")
	out := fs.String("o", "", "output path (pull)")
	digest := fs.String("digest", "", "expected digest (pull)")
	layered := fs.Bool("layered", false, "push/pull: transfer by layer digest, moving only layers the other side is missing")
	autobuild := fs.Bool("autobuild", false, "serve: build pushed recipes server-side")
	recipePath := fs.String("recipe", "", "build: definition file to submit")
	statePath := fs.String("state", "", "serve: persist the registry to this directory (loaded on start, saved on shutdown)")
	timeout := fs.Duration("timeout", 30*time.Second, "client: per-request HTTP timeout")
	retries := fs.Int("retries", 4, "client: total attempt budget per operation")
	faultSpec := fs.String("fault-spec", "", "serve: inject faults per this spec (e.g. \"503:2,corrupt\" or \"timeout:p0.1\"); chaos testing only")
	faultSeed := fs.Uint64("fault-seed", 1, "serve: seed for the -fault-spec plan")
	metricsAddr := fs.String("metrics-addr", "", "serve: also serve GET /metrics (Prometheus text) on this address")
	pprofOn := fs.Bool("pprof", false, "serve: expose /debug/pprof on the -metrics-addr listener")
	drain := fs.Duration("drain", 10*time.Second, "serve: how long a shutdown waits for in-flight requests before aborting them; the journal is flushed and compacted after the drain")
	scrubInterval := fs.Duration("scrub-interval", 5*time.Minute, "serve: background integrity-scrub interval (0 disables)")
	scrubSeed := fs.Uint64("scrub-seed", 1, "serve: seed for the scrub interval jitter")
	maxInflight := fs.Int("max-inflight", 256, "serve: per-class concurrent-request cap; excess load is shed with 429 (negative disables)")
	rateLimit := fs.Float64("rate-limit", 0, "serve: token-bucket request rate in req/s; 0 disables rate limiting")
	peerName := fs.String("peer-name", "", "serve: this hub's stable cluster peer name (reported by /v1/_cluster/status and used for %peer fault targeting)")
	peersSpec := fs.String("peers", "", "cluster membership as comma-separated name=url pairs; push/pull route through the replicated cluster when set")
	replication := fs.Int("replication", 2, "cluster: replicas per content digest (capped at the peer count)")
	targetPeer := fs.String("peer", "", "cluster deliver: peer to stream journaled hints back to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := func() *hub.Client {
		return hub.NewClientWithOptions(*hubURL, hub.ClientOptions{
			Timeout: *timeout,
			Retry:   hub.RetryPolicy{MaxAttempts: *retries},
		})
	}
	clusterClient := func() (*cluster.Cluster, error) {
		peers, err := cluster.ParsePeers(*peersSpec)
		if err != nil {
			return nil, err
		}
		return cluster.New(cluster.Options{
			Peers:       peers,
			Replication: *replication,
			Client: hub.ClientOptions{
				Timeout: *timeout,
				Retry:   hub.RetryPolicy{MaxAttempts: *retries},
			},
		})
	}

	switch cmd {
	case "serve":
		store := hub.NewStore()
		if *statePath != "" {
			// Durable mode: every mutation is journaled (fsynced WAL)
			// before it is acknowledged, and recovery replays the journal
			// on top of the last snapshot — a crash or torn tail loses at
			// most the record being written.
			loaded, report, err := hub.OpenDurable(*statePath, hub.DurableOptions{})
			if err != nil {
				return err
			}
			store = loaded
			fmt.Printf("registry state: %s (%d collections, %d snapshot entries, %d journal records replayed)\n",
				*statePath, len(store.Collections()), report.SnapshotEntries, report.JournalRecords)
			if report.TornBytes > 0 {
				fmt.Printf("recovered from torn journal tail: %d bytes truncated\n", report.TornBytes)
			}
			if report.Quarantined > 0 {
				fmt.Printf("warning: %d entries quarantined during recovery (re-push to repair)\n", report.Quarantined)
			}
		}
		srv := hub.NewServer(store)
		// PeerName before EnableFaults: the fault plan is consulted on
		// this peer's behalf, so %peer spec clauses can target it.
		srv.PeerName = *peerName
		if *peerName != "" {
			fmt.Printf("cluster peer name: %s\n", *peerName)
		}
		if *faultSpec != "" {
			rules, err := faultinject.ParseSpec(*faultSpec)
			if err != nil {
				return err
			}
			srv.EnableFaults(faultinject.NewPlan(*faultSeed, rules...))
			fmt.Printf("fault injection enabled: %s (seed %d)\n", *faultSpec, *faultSeed)
		}
		if *autobuild {
			builder, err := core.New().NewHubBuilder()
			if err != nil {
				return err
			}
			srv.EnableAutoBuild(builder)
			fmt.Println("auto-build enabled (build host: " + builder.Host.Name + ")")
		}
		var reg *obs.Registry
		if *metricsAddr != "" {
			reg = obs.NewRegistry()
		}
		if *maxInflight > 0 || *rateLimit > 0 {
			srv.EnableAdmission(hub.AdmissionOptions{
				MaxInflightReads:  *maxInflight,
				MaxInflightWrites: *maxInflight,
				RatePerSec:        *rateLimit,
				Obs:               reg,
			})
		}
		if *metricsAddr != "" {
			// Enabled last so the middleware observes the fault injector,
			// admission control, and auto-build endpoints too.
			srv.EnableMetrics(reg)
		}
		if *scrubInterval > 0 {
			srv.EnableScrubbing(*scrubInterval, *scrubSeed)
			fmt.Printf("integrity scrubbing every ~%s (seed %d)\n", *scrubInterval, *scrubSeed)
		}
		bound, err := srv.Listen(*addr)
		if err != nil {
			return err
		}
		fmt.Printf("hub serving on http://%s\n", bound)
		if *metricsAddr != "" {
			mln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				return err
			}
			go http.Serve(mln, srv.MetricsHandler(*pprofOn))
			fmt.Printf("metrics on http://%s/metrics (pprof: %v)\n", mln.Addr(), *pprofOn)
		}
		// SIGINT or SIGTERM begins a graceful shutdown; a second signal
		// force-aborts the process (exit 128+signum) via sigctx.
		ctx, stopSignals := sigctx.WithSignals(context.Background())
		defer stopSignals()
		<-ctx.Done()
		fmt.Printf("shutting down: draining in-flight requests for up to %s (second signal aborts immediately)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "schub: drain incomplete, in-flight requests aborted:", err)
		}
		if *statePath != "" {
			// Close flushes the journal and completes a final compaction,
			// so the next open replays nothing.
			if err := store.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "schub: saving state:", err)
			} else {
				fmt.Printf("registry state saved to %s\n", *statePath)
			}
		}
		return nil
	case "push":
		if *imagePath == "" {
			return fmt.Errorf("-image is required")
		}
		blob, err := os.ReadFile(*imagePath)
		if err != nil {
			return err
		}
		img, err := image.Unmarshal(blob)
		if err != nil {
			return err
		}
		if *peersSpec != "" {
			cl, err := clusterClient()
			if err != nil {
				return err
			}
			d, err := cl.Push(*collection, img)
			if err != nil {
				return err
			}
			fmt.Printf("pushed %s to %d of %d peers (R=%d)\ndigest: %s\n",
				img.Ref(), cl.Replication(), len(cl.PeerNames()), cl.Replication(), d)
			return nil
		}
		c := client()
		var d string
		if *layered {
			d, err = c.PushLayered(*collection, img)
		} else {
			d, err = c.Push(*collection, img)
		}
		if err != nil {
			return err
		}
		fmt.Printf("pushed %s to %s/%s\ndigest: %s\n", img.Ref(), *hubURL, *collection, d)
		if *layered {
			fmt.Printf("layers transferred: %d of %d (rest already on the hub)\n",
				len(c.AttemptsMatching("pushlayer ")), len(img.Layers))
		}
		return nil
	case "pull":
		if *name == "" {
			return fmt.Errorf("-name is required")
		}
		target := *out
		if target == "" {
			target = *name + ".scif"
		}
		if *peersSpec != "" {
			cl, err := clusterClient()
			if err != nil {
				return err
			}
			img, d, err := cl.Pull(*collection, *name, *tag, *digest)
			if err != nil {
				return err
			}
			var blob []byte
			if img.Layered() {
				blob, err = img.MarshalLayered()
			} else {
				blob, err = img.Marshal()
			}
			if err != nil {
				return err
			}
			if err := os.WriteFile(target, blob, 0o644); err != nil {
				return err
			}
			fmt.Printf("pulled %s:%s (digest %s) to %s\n", *name, *tag, d, target)
			return nil
		}
		if *layered {
			// Layer-negotiated pull: only layers absent from the client's
			// cache cross the wire; monolithic entries fall back to the
			// legacy pull transparently.
			c := client()
			img, d, err := c.PullLayered(*collection, *name, *tag, *digest)
			if err != nil {
				return err
			}
			var blob []byte
			if img.Layered() {
				blob, err = img.MarshalLayered()
			} else {
				blob, err = img.Marshal()
			}
			if err != nil {
				return err
			}
			if err := os.WriteFile(target, blob, 0o644); err != nil {
				return err
			}
			fmt.Printf("pulled %s:%s (digest %s) to %s\n", *name, *tag, d, target)
			fmt.Printf("layers transferred: %d of %d\n",
				len(c.AttemptsMatching("pulllayer ")), len(img.Layers))
			return nil
		}
		// PullToFile spools verified chunks next to the target, so an
		// interrupted pull resumes from the last good offset on rerun.
		d, err := client().PullToFile(*collection, *name, *tag, *digest, target)
		if err != nil {
			return err
		}
		fmt.Printf("pulled %s:%s (digest %s) to %s\n", *name, *tag, d, target)
		return nil
	case "build":
		if *recipePath == "" || *name == "" {
			return fmt.Errorf("-recipe and -name are required")
		}
		src, err := os.ReadFile(*recipePath)
		if err != nil {
			return err
		}
		d, err := client().RemoteBuild(*collection, *name, *tag, string(src))
		if err != nil {
			return err
		}
		fmt.Printf("hub built %s:%s from %s\ndigest: %s\n", *name, *tag, *recipePath, d)
		return nil
	case "list":
		c := client()
		entries, err := c.List(*collection)
		if err != nil {
			return err
		}
		fmt.Printf("collection %s:\n", *collection)
		for _, e := range entries {
			form := ""
			if e.Layers > 0 {
				form = fmt.Sprintf("  %d layers", e.Layers)
			}
			fmt.Printf("  %s:%s  %s  %d bytes%s  (built on %s)\n", e.Container, e.Tag, e.Digest[:19], e.Size, form, e.BuildHost)
		}
		return nil
	case "cluster":
		cl, err := clusterClient()
		if err != nil {
			return err
		}
		switch sub {
		case "status":
			fmt.Printf("cluster of %d peers, replication %d:\n", len(cl.PeerNames()), cl.Replication())
			for _, st := range cl.ProbeOnce() {
				if !st.Up {
					fmt.Printf("  %-12s DOWN  %s  (%s)\n", st.Peer.Name, st.Peer.URL, st.Err)
					continue
				}
				durable := ""
				if st.Node.Durable {
					durable = "  durable"
				}
				fmt.Printf("  %-12s up    %s  %d entries, %d layers, %d hints, %d quarantined%s\n",
					st.Peer.Name, st.Peer.URL, st.Node.Entries, st.Node.Layers,
					st.Node.Hints, st.Node.Quarantined, durable)
			}
			return nil
		case "rebalance":
			rep := cl.RebalanceOnce()
			fmt.Printf("rebalance: %d refs, %d transferred, %d already placed, %d failed\n",
				rep.Refs, rep.Transferred, rep.Skipped, rep.Failed)
			if rep.Failed > 0 {
				return fmt.Errorf("%d placements failed; rerun after the affected peers recover", rep.Failed)
			}
			return nil
		case "deliver":
			if *targetPeer == "" {
				return fmt.Errorf("-peer is required (the rejoined peer to stream hints to)")
			}
			rep, err := cl.DeliverHints(*targetPeer)
			if err != nil {
				return err
			}
			fmt.Printf("handoff to %s: %d hints, %d delivered, %d acked, %d failed\n",
				*targetPeer, rep.Hints, rep.Delivered, rep.Acked, rep.Failed)
			if rep.Failed > 0 {
				return fmt.Errorf("%d hints undeliverable; they stay journaled for the next drive", rep.Failed)
			}
			return nil
		default:
			return fmt.Errorf("unknown cluster subcommand %q (want status, rebalance, or deliver)", sub)
		}
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}
