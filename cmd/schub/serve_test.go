package main

import (
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/hub"
	"repro/internal/image"
	"repro/internal/vfs"
)

// freePort reserves an ephemeral port and releases it for serve to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServeDurableLifecycle drives the full serve path: open a durable
// state directory, serve it with scrubbing and admission control on,
// shut down gracefully on SIGINT, and verify the drain flushed the
// journal (the next open replays zero records).
func TestServeDurableLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Seed the state directory with one image, leaving a journal tail
	// behind (no Close → no final compaction).
	store, _, err := hub.OpenDurable(dir, hub.DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.New()
	fs.WriteFile("/payload", []byte("serve-lifecycle"), 0o644)
	img := &image.Image{
		Meta: image.Metadata{Name: "pepa", Tag: "latest", BaseRef: "centos:7.4", BuildHost: "centos-7.4-proliant"},
		FS:   fs,
	}
	blob, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("cc", "pepa", "latest", blob); err != nil {
		t.Fatal(err)
	}
	// Abandon the store without Close — a crash leaves the journal tail
	// for serve to replay.

	// Absorb any SIGINT that could arrive before serve registers its own
	// handler, so a mistimed signal cannot kill the test binary.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	addr := freePort(t)
	go func() {
		// Wait for serve to bind, give it a beat to reach the signal
		// wait, then deliver exactly one SIGINT.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if conn, err := net.Dial("tcp", addr); err == nil {
				conn.Close()
				time.Sleep(200 * time.Millisecond)
				syscall.Kill(os.Getpid(), syscall.SIGINT)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	out, err := runCmd(t, "serve",
		"-addr", addr,
		"-state", dir,
		"-scrub-interval", "20ms",
		"-max-inflight", "8",
		"-rate-limit", "1000",
		"-drain", "5s",
	)
	if err != nil {
		t.Fatalf("serve returned error: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"registry state: " + dir,
		"1 journal records replayed",
		"integrity scrubbing every ~20ms",
		"hub serving on",
		"shutting down: draining",
		"registry state saved to " + dir,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}

	// The drain compacted: reopening replays nothing and still has the
	// pushed entry.
	reopened, report, err := hub.OpenDurable(dir, hub.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if report.JournalRecords != 0 {
		t.Errorf("journal not flushed by drain: %d records replayed", report.JournalRecords)
	}
	if report.SnapshotEntries != 1 {
		t.Errorf("snapshot entries = %d, want 1", report.SnapshotEntries)
	}
	if _, _, ok := reopened.Get("cc", "pepa", "latest"); !ok {
		t.Error("entry lost across serve lifecycle")
	}
}

// TestServeRejectsBadState: a -state path that is a regular file cannot
// be a state directory and must fail before the server binds.
func TestServeRejectsBadState(t *testing.T) {
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "serve", "-addr", "127.0.0.1:0", "-state", f); err == nil {
		t.Error("serve accepted a regular file as -state")
	}
}
