package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hostenv"
	"repro/internal/hub"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"schub"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

// startHub starts a real hub server (with auto-build) on an ephemeral port.
func startHub(t *testing.T) string {
	t.Helper()
	srv := hub.NewServer(hub.NewStore())
	builder, err := core.New().NewHubBuilder()
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableAutoBuild(builder)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + addr
}

func buildImageFile(t *testing.T) string {
	t.Helper()
	fw := core.New()
	host, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.InstallSingularity(); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Build(core.ToolPEPA, host)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.Image.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pepa.scif")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPushListPull(t *testing.T) {
	hubURL := startHub(t)
	img := buildImageFile(t)
	out, err := runCmd(t, "push", "-hub", hubURL, "-collection", "cc", "-image", img)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digest: sha256:") {
		t.Errorf("push output:\n%s", out)
	}
	out, err = runCmd(t, "list", "-hub", hubURL, "-collection", "cc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pepa:latest") {
		t.Errorf("list output:\n%s", out)
	}
	target := filepath.Join(t.TempDir(), "pulled.scif")
	out, err = runCmd(t, "pull", "-hub", hubURL, "-collection", "cc", "-name", "pepa", "-o", target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pulled pepa:latest") {
		t.Errorf("pull output:\n%s", out)
	}
	if _, err := os.Stat(target); err != nil {
		t.Errorf("pulled file missing: %v", err)
	}
}

func TestRemoteBuildSubcommand(t *testing.T) {
	hubURL := startHub(t)
	recipePath := filepath.Join(t.TempDir(), "r.def")
	os.WriteFile(recipePath, []byte("Bootstrap: library\nFrom: centos:7.4\n%runscript\n  echo built-by-hub\n"), 0o644)
	out, err := runCmd(t, "build", "-hub", hubURL, "-collection", "cc", "-name", "demo", "-tag", "v1", "-recipe", recipePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hub built demo:v1") {
		t.Errorf("build output:\n%s", out)
	}
	// The built image is pullable.
	target := filepath.Join(t.TempDir(), "demo.scif")
	if _, err := runCmd(t, "pull", "-hub", hubURL, "-collection", "cc", "-name", "demo", "-tag", "v1", "-o", target); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no subcommand accepted")
	}
	if _, err := runCmd(t, "frobnicate"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := runCmd(t, "push"); err == nil {
		t.Error("push without -image accepted")
	}
	if _, err := runCmd(t, "pull"); err == nil {
		t.Error("pull without -name accepted")
	}
	if _, err := runCmd(t, "build", "-name", "x"); err == nil {
		t.Error("build without -recipe accepted")
	}
	hubURL := startHub(t)
	if _, err := runCmd(t, "list", "-hub", hubURL, "-collection", "ghost"); err == nil {
		t.Error("list of missing collection accepted")
	}
}
