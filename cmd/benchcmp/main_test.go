package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/ctmc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTransientSeries/uncached-4         	      50	  22427268 ns/op
BenchmarkTransientSeries/cached-4           	     300	   3587139 ns/op	    1024 B/op	       3 allocs/op
BenchmarkFirstPassageCDF-4                  	     500	   2561139 ns/op
PASS
ok  	repro/internal/ctmc	4.2s
pkg: repro/internal/numeric/sparse
BenchmarkToCSR-4   	     100	  11000000 ns/op
BenchmarkToCSR-4   	     100	  10500000 ns/op
BenchmarkVecMulParallel/transpose-workers=2-4 	 1000	 400000 ns/op
--- some unrelated line ---
`

func TestParseBench(t *testing.T) {
	got, allocs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTransientSeries/uncached":           22427268,
		"BenchmarkTransientSeries/cached":             3587139,
		"BenchmarkFirstPassageCDF":                    2561139,
		"BenchmarkToCSR":                              10500000, // min of the two runs
		"BenchmarkVecMulParallel/transpose-workers=2": 400000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %g, want %g", name, got[name], ns)
		}
	}
	// Only the cached line carries the -benchmem columns.
	wantAllocs := map[string]float64{"BenchmarkTransientSeries/cached": 3}
	if len(allocs) != len(wantAllocs) {
		t.Fatalf("parsed %d allocs entries, want %d: %v", len(allocs), len(wantAllocs), allocs)
	}
	if allocs["BenchmarkTransientSeries/cached"] != 3 {
		t.Errorf("cached allocs = %g, want 3", allocs["BenchmarkTransientSeries/cached"])
	}
}

func TestParseBenchAllocsMinOverRepeats(t *testing.T) {
	out := `
BenchmarkFoo-4   10  5000000 ns/op  2048 B/op  7 allocs/op
BenchmarkFoo-4   10  4000000 ns/op  2048 B/op  5 allocs/op
`
	ns, allocs, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if ns["BenchmarkFoo"] != 4000000 || allocs["BenchmarkFoo"] != 5 {
		t.Fatalf("min not kept: ns=%g allocs=%g", ns["BenchmarkFoo"], allocs["BenchmarkFoo"])
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkToCSR-8": "BenchmarkToCSR",
		"BenchmarkToCSR":   "BenchmarkToCSR",
		"BenchmarkVecMulParallel/transpose-workers=2-4": "BenchmarkVecMulParallel/transpose-workers=2",
		"BenchmarkTransientWorkers/workers=8-16":        "BenchmarkTransientWorkers/workers=8",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGating(t *testing.T) {
	gate := regexp.MustCompile(`TransientSeries|ToCSR`)
	base := map[string]float64{
		"BenchmarkTransientSeries/cached": 100,
		"BenchmarkToCSR":                  100,
		"BenchmarkFirstPassageCDF":        100,
	}
	cases := []struct {
		name       string
		current    map[string]float64
		wantFailed bool
	}{
		{"all flat", map[string]float64{"BenchmarkTransientSeries/cached": 100, "BenchmarkToCSR": 100, "BenchmarkFirstPassageCDF": 100}, false},
		{"gated within threshold", map[string]float64{"BenchmarkToCSR": 119}, false},
		{"gated beyond threshold", map[string]float64{"BenchmarkToCSR": 121}, true},
		{"ungated regression ignored", map[string]float64{"BenchmarkFirstPassageCDF": 500}, false},
		{"new benchmark never fails", map[string]float64{"BenchmarkTransientSeries/brandnew": 1e9}, false},
		{"improvement never fails", map[string]float64{"BenchmarkTransientSeries/cached": 10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := compare(tc.current, nil, base, nil, gate, 1.2, 1.25)
			if rep.Failed != tc.wantFailed {
				t.Fatalf("Failed = %v, want %v (%+v)", rep.Failed, tc.wantFailed, rep.Results)
			}
		})
	}
}

func TestCompareFlagsRegressedResult(t *testing.T) {
	gate := regexp.MustCompile(`ToCSR`)
	rep := compare(map[string]float64{"BenchmarkToCSR": 150}, nil, map[string]float64{"BenchmarkToCSR": 100}, nil, gate, 1.2, 1.25)
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	r := rep.Results[0]
	if !r.Gated || !r.Regressed || r.Ratio != 1.5 || r.Baseline != 100 {
		t.Fatalf("unexpected result: %+v", r)
	}
}

func TestCompareAllocsGating(t *testing.T) {
	gate := regexp.MustCompile(`ToCSR`)
	baseNs := map[string]float64{"BenchmarkToCSR": 100, "BenchmarkFirstPassageCDF": 100}
	baseAllocs := map[string]float64{"BenchmarkToCSR": 10, "BenchmarkFirstPassageCDF": 10}
	cases := []struct {
		name       string
		ns, allocs map[string]float64
		wantFailed bool
	}{
		{"time flat, allocs flat", map[string]float64{"BenchmarkToCSR": 100}, map[string]float64{"BenchmarkToCSR": 10}, false},
		{"time flat, allocs within threshold", map[string]float64{"BenchmarkToCSR": 100}, map[string]float64{"BenchmarkToCSR": 12}, false},
		{"time flat, allocs beyond threshold", map[string]float64{"BenchmarkToCSR": 100}, map[string]float64{"BenchmarkToCSR": 13}, true},
		{"ungated allocs regression ignored", map[string]float64{"BenchmarkFirstPassageCDF": 100}, map[string]float64{"BenchmarkFirstPassageCDF": 100}, false},
		{"no current allocs: time-only gate", map[string]float64{"BenchmarkToCSR": 100}, nil, false},
		{"no baseline allocs: time-only gate", map[string]float64{"BenchmarkToCSR": 100}, map[string]float64{"BenchmarkToCSR": 1000}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ba := baseAllocs
			if tc.name == "no baseline allocs: time-only gate" {
				ba = nil
			}
			rep := compare(tc.ns, tc.allocs, baseNs, ba, gate, 1.2, 1.25)
			if rep.Failed != tc.wantFailed {
				t.Fatalf("Failed = %v, want %v (%+v)", rep.Failed, tc.wantFailed, rep.Results)
			}
		})
	}
}

func TestScalingCompareRatioRule(t *testing.T) {
	current := map[string]float64{
		"BenchmarkTransientWorkers/workers=1": 10_000_000,
		"BenchmarkTransientWorkers/workers=2": 9_000_000,
		"BenchmarkTransientWorkers/workers=8": 15_000_000, // 1.5x: regression
		"BenchmarkOtherWorkers/workers=1":     1_000_000,
		"BenchmarkOtherWorkers/workers=4":     1_100_000, // 1.1x: fine
		"BenchmarkUngated/workers=1":          5_000_000,
		"BenchmarkUngated/workers=8":          50_000_000, // terrible but ungated
		"BenchmarkNoBaseline/workers=8":       1_000_000,  // no workers=1: skipped
		"BenchmarkTransientSeries/cached":     3_000_000,  // not a workers family
	}
	gate := regexp.MustCompile(`Transient|Other`)
	got := scalingCompare(current, gate, 1.3)
	if len(got) != 3 {
		t.Fatalf("want 3 scaling families, got %d: %+v", len(got), got)
	}
	byFam := map[string]ScalingResult{}
	for _, s := range got {
		byFam[s.Family] = s
	}
	tw := byFam["BenchmarkTransientWorkers"]
	if !tw.Gated || !tw.Regressed || tw.WorstWorkers != 8 || tw.Ratio != 1.5 {
		t.Fatalf("TransientWorkers verdict wrong: %+v", tw)
	}
	ow := byFam["BenchmarkOtherWorkers"]
	if !ow.Gated || ow.Regressed || ow.WorstWorkers != 4 {
		t.Fatalf("OtherWorkers verdict wrong: %+v", ow)
	}
	ug := byFam["BenchmarkUngated"]
	if ug.Gated || ug.Regressed {
		t.Fatalf("ungated family must never regress the run: %+v", ug)
	}
	if _, ok := byFam["BenchmarkNoBaseline"]; ok {
		t.Fatal("family without workers=1 must be skipped")
	}
}

func TestScalingCompareParsesRealNames(t *testing.T) {
	// End to end through the parser: GOMAXPROCS suffixes are stripped
	// before the workers= split, and min-over-repeats applies per name.
	out := `
BenchmarkTransientWorkers/workers=1-4   3  20000000 ns/op
BenchmarkTransientWorkers/workers=1-4   3  18000000 ns/op
BenchmarkTransientWorkers/workers=8-4   3  54000000 ns/op
`
	current, _, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	got := scalingCompare(current, regexp.MustCompile(`Workers`), 1.3)
	if len(got) != 1 {
		t.Fatalf("want 1 family, got %+v", got)
	}
	if got[0].BaselineNs != 18000000 || got[0].WorstNs != 54000000 || !got[0].Regressed {
		t.Fatalf("verdict wrong: %+v", got[0])
	}
	if got[0].Ratio != 3.0 {
		t.Fatalf("ratio = %g, want 3.0", got[0].Ratio)
	}
}

func TestScalingComparePlateauWarnOnly(t *testing.T) {
	// A family where no parallel variant beats workers=1 is flagged as a
	// plateau but never regressed on that basis alone — a GOMAXPROCS=1
	// runner produces exactly this shape for a healthy kernel.
	cases := []struct {
		name        string
		current     map[string]float64
		wantPlateau bool
	}{
		{"flat", map[string]float64{
			"BenchmarkTransientWorkers/workers=1": 10_000_000,
			"BenchmarkTransientWorkers/workers=2": 10_000_000,
			"BenchmarkTransientWorkers/workers=4": 11_000_000,
		}, true},
		{"scaling", map[string]float64{
			"BenchmarkTransientWorkers/workers=1": 10_000_000,
			"BenchmarkTransientWorkers/workers=2": 6_000_000,
			"BenchmarkTransientWorkers/workers=4": 4_000_000,
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := scalingCompare(tc.current, regexp.MustCompile(`Workers`), 1.3)
			if len(got) != 1 {
				t.Fatalf("want 1 family, got %+v", got)
			}
			if got[0].Plateau != tc.wantPlateau {
				t.Fatalf("Plateau = %v, want %v (%+v)", got[0].Plateau, tc.wantPlateau, got[0])
			}
			if got[0].Regressed {
				t.Fatalf("plateau/within-threshold family must not regress: %+v", got[0])
			}
		})
	}
}
