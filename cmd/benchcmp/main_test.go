package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/ctmc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTransientSeries/uncached-4         	      50	  22427268 ns/op
BenchmarkTransientSeries/cached-4           	     300	   3587139 ns/op	    1024 B/op	       3 allocs/op
BenchmarkFirstPassageCDF-4                  	     500	   2561139 ns/op
PASS
ok  	repro/internal/ctmc	4.2s
pkg: repro/internal/numeric/sparse
BenchmarkToCSR-4   	     100	  11000000 ns/op
BenchmarkToCSR-4   	     100	  10500000 ns/op
BenchmarkVecMulParallel/transpose-workers=2-4 	 1000	 400000 ns/op
--- some unrelated line ---
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTransientSeries/uncached":           22427268,
		"BenchmarkTransientSeries/cached":             3587139,
		"BenchmarkFirstPassageCDF":                    2561139,
		"BenchmarkToCSR":                              10500000, // min of the two runs
		"BenchmarkVecMulParallel/transpose-workers=2": 400000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %g, want %g", name, got[name], ns)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkToCSR-8": "BenchmarkToCSR",
		"BenchmarkToCSR":   "BenchmarkToCSR",
		"BenchmarkVecMulParallel/transpose-workers=2-4": "BenchmarkVecMulParallel/transpose-workers=2",
		"BenchmarkTransientWorkers/workers=8-16":        "BenchmarkTransientWorkers/workers=8",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGating(t *testing.T) {
	gate := regexp.MustCompile(`TransientSeries|ToCSR`)
	base := map[string]float64{
		"BenchmarkTransientSeries/cached": 100,
		"BenchmarkToCSR":                  100,
		"BenchmarkFirstPassageCDF":        100,
	}
	cases := []struct {
		name       string
		current    map[string]float64
		wantFailed bool
	}{
		{"all flat", map[string]float64{"BenchmarkTransientSeries/cached": 100, "BenchmarkToCSR": 100, "BenchmarkFirstPassageCDF": 100}, false},
		{"gated within threshold", map[string]float64{"BenchmarkToCSR": 119}, false},
		{"gated beyond threshold", map[string]float64{"BenchmarkToCSR": 121}, true},
		{"ungated regression ignored", map[string]float64{"BenchmarkFirstPassageCDF": 500}, false},
		{"new benchmark never fails", map[string]float64{"BenchmarkTransientSeries/brandnew": 1e9}, false},
		{"improvement never fails", map[string]float64{"BenchmarkTransientSeries/cached": 10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := compare(tc.current, base, gate, 1.2)
			if rep.Failed != tc.wantFailed {
				t.Fatalf("Failed = %v, want %v (%+v)", rep.Failed, tc.wantFailed, rep.Results)
			}
		})
	}
}

func TestCompareFlagsRegressedResult(t *testing.T) {
	gate := regexp.MustCompile(`ToCSR`)
	rep := compare(map[string]float64{"BenchmarkToCSR": 150}, map[string]float64{"BenchmarkToCSR": 100}, gate, 1.2)
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	r := rep.Results[0]
	if !r.Gated || !r.Regressed || r.Ratio != 1.5 || r.Baseline != 100 {
		t.Fatalf("unexpected result: %+v", r)
	}
}
