// Command benchcmp compares `go test -bench` output against a committed
// baseline and fails when a gated benchmark regresses beyond a threshold.
// It backs `make bench-compare` (see docs/PERFORMANCE.md):
//
//	go test -bench=. ./... | benchcmp -baseline BENCH_baseline.json
//	go test -bench=. ./... | benchcmp -baseline BENCH_baseline.json -update
//
// Benchmark names are normalized by stripping the trailing -N GOMAXPROCS
// suffix, so baselines survive core-count changes; ns/op is the compared
// quantity, and allocs/op is compared too when the input was produced
// with -benchmem. Only benchmarks whose normalized name matches -gate can
// fail the run — everything else is reported informationally.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/sigctx"
)

// Baseline is the persisted benchmark snapshot (BENCH_baseline.json).
type Baseline struct {
	// Note records where the numbers came from; informational only.
	Note string `json:"note,omitempty"`
	// NsPerOp maps the normalized benchmark name to its ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps the normalized benchmark name to its allocs/op.
	// Present only for benchmarks recorded with -benchmem.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Baseline is the stored ns/op, 0 when the benchmark is new.
	Baseline float64 `json:"baseline_ns_per_op,omitempty"`
	// Ratio is current/baseline (>1 means slower), 0 when new.
	Ratio float64 `json:"ratio,omitempty"`
	// AllocsPerOp is the measured allocs/op; present with -benchmem.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// BaselineAllocs is the stored allocs/op, 0 when absent.
	BaselineAllocs float64 `json:"baseline_allocs_per_op,omitempty"`
	// AllocsRatio is current/baseline allocs per op, 0 when either side
	// is missing. Allocation counts are near-deterministic, so this
	// catches scratch-buffer regressions absolute timings absorb in noise.
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
	// Gated marks benchmarks that can fail the run.
	Gated bool `json:"gated"`
	// Regressed is set when Gated and Ratio (time or allocs) exceeds its
	// threshold.
	Regressed bool `json:"regressed"`
}

// ScalingResult is the per-family verdict of the scaling-ratio rule: for
// each benchmark family with `/workers=N` sub-benchmarks, every N > 1 is
// compared against the family's own workers=1 time *within the current
// run*. Absolute thresholds catch drift against the committed baseline;
// this rule catches negative parallel scaling that an absolute gate would
// miss entirely (every worker count can regress in lockstep and still
// pass a per-name ratio check).
type ScalingResult struct {
	Family string `json:"family"`
	// BaselineNs is the family's workers=1 ns/op in this run.
	BaselineNs float64 `json:"workers1_ns_per_op"`
	// WorstNs/WorstWorkers identify the slowest parallel variant.
	WorstNs      float64 `json:"worst_ns_per_op"`
	WorstWorkers int     `json:"worst_workers"`
	// Ratio is WorstNs / BaselineNs (> 1 means parallel slower than
	// sequential).
	Ratio     float64 `json:"ratio"`
	Gated     bool    `json:"gated"`
	Regressed bool    `json:"regressed"`
	// BestNs/BestWorkers identify the fastest parallel variant.
	BestNs      float64 `json:"best_ns_per_op,omitempty"`
	BestWorkers int     `json:"best_workers,omitempty"`
	// Plateau is set when no parallel variant beats workers=1 — flat or
	// inverted scaling. Warn-only, never a failure: a GOMAXPROCS=1 runner
	// produces exactly this shape for a perfectly healthy kernel, so the
	// rule reports the symptom and leaves the diagnosis to a human
	// (docs/PERFORMANCE.md).
	Plateau bool `json:"plateau,omitempty"`
}

// Report is the JSON comparison artifact written by -out.
type Report struct {
	Threshold       float64  `json:"threshold"`
	AllocsThreshold float64  `json:"allocs_threshold,omitempty"`
	Gate            string   `json:"gate"`
	Results         []Result `json:"results"`
	// ScalingThreshold/ScalingGate parameterize the scaling-ratio rule;
	// Scaling holds one entry per family with workers= sub-benchmarks.
	ScalingThreshold float64         `json:"scaling_threshold,omitempty"`
	ScalingGate      string          `json:"scaling_gate,omitempty"`
	Scaling          []ScalingResult `json:"scaling,omitempty"`
	Failed           bool            `json:"failed"`
}

// benchLine matches e.g. "BenchmarkToCSR-4   	 100	  12345678 ns/op	..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// allocsSuffix matches the trailing -benchmem column on the same line,
// e.g. "	    1024 B/op	       3 allocs/op".
var allocsSuffix = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// gomaxprocsSuffix strips the trailing -N that `go test` appends for
// GOMAXPROCS != 1, so baselines transfer between machines with different
// core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// parseBench extracts (normalized name -> ns/op) pairs from `go test -bench`
// output, plus (normalized name -> allocs/op) for lines carrying the
// -benchmem column. A benchmark appearing more than once (e.g. several
// packages or -count > 1) keeps its minimum — the least noisy estimate.
func parseBench(r io.Reader) (ns, allocs map[string]float64, err error) {
	ns = map[string]float64{}
	allocs = map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("benchcmp: bad ns/op in %q: %v", sc.Text(), err)
		}
		name := normalizeName(m[1])
		if prev, ok := ns[name]; !ok || v < prev {
			ns[name] = v
		}
		if am := allocsSuffix.FindStringSubmatch(sc.Text()); am != nil {
			a, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchcmp: bad allocs/op in %q: %v", sc.Text(), err)
			}
			if prev, ok := allocs[name]; !ok || a < prev {
				allocs[name] = a
			}
		}
	}
	return ns, allocs, sc.Err()
}

// compare builds the report for current vs baseline. A gated benchmark
// regresses when its ns/op ratio exceeds threshold OR its allocs/op ratio
// exceeds allocsThreshold (the latter only when both sides carry an
// allocation count — baselines recorded before -benchmem gate on time
// alone until re-recorded).
func compare(current, currentAllocs, base, baseAllocs map[string]float64, gate *regexp.Regexp, threshold, allocsThreshold float64) Report {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	rep := Report{Threshold: threshold, AllocsThreshold: allocsThreshold, Gate: gate.String()}
	for _, name := range names {
		res := Result{Name: name, NsPerOp: current[name], Gated: gate.MatchString(name)}
		if b, ok := base[name]; ok && b > 0 {
			res.Baseline = b
			res.Ratio = res.NsPerOp / b
			res.Regressed = res.Gated && res.Ratio > threshold
		}
		if a, ok := currentAllocs[name]; ok {
			res.AllocsPerOp = a
			if ba, ok := baseAllocs[name]; ok && ba > 0 {
				res.BaselineAllocs = ba
				res.AllocsRatio = a / ba
				if res.Gated && res.AllocsRatio > allocsThreshold {
					res.Regressed = true
				}
			}
		}
		if res.Regressed {
			rep.Failed = true
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// workersVariant splits a normalized benchmark name into its family and
// worker count, e.g. "BenchmarkTransientWorkers/workers=8" -> family
// "BenchmarkTransientWorkers", workers 8.
var workersVariant = regexp.MustCompile(`^(.+)/workers=([0-9]+)$`)

// scalingCompare applies the scaling-ratio rule to the current run:
// within each `family/workers=N` group, every N > 1 is compared against
// the family's workers=1 time, and a gated family whose worst ratio
// exceeds the threshold is marked regressed. Families without a
// workers=1 variant are skipped (there is nothing to normalize by).
func scalingCompare(current map[string]float64, gate *regexp.Regexp, threshold float64) []ScalingResult {
	type variant struct {
		workers int
		ns      float64
	}
	families := map[string][]variant{}
	for name, ns := range current {
		m := workersVariant.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		w, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		families[m[1]] = append(families[m[1]], variant{workers: w, ns: ns})
	}
	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	sort.Strings(names)
	var out []ScalingResult
	for _, fam := range names {
		var base float64
		for _, v := range families[fam] {
			if v.workers == 1 {
				base = v.ns
			}
		}
		if base <= 0 {
			continue
		}
		res := ScalingResult{Family: fam, BaselineNs: base, Gated: gate.MatchString(fam)}
		for _, v := range families[fam] {
			if v.workers <= 1 {
				continue
			}
			if ratio := v.ns / base; ratio > res.Ratio {
				res.Ratio = ratio
				res.WorstNs = v.ns
				res.WorstWorkers = v.workers
			}
			if res.BestWorkers == 0 || v.ns < res.BestNs {
				res.BestNs = v.ns
				res.BestWorkers = v.workers
			}
		}
		if res.WorstWorkers == 0 {
			continue // only a workers=1 variant: nothing to compare
		}
		res.Regressed = res.Gated && res.Ratio > threshold
		// Flat-or-worse scaling: warn only. The absolute gate above already
		// bounds how much worse "worse" may be.
		res.Plateau = res.BestNs >= base
		out = append(out, res)
	}
	return out
}

func formatReport(w io.Writer, rep Report) {
	fmt.Fprintf(w, "%-60s %14s %14s %8s %12s\n", "benchmark", "ns/op", "baseline", "ratio", "allocs/op")
	for _, r := range rep.Results {
		mark := " "
		if r.Regressed {
			mark = "!"
		} else if r.Gated {
			mark = "*"
		}
		allocs := "-"
		if r.AllocsPerOp > 0 || r.BaselineAllocs > 0 {
			allocs = fmt.Sprintf("%.0f", r.AllocsPerOp)
			if r.AllocsRatio > 0 {
				allocs += fmt.Sprintf(" (%.2fx)", r.AllocsRatio)
			}
		}
		if r.Baseline > 0 {
			fmt.Fprintf(w, "%s %-58s %14.0f %14.0f %7.2fx %12s\n", mark, r.Name, r.NsPerOp, r.Baseline, r.Ratio, allocs)
		} else {
			fmt.Fprintf(w, "%s %-58s %14.0f %14s %8s %12s\n", mark, r.Name, r.NsPerOp, "(new)", "-", allocs)
		}
	}
	fmt.Fprintln(w, "(* gated benchmark, ! gated regression beyond threshold)")
	if len(rep.Scaling) > 0 {
		fmt.Fprintf(w, "\n%-60s %14s %14s %8s\n", "scaling family", "workers=1", "worst", "ratio")
		for _, s := range rep.Scaling {
			mark := " "
			if s.Regressed {
				mark = "!"
			} else if s.Gated {
				mark = "*"
			}
			fmt.Fprintf(w, "%s %-58s %14.0f %14.0f %6.2fx (workers=%d)\n", mark, s.Family, s.BaselineNs, s.WorstNs, s.Ratio, s.WorstWorkers)
		}
		fmt.Fprintln(w, "(ratio = slowest parallel variant / workers=1, within this run)")
		for _, s := range rep.Scaling {
			if s.Plateau {
				fmt.Fprintf(w, "warn: %s: no parallel variant beats workers=1 (best workers=%d at %.0f ns/op); flat scaling — GOMAXPROCS-limited runner? (warn-only, never fails)\n",
					s.Family, s.BestWorkers, s.BestNs)
			}
		}
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline snapshot to compare against")
	update := flag.Bool("update", false, "rewrite the baseline from the parsed input instead of comparing")
	gateExpr := flag.String("gate", "TransientSeries|ToCSR|AssemblyReuse|PerturbationSweep", "regexp of benchmark names that may fail the run")
	threshold := flag.Float64("threshold", 1.2, "max allowed current/baseline ns per op ratio for gated benchmarks")
	allocsThreshold := flag.Float64("allocs-threshold", 1.25, "max allowed current/baseline allocs per op ratio for gated benchmarks (compared only when both sides were recorded with -benchmem)")
	scalingGateExpr := flag.String("scaling-gate", "Workers", "regexp of benchmark families whose workers=N variants may fail the scaling-ratio rule")
	scalingThreshold := flag.Float64("scaling-threshold", 1.3, "max allowed workers=N / workers=1 ns per op ratio within the current run (lenient enough for single-core runners)")
	out := flag.String("out", "", "also write the comparison report as JSON to this file")
	note := flag.String("note", "", "note stored in the baseline with -update")
	flag.Parse()

	// SIGINT or SIGTERM while parsing stdin cancels before any file is
	// written; a second signal force-aborts.
	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()

	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		return fmt.Errorf("benchcmp: bad -gate: %v", err)
	}
	scalingGate, err := regexp.Compile(*scalingGateExpr)
	if err != nil {
		return fmt.Errorf("benchcmp: bad -scaling-gate: %v", err)
	}
	current, currentAllocs, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("benchcmp: interrupted: %w", cerr)
	}
	if len(current) == 0 {
		return fmt.Errorf("benchcmp: no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *update {
		b := Baseline{Note: *note, NsPerOp: current}
		if len(currentAllocs) > 0 {
			b.AllocsPerOp = currentAllocs
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchcmp: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("benchcmp: %v (run with -update to record a baseline)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchcmp: %s: %v", *baselinePath, err)
	}
	rep := compare(current, currentAllocs, base.NsPerOp, base.AllocsPerOp, gate, *threshold, *allocsThreshold)
	rep.ScalingThreshold = *scalingThreshold
	rep.ScalingGate = scalingGate.String()
	rep.Scaling = scalingCompare(current, scalingGate, *scalingThreshold)
	for _, s := range rep.Scaling {
		if s.Regressed {
			rep.Failed = true
		}
	}
	formatReport(os.Stdout, rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.Failed {
		for _, s := range rep.Scaling {
			if s.Regressed {
				return fmt.Errorf("benchcmp: %s workers=%d is %.2fx slower than workers=1 (scaling threshold %.2fx)",
					s.Family, s.WorstWorkers, s.Ratio, *scalingThreshold)
			}
		}
		return fmt.Errorf("benchcmp: gated benchmark regressed beyond %.2fx ns/op (or %.2fx allocs/op)", *threshold, *allocsThreshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
