// Command pepa is the native PEPA workbench CLI: it parses a model file,
// derives its state space, and prints steady-state measures, a passage-time
// CDF, or an activity diagram.
//
// Usage:
//
//	pepa <model.pepa>                            steady state + throughput
//	pepa <model.pepa> -cdf <pattern> -tmax 100 -n 50
//	pepa <model.pepa> -dot                       activity diagram (DOT)
//	pepa <model.pepa> -text                      activity diagram (text)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ctmc"
	"repro/internal/diagram"
	"repro/internal/experiment"
	"repro/internal/export"
	"repro/internal/obs"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
	"repro/internal/pepa/sim"
	"repro/internal/query"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pepa:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("pepa", flag.ContinueOnError)
	cdfPattern := fs.String("cdf", "", "compute passage-time CDF to states whose term contains this pattern")
	tmax := fs.Float64("tmax", 100, "CDF horizon")
	n := fs.Int("n", 50, "CDF sample intervals")
	dot := fs.Bool("dot", false, "print the activity diagram in DOT")
	text := fs.Bool("text", false, "print the activity diagram as text")
	maxStates := fs.Int("max-states", 1<<20, "state-space bound")
	aggregate := fs.Bool("aggregate", false, "lump permutations of interchangeable parallel components")
	simulate := fs.Float64("sim", 0, "simulate to this horizon instead of numerical solution")
	simSeed := fs.Uint64("seed", 1, "simulation seed")
	simReps := fs.Int("reps", 1, "simulation replications")
	sweep := fs.String("sweep", "", "rate sweep 'name:lo:hi:n' (with -measure)")
	measure := fs.String("measure", "", "sweep measure: throughput:<action> | utilization:<pattern> | median:<pattern>")
	exportMM := fs.String("export-generator", "", "write the generator matrix (Matrix Market) to this file")
	exportLTS := fs.String("export-lts", "", "write the transition system (CSV) to this file")
	checkProps := fs.String("check", "", "evaluate ';'-separated CSL-style properties, e.g. 'S>=0.9[\"Proc\"]; T>=2[serve]'")
	metricsOut := fs.String("metrics-out", "", "write a JSON solver-metrics snapshot to this file on exit")
	workers := fs.Int("workers", 0, "goroutines for the solver's matrix kernels (0 or 1 sequential; results are bit-identical)")
	timeout := fs.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); SIGINT/SIGTERM also cancel, a second signal force-aborts")
	ckPath := fs.String("checkpoint", "", "persist finished simulation replications to this file (crash-safe); with -resume, skip the ones already there")
	resume := fs.Bool("resume", false, "reuse matching replications from -checkpoint instead of starting fresh")

	args := os.Args[1:]
	if len(args) == 0 {
		return fmt.Errorf("usage: pepa <model.pepa> [flags]")
	}
	path := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *ckPath != "" && !*resume {
		if err := os.Remove(*ckPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	// The registry stays nil (and free) unless a snapshot was requested.
	// The snapshot is written on every exit path, including errors, so a
	// failed solve still leaves its partial solver metrics behind.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		defer func() {
			f, ferr := os.Create(*metricsOut)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "pepa: metrics-out:", ferr)
				return
			}
			defer f.Close()
			if werr := reg.Snapshot().WriteJSON(f); werr != nil {
				fmt.Fprintln(os.Stderr, "pepa: metrics-out:", werr)
			}
		}()
	}

	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := pepa.Parse(string(src))
	if err != nil {
		return err
	}
	check := pepa.Check(m)
	for _, w := range check.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	if err := check.Err(); err != nil {
		return err
	}
	// Simulation and sweeps do not need (or want) the full state space.
	if *simulate > 0 {
		ens, err := sim.RunEnsembleCtx(ctx, m, sim.Options{Horizon: *simulate, Seed: *simSeed, Obs: reg, Checkpoint: *ckPath}, *simReps)
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d replication(s) to t=%g (mean %.0f events, %d deadlocked)\n",
			ens.Replications, *simulate, ens.MeanEvents, ens.Deadlocks)
		fmt.Println("mean throughput:")
		for _, a := range ens.Actions() {
			fmt.Printf("  %-16s %.6f\n", a, ens.MeanThroughput[a])
		}
		return nil
	}
	if *sweep != "" {
		return runSweep(m, *sweep, *measure)
	}
	deriveSpan := reg.StartSpan("derive")
	ss, err := derive.ExploreCtx(ctx, m, derive.Options{MaxStates: *maxStates, Aggregate: *aggregate})
	deriveSpan.End()
	if err != nil {
		return err
	}
	reg.Set("pepa_states", float64(ss.NumStates()))
	reg.Set("pepa_transitions", float64(ss.NumTransitions()))
	fmt.Printf("derived %d states, %d transitions\n", ss.NumStates(), ss.NumTransitions())
	if *exportMM != "" {
		f, err := os.Create(*exportMM)
		if err != nil {
			return err
		}
		if err := export.GeneratorMatrixMarket(f, ctmc.FromStateSpace(ss)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote generator to %s\n", *exportMM)
	}
	if *exportLTS != "" {
		f, err := os.Create(*exportLTS)
		if err != nil {
			return err
		}
		if err := export.TransitionsCSV(f, ss); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote transition system to %s\n", *exportLTS)
	}

	if *checkProps != "" {
		var props []string
		for _, p := range strings.Split(*checkProps, ";") {
			if strings.TrimSpace(p) != "" {
				props = append(props, strings.TrimSpace(p))
			}
		}
		results, err := query.CheckAll(ss, ctmc.FromStateSpace(ss), props, query.CheckOptions{})
		if err != nil {
			return err
		}
		allHold := true
		for _, r := range results {
			fmt.Println(r)
			if !r.Holds {
				allHold = false
			}
		}
		if !allHold {
			return fmt.Errorf("%d propert(ies) checked; some do not hold", len(results))
		}
		return nil
	}

	switch {
	case *dot:
		fmt.Print(diagram.DOT(ss, diagram.Options{Title: path, ShortLabels: true}))
		return nil
	case *text:
		fmt.Print(diagram.Text(ss, diagram.Options{Title: path}))
		return nil
	case *cdfPattern != "":
		targets := ss.StatesMatching(func(term string) bool {
			return contains(term, *cdfPattern)
		})
		if len(targets) == 0 {
			return fmt.Errorf("no state matches pattern %q", *cdfPattern)
		}
		chain := ctmc.FromStateSpace(ss)
		chain.Obs = reg
		chain.Workers = *workers
		times := make([]float64, *n+1)
		for i := range times {
			times[i] = *tmax * float64(i) / float64(*n)
		}
		cdfSpan := reg.StartSpan("passage_cdf")
		cdf, err := chain.FirstPassageCDFCtx(ctx, chain.PointMass(0), targets, times, 1e-10)
		cdfSpan.End()
		if err != nil {
			return err
		}
		fmt.Printf("passage-time CDF to %d state(s) matching %q\n", len(targets), *cdfPattern)
		fmt.Println("t\tP(T<=t)")
		for i := range cdf.Times {
			fmt.Printf("%.4f\t%.6f\n", cdf.Times[i], cdf.Probs[i])
		}
		fmt.Printf("median %.4f  mean %.4f\n", cdf.Quantile(0.5), cdf.Mean())
		return nil
	default:
		chain := ctmc.FromStateSpace(ss)
		chain.Obs = reg
		chain.Workers = *workers
		if dl := ss.Deadlocks(); len(dl) > 0 {
			fmt.Printf("model has %d absorbing state(s); steady-state analysis skipped\n", len(dl))
			return nil
		}
		ssSpan := reg.StartSpan("steady_state")
		pi, err := chain.SteadyStateCtx(ctx, ctmc.SteadyStateOptions{})
		ssSpan.End()
		if err != nil {
			return err
		}
		fmt.Println("steady-state distribution:")
		for s, p := range pi {
			fmt.Printf("  %.6f  %s\n", p, ss.States[s])
		}
		fmt.Println("throughput:")
		for _, a := range ss.ActionTypes {
			tp, err := chain.Throughput(pi, a)
			if err != nil {
				return err
			}
			fmt.Printf("  %-16s %.6f\n", a, tp)
		}
		fmt.Println(diagram.ActionSummary(ss))
		return nil
	}
}

// runSweep parses "-sweep name:lo:hi:n" and "-measure kind:arg" and prints
// the swept series as TSV.
func runSweep(m *pepa.Model, sweepSpec, measureSpec string) error {
	parts := strings.Split(sweepSpec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("bad -sweep %q (want name:lo:hi:n)", sweepSpec)
	}
	lo, err1 := strconv.ParseFloat(parts[1], 64)
	hi, err2 := strconv.ParseFloat(parts[2], 64)
	n, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil || n < 2 {
		return fmt.Errorf("bad -sweep %q", sweepSpec)
	}
	kind, arg, ok := strings.Cut(measureSpec, ":")
	if !ok {
		return fmt.Errorf("bad -measure %q (want kind:arg)", measureSpec)
	}
	var meas experiment.Measure
	switch kind {
	case "throughput":
		meas = experiment.Throughput{Action: arg}
	case "utilization":
		meas = experiment.Utilization{Pattern: arg}
	case "median":
		meas = experiment.PassageQuantile{Pattern: arg, Quantile: 0.5}
	default:
		return fmt.Errorf("unknown measure kind %q", kind)
	}
	series, err := experiment.RateSweep(m, parts[0], experiment.Linspace(lo, hi, n), meas)
	if err != nil {
		return err
	}
	fmt.Print(series.TSV())
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return len(sub) == 0
}
