package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd invokes run() with the given argv, capturing stdout.
func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"pepa"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func modelFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.pepa")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const model = "r = 1.0;\nP = (work, r).P1;\nP1 = (rest, 2).P;\nP\n"

func TestSteadyStateOutput(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"derived 2 states", "steady-state distribution", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCDFMode(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model), "-cdf", "P1", "-tmax", "5", "-n", "10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "passage-time CDF") || !strings.Contains(out, "median") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDotAndTextModes(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model), "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph activity") {
		t.Errorf("dot output:\n%s", out)
	}
	out, err = runCmd(t, modelFile(t, model), "-text")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "activities:") {
		t.Errorf("text output:\n%s", out)
	}
}

func TestSimMode(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model), "-sim", "500", "-reps", "2", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simulated 2 replication(s)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSweepMode(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model), "-sweep", "r:0.5:2:4", "-measure", "throughput:work")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r\tthroughput(work)") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, modelFile(t, model), "-sweep", "bad", "-measure", "throughput:work"); err == nil {
		t.Error("bad sweep spec accepted")
	}
	if _, err := runCmd(t, modelFile(t, model), "-sweep", "r:1:2:4", "-measure", "nope:x"); err == nil {
		t.Error("bad measure accepted")
	}
}

func TestCheckMode(t *testing.T) {
	out, err := runCmd(t, modelFile(t, model), "-check", `S>=0.3["P1"]; T>=0.3[work]`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "= true") != 2 {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, modelFile(t, model), "-check", `S>=0.9["P1"]`); err == nil {
		t.Error("failing property did not set exit error")
	}
}

func TestExportFlags(t *testing.T) {
	dir := t.TempDir()
	gen := filepath.Join(dir, "gen.mtx")
	lts := filepath.Join(dir, "lts.csv")
	if _, err := runCmd(t, modelFile(t, model), "-export-generator", gen, "-export-lts", lts); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{gen, lts} {
		data, err := os.ReadFile(f)
		if err != nil || len(data) == 0 {
			t.Errorf("export file %s missing or empty", f)
		}
	}
}

func TestAggregateFlag(t *testing.T) {
	src := "C = (up, 1).D; D = (down, 2).C;\nC || C || C || C\n"
	out, err := runCmd(t, modelFile(t, src), "-aggregate")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derived 5 states") {
		t.Errorf("aggregation did not lump (want 5 states):\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no arguments accepted")
	}
	if _, err := runCmd(t, filepath.Join(t.TempDir(), "missing.pepa")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runCmd(t, modelFile(t, "P = ;")); err == nil {
		t.Error("bad model accepted")
	}
	if _, err := runCmd(t, modelFile(t, model), "-cdf", "Nowhere"); err == nil {
		t.Error("unmatched pattern accepted")
	}
}

func TestDeadlockedModelSkipsSteadyState(t *testing.T) {
	src := "P = (a, 1).Q; Q = (halt, 1).Q; R = (a, T).R; (P <a,halt> R)\n"
	// Q offers halt, R never does: absorbing after one step.
	out, err := runCmd(t, modelFile(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "absorbing state") {
		t.Errorf("output:\n%s", out)
	}
}
