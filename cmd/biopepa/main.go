// Command biopepa is the native Bio-PEPA CLI: ODE integration, Gillespie
// stochastic simulation, and CTMC export for Bio-PEPA models.
//
// Usage:
//
//	biopepa <model.biopepa> -analysis ode -horizon 100 -n 50
//	biopepa <model.biopepa> -analysis ssa -horizon 100 -n 50 -seed 1 -reps 10
//	biopepa <model.biopepa> -analysis ctmc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/biopepa"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "biopepa:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("biopepa", flag.ContinueOnError)
	analysis := fs.String("analysis", "ode", "ode, ssa, or ctmc")
	horizon := fs.Float64("horizon", 100, "integration/simulation horizon")
	n := fs.Int("n", 50, "output intervals")
	seed := fs.Uint64("seed", 1, "SSA random seed")
	reps := fs.Int("reps", 1, "SSA replications (mean reported when > 1)")
	sbmlOut := fs.String("sbml", "", "export the model as SBML to this file and exit")
	timeout := fs.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); SIGINT/SIGTERM also cancel, a second signal force-aborts")

	args := os.Args[1:]
	if len(args) == 0 {
		return fmt.Errorf("usage: biopepa <model.biopepa> [flags]")
	}
	path := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m *biopepa.Model
	if strings.HasSuffix(path, ".xml") || strings.HasSuffix(path, ".sbml") {
		m, err = biopepa.FromSBML(src)
	} else {
		m, err = biopepa.Parse(string(src))
	}
	if err != nil {
		return err
	}
	if *sbmlOut != "" {
		doc, err := m.ToSBML("")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*sbmlOut, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote SBML to %s (%d bytes)\n", *sbmlOut, len(doc))
		return nil
	}
	header := func() {
		fmt.Print("t")
		for _, sp := range m.Species {
			fmt.Printf("\t%s", sp.Name)
		}
		fmt.Println()
	}
	switch *analysis {
	case "ode":
		res, err := m.SolveODECtx(ctx, *horizon, *n)
		if err != nil {
			return err
		}
		fmt.Printf("Bio-PEPA ODE analysis (%d species)\n", len(m.Species))
		header()
		for k := range res.Times {
			fmt.Printf("%.4f", res.Times[k])
			for i := range m.Species {
				fmt.Printf("\t%.6f", res.X[k][i])
			}
			fmt.Println()
		}
	case "ssa":
		var res *biopepa.SSAResult
		if *reps > 1 {
			res, err = m.MeanSSACtx(ctx, *horizon, *n, *reps, *seed)
		} else {
			res, err = m.SimulateSSACtx(ctx, *horizon, *n, *seed)
		}
		if err != nil {
			return err
		}
		fmt.Printf("Bio-PEPA SSA (seed %d, reps %d, %d total reactions)\n", *seed, *reps, res.Jumps)
		header()
		for k := range res.Times {
			fmt.Printf("%.4f", res.Times[k])
			for i := range m.Species {
				fmt.Printf("\t%.4f", res.X[k][i])
			}
			fmt.Println()
		}
	case "ctmc":
		space, err := m.BuildCTMCCtx(ctx, biopepa.CTMCOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("Bio-PEPA CTMC: %d discrete states\n", len(space.States))
		fmt.Printf("generator nonzeros: %d\n", space.Chain.Q.NNZ())
	default:
		return fmt.Errorf("unknown analysis %q", *analysis)
	}
	return nil
}
