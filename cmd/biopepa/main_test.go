package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"biopepa"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

const bioModel = `
k = 0.5;
kineticLawOf decay : fMA(k);
S = (decay, 1) <<;
S[10]
`

func modelFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.biopepa")
	if err := os.WriteFile(path, []byte(bioModel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestODEAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "ode", "-horizon", "4", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Bio-PEPA ODE analysis") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSSAAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "ssa", "-horizon", "4", "-n", "4", "-seed", "3", "-reps", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Bio-PEPA SSA") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCTMCAnalysis(t *testing.T) {
	out, err := runCmd(t, modelFile(t), "-analysis", "ctmc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "11 discrete states") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSBMLExport(t *testing.T) {
	target := filepath.Join(t.TempDir(), "out.xml")
	out, err := runCmd(t, modelFile(t), "-sbml", target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote SBML") {
		t.Errorf("output:\n%s", out)
	}
	data, err := os.ReadFile(target)
	if err != nil || !strings.Contains(string(data), "<sbml") {
		t.Errorf("SBML file bad: %v", err)
	}
}

func TestSBMLImportRoundTrip(t *testing.T) {
	// Export the model to SBML, then run the ODE analysis directly from
	// the SBML file: the import path must produce identical dynamics.
	xmlPath := filepath.Join(t.TempDir(), "m.xml")
	if _, err := runCmd(t, modelFile(t), "-sbml", xmlPath); err != nil {
		t.Fatal(err)
	}
	fromBio, err := runCmd(t, modelFile(t), "-analysis", "ode", "-horizon", "4", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	fromSBML, err := runCmd(t, xmlPath, "-analysis", "ode", "-horizon", "4", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	// Same table rows (headers identical, values identical).
	if fromBio != fromSBML {
		t.Errorf("SBML-imported analysis differs:\n%s\nvs\n%s", fromBio, fromSBML)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no args accepted")
	}
	if _, err := runCmd(t, modelFile(t), "-analysis", "wat"); err == nil {
		t.Error("unknown analysis accepted")
	}
	if _, err := runCmd(t, filepath.Join(t.TempDir(), "nope.biopepa")); err == nil {
		t.Error("missing file accepted")
	}
}
