package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout, oldFlags := os.Args, os.Stdout, flag.CommandLine
	defer func() {
		os.Args, os.Stdout, flag.CommandLine = oldArgs, oldStdout, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("repro", flag.ContinueOnError)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"repro"}, args...)
	runErr := run()
	w.Close()
	var out strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	r.Close()
	return out.String(), runErr
}

func TestSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"table1":     "Mapping A",
		"fig1":       "match=true",
		"fig2":       "digraph activity",
		"fig6":       "digest-ok=true",
		"security":   "escalation-possible=false",
		"futurework": "container output identical to native: true",
		"badges":     "earned 5/5 badges",
	}
	for name, want := range cases {
		out, err := runCmd(t, "-only", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q:\n%s", name, want, out)
		}
	}
}

func TestOutdirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCmd(t, "-only", "table1", "-outdir", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a5,a9,a12,a17,a20") {
		t.Errorf("table1.txt content:\n%s", data)
	}
}

func TestFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	out, err := runCmd(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, banner := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "matrix", "motivation", "security", "futurework", "badges"} {
		if !strings.Contains(out, "==== "+banner) {
			t.Errorf("experiment %s missing from full run", banner)
		}
	}
}
