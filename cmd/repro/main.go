// Command repro regenerates every table and figure of the paper's
// evaluation:
//
//	table1   Table I   — the two application-to-machine mappings
//	fig1     Fig 1     — simple PEPA model, container vs native validation
//	fig2     Fig 2     — activity diagram of machine M3 under Mapping A
//	fig3     Fig 3     — finishing-time CDF of M1 under Mapping A
//	fig4     Fig 4     — finishing-time CDF of M1 under Mapping B
//	fig5     Fig 5     — clientServerScalability.gpepa in the GPA container
//	fig6     Fig 6     — hub collection listing + pull of every container
//	matrix   §III      — cross-platform validation matrix (7 hosts x 3 tools)
//	motivation §I-II   — native-install failures vs container pulls
//	security  §II.C    — Docker vs Singularity escalation behaviour
//
// Usage: repro [-only <experiment>] [-outdir DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hostenv"
	"repro/internal/hub"
	"repro/internal/obs"
	"repro/internal/robustness"
	"repro/internal/runtime"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	desc string
	fn   func(context.Context, *state) (string, error)
}

// state carries artifacts shared between experiments (built images, hub).
type state struct {
	fw      *core.Framework
	builder *hostenv.Host
	builds  map[core.Tool]*runtime.BuildResult
	hubSrv  *hub.Server
	hubCli  *hub.Client
	digests map[core.Tool]string
	study   *robustness.Study
	obs     *obs.Registry // nil unless -metrics-out is set
}

func newState(ctx context.Context, reg *obs.Registry) (*state, error) {
	st := &state{fw: core.New(), study: robustness.NewStudy(), obs: reg}
	st.fw.SetObs(reg)
	st.study.Obs = reg
	var err error
	st.builder, err = hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		return nil, err
	}
	if err := st.builder.InstallSingularity(); err != nil {
		return nil, err
	}
	st.builds, err = st.fw.BuildAllCtx(ctx, st.builder)
	if err != nil {
		return nil, err
	}
	st.hubSrv = hub.NewServer(hub.NewStore())
	addr, err := st.hubSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	st.hubCli = hub.NewClientWithOptions("http://"+addr, hub.ClientOptions{Obs: reg})
	st.digests, err = st.fw.PushAll(st.hubCli, st.builds)
	if err != nil {
		return nil, err
	}
	return st, nil
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table I: mappings A and B", table1},
		{"fig1", "Fig 1: PEPA container validation", fig1},
		{"fig2", "Fig 2: activity diagram of M3 (Mapping A)", fig2},
		{"fig3", "Fig 3: finishing-time CDF of M1, Mapping A", fig3},
		{"fig4", "Fig 4: finishing-time CDF of M1, Mapping B", fig4},
		{"fig5", "Fig 5: clientServerScalability.gpepa in the GPA container", fig5},
		{"fig6", "Fig 6: hub collection + pull of each container", fig6},
		{"matrix", "SIII: cross-platform validation matrix", matrix},
		{"motivation", "SI-II: native install failures vs container pulls", motivation},
		{"security", "SII.C: Docker vs Singularity privilege escalation", security},
		{"futurework", "SIV: containerizing a further tool (CSL model checker)", futurework},
		{"badges", "SII.B: ACM artifact badge self-assessment", badges},
	}
}

func run() error {
	only := flag.String("only", "", "run a single experiment by name")
	outdir := flag.String("outdir", "", "also write each experiment's output to DIR/<name>.txt")
	chaosSeed := flag.Uint64("chaos-seed", 0, "run the Fig 6 hub experiment under a seeded fault plan (0 = off)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics+span snapshot to this file on exit")
	workers := flag.Int("workers", 0, "goroutines per CTMC solve in the robustness study (0 or 1 sequential; results are bit-identical)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline); SIGINT/SIGTERM also cancel, a second signal force-aborts")
	ckPath := flag.String("checkpoint", "", "persist finished robustness-study cells to this file (crash-safe); with -resume, skip the ones already there")
	resume := flag.Bool("resume", false, "reuse matching study cells from -checkpoint instead of starting fresh")
	flag.Parse()

	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *ckPath != "" && !*resume {
		if err := os.Remove(*ckPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	st, err := newState(ctx, reg)
	if err != nil {
		return err
	}
	st.study.Workers = *workers
	st.study.Checkpoint = *ckPath
	defer st.hubSrv.Close()
	exps := experiments()
	if *chaosSeed != 0 {
		seed := *chaosSeed
		exps = append(exps, experiment{
			"chaos", "resilience: Fig 6 hub pulls under injected faults",
			func(ctx context.Context, st *state) (string, error) { return chaos(st, seed) },
		})
	}
	for _, ex := range exps {
		if *only != "" && ex.name != *only {
			continue
		}
		sp := reg.StartSpan("experiment:" + ex.name)
		out, err := ex.fn(ctx, st)
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
		banner := fmt.Sprintf("==== %s — %s ====", ex.name, ex.desc)
		fmt.Println(banner)
		fmt.Println(out)
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*outdir, ex.name+".txt"), []byte(out), 0o644); err != nil {
				return err
			}
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	return nil
}

func table1(ctx context.Context, st *state) (string, error) {
	if err := robustness.CheckTableI(); err != nil {
		return "", err
	}
	return robustness.FormatTableI(), nil
}

func fig1(ctx context.Context, st *state) (string, error) {
	rep, err := st.fw.Validate(core.ToolPEPA, st.builder, st.builds[core.ToolPEPA].Image,
		"simple.pepa", core.SimplePEPAModel)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tool=%s host=%s match=%v\n", rep.Tool, rep.Host, rep.Match)
	fmt.Fprintf(&b, "image digest: %s\n", rep.Digest)
	b.WriteString("--- containerized output ---\n")
	b.WriteString(rep.ContainerOut)
	return b.String(), nil
}

func fig2(ctx context.Context, st *state) (string, error) {
	txt, err := st.study.ActivityText(robustness.MappingA, 2)
	if err != nil {
		return "", err
	}
	dot, err := st.study.ActivityDiagram(robustness.MappingA, 2)
	if err != nil {
		return "", err
	}
	return txt + "\n" + dot, nil
}

func cdfFigure(ctx context.Context, st *state, mapping string) (string, error) {
	times := make([]float64, 61)
	for i := range times {
		times[i] = float64(i) * 10
	}
	cdf, err := st.study.FinishingCDFCtx(ctx, mapping, 0, times)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "finishing-time CDF of machine M1, Mapping %s\n", mapping)
	b.WriteString("t\tP(T<=t)\n")
	for i := range cdf.Times {
		fmt.Fprintf(&b, "%.1f\t%.6f\n", cdf.Times[i], cdf.Probs[i])
	}
	fmt.Fprintf(&b, "median %.2f  mean %.2f\n", cdf.Quantile(0.5), cdf.Mean())
	return b.String(), nil
}

func fig3(ctx context.Context, st *state) (string, error) { return cdfFigure(ctx, st, robustness.MappingA) }
func fig4(ctx context.Context, st *state) (string, error) { return cdfFigure(ctx, st, robustness.MappingB) }

func fig5(ctx context.Context, st *state) (string, error) {
	ex := core.ExampleModel(core.ToolGPA)
	rep, err := st.fw.Validate(core.ToolGPA, st.builder, st.builds[core.ToolGPA].Image,
		ex.Name, ex.Source, ex.Args...)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "clientServerScalability.gpepa: container output matches native: %v\n", rep.Match)
	b.WriteString(rep.ContainerOut)
	return b.String(), nil
}

func fig6(ctx context.Context, st *state) (string, error) {
	var b strings.Builder
	colls, err := st.hubCli.Collections()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "hub collections: %s\n", strings.Join(colls, ", "))
	entries, err := st.hubCli.List(st.fw.Collection)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		fmt.Fprintf(&b, "  %s:%s  %s  %d bytes (built on %s)\n", e.Container, e.Tag, e.Digest[:19], e.Size, e.BuildHost)
	}
	b.WriteString("pulling each container with digest verification:\n")
	for _, tool := range core.Tools() {
		img, d, err := st.hubCli.Pull(st.fw.Collection, string(tool), "latest", st.digests[tool])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  pulled %s  digest-ok=%v\n", img.Ref(), d == st.digests[tool])
	}
	return b.String(), nil
}

// chaos re-runs the Fig 6 pulls against a fresh hub whose client
// transport injects a deterministic fault plan: fail the first pull
// with a connection error, then a 503, then a digest-corrupting bit
// flip — so every transient class and the corrupt re-pull path is
// exercised. Every digest still verifies, and the whole output
// (decisions, attempt log, digests) is byte-identical for a fixed seed.
func chaos(st *state, seed uint64) (string, error) {
	srv := hub.NewServer(hub.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer srv.Close()
	setup := hub.NewClient("http://" + addr)
	digests, err := st.fw.PushAll(setup, st.builds)
	if err != nil {
		return "", err
	}
	match := "GET /v1/" + st.fw.Collection + "/"
	plan := faultinject.NewPlan(seed,
		faultinject.Rule{Match: match, Kind: faultinject.KindConn, First: 1},
		faultinject.Rule{Match: match, Kind: faultinject.KindStatus, Status: 503, First: 1},
		faultinject.Rule{Match: match, Kind: faultinject.KindCorrupt, First: 1},
	)
	client := hub.NewClientWithOptions("http://"+addr, hub.ClientOptions{
		Retry:      hub.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: seed,
		Transport:  plan.Transport(nil),
		Obs:        st.obs,
	})
	var b strings.Builder
	fmt.Fprintf(&b, "pulling each container under fault plan (seed %d):\n", seed)
	for _, tool := range core.Tools() {
		img, d, err := client.Pull(st.fw.Collection, string(tool), "latest", digests[tool])
		if err != nil {
			return "", fmt.Errorf("chaos pull of %s: %w", tool, err)
		}
		fmt.Fprintf(&b, "  pulled %s  digest-ok=%v\n", img.Ref(), d == digests[tool])
	}
	b.WriteString("fault plan decisions:\n  " + strings.Join(plan.Log(), "\n  ") + "\n")
	b.WriteString("client attempt log:\n  " + strings.Join(client.AttemptLog(), "\n  ") + "\n")
	fmt.Fprintf(&b, "breaker state after run: %s\n", client.Breaker().State())
	return b.String(), nil
}

func matrix(ctx context.Context, st *state) (string, error) {
	entries, err := st.fw.ValidationMatrixCtx(ctx, st.hubCli)
	if err != nil {
		return "", err
	}
	return core.FormatMatrix(entries), nil
}

func motivation(ctx context.Context, st *state) (string, error) {
	var b strings.Builder
	b.WriteString("native install of each tool from the host's own repositories:\n")
	tools := core.Tools()
	var hostNames []string
	hostNames = append(hostNames, hostenv.Names()...)
	sort.Strings(hostNames)
	for _, hn := range hostNames {
		for _, tool := range tools {
			h, err := hostenv.ByName(hn)
			if err != nil {
				return "", err
			}
			pkg, err := tool.Package()
			if err != nil {
				return "", err
			}
			if err := h.NativeInstall(pkg); err != nil {
				short := err.Error()
				if i := strings.Index(short, "pkgmgr:"); i >= 0 {
					short = short[i:]
				}
				fmt.Fprintf(&b, "  %-24s %-8s FAIL: %s\n", hn, tool, short)
			} else {
				fmt.Fprintf(&b, "  %-24s %-8s ok\n", hn, tool)
			}
		}
	}
	b.WriteString("container pull+run succeeds on every profile (see matrix).\n")
	return b.String(), nil
}

func badges(ctx context.Context, st *state) (string, error) {
	report, err := st.fw.AssessBadges(st.hubCli)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("ACM artifact badges (ref [1]) measured against this artifact:\n")
	b.WriteString(report.String())
	fmt.Fprintf(&b, "earned %d/5 badges\n", len(report.Earned()))
	return b.String(), nil
}

func futurework(ctx context.Context, st *state) (string, error) {
	build, err := st.fw.BuildCtx(ctx, core.ToolMC, st.builder)
	if err != nil {
		return "", err
	}
	props := "S >= 0.8 [ \"Proc\" ]\nP >= 0.5 [ F<=1 \"ProcDown\" ]\nT >= 2 [ serve ]\n"
	rep, err := st.fw.ValidateWithFiles(core.ToolMC, st.builder, build.Image, "simple.pepa",
		map[string]string{"simple.pepa": core.SimplePEPAModel, "props.csl": props}, "props.csl")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fourth container %s built (digest %s)\n", build.Image.Ref(), mustDigest(build))
	fmt.Fprintf(&b, "container output identical to native: %v\n", rep.Match)
	b.WriteString(rep.ContainerOut)
	return b.String(), nil
}

func mustDigest(b *runtime.BuildResult) string {
	if len(b.Digest) >= 19 {
		return b.Digest[:19]
	}
	return b.Digest
}

func security(ctx context.Context, st *state) (string, error) {
	var b strings.Builder
	img := st.builds[core.ToolPEPA].Image
	for _, iso := range []runtime.Isolation{runtime.IsolationSingularity, runtime.IsolationDocker} {
		res, err := st.fw.Engine.Run(img, st.builder, runtime.RunOptions{
			Isolation:         iso,
			AttemptEscalation: true,
			Script:            "whoami",
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s user-in-container=%-8s escalation-possible=%v\n",
			iso, res.User, res.EscalationSucceeded)
	}
	b.WriteString("Singularity's no-escalation property is why multi-tenant HPC sites accept it (SII.C).\n")
	return b.String(), nil
}
