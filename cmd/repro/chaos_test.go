package main

import (
	"strings"
	"testing"
)

// TestChaosExperimentDeterministic runs the chaos experiment twice with
// the same seed: all pulls must converge to the right digests and the
// two outputs — fault-plan decisions, client attempt log, backoffs,
// breaker state — must be byte-identical.
func TestChaosExperimentDeterministic(t *testing.T) {
	run := func() string {
		out, err := runCmd(t, "-only", "chaos", "-chaos-seed", "42")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos outputs differ for the same seed:\n%s\n--- vs ---\n%s", a, b)
	}
	if strings.Count(a, "digest-ok=true") != 3 {
		t.Errorf("not all pulls converged to the right digest:\n%s", a)
	}
	for _, want := range []string{
		"fault plan decisions:",
		"-> inject conn-error",
		"-> inject status 503",
		"-> inject corrupt",
		"client attempt log:",
		"transport error (transient)",
		"breaker state after run: closed",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("chaos output missing %q:\n%s", want, a)
		}
	}
}

// TestChaosOffByDefault: without -chaos-seed the chaos experiment is
// not registered, so -only chaos runs nothing.
func TestChaosOffByDefault(t *testing.T) {
	out, err := runCmd(t, "-only", "chaos")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "==== chaos") {
		t.Errorf("chaos experiment ran without -chaos-seed:\n%s", out)
	}
}
