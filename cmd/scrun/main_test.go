package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hostenv"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldStdout, oldFlags := os.Args, os.Stdout, flag.CommandLine
	defer func() {
		os.Args, os.Stdout, flag.CommandLine = oldArgs, oldStdout, oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("scrun", flag.ContinueOnError)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"scrun"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

// buildImage creates a real pepa container image file for the tests.
func buildImage(t *testing.T) string {
	t.Helper()
	fw := core.New()
	host, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.InstallSingularity(); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Build(core.ToolPEPA, host)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.Image.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pepa.scif")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithBind(t *testing.T) {
	img := buildImage(t)
	modelDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(modelDir, "m.pepa"), []byte(core.SimplePEPAModel), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "-image", img, "-host", hostenv.Ubuntu1804, "-bind", modelDir+":/data", "--", "/data/m.pepa")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "steady-state distribution") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "ubuntu-18.04-bionic") {
		t.Errorf("host banner missing:\n%s", out)
	}
}

func TestEscalationFlag(t *testing.T) {
	img := buildImage(t)
	modelDir := t.TempDir()
	os.WriteFile(filepath.Join(modelDir, "m.pepa"), []byte(core.SimplePEPAModel), 0o644)
	out, err := runCmd(t, "-image", img, "-isolation", "singularity", "-escalate",
		"-bind", modelDir+":/data", "--", "/data/m.pepa")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "privilege escalation succeeded: false") {
		t.Errorf("output:\n%s", out)
	}
	out, err = runCmd(t, "-image", img, "-isolation", "docker", "-escalate",
		"-bind", modelDir+":/data", "--", "/data/m.pepa")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "privilege escalation succeeded: true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("missing -image accepted")
	}
	if _, err := runCmd(t, "-image", filepath.Join(t.TempDir(), "none.scif")); err == nil {
		t.Error("missing image file accepted")
	}
	img := buildImage(t)
	if _, err := runCmd(t, "-image", img, "-isolation", "vmware"); err == nil {
		t.Error("unknown isolation accepted")
	}
	if _, err := runCmd(t, "-image", img, "-bind", "nocolon"); err == nil {
		t.Error("bad bind spec accepted")
	}
	if _, err := runCmd(t, "-image", img, "-host", "beos"); err == nil {
		t.Error("unknown host accepted")
	}
}
