// Command scrun runs a container image (built by scbuild or pulled by
// schub) on a simulated host profile, optionally binding a real directory
// of model files into the container.
//
// Usage:
//
//	scrun -image pepa.scif -host ubuntu-18.04-bionic -bind ./models:/data -- /data/m.pepa
//	scrun -image pepa.scif -isolation docker -escalate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/hostenv"
	"repro/internal/image"
	"repro/internal/runtime"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrun:", err)
		os.Exit(1)
	}
}

func run() error {
	imagePath := flag.String("image", "", "image file to run")
	hostName := flag.String("host", hostenv.BuildHost, "host profile to run on")
	isolation := flag.String("isolation", "singularity", "singularity or docker")
	bind := flag.String("bind", "", "bind a real directory: <hostdir>:<containerdir>")
	escalate := flag.Bool("escalate", false, "attempt privilege escalation and report the outcome")
	flag.Parse()

	// SIGINT or SIGTERM cancels the run; a second signal force-aborts.
	ctx, stop := sigctx.WithSignals(context.Background())
	defer stop()

	if *imagePath == "" {
		return fmt.Errorf("-image is required")
	}
	blob, err := os.ReadFile(*imagePath)
	if err != nil {
		return err
	}
	img, err := image.Unmarshal(blob)
	if err != nil {
		return err
	}
	digest, err := img.Digest()
	if err != nil {
		return err
	}
	host, err := hostenv.ByName(*hostName)
	if err != nil {
		return err
	}
	if err := host.InstallSingularity(); err != nil {
		return err
	}
	opts := runtime.RunOptions{Args: flag.Args(), AttemptEscalation: *escalate}
	switch *isolation {
	case "singularity":
		opts.Isolation = runtime.IsolationSingularity
	case "docker":
		opts.Isolation = runtime.IsolationDocker
	default:
		return fmt.Errorf("unknown isolation %q", *isolation)
	}
	if *bind != "" {
		hostDir, containerDir, ok := strings.Cut(*bind, ":")
		if !ok {
			return fmt.Errorf("bad -bind (want <hostdir>:<containerdir>)")
		}
		// Import the real directory's files into the simulated host FS.
		entries, err := os.ReadDir(hostDir)
		if err != nil {
			return err
		}
		const staging = "/home/modeler/binds"
		if err := host.FS.MkdirAll(staging, 0o755); err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(hostDir, e.Name()))
			if err != nil {
				return err
			}
			if err := host.FS.WriteFile(staging+"/"+e.Name(), data, 0o644); err != nil {
				return err
			}
		}
		opts.Binds = []runtime.Bind{{HostPath: staging, ContainerPath: containerDir}}
	}
	fw := core.New()
	res, err := fw.Engine.RunCtx(ctx, img, host, opts)
	if err != nil {
		return err
	}
	fmt.Printf("image %s (%s) on %s as user %q [%s]\n", img.Ref(), digest[:19], host.Name, res.User, *isolation)
	if *escalate {
		fmt.Printf("privilege escalation succeeded: %v\n", res.EscalationSucceeded)
	}
	fmt.Print(res.Stdout)
	return nil
}
