package recipestore

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCommitAndCheckout(t *testing.T) {
	s := NewStore()
	c1, err := s.Commit("wss2", "add pepa recipe", map[string]string{
		"pepa/Singularity": "Bootstrap: library\nFrom: centos:7.4\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Parent != "" {
		t.Errorf("root commit has parent %q", c1.Parent)
	}
	content, err := s.Checkout(c1.Hash, "pepa/Singularity")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(content, "centos:7.4") {
		t.Errorf("checkout = %q", content)
	}
}

func TestHistoryPreservesOldVersions(t *testing.T) {
	s := NewStore()
	c1, _ := s.Commit("a", "v1", map[string]string{"r": "version-one"})
	c2, err := s.Commit("a", "v2", map[string]string{"r": "version-two"})
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.Checkout(c1.Hash, "r")
	if err != nil {
		t.Fatal(err)
	}
	if old != "version-one" {
		t.Errorf("historic checkout = %q", old)
	}
	cur, _ := s.Checkout(c2.Hash, "r")
	if cur != "version-two" {
		t.Errorf("current checkout = %q", cur)
	}
	if s.Head().Hash != c2.Hash {
		t.Error("head not advanced")
	}
}

func TestTreeCarriesForward(t *testing.T) {
	s := NewStore()
	s.Commit("a", "one", map[string]string{"x": "1"})
	c2, _ := s.Commit("a", "two", map[string]string{"y": "2"})
	paths, err := s.Paths(c2.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != "x" || paths[1] != "y" {
		t.Errorf("paths = %v", paths)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	s.Commit("a", "add", map[string]string{"x": "1", "y": "2"})
	c2, err := s.Commit("a", "drop x", map[string]string{"x": ""})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkout(c2.Hash, "x"); err == nil {
		t.Error("deleted file still present")
	}
	if _, err := s.Checkout(c2.Hash, "y"); err != nil {
		t.Errorf("unrelated file lost: %v", err)
	}
}

func TestCommitValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Commit("", "msg", map[string]string{"x": "1"}); err == nil {
		t.Error("empty author accepted")
	}
	if _, err := s.Commit("a", "", map[string]string{"x": "1"}); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := s.Commit("a", "m", nil); err == nil {
		t.Error("empty change set accepted")
	}
	if _, err := s.Commit("a", "m", map[string]string{"../etc/passwd": "x"}); err == nil {
		t.Error("path traversal accepted")
	}
	s.Commit("a", "m", map[string]string{"x": "1"})
	if _, err := s.Commit("a", "noop", map[string]string{"x": "1"}); err == nil {
		t.Error("no-op commit accepted")
	}
}

func TestLogOrder(t *testing.T) {
	s := NewStore()
	s.Commit("a", "first", map[string]string{"x": "1"})
	s.Commit("a", "second", map[string]string{"x": "2"})
	s.Commit("a", "third", map[string]string{"x": "3"})
	log := s.Log()
	if len(log) != 3 {
		t.Fatalf("log = %d entries", len(log))
	}
	if log[0].Message != "third" || log[2].Message != "first" {
		t.Errorf("log order wrong: %s..%s", log[0].Message, log[2].Message)
	}
}

func TestDiff(t *testing.T) {
	s := NewStore()
	c1, _ := s.Commit("a", "one", map[string]string{"x": "1", "y": "same"})
	c2, _ := s.Commit("a", "two", map[string]string{"x": "2", "z": "new"})
	diff, err := s.Diff(c1.Hash, c2.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 2 || diff[0] != "x" || diff[1] != "z" {
		t.Errorf("diff = %v", diff)
	}
}

func TestGetByPrefix(t *testing.T) {
	s := NewStore()
	c, _ := s.Commit("a", "m", map[string]string{"x": "1"})
	got, err := s.Get(c.Hash[:12])
	if err != nil || got.Hash != c.Hash {
		t.Errorf("prefix lookup failed: %v", err)
	}
	if _, err := s.Get("ffffffff"); err == nil {
		t.Error("missing hash accepted")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	s := NewStore()
	c, _ := s.Commit("a", "m", map[string]string{"x": "1"})
	if err := s.Verify(); err != nil {
		t.Fatalf("clean store fails verify: %v", err)
	}
	c.Files["x"] = "tampered"
	if err := s.Verify(); err == nil {
		t.Error("tampered store passes verify")
	}
}

func TestContentAddressingProperty(t *testing.T) {
	// Property: the same change sequence yields the same head hash; any
	// difference in content yields a different hash.
	f := func(contentA, contentB string) bool {
		mk := func(content string) string {
			s := NewStore()
			c, err := s.Commit("author", "msg", map[string]string{"f": "seed" + content})
			if err != nil {
				return ""
			}
			return c.Hash
		}
		ha1, ha2, hb := mk(contentA), mk(contentA), mk(contentB)
		if ha1 != ha2 {
			return false
		}
		return (ha1 == hb) == (contentA == contentB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
