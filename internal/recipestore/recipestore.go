// Package recipestore is the version-controlled recipe repository of the
// paper's distribution model (its GitHub half): build recipes are committed
// with messages and authors, every commit is content-addressed by a SHA-256
// hash over its tree and ancestry, and any historical recipe can be checked
// out and rebuilt — "the containers and their build recipes ... can be
// version controlled to facilitate reproducibility and replication of past
// results" (§IV).
package recipestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Commit is one immutable revision.
type Commit struct {
	Hash    string
	Parent  string // empty for the root commit
	Author  string
	Message string
	// Files maps recipe path (e.g. "pepa/Singularity") to content.
	Files map[string]string
}

// Store is an append-only commit store with a single "main" branch.
type Store struct {
	commits map[string]*Commit
	head    string
	order   []string // commit hashes in commit order
}

// NewStore returns an empty repository.
func NewStore() *Store {
	return &Store{commits: map[string]*Commit{}}
}

// hashCommit computes the content address of a commit.
func hashCommit(parent, author, message string, files map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "parent %s\nauthor %s\nmessage %s\n", parent, author, message)
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "file %s %d\n", p, len(files[p]))
		h.Write([]byte(files[p]))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Commit records a new revision: the given files are *changes* applied on
// top of the current head's tree (set a path to "" to delete it). Returns
// the new commit.
func (s *Store) Commit(author, message string, changes map[string]string) (*Commit, error) {
	if author == "" || message == "" {
		return nil, fmt.Errorf("recipestore: commits need an author and a message")
	}
	if len(changes) == 0 {
		return nil, fmt.Errorf("recipestore: empty commit")
	}
	tree := map[string]string{}
	if s.head != "" {
		for p, c := range s.commits[s.head].Files {
			tree[p] = c
		}
	}
	changed := false
	for p, c := range changes {
		if p == "" || strings.Contains(p, "..") {
			return nil, fmt.Errorf("recipestore: bad path %q", p)
		}
		if c == "" {
			if _, ok := tree[p]; ok {
				delete(tree, p)
				changed = true
			}
			continue
		}
		if tree[p] != c {
			tree[p] = c
			changed = true
		}
	}
	if !changed {
		return nil, fmt.Errorf("recipestore: commit introduces no changes")
	}
	hash := hashCommit(s.head, author, message, tree)
	c := &Commit{Hash: hash, Parent: s.head, Author: author, Message: message, Files: tree}
	s.commits[hash] = c
	s.head = hash
	s.order = append(s.order, hash)
	return c, nil
}

// Head returns the current head commit, or nil for an empty store.
func (s *Store) Head() *Commit {
	if s.head == "" {
		return nil
	}
	return s.commits[s.head]
}

// Get returns a commit by (full or unambiguous-prefix) hash.
func (s *Store) Get(hash string) (*Commit, error) {
	if c, ok := s.commits[hash]; ok {
		return c, nil
	}
	var match *Commit
	for h, c := range s.commits {
		if strings.HasPrefix(h, hash) {
			if match != nil {
				return nil, fmt.Errorf("recipestore: ambiguous hash prefix %q", hash)
			}
			match = c
		}
	}
	if match == nil {
		return nil, fmt.Errorf("recipestore: no commit %q", hash)
	}
	return match, nil
}

// Checkout returns the content of one file at a commit.
func (s *Store) Checkout(hash, path string) (string, error) {
	c, err := s.Get(hash)
	if err != nil {
		return "", err
	}
	content, ok := c.Files[path]
	if !ok {
		return "", fmt.Errorf("recipestore: %s not present at commit %s", path, c.Hash[:12])
	}
	return content, nil
}

// Log returns commits newest-first from head.
func (s *Store) Log() []*Commit {
	var out []*Commit
	for h := s.head; h != ""; h = s.commits[h].Parent {
		out = append(out, s.commits[h])
	}
	return out
}

// Diff lists the paths whose content differs between two commits, sorted.
func (s *Store) Diff(a, b string) ([]string, error) {
	ca, err := s.Get(a)
	if err != nil {
		return nil, err
	}
	cb, err := s.Get(b)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for p, c := range ca.Files {
		if cb.Files[p] != c {
			set[p] = true
		}
	}
	for p, c := range cb.Files {
		if ca.Files[p] != c {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Paths lists the files present at a commit, sorted.
func (s *Store) Paths(hash string) ([]string, error) {
	c, err := s.Get(hash)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(c.Files))
	for p := range c.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of commits.
func (s *Store) Len() int { return len(s.order) }

// Verify recomputes every commit hash and checks ancestry integrity — the
// tamper-evidence property that makes the store trustworthy provenance.
func (s *Store) Verify() error {
	for _, h := range s.order {
		c := s.commits[h]
		if got := hashCommit(c.Parent, c.Author, c.Message, c.Files); got != c.Hash {
			return fmt.Errorf("recipestore: commit %s fails hash verification", c.Hash[:12])
		}
		if c.Parent != "" {
			if _, ok := s.commits[c.Parent]; !ok {
				return fmt.Errorf("recipestore: commit %s has missing parent %s", c.Hash[:12], c.Parent[:12])
			}
		}
	}
	return nil
}
