package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// injectedError is a connection-level error carrying a stable message
// (no addresses or ports), so attempt logs stay byte-identical between
// runs against ephemeral-port test servers.
type injectedError struct {
	msg     string
	timeout bool
}

func (e *injectedError) Error() string   { return e.msg }
func (e *injectedError) Timeout() bool   { return e.timeout }
func (e *injectedError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with the plan: each request is
// one op named "METHOD /path". base == nil uses http.DefaultTransport.
func (p *Plan) Transport(base http.RoundTripper) http.RoundTripper {
	return p.TransportFor("", base)
}

// TransportFor is Transport with requests consulted on behalf of the
// named peer, so %peer rules can target the traffic of exactly one
// cluster member sharing the plan.
func (p *Plan) TransportFor(peer string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{plan: p, peer: peer, base: base}
}

type transport struct {
	plan *Plan
	peer string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.plan.NextFor(t.peer, req.Method+" "+req.URL.Path)
	switch f.Kind {
	case KindConn:
		return nil, &injectedError{msg: "faultinject: injected connection error"}
	case KindTimeout:
		return nil, &injectedError{msg: "faultinject: injected timeout", timeout: true}
	case KindStatus:
		body := fmt.Sprintf("faultinject: injected status %d", f.Status)
		return &http.Response{
			StatusCode:    f.Status,
			Status:        fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !f.Active() {
		return resp, err
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch f.Kind {
	case KindTruncate:
		cut := blob[:len(blob)/2]
		// Keep the advertised length and fail the read mid-body, the way
		// a dropped connection does.
		resp.Body = io.NopCloser(io.MultiReader(bytes.NewReader(cut), errReader{}))
	case KindCorrupt:
		if len(blob) > 0 {
			mutated := append([]byte(nil), blob...)
			pos := t.plan.bitPos(len(mutated))
			mutated[pos/8] ^= 1 << (pos % 8)
			blob = mutated
		}
		resp.Body = io.NopCloser(bytes.NewReader(blob))
	default:
		resp.Body = io.NopCloser(bytes.NewReader(blob))
	}
	return resp, nil
}

// errReader fails every read the way a severed connection does.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

// Middleware wraps an http.Handler with the plan, for chaos-testing a
// server in place: status faults answer directly, connection faults
// abort the in-flight response (the client sees a closed connection),
// and truncate/corrupt faults mutate the real response body.
func (p *Plan) Middleware(next http.Handler) http.Handler {
	return p.MiddlewareFor("", next)
}

// MiddlewareFor is Middleware with every request consulted on behalf of
// the named peer: several cluster members can share one plan, and %peer
// rules crash exactly one of them while the others keep serving. Peer
// names (not addresses) land in the decision log, keeping it
// byte-identical across ephemeral-port test servers.
func (p *Plan) MiddlewareFor(peer string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := p.NextFor(peer, r.Method+" "+r.URL.Path)
		switch f.Kind {
		case KindNone:
			next.ServeHTTP(w, r)
		case KindConn, KindTimeout:
			// ErrAbortHandler makes net/http drop the connection without
			// writing a response — the client observes a transport error.
			panic(http.ErrAbortHandler)
		case KindStatus:
			http.Error(w, fmt.Sprintf("faultinject: injected status %d", f.Status), f.Status)
		case KindTruncate, KindCorrupt:
			rec := &recorder{header: http.Header{}, status: http.StatusOK}
			next.ServeHTTP(rec, r)
			body := rec.body.Bytes()
			if f.Kind == KindCorrupt && len(body) > 0 {
				pos := p.bitPos(len(body))
				body[pos/8] ^= 1 << (pos % 8)
			}
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			// Declare the full length, then send a prefix: the client's
			// transport reports an unexpected EOF, as on a cut transfer.
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.status)
			if f.Kind == KindTruncate {
				body = body[:len(body)/2]
			}
			w.Write(body)
			if f.Kind == KindTruncate {
				// Flush the prefix onto the wire before aborting; otherwise
				// the partial write sits in the server's buffer, the client
				// sees a clean connection close and silently retries instead
				// of observing a truncated transfer.
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
				panic(http.ErrAbortHandler)
			}
		}
	})
}

// recorder buffers a handler's response so the middleware can mutate it.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(status int)      { r.status = status }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
