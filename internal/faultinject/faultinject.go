// Package faultinject provides a deterministic, seeded fault-injection
// plan for chaos-testing the container distribution pipeline. Related
// work (Malka et al., "Docker Does Not Guarantee Reproducibility")
// shows that registries and transfers are themselves a reproducibility
// hazard: registries vanish, connections drop, payloads corrupt. This
// package makes those hazards *reproducible*: a Plan is fully specified
// by its seed and rule list, so every retry path in internal/hub can be
// exercised by a bit-identical fault schedule, and a failing chaos run
// can be replayed exactly from its seed.
//
// A Plan is consulted once per operation (an HTTP round trip, or any
// caller-defined op). Rules fire either on a fixed schedule ("fail the
// first N matching ops": script mode) or with a seeded probability per
// op (chaos mode). All randomness comes from internal/rng — never
// math/rand — so the decision stream is stable across Go releases.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rng"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindNone injects nothing (the op passes through).
	KindNone Kind = iota
	// KindConn simulates a connection-level failure before any response.
	KindConn
	// KindTimeout simulates a transport timeout (a net.Error with
	// Timeout() == true on the client side).
	KindTimeout
	// KindStatus short-circuits the op with an HTTP error status
	// (429/5xx for transient classes, 4xx for deterministic ones).
	KindStatus
	// KindTruncate lets the real response through but cuts its body
	// short mid-stream (the reader sees io.ErrUnexpectedEOF).
	KindTruncate
	// KindCorrupt lets the real response through but flips one
	// deterministically chosen bit of the body, corrupting the content
	// digest without changing the length.
	KindCorrupt
)

// String names the fault kind for attempt logs.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindConn:
		return "conn-error"
	case KindTimeout:
		return "timeout"
	case KindStatus:
		return "status"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule schedules one fault class against matching operations.
type Rule struct {
	// Match is a substring matched against the op name (for HTTP ops,
	// "METHOD /path"). Empty matches every op.
	Match string
	// Peer restricts the rule to operations consulted on behalf of the
	// named peer (Plan.NextFor, MiddlewareFor, TransportFor). Empty
	// matches every peer, including the anonymous one; a named rule never
	// fires for a different (or anonymous) peer, so one shared plan can
	// crash exactly one member of a cluster.
	Peer string
	// Kind is the fault to inject when the rule fires.
	Kind Kind
	// Status is the HTTP status for KindStatus (default 503).
	Status int
	// First makes the rule fire on the first N matching consultations
	// and then go dormant (script mode: "fail first N, then succeed").
	First int
	// Prob, when First == 0, fires the rule with this probability per
	// matching consultation, drawn from the plan's seeded generator
	// (chaos mode). The draw order — and hence the decision stream —
	// is deterministic for a serial op sequence.
	Prob float64
}

func (r Rule) describe() string {
	if r.Kind == KindStatus {
		return fmt.Sprintf("status %d", r.Status)
	}
	return r.Kind.String()
}

// Fault is the decision for one operation.
type Fault struct {
	Kind   Kind
	Status int // for KindStatus
	// Rule is the index of the rule that fired (-1 for a pass).
	Rule int
}

// Active reports whether the fault actually injects anything.
func (f Fault) Active() bool { return f.Kind != KindNone }

// Plan is a deterministic fault schedule. It is safe for concurrent
// use; note that under concurrent ops the *assignment* of probabilistic
// draws to ops follows arrival order, so bit-identical logs are
// guaranteed for serial op sequences (which is what the chaos tests
// use) and for purely script-mode (First-based) plans.
type Plan struct {
	mu    sync.Mutex
	seed  uint64
	src   *rng.Source
	rules []Rule
	hits  []int // per-rule fire counts
	seen  []int // per-rule match counts
	ops   int
	log   []string
}

// NewPlan builds a plan from a seed and an ordered rule list. For each
// op the rules are consulted in order and the first one that fires
// decides the fault; a rule that matches but does not fire (dormant
// script rule, failed probability draw) falls through to the next.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	rs := make([]Rule, len(rules))
	copy(rs, rules)
	for i := range rs {
		if rs[i].Kind == KindStatus && rs[i].Status == 0 {
			rs[i].Status = 503
		}
	}
	return &Plan{
		seed:  seed,
		src:   rng.New(seed),
		rules: rs,
		hits:  make([]int, len(rs)),
		seen:  make([]int, len(rs)),
	}
}

// Seed returns the plan's seed (for replay instructions in reports).
func (p *Plan) Seed() uint64 { return p.seed }

// Next decides the fault for one named operation and appends the
// decision to the plan log. Rules targeting a specific peer never fire
// here; use NextFor to consult the plan on a peer's behalf.
func (p *Plan) Next(op string) Fault { return p.NextFor("", op) }

// NextFor decides the fault for one operation consulted on behalf of the
// named peer: rules with a Peer fire only when it matches, rules without
// one fire for everybody. Peer names (never addresses or ports) appear
// in the decision log, so logs stay byte-identical across runs against
// ephemeral-port cluster servers.
func (p *Plan) NextFor(peer, op string) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops++
	logOp := op
	if peer != "" {
		logOp = "[" + peer + "] " + op
	}
	for i, r := range p.rules {
		if r.Peer != "" && r.Peer != peer {
			continue
		}
		if r.Match != "" && !strings.Contains(op, r.Match) {
			continue
		}
		p.seen[i]++
		fire := false
		switch {
		case r.First > 0:
			fire = p.hits[i] < r.First
		case r.Prob > 0:
			fire = p.src.Float64() < r.Prob
		}
		if !fire {
			continue
		}
		p.hits[i]++
		p.log = append(p.log, fmt.Sprintf("op %03d %s -> inject %s (rule %d, hit %d)",
			p.ops, logOp, r.describe(), i, p.hits[i]))
		return Fault{Kind: r.Kind, Status: r.Status, Rule: i}
	}
	p.log = append(p.log, fmt.Sprintf("op %03d %s -> pass", p.ops, logOp))
	return Fault{Kind: KindNone, Rule: -1}
}

// bitPos draws a deterministic bit position in [0, nbytes*8) for
// KindCorrupt mutations.
func (p *Plan) bitPos(nbytes int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.src.Intn(nbytes * 8)
}

// Log returns a copy of the decision log, one line per consulted op.
func (p *Plan) Log() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.log...)
}

// FormatLog renders the decision log as one newline-joined block.
func (p *Plan) FormatLog() string {
	lines := p.Log()
	if len(lines) == 0 {
		return "(no operations consulted)"
	}
	return strings.Join(lines, "\n")
}

// Ops returns how many operations have been consulted.
func (p *Plan) Ops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops
}

// ParseSpec parses a compact fault-plan spec: comma-separated clauses
// of the form
//
//	kind[:count][@match][%peer]     script mode: fail the first count matches
//	kind[:p<prob>][@match][%peer]   chaos mode: fail each match with probability prob
//
// where kind is conn, timeout, truncate, corrupt, or a numeric HTTP
// status; count is the First schedule (default 1); p<prob> (a float in
// (0, 1]) makes the rule probabilistic, drawn from the plan's seeded
// generator; match restricts the rule to ops containing the substring;
// and %peer (last in the clause) restricts the rule to operations
// consulted on behalf of that named peer (Plan.NextFor) — the clause for
// chaos-testing one member of a replicated cluster. Examples:
//
//	"503:2"                      fail the first two ops with HTTP 503
//	"conn,corrupt@/v1/pepa"      one conn error, one bit flip on /v1/pepa
//	"timeout:p0.25"              time out a quarter of all ops, seeded
//	"conn:99@GET%b"              kill every GET served by peer b
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		rest := clause
		var match, peer string
		if pc := strings.LastIndex(rest, "%"); pc >= 0 {
			peer = rest[pc+1:]
			rest = rest[:pc]
			if peer == "" {
				return nil, fmt.Errorf("faultinject: empty peer after %q in clause %q (drop the %% to match every peer)", "%", clause)
			}
			if strings.Contains(peer, "@") {
				return nil, fmt.Errorf("faultinject: %q after %q in clause %q (the %%peer clause must come last)", "@", "%", clause)
			}
		}
		if at := strings.Index(rest, "@"); at >= 0 {
			match = rest[at+1:]
			rest = rest[:at]
			if match == "" {
				return nil, fmt.Errorf("faultinject: empty match after %q in clause %q (drop the @ to match every op)", "@", clause)
			}
			if extra := strings.Index(match, "@"); extra >= 0 {
				return nil, fmt.Errorf("faultinject: second %q in clause %q (one match per clause)", "@"+match[extra+1:], clause)
			}
		}
		kindStr := rest
		count := 1
		prob := 0.0
		if colon := strings.Index(rest, ":"); colon >= 0 {
			kindStr = rest[:colon]
			arg := rest[colon+1:]
			if strings.HasPrefix(arg, "p") {
				v, err := strconv.ParseFloat(arg[1:], 64)
				if err != nil || v <= 0 || v > 1 {
					return nil, fmt.Errorf("faultinject: bad probability %q in clause %q (want p<value> with 0 < value <= 1)", arg, clause)
				}
				prob = v
				count = 0
			} else {
				n, err := strconv.Atoi(arg)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("faultinject: bad count %q in clause %q (want a positive integer or p<prob>)", arg, clause)
				}
				count = n
			}
		}
		r := Rule{Match: match, Peer: peer, First: count, Prob: prob}
		switch kindStr {
		case "conn":
			r.Kind = KindConn
		case "timeout":
			r.Kind = KindTimeout
		case "truncate":
			r.Kind = KindTruncate
		case "corrupt":
			r.Kind = KindCorrupt
		default:
			status, err := strconv.Atoi(kindStr)
			if err != nil || status < 400 || status > 599 {
				return nil, fmt.Errorf("faultinject: unknown fault kind %q in clause %q", kindStr, clause)
			}
			r.Kind = KindStatus
			r.Status = status
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault spec %q", spec)
	}
	return rules, nil
}
