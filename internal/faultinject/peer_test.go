package faultinject

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// Per-peer fault targeting: one plan shared by several cluster members,
// with %peer rules firing only for the member they name.

func TestNextForPeerScoping(t *testing.T) {
	p := NewPlan(3,
		Rule{Peer: "b", Kind: KindConn, First: 2},
		Rule{Match: "/v1/", Kind: KindStatus, Status: 503, First: 1},
	)
	// Peer a misses the b-only rule but hits the shared one.
	if f := p.NextFor("a", "GET /v1/x"); f.Kind != KindStatus {
		t.Errorf("peer a first op = %v, want status", f.Kind)
	}
	// Peer b hits its dedicated rule (consulted first).
	if f := p.NextFor("b", "GET /v1/x"); f.Kind != KindConn {
		t.Errorf("peer b first op = %v, want conn", f.Kind)
	}
	// The anonymous peer (plain Next) never matches a named rule.
	if f := p.Next("GET /v1/x"); f.Active() {
		t.Errorf("anonymous op after shared rule exhausted = %v, want pass", f.Kind)
	}
	// Peer b's rule still has one scheduled hit left.
	if f := p.NextFor("b", "GET /v1/y"); f.Kind != KindConn {
		t.Errorf("peer b second op = %v, want conn", f.Kind)
	}
	if f := p.NextFor("b", "GET /v1/z"); f.Active() {
		t.Errorf("peer b third op = %v, want pass (schedule exhausted)", f.Kind)
	}
}

func TestNextForLogNamesPeersNotAddresses(t *testing.T) {
	p := NewPlan(1, Rule{Peer: "b", Kind: KindConn, First: 1})
	p.NextFor("a", "GET /v1/x")
	p.NextFor("b", "GET /v1/x")
	log := p.FormatLog()
	if !strings.Contains(log, "[a] GET /v1/x -> pass") {
		t.Errorf("log missing peer-a pass line:\n%s", log)
	}
	if !strings.Contains(log, "[b] GET /v1/x -> inject conn-error") {
		t.Errorf("log missing peer-b inject line:\n%s", log)
	}
}

func TestParseSpecPeerClause(t *testing.T) {
	rules, err := ParseSpec("conn:99@GET%b,503:2%c,timeout:p0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Match: "GET", Peer: "b", Kind: KindConn, First: 99},
		{Peer: "c", Kind: KindStatus, Status: 503, First: 2},
		{Kind: KindTimeout, Prob: 0.5},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("rules = %+v, want %+v", rules, want)
	}

	bad := []struct{ spec, wantErr string }{
		{"conn%", `empty peer after "%"`},
		{"conn%b@x", `the %peer clause must come last`},
	}
	for _, tc := range bad {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("spec %q: error %q, want substring %q", tc.spec, err, tc.wantErr)
		}
	}
}

// TestMiddlewareForIsolatesPeers runs two servers off one plan: the
// %-targeted peer dies on every request while its sibling keeps serving.
func TestMiddlewareForIsolatesPeers(t *testing.T) {
	rules, err := ParseSpec("conn:99%b")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(11, rules...)
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("alive"))
	})
	tsA := httptest.NewServer(p.MiddlewareFor("a", ok))
	defer tsA.Close()
	tsB := httptest.NewServer(p.MiddlewareFor("b", ok))
	defer tsB.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(tsA.URL + "/v1/x")
		if err != nil {
			t.Fatalf("healthy peer a request %d failed: %v", i, err)
		}
		resp.Body.Close()
		if _, err := http.Get(tsB.URL + "/v1/x"); err == nil {
			t.Fatalf("targeted peer b request %d succeeded", i)
		}
	}
}

// TestTransportForScopesFaultsToOnePeer: two clients share a plan via
// TransportFor; only the named peer's traffic is faulted.
func TestTransportForScopesFaultsToOnePeer(t *testing.T) {
	p := NewPlan(5, Rule{Peer: "b", Kind: KindTimeout, First: 99})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("alive"))
	}))
	defer ts.Close()
	clientA := &http.Client{Transport: p.TransportFor("a", nil)}
	clientB := &http.Client{Transport: p.TransportFor("b", nil)}
	if resp, err := clientA.Get(ts.URL); err != nil {
		t.Fatalf("peer a transport faulted: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := clientB.Get(ts.URL); err == nil {
		t.Fatal("peer b transport not faulted")
	}
}
