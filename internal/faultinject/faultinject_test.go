package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestScriptRulesFireInOrder(t *testing.T) {
	p := NewPlan(7,
		Rule{Kind: KindConn, First: 1},
		Rule{Kind: KindStatus, Status: 503, First: 2},
	)
	kinds := []Kind{}
	for i := 0; i < 5; i++ {
		kinds = append(kinds, p.Next("GET /x").Kind)
	}
	want := []Kind{KindConn, KindStatus, KindStatus, KindNone, KindNone}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestMatchRestrictsRules(t *testing.T) {
	p := NewPlan(1, Rule{Match: "/v1/coll", Kind: KindConn, First: 10})
	if f := p.Next("GET /healthz"); f.Active() {
		t.Errorf("unmatched op got fault %v", f.Kind)
	}
	if f := p.Next("GET /v1/coll/pepa/latest"); f.Kind != KindConn {
		t.Errorf("matched op got %v, want conn", f.Kind)
	}
}

func TestSameSeedSameDecisionsAndLog(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(42, Rule{Kind: KindStatus, Status: 503, Prob: 0.5})
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		fa, fb := a.Next("GET /op"), b.Next("GET /op")
		if fa != fb {
			t.Fatalf("op %d: decisions diverge: %v vs %v", i, fa, fb)
		}
	}
	la, lb := a.FormatLog(), b.FormatLog()
	if la != lb {
		t.Errorf("logs differ:\n%s\nvs\n%s", la, lb)
	}
	// A different seed must (with these rules) give a different stream.
	c := NewPlan(43, Rule{Kind: KindStatus, Status: 503, Prob: 0.5})
	same := true
	for i := 0; i < 50; i++ {
		if c.Next("GET /op").Kind != a2kind(la, i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced an identical 50-op decision stream")
	}
}

// a2kind recovers the i-th decision from a formatted log.
func a2kind(log string, i int) Kind {
	line := strings.Split(log, "\n")[i]
	if strings.Contains(line, "inject") {
		return KindStatus
	}
	return KindNone
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("503:2,conn,corrupt@/v1/pepa,timeout:3,truncate:p0.25@/v1/blob")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindStatus, Status: 503, First: 2},
		{Kind: KindConn, First: 1},
		{Kind: KindCorrupt, First: 1, Match: "/v1/pepa"},
		{Kind: KindTimeout, First: 3},
		{Kind: KindTruncate, Prob: 0.25, Match: "/v1/blob"},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("rules = %+v, want %+v", rules, want)
	}
}

// TestParseSpecEdgeCases walks the rejection surface of the spec grammar.
// Every error must name the offending token, not just fail, so that a
// user who fat-fingers a 40-character chaos spec can see which clause to
// fix.
func TestParseSpecEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string // substring the error must contain
	}{
		{"empty", "", `empty fault spec ""`},
		{"only separators", " , ,\t,", "empty fault spec"},
		{"unknown kind", "bogus", `unknown fault kind "bogus"`},
		{"unknown kind in list", "conn,flaky:2", `unknown fault kind "flaky"`},
		{"status below range", "200", `unknown fault kind "200"`},
		{"status above range", "600", `unknown fault kind "600"`},
		{"non-numeric count", "503:x", `bad count "x"`},
		{"zero count", "conn:0", `bad count "0"`},
		{"negative count", "conn:-3", `bad count "-3"`},
		{"duplicate count keys", "conn:1:2", `bad count "1:2"`},
		{"malformed probability", "conn:pfoo", `bad probability "pfoo"`},
		{"zero probability", "conn:p0", `bad probability "p0"`},
		{"probability above one", "conn:p1.5", `bad probability "p1.5"`},
		{"duplicate probability keys", "conn:p0.5:p0.5", `bad probability "p0.5:p0.5"`},
		{"empty match", "conn@", `empty match after "@"`},
		{"duplicate match keys", "conn@a@b", `second "@b"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("spec %q accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("spec %q: error %q does not name the offending token (want substring %q)",
					tc.spec, err, tc.wantErr)
			}
		})
	}

	// Accepted edge forms: whitespace and trailing separators are
	// tolerated, and probabilistic rules coexist with script rules.
	ok := []string{"conn,", " 429:9 ", "conn:p1", "conn:p0.001,503:2@/v1"}
	for _, spec := range ok {
		if _, err := ParseSpec(spec); err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
		}
	}
}

// TestParseSpecProbabilisticPlan wires a parsed chaos-mode rule into a
// plan and checks the seeded draw stream actually fires it.
func TestParseSpecProbabilisticPlan(t *testing.T) {
	rules, err := ParseSpec("conn:p0.5")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].First != 0 || rules[0].Prob != 0.5 {
		t.Fatalf("rule = %+v, want chaos mode with Prob 0.5", rules[0])
	}
	plan := NewPlan(7, rules...)
	fired := 0
	for i := 0; i < 200; i++ {
		if plan.Next("GET /x").Active() {
			fired++
		}
	}
	// 200 draws at p=0.5: outside [60, 140] would be a broken generator,
	// not bad luck (probability < 1e-8).
	if fired < 60 || fired > 140 {
		t.Errorf("p=0.5 rule fired %d/200 times", fired)
	}
	replay := NewPlan(7, rules...)
	for i := 0; i < 200; i++ {
		replay.Next("GET /x")
	}
	if plan.FormatLog() != replay.FormatLog() {
		t.Error("same seed did not replay the same probabilistic decision stream")
	}
}

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello, chaos world"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportConnAndTimeout(t *testing.T) {
	ts := backend(t)
	plan := NewPlan(1, Rule{Kind: KindConn, First: 1}, Rule{Kind: KindTimeout, First: 1})
	client := &http.Client{Transport: plan.Transport(nil)}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("conn fault not injected")
	}
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("timeout fault not injected")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("timeout fault error = %v, want net.Error with Timeout()", err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello, chaos world" {
		t.Errorf("clean op body = %q", body)
	}
}

func TestTransportStatusTruncateCorrupt(t *testing.T) {
	ts := backend(t)
	plan := NewPlan(3,
		Rule{Kind: KindStatus, Status: 429, First: 1},
		Rule{Kind: KindTruncate, First: 1},
		Rule{Kind: KindCorrupt, First: 1},
	)
	client := &http.Client{Transport: plan.Transport(nil)}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}

	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read error = %v, want unexpected EOF", err)
	}

	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == "hello, chaos world" {
		t.Error("corrupt fault did not change the body")
	}
	if len(body) != len("hello, chaos world") {
		t.Errorf("corrupt fault changed the length: %d", len(body))
	}
}

func TestMiddlewareFaults(t *testing.T) {
	payload := "the payload to protect"
	plan := NewPlan(9,
		Rule{Kind: KindStatus, Status: 503, First: 1},
		Rule{Kind: KindConn, First: 1},
		Rule{Kind: KindCorrupt, First: 1},
		Rule{Kind: KindTruncate, First: 1},
	)
	h := plan.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Error("conn fault: request succeeded")
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == payload || len(body) != len(payload) {
		t.Errorf("corrupt fault: body = %q", body)
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Error("truncate fault: read succeeded in full")
	}

	// Clean afterwards.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != payload {
		t.Errorf("clean op body = %q", body)
	}
}
