package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestScriptRulesFireInOrder(t *testing.T) {
	p := NewPlan(7,
		Rule{Kind: KindConn, First: 1},
		Rule{Kind: KindStatus, Status: 503, First: 2},
	)
	kinds := []Kind{}
	for i := 0; i < 5; i++ {
		kinds = append(kinds, p.Next("GET /x").Kind)
	}
	want := []Kind{KindConn, KindStatus, KindStatus, KindNone, KindNone}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestMatchRestrictsRules(t *testing.T) {
	p := NewPlan(1, Rule{Match: "/v1/coll", Kind: KindConn, First: 10})
	if f := p.Next("GET /healthz"); f.Active() {
		t.Errorf("unmatched op got fault %v", f.Kind)
	}
	if f := p.Next("GET /v1/coll/pepa/latest"); f.Kind != KindConn {
		t.Errorf("matched op got %v, want conn", f.Kind)
	}
}

func TestSameSeedSameDecisionsAndLog(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(42, Rule{Kind: KindStatus, Status: 503, Prob: 0.5})
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		fa, fb := a.Next("GET /op"), b.Next("GET /op")
		if fa != fb {
			t.Fatalf("op %d: decisions diverge: %v vs %v", i, fa, fb)
		}
	}
	la, lb := a.FormatLog(), b.FormatLog()
	if la != lb {
		t.Errorf("logs differ:\n%s\nvs\n%s", la, lb)
	}
	// A different seed must (with these rules) give a different stream.
	c := NewPlan(43, Rule{Kind: KindStatus, Status: 503, Prob: 0.5})
	same := true
	for i := 0; i < 50; i++ {
		if c.Next("GET /op").Kind != a2kind(la, i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced an identical 50-op decision stream")
	}
}

// a2kind recovers the i-th decision from a formatted log.
func a2kind(log string, i int) Kind {
	line := strings.Split(log, "\n")[i]
	if strings.Contains(line, "inject") {
		return KindStatus
	}
	return KindNone
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("503:2,conn,corrupt@/v1/pepa,timeout:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindStatus, Status: 503, First: 2},
		{Kind: KindConn, First: 1},
		{Kind: KindCorrupt, First: 1, Match: "/v1/pepa"},
		{Kind: KindTimeout, First: 3},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("rules = %+v, want %+v", rules, want)
	}
	for _, bad := range []string{"", "bogus", "503:x", "200", "conn:0"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello, chaos world"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportConnAndTimeout(t *testing.T) {
	ts := backend(t)
	plan := NewPlan(1, Rule{Kind: KindConn, First: 1}, Rule{Kind: KindTimeout, First: 1})
	client := &http.Client{Transport: plan.Transport(nil)}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("conn fault not injected")
	}
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("timeout fault not injected")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("timeout fault error = %v, want net.Error with Timeout()", err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello, chaos world" {
		t.Errorf("clean op body = %q", body)
	}
}

func TestTransportStatusTruncateCorrupt(t *testing.T) {
	ts := backend(t)
	plan := NewPlan(3,
		Rule{Kind: KindStatus, Status: 429, First: 1},
		Rule{Kind: KindTruncate, First: 1},
		Rule{Kind: KindCorrupt, First: 1},
	)
	client := &http.Client{Transport: plan.Transport(nil)}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}

	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read error = %v, want unexpected EOF", err)
	}

	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == "hello, chaos world" {
		t.Error("corrupt fault did not change the body")
	}
	if len(body) != len("hello, chaos world") {
		t.Errorf("corrupt fault changed the length: %d", len(body))
	}
}

func TestMiddlewareFaults(t *testing.T) {
	payload := "the payload to protect"
	plan := NewPlan(9,
		Rule{Kind: KindStatus, Status: 503, First: 1},
		Rule{Kind: KindConn, First: 1},
		Rule{Kind: KindCorrupt, First: 1},
		Rule{Kind: KindTruncate, First: 1},
	)
	h := plan.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Error("conn fault: request succeeded")
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == payload || len(body) != len(payload) {
		t.Errorf("corrupt fault: body = %q", body)
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Error("truncate fault: read succeeded in full")
	}

	// Clean afterwards.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != payload {
		t.Errorf("clean op body = %q", body)
	}
}
