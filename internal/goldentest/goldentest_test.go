package goldentest

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNormalizeEOL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a\nb\n", "a\nb\n"},
		{"a\r\nb\r\n", "a\nb\n"},
		{"a\rb", "a\nb"},
		{"mixed\r\nlines\nand\rmore", "mixed\nlines\nand\nmore"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := NormalizeEOL(tc.in); got != tc.want {
			t.Errorf("NormalizeEOL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEqualIgnoresLineEndings(t *testing.T) {
	if !Equal("x\ny\n", "x\r\ny\r\n") {
		t.Error("CRLF golden should match LF output")
	}
	if Equal("x\ny\n", "x\nz\n") {
		t.Error("content drift must not be masked by normalization")
	}
}

// TestCheckCRLFGolden simulates a golden that went through a CRLF
// checkout: the comparison must still pass against LF render output.
func TestCheckCRLFGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.txt")
	if err := os.WriteFile(path, []byte("line one\r\nline two\r\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	Check(t, path, "line one\nline two\n")
}
