// Package goldentest compares rendered text against checked-in golden
// files. Comparison is end-of-line normalized so goldens survive CRLF
// checkouts (git autocrlf on Windows) byte-for-byte otherwise; content
// drift still fails loudly. Regenerate goldens with `go test -update`
// in the package under test.
package goldentest

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Update rewrites golden files instead of comparing. Registered here so
// every package using this helper shares the same `-update` spelling.
var Update = flag.Bool("update", false, "rewrite golden files")

// NormalizeEOL maps CRLF (and stray CR) line endings to LF so that the
// comparison is independent of checkout line-ending configuration.
func NormalizeEOL(s string) string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	return strings.ReplaceAll(s, "\r", "\n")
}

// Equal reports whether got matches want up to end-of-line encoding.
func Equal(got, want string) bool {
	return NormalizeEOL(got) == NormalizeEOL(want)
}

// Check compares got against the golden file at path (conventionally
// testdata/goldens/<name>), rewriting it under -update.
func Check(t *testing.T, path, got string) {
	t.Helper()
	if *Update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(NormalizeEOL(got)), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (run with -update): %v", path, err)
	}
	if !Equal(got, string(want)) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
