package hostenv

import (
	"strings"
	"testing"

	"repro/internal/pkgmgr"
)

func TestProfilesMatchPaperMatrix(t *testing.T) {
	hs := Profiles()
	if len(hs) != 7 {
		t.Fatalf("profiles = %d, want 7", len(hs))
	}
	if hs[0].Name != BuildHost {
		t.Errorf("first profile = %q, want build host", hs[0].Name)
	}
	if hs[0].CPUs != 20 || hs[0].MemGB != 256 {
		t.Errorf("build host hardware = %d cpus / %d GB, want 20/256", hs[0].CPUs, hs[0].MemGB)
	}
	var cloud *Host
	for _, h := range hs {
		if h.Cloud {
			cloud = h
		}
	}
	if cloud == nil || cloud.CPUs != 8 || cloud.MemGB != 30 {
		t.Errorf("GCP profile wrong: %+v", cloud)
	}
}

func TestByName(t *testing.T) {
	h, err := ByName(Debian96)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.OS, "Debian") {
		t.Errorf("OS = %q", h.OS)
	}
	if _, err := ByName("amiga-os"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestNativeInstallMatrix(t *testing.T) {
	// The crux of the paper's motivation: native installs succeed on the
	// older platforms and fail on the newer ones.
	cases := []struct {
		host string
		tool string
		ok   bool
	}{
		{BuildHost, pkgmgr.PkgPEPAPlugin, true},
		{CentOS76, pkgmgr.PkgPEPAPlugin, true},
		{Ubuntu1604, pkgmgr.PkgPEPAPlugin, true},
		{Debian96, pkgmgr.PkgPEPAPlugin, true},
		{Ubuntu1804, pkgmgr.PkgPEPAPlugin, false}, // Eclipse 4.2/4.4 dropped
		{Mint191, pkgmgr.PkgPEPAPlugin, false},

		{BuildHost, pkgmgr.PkgBioPEPA, true},
		{Debian96, pkgmgr.PkgBioPEPA, false}, // JDK 6/7 dropped
		{Ubuntu1804, pkgmgr.PkgBioPEPA, false},

		{BuildHost, pkgmgr.PkgGPAnalyser, true},
		{Ubuntu1804, pkgmgr.PkgGPAnalyser, false}, // vis-toolkit 2.3 dropped
		{GCPInstance, pkgmgr.PkgGPAnalyser, true},
	}
	for _, c := range cases {
		h, err := ByName(c.host)
		if err != nil {
			t.Fatal(err)
		}
		err = h.NativeInstall(c.tool)
		if c.ok && err != nil {
			t.Errorf("%s on %s: unexpected failure: %v", c.tool, c.host, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s on %s: install succeeded, want dependency failure", c.tool, c.host)
		}
	}
}

func TestEveryHostCanInstallSingularity(t *testing.T) {
	// The paper's premise: the only host requirement is the container
	// runtime, and every platform can satisfy it.
	for _, h := range Profiles() {
		if err := h.InstallSingularity(); err != nil {
			t.Errorf("%s cannot install singularity: %v", h.Name, err)
		}
		if !h.HasSingularity() {
			t.Errorf("%s: singularity binary missing after install", h.Name)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	h, _ := ByName(BuildHost)
	c := h.Clone()
	c.FS.WriteFile("/etc/marker", []byte("x"), 0o644)
	if h.FS.Exists("/etc/marker") {
		t.Error("clone shares filesystem with original")
	}
}

func TestBaseImages(t *testing.T) {
	bases := BaseImages()
	if _, ok := bases["centos:7.4"]; !ok {
		t.Fatal("centos:7.4 base missing")
	}
	fs := bases["centos:7.4"].FS()
	if !fs.Exists("/etc/os-release") {
		t.Error("base image lacks os-release")
	}
	// The base repo must be able to host the full PEPA toolchain — the
	// build-time guarantee containers rely on.
	for _, tool := range []string{pkgmgr.PkgPEPAPlugin, pkgmgr.PkgBioPEPA, pkgmgr.PkgGPAnalyser} {
		if _, err := pkgmgr.Resolve(bases["centos:7.4"].Repo, []pkgmgr.Dependency{pkgmgr.Any(tool)}); err != nil {
			t.Errorf("base repo cannot resolve %s: %v", tool, err)
		}
	}
	names := BaseImageNames()
	if len(names) < 2 {
		t.Errorf("base image names = %v", names)
	}
}

func TestFreshProfilesEachCall(t *testing.T) {
	a, _ := ByName(CentOS76)
	a.FS.WriteFile("/etc/dirty", []byte("x"), 0o644)
	b, _ := ByName(CentOS76)
	if b.FS.Exists("/etc/dirty") {
		t.Error("profiles share state across ByName calls")
	}
}
