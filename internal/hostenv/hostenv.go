// Package hostenv models the execution hosts of the paper's §III validation
// matrix: the CentOS 7.4 build server, the five Linux workstation profiles,
// and the Google Cloud instance. Each host carries its own distribution
// package repository — with the version skew that makes native installs of
// the PEPA toolchain fail on newer platforms — plus a root filesystem and
// hardware metadata.
package hostenv

import (
	"fmt"
	"sort"

	"repro/internal/pkgmgr"
	"repro/internal/vfs"
)

// Host is one execution platform.
type Host struct {
	Name   string // e.g. "centos-7.4-proliant"
	OS     string // e.g. "CentOS Linux 7.4"
	Kernel string
	CPUs   int
	MemGB  int
	Cloud  bool // true for the GCP instance
	// Repo is the distro package archive available to native installs.
	Repo *pkgmgr.Repository
	// FS is the host's root filesystem (base OS files preinstalled).
	FS *vfs.FS
	// User is the unprivileged account running experiments.
	User string
}

// Clone returns a deep copy of the host (fresh filesystem, shared repo).
func (h *Host) Clone() *Host {
	c := *h
	c.FS = h.FS.Clone()
	return &c
}

// String renders "name (OS, N cpus)".
func (h *Host) String() string {
	return fmt.Sprintf("%s (%s, %d cpus, %d GB)", h.Name, h.OS, h.CPUs, h.MemGB)
}

// NativeInstall resolves and installs a tool (and its dependency closure)
// from the host's own repository — the pre-container workflow whose
// failures motivate the paper.
func (h *Host) NativeInstall(tools ...string) error {
	var reqs []pkgmgr.Dependency
	for _, t := range tools {
		reqs = append(reqs, pkgmgr.Any(t))
	}
	plan, err := pkgmgr.Resolve(h.Repo, reqs)
	if err != nil {
		return fmt.Errorf("hostenv: native install of %v on %s: %w", tools, h.Name, err)
	}
	if err := pkgmgr.Install(h.FS, plan); err != nil {
		return fmt.Errorf("hostenv: native install of %v on %s: %w", tools, h.Name, err)
	}
	return nil
}

// HasSingularity reports whether the Singularity runtime is installed.
func (h *Host) HasSingularity() bool {
	return h.FS.Exists("/usr/bin/singularity")
}

// InstallSingularity installs the container runtime from the host repo.
// Every profile carries it (the paper's premise: the *only* host dependency
// is the containerization framework).
func (h *Host) InstallSingularity() error {
	return h.NativeInstall(pkgmgr.PkgSingularity)
}

// baseFS builds a minimal root filesystem for a distro.
func baseFS(osName string) *vfs.FS {
	fs := vfs.New()
	for _, d := range []string{"/bin", "/etc", "/home", "/opt", "/tmp", "/usr/bin", "/usr/lib", "/var/lib"} {
		fs.MkdirAll(d, 0o755)
	}
	fs.WriteFile("/etc/os-release", []byte("NAME="+osName+"\n"), 0o644)
	fs.WriteFile("/bin/sh", []byte("shell"), 0o755)
	return fs
}

// carve builds a distro repository from the upstream universe by removing
// the packages/versions the distro no longer ships.
func carve(name string, remove func(*pkgmgr.Repository)) *pkgmgr.Repository {
	r := pkgmgr.Universe().Clone(name)
	remove(r)
	return r
}

// Profile names, matching §III of the paper.
const (
	BuildHost   = "centos-7.4-proliant" // HP ProLiant SL, Singularity built here
	CentOS76    = "centos-7.6"
	Ubuntu1804  = "ubuntu-18.04-bionic"
	Ubuntu1604  = "ubuntu-16.04-xenial"
	Mint191     = "linuxmint-19.1-tessa"
	Debian96    = "debian-9.6-stretch"
	GCPInstance = "gcp-n1-standard-8"
)

// Profiles constructs the seven host profiles of the validation matrix.
// The returned slice is ordered with the build host first.
func Profiles() []*Host {
	hosts := []*Host{
		{
			Name: BuildHost, OS: "CentOS Linux 7.4", Kernel: "3.10.0-693",
			CPUs: 20, MemGB: 256, User: "modeler",
			Repo: carve("centos-7.4", func(r *pkgmgr.Repository) {
				// EL7 never shipped JDK 11 or Eclipse 4.9.
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
			}),
		},
		{
			Name: CentOS76, OS: "CentOS Linux 7.6", Kernel: "3.10.0-957",
			CPUs: 8, MemGB: 64, User: "modeler",
			Repo: carve("centos-7.6", func(r *pkgmgr.Repository) {
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
			}),
		},
		{
			Name: Ubuntu1804, OS: "Ubuntu 18.04 LTS Bionic Beaver", Kernel: "4.15.0",
			CPUs: 8, MemGB: 32, User: "modeler",
			Repo: carve("ubuntu-18.04", func(r *pkgmgr.Repository) {
				// Bionic dropped the legacy JDKs, old Eclipse lines, and
				// vis-toolkit 2.x — the skew that breaks native installs.
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(6, 0, 45))
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(7, 0, 80))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(3, 6, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 2, 0))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 4, 2))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(2, 3, 0))
			}),
		},
		{
			Name: Ubuntu1604, OS: "Ubuntu 16.04 LTS Xenial Xerus", Kernel: "4.4.0",
			CPUs: 4, MemGB: 16, User: "modeler",
			Repo: carve("ubuntu-16.04", func(r *pkgmgr.Repository) {
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(6, 0, 45))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(3, 6, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
			}),
		},
		{
			Name: Mint191, OS: "Linux Mint 19.1 Tessa", Kernel: "4.15.0",
			CPUs: 4, MemGB: 16, User: "modeler",
			Repo: carve("mint-19.1", func(r *pkgmgr.Repository) {
				// Mint 19.1 tracks Ubuntu 18.04.
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(6, 0, 45))
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(7, 0, 80))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(3, 6, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 2, 0))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 4, 2))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(2, 3, 0))
			}),
		},
		{
			Name: Debian96, OS: "Debian 9.6 Stretch", Kernel: "4.9.0",
			CPUs: 4, MemGB: 16, User: "modeler",
			Repo: carve("debian-9.6", func(r *pkgmgr.Repository) {
				// Stretch ships only JDK 8 and keeps Eclipse Luna.
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(6, 0, 45))
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(7, 0, 80))
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(3, 6, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
			}),
		},
		{
			Name: GCPInstance, OS: "CentOS Linux 7.6", Kernel: "3.10.0-957",
			CPUs: 8, MemGB: 30, Cloud: true, User: "modeler",
			Repo: carve("gcp-centos-7.6", func(r *pkgmgr.Repository) {
				r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
				r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
				r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
			}),
		},
	}
	for _, h := range hosts {
		h.FS = baseFS(h.OS)
	}
	return hosts
}

// ByName returns the named profile (fresh instance) or an error.
func ByName(name string) (*Host, error) {
	for _, h := range Profiles() {
		if h.Name == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("hostenv: unknown host profile %q", name)
}

// Names lists all profile names in matrix order.
func Names() []string {
	hs := Profiles()
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Name
	}
	return out
}

// BaseImages maps "distro:version" bootstrap references to fresh base
// filesystems plus the repository a build on that base resolves against.
// This is the stand-in for pulling a base image from a library.
func BaseImages() map[string]struct {
	FS   func() *vfs.FS
	Repo *pkgmgr.Repository
} {
	centosRepo := carve("centos-7.4-base", func(r *pkgmgr.Repository) {
		r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
		r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
		r.RemoveVersion(pkgmgr.PkgVisToolkit, pkgmgr.V(3, 0, 0))
	})
	ubuntuRepo := carve("ubuntu-16.04-base", func(r *pkgmgr.Repository) {
		r.RemoveVersion(pkgmgr.PkgJDK, pkgmgr.V(11, 0, 2))
		r.RemoveVersion(pkgmgr.PkgEclipse, pkgmgr.V(4, 9, 0))
	})
	out := map[string]struct {
		FS   func() *vfs.FS
		Repo *pkgmgr.Repository
	}{
		"centos:7.4":   {FS: func() *vfs.FS { return baseFS("CentOS Linux 7.4") }, Repo: centosRepo},
		"ubuntu:16.04": {FS: func() *vfs.FS { return baseFS("Ubuntu 16.04 LTS") }, Repo: ubuntuRepo},
	}
	return out
}

// BaseImageNames lists the available bootstrap references, sorted.
func BaseImageNames() []string {
	m := BaseImages()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
