// Package runctx defines the shared cancellation vocabulary for the
// toolchain's long-running operations: a typed *ErrCanceled that carries
// the best-so-far partial result (in the style of ctmc.ConvergenceError,
// which carries its stage trace), and an obs hook so every cancellation
// and deadline hit is counted uniformly.
//
// Contract: every Ctx-suffixed entry point (derive.ExploreCtx,
// ctmc.SteadyStateCtx, sim.RunEnsembleCtx, ...) polls ctx at its natural
// unit-of-work boundary — iteration, uniformization term, BFS dequeue,
// simulation event, replication, matrix cell, build stage — and returns
// an *ErrCanceled as soon as the context is done. Polling uses ctx.Err()
// only, so an uncancelled run (context.Background or an unexpired
// deadline) executes the exact same float operations as the legacy
// entry point: cancellation support is instrumentation-neutral.
package runctx

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// ErrCanceled reports that a long-running operation was interrupted
// cooperatively by its context. It wraps the cause (context.Canceled or
// context.DeadlineExceeded, reachable via errors.Is) and records how far
// the operation got so callers can report classified partial progress
// and resume from a checkpoint.
type ErrCanceled struct {
	// Op names the interrupted operation, e.g. "ctmc.steady-state".
	Op string
	// Cause is the context error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	// Done counts completed units of work; Unit names them
	// ("iterations", "replications", "states", "cells", ...).
	Done int
	// Total is the number of units the full run needed, or 0 when the
	// total is unknown up front (e.g. BFS state-space exploration).
	Total int
	Unit  string
	// Residual is the solver residual at interruption; NaN when the
	// operation has no residual notion.
	Residual float64
	// Partial, when non-nil, holds the operation-specific best-so-far
	// result (e.g. a *sim.Ensemble over the completed replications, or
	// the transient-series prefix already computed).
	Partial any
}

func (e *ErrCanceled) Error() string {
	msg := fmt.Sprintf("%s: canceled after %d", e.Op, e.Done)
	if e.Total > 0 {
		msg += fmt.Sprintf("/%d", e.Total)
	}
	if e.Unit != "" {
		msg += " " + e.Unit
	}
	if !math.IsNaN(e.Residual) {
		msg += fmt.Sprintf(" (residual %.3e)", e.Residual)
	}
	return msg + ": " + e.Cause.Error()
}

// Unwrap exposes the context error so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) both work.
func (e *ErrCanceled) Unwrap() error { return e.Cause }

// New builds an *ErrCanceled with Residual defaulted to NaN. Cause
// should be ctx.Err() at the moment of interruption.
func New(op string, cause error, done, total int, unit string) *ErrCanceled {
	return &ErrCanceled{Op: op, Cause: cause, Done: done, Total: total, Unit: unit, Residual: math.NaN()}
}

// CauseLabel classifies a cancellation cause for the closed-set obs
// label: "deadline" for context.DeadlineExceeded, "canceled" otherwise.
func CauseLabel(cause error) string {
	if errors.Is(cause, context.DeadlineExceeded) {
		return "deadline"
	}
	return "canceled"
}

// Record counts one cancellation in reg (nil-safe, like all obs calls):
//
//	cancellations_total{op=<op>, cause=canceled|deadline}
//
// Every package that constructs an *ErrCanceled with an obs registry in
// scope calls Record exactly once per interrupted operation.
func Record(reg *obs.Registry, op string, cause error) {
	reg.Inc("cancellations_total", obs.L("op", op), obs.L("cause", CauseLabel(cause)))
}
