package runctx

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestErrCanceledUnwrap(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		err := error(New("ctmc.transient", cause, 3, 10, "terms"))
		if !errors.Is(err, cause) {
			t.Fatalf("errors.Is(%v, %v) = false", err, cause)
		}
		var ec *ErrCanceled
		if !errors.As(err, &ec) || ec.Done != 3 || ec.Total != 10 {
			t.Fatalf("errors.As failed or lost progress: %+v", ec)
		}
	}
}

func TestErrCanceledMessage(t *testing.T) {
	err := New("sim.ensemble", context.Canceled, 7, 0, "replications")
	msg := err.Error()
	for _, want := range []string{"sim.ensemble", "after 7 replications", "context canceled"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "residual") {
		t.Fatalf("NaN residual should be omitted: %q", msg)
	}
	if strings.Contains(msg, "7/") {
		t.Fatalf("unknown total should be omitted: %q", msg)
	}

	withRes := New("ctmc.steady-state", context.DeadlineExceeded, 12, 500, "iterations")
	withRes.Residual = 1e-4
	msg = withRes.Error()
	for _, want := range []string{"12/500 iterations", "residual 1.000e-04", "deadline exceeded"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func TestNewDefaultsResidualNaN(t *testing.T) {
	if e := New("x", context.Canceled, 0, 0, ""); !math.IsNaN(e.Residual) {
		t.Fatalf("Residual = %v, want NaN", e.Residual)
	}
}

func TestCauseLabel(t *testing.T) {
	if got := CauseLabel(context.DeadlineExceeded); got != "deadline" {
		t.Fatalf("deadline label = %q", got)
	}
	if got := CauseLabel(context.Canceled); got != "canceled" {
		t.Fatalf("canceled label = %q", got)
	}
}

func TestRecord(t *testing.T) {
	reg := obs.NewRegistry()
	Record(reg, "derive.explore", context.Canceled)
	Record(reg, "derive.explore", context.DeadlineExceeded)
	Record(reg, "derive.explore", context.DeadlineExceeded)
	if got := reg.Counter("cancellations_total", obs.L("op", "derive.explore"), obs.L("cause", "canceled")); got != 1 {
		t.Fatalf("canceled count = %v, want 1", got)
	}
	if got := reg.Counter("cancellations_total", obs.L("op", "derive.explore"), obs.L("cause", "deadline")); got != 2 {
		t.Fatalf("deadline count = %v, want 2", got)
	}
	// Nil registry must be a no-op, like every obs call.
	Record(nil, "derive.explore", context.Canceled)
}
