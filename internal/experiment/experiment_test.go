package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/pepa"
)

const workRest = "r = 1.0; s = 2.0;\nP = (work, r).P1;\nP1 = (rest, s).P;\nP\n"

func TestThroughputSweepMonotone(t *testing.T) {
	m := pepa.MustParse(workRest)
	series, err := RateSweep(m, "r", Linspace(0.5, 4, 8), Throughput{Action: "work"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 8 {
		t.Fatalf("points = %d", len(series.Points))
	}
	// Throughput(work) = r*s/(r+s), increasing in r.
	for i := 1; i < len(series.Points); i++ {
		if series.Points[i].Measure <= series.Points[i-1].Measure {
			t.Errorf("throughput not increasing at %g", series.Points[i].Value)
		}
	}
	// Check exact value at r=2, s=2: 2*2/4 = 1.
	for _, p := range series.Points {
		want := p.Value * 2 / (p.Value + 2)
		if math.Abs(p.Measure-want) > 1e-8 {
			t.Errorf("throughput(r=%g) = %g, want %g", p.Value, p.Measure, want)
		}
	}
}

func TestSweepDoesNotMutateModel(t *testing.T) {
	m := pepa.MustParse(workRest)
	if _, err := RateSweep(m, "r", []float64{5, 10}, Throughput{Action: "work"}); err != nil {
		t.Fatal(err)
	}
	if m.Rates["r"] != 1 {
		t.Errorf("sweep mutated the model: r = %g", m.Rates["r"])
	}
}

func TestUtilizationSweep(t *testing.T) {
	m := pepa.MustParse(workRest)
	series, err := RateSweep(m, "s", Linspace(0.5, 4, 4), Utilization{Pattern: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	// pi(P1) = r/(r+s) = 1/(1+s), decreasing in s.
	for i, p := range series.Points {
		want := 1 / (1 + p.Value)
		if math.Abs(p.Measure-want) > 1e-8 {
			t.Errorf("utilization(s=%g) = %g, want %g", p.Value, p.Measure, want)
		}
		if i > 0 && p.Measure >= series.Points[i-1].Measure {
			t.Error("utilization not decreasing in s")
		}
	}
}

func TestPassageQuantileSweep(t *testing.T) {
	src := "r = 1.0;\nP0 = (go, r).PEnd;\nPEnd = (idle, 0.000001).PEnd;\nP0\n"
	m := pepa.MustParse(src)
	series, err := RateSweep(m, "r", []float64{0.5, 1, 2}, PassageQuantile{
		Pattern: "PEnd", Quantile: 0.5, Horizon: 20, Samples: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Median of Exp(r) is ln2/r: halving with each doubling of r.
	for _, p := range series.Points {
		want := math.Ln2 / p.Value
		if math.Abs(p.Measure-want) > 0.1 {
			t.Errorf("median(r=%g) = %g, want %g", p.Value, p.Measure, want)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	m := pepa.MustParse(workRest)
	if _, err := RateSweep(m, "ghost", []float64{1}, Throughput{Action: "work"}); err == nil {
		t.Error("unknown rate accepted")
	}
	if _, err := RateSweep(m, "r", nil, Throughput{Action: "work"}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RateSweep(m, "r", []float64{0}, Throughput{Action: "work"}); err == nil {
		t.Error("zero rate value accepted")
	}
	if _, err := RateSweep(m, "r", []float64{1}, Throughput{Action: "ghost"}); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := RateSweep(m, "r", []float64{1}, PassageQuantile{Pattern: "Nowhere"}); err == nil {
		t.Error("unmatched passage pattern accepted")
	}
}

func TestSeriesTSV(t *testing.T) {
	s := &Series{Parameter: "r", Measure: "throughput(work)", Points: []Point{{1, 0.5}, {2, 0.75}}}
	tsv := s.TSV()
	if !strings.HasPrefix(tsv, "r\tthroughput(work)\n") {
		t.Errorf("tsv header wrong:\n%s", tsv)
	}
	if !strings.Contains(tsv, "2\t0.750000") {
		t.Errorf("tsv rows wrong:\n%s", tsv)
	}
}

func TestLinspaceGeomspace(t *testing.T) {
	lin := Linspace(0, 10, 11)
	if len(lin) != 11 || lin[0] != 0 || lin[10] != 10 || lin[5] != 5 {
		t.Errorf("linspace = %v", lin)
	}
	geo := Geomspace(1, 100, 3)
	if len(geo) != 3 || geo[0] != 1 || math.Abs(geo[1]-10) > 1e-9 || math.Abs(geo[2]-100) > 1e-9 {
		t.Errorf("geomspace = %v", geo)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate linspace = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geomspace with zero bound did not panic")
		}
	}()
	Geomspace(0, 1, 3)
}

func TestMeasureNames(t *testing.T) {
	if (Throughput{Action: "a"}).Name() != "throughput(a)" {
		t.Error("throughput name")
	}
	if (Utilization{Pattern: "P"}).Name() != "utilization(P)" {
		t.Error("utilization name")
	}
	if !strings.Contains((PassageQuantile{Pattern: "D", Quantile: 0.5}).Name(), "q0.50") {
		t.Error("passage name")
	}
}
