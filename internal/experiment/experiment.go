// Package experiment implements the PEPA workbench's "experimentation"
// facility: sweep a rate constant (or a component population) over a range
// of values and record a steady-state measure — throughput of an action,
// utilization of a state predicate, or a passage-time quantile — at each
// point. This is how the sensitivity analyses in the PEPA literature
// (including the robustness study the paper replicates) are produced.
package experiment

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ctmc"
	"repro/internal/par"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

// Point is one sweep sample.
type Point struct {
	Value   float64 // the swept parameter's value
	Measure float64 // the recorded measure
}

// Series is a named sweep result.
type Series struct {
	Parameter string
	Measure   string
	Points    []Point
}

// TSV renders the series as a two-column table.
func (s *Series) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\t%s\n", s.Parameter, s.Measure)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g\t%.6f\n", p.Value, p.Measure)
	}
	return b.String()
}

// Measure computes a scalar from a solved model.
type Measure interface {
	Name() string
	Eval(ss *derive.StateSpace, chain *ctmc.Chain) (float64, error)
}

// Throughput measures the steady-state rate of an action.
type Throughput struct{ Action string }

// Name implements Measure.
func (t Throughput) Name() string { return "throughput(" + t.Action + ")" }

// Eval implements Measure.
func (t Throughput) Eval(ss *derive.StateSpace, chain *ctmc.Chain) (float64, error) {
	pi, err := chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		return 0, err
	}
	return chain.Throughput(pi, t.Action)
}

// Utilization measures the steady-state probability of states whose
// canonical term contains Pattern.
type Utilization struct{ Pattern string }

// Name implements Measure.
func (u Utilization) Name() string { return "utilization(" + u.Pattern + ")" }

// Eval implements Measure.
func (u Utilization) Eval(ss *derive.StateSpace, chain *ctmc.Chain) (float64, error) {
	pi, err := chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		return 0, err
	}
	sel := ss.StatesMatching(func(term string) bool {
		return strings.Contains(term, u.Pattern)
	})
	return chain.Utilization(pi, sel), nil
}

// PassageQuantile measures a quantile of the first-passage time from the
// initial state to states containing Pattern.
type PassageQuantile struct {
	Pattern  string
	Quantile float64 // e.g. 0.5 for the median
	Horizon  float64
	Samples  int
}

// Name implements Measure.
func (p PassageQuantile) Name() string {
	return fmt.Sprintf("passage-q%.2f(%s)", p.Quantile, p.Pattern)
}

// Eval implements Measure.
func (p PassageQuantile) Eval(ss *derive.StateSpace, chain *ctmc.Chain) (float64, error) {
	targets := ss.StatesMatching(func(term string) bool {
		return strings.Contains(term, p.Pattern)
	})
	if len(targets) == 0 {
		return 0, fmt.Errorf("experiment: no state matches %q", p.Pattern)
	}
	n := p.Samples
	if n <= 0 {
		n = 100
	}
	h := p.Horizon
	if h <= 0 {
		h = 100
	}
	times := make([]float64, n+1)
	for i := range times {
		times[i] = h * float64(i) / float64(n)
	}
	cdf, err := chain.FirstPassageCDF(chain.PointMass(0), targets, times, 1e-10)
	if err != nil {
		return 0, err
	}
	return cdf.Quantile(p.Quantile), nil
}

// RateSweep evaluates a measure while a rate constant takes each value in
// values. The model is not modified; each point solves an independent copy,
// so points run in parallel (one worker per core) and are assembled in
// sweep order.
func RateSweep(m *pepa.Model, rateName string, values []float64, measure Measure) (*Series, error) {
	if _, ok := m.Rates[rateName]; !ok {
		return nil, fmt.Errorf("experiment: model has no rate constant %q", rateName)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("experiment: empty sweep")
	}
	for _, v := range values {
		if v <= 0 {
			return nil, fmt.Errorf("experiment: rate %q cannot sweep through non-positive value %g", rateName, v)
		}
	}
	points, err := par.Map(len(values), 0, func(i int) (Point, error) {
		v := values[i]
		clone := cloneWithRate(m, rateName, v)
		ss, err := derive.Explore(clone, derive.Options{})
		if err != nil {
			return Point{}, fmt.Errorf("experiment: %s=%g: %w", rateName, v, err)
		}
		chain := ctmc.FromStateSpace(ss)
		val, err := measure.Eval(ss, chain)
		if err != nil {
			return Point{}, fmt.Errorf("experiment: %s=%g: %w", rateName, v, err)
		}
		return Point{Value: v, Measure: val}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{Parameter: rateName, Measure: measure.Name(), Points: points}, nil
}

// cloneWithRate copies the model with one rate constant overridden. The
// process definitions are shared (the AST is immutable).
func cloneWithRate(m *pepa.Model, name string, v float64) *pepa.Model {
	c := pepa.NewModel()
	for _, rn := range m.RateOrder {
		c.DefineRate(rn, m.Rates[rn])
	}
	c.DefineRate(name, v)
	for _, dn := range m.DefOrder {
		c.Define(dn, m.Defs[dn].Body)
	}
	c.System = m.System
	return c
}

// Linspace returns n evenly spaced values over [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Geomspace returns n logarithmically spaced values over [lo, hi].
func Geomspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("experiment: Geomspace needs positive bounds")
	}
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
