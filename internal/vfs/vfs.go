// Package vfs implements the in-memory POSIX-like filesystem that container
// images are built on: directories, regular files, symlinks, permission
// bits and ownership, with deterministic tar-stream serialization so that
// identical build inputs always produce byte-identical images (and hence
// identical content digests — the property the reproducibility harness
// checks).
package vfs

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"
)

// NodeKind distinguishes filesystem node types.
type NodeKind int

// Node kinds.
const (
	KindDir NodeKind = iota
	KindFile
	KindSymlink
)

func (k NodeKind) String() string {
	switch k {
	case KindDir:
		return "dir"
	case KindFile:
		return "file"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one filesystem object.
type Node struct {
	Kind   NodeKind
	Mode   uint32 // permission bits (low 12 bits)
	UID    int
	GID    int
	Data   []byte // file content (KindFile)
	Target string // symlink target (KindSymlink)
}

// FS is an in-memory filesystem. The zero value is not usable; call New.
type FS struct {
	nodes map[string]*Node // key: clean absolute path; "/" is the root dir
}

// Common errors.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrBadPath  = errors.New("vfs: invalid path")
	ErrLinkLoop = errors.New("vfs: too many levels of symbolic links")
)

// New returns a filesystem containing only the root directory.
func New() *FS {
	return &FS{nodes: map[string]*Node{
		"/": {Kind: KindDir, Mode: 0o755},
	}}
}

// Clean normalizes p to a clean absolute path.
func Clean(p string) (string, error) {
	if p == "" {
		return "", ErrBadPath
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	c := path.Clean(p)
	return c, nil
}

// resolve follows symlinks in every component except optionally the last.
func (fs *FS) resolve(p string, followLast bool) (string, error) {
	c, err := Clean(p)
	if err != nil {
		return "", err
	}
	const maxHops = 40
	hops := 0
	var walk func(string) (string, error)
	walk = func(cur string) (string, error) {
		if cur == "/" {
			return "/", nil
		}
		parts := strings.Split(strings.TrimPrefix(cur, "/"), "/")
		resolved := "/"
		for i, part := range parts {
			next := path.Join(resolved, part)
			n, ok := fs.nodes[next]
			if !ok {
				// The remainder of the path does not exist; no further
				// symlink resolution is possible. Callers decide whether a
				// missing node is an error.
				return path.Join(append([]string{next}, parts[i+1:]...)...), nil
			}
			if n.Kind == KindSymlink && (i < len(parts)-1 || followLast) {
				hops++
				if hops > maxHops {
					return "", ErrLinkLoop
				}
				target := n.Target
				if !strings.HasPrefix(target, "/") {
					target = path.Join(path.Dir(next), target)
				}
				rest := strings.Join(parts[i+1:], "/")
				return walk(path.Join(target, rest))
			}
			if i < len(parts)-1 && n.Kind != KindDir {
				return "", fmt.Errorf("%w: %s", ErrNotDir, next)
			}
			resolved = next
		}
		return resolved, nil
	}
	return walk(c)
}

// Lookup returns the node at p, following symlinks.
func (fs *FS) Lookup(p string) (*Node, error) {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return nil, err
	}
	n, ok := fs.nodes[rp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, rp)
	}
	return n, nil
}

// Lstat returns the node at p without following a final symlink.
func (fs *FS) Lstat(p string) (*Node, error) {
	rp, err := fs.resolve(p, false)
	if err != nil {
		return nil, err
	}
	n, ok := fs.nodes[rp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, rp)
	}
	return n, nil
}

// Exists reports whether p resolves to an existing node.
func (fs *FS) Exists(p string) bool {
	_, err := fs.Lookup(p)
	return err == nil
}

// Mkdir creates a single directory. The parent must exist.
func (fs *FS) Mkdir(p string, mode uint32) error {
	rp, err := fs.resolve(p, false)
	if err != nil {
		return err
	}
	if _, ok := fs.nodes[rp]; ok {
		return fmt.Errorf("%w: %s", ErrExist, rp)
	}
	parent := path.Dir(rp)
	pn, ok := fs.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, parent)
	}
	if pn.Kind != KindDir {
		return fmt.Errorf("%w: %s", ErrNotDir, parent)
	}
	fs.nodes[rp] = &Node{Kind: KindDir, Mode: mode & 0o7777}
	return nil
}

// MkdirAll creates a directory and all missing parents.
func (fs *FS) MkdirAll(p string, mode uint32) error {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return err
	}
	if n, ok := fs.nodes[rp]; ok {
		if n.Kind != KindDir {
			return fmt.Errorf("%w: %s", ErrNotDir, rp)
		}
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(rp, "/"), "/")
	cur := "/"
	for _, part := range parts {
		cur = path.Join(cur, part)
		if n, ok := fs.nodes[cur]; ok {
			if n.Kind != KindDir {
				return fmt.Errorf("%w: %s", ErrNotDir, cur)
			}
			continue
		}
		fs.nodes[cur] = &Node{Kind: KindDir, Mode: mode & 0o7777}
	}
	return nil
}

// WriteFile creates or replaces a regular file. The parent directory must
// exist.
func (fs *FS) WriteFile(p string, data []byte, mode uint32) error {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return err
	}
	if n, ok := fs.nodes[rp]; ok && n.Kind == KindDir {
		return fmt.Errorf("%w: %s", ErrIsDir, rp)
	}
	parent := path.Dir(rp)
	pn, ok := fs.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, parent)
	}
	if pn.Kind != KindDir {
		return fmt.Errorf("%w: %s", ErrNotDir, parent)
	}
	fs.nodes[rp] = &Node{Kind: KindFile, Mode: mode & 0o7777, Data: append([]byte(nil), data...)}
	return nil
}

// AppendFile appends to an existing file, creating it if absent.
func (fs *FS) AppendFile(p string, data []byte, mode uint32) error {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return err
	}
	if n, ok := fs.nodes[rp]; ok {
		if n.Kind != KindFile {
			return fmt.Errorf("%w: %s", ErrIsDir, rp)
		}
		n.Data = append(n.Data, data...)
		return nil
	}
	return fs.WriteFile(p, data, mode)
}

// ReadFile returns a copy of the file's content.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	n, err := fs.Lookup(p)
	if err != nil {
		return nil, err
	}
	if n.Kind == KindDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if n.Kind == KindSymlink {
		return nil, fmt.Errorf("vfs: unresolved symlink %s", p)
	}
	return append([]byte(nil), n.Data...), nil
}

// Symlink creates a symbolic link at p pointing to target.
func (fs *FS) Symlink(target, p string) error {
	rp, err := fs.resolve(p, false)
	if err != nil {
		return err
	}
	if _, ok := fs.nodes[rp]; ok {
		return fmt.Errorf("%w: %s", ErrExist, rp)
	}
	parent := path.Dir(rp)
	pn, ok := fs.nodes[parent]
	if !ok || pn.Kind != KindDir {
		return fmt.Errorf("%w: %s", ErrNotExist, parent)
	}
	fs.nodes[rp] = &Node{Kind: KindSymlink, Mode: 0o777, Target: target}
	return nil
}

// Remove deletes a file, symlink, or empty directory.
func (fs *FS) Remove(p string) error {
	rp, err := fs.resolve(p, false)
	if err != nil {
		return err
	}
	if rp == "/" {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	n, ok := fs.nodes[rp]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, rp)
	}
	if n.Kind == KindDir {
		for other := range fs.nodes {
			if strings.HasPrefix(other, rp+"/") {
				return fmt.Errorf("%w: %s", ErrNotEmpty, rp)
			}
		}
	}
	delete(fs.nodes, rp)
	return nil
}

// RemoveAll deletes a subtree (no error if absent).
func (fs *FS) RemoveAll(p string) error {
	rp, err := fs.resolve(p, false)
	if err != nil {
		return err
	}
	if rp == "/" {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	delete(fs.nodes, rp)
	prefix := rp + "/"
	for other := range fs.nodes {
		if strings.HasPrefix(other, prefix) {
			delete(fs.nodes, other)
		}
	}
	return nil
}

// ReadDir lists the immediate children of a directory, sorted by name.
func (fs *FS) ReadDir(p string) ([]string, error) {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return nil, err
	}
	n, ok := fs.nodes[rp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, rp)
	}
	if n.Kind != KindDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, rp)
	}
	var names []string
	prefix := rp + "/"
	if rp == "/" {
		prefix = "/"
	}
	for other := range fs.nodes {
		if other == rp || !strings.HasPrefix(other, prefix) {
			continue
		}
		rest := strings.TrimPrefix(other, prefix)
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Walk visits every path in lexical order.
func (fs *FS) Walk(fn func(p string, n *Node) error) error {
	paths := make([]string, 0, len(fs.nodes))
	for p := range fs.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fn(p, fs.nodes[p]); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of nodes (including the root).
func (fs *FS) Size() int { return len(fs.nodes) }

// TotalBytes returns the sum of file content sizes.
func (fs *FS) TotalBytes() int64 {
	var total int64
	for _, n := range fs.nodes {
		total += int64(len(n.Data))
	}
	return total
}

// Clone returns a deep copy of the filesystem.
func (fs *FS) Clone() *FS {
	c := &FS{nodes: make(map[string]*Node, len(fs.nodes))}
	for p, n := range fs.nodes {
		cp := *n
		cp.Data = append([]byte(nil), n.Data...)
		c.nodes[p] = &cp
	}
	return c
}

// CopyInto copies the file or subtree at src in fs to dst in dstFS.
func (fs *FS) CopyInto(dstFS *FS, src, dst string) error {
	rsrc, err := fs.resolve(src, true)
	if err != nil {
		return err
	}
	n, ok := fs.nodes[rsrc]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, rsrc)
	}
	rdst, err := Clean(dst)
	if err != nil {
		return err
	}
	if n.Kind != KindDir {
		cp := *n
		cp.Data = append([]byte(nil), n.Data...)
		if err := dstFS.MkdirAll(path.Dir(rdst), 0o755); err != nil {
			return err
		}
		dstFS.nodes[rdst] = &cp
		return nil
	}
	if err := dstFS.MkdirAll(rdst, n.Mode); err != nil {
		return err
	}
	prefix := rsrc + "/"
	var subpaths []string
	for p := range fs.nodes {
		if strings.HasPrefix(p, prefix) {
			subpaths = append(subpaths, p)
		}
	}
	sort.Strings(subpaths)
	for _, p := range subpaths {
		sn := fs.nodes[p]
		target := path.Join(rdst, strings.TrimPrefix(p, prefix))
		cp := *sn
		cp.Data = append([]byte(nil), sn.Data...)
		if sn.Kind == KindDir {
			if err := dstFS.MkdirAll(target, sn.Mode); err != nil {
				return err
			}
			continue
		}
		if err := dstFS.MkdirAll(path.Dir(target), 0o755); err != nil {
			return err
		}
		dstFS.nodes[target] = &cp
	}
	return nil
}

// epoch is the fixed timestamp used in tar serialization: reproducible
// builds cannot embed wall-clock time.
var epoch = time.Unix(0, 0).UTC()

// MarshalTar serializes the filesystem as a deterministic tar stream:
// entries in lexical path order, fixed epoch timestamps, numeric owners
// only.
func (fs *FS) MarshalTar() ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := fs.Walk(func(p string, n *Node) error {
		if p == "/" {
			return nil
		}
		hdr := &tar.Header{
			Name:    strings.TrimPrefix(p, "/"),
			Mode:    int64(n.Mode),
			Uid:     n.UID,
			Gid:     n.GID,
			ModTime: epoch,
			Format:  tar.FormatPAX,
		}
		switch n.Kind {
		case KindDir:
			hdr.Typeflag = tar.TypeDir
			hdr.Name += "/"
		case KindFile:
			hdr.Typeflag = tar.TypeReg
			hdr.Size = int64(len(n.Data))
		case KindSymlink:
			hdr.Typeflag = tar.TypeSymlink
			hdr.Linkname = n.Target
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if n.Kind == KindFile {
			if _, err := tw.Write(n.Data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalTar reconstructs a filesystem from a tar stream produced by
// MarshalTar (or any tar with the same conventions).
func UnmarshalTar(data []byte) (*FS, error) {
	fs := New()
	tr := tar.NewReader(bytes.NewReader(data))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vfs: reading tar: %w", err)
		}
		p := "/" + strings.TrimSuffix(hdr.Name, "/")
		cp, err := Clean(p)
		if err != nil {
			return nil, err
		}
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := fs.MkdirAll(cp, uint32(hdr.Mode)); err != nil {
				return nil, err
			}
			if n, ok := fs.nodes[cp]; ok {
				n.UID, n.GID = hdr.Uid, hdr.Gid
			}
		case tar.TypeReg:
			content, err := io.ReadAll(tr)
			if err != nil {
				return nil, err
			}
			if err := fs.MkdirAll(path.Dir(cp), 0o755); err != nil {
				return nil, err
			}
			fs.nodes[cp] = &Node{Kind: KindFile, Mode: uint32(hdr.Mode) & 0o7777, UID: hdr.Uid, GID: hdr.Gid, Data: content}
		case tar.TypeSymlink:
			if err := fs.MkdirAll(path.Dir(cp), 0o755); err != nil {
				return nil, err
			}
			fs.nodes[cp] = &Node{Kind: KindSymlink, Mode: 0o777, UID: hdr.Uid, GID: hdr.Gid, Target: hdr.Linkname}
		default:
			return nil, fmt.Errorf("vfs: unsupported tar entry type %q for %s", hdr.Typeflag, hdr.Name)
		}
	}
	return fs, nil
}

// Equal reports whether two filesystems have identical trees and contents.
func Equal(a, b *FS) bool {
	if len(a.nodes) != len(b.nodes) {
		return false
	}
	for p, an := range a.nodes {
		bn, ok := b.nodes[p]
		if !ok {
			return false
		}
		if an.Kind != bn.Kind || an.Mode != bn.Mode || an.UID != bn.UID || an.GID != bn.GID ||
			an.Target != bn.Target || !bytes.Equal(an.Data, bn.Data) {
			return false
		}
	}
	return true
}
