// Layer diffing: a Changeset is the deterministic difference between a
// parent filesystem and a child filesystem — the vfs-level substrate of
// content-addressed image layers. Diff and Apply are exact inverses
// (Apply(parent, Diff(parent, child)) == child), and Marshal emits a
// canonical byte encoding so identical diffs always hash identically.
package vfs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Change is one added or replaced node in a Changeset.
type Change struct {
	Path string
	Node *Node
}

// Changeset is the difference between a parent and a child filesystem:
// paths present in the parent but not the child (whiteouts), and nodes
// that are new or differ in any attribute. Both lists are sorted by path,
// so a Changeset has exactly one canonical form.
type Changeset struct {
	Deleted []string
	Upserts []Change
}

// nodesEqual compares every digest-relevant node attribute.
func nodesEqual(a, b *Node) bool {
	return a.Kind == b.Kind && a.Mode == b.Mode && a.UID == b.UID && a.GID == b.GID &&
		a.Target == b.Target && bytes.Equal(a.Data, b.Data)
}

// Diff computes the canonical changeset that transforms parent into child.
// Nodes are deep-copied, so later mutation of either filesystem does not
// alias into the changeset.
func Diff(parent, child *FS) *Changeset {
	cs := &Changeset{}
	for p, cn := range child.nodes {
		if pn, ok := parent.nodes[p]; ok && nodesEqual(pn, cn) {
			continue
		}
		cp := *cn
		cp.Data = append([]byte(nil), cn.Data...)
		cs.Upserts = append(cs.Upserts, Change{Path: p, Node: &cp})
	}
	for p := range parent.nodes {
		if _, ok := child.nodes[p]; !ok {
			cs.Deleted = append(cs.Deleted, p)
		}
	}
	sort.Strings(cs.Deleted)
	sort.Slice(cs.Upserts, func(i, j int) bool { return cs.Upserts[i].Path < cs.Upserts[j].Path })
	return cs
}

// Empty reports whether the changeset is a no-op.
func (cs *Changeset) Empty() bool { return len(cs.Deleted) == 0 && len(cs.Upserts) == 0 }

// Apply mutates fs in place: deletions first, then upserts in path order.
// Applying Diff(parent, child) to a copy of parent reproduces child
// exactly. Deleting a path removes only that node (Diff lists every
// removed descendant explicitly, so subtree deletes round-trip).
func (fs *FS) Apply(cs *Changeset) error {
	for _, p := range cs.Deleted {
		cp, err := Clean(p)
		if err != nil {
			return err
		}
		if cp == "/" {
			return fmt.Errorf("%w: changeset cannot delete root", ErrBadPath)
		}
		delete(fs.nodes, cp)
	}
	for _, c := range cs.Upserts {
		cp, err := Clean(c.Path)
		if err != nil {
			return err
		}
		if c.Node == nil {
			return fmt.Errorf("%w: changeset upsert %s has no node", ErrBadPath, cp)
		}
		n := *c.Node
		n.Data = append([]byte(nil), c.Node.Data...)
		fs.nodes[cp] = &n
	}
	return nil
}

// changesetHeader is the JSON frame that precedes the upsert stream. The
// upserts themselves travel as plain JSON too (not tar): tar cannot carry
// a symlink's permission bits, and a changeset must round-trip every node
// attribute bit-exactly.
type changesetHeader struct {
	Deleted []string `json:"deleted,omitempty"`
}

// wireNode is the canonical JSON encoding of one upserted node.
type wireNode struct {
	Path   string `json:"path"`
	Kind   int    `json:"kind"`
	Mode   uint32 `json:"mode"`
	UID    int    `json:"uid,omitempty"`
	GID    int    `json:"gid,omitempty"`
	Data   []byte `json:"data,omitempty"`
	Target string `json:"target,omitempty"`
}

// Marshal encodes the changeset deterministically: a u64-length-framed
// header (the whiteout list) followed by a u64-length-framed upsert
// stream, both canonical JSON in sorted path order. Identical changesets
// always produce identical bytes.
func (cs *Changeset) Marshal() ([]byte, error) {
	deleted := append([]string(nil), cs.Deleted...)
	sort.Strings(deleted)
	head, err := json.Marshal(changesetHeader{Deleted: deleted})
	if err != nil {
		return nil, err
	}
	ups := append([]Change(nil), cs.Upserts...)
	sort.Slice(ups, func(i, j int) bool { return ups[i].Path < ups[j].Path })
	wire := make([]wireNode, 0, len(ups))
	for _, c := range ups {
		if c.Node == nil {
			return nil, fmt.Errorf("%w: changeset upsert %s has no node", ErrBadPath, c.Path)
		}
		wire = append(wire, wireNode{
			Path: c.Path, Kind: int(c.Node.Kind), Mode: c.Node.Mode,
			UID: c.Node.UID, GID: c.Node.GID, Data: c.Node.Data, Target: c.Node.Target,
		})
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint64(len(head)))
	buf.Write(head)
	binary.Write(&buf, binary.BigEndian, uint64(len(body)))
	buf.Write(body)
	return buf.Bytes(), nil
}

// UnmarshalChangeset decodes Marshal's output.
func UnmarshalChangeset(data []byte) (*Changeset, error) {
	rest := data
	readChunk := func() ([]byte, error) {
		if len(rest) < 8 {
			return nil, fmt.Errorf("vfs: truncated changeset")
		}
		n := binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
		if uint64(len(rest)) < n {
			return nil, fmt.Errorf("vfs: truncated changeset")
		}
		chunk := rest[:n]
		rest = rest[n:]
		return chunk, nil
	}
	head, err := readChunk()
	if err != nil {
		return nil, err
	}
	body, err := readChunk()
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("vfs: %d trailing changeset bytes", len(rest))
	}
	var hdr changesetHeader
	if err := json.Unmarshal(head, &hdr); err != nil {
		return nil, fmt.Errorf("vfs: bad changeset header: %w", err)
	}
	var wire []wireNode
	if err := json.Unmarshal(body, &wire); err != nil {
		return nil, fmt.Errorf("vfs: bad changeset body: %w", err)
	}
	cs := &Changeset{Deleted: hdr.Deleted}
	for _, w := range wire {
		cp, err := Clean(w.Path)
		if err != nil {
			return nil, fmt.Errorf("vfs: bad changeset path %q: %w", w.Path, err)
		}
		k := NodeKind(w.Kind)
		if k != KindDir && k != KindFile && k != KindSymlink {
			return nil, fmt.Errorf("vfs: bad changeset node kind %d for %s", w.Kind, cp)
		}
		cs.Upserts = append(cs.Upserts, Change{Path: cp, Node: &Node{
			Kind: k, Mode: w.Mode, UID: w.UID, GID: w.GID, Data: w.Data, Target: w.Target,
		}})
	}
	for _, d := range cs.Deleted {
		if _, err := Clean(d); err != nil {
			return nil, fmt.Errorf("vfs: bad changeset whiteout %q: %w", d, err)
		}
	}
	return cs, nil
}

// HashSubtree returns a deterministic sha256 fingerprint of the node at p
// and everything beneath it, keyed by path relative to p, so identical
// subtrees rooted at different paths hash identically. Used by the staged
// build cache to key %files stages on the actual source content.
func (fs *FS) HashSubtree(p string) (string, error) {
	rp, err := fs.resolve(p, true)
	if err != nil {
		return "", err
	}
	if _, ok := fs.nodes[rp]; !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, rp)
	}
	subpaths := []string{rp}
	prefix := rp + "/"
	if rp == "/" {
		prefix = "/"
	}
	for other := range fs.nodes {
		if other != rp && strings.HasPrefix(other, prefix) {
			subpaths = append(subpaths, other)
		}
	}
	sort.Strings(subpaths)
	h := sha256.New()
	for _, sp := range subpaths {
		n := fs.nodes[sp]
		rel := strings.TrimPrefix(sp, rp)
		fmt.Fprintf(h, "%s\x00%d:%o:%d:%d\x00%s\x00%d\x00", rel, n.Kind, n.Mode, n.UID, n.GID, n.Target, len(n.Data))
		h.Write(n.Data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
