package vfs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustDiffFS(t *testing.T) (*FS, *FS) {
	t.Helper()
	parent := New()
	if err := parent.MkdirAll("/opt/tool", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteFile("/opt/tool/keep", []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteFile("/opt/tool/edit", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteFile("/opt/tool/gone", []byte("gone"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parent.Symlink("keep", "/opt/tool/link"); err != nil {
		t.Fatal(err)
	}
	child := parent.Clone()
	if err := child.WriteFile("/opt/tool/edit", []byte("new"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := child.Remove("/opt/tool/gone"); err != nil {
		t.Fatal(err)
	}
	if err := child.MkdirAll("/var/log", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := child.WriteFile("/var/log/build", []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	return parent, child
}

func TestDiffApplyRoundTrip(t *testing.T) {
	parent, child := mustDiffFS(t)
	cs := Diff(parent, child)
	if cs.Empty() {
		t.Fatal("expected a non-empty changeset")
	}
	got := parent.Clone()
	if err := got.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if !Equal(got, child) {
		t.Fatal("Apply(parent, Diff(parent, child)) != child")
	}
	// The parent must be untouched by both Diff and Apply-on-a-clone.
	if Equal(parent, child) {
		t.Fatal("parent was mutated")
	}
}

func TestDiffIsCanonicalAndMinimal(t *testing.T) {
	parent, child := mustDiffFS(t)
	cs := Diff(parent, child)
	wantDeleted := []string{"/opt/tool/gone"}
	if !reflect.DeepEqual(cs.Deleted, wantDeleted) {
		t.Fatalf("Deleted = %v, want %v", cs.Deleted, wantDeleted)
	}
	var paths []string
	for _, c := range cs.Upserts {
		paths = append(paths, c.Path)
	}
	want := []string{"/opt/tool/edit", "/var", "/var/log", "/var/log/build"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("Upsert paths = %v, want %v", paths, want)
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	parent, _ := mustDiffFS(t)
	cs := Diff(parent, parent.Clone())
	if !cs.Empty() {
		t.Fatalf("diff of identical filesystems not empty: %+v", cs)
	}
	enc, err := cs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := (&Changeset{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("empty changesets encode differently")
	}
}

func TestChangesetMarshalRoundTrip(t *testing.T) {
	parent, child := mustDiffFS(t)
	cs := Diff(parent, child)
	enc, err := cs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalChangeset(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := parent.Clone()
	if err := got.Apply(dec); err != nil {
		t.Fatal(err)
	}
	if !Equal(got, child) {
		t.Fatal("decoded changeset does not reproduce child")
	}
	// Re-encoding the decoded changeset is byte-identical: the encoding
	// is canonical, which is what makes layer digests content addresses.
	enc2, err := dec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("changeset encoding is not canonical")
	}
}

func TestChangesetPreservesSymlinkAttributes(t *testing.T) {
	parent := New()
	child := parent.Clone()
	if err := child.Symlink("/etc/target", "/link"); err != nil {
		t.Fatal(err)
	}
	// Give the symlink non-default ownership; tar-based encodings lose
	// symlink modes, the JSON encoding must not lose anything.
	n, err := child.Lstat("/link")
	if err != nil {
		t.Fatal(err)
	}
	n.UID, n.GID = 7, 8
	enc, err := Diff(parent, child).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalChangeset(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := parent.Clone()
	if err := got.Apply(dec); err != nil {
		t.Fatal(err)
	}
	if !Equal(got, child) {
		t.Fatal("symlink attributes lost in changeset round trip")
	}
}

func TestApplyRefusesRootDeletion(t *testing.T) {
	fs := New()
	err := fs.Apply(&Changeset{Deleted: []string{"/"}})
	if err == nil {
		t.Fatal("expected error deleting root via changeset")
	}
}

func TestUnmarshalChangesetRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("\x00\x00\x00\x00\x00\x00\x00\x02{}"),                                 // missing body frame
		[]byte("\x00\x00\x00\x00\x00\x00\x00\x02{}\x00\x00\x00\x00\x00\x00\x00\xff"), // body overruns
	}
	for i, c := range cases {
		if _, err := UnmarshalChangeset(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// randomFS builds a small random filesystem from a seed — shared shape
// with the quick.Check property below.
func randomFS(rnd *rand.Rand) *FS {
	fs := New()
	dirs := []string{"/", "/a", "/a/b", "/c"}
	for _, d := range dirs[1:] {
		fs.MkdirAll(d, uint32(0o700+rnd.Intn(0o77)))
	}
	for i := 0; i < rnd.Intn(8); i++ {
		d := dirs[rnd.Intn(len(dirs))]
		name := string(rune('f' + rnd.Intn(10)))
		data := make([]byte, rnd.Intn(64))
		rnd.Read(data)
		fs.WriteFile(d+"/"+name, data, uint32(0o600+rnd.Intn(0o177)))
	}
	if rnd.Intn(2) == 0 {
		fs.Symlink("/a", "/c/ln"+string(rune('0'+rnd.Intn(5))))
	}
	return fs
}

func TestQuickDiffApplyIdentity(t *testing.T) {
	prop := func(seedA, seedB int64) bool {
		parent := randomFS(rand.New(rand.NewSource(seedA)))
		child := randomFS(rand.New(rand.NewSource(seedB)))
		cs := Diff(parent, child)
		enc, err := cs.Marshal()
		if err != nil {
			return false
		}
		dec, err := UnmarshalChangeset(enc)
		if err != nil {
			return false
		}
		got := parent.Clone()
		if err := got.Apply(dec); err != nil {
			return false
		}
		return Equal(got, child)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashSubtree(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/sub/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/b/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b/sub/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	ha, err := fs.HashSubtree("/a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := fs.HashSubtree("/b")
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("identical subtrees at different roots must hash identically")
	}
	if err := fs.WriteFile("/b/sub/f", []byte("data2"), 0o644); err != nil {
		t.Fatal(err)
	}
	hb2, err := fs.HashSubtree("/b")
	if err != nil {
		t.Fatal(err)
	}
	if hb2 == hb {
		t.Fatal("content edit did not change subtree hash")
	}
	if _, err := fs.HashSubtree("/missing"); err == nil {
		t.Fatal("expected error hashing a missing subtree")
	}
}
