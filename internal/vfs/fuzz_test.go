package vfs

import "testing"

// FuzzUnmarshalTar checks the tar reader never panics on corrupt input and
// that valid round trips are lossless.
func FuzzUnmarshalTar(f *testing.F) {
	mk := func(build func(fs *FS)) []byte {
		fs := New()
		build(fs)
		blob, err := fs.MarshalTar()
		if err != nil {
			panic(err)
		}
		return blob
	}
	f.Add([]byte{})
	f.Add([]byte("not a tar"))
	f.Add(mk(func(fs *FS) {}))
	f.Add(mk(func(fs *FS) {
		fs.MkdirAll("/a/b", 0o750)
		fs.WriteFile("/a/b/c", []byte("data"), 0o640)
		fs.Symlink("c", "/a/b/link")
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs, err := UnmarshalTar(data)
		if err != nil {
			return
		}
		// Anything that unmarshals must re-marshal and round-trip.
		blob, err := fs.MarshalTar()
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		back, err := UnmarshalTar(blob)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !Equal(fs, back) {
			t.Fatal("canonical round trip not stable")
		}
	})
}
