package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMkdirAndWrite(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/etc/hosts", []byte("127.0.0.1 localhost\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/etc/hosts")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "127.0.0.1 localhost\n" {
		t.Errorf("content = %q", data)
	}
}

func TestMkdirMissingParent(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a/b", 0o755); err == nil {
		t.Error("Mkdir with missing parent succeeded")
	}
	if err := fs.MkdirAll("/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/a/b") {
		t.Error("MkdirAll did not create intermediate directory")
	}
}

func TestMkdirAllOverFileFails(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/x", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/x/y", 0o755); err == nil {
		t.Error("MkdirAll through a file succeeded")
	}
}

func TestWriteFileErrors(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/nodir/f", nil, 0o644); err == nil {
		t.Error("write into missing directory succeeded")
	}
	if err := fs.WriteFile("/", nil, 0o644); err == nil {
		t.Error("write over root succeeded")
	}
}

func TestAppendFile(t *testing.T) {
	fs := New()
	if err := fs.AppendFile("/log", []byte("a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/log", []byte("b"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/log")
	if string(data) != "ab" {
		t.Errorf("append result = %q", data)
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/opt/app-1.0", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/opt/app-1.0/bin", []byte("binary"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("app-1.0", "/opt/app"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/opt/app/bin")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "binary" {
		t.Errorf("through-symlink read = %q", data)
	}
	// Lstat must see the link itself.
	n, err := fs.Lstat("/opt/app")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindSymlink || n.Target != "app-1.0" {
		t.Errorf("Lstat = %+v", n)
	}
}

func TestAbsoluteSymlink(t *testing.T) {
	fs := New()
	fs.MkdirAll("/usr/lib/jvm/java-8", 0o755)
	fs.WriteFile("/usr/lib/jvm/java-8/javac", []byte("x"), 0o755)
	if err := fs.Symlink("/usr/lib/jvm/java-8", "/etc/alternatives"); err == nil {
		// /etc missing; must fail.
		t.Error("symlink into missing parent succeeded")
	}
	fs.Mkdir("/etc", 0o755)
	if err := fs.Symlink("/usr/lib/jvm/java-8", "/etc/jvm"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/etc/jvm/javac"); err != nil {
		t.Errorf("absolute symlink resolution failed: %v", err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New()
	if err := fs.Symlink("/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	_, err := fs.ReadFile("/a")
	if !errors.Is(err, ErrLinkLoop) {
		t.Errorf("loop error = %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/e", 0o755)
	fs.WriteFile("/d/e/f", nil, 0o644)
	if err := fs.Remove("/d/e"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("removing non-empty dir: %v", err)
	}
	if err := fs.Remove("/d/e/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d/e"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/e") {
		t.Error("directory still exists after Remove")
	}
	if err := fs.Remove("/"); err == nil {
		t.Error("removing root succeeded")
	}
}

func TestRemoveAll(t *testing.T) {
	fs := New()
	fs.MkdirAll("/tree/a/b", 0o755)
	fs.WriteFile("/tree/a/b/c", []byte("x"), 0o644)
	if err := fs.RemoveAll("/tree"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tree/a/b/c") || fs.Exists("/tree") {
		t.Error("RemoveAll left nodes behind")
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	fs.Mkdir("/d", 0o755)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		fs.WriteFile("/d/"+name, nil, 0o644)
	}
	fs.Mkdir("/d/sub", 0o755)
	fs.WriteFile("/d/sub/inner", nil, 0o644)
	names, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "sub", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := fs.ReadDir("/d/alpha"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file: %v", err)
	}
}

func TestRootReadDir(t *testing.T) {
	fs := New()
	fs.Mkdir("/bin", 0o755)
	fs.Mkdir("/usr", 0o755)
	names, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "bin" || names[1] != "usr" {
		t.Errorf("root listing = %v", names)
	}
}

func TestCloneIsDeep(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", []byte("orig"), 0o644)
	c := fs.Clone()
	c.WriteFile("/f", []byte("changed"), 0o644)
	data, _ := fs.ReadFile("/f")
	if string(data) != "orig" {
		t.Error("Clone shares data with original")
	}
	if !Equal(fs, fs.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestCopyInto(t *testing.T) {
	src := New()
	src.MkdirAll("/pkg/bin", 0o755)
	src.WriteFile("/pkg/bin/tool", []byte("#!run"), 0o755)
	src.WriteFile("/pkg/README", []byte("doc"), 0o644)
	dst := New()
	if err := src.CopyInto(dst, "/pkg", "/opt/pkg"); err != nil {
		t.Fatal(err)
	}
	data, err := dst.ReadFile("/opt/pkg/bin/tool")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "#!run" {
		t.Errorf("copied content = %q", data)
	}
	// Single file copy.
	if err := src.CopyInto(dst, "/pkg/README", "/docs/README"); err != nil {
		t.Fatal(err)
	}
	if !dst.Exists("/docs/README") {
		t.Error("single-file CopyInto failed")
	}
}

func TestTarRoundTrip(t *testing.T) {
	fs := New()
	fs.MkdirAll("/etc/app", 0o750)
	fs.WriteFile("/etc/app/conf", []byte("key=value\n"), 0o600)
	fs.Symlink("conf", "/etc/app/conf.link")
	fs.WriteFile("/bin", []byte{0, 1, 2, 255}, 0o755)
	blob, err := fs.MarshalTar()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTar(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(fs, back) {
		t.Error("tar round trip changed filesystem")
	}
}

func TestTarDeterminism(t *testing.T) {
	build := func(order []string) []byte {
		fs := New()
		fs.Mkdir("/d", 0o755)
		for _, n := range order {
			fs.WriteFile("/d/"+n, []byte(n), 0o644)
		}
		blob, err := fs.MarshalTar()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if !bytes.Equal(a, b) {
		t.Error("tar serialization depends on insertion order")
	}
}

func TestTarRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		fs := New()
		dirs := []string{"/", "/a", "/a/b", "/c"}
		fs.MkdirAll("/a/b", 0o755)
		fs.MkdirAll("/c", 0o755)
		for i := 0; i < 10; i++ {
			d := dirs[next(len(dirs))]
			name := string(rune('f' + i))
			content := make([]byte, next(64))
			for j := range content {
				content[j] = byte(next(256))
			}
			if err := fs.WriteFile(d+"/"+name, content, uint32(0o600+next(0o200))); err != nil {
				return false
			}
		}
		blob, err := fs.MarshalTar()
		if err != nil {
			return false
		}
		back, err := UnmarshalTar(blob)
		if err != nil {
			return false
		}
		return Equal(fs, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSizeAndTotalBytes(t *testing.T) {
	fs := New()
	fs.Mkdir("/d", 0o755)
	fs.WriteFile("/d/a", make([]byte, 100), 0o644)
	fs.WriteFile("/d/b", make([]byte, 23), 0o644)
	if fs.Size() != 4 { // root, /d, two files
		t.Errorf("Size = %d, want 4", fs.Size())
	}
	if fs.TotalBytes() != 123 {
		t.Errorf("TotalBytes = %d, want 123", fs.TotalBytes())
	}
}

func TestCleanPaths(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b", 0o755)
	fs.WriteFile("/a/b/f", []byte("x"), 0o644)
	for _, p := range []string{"/a//b/f", "/a/./b/f", "/a/b/../b/f", "a/b/f"} {
		if _, err := fs.ReadFile(p); err != nil {
			t.Errorf("ReadFile(%q): %v", p, err)
		}
	}
	if _, err := Clean(""); err == nil {
		t.Error("empty path accepted")
	}
}
