package robustness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

func TestTableIInvariants(t *testing.T) {
	if err := CheckTableI(); err != nil {
		t.Fatal(err)
	}
	a, err := TableI(MappingA)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check against the paper's table.
	if got := a[0]; len(got) != 5 || got[0] != 5 || got[4] != 20 {
		t.Errorf("Mapping A M1 = %v, want [5 9 12 17 20]", got)
	}
	if got := a[2]; len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Errorf("Mapping A M3 = %v, want [1 3 7]", got)
	}
	b, _ := TableI(MappingB)
	if got := b[0]; len(got) != 6 {
		t.Errorf("Mapping B M1 has %d apps, want 6", len(got))
	}
	if _, err := TableI("C"); err == nil {
		t.Error("unknown mapping accepted")
	}
}

func TestFormatTableI(t *testing.T) {
	s := FormatTableI()
	if !strings.Contains(s, "a5,a9,a12,a17,a20") {
		t.Errorf("Table I rendering missing M1/A row:\n%s", s)
	}
	if !strings.Contains(s, "a3,a4,a5,a17,a18,a20") {
		t.Errorf("Table I rendering missing M1/B row:\n%s", s)
	}
	if strings.Count(s, "\n") != 6 { // header + 5 machines
		t.Errorf("Table I has wrong row count:\n%s", s)
	}
}

func TestETCDeterministicAndPositive(t *testing.T) {
	a, b := NewStudy(), NewStudy()
	for i := 0; i < NumApps; i++ {
		for j := 0; j < NumMachines; j++ {
			if a.ETC[i][j] != b.ETC[i][j] {
				t.Fatalf("ETC not deterministic at (%d,%d)", i, j)
			}
			if a.ETC[i][j] <= 0 {
				t.Fatalf("ETC[%d][%d] = %g", i, j, a.ETC[i][j])
			}
		}
	}
}

func TestMachineModelStructure(t *testing.T) {
	s := NewStudy()
	m, err := s.MachineModel(MappingA, 2, false) // M3: a1, a3, a7
	if err != nil {
		t.Fatal(err)
	}
	if res := pepa.Check(m); res.Err() != nil {
		t.Fatal(res.Err())
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 apps -> 4 machine stages; x 2 availability states, minus the
	// unreachable/collapsed combinations. Expect (3 stages x 2 avail) +
	// done states.
	if ss.NumStates() < 6 || ss.NumStates() > 10 {
		t.Errorf("M3 state space = %d states", ss.NumStates())
	}
	// The exec actions of M3's apps must appear.
	for _, a := range []string{"exec_a1", "exec_a3", "exec_a7"} {
		found := false
		for _, at := range ss.ActionTypes {
			if at == a {
				found = true
			}
		}
		if !found {
			t.Errorf("action %s missing from M3 model", a)
		}
	}
}

func TestCyclicModelHasNoDeadlock(t *testing.T) {
	s := NewStudy()
	m, err := s.MachineModel(MappingA, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dl := ss.Deadlocks(); len(dl) != 0 {
		t.Errorf("cyclic model has deadlocks: %v", dl)
	}
	// Cyclic machine models admit a steady state.
	chain := ctmc.FromStateSpace(ss)
	pi, err := chain.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("steady state sums to %g", sum)
	}
}

func TestFinishingCDFShape(t *testing.T) {
	s := NewStudy()
	times := grid(0, 400, 40)
	cdf, err := s.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Probs[0] != 0 {
		t.Errorf("CDF(0) = %g", cdf.Probs[0])
	}
	for i := 1; i < len(cdf.Probs); i++ {
		if cdf.Probs[i] < cdf.Probs[i-1]-1e-9 {
			t.Errorf("CDF not monotone at %g", times[i])
		}
	}
	if last := cdf.Probs[len(cdf.Probs)-1]; last < 0.95 {
		t.Errorf("CDF at horizon = %g, want near 1", last)
	}
}

func TestMappingBSlowerForM1(t *testing.T) {
	// Mapping B assigns 6 applications to M1 versus 5 under Mapping A, so
	// its finishing-time CDF should lie to the right (the Fig 3 vs Fig 4
	// shape criterion).
	s := NewStudy()
	times := grid(0, 600, 60)
	a, err := s.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.FinishingCDF(MappingB, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	medA := a.Quantile(0.5)
	medB := b.Quantile(0.5)
	if !(medA < medB) {
		t.Errorf("median finishing times: A=%g, B=%g; expected A faster on M1", medA, medB)
	}
}

func TestAvailabilitySlowsFinishing(t *testing.T) {
	// Increasing the failure rate must shift the CDF right.
	fast := NewStudy()
	slow := NewStudy()
	slow.FailRate = 1.0
	slow.RepairRate = 0.1
	times := grid(0, 800, 80)
	cf, err := fast.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := slow.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	if !(cs.Quantile(0.5) > cf.Quantile(0.5)) {
		t.Errorf("failures did not slow machine: %g vs %g", cs.Quantile(0.5), cf.Quantile(0.5))
	}
}

func TestMakespanBelowSlowestMachine(t *testing.T) {
	s := NewStudy()
	times := grid(0, 800, 40)
	mk, err := s.MakespanCDF(MappingA, times)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan CDF is a product of machine CDFs, so it is bounded above by
	// each machine's CDF.
	for j := 0; j < NumMachines; j++ {
		mc, err := s.FinishingCDF(MappingA, j, times)
		if err != nil {
			t.Fatal(err)
		}
		for i := range times {
			if mk.Probs[i] > mc.Probs[i]+1e-9 {
				t.Fatalf("makespan CDF above machine %d CDF at t=%g", j+1, times[i])
			}
		}
	}
	for i := 1; i < len(mk.Probs); i++ {
		if mk.Probs[i] < mk.Probs[i-1]-1e-9 {
			t.Errorf("makespan CDF not monotone at %g", times[i])
		}
	}
}

func TestRobustnessMetric(t *testing.T) {
	s := NewStudy()
	r, err := s.Robustness(MappingA, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > 1 {
		t.Errorf("robustness = %g", r)
	}
	// A hopeless deadline gives near-zero robustness.
	r0, err := s.Robustness(MappingA, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r0 > 0.01 {
		t.Errorf("robustness at tau=1 = %g, want ~0", r0)
	}
	if !(r > r0) {
		t.Errorf("robustness not increasing in deadline: %g vs %g", r, r0)
	}
}

func TestActivityDiagramOutputs(t *testing.T) {
	s := NewStudy()
	dot, err := s.ActivityDiagram(MappingA, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph activity", "exec_a1", "exec_a3", "exec_a7", "machine M3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	txt, err := s.ActivityText(MappingA, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "activities:") || !strings.Contains(txt, "exec_a7") {
		t.Errorf("text diagram incomplete:\n%s", txt)
	}
}

func TestPEPASourceRoundTrips(t *testing.T) {
	s := NewStudy()
	src, err := s.PEPASource(MappingA, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pepa.Parse(src)
	if err != nil {
		t.Fatalf("generated PEPA source does not reparse: %v\n%s", err, src)
	}
	if res := pepa.Check(m); res.Err() != nil {
		t.Fatalf("generated source fails checks: %v", res.Err())
	}
	if _, err := derive.Explore(m, derive.Options{}); err != nil {
		t.Fatalf("generated source does not derive: %v", err)
	}
}

func TestMachineModelBadInputs(t *testing.T) {
	s := NewStudy()
	if _, err := s.MachineModel("Z", 0, false); err == nil {
		t.Error("unknown mapping accepted")
	}
	if _, err := s.MachineModel(MappingA, 9, false); err == nil {
		t.Error("machine index out of range accepted")
	}
}

func grid(t0, t1 float64, n int) []float64 {
	ts := make([]float64, n+1)
	for i := range ts {
		ts[i] = t0 + (t1-t0)*float64(i)/float64(n)
	}
	return ts
}

func TestFinishingCDFWorkersBitIdentical(t *testing.T) {
	// The Table I machine models are the study's hot solves; Workers must
	// never change an output bit (the parallel kernel preserves the exact
	// floating-point summation order).
	times := grid(0, 120, 40)
	for _, mapping := range []string{MappingA, MappingB} {
		seq := NewStudy()
		par4 := NewStudy()
		par4.Workers = 4
		for j := 0; j < NumMachines; j++ {
			a, err := seq.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatalf("mapping %s machine %d: %v", mapping, j+1, err)
			}
			b, err := par4.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatalf("mapping %s machine %d (workers=4): %v", mapping, j+1, err)
			}
			for i := range a.Probs {
				if a.Probs[i] != b.Probs[i] {
					t.Fatalf("mapping %s machine %d t=%g: sequential %v != workers-4 %v",
						mapping, j+1, times[i], a.Probs[i], b.Probs[i])
				}
			}
		}
	}
}
