package robustness

import (
	"testing"
)

func TestPerturbedDeterministicAndBounded(t *testing.T) {
	s := NewStudy()
	a, err := s.Perturbed(0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Perturbed(0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumApps; i++ {
		for j := 0; j < NumMachines; j++ {
			if a.ETC[i][j] != b.ETC[i][j] {
				t.Fatalf("perturbation not deterministic at (%d,%d)", i, j)
			}
			ratio := a.ETC[i][j] / s.ETC[i][j]
			if ratio < 0.7-1e-12 || ratio > 1.3+1e-12 {
				t.Errorf("perturbation ratio %g outside [0.7, 1.3]", ratio)
			}
		}
	}
	// The original study is untouched.
	fresh := NewStudy()
	for i := 0; i < NumApps; i++ {
		for j := 0; j < NumMachines; j++ {
			if s.ETC[i][j] != fresh.ETC[i][j] {
				t.Fatal("Perturbed mutated the original study")
			}
		}
	}
}

func TestPerturbedValidation(t *testing.T) {
	s := NewStudy()
	if _, err := s.Perturbed(-0.1, 1); err == nil {
		t.Error("negative spread accepted")
	}
	if _, err := s.Perturbed(1.0, 1); err == nil {
		t.Error("spread 1.0 accepted (would allow zero ETC)")
	}
}

func TestRobustnessUnderPerturbation(t *testing.T) {
	s := NewStudy()
	rep, err := s.RobustnessUnderPerturbation(MappingA, 300, 0.2, 6, 7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 6 {
		t.Fatalf("values = %d", len(rep.Values))
	}
	if !(rep.Worst <= rep.Mean && rep.Mean <= rep.Best) {
		t.Errorf("summary out of order: worst=%g mean=%g best=%g", rep.Worst, rep.Mean, rep.Best)
	}
	for i := 1; i < len(rep.Values); i++ {
		if rep.Values[i] < rep.Values[i-1] {
			t.Error("values not sorted")
		}
	}
	// Perturbations straddle the nominal value (both slower and faster
	// draws occur for a symmetric spread with enough samples).
	if rep.Worst > rep.Nominal || rep.Best < rep.Nominal {
		t.Logf("note: all perturbations fell on one side of nominal (worst=%g nominal=%g best=%g) — possible but unusual",
			rep.Worst, rep.Nominal, rep.Best)
	}
	if rep.Worst < 0 || rep.Best > 1 {
		t.Errorf("probabilities out of range: %g..%g", rep.Worst, rep.Best)
	}
}

func TestLargerSpreadWidensWorstCase(t *testing.T) {
	s := NewStudy()
	small, err := s.RobustnessUnderPerturbation(MappingA, 300, 0.05, 5, 11, 25)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.RobustnessUnderPerturbation(MappingA, 300, 0.4, 5, 11, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !(large.Worst <= small.Worst) {
		t.Errorf("worst case did not degrade with spread: %g (0.4) vs %g (0.05)", large.Worst, small.Worst)
	}
}

func TestCompareMappings(t *testing.T) {
	s := NewStudy()
	a, b, winner, err := s.CompareMappings(300, 0.2, 4, 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if winner != MappingA && winner != MappingB {
		t.Errorf("winner = %q", winner)
	}
	wantWinner := MappingA
	if b.Worst > a.Worst {
		wantWinner = MappingB
	}
	if winner != wantWinner {
		t.Errorf("winner = %s, but worst cases are A=%g B=%g", winner, a.Worst, b.Worst)
	}
}
