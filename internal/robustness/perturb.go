package robustness

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/rng"
)

// This file implements the §IV extension: "model resource allocations in
// parallel computing systems and obtain an analysis of the robustness of
// the resource allocations ... as they are subjected to unpredictable
// variations in application and systemic characteristics." ETC entries are
// perturbed multiplicatively and the deadline-meeting probability is
// re-evaluated; the allocation's perturbation robustness is the worst case
// over the sampled perturbations (the FePIA-style robustness radius of the
// paper's refs [2][4], in probabilistic form).

// PerturbationReport summarizes robustness under ETC uncertainty.
type PerturbationReport struct {
	Mapping string
	Tau     float64 // deadline
	// Nominal is P(makespan <= tau) with the unperturbed ETC.
	Nominal float64
	// Values are the per-sample probabilities, sorted ascending.
	Values []float64
	// Worst, Mean, Best summarize Values.
	Worst, Mean, Best float64
	// Spread is the perturbation magnitude used (e.g. 0.3 = +/-30%).
	Spread float64
}

// Perturbed returns a copy of the study with every ETC entry scaled by an
// independent uniform factor in [1-spread, 1+spread] drawn from the seeded
// stream.
func (s *Study) Perturbed(spread float64, seed uint64) (*Study, error) {
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("robustness: spread must be in [0,1), got %g", spread)
	}
	r := rng.New(seed)
	// Field-wise copy: Study carries a mutex, and a perturbed copy must not
	// share the parent's checkpoint file (its ETC differs, so the two would
	// overwrite each other's cells under different fingerprints). The
	// chain-family cache IS shared: perturbed models differ only in rate
	// values, so every copy re-rates the parent's derived prototypes
	// instead of re-deriving (see ctmc.ChainFamily).
	c := &Study{
		FailRate:   s.FailRate,
		RepairRate: s.RepairRate,
		Seed:       s.Seed,
		Obs:        s.Obs,
		Workers:    s.Workers,
		NoFamily:   s.NoFamily,
		families:   s.familySetRef(),
	}
	for i := 0; i < NumApps; i++ {
		for j := 0; j < NumMachines; j++ {
			factor := 1 - spread + 2*spread*r.Float64()
			c.ETC[i][j] = s.ETC[i][j] * factor
		}
	}
	return c, nil
}

// RobustnessUnderPerturbation evaluates P(makespan <= tau) for the nominal
// ETC and for n independently perturbed ETCs.
func (s *Study) RobustnessUnderPerturbation(mapping string, tau, spread float64, n int, seed uint64, samples int) (*PerturbationReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("robustness: need at least one perturbation sample")
	}
	if samples <= 0 {
		samples = 40
	}
	nominal, err := s.Robustness(mapping, tau, samples)
	if err != nil {
		return nil, err
	}
	rep := &PerturbationReport{Mapping: mapping, Tau: tau, Nominal: nominal, Spread: spread}
	// Each perturbation sample is an independent study; evaluate them in
	// parallel and collect by index (Values is sorted afterwards anyway).
	values, err := par.Map(n, 0, func(k int) (float64, error) {
		p, err := s.Perturbed(spread, seed+uint64(k)*0x9E3779B97F4A7C15)
		if err != nil {
			return 0, err
		}
		v, err := p.Robustness(mapping, tau, samples)
		if err != nil {
			return 0, fmt.Errorf("robustness: perturbation %d: %w", k, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Values = values
	sort.Float64s(rep.Values)
	rep.Worst = rep.Values[0]
	rep.Best = rep.Values[len(rep.Values)-1]
	var sum float64
	for _, v := range rep.Values {
		sum += v
	}
	rep.Mean = sum / float64(len(rep.Values))
	return rep, nil
}

// CompareMappings runs the perturbation analysis for both mappings and
// reports which is more robust in the worst case — the study's decision
// output ("which static allocation should we deploy?").
func (s *Study) CompareMappings(tau, spread float64, n int, seed uint64, samples int) (a, b *PerturbationReport, winner string, err error) {
	a, err = s.RobustnessUnderPerturbation(MappingA, tau, spread, n, seed, samples)
	if err != nil {
		return nil, nil, "", err
	}
	b, err = s.RobustnessUnderPerturbation(MappingB, tau, spread, n, seed, samples)
	if err != nil {
		return nil, nil, "", err
	}
	winner = MappingA
	if b.Worst > a.Worst {
		winner = MappingB
	}
	return a, b, winner, nil
}
