// Package robustness replicates the resource-allocation robustness study
// of Srivastava & Banicescu (ISPDC'18, the paper's ref [5]) that §III of
// the containerization paper uses to validate its PEPA container: 20
// parallel applications mapped onto 5 heterogeneous machines under two
// static mappings (Table I), with machine availability varying over time.
//
// Each machine is modelled as a PEPA component that executes its assigned
// applications in sequence while cooperating with an availability component
// that alternates between up and down states; the finishing time of a
// machine is the first-passage time to its "all applications done" state
// (Figs 3 and 4 plot its CDF for machine M1 under Mapping A and B).
//
// The original ETC (expected time to compute) matrix is not published; we
// generate a deterministic synthetic ETC with the usual consistent-range
// construction (application workload x machine speed), seeded so every run
// of this package reproduces identical numbers. DESIGN.md records this
// substitution.
package robustness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/ctmc"
	"repro/internal/diagram"
	"repro/internal/numeric/sparse"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
	"repro/internal/rng"
	"repro/internal/runctx"
)

// Counts from the study.
const (
	NumApps     = 20
	NumMachines = 5
)

// Mapping names.
const (
	MappingA = "A"
	MappingB = "B"
)

// mappings is Table I of the paper: 1-based application indices per
// machine.
var mappings = map[string][NumMachines][]int{
	MappingA: {
		{5, 9, 12, 17, 20},
		{6, 16},
		{1, 3, 7},
		{2, 4, 10, 13, 15, 19},
		{8, 11, 14, 18},
	},
	MappingB: {
		{3, 4, 5, 17, 18, 20},
		{2, 11, 14, 19},
		{1, 7, 13},
		{9, 12, 15},
		{6, 8, 10, 16},
	},
}

// TableI returns the application-to-machine mapping of the paper's Table I
// for mapping "A" or "B". Machine index is 0-based (M1 == 0); application
// ids are 1-based, matching the paper's a_i notation.
func TableI(mapping string) ([NumMachines][]int, error) {
	m, ok := mappings[mapping]
	if !ok {
		return m, fmt.Errorf("robustness: unknown mapping %q (want A or B)", mapping)
	}
	return m, nil
}

// Study holds the replication's parameters.
type Study struct {
	// ETC[i][j] is the expected time to compute application i+1 on
	// machine j (hours of machine time at full availability).
	ETC [NumApps][NumMachines]float64
	// FailRate and RepairRate parameterize each machine's availability
	// component (exponential up/down alternation).
	FailRate   float64
	RepairRate float64
	// Seed used to generate the synthetic ETC matrix.
	Seed uint64
	// Obs, when non-nil, is attached to every CTMC the study solves, so
	// passage-time runs report solver iterations and truncation depths.
	Obs *obs.Registry
	// Workers bounds the goroutines the study uses: the per-machine
	// fan-out of MakespanCDF and each CTMC solve's matrix kernels (0
	// means GOMAXPROCS, 1 means sequential). Results are bit-identical
	// for any value; see docs/PERFORMANCE.md.
	Workers int
	// Checkpoint, when non-empty, names a file where every finished
	// per-machine passage CDF is persisted (atomically, via
	// internal/fsatomic) as soon as it is computed. A killed or canceled
	// study re-run with the same parameters and checkpoint path skips
	// the machines already on disk and produces byte-identical output.
	// The file is keyed by a fingerprint of the study parameters and the
	// time grid; a mismatch is treated as a cache miss, never an error.
	Checkpoint string
	// NoFamily disables the derive-once chain-family cache: every
	// per-machine solve re-derives its state space and reassembles its
	// generator from scratch. Results are byte-identical either way (the
	// family path is exact; see ctmc.ChainFamily) — this knob exists for
	// A/B benchmarks and as an escape hatch.
	NoFamily bool

	ckMu sync.Mutex
	// hookCell, when non-nil, runs after each per-machine cell has been
	// computed and checkpointed — the test seam that cancels a study at
	// a deterministic point mid-flight.
	hookCell func(mapping string, j int)

	// poolMu guards pool, the worker pool shared by every per-machine
	// chain the study solves (Workers > 1 only). One set of pinned
	// goroutines serves the whole 30×30 sweep instead of one pool per
	// machine chain; Close releases it.
	poolMu sync.Mutex
	pool   *sparse.Pool

	// famMu guards families, the per-machine chain-family cache. The
	// pointer is shared into every Perturbed copy, so an entire
	// perturbation sweep derives each machine's state space exactly once
	// and re-rates it per sample (see ctmc.ChainFamily).
	famMu    sync.Mutex
	families *familySet
}

// familySet memoizes one chain family (and its passage-target set) per
// machine cell, shared across a study and all its perturbed copies.
type familySet struct {
	mu sync.Mutex
	m  map[string]*familyEntry
}

type familyEntry struct {
	mu      sync.Mutex
	done    bool
	fam     *ctmc.ChainFamily
	targets []int
	err     error
}

func (fs *familySet) entry(key string) *familyEntry {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e := fs.m[key]
	if e == nil {
		e = &familyEntry{}
		fs.m[key] = e
	}
	return e
}

// get memoizes a successful build. Failures — including cancellations,
// which must not poison the cell for later runs — are returned but not
// cached, so the next caller retries.
func (e *familyEntry) get(build func() (*ctmc.ChainFamily, []int, error)) (*ctmc.ChainFamily, []int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.fam, e.targets, e.err = build()
		e.done = e.err == nil
	}
	return e.fam, e.targets, e.err
}

// familySetRef lazily creates the shared family cache; Perturbed copies
// inherit the same pointer.
func (s *Study) familySetRef() *familySet {
	s.famMu.Lock()
	defer s.famMu.Unlock()
	if s.families == nil {
		s.families = &familySet{m: map[string]*familyEntry{}}
	}
	return s.families
}

// solvePool lazily creates the study-wide worker pool the per-machine
// chains dispatch their parallel kernels on. Nil for Workers <= 1 — the
// chains then run their sequential (bit-identical) paths.
func (s *Study) solvePool() *sparse.Pool {
	if s.Workers <= 1 {
		return nil
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.pool == nil {
		s.pool = sparse.NewPool(s.Workers - 1)
	}
	return s.pool
}

// Close shuts down the study's shared worker pool and waits for its
// goroutines to exit. The study stays usable afterwards — the next
// parallel solve lazily creates a fresh pool. Safe to call multiple
// times and on a study that never solved anything.
func (s *Study) Close() {
	s.poolMu.Lock()
	p := s.pool
	s.pool = nil
	s.poolMu.Unlock()
	p.Close()
}

// NewStudy constructs the study with the deterministic synthetic ETC and
// the availability parameters used throughout the reproduction.
func NewStudy() *Study {
	s := &Study{FailRate: 0.05, RepairRate: 0.5, Seed: 2019}
	r := rng.New(s.Seed)
	// Consistent ETC: workload_i in [8, 40] task-hours, speed_j in
	// [0.6, 1.8]; ETC = workload/speed * (1 +/- 10% noise).
	var workload [NumApps]float64
	var speed [NumMachines]float64
	for i := range workload {
		workload[i] = 8 + 32*r.Float64()
	}
	for j := range speed {
		speed[j] = 0.6 + 1.2*r.Float64()
	}
	for i := range workload {
		for j := range speed {
			noise := 0.9 + 0.2*r.Float64()
			s.ETC[i][j] = workload[i] / speed[j] * noise
		}
	}
	return s
}

// Rate returns the execution rate of application app (1-based) on machine
// j (0-based): the reciprocal of its ETC entry.
func (s *Study) Rate(app, j int) float64 {
	return 1 / s.ETC[app-1][j]
}

// execAction names the PEPA action for executing an application.
func execAction(app int) string { return fmt.Sprintf("exec_a%d", app) }

// MachineModel builds the PEPA model of machine j under the mapping:
//
//	M_j_0 = (exec_ai1, r_i1j).M_j_1;  ...  M_j_k = Done (absorbing)
//	Avail = (exec_ai1, T).Avail + ... + (fail, f).Down;
//	Down  = (repair, rp).Avail;
//	M_j_0 <exec_*> Avail
//
// With cyclic true the final derivative loops back to the start through a
// "reset" activity instead of absorbing — the form whose activity diagram
// Fig 2 shows.
func (s *Study) MachineModel(mapping string, j int, cyclic bool) (*pepa.Model, error) {
	tab, err := TableI(mapping)
	if err != nil {
		return nil, err
	}
	if j < 0 || j >= NumMachines {
		return nil, fmt.Errorf("robustness: machine index %d out of range", j)
	}
	apps := tab[j]
	m := pepa.NewModel()
	m.DefineRate("fail", s.FailRate)
	m.DefineRate("repair", s.RepairRate)

	stateName := func(k int) string {
		if k == len(apps) {
			if cyclic {
				return fmt.Sprintf("M%d_0", j+1)
			}
			return fmt.Sprintf("Done%d", j+1)
		}
		return fmt.Sprintf("M%d_%d", j+1, k)
	}
	for k, app := range apps {
		rateName := fmt.Sprintf("r_a%d", app)
		m.DefineRate(rateName, s.Rate(app, j))
		var body pepa.Process = &pepa.Prefix{
			Action: execAction(app),
			Rate:   &pepa.RateRef{Name: rateName},
			Cont:   &pepa.Const{Name: stateName(k + 1)},
		}
		m.Define(stateName(k), body)
	}
	if !cyclic {
		// Absorbing completion state: a self-looping "finished" marker is
		// not needed; a constant defined as a never-enabled choice would be
		// illegal, so Done is a process with a single very slow self loop
		// on a distinct action, which we exclude from the passage target
		// by making it absorbing in the CTMC transform instead. Simplest
		// sound encoding: Done = (done_j, done_rate).Done with the passage
		// analysis targeting entry into Done.
		m.DefineRate("done_rate", 1e-9)
		m.Define(stateName(len(apps)), &pepa.Prefix{
			Action: fmt.Sprintf("done%d", j+1),
			Rate:   &pepa.RateRef{Name: "done_rate"},
			Cont:   &pepa.Const{Name: stateName(len(apps))},
		})
	}

	// Availability component offering every exec action passively.
	var availBody pepa.Process = &pepa.Prefix{
		Action: "fail",
		Rate:   &pepa.RateRef{Name: "fail"},
		Cont:   &pepa.Const{Name: "Down"},
	}
	coopSet := make([]string, 0, len(apps))
	for _, app := range apps {
		availBody = &pepa.Choice{
			Left: &pepa.Prefix{
				Action: execAction(app),
				Rate:   &pepa.RatePassive{},
				Cont:   &pepa.Const{Name: "Avail"},
			},
			Right: availBody,
		}
		coopSet = append(coopSet, execAction(app))
	}
	m.Define("Avail", availBody)
	m.Define("Down", &pepa.Prefix{
		Action: "repair",
		Rate:   &pepa.RateRef{Name: "repair"},
		Cont:   &pepa.Const{Name: "Avail"},
	})
	m.System = pepa.NewCoop(&pepa.Const{Name: stateName(0)}, &pepa.Const{Name: "Avail"}, coopSet)
	if res := pepa.Check(m); res.Err() != nil {
		return nil, fmt.Errorf("robustness: generated model fails checks: %w", res.Err())
	}
	return m, nil
}

// studyJob is the checkpoint job name of per-machine study cells.
const studyJob = "robustness.study"

// studyPayload is the checkpoint payload: finished per-machine CDF
// probability rows keyed by "<mapping>/<machine index>".
type studyPayload struct {
	Cells map[string][]float64 `json:"cells"`
}

// fingerprint derives the checkpoint fingerprint from every parameter
// that determines a cell's numbers: the availability rates, the seed,
// the full ETC matrix, and the exact time grid (all hashed at full
// float64 precision). Workers is deliberately excluded — results are
// bit-identical for any worker count.
func (s *Study) fingerprint(times []float64) string {
	var etc strings.Builder
	for i := range s.ETC {
		for j := range s.ETC[i] {
			fmt.Fprintf(&etc, "%x,", math.Float64bits(s.ETC[i][j]))
		}
	}
	var grid strings.Builder
	for _, t := range times {
		fmt.Fprintf(&grid, "%x,", math.Float64bits(t))
	}
	return checkpoint.Fingerprint(
		studyJob,
		fmt.Sprintf("fail=%x repair=%x seed=%d", math.Float64bits(s.FailRate), math.Float64bits(s.RepairRate), s.Seed),
		etc.String(),
		grid.String(),
	)
}

func (s *Study) ckFile(times []float64) *checkpoint.File {
	return &checkpoint.File{Path: s.Checkpoint, Job: studyJob, Fingerprint: s.fingerprint(times), Obs: s.Obs}
}

// loadCell returns the checkpointed probability row for a cell key, if
// the study has a checkpoint path and the file holds a matching run.
func (s *Study) loadCell(times []float64, key string) ([]float64, bool, error) {
	if s.Checkpoint == "" {
		return nil, false, nil
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	var pay studyPayload
	ok, err := s.ckFile(times).Load(&pay)
	if err != nil || !ok {
		return nil, false, err
	}
	probs, ok := pay.Cells[key]
	return probs, ok, nil
}

// saveCell merges one finished cell into the checkpoint file. The
// read-merge-write cycle is serialized by ckMu, so parallel machine
// workers never lose each other's cells.
func (s *Study) saveCell(times []float64, key string, probs []float64) error {
	if s.Checkpoint == "" {
		return nil
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	ck := s.ckFile(times)
	var pay studyPayload
	if _, err := ck.Load(&pay); err != nil {
		return err
	}
	if pay.Cells == nil {
		pay.Cells = map[string][]float64{}
	}
	pay.Cells[key] = probs
	return ck.Save(&pay)
}

// FinishingCDF computes the CDF of the finishing time of machine j under
// the mapping on the given time grid — the quantity plotted in Figs 3/4.
func (s *Study) FinishingCDF(mapping string, j int, times []float64) (*ctmc.PassageCDF, error) {
	return s.FinishingCDFCtx(context.Background(), mapping, j, times)
}

// FinishingCDFCtx is FinishingCDF with cooperative cancellation (polled
// inside the state-space BFS and every passage-time solve) and, when
// Study.Checkpoint is set, crash-safe per-machine persistence: a cell
// already on disk for identical parameters is returned without solving,
// byte-identical to a fresh computation.
func (s *Study) FinishingCDFCtx(ctx context.Context, mapping string, j int, times []float64) (*ctmc.PassageCDF, error) {
	key := fmt.Sprintf("%s/%d", mapping, j)
	if probs, ok, err := s.loadCell(times, key); err != nil {
		return nil, err
	} else if ok {
		return &ctmc.PassageCDF{Times: append([]float64(nil), times...), Probs: probs}, nil
	}
	chain, targets, err := s.machineChain(ctx, mapping, j)
	if err != nil {
		return nil, err
	}
	cdf, err := chain.FirstPassageCDFCtx(ctx, chain.PointMass(0), targets, times, 1e-10)
	if err != nil {
		return nil, err
	}
	if err := s.saveCell(times, key, cdf.Probs); err != nil {
		return nil, err
	}
	return cdf, nil
}

// machineChain returns the ready-to-solve chain and passage-target set of
// machine j: family-backed unless NoFamily is set — the machine's state
// space is derived once per cell (shared across the study and every
// Perturbed copy) and each request re-rates it with an O(nnz) gather —
// falling back to a fresh derivation when the family path cannot serve
// the request. Both paths yield byte-identical chains.
func (s *Study) machineChain(ctx context.Context, mapping string, j int) (*ctmc.Chain, []int, error) {
	if !s.NoFamily {
		chain, targets, err := s.familyChain(ctx, mapping, j)
		if err == nil {
			s.Obs.Inc("robustness_family_total", obs.L("outcome", "reuse"))
			return chain, targets, nil
		}
		if ctx.Err() != nil {
			// A canceled build is not a family deficiency; the fresh path
			// would be canceled identically.
			return nil, nil, err
		}
		s.Obs.Inc("robustness_family_total", obs.L("outcome", "fallback"))
	}
	return s.freshChain(ctx, mapping, j)
}

// familyChain serves machine j through the shared chain-family cache.
func (s *Study) familyChain(ctx context.Context, mapping string, j int) (*ctmc.Chain, []int, error) {
	key := fmt.Sprintf("%s/%d", mapping, j)
	fam, targets, err := s.familySetRef().entry(key).get(func() (*ctmc.ChainFamily, []int, error) {
		m, err := s.MachineModel(mapping, j, false)
		if err != nil {
			return nil, nil, err
		}
		ss, err := derive.ExploreCtx(ctx, m, derive.Options{})
		if err != nil {
			return nil, nil, err
		}
		fam, err := ctmc.NewChainFamily(ss)
		if err != nil {
			return nil, nil, err
		}
		targets, err := completionTargets(ss, j)
		if err != nil {
			return nil, nil, err
		}
		return fam, targets, nil
	})
	if err != nil {
		return nil, nil, err
	}
	env, err := s.rateEnv(mapping, j)
	if err != nil {
		return nil, nil, err
	}
	chain, err := fam.ChainForRates(env)
	if err != nil {
		return nil, nil, err
	}
	s.configureChain(chain)
	return chain, targets, nil
}

// freshChain is the non-family path: derive this study's model and build
// the chain cold.
func (s *Study) freshChain(ctx context.Context, mapping string, j int) (*ctmc.Chain, []int, error) {
	m, err := s.MachineModel(mapping, j, false)
	if err != nil {
		return nil, nil, err
	}
	ss, err := derive.ExploreCtx(ctx, m, derive.Options{})
	if err != nil {
		return nil, nil, err
	}
	targets, err := completionTargets(ss, j)
	if err != nil {
		return nil, nil, err
	}
	chain := ctmc.FromStateSpace(ss)
	s.configureChain(chain)
	return chain, targets, nil
}

// completionTargets finds machine j's "all applications done" states —
// the passage target of Figs 3/4. State numbering is identical for every
// member of a machine's family (derivation is structure-driven), so the
// target set computed from the prototype is valid for all of them.
func completionTargets(ss *derive.StateSpace, j int) ([]int, error) {
	done := fmt.Sprintf("Done%d", j+1)
	targets := ss.StatesMatching(func(term string) bool {
		return strings.Contains(term, done)
	})
	if len(targets) == 0 {
		return nil, fmt.Errorf("robustness: no completion state found for machine %d", j+1)
	}
	return targets, nil
}

// configureChain applies the study's observability, worker, and pool
// settings to a freshly built chain.
func (s *Study) configureChain(chain *ctmc.Chain) {
	chain.Obs = s.Obs
	chain.Workers = s.Workers
	if p := s.solvePool(); p != nil {
		chain.AttachPool(p)
	}
}

// rateEnv returns the rate-constant environment for machine j at this
// study's parameters. It MUST mirror MachineModel's DefineRate calls —
// same names, same values — because the family path substitutes these
// into the derived prototype in place of a fresh derivation (the
// byte-identity test in perturb_test.go pins the two paths together).
func (s *Study) rateEnv(mapping string, j int) (map[string]float64, error) {
	tab, err := TableI(mapping)
	if err != nil {
		return nil, err
	}
	if j < 0 || j >= NumMachines {
		return nil, fmt.Errorf("robustness: machine index %d out of range", j)
	}
	env := map[string]float64{
		"fail":      s.FailRate,
		"repair":    s.RepairRate,
		"done_rate": 1e-9,
	}
	for _, app := range tab[j] {
		env[fmt.Sprintf("r_a%d", app)] = s.Rate(app, j)
	}
	return env, nil
}

// MakespanCDF computes the CDF of the mapping's makespan (the time by
// which every machine has finished). The machines' availability processes
// are independent, so the makespan CDF is the product of the per-machine
// finishing-time CDFs — computed in parallel, multiplied in machine order.
func (s *Study) MakespanCDF(mapping string, times []float64) (*ctmc.PassageCDF, error) {
	return s.MakespanCDFCtx(context.Background(), mapping, times)
}

// MakespanCDFCtx is MakespanCDF with cooperative cancellation and
// (when Study.Checkpoint is set) per-machine checkpoint/resume. An
// interrupted run returns a *runctx.ErrCanceled counting the machines
// that finished; those cells are already on disk, so resuming costs
// only the unfinished machines and the final product is byte-identical
// to an uninterrupted run.
func (s *Study) MakespanCDFCtx(ctx context.Context, mapping string, times []float64) (*ctmc.PassageCDF, error) {
	cdfs, err := par.MapOpt(NumMachines, par.Options{Workers: s.Workers, Ctx: ctx}, func(j int) (*ctmc.PassageCDF, error) {
		cdf, err := s.FinishingCDFCtx(ctx, mapping, j, times)
		if err != nil {
			return nil, fmt.Errorf("robustness: machine %d: %w", j+1, err)
		}
		if s.hookCell != nil {
			s.hookCell(mapping, j)
		}
		return cdf, nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			done := 0
			for _, cdf := range cdfs {
				if cdf != nil {
					done++
				}
			}
			runctx.Record(s.Obs, "robustness.makespan", cerr)
			ec := runctx.New("robustness.makespan", cerr, done, NumMachines, "machines")
			ec.Partial = cdfs
			return nil, ec
		}
		var merr *par.MultiError
		if errors.As(err, &merr) && len(merr.Errs) > 0 {
			return nil, fmt.Errorf("par: %w", merr.Errs[0])
		}
		return nil, err
	}
	out := &ctmc.PassageCDF{Times: append([]float64(nil), times...), Probs: make([]float64, len(times))}
	for i := range out.Probs {
		out.Probs[i] = 1
	}
	for _, cdf := range cdfs {
		for i := range out.Probs {
			out.Probs[i] *= cdf.Probs[i]
		}
	}
	return out, nil
}

// Robustness returns P(makespan <= tau): the probability the allocation
// meets the deadline despite availability variation — the study's
// robustness metric.
func (s *Study) Robustness(mapping string, tau float64, samples int) (float64, error) {
	return s.RobustnessCtx(context.Background(), mapping, tau, samples)
}

// RobustnessCtx is Robustness with cooperative cancellation and
// checkpoint/resume, inherited from MakespanCDFCtx.
func (s *Study) RobustnessCtx(ctx context.Context, mapping string, tau float64, samples int) (float64, error) {
	times := make([]float64, samples+1)
	for i := range times {
		times[i] = tau * float64(i) / float64(samples)
	}
	cdf, err := s.MakespanCDFCtx(ctx, mapping, times)
	if err != nil {
		return 0, err
	}
	return cdf.Probs[len(cdf.Probs)-1], nil
}

// ActivityDiagram renders the Fig 2 replication: the derivation graph of
// machine j's cyclic component under the mapping, in DOT.
func (s *Study) ActivityDiagram(mapping string, j int) (string, error) {
	m, err := s.MachineModel(mapping, j, true)
	if err != nil {
		return "", err
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("Activity diagram: machine M%d, Mapping %s", j+1, mapping)
	return diagram.DOT(ss, diagram.Options{Title: title, ShortLabels: true}), nil
}

// ActivityText renders the same diagram as plain text.
func (s *Study) ActivityText(mapping string, j int) (string, error) {
	m, err := s.MachineModel(mapping, j, true)
	if err != nil {
		return "", err
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("Activity diagram: machine M%d, Mapping %s", j+1, mapping)
	return diagram.Text(ss, diagram.Options{Title: title}), nil
}

// PEPASource renders machine j's model as PEPA concrete syntax — the file
// fed to the containerized solver.
func (s *Study) PEPASource(mapping string, j int, cyclic bool) (string, error) {
	m, err := s.MachineModel(mapping, j, cyclic)
	if err != nil {
		return "", err
	}
	return m.String(), nil
}

// FormatTableI renders Table I in the paper's layout.
func FormatTableI() string {
	var b strings.Builder
	b.WriteString("Machine\tMapping A\tMapping B\n")
	a := mappings[MappingA]
	bb := mappings[MappingB]
	for j := 0; j < NumMachines; j++ {
		fmt.Fprintf(&b, "M%d\t%s\t%s\n", j+1, appList(a[j]), appList(bb[j]))
	}
	return b.String()
}

func appList(apps []int) string {
	parts := make([]string, len(apps))
	for i, a := range apps {
		parts[i] = fmt.Sprintf("a%d", a)
	}
	return strings.Join(parts, ",")
}

// CheckTableI verifies the structural invariants of Table I: every
// application appears exactly once per mapping.
func CheckTableI() error {
	for name, tab := range mappings {
		seen := map[int]int{}
		for _, apps := range tab {
			for _, a := range apps {
				seen[a]++
			}
		}
		for a := 1; a <= NumApps; a++ {
			if seen[a] != 1 {
				return fmt.Errorf("robustness: mapping %s assigns a%d %d times", name, a, seen[a])
			}
		}
		if len(seen) != NumApps {
			return fmt.Errorf("robustness: mapping %s has %d distinct apps", name, len(seen))
		}
	}
	return nil
}
