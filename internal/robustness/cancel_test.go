package robustness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/obs"
	"repro/internal/runctx"
)

// TestStudyCancelCheckpointResume is the chaos drill pinned by ISSUE 5:
// cancel a study mid-flight, check the partial report is classified, then
// resume from the checkpoint and require the final output byte-identical
// to an uninterrupted run. Workers=1 serializes the machines, so the
// cancellation point (after machine 2's cell) is fully deterministic.
func TestStudyCancelCheckpointResume(t *testing.T) {
	times := grid(0, 400, 40)

	// Uninterrupted reference, no checkpoint.
	ref := NewStudy()
	ref.Workers = 1
	want, err := ref.MakespanCDF(MappingA, times)
	if err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(t.TempDir(), "study.json")

	// Interrupted run: cancel inside the test seam after the second cell
	// has been computed and checkpointed.
	reg1 := obs.NewRegistry()
	s1 := NewStudy()
	s1.Workers = 1
	s1.Checkpoint = ckPath
	s1.Obs = reg1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1.hookCell = func(mapping string, j int) {
		if j == 1 {
			cancel()
		}
	}
	_, err = s1.MakespanCDFCtx(ctx, MappingA, times)
	if err == nil {
		t.Fatal("canceled study returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var ec *runctx.ErrCanceled
	if !errors.As(err, &ec) {
		t.Fatalf("error is not *runctx.ErrCanceled: %v", err)
	}
	if ec.Done != 2 || ec.Total != NumMachines || ec.Unit != "machines" {
		t.Fatalf("partial report = %d/%d %s, want 2/%d machines", ec.Done, ec.Total, ec.Unit, NumMachines)
	}
	partial, ok := ec.Partial.([]*ctmc.PassageCDF)
	if !ok {
		t.Fatalf("ErrCanceled.Partial has type %T", ec.Partial)
	}
	if partial[0] == nil || partial[1] == nil || partial[2] != nil {
		t.Fatalf("partial cells = [%v %v %v ...], want first two finished only",
			partial[0] != nil, partial[1] != nil, partial[2] != nil)
	}
	if got := reg1.Counter("cancellations_total", obs.L("op", "robustness.makespan"), obs.L("cause", "canceled")); got != 1 {
		t.Errorf("cancellations_total{op=robustness.makespan} = %g, want 1", got)
	}
	if got := reg1.Counter("checkpoint_writes_total", obs.L("job", studyJob)); got != 2 {
		t.Errorf("checkpoint_writes_total after interrupt = %g, want 2", got)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("checkpoint file missing after interrupt: %v", err)
	}

	// Resume: a fresh study with the same parameters and checkpoint path
	// recomputes only machines 3-5 and matches the reference bit-for-bit.
	reg2 := obs.NewRegistry()
	s2 := NewStudy()
	s2.Workers = 1
	s2.Checkpoint = ckPath
	s2.Obs = reg2
	got, err := s2.MakespanCDF(MappingA, times)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("checkpoint_writes_total", obs.L("job", studyJob)); got != 3 {
		t.Errorf("resume wrote %g cells, want 3 (machines 1-2 must come from the checkpoint)", got)
	}
	for i := range want.Probs {
		if got.Probs[i] != want.Probs[i] {
			t.Fatalf("resumed makespan CDF differs at t=%g: %v != %v (must be byte-identical)",
				times[i], got.Probs[i], want.Probs[i])
		}
		if got.Times[i] != want.Times[i] {
			t.Fatalf("resumed time grid differs at index %d", i)
		}
	}
}

// TestStudyCheckpointStaleParamsIgnored: a checkpoint written under other
// parameters must count as a miss, never as data.
func TestStudyCheckpointStaleParamsIgnored(t *testing.T) {
	times := grid(0, 400, 20)
	ckPath := filepath.Join(t.TempDir(), "study.json")

	s1 := NewStudy()
	s1.Workers = 1
	s1.Checkpoint = ckPath
	if _, err := s1.FinishingCDF(MappingA, 0, times); err != nil {
		t.Fatal(err)
	}

	// Same path, different availability parameters: the cell on disk is
	// stale and the study must recompute, matching a checkpoint-free run.
	s2 := NewStudy()
	s2.Workers = 1
	s2.Checkpoint = ckPath
	s2.FailRate = 1.0
	s2.RepairRate = 0.1
	got, err := s2.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewStudy()
	fresh.Workers = 1
	fresh.FailRate = 1.0
	fresh.RepairRate = 0.1
	want, err := fresh.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Probs {
		if got.Probs[i] != want.Probs[i] {
			t.Fatalf("stale checkpoint leaked into result at t=%g", times[i])
		}
	}
}

// TestStudyDeadlineClassifiedAsDeadline: an expired deadline must be
// classified distinctly from an explicit cancel.
func TestStudyDeadlineClassifiedAsDeadline(t *testing.T) {
	s := NewStudy()
	s.Workers = 1
	reg := obs.NewRegistry()
	s.Obs = reg
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	_, err := s.MakespanCDFCtx(ctx, MappingA, grid(0, 400, 10))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, DeadlineExceeded) = false for %v", err)
	}
	var ec *runctx.ErrCanceled
	if !errors.As(err, &ec) {
		t.Fatalf("error is not *runctx.ErrCanceled: %v", err)
	}
	if ec.Done != 0 {
		t.Errorf("pre-expired deadline completed %d machines, want 0", ec.Done)
	}
	if got := reg.Counter("cancellations_total", obs.L("op", "robustness.makespan"), obs.L("cause", "deadline")); got != 1 {
		t.Errorf("cancellations_total{cause=deadline} = %g, want 1", got)
	}
}
