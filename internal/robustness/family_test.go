package robustness

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// TestFamilyPathByteIdentical pins the sweep optimization's exactness:
// with and without the chain-family cache, every per-machine CDF — for
// the nominal study and for a perturbed copy — must be byte-identical.
func TestFamilyPathByteIdentical(t *testing.T) {
	times := []float64{10, 20, 40, 80}
	for _, mapping := range []string{MappingA, MappingB} {
		fresh := NewStudy()
		fresh.NoFamily = true
		fam := NewStudy()
		pFresh, err := fresh.Perturbed(0.3, 99)
		if err != nil {
			t.Fatal(err)
		}
		pFresh.NoFamily = true
		pFam, err := fam.Perturbed(0.3, 99)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < NumMachines; j++ {
			a, err := fresh.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fam.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Probs {
				if math.Float64bits(a.Probs[i]) != math.Float64bits(b.Probs[i]) {
					t.Fatalf("%s/M%d nominal: Probs[%d] = %x vs %x", mapping, j+1, i,
						math.Float64bits(b.Probs[i]), math.Float64bits(a.Probs[i]))
				}
			}
			a, err = pFresh.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatal(err)
			}
			b, err = pFam.FinishingCDF(mapping, j, times)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Probs {
				if math.Float64bits(a.Probs[i]) != math.Float64bits(b.Probs[i]) {
					t.Fatalf("%s/M%d perturbed: Probs[%d] = %x vs %x", mapping, j+1, i,
						math.Float64bits(b.Probs[i]), math.Float64bits(a.Probs[i]))
				}
			}
		}
	}
}

// TestFamilySharedAcrossPerturbedCopies: the derive-once contract — a
// parent and its perturbed copies serve every machine solve from the
// family cache (all reuse, no fallback), and the cache holds exactly one
// entry per touched machine cell.
func TestFamilySharedAcrossPerturbedCopies(t *testing.T) {
	s := NewStudy()
	s.Obs = obs.NewRegistry()
	times := []float64{10, 40}
	if _, err := s.FinishingCDF(MappingA, 0, times); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 3; k++ {
		p, err := s.Perturbed(0.3, 7+k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.FinishingCDF(MappingA, 0, times); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Obs.Counter("robustness_family_total", obs.L("outcome", "reuse")); got != 4 {
		t.Errorf("reuse = %g, want 4", got)
	}
	if got := s.Obs.Counter("robustness_family_total", obs.L("outcome", "fallback")); got != 0 {
		t.Errorf("fallback = %g, want 0", got)
	}
	s.famMu.Lock()
	entries := len(s.families.m)
	s.famMu.Unlock()
	if entries != 1 {
		t.Errorf("family cache holds %d entries, want 1 (one per touched cell)", entries)
	}
}

// BenchmarkPerturbationSweep is the acceptance benchmark for the family
// path: a 16-sample perturbation sweep (plus the nominal evaluation),
// cold (re-derive every sample) versus family-backed. `make bench-sweep`
// tracks both; docs/PERFORMANCE.md records the measured ratio.
func BenchmarkPerturbationSweep(b *testing.B) {
	run := func(b *testing.B, noFamily bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewStudy()
			s.NoFamily = noFamily
			if _, err := s.RobustnessUnderPerturbation(MappingA, 60, 0.3, 16, 7, 40); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	b.Run("family", func(b *testing.B) { run(b, false) })
}
