package robustness

// Study-level worker pool tests: one shared pool serves every machine
// chain of a sweep, parallel results stay bit-identical to sequential,
// and Close returns the goroutine count to baseline.

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/numeric/sparse"
)

func TestStudySharedPoolBitIdenticalAndReleased(t *testing.T) {
	saved := sparse.ParallelNNZThreshold
	sparse.ParallelNNZThreshold = 0 // machine chains are small; force the pool path
	defer func() { sparse.ParallelNNZThreshold = saved }()

	times := grid(0, 400, 20)
	seq := NewStudy()
	want, err := seq.MakespanCDF(MappingA, times)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	base := runtime.NumGoroutine()
	s := NewStudy()
	s.Workers = 4
	got, err := s.MakespanCDF(MappingA, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Probs {
		if math.Float64bits(got.Probs[i]) != math.Float64bits(want.Probs[i]) {
			t.Fatalf("parallel makespan diverged at %g: %g vs %g", times[i], got.Probs[i], want.Probs[i])
		}
	}
	// Every machine chain shares the study pool: its 3 workers are the
	// only pinned goroutines allowed to outlive the sweep (the fan-out
	// goroutines are joined by MakespanCDF itself).
	if n := runtime.NumGoroutine(); n > base+3 {
		t.Fatalf("%d goroutines after sweep, baseline %d + pool 3 allowed", n, base)
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d never returned to baseline %d after Close", runtime.NumGoroutine(), base)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	s.Close() // idempotent

	// The study stays usable after Close: a fresh pool is created lazily
	// and the result is still bit-identical.
	again, err := s.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seq.FinishingCDF(MappingA, 0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Probs {
		if math.Float64bits(again.Probs[i]) != math.Float64bits(ref.Probs[i]) {
			t.Fatalf("post-Close finishing CDF diverged at %g", times[i])
		}
	}
	s.Close()
}
