package fsatomic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("contents = %q, want v1", got)
	}
	if err := WriteFile(path, []byte("v2 longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2 longer" {
		t.Fatalf("contents = %q, want v2 longer", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
}

func TestWriteFileLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, []byte(strings.Repeat("x", i+1)), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "data.bin" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("leftover files: %v", names)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}

// A leftover temp file from a crashed earlier writer must not disturb a
// later atomic write (the new write uses its own random temp name).
func TestWriteFileIgnoresStaleTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	if err := os.WriteFile(path+".tmp-crashed", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "good" {
		t.Fatalf("contents = %q, want good", got)
	}
}
