package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// AppendFile is a durable append-only file: every Append is followed by
// an fsync, so a crash never loses an acknowledged record — at worst the
// tail holds one partially-written (torn) record, which readers must
// detect and discard. The hub's write-ahead journal
// (internal/hub/wal.go) is built on this.
type AppendFile struct {
	f    *os.File
	dir  string
	path string
}

// OpenAppend opens (creating if needed) path for durable appends. A
// newly created file is made durable immediately by fsyncing the parent
// directory, so the journal itself cannot vanish in a crash after its
// first record was acknowledged.
func OpenAppend(path string) (*AppendFile, error) {
	dir := filepath.Dir(path)
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsatomic: open append %s: %w", path, err)
	}
	if created {
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &AppendFile{f: f, dir: dir, path: path}, nil
}

// Append writes p at the end of the file and fsyncs. On return the
// record is durable; on error the tail may be torn and the caller's
// replay logic must tolerate that.
func (a *AppendFile) Append(p []byte) error {
	if _, err := a.f.Write(p); err != nil {
		return fmt.Errorf("fsatomic: append %s: %w", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync %s: %w", a.path, err)
	}
	return nil
}

// Size returns the current file length.
func (a *AppendFile) Size() (int64, error) {
	fi, err := a.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("fsatomic: stat %s: %w", a.path, err)
	}
	return fi.Size(), nil
}

// Truncate durably shortens the file to n bytes (discarding a torn tail
// after replay, or resetting a journal after compaction).
func (a *AppendFile) Truncate(n int64) error {
	if err := a.f.Truncate(n); err != nil {
		return fmt.Errorf("fsatomic: truncate %s: %w", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync %s: %w", a.path, err)
	}
	return nil
}

// Sync forces an fsync outside of Append (e.g. before close on drain).
func (a *AppendFile) Sync() error {
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync %s: %w", a.path, err)
	}
	return nil
}

// Close fsyncs and closes the file.
func (a *AppendFile) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return fmt.Errorf("fsatomic: fsync %s: %w", a.path, err)
	}
	return a.f.Close()
}

// Path returns the file's path.
func (a *AppendFile) Path() string { return a.path }
