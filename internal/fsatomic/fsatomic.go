// Package fsatomic provides crash-safe file replacement: write to a
// temporary file in the destination directory, fsync it, rename it over
// the destination, then fsync the directory so the rename itself is
// durable. After a crash at any point the destination holds either the
// complete old contents or the complete new contents — never a torn or
// empty file. Checkpoint files (internal/checkpoint) and the hub store
// index (internal/hub/persist.go) are written through this package.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created with os.CreateTemp in the same directory (same filesystem, so
// the rename is atomic) and is removed on any failure. perm is applied
// before the rename so the file never appears with temp-file modes.
func WriteFile(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsatomic: create temp: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("fsatomic: write %s: %w", tmp, err)
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("fsatomic: chmod %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("fsatomic: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fsatomic: rename %s -> %s: %w", tmp, path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a
// crash. Some filesystems refuse fsync on directories; that is reported,
// not ignored, because the crash-safety contract depends on it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsatomic: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync dir %s: %w", dir, err)
	}
	return nil
}
