package fsatomic

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAppendFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != path {
		t.Errorf("Path() = %q, want %q", f.Path(), path)
	}
	for _, rec := range []string{"alpha\n", "beta\n", "gamma\n"} {
		if err := f.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len("alpha\nbeta\ngamma\n")); n != want {
		t.Errorf("Size() = %d, want %d", n, want)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "alpha\nbeta\ngamma\n" {
		t.Errorf("contents = %q", data)
	}
}

func TestAppendFileReopenExtends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening must append after the existing bytes, never truncate.
	f, err = OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "onetwo" {
		t.Errorf("contents after reopen = %q, want %q", data, "onetwo")
	}
}

func TestAppendFileTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Append([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	n, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Size() after truncate = %d, want 4", n)
	}
	// Appends after a truncate land at the new end (O_APPEND semantics).
	if err := f.Append([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "0123ab" {
		t.Errorf("contents = %q, want %q", data, "0123ab")
	}
}

func TestOpenAppendMissingDir(t *testing.T) {
	if _, err := OpenAppend(filepath.Join(t.TempDir(), "no", "such", "dir", "log")); err == nil {
		t.Error("OpenAppend into a missing directory succeeded")
	}
}
