package core

import (
	"fmt"
	"strings"

	"repro/internal/hostenv"
	"repro/internal/hub"
)

// §II.B of the paper describes the ACM artifact review and badging
// initiative (its ref [1]): publications earn badges when their digital
// artifacts are found functional, reusable, and available, and when the
// study's results are validated and reproduced. This file turns those
// criteria into checks the framework runs against itself, so the badge
// claims are measurements rather than assertions.

// Badge identifies one ACM artifact badge.
type Badge string

// The ACM badge set (Artifact Review and Badging v1.0 terminology).
const (
	BadgeFunctional Badge = "Artifacts Evaluated — Functional"
	BadgeReusable   Badge = "Artifacts Evaluated — Reusable"
	BadgeAvailable  Badge = "Artifacts Available"
	BadgeValidated  Badge = "Results Validated — Replicated"
	BadgeReproduced Badge = "Results Validated — Reproduced"
)

// BadgeResult records one badge assessment.
type BadgeResult struct {
	Badge    Badge
	Earned   bool
	Evidence []string // what was checked, in order
}

// BadgeReport is the full assessment.
type BadgeReport struct {
	Results []BadgeResult
}

// Earned lists the earned badges in assessment order.
func (r *BadgeReport) Earned() []Badge {
	var out []Badge
	for _, b := range r.Results {
		if b.Earned {
			out = append(out, b.Badge)
		}
	}
	return out
}

// String renders the report.
func (r *BadgeReport) String() string {
	var b strings.Builder
	for _, res := range r.Results {
		mark := "✗"
		if res.Earned {
			mark = "✓"
		}
		fmt.Fprintf(&b, "[%s] %s\n", mark, res.Badge)
		for _, e := range res.Evidence {
			fmt.Fprintf(&b, "      - %s\n", e)
		}
	}
	return b.String()
}

// AssessBadges runs the badge criteria against a hub that the framework's
// containers have been pushed to:
//
//   - Functional: every container builds from its recipe and runs its
//     canned model to completion on the build host;
//   - Reusable: the containers also run user-supplied inputs (a model not
//     baked into any recipe) and the recipes are regenerable from source;
//   - Available: every container is retrievable from the archive (hub)
//     with a verified content digest;
//   - Validated (replicated): the containerized runs produce output
//     byte-identical to native runs (the paper's §III methodology);
//   - Reproduced: an independent environment (a different host profile)
//     obtains the same results from the published artifacts.
func (f *Framework) AssessBadges(client *hub.Client) (*BadgeReport, error) {
	report := &BadgeReport{}
	builder, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		return nil, err
	}
	if err := builder.InstallSingularity(); err != nil {
		return nil, err
	}
	builds, err := f.BuildAll(builder)
	if err != nil {
		return nil, err
	}
	digests, err := f.PushAll(client, builds)
	if err != nil {
		return nil, err
	}

	// Functional.
	functional := BadgeResult{Badge: BadgeFunctional, Earned: true}
	for _, t := range Tools() {
		ex := ExampleModel(t)
		rep, err := f.Validate(t, builder, builds[t].Image, ex.Name, ex.Source, ex.Args...)
		if err != nil || rep.ContainerOut == "" {
			functional.Earned = false
			functional.Evidence = append(functional.Evidence, fmt.Sprintf("%s: containerized run failed: %v", t, err))
			continue
		}
		functional.Evidence = append(functional.Evidence, fmt.Sprintf("%s builds from recipe and runs its example model", t))
	}
	report.Results = append(report.Results, functional)

	// Reusable: run a model that no recipe or example bundles.
	reusable := BadgeResult{Badge: BadgeReusable, Earned: true}
	userModel := "r = 0.7;\nU = (userwork, r).U1;\nU1 = (userrest, 1.4).U;\nU\n"
	rep, err := f.Validate(ToolPEPA, builder, builds[ToolPEPA].Image, "usersupplied.pepa", userModel)
	if err != nil || !strings.Contains(rep.ContainerOut, "steady-state distribution") {
		reusable.Earned = false
		reusable.Evidence = append(reusable.Evidence, fmt.Sprintf("user-supplied model failed: %v", err))
	} else {
		reusable.Evidence = append(reusable.Evidence, "container solves a user-supplied model (not bundled with any recipe)")
	}
	for _, t := range Tools() {
		if _, err := Recipe(t); err != nil {
			reusable.Earned = false
			reusable.Evidence = append(reusable.Evidence, fmt.Sprintf("%s recipe not regenerable: %v", t, err))
		}
	}
	if reusable.Earned {
		reusable.Evidence = append(reusable.Evidence, "all recipes regenerate from source")
	}
	report.Results = append(report.Results, reusable)

	// Available.
	available := BadgeResult{Badge: BadgeAvailable, Earned: true}
	for _, t := range Tools() {
		if _, _, err := client.Pull(f.Collection, string(t), "latest", digests[t]); err != nil {
			available.Earned = false
			available.Evidence = append(available.Evidence, fmt.Sprintf("%s: pull failed: %v", t, err))
			continue
		}
		available.Evidence = append(available.Evidence, fmt.Sprintf("%s retrievable from the archive, digest verified", t))
	}
	report.Results = append(report.Results, available)

	// Validated: native-vs-container equality on the build host.
	validated := BadgeResult{Badge: BadgeValidated, Earned: true}
	for _, t := range Tools() {
		ex := ExampleModel(t)
		rep, err := f.Validate(t, builder, builds[t].Image, ex.Name, ex.Source, ex.Args...)
		if err != nil || !rep.Match {
			validated.Earned = false
			validated.Evidence = append(validated.Evidence, fmt.Sprintf("%s: containerized output differs from native", t))
			continue
		}
		validated.Evidence = append(validated.Evidence, fmt.Sprintf("%s: containerized output byte-identical to native", t))
	}
	report.Results = append(report.Results, validated)

	// Reproduced: an independent environment pulls the published artifacts
	// and obtains the same results.
	reproduced := BadgeResult{Badge: BadgeReproduced, Earned: true}
	independent, err := hostenv.ByName(hostenv.GCPInstance)
	if err != nil {
		return nil, err
	}
	if err := independent.InstallSingularity(); err != nil {
		return nil, err
	}
	for _, t := range Tools() {
		img, _, err := client.Pull(f.Collection, string(t), "latest", digests[t])
		if err != nil {
			reproduced.Earned = false
			reproduced.Evidence = append(reproduced.Evidence, fmt.Sprintf("%s: pull on independent host failed: %v", t, err))
			continue
		}
		ex := ExampleModel(t)
		repB, err := f.Validate(t, builder, builds[t].Image, ex.Name, ex.Source, ex.Args...)
		if err != nil {
			return nil, err
		}
		repI, err := f.Validate(t, independent, img, ex.Name, ex.Source, ex.Args...)
		if err != nil || repI.ContainerOut != repB.ContainerOut {
			reproduced.Earned = false
			reproduced.Evidence = append(reproduced.Evidence, fmt.Sprintf("%s: independent host produced different output", t))
			continue
		}
		reproduced.Evidence = append(reproduced.Evidence,
			fmt.Sprintf("%s: %s reproduces the build host's results from pulled artifacts", t, independent.Name))
	}
	report.Results = append(report.Results, reproduced)
	return report, nil
}
