package core

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hostenv"
	"repro/internal/hub"
	"repro/internal/par"
)

// matrixClientOptions: fast deterministic retries, breaker effectively
// disabled so concurrent per-host pulls cannot interfere across cells.
func matrixClientOptions() hub.ClientOptions {
	return hub.ClientOptions{
		Retry:            hub.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		BreakerThreshold: 1 << 20,
		Sleep:            func(time.Duration) {},
	}
}

// TestValidationMatrixDegradesGracefully injects persistent 500s into
// one tool's pull path: that tool's cells fail classified transient
// with attempt logs, every other cell completes, and FormatMatrix
// renders a partial report.
func TestValidationMatrixDegradesGracefully(t *testing.T) {
	f := New()
	srv := hub.NewServer(hub.NewStore())
	srv.EnableFaults(faultinject.NewPlan(1, faultinject.Rule{
		Match: "GET /v1/pepa-containers/gpa/", Kind: faultinject.KindStatus, Status: 500, First: 1 << 20,
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := hub.NewClientWithOptions(ts.URL, matrixClientOptions())

	entries, err := f.ValidationMatrix(client)
	if err != nil {
		t.Fatalf("matrix aborted instead of degrading: %v", err)
	}
	hosts := len(hostenv.Names())
	if len(entries) != hosts*len(Tools()) {
		t.Fatalf("got %d entries, want %d", len(entries), hosts*len(Tools()))
	}
	var failed, ok int
	for _, e := range entries {
		if e.Failed() {
			failed++
			if e.Tool != ToolGPA {
				t.Errorf("unexpected failure for %s on %s: %s", e.Tool, e.Host, e.Err)
			}
			if e.FailureClass != FailureTransient {
				t.Errorf("gpa cell on %s classified %q, want transient", e.Host, e.FailureClass)
			}
			if len(e.Attempts) == 0 {
				t.Errorf("gpa cell on %s has no attempt log", e.Host)
			}
			continue
		}
		ok++
		if !e.DigestMatch || !e.OutputMatch {
			t.Errorf("healthy cell %s/%s: digest=%v output=%v", e.Host, e.Tool, e.DigestMatch, e.OutputMatch)
		}
	}
	if failed != hosts || ok != 2*hosts {
		t.Errorf("failed=%d ok=%d, want %d and %d", failed, ok, hosts, 2*hosts)
	}

	report := FormatMatrix(entries)
	if !strings.Contains(report, "!! transient failure:") {
		t.Errorf("report missing classification:\n%s", report)
	}
	if !strings.Contains(report, "partial report:") {
		t.Errorf("report missing partial-report summary:\n%s", report)
	}
}

// panicTransport panics on pulls of one container — the pathological
// client bug the matrix must survive.
type panicTransport struct{ needle string }

func (p *panicTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodGet && strings.Contains(r.URL.Path, p.needle) {
		panic("transport exploded")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestValidationMatrixSurvivesPanic: a panicking pull yields a
// deterministic-classified cell instead of crashing or hanging the
// matrix run (the ISSUE acceptance scenario).
func TestValidationMatrixSurvivesPanic(t *testing.T) {
	f := New()
	ts := httptest.NewServer(hub.NewServer(hub.NewStore()).Handler())
	defer ts.Close()
	opts := matrixClientOptions()
	opts.Transport = &panicTransport{needle: "/biopepa/"}
	client := hub.NewClientWithOptions(ts.URL, opts)

	entries, err := f.ValidationMatrix(client)
	if err != nil {
		t.Fatalf("matrix aborted: %v", err)
	}
	var panicked int
	for _, e := range entries {
		if e.Tool == ToolBioPEPA {
			if !e.Failed() || !strings.Contains(e.Err, "panic: transport exploded") {
				t.Errorf("biopepa cell on %s: Err = %q, want recorded panic", e.Host, e.Err)
			}
			if e.FailureClass != FailureDeterministic {
				t.Errorf("panic classified %q, want deterministic", e.FailureClass)
			}
			panicked++
		} else if e.Failed() {
			t.Errorf("collateral failure for %s on %s: %s", e.Tool, e.Host, e.Err)
		}
	}
	if panicked != len(hostenv.Names()) {
		t.Errorf("panicked cells = %d, want one per host", panicked)
	}
}

// TestPushAllPartialFailure: a missing build fails its own tool only;
// the partial digest map and an aggregated *par.MultiError come back.
func TestPushAllPartialFailure(t *testing.T) {
	f := New()
	builds, err := f.BuildAll(builderHost(t))
	if err != nil {
		t.Fatal(err)
	}
	delete(builds, ToolGPA)
	ts := httptest.NewServer(hub.NewServer(hub.NewStore()).Handler())
	defer ts.Close()
	digests, err := f.PushAll(hub.NewClient(ts.URL), builds)
	var m *par.MultiError
	if !errors.As(err, &m) || len(m.Errs) != 1 {
		t.Fatalf("err = %v, want MultiError with 1 failure", err)
	}
	if !strings.Contains(m.Error(), "no build for gpa") {
		t.Errorf("err = %v", m)
	}
	if len(digests) != 2 || digests[ToolPEPA] == "" || digests[ToolBioPEPA] == "" {
		t.Errorf("partial digests = %v", digests)
	}
}

// TestFormatMatrixPartialRendering pins the failed-cell rendering
// (the happy-path format is pinned separately by the golden file).
func TestFormatMatrixPartialRendering(t *testing.T) {
	entries := []MatrixEntry{
		{Tool: ToolPEPA, Host: "centos-7.4", NativeInstallOK: true, DigestMatch: true, OutputMatch: true},
		{Tool: ToolGPA, Host: "ubuntu-16.04", Err: "core: pulling gpa: HTTP 500",
			FailureClass: FailureTransient, Attempts: []string{"pull c/gpa:latest attempt 1/2: HTTP 500 (transient)"}},
	}
	got := FormatMatrix(entries)
	want := "host\ttool\tnative-install\tdigest-ok\toutput-ok\n" +
		"centos-7.4\tpepa\tok\ttrue\ttrue\n" +
		"ubuntu-16.04\tgpa\tFAIL\tERR\tERR\n" +
		"    !! transient failure: core: pulling gpa: HTTP 500\n" +
		"       pull c/gpa:latest attempt 1/2: HTTP 500 (transient)\n" +
		"partial report: 1/2 cells failed\n"
	if got != want {
		t.Errorf("FormatMatrix:\n%q\nwant\n%q", got, want)
	}
}
