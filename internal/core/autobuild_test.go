package core

import (
	"net/http/httptest"
	"testing"

	"repro/internal/hub"
	"repro/internal/recipestore"
)

func TestRecipeStoreToHubPipeline(t *testing.T) {
	// The full provenance chain: commit recipes to the version store, ask
	// the hub to build a specific commit, pull the result, and check the
	// stored recipe source matches the committed one.
	fw := New()
	store := recipestore.NewStore()
	commit, err := fw.CommitRecipes(store, "wss2", "initial import of PEPA tool recipes")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := store.Paths(commit.Hash); len(got) != 3 {
		t.Fatalf("committed paths = %v", got)
	}

	builder, err := fw.NewHubBuilder()
	if err != nil {
		t.Fatal(err)
	}
	srv := hub.NewServer(hub.NewStore())
	srv.EnableAutoBuild(builder)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := hub.NewClient(ts.URL)

	digest, err := fw.PublishFromStore(client, store, commit.Hash, ToolPEPA, "v1")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := client.Pull(fw.Collection, "pepa", "v1", digest)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := store.Checkout(commit.Hash, "pepa/Singularity")
	if err != nil {
		t.Fatal(err)
	}
	if img.Meta.RecipeSource != committed {
		t.Error("published image's recipe provenance does not match the committed recipe")
	}
	// Hub-built images must be digest-identical to locally built ones:
	// same recipe, same base, same engine.
	local, err := fw.Build(ToolPEPA, builder.Host)
	if err != nil {
		t.Fatal(err)
	}
	localImg := local.Image
	localImg.Meta.Tag = "v1" // tag differs; digest covers it
	d2, err := localImg.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != digest {
		t.Errorf("hub build digest %s != local build digest %s", digest, d2)
	}
}

func TestRecipeHistoryRebuildsOldVersion(t *testing.T) {
	// Edit a recipe, then rebuild the *old* commit and confirm it differs
	// from the new one — replication of past results from history.
	fw := New()
	store := recipestore.NewStore()
	c1, err := fw.CommitRecipes(store, "wss2", "v1")
	if err != nil {
		t.Fatal(err)
	}
	oldSrc, _ := store.Checkout(c1.Hash, "pepa/Singularity")
	newSrc := oldSrc + "\n%labels\n    Revision two\n"
	c2, err := store.Commit("wss2", "bump labels", map[string]string{"pepa/Singularity": newSrc})
	if err != nil {
		t.Fatal(err)
	}

	builder, err := fw.NewHubBuilder()
	if err != nil {
		t.Fatal(err)
	}
	srv := hub.NewServer(hub.NewStore())
	srv.EnableAutoBuild(builder)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := hub.NewClient(ts.URL)

	d1, err := fw.PublishFromStore(client, store, c1.Hash, ToolPEPA, "old")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := fw.PublishFromStore(client, store, c2.Hash, ToolPEPA, "new")
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Error("different recipe revisions produced identical digests")
	}
	// Rebuilding the old commit again reproduces its digest exactly.
	d1again, err := fw.PublishFromStore(client, store, c1.Hash, ToolPEPA, "old-rebuild")
	if err != nil {
		t.Fatal(err)
	}
	if d1again == d1 {
		// Tags differ ("old" vs "old-rebuild") and the digest covers the
		// tag, so equality would actually be a bug.
		t.Error("digest ignored the tag")
	}
	if err := store.Verify(); err != nil {
		t.Errorf("store integrity: %v", err)
	}
}
