package core

import (
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/hostenv"
	"repro/internal/hub"
	"repro/internal/pepa"
	"repro/internal/runtime"
)

func builderHost(t *testing.T) *hostenv.Host {
	t.Helper()
	h, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.InstallSingularity(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRecipesParseAndBuild(t *testing.T) {
	f := New()
	host := builderHost(t)
	for _, tool := range Tools() {
		rcp, err := Recipe(tool)
		if err != nil {
			t.Fatalf("%s recipe: %v", tool, err)
		}
		if rcp.From != "centos:7.4" {
			t.Errorf("%s recipe base = %q", tool, rcp.From)
		}
		res, err := f.Build(tool, host)
		if err != nil {
			t.Fatalf("%s build: %v", tool, err)
		}
		if res.Digest == "" {
			t.Errorf("%s build has no digest", tool)
		}
		// The %test section verified the payload exists.
	}
}

func TestUnknownTool(t *testing.T) {
	if _, err := Recipe(Tool("fortran-analyzer")); err == nil {
		t.Error("unknown tool recipe accepted")
	}
	if _, err := Tool("x").Package(); err == nil {
		t.Error("unknown tool package accepted")
	}
}

func TestExampleModelsAreValid(t *testing.T) {
	// The PEPA examples must parse and check with the real engine.
	for _, src := range []string{SimplePEPAModel, ActiveBadgeModel, AlternatingBitModel, PCLAN4Model} {
		m, err := pepa.Parse(src)
		if err != nil {
			t.Fatalf("example does not parse: %v\n%s", err, src)
		}
		if res := pepa.Check(m); res.Err() != nil {
			t.Fatalf("example fails checks: %v", res.Err())
		}
	}
}

func TestEdinburghExampleModelsValidateInContainer(t *testing.T) {
	// §III: "a number of example models (including The PEPA Active Badge
	// Model, The Alternating Bit Protocol Model, and the PC LAN 4 Model)
	// were downloaded ... and tested both with and without container
	// functionality."
	f := New()
	host := builderHost(t)
	build, err := f.Build(ToolPEPA, host)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"activebadge.pepa": ActiveBadgeModel,
		"altbit.pepa":      AlternatingBitModel,
		"pclan4.pepa":      PCLAN4Model,
	}
	names := make([]string, 0, len(cases))
	for n := range cases {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		rep, err := f.Validate(ToolPEPA, host, build.Image, name, cases[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Match {
			t.Errorf("%s: containerized output differs from native", name)
		}
		if !strings.Contains(rep.ContainerOut, "steady-state distribution") {
			t.Errorf("%s: no steady-state output:\n%s", name, rep.ContainerOut)
		}
	}
}

func TestValidatePEPANativeVsContainer(t *testing.T) {
	f := New()
	host := builderHost(t)
	build, err := f.Build(ToolPEPA, host)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Validate(ToolPEPA, host, build.Image, "simple.pepa", SimplePEPAModel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("native and containerized outputs differ:\n--- native ---\n%s\n--- container ---\n%s", rep.NativeOut, rep.ContainerOut)
	}
	if !strings.Contains(rep.NativeOut, "steady-state distribution") {
		t.Errorf("unexpected solver output: %q", rep.NativeOut)
	}
}

func TestValidateAllToolsOnBuildHost(t *testing.T) {
	f := New()
	host := builderHost(t)
	builds, err := f.BuildAll(host)
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range Tools() {
		ex := ExampleModel(tool)
		rep, err := f.Validate(tool, host, builds[tool].Image, ex.Name, ex.Source, ex.Args...)
		if err != nil {
			t.Fatalf("%s: %v", tool, err)
		}
		if !rep.Match {
			t.Errorf("%s: container output differs from native", tool)
		}
		if rep.ContainerOut == "" {
			t.Errorf("%s: empty output", tool)
		}
	}
}

func TestValidateCDFArguments(t *testing.T) {
	// The passage-time mode used by the robustness replication also runs
	// identically in the container.
	f := New()
	host := builderHost(t)
	build, err := f.Build(ToolPEPA, host)
	if err != nil {
		t.Fatal(err)
	}
	src := "r = 0.5;\nP0 = (step, r).P1;\nP1 = (step, r).PDone;\nPDone = (done, 0.000001).PDone;\nP0\n"
	rep, err := f.Validate(ToolPEPA, host, build.Image, "chain.pepa", src, "cdf", "PDone", "10", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("CDF outputs differ:\n%s\nvs\n%s", rep.NativeOut, rep.ContainerOut)
	}
	if !strings.Contains(rep.ContainerOut, "passage-time CDF") {
		t.Errorf("output = %q", rep.ContainerOut)
	}
}

func TestValidationMatrix(t *testing.T) {
	f := New()
	ts := httptest.NewServer(hub.NewServer(hub.NewStore()).Handler())
	defer ts.Close()
	client := hub.NewClient(ts.URL)
	entries, err := f.ValidationMatrix(client)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7*3 {
		t.Fatalf("matrix entries = %d, want 21", len(entries))
	}
	nativeFailures := 0
	for _, e := range entries {
		if !e.DigestMatch {
			t.Errorf("%s on %s: digest mismatch", e.Tool, e.Host)
		}
		if !e.OutputMatch {
			t.Errorf("%s on %s: output mismatch", e.Tool, e.Host)
		}
		if !e.NativeInstallOK {
			nativeFailures++
			if e.NativeErr == "" {
				t.Errorf("%s on %s: native failure with no error recorded", e.Tool, e.Host)
			}
		}
	}
	// The paper's motivation requires at least one platform where the
	// native install fails while the container works.
	if nativeFailures == 0 {
		t.Error("no native-install failures in matrix; motivation experiment vacuous")
	}
	table := FormatMatrix(entries)
	if !strings.Contains(table, "ubuntu-18.04-bionic") || !strings.Contains(table, "FAIL") {
		t.Errorf("matrix table incomplete:\n%s", table)
	}
}

func TestScalabilitySweepInContainer(t *testing.T) {
	// The Fig 5 sweep experiment runs identically inside the GPA container
	// (seven runscript arguments exercise the extended ARG passing).
	f := New()
	host := builderHost(t)
	build, err := f.Build(ToolGPA, host)
	if err != nil {
		t.Fatal(err)
	}
	ex := ExampleModel(ToolGPA)
	rep, err := f.Validate(ToolGPA, host, build.Image, ex.Name, ex.Source,
		"sweep", "Servers", "Server", "5,10,40,80", "300", "request")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("sweep outputs differ:\n%s\nvs\n%s", rep.NativeOut, rep.ContainerOut)
	}
	if !strings.Contains(rep.ContainerOut, "saturation at count") {
		t.Errorf("output:\n%s", rep.ContainerOut)
	}
}

func TestFutureWorkModelCheckerContainer(t *testing.T) {
	// §IV future work realized: a fourth containerized tool (the CSL-style
	// model checker) goes through the same build/validate pipeline.
	f := New()
	host := builderHost(t)
	build, err := f.Build(ToolMC, host)
	if err != nil {
		t.Fatal(err)
	}
	props := "S >= 0.8 [ \"Proc\" ]\nT >= 2 [ serve ]\n"
	rep, err := f.ValidateWithFiles(ToolMC, host, build.Image, "simple.pepa", map[string]string{
		"simple.pepa": SimplePEPAModel,
		"props.csl":   props,
	}, "props.csl")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("model-checker container output differs from native:\n%s\nvs\n%s",
			rep.NativeOut, rep.ContainerOut)
	}
	if !strings.Contains(rep.ContainerOut, "2/2 properties hold") {
		t.Errorf("unexpected checker output:\n%s", rep.ContainerOut)
	}
}

func TestContainerRunsOnHostWhereNativeFails(t *testing.T) {
	// The headline: on Ubuntu 18.04 the native PEPA install fails, but the
	// container built on CentOS runs and produces the reference output.
	f := New()
	builder := builderHost(t)
	build, err := f.Build(ToolPEPA, builder)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := f.Validate(ToolPEPA, builder, build.Image, "simple.pepa", SimplePEPAModel)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := hostenv.ByName(hostenv.Ubuntu1804)
	if err != nil {
		t.Fatal(err)
	}
	if err := skewed.InstallSingularity(); err != nil {
		t.Fatal(err)
	}
	if err := skewed.NativeInstall("pepa-eclipse-plugin"); err == nil {
		t.Fatal("precondition: native install should fail on ubuntu 18.04")
	}
	if err := skewed.FS.MkdirAll("/home/modeler/models", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := skewed.FS.WriteFile("/home/modeler/models/simple.pepa", []byte(SimplePEPAModel), 0o644); err != nil {
		t.Fatal(err)
	}
	run, err := f.Engine.Run(build.Image, skewed, runtime.RunOptions{
		Isolation: runtime.IsolationSingularity,
		Args:      []string{"/data/simple.pepa"},
		Binds:     []runtime.Bind{{HostPath: "/home/modeler/models", ContainerPath: "/data"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stdout != refRep.ContainerOut {
		t.Error("containerized output differs between build host and skewed host")
	}
}
