// Package core implements the paper's contribution: the container-based
// reproducibility framework for stochastic-process-algebra tooling. It
// wires the pieces together —
//
//	recipes (internal/recipe) -> build (internal/runtime) ->
//	push/pull (internal/hub) -> run on host profiles (internal/hostenv) ->
//	compare containerized vs native solver output
//
// — and exposes the two headline experiments:
//
//   - Validate: run a model natively and inside the container on the same
//     host and check byte-identical output (Fig 1 / Fig 5 validation);
//   - ValidationMatrix: build once on the CentOS 7.4 build host, push to
//     the hub, pull and run on every host profile of §III, and verify both
//     the image digests and the solver outputs agree everywhere.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/hostenv"
	"repro/internal/hub"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pkgmgr"
	"repro/internal/recipe"
	"repro/internal/runctx"
	"repro/internal/runtime"
)

// Tool identifies one of the three containerized applications.
type Tool string

// The containerized tools of the paper, plus the §IV future-work addition.
const (
	ToolPEPA    Tool = "pepa"
	ToolBioPEPA Tool = "biopepa"
	ToolGPA     Tool = "gpa"
	// ToolMC is the CSL-style model checker — the paper's future work
	// ("identification and containerization of other ... process calculi
	// modeling tools") realized.
	ToolMC Tool = "pepa-mc"
)

// Tools lists the paper's three tools in canonical order (the validation
// matrix of §III covers exactly these).
func Tools() []Tool { return []Tool{ToolPEPA, ToolBioPEPA, ToolGPA} }

// ExtendedTools additionally includes the future-work model checker.
func ExtendedTools() []Tool { return []Tool{ToolPEPA, ToolBioPEPA, ToolGPA, ToolMC} }

// toolSpec couples a tool with its recipe ingredients.
type toolSpec struct {
	pkg     string // distro package installed in %post
	binary  string // path of the app binary inside the container
	app     string // runtime app name
	testCmd string // %test command
}

var specs = map[Tool]toolSpec{
	ToolPEPA: {
		pkg:     pkgmgr.PkgPEPAPlugin,
		binary:  "/usr/local/bin/pepa-solver",
		app:     apps.PEPAApp,
		testCmd: "test -e /opt/eclipse/plugins/pepa.jar",
	},
	ToolBioPEPA: {
		pkg:     pkgmgr.PkgBioPEPA,
		binary:  "/usr/local/bin/biopepa-solver",
		app:     apps.BioPEPAApp,
		testCmd: "test -e /opt/eclipse/plugins/biopepa.jar",
	},
	ToolGPA: {
		pkg:     pkgmgr.PkgGPAnalyser,
		binary:  "/usr/local/bin/gpa",
		app:     apps.GPAApp,
		testCmd: "test -e /opt/gpa/gpa.jar",
	},
	ToolMC: {
		pkg:     pkgmgr.PkgModelChecker,
		binary:  "/usr/local/bin/pepa-mc",
		app:     apps.MCApp,
		testCmd: "test -e /opt/pepa-mc/mc.jar",
	},
}

// Package returns the distro package backing a tool.
func (t Tool) Package() (string, error) {
	s, ok := specs[t]
	if !ok {
		return "", fmt.Errorf("core: unknown tool %q", t)
	}
	return s.pkg, nil
}

// Recipe generates the Singularity definition file for a tool. These are
// the "build recipes on GitHub" of the paper.
func Recipe(t Tool) (*recipe.Recipe, error) {
	s, ok := specs[t]
	if !ok {
		return nil, fmt.Errorf("core: unknown tool %q", t)
	}
	src := fmt.Sprintf(`Bootstrap: library
From: centos:7.4

%%help
    Containerized %s modelling tool.
    Bind a model directory to /data and pass the model path plus
    analysis arguments: run <model> [analysis args...].

%%labels
    Maintainer repro
    Tool %s
    SingularityVersion 2.5.2

%%environment
    export LC_ALL=C

%%post
    pkg install %s
    mkdir -p /data /usr/local/bin
    echo '#!app:%s' > %s
    chmod 755 %s

%%runscript
    %s $ARG1 $ARG2 $ARG3 $ARG4 $ARG5 $ARG6 $ARG7 $ARG8

%%test
    %s
`, t, t, s.pkg, s.app, s.binary, s.binary, s.binary, s.testCmd)
	return recipe.Parse(src)
}

// Framework is the reproducibility harness.
type Framework struct {
	Engine *runtime.Engine
	// Collection is the hub collection name ("pepa-containers" mirrors the
	// paper's Singularity-Hub collection 2351).
	Collection string
	// Obs, when non-nil, receives one span per pipeline stage per tool
	// (build, push, validate runs, matrix cells). Span methods are
	// nil-safe, so an uninstrumented framework pays nothing.
	Obs *obs.Registry
}

// SetObs attaches a metrics registry to the framework and its engine.
func (f *Framework) SetObs(reg *obs.Registry) {
	f.Obs = reg
	if f.Engine != nil {
		f.Engine.Obs = reg
	}
}

// New creates a framework with all applications registered.
func New() *Framework {
	e := runtime.NewEngine()
	apps.RegisterAll(e)
	return &Framework{Engine: e, Collection: "pepa-containers"}
}

// Build builds the container for one tool on a host.
func (f *Framework) Build(t Tool, host *hostenv.Host) (*runtime.BuildResult, error) {
	return f.BuildCtx(context.Background(), t, host)
}

// BuildCtx is Build with cooperative cancellation threaded into the
// engine's stage boundaries.
func (f *Framework) BuildCtx(ctx context.Context, t Tool, host *hostenv.Host) (*runtime.BuildResult, error) {
	rcp, err := Recipe(t)
	if err != nil {
		return nil, err
	}
	return f.Engine.BuildCtx(ctx, rcp, host, runtime.BuildContext{}, string(t), "latest")
}

// BuildAll builds the paper's three containers in parallel (the builds share only
// read-only engine state; digests are content-addressed, so concurrency
// cannot change the result), returning results keyed by tool.
func (f *Framework) BuildAll(host *hostenv.Host) (map[Tool]*runtime.BuildResult, error) {
	return f.BuildAllCtx(context.Background(), host)
}

// BuildAllCtx is BuildAll with cooperative cancellation: no new build
// starts once ctx is done, and running builds stop at their next stage
// boundary. An interrupted run returns a *runctx.ErrCanceled whose
// Partial is the map of builds that did complete.
func (f *Framework) BuildAllCtx(ctx context.Context, host *hostenv.Host) (map[Tool]*runtime.BuildResult, error) {
	tools := Tools()
	stage := f.Obs.StartSpan("core.build_all")
	defer stage.End()
	results, err := par.MapOpt(len(tools), par.Options{Ctx: ctx}, func(i int) (*runtime.BuildResult, error) {
		sp := stage.StartSpan("build:" + string(tools[i]))
		defer sp.End()
		res, err := f.BuildCtx(ctx, tools[i], host)
		if err != nil {
			return nil, fmt.Errorf("core: building %s: %w", tools[i], err)
		}
		return res, nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			partial := map[Tool]*runtime.BuildResult{}
			for i, t := range tools {
				if results[i] != nil {
					partial[t] = results[i]
				}
			}
			runctx.Record(f.Obs, "core.build-all", cerr)
			ec := runctx.New("core.build-all", cerr, len(partial), len(tools), "builds")
			ec.Partial = partial
			return nil, ec
		}
		var merr *par.MultiError
		if errors.As(err, &merr) && len(merr.Errs) > 0 {
			return nil, fmt.Errorf("par: %w", merr.Errs[0])
		}
		return nil, err
	}
	out := map[Tool]*runtime.BuildResult{}
	for i, t := range tools {
		out[t] = results[i]
	}
	return out, nil
}

// PushAll pushes built images to a hub, returning digests by tool. It
// degrades gracefully: every tool is attempted (panics included — the
// pool supervises them), and on failure the partial digest map is
// returned together with a *par.MultiError aggregating every per-tool
// failure.
func (f *Framework) PushAll(client *hub.Client, builds map[Tool]*runtime.BuildResult) (map[Tool]string, error) {
	tools := Tools()
	perTool := make([]string, len(tools))
	stage := f.Obs.StartSpan("core.push_all")
	defer stage.End()
	err := par.ForEachOpt(len(tools), par.Options{}, func(i int) error {
		t := tools[i]
		sp := stage.StartSpan("push:" + string(t))
		defer sp.End()
		b, ok := builds[t]
		if !ok {
			return fmt.Errorf("core: no build for %s", t)
		}
		d, err := client.Push(f.Collection, b.Image)
		if err != nil {
			return fmt.Errorf("core: pushing %s: %w", t, err)
		}
		perTool[i] = d
		return nil
	})
	digests := map[Tool]string{}
	for i, t := range tools {
		if perTool[i] != "" {
			digests[t] = perTool[i]
		}
	}
	return digests, err
}

// modelDir is where Validate places model files on the host, bound to
// /data inside the container.
const (
	hostModelDir      = "/home/modeler/models"
	containerModelDir = "/data"
)

// ValidationReport is the outcome of one native-vs-container comparison.
type ValidationReport struct {
	Tool         Tool
	Host         string
	ModelPath    string
	Args         []string
	NativeOut    string
	ContainerOut string
	Match        bool
	Digest       string
}

// Validate runs a model through a tool both natively and inside its
// container on the same host and compares the outputs byte for byte —
// the Fig 1 / Fig 5 validation methodology.
func (f *Framework) Validate(t Tool, host *hostenv.Host, img *image.Image, modelName, modelSrc string, args ...string) (*ValidationReport, error) {
	return f.ValidateWithFiles(t, host, img, modelName, map[string]string{modelName: modelSrc}, args...)
}

// ValidateWithFiles is Validate for tools needing several input files
// (e.g. the model checker's model + properties): every file in files is
// written to the host model directory and bound to /data; mainFile names
// the first argument; extra args that name files must use their bare file
// names (they are rewritten per run location).
func (f *Framework) ValidateWithFiles(t Tool, host *hostenv.Host, img *image.Image, mainFile string, files map[string]string, args ...string) (*ValidationReport, error) {
	s, ok := specs[t]
	if !ok {
		return nil, fmt.Errorf("core: unknown tool %q", t)
	}
	if _, ok := files[mainFile]; !ok {
		return nil, fmt.Errorf("core: main file %q not among provided files", mainFile)
	}
	if err := host.FS.MkdirAll(hostModelDir, 0o755); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	isFile := map[string]bool{}
	for _, name := range names {
		if err := host.FS.WriteFile(hostModelDir+"/"+name, []byte(files[name]), 0o644); err != nil {
			return nil, err
		}
		isFile[name] = true
	}
	qualify := func(dir string) []string {
		out := []string{dir + "/" + mainFile}
		for _, a := range args {
			if isFile[a] {
				out = append(out, dir+"/"+a)
			} else {
				out = append(out, a)
			}
		}
		return out
	}
	hostPath := hostModelDir + "/" + mainFile
	stage := f.Obs.StartSpan("core.validate:" + string(t))
	defer stage.End()
	nativeSpan := stage.StartSpan("native_run")
	nativeOut, err := f.Engine.NativeRun(s.app, qualify(hostModelDir), host)
	nativeSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: native run of %s on %s: %w", t, host.Name, err)
	}
	containerSpan := stage.StartSpan("container_run")
	run, err := f.Engine.Run(img, host, runtime.RunOptions{
		Isolation: runtime.IsolationSingularity,
		Args:      qualify(containerModelDir),
		Binds:     []runtime.Bind{{HostPath: hostModelDir, ContainerPath: containerModelDir}},
	})
	containerSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: container run of %s on %s: %w", t, host.Name, err)
	}
	// The only permitted difference is the model path echoed nowhere in
	// our report formats, so outputs must be identical.
	digest, err := img.Digest()
	if err != nil {
		return nil, err
	}
	return &ValidationReport{
		Tool: t, Host: host.Name, ModelPath: hostPath, Args: args,
		NativeOut: nativeOut, ContainerOut: run.Stdout,
		Match:  nativeOut == run.Stdout,
		Digest: digest,
	}, nil
}

// FailureClass tags a failed matrix cell with the retry taxonomy of
// docs/RESILIENCE.md.
type FailureClass string

const (
	// FailureTransient cells failed on infrastructure weather
	// (connection errors, 5xx, corrupt transfers) and may pass on a
	// re-run.
	FailureTransient FailureClass = "transient"
	// FailureDeterministic cells will fail identically every run
	// (bad configuration, malformed images, panics).
	FailureDeterministic FailureClass = "deterministic"
	// FailureCanceled cells were never computed because the run's
	// context was canceled or hit its deadline; a re-run with a fresh
	// context computes them normally.
	FailureCanceled FailureClass = "canceled"
)

// MatrixEntry is one cell of the cross-platform validation matrix.
type MatrixEntry struct {
	Tool   Tool
	Host   string
	Digest string
	// DigestMatch: the pulled image's digest equals the build digest.
	DigestMatch bool
	// OutputMatch: the containerized output on this host equals the
	// containerized output on the build host.
	OutputMatch bool
	// NativeInstallOK: whether installing the tool natively from this
	// host's own repository would have succeeded (the motivation column).
	NativeInstallOK bool
	NativeErr       string
	// Err, when non-empty, records why this cell could not be computed;
	// the matrix run continues past it (partial report).
	Err string
	// FailureClass classifies Err as transient vs deterministic.
	FailureClass FailureClass
	// Attempts is the hub client's attempt log for this cell's pull,
	// when the failure happened in the distribution layer.
	Attempts []string
}

// Failed reports whether the cell could not be computed.
func (e *MatrixEntry) Failed() bool { return e.Err != "" }

// failCell marks an entry as failed, classifying the error and, for hub
// failures, attaching the relevant slice of the client attempt log.
func failCell(entry MatrixEntry, client *hub.Client, op string, err error) MatrixEntry {
	entry.Err = err.Error()
	entry.FailureClass = FailureDeterministic
	if hub.Classify(err) == hub.ClassTransient {
		entry.FailureClass = FailureTransient
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		entry.FailureClass = FailureCanceled
	}
	if client != nil && op != "" {
		entry.Attempts = client.AttemptsMatching(op)
	}
	return entry
}

// ValidationMatrix reproduces the §III experiment: build all containers on
// the build host, push them to a hub, then on every profile pull (with
// digest verification) and run the canned example model, comparing output
// against the build host's run. It also records whether a native install
// would have succeeded on each profile.
//
// The matrix degrades gracefully under partial failure: a failing push,
// pull, run, or even a panicking task yields a classified MatrixEntry
// (transient vs deterministic, with the hub attempt log) while the rest
// of the matrix completes. Only build-host setup failures — without
// which there is nothing to compare against — abort the whole run.
func (f *Framework) ValidationMatrix(client *hub.Client) ([]MatrixEntry, error) {
	return f.ValidationMatrixCtx(context.Background(), client)
}

// ValidationMatrixCtx is ValidationMatrix with cooperative cancellation.
// Cancellation mid-run degrades exactly like any other partial failure:
// cells not yet computed are skipped, cells interrupted in flight are
// classified FailureCanceled, and the computed rows are returned as the
// Partial of a *runctx.ErrCanceled.
func (f *Framework) ValidationMatrixCtx(ctx context.Context, client *hub.Client) ([]MatrixEntry, error) {
	builder, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		return nil, err
	}
	if err := builder.InstallSingularity(); err != nil {
		return nil, err
	}
	builds, err := f.BuildAllCtx(ctx, builder)
	if err != nil {
		return nil, err
	}
	matrix := f.Obs.StartSpan("core.validation_matrix")
	defer matrix.End()
	// Push serially so the hub attempt log stays in tool order; failures
	// are recorded per tool instead of aborting.
	digests := map[Tool]string{}
	toolErr := map[Tool]error{}
	pushSpan := matrix.StartSpan("push")
	for _, t := range Tools() {
		if cerr := ctx.Err(); cerr != nil {
			toolErr[t] = fmt.Errorf("core: pushing %s: %w", t, cerr)
			continue
		}
		d, err := client.Push(f.Collection, builds[t].Image)
		if err != nil {
			toolErr[t] = fmt.Errorf("core: pushing %s: %w", t, err)
			continue
		}
		digests[t] = d
	}
	pushSpan.End()
	// Reference outputs from the build host.
	refSpan := matrix.StartSpan("reference_runs")
	reference := map[Tool]string{}
	if err := builder.FS.MkdirAll(hostModelDir, 0o755); err != nil {
		return nil, err
	}
	for _, t := range Tools() {
		if toolErr[t] != nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			toolErr[t] = fmt.Errorf("core: reference run of %s: %w", t, cerr)
			continue
		}
		ex := ExampleModel(t)
		if err := builder.FS.WriteFile(hostModelDir+"/"+ex.Name, []byte(ex.Source), 0o644); err != nil {
			return nil, err
		}
		run, err := f.Engine.Run(builds[t].Image, builder, runtime.RunOptions{
			Isolation: runtime.IsolationSingularity,
			Args:      append([]string{containerModelDir + "/" + ex.Name}, ex.Args...),
			Binds:     []runtime.Bind{{HostPath: hostModelDir, ContainerPath: containerModelDir}},
		})
		if err != nil {
			toolErr[t] = fmt.Errorf("core: reference run of %s: %w", t, err)
			continue
		}
		reference[t] = run.Stdout
	}
	refSpan.End()
	// The host profiles are independent (each gets a fresh filesystem and
	// its own pulls over the concurrency-safe HTTP client), so the matrix
	// rows compute in parallel — one worker per host, rows assembled in
	// profile order. The per-host fn never returns an error: every
	// failure lands in its cell.
	names := hostenv.Names()
	perHost, err := par.MapOpt(len(names), par.Options{Ctx: ctx}, func(h int) ([]MatrixEntry, error) {
		name := names[h]
		rows := make([]MatrixEntry, 0, len(Tools()))
		host, herr := hostenv.ByName(name)
		if herr == nil {
			if ierr := host.InstallSingularity(); ierr != nil {
				herr = fmt.Errorf("core: installing runtime on %s: %w", name, ierr)
			}
		}
		for _, t := range Tools() {
			entry := MatrixEntry{Tool: t, Host: name}
			switch {
			case herr != nil:
				rows = append(rows, failCell(entry, nil, "", herr))
			case toolErr[t] != nil:
				rows = append(rows, failCell(entry, nil, "", toolErr[t]))
			default:
				rows = append(rows, f.matrixCell(ctx, matrix, client, host, name, t, digests[t], reference[t]))
			}
		}
		return rows, nil
	})
	var out []MatrixEntry
	for _, rows := range perHost {
		out = append(out, rows...)
	}
	if cerr := ctx.Err(); cerr != nil {
		runctx.Record(f.Obs, "core.validation-matrix", cerr)
		ec := runctx.New("core.validation-matrix", cerr, len(out), len(names)*len(Tools()), "cells")
		ec.Partial = out
		return out, ec
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// matrixCell computes one (host, tool) cell. It is panic-supervised:
// a panicking pull or run yields a deterministic-classified failure
// entry instead of killing the matrix worker.
func (f *Framework) matrixCell(ctx context.Context, parent *obs.Span, client *hub.Client, host *hostenv.Host, hostName string, t Tool, wantDigest, reference string) (entry MatrixEntry) {
	entry = MatrixEntry{Tool: t, Host: hostName}
	sp := parent.StartSpan(fmt.Sprintf("cell:%s/%s", hostName, t))
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			entry.Err = fmt.Sprintf("panic: %v", r)
			entry.FailureClass = FailureDeterministic
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return failCell(entry, nil, "", fmt.Errorf("core: cell %s/%s: %w", hostName, t, cerr))
	}
	pkg, _ := t.Package()
	probe := host.Clone()
	if nerr := probe.NativeInstall(pkg); nerr != nil {
		entry.NativeErr = nerr.Error()
	} else {
		entry.NativeInstallOK = true
	}
	pullOp := fmt.Sprintf("pull %s/%s:latest", f.Collection, t)
	img, gotDigest, err := client.Pull(f.Collection, string(t), "latest", wantDigest)
	if err != nil {
		return failCell(entry, client, pullOp, fmt.Errorf("core: pulling %s on %s: %w", t, hostName, err))
	}
	entry.Digest = gotDigest
	entry.DigestMatch = gotDigest == wantDigest
	ex := ExampleModel(t)
	if err := host.FS.MkdirAll(hostModelDir, 0o755); err != nil {
		return failCell(entry, nil, "", err)
	}
	if err := host.FS.WriteFile(hostModelDir+"/"+ex.Name, []byte(ex.Source), 0o644); err != nil {
		return failCell(entry, nil, "", err)
	}
	run, err := f.Engine.Run(img, host, runtime.RunOptions{
		Isolation: runtime.IsolationSingularity,
		Args:      append([]string{containerModelDir + "/" + ex.Name}, ex.Args...),
		Binds:     []runtime.Bind{{HostPath: hostModelDir, ContainerPath: containerModelDir}},
	})
	if err != nil {
		return failCell(entry, nil, "", fmt.Errorf("core: running %s on %s: %w", t, hostName, err))
	}
	entry.OutputMatch = run.Stdout == reference
	return entry
}

// FormatMatrix renders the validation matrix as a text table. Cells
// that could not be computed render ERR columns followed by indented
// classification and attempt-log detail lines — the partial report.
func FormatMatrix(entries []MatrixEntry) string {
	var b strings.Builder
	b.WriteString("host\ttool\tnative-install\tdigest-ok\toutput-ok\n")
	failed := 0
	for _, e := range entries {
		native := "FAIL"
		if e.NativeInstallOK {
			native = "ok"
		}
		if e.Failed() {
			failed++
			fmt.Fprintf(&b, "%s\t%s\t%s\tERR\tERR\n", e.Host, e.Tool, native)
			fmt.Fprintf(&b, "    !! %s failure: %s\n", e.FailureClass, e.Err)
			for _, a := range e.Attempts {
				fmt.Fprintf(&b, "       %s\n", a)
			}
			continue
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%v\t%v\n", e.Host, e.Tool, native, e.DigestMatch, e.OutputMatch)
	}
	if failed > 0 {
		fmt.Fprintf(&b, "partial report: %d/%d cells failed\n", failed, len(entries))
	}
	return b.String()
}
