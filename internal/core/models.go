package core

// Example is a canned model with default analysis arguments, used by the
// container validation runs.
type Example struct {
	Name   string   // file name, e.g. "simple.pepa"
	Source string   // model text
	Args   []string // analysis arguments passed after the model path
}

// SimplePEPAModel is the Fig 1 validation model: a worker/repairman-style
// two-component system small enough to eyeball, exercising prefix, choice,
// cooperation, and passive rates.
const SimplePEPAModel = `// Fig 1 validation model: a processor serving jobs with occasional faults.
lambda = 2.0;   // job arrival
mu     = 3.0;   // service
phi    = 0.1;   // fault
rho    = 1.0;   // repair

Proc      = (serve, mu).Proc + (fault, phi).ProcDown;
ProcDown  = (repair, rho).Proc;
Jobs      = (serve, T).Jobs + (arrive, lambda).Jobs;

Proc <serve> Jobs
`

// ActiveBadgeModel is a rendition of the PEPA Active Badge example
// (Clark/Gilmore/Hillston) from the Edinburgh PEPA examples page used in
// §III: a person moving through three corridors wearing a badge that
// reports location to a database.
const ActiveBadgeModel = `// Active Badge model (3 corridors, 1 person, 1 database).
m = 0.2;  // move rate
r = 0.5;  // badge report rate
p = 1.0;  // database processing

P1 = (move12, m).P2 + (rep1, r).P1;
P2 = (move23, m).P3 + (rep2, r).P2;
P3 = (move31, m).P1 + (rep3, r).P3;

DB = (rep1, T).DB1 + (rep2, T).DB2 + (rep3, T).DB3;
DB1 = (proc, p).DB;
DB2 = (proc, p).DB;
DB3 = (proc, p).DB;

P1 <rep1,rep2,rep3> DB
`

// AlternatingBitModel is a rendition of the alternating-bit protocol
// example (Edwards, PREP 2001) used in the paper's container validation:
// a sender/receiver pair over a lossy channel with acknowledgements.
const AlternatingBitModel = `// Alternating bit protocol over a lossy channel.
s  = 4.0;  // send rate
a  = 4.0;  // ack rate
l  = 0.5;  // loss rate
to = 1.0;  // timeout/resend

// The sender accepts late acknowledgements in every state (after a
// timeout the pending ack may still arrive); ignoring them would deadlock
// the cooperation.
Send0 = (msg0, s).WaitAck0 + (ack0, T).Send1 + (ack1, T).Send0;
WaitAck0 = (ack0, T).Send1 + (ack1, T).WaitAck0 + (timeout0, to).Send0;
Send1 = (msg1, s).WaitAck1 + (ack1, T).Send0 + (ack0, T).Send1;
WaitAck1 = (ack1, T).Send0 + (ack0, T).WaitAck1 + (timeout1, to).Send1;

Chan = (msg0, T).Deliver0 + (msg1, T).Deliver1;
Deliver0 = (recv0, s).AckBack0 + (drop0, l).Chan;
Deliver1 = (recv1, s).AckBack1 + (drop1, l).Chan;
AckBack0 = (ack0, a).Chan;
AckBack1 = (ack1, a).Chan;

Send0 <msg0,msg1,ack0,ack1> Chan
`

// PCLAN4Model is a rendition of the "PC LAN 4" model from the Edinburgh
// PEPA examples page used in §III: four workstations contending for a
// shared medium; each station thinks, then transmits while holding the
// channel exclusively.
const PCLAN4Model = `// PC LAN with 4 stations contending for one shared medium: after each
// transmission the medium is busy propagating the frame, during which no
// other station can transmit.
think = 0.4;  // per-station think rate
tx    = 2.0;  // transmission rate
prop  = 5.0;  // propagation/recovery rate of the medium

PC1 = (think1, think).PC1w; PC1w = (tx1, tx).PC1;
PC2 = (think2, think).PC2w; PC2w = (tx2, tx).PC2;
PC3 = (think3, think).PC3w; PC3w = (tx3, tx).PC3;
PC4 = (think4, think).PC4w; PC4w = (tx4, tx).PC4;

Medium = (tx1, T).Busy + (tx2, T).Busy + (tx3, T).Busy + (tx4, T).Busy;
Busy   = (propagate, prop).Medium;

(((PC1 || PC2) || PC3) || PC4) <tx1,tx2,tx3,tx4> Medium
`

// EnzymeBioPEPAModel is the enzyme-kinetics validation model from the
// Bio-PEPA users' manual: E + S <-> ES -> E + P with mass-action kinetics.
const EnzymeBioPEPAModel = `// Bio-PEPA users' manual: basic enzyme kinetics.
k1 = 0.002;
k2 = 0.1;
k3 = 0.05;

kineticLawOf bind    : fMA(k1);
kineticLawOf unbind  : fMA(k2);
kineticLawOf convert : fMA(k3);

S  = (bind, 1) << + (unbind, 1) >>;
E  = (bind, 1) << + (unbind, 1) >> + (convert, 1) >>;
ES = (bind, 1) >> + (unbind, 1) << + (convert, 1) <<;
P  = (convert, 1) >>;

S[200] <*> E[50] <*> ES[0] <*> P[0]
`

// InhibitedBioPEPAModel adds a competitive inhibitor to the enzyme system
// (the second manual example the paper validates with).
const InhibitedBioPEPAModel = `// Bio-PEPA users' manual: enzyme kinetics with inhibitor.
k1 = 0.002;
k2 = 0.1;
k3 = 0.05;

kineticLawOf bind    : fMA(k1);
kineticLawOf unbind  : fMA(k2);
kineticLawOf convert : fMA(k3);

S  = (bind, 1) << + (unbind, 1) >>;
E  = (bind, 1) << + (unbind, 1) >> + (convert, 1) >>;
ES = (bind, 1) >> + (unbind, 1) << + (convert, 1) <<;
P  = (convert, 1) >>;
I  = (bind, 1) (-);

S[200] <*> E[50] <*> ES[0] <*> P[0] <*> I[100]
`

// ClientServerGPEPAModel is the clientServerScalability.gpepa example
// bundled with GPAnalyser (Fig 5): clients issuing requests to a server
// pool, with the servers "rewarded for satisfying requests".
const ClientServerGPEPAModel = `// GPAnalyser example: client/server scalability.
rr = 2.0;    // client request rate
rt = 0.27;   // client think rate
rs = 4.0;    // server service rate
rb = 1.0;    // server logging rate

Client = (request, rr).Client_think;
Client_think = (think, rt).Client;

Server = (request, rs).Server_log;
Server_log = (log, rb).Server;

Clients{Client[100]} <request> Servers{Server[10]}
`

// ClientServerPowerGPEPAModel is the companion power-consumption example:
// servers toggle between active and low-power states.
const ClientServerPowerGPEPAModel = `// GPAnalyser example: client/server power consumption.
rr = 1.5;
rt = 0.3;
rs = 3.0;
sleep = 0.2;
wake  = 0.8;

Client = (request, rr).Client_think;
Client_think = (think, rt).Client;

Server = (request, rs).Server + (doze, sleep).Server_sleep;
Server_sleep = (wakeup, wake).Server;

Clients{Client[80]} <request> Servers{Server[12]}
`

// ExampleModel returns the canned validation model for a tool.
func ExampleModel(t Tool) Example {
	switch t {
	case ToolPEPA:
		return Example{Name: "simple.pepa", Source: SimplePEPAModel}
	case ToolBioPEPA:
		return Example{Name: "enzyme.biopepa", Source: EnzymeBioPEPAModel, Args: []string{"ode", "50", "10"}}
	case ToolGPA:
		return Example{Name: "clientServerScalability.gpepa", Source: ClientServerGPEPAModel, Args: []string{"fluid", "50", "10"}}
	default:
		return Example{}
	}
}
