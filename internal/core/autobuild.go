package core

import (
	"fmt"

	"repro/internal/hostenv"
	"repro/internal/hub"
	"repro/internal/image"
	"repro/internal/recipe"
	"repro/internal/recipestore"
	"repro/internal/runtime"
)

// HubBuilder adapts the framework's engine to the hub's auto-build
// interface: the hub builds pushed recipes itself on a dedicated build
// host, so every published image provably corresponds to a published
// recipe (Singularity-Hub's operating model).
type HubBuilder struct {
	Engine *runtime.Engine
	Host   *hostenv.Host
}

// NewHubBuilder prepares a builder on the standard build host.
func (f *Framework) NewHubBuilder() (*HubBuilder, error) {
	host, err := hostenv.ByName(hostenv.BuildHost)
	if err != nil {
		return nil, err
	}
	if err := host.InstallSingularity(); err != nil {
		return nil, err
	}
	return &HubBuilder{Engine: f.Engine, Host: host}, nil
}

// BuildFromRecipe implements hub.Builder.
func (b *HubBuilder) BuildFromRecipe(recipeSrc, name, tag string) (*image.Image, error) {
	rcp, err := recipe.Parse(recipeSrc)
	if err != nil {
		return nil, err
	}
	res, err := b.Engine.Build(rcp, b.Host, runtime.BuildContext{}, name, tag)
	if err != nil {
		return nil, err
	}
	return res.Image, nil
}

// CommitRecipes commits all three tool recipes to a recipe store (the
// version-controlled "GitHub" artifact).
func (f *Framework) CommitRecipes(store *recipestore.Store, author, message string) (*recipestore.Commit, error) {
	changes := map[string]string{}
	for _, t := range Tools() {
		rcp, err := Recipe(t)
		if err != nil {
			return nil, err
		}
		changes[string(t)+"/Singularity"] = rcp.Source
	}
	return store.Commit(author, message, changes)
}

// PublishFromStore checks a recipe out of a specific commit and asks the
// hub to build and publish it — rebuildable provenance from recipe history
// to published digest.
func (f *Framework) PublishFromStore(client *hub.Client, store *recipestore.Store, commitHash string, t Tool, tag string) (string, error) {
	src, err := store.Checkout(commitHash, string(t)+"/Singularity")
	if err != nil {
		return "", err
	}
	digest, err := client.RemoteBuild(f.Collection, string(t), tag, src)
	if err != nil {
		return "", fmt.Errorf("core: remote build of %s@%s: %w", t, commitHash[:12], err)
	}
	return digest, nil
}
