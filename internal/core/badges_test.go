package core

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/hub"
)

func TestAssessBadgesAllEarned(t *testing.T) {
	f := New()
	ts := httptest.NewServer(hub.NewServer(hub.NewStore()).Handler())
	defer ts.Close()
	report, err := f.AssessBadges(hub.NewClient(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(report.Results))
	}
	earned := report.Earned()
	if len(earned) != 5 {
		t.Errorf("earned %d badges, want all 5:\n%s", len(earned), report)
	}
	out := report.String()
	for _, want := range []string{
		"Functional", "Reusable", "Available", "Replicated", "Reproduced",
		"byte-identical to native",
		"user-supplied model",
		"digest verified",
		"reproduces the build host's results",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Every earned line carries its evidence.
	if strings.Count(out, "[✓]") != 5 {
		t.Errorf("report marks:\n%s", out)
	}
}

func TestBadgeReportRendersFailures(t *testing.T) {
	r := &BadgeReport{Results: []BadgeResult{
		{Badge: BadgeFunctional, Earned: true, Evidence: []string{"ok"}},
		{Badge: BadgeAvailable, Earned: false, Evidence: []string{"pull failed"}},
	}}
	out := r.String()
	if !strings.Contains(out, "[✓] Artifacts Evaluated — Functional") {
		t.Errorf("out:\n%s", out)
	}
	if !strings.Contains(out, "[✗] Artifacts Available") {
		t.Errorf("out:\n%s", out)
	}
	if len(r.Earned()) != 1 {
		t.Errorf("earned = %v", r.Earned())
	}
}
