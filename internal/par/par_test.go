package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	err := ForEach(100, 8, func(i int) error {
		count.Add(1)
		if seen[i].Swap(true) {
			return fmt.Errorf("index %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", count.Load())
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Error(err)
	}
	if err := ForEach(-3, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Error(err)
	}
}

func TestForEachSequentialPath(t *testing.T) {
	var order []int
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Errorf("sequential path out of order: %v", order)
		}
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	err := ForEach(10, 4, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 3") {
		t.Errorf("err = %v, want task 3", err)
	}
}

func TestForEachAllTasksRunDespiteError(t *testing.T) {
	var count atomic.Int64
	ForEach(50, 8, func(i int) error {
		count.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if count.Load() != 50 {
		t.Errorf("only %d tasks ran after early failure", count.Load())
	}
}

func TestMapCollectsByIndex(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(3, 2, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("no")
		}
		return i, nil
	}); err == nil {
		t.Error("Map swallowed an error")
	}
}

func TestParallelEqualsSequentialProperty(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		workers := int(wRaw%8) + 1
		seq, err1 := Map(n, 1, func(i int) (int, error) { return 3*i + 1, nil })
		parOut, err2 := Map(n, workers, func(i int) (int, error) { return 3*i + 1, nil })
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range seq {
			if seq[i] != parOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
