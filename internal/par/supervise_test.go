package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicBecomesError is the supervision guarantee: a panicking task
// surfaces as a *PanicError carrying the panic value and a stack
// fragment, and every other task still runs.
func TestPanicBecomesError(t *testing.T) {
	var count atomic.Int64
	err := ForEach(20, 4, func(i int) error {
		count.Add(1)
		if i == 5 {
			panic("solver exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 5 || pe.Value != "solver exploded" {
		t.Errorf("PanicError = {Index: %d, Value: %v}", pe.Index, pe.Value)
	}
	if !strings.Contains(pe.Stack, "supervise_test.go") {
		t.Errorf("stack fragment does not reach the panic site:\n%s", pe.Stack)
	}
	if count.Load() != 20 {
		t.Errorf("only %d/20 tasks ran after the panic", count.Load())
	}
}

// TestPanicDoesNotDeadlock guards the original bug: a panic in a worker
// used to kill the goroutine mid-loop and hang the dispatcher. With
// more tasks than workers and every task panicking, the pool must still
// drain and return.
func TestPanicDoesNotDeadlock(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- ForEach(100, 2, func(i int) error { panic(i) })
	}()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 0 {
			t.Errorf("err = %v, want task 0's PanicError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool deadlocked after worker panics")
	}
}

func TestPanicSequentialPath(t *testing.T) {
	err := ForEach(3, 1, func(i int) error {
		if i == 1 {
			panic(errors.New("wrapped panic value"))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("err = %v, want task 1's PanicError", err)
	}
}

func TestForEachOptAggregatesAllFailures(t *testing.T) {
	err := ForEachOpt(10, Options{Workers: 4}, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	var m *MultiError
	if !errors.As(err, &m) {
		t.Fatalf("err = %T %v, want *MultiError", err, err)
	}
	if m.Total != 10 || len(m.Errs) != 4 {
		t.Fatalf("MultiError = {Total: %d, failures: %d}, want 10 and 4", m.Total, len(m.Errs))
	}
	for i, want := range []string{"task 0", "task 3", "task 6", "task 9"} {
		if !strings.Contains(m.Errs[i].Error(), want) {
			t.Errorf("Errs[%d] = %v, want %s (index order)", i, m.Errs[i], want)
		}
	}
	if !strings.Contains(m.Error(), "4/10 tasks failed") || !strings.Contains(m.Error(), "and 1 more") {
		t.Errorf("summary = %q", m.Error())
	}
}

func TestForEachOptNilOnSuccess(t *testing.T) {
	if err := ForEachOpt(8, Options{Workers: 3}, func(int) error { return nil }); err != nil {
		t.Error(err)
	}
}

func TestFailFastSkipsRemainingTasks(t *testing.T) {
	var count atomic.Int64
	err := ForEachOpt(1000, Options{Workers: 2, FailFast: true}, func(i int) error {
		count.Add(1)
		return fmt.Errorf("boom %d", i)
	})
	if err == nil {
		t.Fatal("failures swallowed")
	}
	if n := count.Load(); n >= 1000 {
		t.Errorf("fail-fast dispatched all %d tasks", n)
	}
}

func TestFailFastSequential(t *testing.T) {
	var count int
	ForEachOpt(10, Options{Workers: 1, FailFast: true}, func(i int) error {
		count++
		if i == 2 {
			return errors.New("stop here")
		}
		return nil
	})
	if count != 3 {
		t.Errorf("sequential fail-fast ran %d tasks, want 3", count)
	}
}

func TestMapOptReturnsPartialResults(t *testing.T) {
	out, err := MapOpt(6, Options{Workers: 3}, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("no")
		}
		if i == 4 {
			panic("worse")
		}
		return i * 10, nil
	})
	var m *MultiError
	if !errors.As(err, &m) || len(m.Errs) != 2 {
		t.Fatalf("err = %v, want MultiError with 2 failures", err)
	}
	want := []int{0, 10, 0, 30, 0, 50}
	for i, v := range out {
		if v != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, v, want[i])
		}
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 4 {
		t.Errorf("panic not surfaced through MultiError: %v", err)
	}
}

func TestErrorsIsThroughMultiError(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEachOpt(3, Options{Workers: 2}, func(i int) error {
		if i == 1 {
			return fmt.Errorf("wrapping: %w", sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is failed through MultiError: %v", err)
	}
}
