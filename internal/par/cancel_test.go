package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// Cancellation mid-run: tasks dispatched after ctx is done are skipped
// with their error slot set to ctx.Err(); already-dispatched tasks run
// to completion.
func TestCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		gate := make(chan struct{})
		const n = 64
		err := ForEachOpt(n, Options{Workers: workers, Ctx: ctx}, func(i int) error {
			if i == 0 {
				cancel()
				close(gate)
			} else {
				<-gate // no task outruns the cancellation in task 0
			}
			ran.Add(1)
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want MultiError for skipped tasks", workers)
		}
		var m *MultiError
		if !errors.As(err, &m) {
			t.Fatalf("workers=%d: error type %T", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: errors.Is(err, context.Canceled) = false: %v", workers, err)
		}
		// At most the in-flight tasks plus one select-race straggler may
		// still run; the dispatcher's pre-check stops everything after.
		if got := int(ran.Load()); got > workers+1 {
			t.Fatalf("workers=%d: %d tasks ran after cancellation, want <= %d", workers, got, workers+1)
		}
		if len(m.Errs)+int(ran.Load()) != n {
			t.Fatalf("workers=%d: %d skipped + %d ran != %d", workers, len(m.Errs), ran.Load(), n)
		}
	}
}

// An unset or never-canceled context changes nothing: all tasks run.
func TestCtxNilOrLiveRunsAll(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int32
		if err := ForEachOpt(16, Options{Workers: 4, Ctx: ctx}, func(i int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 16 {
			t.Fatalf("ran %d/16", ran.Load())
		}
	}
}
