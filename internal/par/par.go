// Package par provides the bounded worker-pool primitive used to
// parallelize embarrassingly parallel work across the toolchain:
// simulation ensembles, parameter sweeps, container build fan-out, and the
// cross-platform validation matrix. Results are always assembled by index,
// so parallel execution is bit-identical to sequential execution — the
// property the reproducibility harness depends on.
//
// The pool is supervised: a panicking task is recovered in its worker and
// converted to a *PanicError carrying a stack fragment, so one bad task
// can neither crash the process nor deadlock the dispatcher. Options adds
// an opt-in fail-fast mode and ForEachOpt/MapOpt aggregate every failure
// into a *MultiError instead of reporting only the first.
package par

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// PanicError is a task panic converted to an error by the worker pool.
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered panic value
	Stack string // trimmed stack fragment of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// MultiError aggregates the failures of one parallel run, ordered by
// task index. Errs entries wrap the task errors with their indices.
type MultiError struct {
	Total int // number of tasks in the run
	Errs  []error
}

func (e *MultiError) Error() string {
	const show = 3
	msgs := make([]string, 0, show+1)
	for i, err := range e.Errs {
		if i == show {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(e.Errs)-show))
			break
		}
		msgs = append(msgs, err.Error())
	}
	return fmt.Sprintf("par: %d/%d tasks failed: %s", len(e.Errs), e.Total, strings.Join(msgs, "; "))
}

// Unwrap exposes the per-task errors to errors.Is/As.
func (e *MultiError) Unwrap() []error { return e.Errs }

// Options tunes a supervised run.
type Options struct {
	// Workers bounds concurrency (<= 0 means GOMAXPROCS).
	Workers int
	// FailFast stops dispatching new tasks after the first failure.
	// In-flight tasks still run to completion; undispatched tasks are
	// simply skipped (their error slots stay nil).
	FailFast bool
	// Ctx, when non-nil, stops dispatching new tasks once the context
	// is done; each undispatched task's error slot is set to ctx.Err()
	// so callers can tell "skipped by cancellation" from "succeeded".
	// In-flight tasks run to completion — they are expected to poll the
	// same context themselves at their own boundaries.
	Ctx context.Context
}

// safeCall runs one task with panic supervision.
func safeCall(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8<<10)
			n := runtime.Stack(buf, false)
			err = &PanicError{Index: i, Value: r, Stack: trimStack(string(buf[:n]))}
		}
	}()
	return fn(i)
}

// trimStack drops the recover machinery frames (the top two call pairs:
// runtime.Stack inside safeCall's deferred closure) so the fragment
// starts at the panic site.
func trimStack(s string) string {
	lines := strings.Split(s, "\n")
	const keep = 16
	if len(lines) > keep {
		lines = append(lines[:keep], "...")
	}
	return strings.Join(lines, "\n")
}

// run executes the pool and returns the per-task error slice.
func run(n int, opt Options, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var done <-chan struct{} // nil channel when Ctx is unset: never selected
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
			}
			errs[i] = safeCall(i, fn)
			if errs[i] != nil && opt.FailFast {
				break
			}
		}
		return errs
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		stop chan struct{}
		once sync.Once
	)
	if opt.FailFast {
		stop = make(chan struct{})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := safeCall(i, fn); err != nil {
					errs[i] = err
					if opt.FailFast {
						once.Do(func() { close(stop) })
					}
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		// Deterministic pre-check: once the context is done no further
		// task is dispatched (the select below could otherwise race a
		// ready worker against the closed done channel).
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				for j := i; j < n; j++ {
					errs[j] = err
				}
				break dispatch
			}
		}
		select {
		case <-stop: // nil channel when !FailFast: never selected
			break dispatch
		case <-done: // nil channel when Ctx is unset: never selected
			for j := i; j < n; j++ {
				errs[j] = opt.Ctx.Err()
			}
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	return errs
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns the error of the
// lowest-index failing call (all calls run to completion; deterministic
// error selection keeps test output stable). A panicking task surfaces
// as that task's *PanicError instead of crashing the pool.
func ForEach(n, workers int, fn func(i int) error) error {
	// The sequential path historically stops at the first error.
	errs := run(n, Options{Workers: workers, FailFast: workers == 1}, fn)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("par: task %d: %w", i, err)
		}
	}
	return nil
}

// ForEachOpt is the supervised variant: it runs fn over [0, n) under
// opt and returns nil or a *MultiError aggregating every task failure
// in index order.
func ForEachOpt(n int, opt Options, fn func(i int) error) error {
	errs := run(n, opt, fn)
	var m *MultiError
	for i, err := range errs {
		if err != nil {
			if m == nil {
				m = &MultiError{Total: n}
			}
			m.Errs = append(m.Errs, fmt.Errorf("task %d: %w", i, err))
		}
	}
	if m == nil {
		return nil
	}
	return m
}

// Map runs fn over [0, n) in parallel and collects the results by index.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapOpt is the supervised Map: on failure it returns the partial
// result slice (zero values at failed or skipped indices) together with
// a *MultiError describing every failure.
func MapOpt[T any](n int, opt Options, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachOpt(n, opt, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
