// Package par provides the bounded worker-pool primitive used to
// parallelize embarrassingly parallel work across the toolchain:
// simulation ensembles, parameter sweeps, container build fan-out, and the
// cross-platform validation matrix. Results are always assembled by index,
// so parallel execution is bit-identical to sequential execution — the
// property the reproducibility harness depends on.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns the error of the
// lowest-index failing call (all calls run to completion; deterministic
// error selection keeps test output stable).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("par: task %d: %w", i, err)
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("par: task %d: %w", i, err)
		}
	}
	return nil
}

// Map runs fn over [0, n) in parallel and collects the results by index.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
