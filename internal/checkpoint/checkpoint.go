// Package checkpoint persists per-unit partial results of long-running
// jobs (robustness studies, simulation ensembles) so a killed run can
// resume without recomputation and still produce byte-identical final
// output.
//
// File format: a single JSON envelope
//
//	{"job": "<job>", "fingerprint": "<hex sha256>", "payload": {...}}
//
// written crash-safely through internal/fsatomic. The fingerprint hashes
// every input the payload depends on (model text, seeds, rates, grids);
// Load rejects a file whose fingerprint differs — a stale checkpoint from
// different parameters counts as a miss, never as data. Payload floats
// survive the round trip exactly: encoding/json emits the shortest
// decimal that parses back to the same float64, which is what makes a
// resumed run bit-identical to an uninterrupted one.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/fsatomic"
	"repro/internal/obs"
)

// Fingerprint hashes the given parts (order-sensitive, length-prefixed
// so {"ab",""} and {"a","b"} differ) into a hex digest for File.Fingerprint.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s;", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// File is a handle to one checkpoint file.
type File struct {
	// Path of the checkpoint file on disk.
	Path string
	// Job is a closed-set label naming the job kind (e.g.
	// "robustness.study") — used for metrics and stored in the envelope.
	Job string
	// Fingerprint identifies the job parameters (see Fingerprint).
	Fingerprint string
	// Obs receives checkpoint_writes_total{job} and
	// checkpoint_loads_total{job, outcome=hit|miss|stale}. Nil-safe.
	Obs *obs.Registry
}

type envelope struct {
	Job         string          `json:"job"`
	Fingerprint string          `json:"fingerprint"`
	Payload     json.RawMessage `json:"payload"`
}

// Load reads the checkpoint into v. It returns (false, nil) when the
// file does not exist or carries a different job/fingerprint (stale:
// the caller starts fresh and the next Save overwrites it). A file that
// exists but cannot be parsed is an error — fsatomic guarantees whole-
// file atomicity, so corruption means something outside this package
// touched the file and silently discarding it would mask that.
func (f *File) Load(v any) (bool, error) {
	data, err := os.ReadFile(f.Path)
	if errors.Is(err, os.ErrNotExist) {
		f.Obs.Inc("checkpoint_loads_total", obs.L("job", f.Job), obs.L("outcome", "miss"))
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("checkpoint: read %s: %w", f.Path, err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false, fmt.Errorf("checkpoint: parse %s: %w", f.Path, err)
	}
	if env.Job != f.Job || env.Fingerprint != f.Fingerprint {
		f.Obs.Inc("checkpoint_loads_total", obs.L("job", f.Job), obs.L("outcome", "stale"))
		return false, nil
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return false, fmt.Errorf("checkpoint: parse %s payload: %w", f.Path, err)
	}
	f.Obs.Inc("checkpoint_loads_total", obs.L("job", f.Job), obs.L("outcome", "hit"))
	return true, nil
}

// Save atomically writes v as the checkpoint's payload, replacing any
// previous contents (including a stale envelope from other parameters).
func (f *File) Save(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal payload: %w", err)
	}
	data, err := json.Marshal(envelope{Job: f.Job, Fingerprint: f.Fingerprint, Payload: payload})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	if err := fsatomic.WriteFile(f.Path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	f.Obs.Inc("checkpoint_writes_total", obs.L("job", f.Job))
	return nil
}
