package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

type payload struct {
	Reps map[int][]float64 `json:"reps"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	f := &File{
		Path:        filepath.Join(t.TempDir(), "study.ckpt"),
		Job:         "test.job",
		Fingerprint: Fingerprint("seed=1", "rate=0.05"),
		Obs:         reg,
	}

	var got payload
	ok, err := f.Load(&got)
	if err != nil || ok {
		t.Fatalf("Load on missing file = (%v, %v), want (false, nil)", ok, err)
	}
	if n := reg.Counter("checkpoint_loads_total", obs.L("job", "test.job"), obs.L("outcome", "miss")); n != 1 {
		t.Fatalf("miss count = %v", n)
	}

	// Floats must round-trip exactly: resume depends on it.
	want := payload{Reps: map[int][]float64{
		0: {0.1, 1.0 / 3.0, 2.220446049250313e-16},
		3: {1e300, -7.25},
	}}
	if err := f.Save(want); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("checkpoint_writes_total", obs.L("job", "test.job")); n != 1 {
		t.Fatalf("write count = %v", n)
	}
	ok, err = f.Load(&got)
	if err != nil || !ok {
		t.Fatalf("Load = (%v, %v), want (true, nil)", ok, err)
	}
	for k, vs := range want.Reps {
		for i, v := range vs {
			if got.Reps[k][i] != v {
				t.Fatalf("rep %d[%d] = %v, want exactly %v", k, i, got.Reps[k][i], v)
			}
		}
	}
	if n := reg.Counter("checkpoint_loads_total", obs.L("job", "test.job"), obs.L("outcome", "hit")); n != 1 {
		t.Fatalf("hit count = %v", n)
	}
}

func TestCheckpointStaleFingerprint(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "study.ckpt")
	old := &File{Path: path, Job: "test.job", Fingerprint: Fingerprint("seed=1"), Obs: reg}
	if err := old.Save(payload{Reps: map[int][]float64{0: {1}}}); err != nil {
		t.Fatal(err)
	}

	// Different parameters: the stored payload must not be returned.
	cur := &File{Path: path, Job: "test.job", Fingerprint: Fingerprint("seed=2"), Obs: reg}
	var got payload
	ok, err := cur.Load(&got)
	if err != nil || ok {
		t.Fatalf("stale Load = (%v, %v), want (false, nil)", ok, err)
	}
	if n := reg.Counter("checkpoint_loads_total", obs.L("job", "test.job"), obs.L("outcome", "stale")); n != 1 {
		t.Fatalf("stale count = %v", n)
	}

	// Save under the new fingerprint replaces the stale file.
	if err := cur.Save(payload{Reps: map[int][]float64{9: {9}}}); err != nil {
		t.Fatal(err)
	}
	ok, err = cur.Load(&got)
	if err != nil || !ok || got.Reps[9][0] != 9 {
		t.Fatalf("reload after replace = (%v, %v, %+v)", ok, err, got)
	}
}

func TestCheckpointWrongJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	a := &File{Path: path, Job: "job.a", Fingerprint: Fingerprint("p")}
	if err := a.Save(payload{}); err != nil {
		t.Fatal(err)
	}
	b := &File{Path: path, Job: "job.b", Fingerprint: Fingerprint("p")}
	var got payload
	if ok, err := b.Load(&got); err != nil || ok {
		t.Fatalf("cross-job Load = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestCheckpointCorruptFileIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &File{Path: path, Job: "j", Fingerprint: Fingerprint("p")}
	var got payload
	if ok, err := f.Load(&got); err == nil || ok {
		t.Fatalf("corrupt Load = (%v, %v), want error", ok, err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint("a", "b")
	if Fingerprint("a", "b") != base {
		t.Fatal("fingerprint not deterministic")
	}
	for _, other := range [][]string{{"a", "c"}, {"ab", ""}, {"a"}, {"b", "a"}} {
		if Fingerprint(other...) == base {
			t.Fatalf("collision with %v", other)
		}
	}
}
