package diagram

import (
	"strings"
	"testing"

	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

func space(t *testing.T, src string) *derive.StateSpace {
	t.Helper()
	m, err := pepa.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestDOTStructure(t *testing.T) {
	ss := space(t, "P = (go, 1.5).P1; P1 = (back, 0.5).P; P")
	dot := DOT(ss, Options{Title: "cycle"})
	for _, want := range []string{
		"digraph activity", `label="cycle"`,
		`n0 [label="P", shape=doublecircle]`,
		`n0 -> n1 [label="(go, 1.5)"]`,
		`n1 -> n0 [label="(back, 0.5)"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTShortLabelsAndLegend(t *testing.T) {
	ss := space(t, "P = (a, 1).P1; P1 = (b, 1).P; P")
	dot := DOT(ss, Options{ShortLabels: true})
	if !strings.Contains(dot, `label="S0"`) || !strings.Contains(dot, "// S1 = P1") {
		t.Errorf("short labels/legend missing:\n%s", dot)
	}
}

func TestDOTHighlight(t *testing.T) {
	ss := space(t, "P = (a, 1).P1; P1 = (b, 1).P; P")
	dot := DOT(ss, Options{Highlight: []int{1}})
	if !strings.Contains(dot, "fillcolor=lightgrey") {
		t.Errorf("highlight missing:\n%s", dot)
	}
}

func TestTextMarksInitialAndAbsorbing(t *testing.T) {
	ss := space(t, "P = (a, 1).Q; Q = (halt, 0.001).Q; P")
	// Make an absorbing-looking state: Q self-loops so nothing is
	// absorbing here; check initial marker only.
	txt := Text(ss, Options{Title: "demo"})
	if !strings.Contains(txt, "> S0") {
		t.Errorf("initial marker missing:\n%s", txt)
	}
	if !strings.Contains(txt, "S0 --(a, 1)--> S1") {
		t.Errorf("transition line missing:\n%s", txt)
	}
}

func TestTextAbsorbingMarker(t *testing.T) {
	// A blocked cooperation produces a genuine deadlock state.
	ss := space(t, "P = (a, 1).P; Q = (b, 1).Q1; Q1 = (b, 1).Q1; P <a,b> Q")
	txt := Text(ss, Options{})
	if !strings.Contains(txt, "* S0") {
		t.Errorf("absorbing marker missing:\n%s", txt)
	}
}

func TestActionSummary(t *testing.T) {
	ss := space(t, "P = (a, 1).P1 + (b, 2).P1; P1 = (a, 3).P; P")
	sum := ActionSummary(ss)
	if !strings.Contains(sum, "a\t2\t4") {
		t.Errorf("summary wrong:\n%s", sum)
	}
	if !strings.Contains(sum, "b\t1\t2") {
		t.Errorf("summary wrong:\n%s", sum)
	}
}

func TestDeterministicRendering(t *testing.T) {
	src := "P = (a, 1).P1; P1 = (b, 1).P2; P2 = (c, 1).P; P"
	a := DOT(space(t, src), Options{})
	b := DOT(space(t, src), Options{})
	if a != b {
		t.Error("DOT output not deterministic")
	}
}
