package diagram

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/goldentest"
)

// Golden coverage for the diagram renderers on a model with a choice, a
// cooperation, and an absorbing state, so every marker and label path is
// exercised. Regenerate with `go test ./internal/diagram -update`.

const goldenSrc = `
	P = (step, 1.5).P1 + (skip, 0.5).P2;
	P1 = (step, 1.5).P2; P2 = (reset, 0.25).P;
	Q = (step, T).Q;
	P <step> Q`

func TestGoldenDiagrams(t *testing.T) {
	ss := space(t, goldenSrc)
	outputs := map[string]string{
		"activity.dot":       DOT(ss, Options{Title: "golden"}),
		"activity-short.dot": DOT(ss, Options{Title: "golden", ShortLabels: true, Highlight: []int{2}}),
		"activity.txt":       Text(ss, Options{Title: "golden"}),
		"summary.tsv":        ActionSummary(ss),
	}
	for name, got := range outputs {
		t.Run(name, func(t *testing.T) {
			goldentest.Check(t, filepath.Join("testdata", "goldens", name), got)
		})
	}
}

// TestGoldenLocaleIndependence: rendering under a comma-decimal locale
// must not change a byte (rates like 1.5 keep their '.' separator).
func TestGoldenLocaleIndependence(t *testing.T) {
	ss := space(t, goldenSrc)
	before := DOT(ss, Options{Title: "golden"})
	for _, v := range []string{"LC_ALL", "LC_NUMERIC", "LANG"} {
		old, had := os.LookupEnv(v)
		os.Setenv(v, "fr_FR.UTF-8")
		defer func(v, old string, had bool) {
			if had {
				os.Setenv(v, old)
			} else {
				os.Unsetenv(v)
			}
		}(v, old, had)
	}
	if after := DOT(ss, Options{Title: "golden"}); after != before {
		t.Error("DOT output changed under fr_FR locale")
	}
}
