// Package diagram renders the activity/derivation diagrams the PEPA
// workbench draws (Fig 2 of the paper): the states of a derived model and
// the activities connecting them, as Graphviz DOT and as plain text.
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pepa/derive"
)

// Options controls rendering.
type Options struct {
	// Title is the diagram caption (e.g. "Machine M3, Mapping A").
	Title string
	// Highlight marks state ids to emphasise (e.g. absorbing states).
	Highlight []int
	// ShortLabels numbers states S0..Sn instead of full canonical terms
	// (full terms appear in a legend).
	ShortLabels bool
}

// DOT renders the state space in Graphviz syntax. Output is deterministic:
// states by id, transitions in stored order.
func DOT(ss *derive.StateSpace, opt Options) string {
	var b strings.Builder
	b.WriteString("digraph activity {\n")
	b.WriteString("  rankdir=LR;\n")
	if opt.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", opt.Title)
	}
	hi := map[int]bool{}
	for _, s := range opt.Highlight {
		hi[s] = true
	}
	for id, term := range ss.States {
		label := term
		if opt.ShortLabels {
			label = fmt.Sprintf("S%d", id)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if hi[id] {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		if id == 0 {
			attrs += ", shape=doublecircle"
		} else {
			attrs += ", shape=circle"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, attrs)
	}
	for id := range ss.States {
		for _, tr := range ss.Trans[id] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"(%s, %.4g)\"];\n", tr.From, tr.To, tr.Action, tr.Rate)
		}
	}
	if opt.ShortLabels {
		b.WriteString("  // legend\n")
		for id, term := range ss.States {
			fmt.Fprintf(&b, "  // S%d = %s\n", id, term)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Text renders a plain-text activity table: one line per transition plus a
// state legend, suitable for terminal output and golden tests.
func Text(ss *derive.StateSpace, opt Options) string {
	var b strings.Builder
	if opt.Title != "" {
		b.WriteString(opt.Title + "\n")
		b.WriteString(strings.Repeat("=", len(opt.Title)) + "\n")
	}
	fmt.Fprintf(&b, "states: %d, transitions: %d\n", ss.NumStates(), ss.NumTransitions())
	for id, term := range ss.States {
		marker := " "
		if id == 0 {
			marker = ">"
		}
		if len(ss.Trans[id]) == 0 {
			marker = "*" // absorbing
		}
		fmt.Fprintf(&b, "%s S%-3d %s\n", marker, id, term)
	}
	b.WriteString("activities:\n")
	for id := range ss.States {
		for _, tr := range ss.Trans[id] {
			fmt.Fprintf(&b, "  S%d --(%s, %.4g)--> S%d\n", tr.From, tr.Action, tr.Rate, tr.To)
		}
	}
	return b.String()
}

// ActionSummary tabulates, per action type, the number of transitions and
// the total rate mass — the "activity summary" panel of the workbench.
func ActionSummary(ss *derive.StateSpace) string {
	type row struct {
		count int
		total float64
	}
	rows := map[string]*row{}
	for id := range ss.States {
		for _, tr := range ss.Trans[id] {
			r := rows[tr.Action]
			if r == nil {
				r = &row{}
				rows[tr.Action] = r
			}
			r.count++
			r.total += tr.Rate
		}
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("action\ttransitions\ttotal-rate\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%s\t%d\t%.6g\n", n, rows[n].count, rows[n].total)
	}
	return b.String()
}
