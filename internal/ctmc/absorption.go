package ctmc

import (
	"fmt"

	"repro/internal/numeric/linalg"
	"repro/internal/sparseutil"
)

// This file provides the direct (non-transient) absorption analyses of the
// workbench: mean time to absorption and absorption probabilities, solved
// as linear systems over the transient sub-generator. For passage-time
// *distributions* use FirstPassageCDF; for the mean alone these solvers
// are exact and much cheaper than integrating the CDF.

// MeanTimeToAbsorption computes E[T_target | start=s] for every state s,
// where T_target is the hitting time of the target set. Target states get
// 0. States that cannot reach the target make the system singular, which
// is reported as an error.
//
// The vector m solves (-Q_TT)·m = 1 restricted to transient (non-target)
// states, with Q_TT the sub-generator over those states.
func (c *Chain) MeanTimeToAbsorption(targets []int) ([]float64, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("ctmc: empty target set")
	}
	isTarget := make([]bool, c.N)
	for _, s := range targets {
		if s < 0 || s >= c.N {
			return nil, fmt.Errorf("ctmc: target state %d out of range", s)
		}
		isTarget[s] = true
	}
	// Index the transient states.
	var trans []int
	pos := make([]int, c.N)
	for i := range pos {
		pos[i] = -1
	}
	for s := 0; s < c.N; s++ {
		if !isTarget[s] {
			pos[s] = len(trans)
			trans = append(trans, s)
		}
	}
	n := len(trans)
	out := make([]float64, c.N)
	if n == 0 {
		return out, nil
	}
	if n > 4000 {
		return nil, fmt.Errorf("ctmc: %d transient states exceed the dense absorption solver's limit", n)
	}
	a := linalg.NewDense(n, n)
	b := make([]float64, n)
	for i, s := range trans {
		b[i] = 1
		c.Q.Row(s, func(j int, v float64) {
			if pos[j] >= 0 {
				a.Add(i, pos[j], -v)
			}
		})
	}
	m, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: absorption solve failed (states unable to reach the target?): %w", err)
	}
	for i, s := range trans {
		if m[i] < 0 {
			return nil, fmt.Errorf("ctmc: negative mean hitting time %g at state %d", m[i], s)
		}
		out[s] = m[i]
	}
	return out, nil
}

// AbsorptionProbability computes, for every state, the probability of
// hitting set A before set B (both made absorbing). States in A get 1,
// states in B get 0.
func (c *Chain) AbsorptionProbability(setA, setB []int) ([]float64, error) {
	if len(setA) == 0 || len(setB) == 0 {
		return nil, fmt.Errorf("ctmc: both competing sets must be nonempty")
	}
	class := make([]int, c.N) // 0 transient, 1 in A, 2 in B
	for _, s := range setA {
		if s < 0 || s >= c.N {
			return nil, fmt.Errorf("ctmc: state %d out of range", s)
		}
		class[s] = 1
	}
	for _, s := range setB {
		if s < 0 || s >= c.N {
			return nil, fmt.Errorf("ctmc: state %d out of range", s)
		}
		if class[s] == 1 {
			return nil, fmt.Errorf("ctmc: state %d in both sets", s)
		}
		class[s] = 2
	}
	var trans []int
	pos := make([]int, c.N)
	for i := range pos {
		pos[i] = -1
	}
	for s := 0; s < c.N; s++ {
		if class[s] == 0 {
			pos[s] = len(trans)
			trans = append(trans, s)
		}
	}
	out := make([]float64, c.N)
	for _, s := range setA {
		out[s] = 1
	}
	n := len(trans)
	if n == 0 {
		return out, nil
	}
	if n > 4000 {
		return nil, fmt.Errorf("ctmc: %d transient states exceed the dense absorption solver's limit", n)
	}
	// (-Q_TT)·h = Q_TA·1 where h is the hit-A-first probability.
	a := linalg.NewDense(n, n)
	b := make([]float64, n)
	for i, s := range trans {
		c.Q.Row(s, func(j int, v float64) {
			switch {
			case pos[j] >= 0:
				a.Add(i, pos[j], -v)
			case class[j] == 1 && j != s:
				b[i] += v
			}
		})
	}
	h, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: absorption-probability solve failed: %w", err)
	}
	for i, s := range trans {
		if h[i] < -1e-9 || h[i] > 1+1e-9 {
			return nil, fmt.Errorf("ctmc: absorption probability %g out of [0,1] at state %d", h[i], s)
		}
		out[s] = sparseutil.Clamp01(h[i])
	}
	return out, nil
}

// ExpectedSojourn returns 1/exitRate per state (the mean holding time),
// with +Inf represented as 0 exit encoded by returning 0 for absorbing
// states and an ok=false flag list.
func (c *Chain) ExpectedSojourn() (mean []float64, absorbing []bool) {
	mean = make([]float64, c.N)
	absorbing = make([]bool, c.N)
	for s, r := range c.ExitRate {
		if r == 0 {
			absorbing[s] = true
			continue
		}
		mean[s] = 1 / r
	}
	return mean, absorbing
}
