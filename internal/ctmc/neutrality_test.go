package ctmc

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestInstrumentationNeutrality is the conformance-style guard for the
// observability layer: attaching a metrics registry to a chain must not
// change a single bit of any numerical result. Each solver runs twice —
// bare and instrumented — and the outputs are compared for exact
// (bitwise) equality, not within a tolerance.
func TestInstrumentationNeutrality(t *testing.T) {
	rates := map[[2]int]float64{
		{0, 1}: 2, {1, 2}: 1.5, {2, 0}: 3, {1, 0}: 0.5, {2, 1}: 0.25,
	}
	bare := NewChain(3, rates)
	instr := NewChain(3, rates)
	instr.Obs = obs.NewRegistry()

	piA, errA := bare.SteadyState(SteadyStateOptions{})
	piB, errB := instr.SteadyState(SteadyStateOptions{})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("steady-state error mismatch: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(piA, piB) {
		t.Errorf("steady-state differs with instrumentation: %v vs %v", piA, piB)
	}

	ptA, errA := bare.Transient(bare.PointMass(0), 2.5, 1e-10)
	ptB, errB := instr.Transient(instr.PointMass(0), 2.5, 1e-10)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("transient error mismatch: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(ptA, ptB) {
		t.Errorf("transient differs with instrumentation: %v vs %v", ptA, ptB)
	}

	times := []float64{0.5, 1, 2, 4}
	cdfA, errA := bare.FirstPassageCDF(bare.PointMass(0), []int{2}, times, 1e-10)
	cdfB, errB := instr.FirstPassageCDF(instr.PointMass(0), []int{2}, times, 1e-10)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("passage error mismatch: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(cdfA.Probs, cdfB.Probs) {
		t.Errorf("passage CDF differs with instrumentation: %v vs %v", cdfA.Probs, cdfB.Probs)
	}

	// The comparison is vacuous if the registry never recorded anything.
	if got := instr.Obs.Counter("ctmc_transient_solves_total"); got == 0 {
		t.Error("instrumented run recorded no transient solves")
	}
	if got := instr.Obs.Counter("ctmc_steady_stages_total",
		obs.L("method", "gauss-seidel"), obs.L("outcome", "accepted")); got == 0 {
		t.Error("instrumented run recorded no accepted steady-state stage")
	}
}
