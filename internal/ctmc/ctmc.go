// Package ctmc assembles continuous-time Markov chains from derived PEPA
// state spaces and solves them: steady-state distributions (iterative
// Gauss–Seidel with a dense LU fallback), transient distributions via
// uniformization with truncated Poisson weights, first-passage-time CDFs
// via the absorbing-state transform, and the standard PEPA reward measures
// (throughput, utilization).
package ctmc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/numeric/linalg"
	"repro/internal/numeric/poisson"
	"repro/internal/numeric/sparse"
	"repro/internal/obs"
	"repro/internal/pepa/derive"
	"repro/internal/sparseutil"
)

// Chain is a CTMC: a generator matrix Q (CSR) plus the action-labelled
// rate matrices needed for throughput rewards.
type Chain struct {
	N int
	// Q is the infinitesimal generator: Q[i][j] is the total rate from i to
	// j (i != j), and Q[i][i] = -sum of the row's off-diagonal rates.
	Q *sparse.CSR
	// ExitRate[i] is the total outgoing rate of state i.
	ExitRate []float64
	// ActionRate maps an action type to the per-state total rate at which
	// that action fires (for throughput).
	ActionRate map[string][]float64
	// Initial is the index of the initial state (0 for derived spaces).
	Initial int
	// Obs, when non-nil, receives solver metrics (stage iterations,
	// residuals, uniformization truncation depths). Nil costs nothing.
	Obs *obs.Registry
}

// FromStateSpace builds the CTMC of a derived PEPA state space.
func FromStateSpace(ss *derive.StateSpace) *Chain {
	n := ss.NumStates()
	coo := sparse.NewCOO(n, n)
	exit := make([]float64, n)
	actRate := map[string][]float64{}
	for _, a := range ss.ActionTypes {
		actRate[a] = make([]float64, n)
	}
	for s := 0; s < n; s++ {
		for _, tr := range ss.Trans[s] {
			coo.Add(s, tr.To, tr.Rate)
			exit[s] += tr.Rate
			actRate[tr.Action][s] += tr.Rate
		}
		coo.Add(s, s, -exit[s])
	}
	return &Chain{N: n, Q: coo.ToCSR(), ExitRate: exit, ActionRate: actRate, Initial: 0}
}

// NewChain builds a CTMC directly from a dense rate map (tests, synthetic
// chains). rates[i][j] is the transition rate from i to j.
func NewChain(n int, rates map[[2]int]float64) *Chain {
	coo := sparse.NewCOO(n, n)
	exit := make([]float64, n)
	keys := make([][2]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		r := rates[k]
		if k[0] == k[1] {
			continue
		}
		if r < 0 {
			panic(fmt.Sprintf("ctmc: negative rate %g at %v", r, k))
		}
		coo.Add(k[0], k[1], r)
		exit[k[0]] += r
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, -exit[i])
	}
	return &Chain{N: n, Q: coo.ToCSR(), ExitRate: exit, ActionRate: map[string][]float64{}}
}

// MaxExitRate returns the uniformization constant max_i |q_ii|.
func (c *Chain) MaxExitRate() float64 {
	var m float64
	for _, r := range c.ExitRate {
		if r > m {
			m = r
		}
	}
	return m
}

// SteadyStateOptions tunes the stationary solver.
type SteadyStateOptions struct {
	Tol       float64 // convergence tolerance (default 1e-12)
	MaxIter   int     // Gauss–Seidel sweep budget (default 20000)
	DenseOnly bool    // skip the iterative attempt (tests)
	// DenseLimit is the largest N for which the dense LU fallback is
	// attempted (default 2000).
	DenseLimit int
}

func (o SteadyStateOptions) withDefaults() SteadyStateOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 20000
	}
	if o.DenseLimit <= 0 {
		o.DenseLimit = 2000
	}
	return o
}

// StageAttempt records one stage of the steady-state escalation chain
// (Gauss–Seidel -> power iteration -> dense LU) for diagnosis when the
// whole chain fails.
type StageAttempt struct {
	Method     string  // "gauss-seidel", "power-iteration", "dense-lu"
	Iterations int     // iterations spent (0 when the stage never ran)
	Residual   float64 // final ||pi·Q||_inf (NaN when unavailable)
	Err        string  // why the stage was rejected
}

// ConvergenceError is the structured escalation trace returned when
// every steady-state stage fails: it names each attempted solver, the
// work it did, and why it was rejected, so a non-converging model is
// debuggable instead of opaque.
type ConvergenceError struct {
	N      int // chain size
	Stages []StageAttempt
}

func (e *ConvergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ctmc: steady-state failed on all %d stages (n=%d):", len(e.Stages), e.N)
	for _, s := range e.Stages {
		fmt.Fprintf(&b, "\n  %-15s", s.Method)
		if s.Iterations > 0 {
			fmt.Fprintf(&b, " iters=%d", s.Iterations)
		}
		if !math.IsNaN(s.Residual) {
			fmt.Fprintf(&b, " residual=%.3g", s.Residual)
		}
		fmt.Fprintf(&b, ": %s", s.Err)
	}
	return b.String()
}

// SteadyState solves pi·Q = 0, sum(pi) = 1 for an irreducible chain. It
// first runs normalized Gauss–Seidel on Qᵀ·piᵀ = 0, then power iteration
// on the uniformized DTMC (which handles chains too large or too stiff
// for Gauss–Seidel), and finally falls back to a dense LU solve with the
// normalization condition replacing one equation. When every stage
// fails the returned error is a *ConvergenceError carrying the full
// escalation trace.
func (c *Chain) SteadyState(opt SteadyStateOptions) ([]float64, error) {
	opt = opt.withDefaults()
	if c.N == 0 {
		return nil, fmt.Errorf("ctmc: empty chain")
	}
	if c.N == 1 {
		return []float64{1}, nil
	}
	qt := c.Q.Transpose()
	var stages []StageAttempt
	if !opt.DenseOnly {
		pi, att, ok := c.steadyIterative(qt, opt)
		c.recordStage(att, ok)
		if ok {
			return pi, nil
		}
		stages = append(stages, att)
		pi, att, ok = c.steadyPower(opt)
		c.recordStage(att, ok)
		if ok {
			return pi, nil
		}
		stages = append(stages, att)
	}
	if c.N > opt.DenseLimit {
		stages = append(stages, StageAttempt{
			Method:   "dense-lu",
			Residual: math.NaN(),
			Err:      fmt.Sprintf("chain (n=%d) exceeds dense fallback limit %d", c.N, opt.DenseLimit),
		})
		return nil, &ConvergenceError{N: c.N, Stages: stages}
	}
	pi, err := c.steadyDense(qt)
	if err != nil {
		att := StageAttempt{Method: "dense-lu", Residual: math.NaN(), Err: err.Error()}
		c.recordStage(att, false)
		stages = append(stages, att)
		return nil, &ConvergenceError{N: c.N, Stages: stages}
	}
	c.recordStage(StageAttempt{Method: "dense-lu", Residual: math.NaN()}, true)
	return pi, nil
}

// recordStage publishes one escalation-chain stage to the metrics
// registry. All Registry methods are nil-safe, so an uninstrumented
// chain pays only this call.
func (c *Chain) recordStage(att StageAttempt, ok bool) {
	if c.Obs == nil {
		return
	}
	outcome := "rejected"
	if ok {
		outcome = "accepted"
	}
	method := obs.L("method", att.Method)
	c.Obs.Inc("ctmc_steady_stages_total", method, obs.L("outcome", outcome))
	c.Obs.Add("ctmc_steady_iterations_total", float64(att.Iterations), method)
	if !math.IsNaN(att.Residual) {
		c.Obs.Set("ctmc_steady_residual", att.Residual, method)
	}
}

// steadyPower runs power iteration on the uniformized DTMC
// P = I + Q/(1.1·q): the stationary distribution of P equals that of the
// CTMC, and the slack factor guarantees aperiodicity.
func (c *Chain) steadyPower(opt SteadyStateOptions) ([]float64, StageAttempt, bool) {
	att := StageAttempt{Method: "power-iteration", Residual: math.NaN()}
	q := c.MaxExitRate()
	if q == 0 {
		att.Err = "zero uniformization rate (no transitions)"
		return nil, att, false
	}
	p := c.uniformized(q * 1.1)
	pi, res, err := sparse.PowerIteration(p, sparse.IterOptions{MaxIter: opt.MaxIter * 5, Tol: opt.Tol})
	att.Iterations = res.Iterations
	if err != nil {
		att.Err = err.Error()
		return nil, att, false
	}
	if !res.Converged {
		att.Err = fmt.Sprintf("did not converge within %d iterations", opt.MaxIter*5)
		return nil, att, false
	}
	// Verify the CTMC residual before accepting.
	att.Residual = linalg.NormInf(c.Q.VecMul(pi))
	if att.Residual > math.Sqrt(opt.Tol) {
		att.Err = fmt.Sprintf("converged but residual %.3g exceeds %.3g", att.Residual, math.Sqrt(opt.Tol))
		return nil, att, false
	}
	return pi, att, true
}

// steadyIterative runs Gauss–Seidel sweeps on Qᵀx = 0 with renormalization;
// the trivial solution is avoided by the normalization step.
func (c *Chain) steadyIterative(qt *sparse.CSR, opt SteadyStateOptions) ([]float64, StageAttempt, bool) {
	att := StageAttempt{Method: "gauss-seidel", Residual: math.NaN()}
	n := c.N
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = qt.At(i, i)
		if diag[i] == 0 {
			// Absorbing state: the chain is not irreducible; Gauss–Seidel
			// in this form cannot proceed.
			att.Err = fmt.Sprintf("zero diagonal at state %d (absorbing state; chain not irreducible)", i)
			return nil, att, false
		}
	}
	for it := 0; it < opt.MaxIter; it++ {
		att.Iterations = it + 1
		var delta float64
		for i := 0; i < n; i++ {
			var s float64
			for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
				j := qt.ColIdx[k]
				if j != i {
					s -= qt.Val[k] * pi[j]
				}
			}
			nx := s / diag[i]
			if nx < 0 {
				nx = 0
			}
			if d := math.Abs(nx - pi[i]); d > delta {
				delta = d
			}
			pi[i] = nx
		}
		if sum := linalg.Normalize1(pi); sum == 0 {
			att.Err = "iterate collapsed to the zero vector"
			return nil, att, false
		}
		if delta < opt.Tol {
			// Verify the residual ||piQ||_inf before accepting.
			att.Residual = linalg.NormInf(c.Q.VecMul(pi))
			if att.Residual < math.Sqrt(opt.Tol) {
				return pi, att, true
			}
			att.Err = fmt.Sprintf("converged but residual %.3g exceeds %.3g", att.Residual, math.Sqrt(opt.Tol))
			return nil, att, false
		}
	}
	att.Residual = linalg.NormInf(c.Q.VecMul(pi))
	att.Err = fmt.Sprintf("did not converge within %d sweeps", opt.MaxIter)
	return nil, att, false
}

// steadyDense solves the dense system Qᵀ·piᵀ = 0 with the last equation
// replaced by sum(pi) = 1.
func (c *Chain) steadyDense(qt *sparse.CSR) ([]float64, error) {
	n := c.N
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
			a.Set(i, qt.ColIdx[k], qt.Val[k])
		}
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	pi, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: dense steady-state solve: %w", err)
	}
	for i, v := range pi {
		if math.IsNaN(v) {
			// Both ordered branches below are false for NaN; without this
			// check a singular system would silently yield a NaN vector.
			return nil, fmt.Errorf("ctmc: steady-state produced NaN at state %d (singular system?)", i)
		}
		if v < 0 && v > -1e-9 {
			pi[i] = 0
		} else if v < 0 {
			return nil, fmt.Errorf("ctmc: steady-state produced negative probability %g at state %d (chain reducible?)", v, i)
		}
	}
	linalg.Normalize1(pi)
	return pi, nil
}

// Transient computes the state distribution at time t from the initial
// distribution p0 by uniformization:
//
//	p(t) = sum_k Poisson(q·t; k) · p0 · P^k,  P = I + Q/q,
//
// with q the uniformization rate and the Poisson sum truncated to capture
// 1-eps of the mass.
func (c *Chain) Transient(p0 []float64, t, eps float64) ([]float64, error) {
	if len(p0) != c.N {
		return nil, fmt.Errorf("ctmc: initial distribution length %d != %d states", len(p0), c.N)
	}
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	if eps <= 0 {
		eps = 1e-10
	}
	q := c.MaxExitRate()
	if q == 0 || t == 0 {
		out := append([]float64(nil), p0...)
		return out, nil
	}
	// Uniformized DTMC P = I + Q/q as CSR.
	p := c.uniformized(q)
	w, err := poisson.Compute(q*t, eps)
	if err != nil {
		return nil, err
	}
	c.Obs.Inc("ctmc_transient_solves_total")
	c.Obs.Add("ctmc_uniformization_terms_total", float64(w.Right+1))
	c.Obs.Set("ctmc_uniformization_truncation_depth", float64(w.Right))
	cur := append([]float64(nil), p0...)
	acc := make([]float64, c.N)
	next := make([]float64, c.N)
	for k := 0; k <= w.Right; k++ {
		if pw := w.Pmf(k); pw > 0 {
			linalg.AXPY(pw, cur, acc)
		}
		if k == w.Right {
			break
		}
		p.VecMulTo(next, cur)
		cur, next = next, cur
	}
	// Renormalize the truncation slack.
	linalg.Normalize1(acc)
	return acc, nil
}

// TransientSeries evaluates the transient distribution on an ascending
// time grid. Instead of solving each horizon from scratch (O(sum q·t_k)
// matrix-vector products), it propagates incrementally from grid point to
// grid point (O(q·t_max) total): p(t_{k+1}) = Transient(p(t_k), dt).
// Truncation error accumulates additively over the grid, so the per-step
// eps is tightened by the number of steps.
func (c *Chain) TransientSeries(p0 []float64, times []float64, eps float64) ([][]float64, error) {
	if eps <= 0 {
		eps = 1e-10
	}
	out := make([][]float64, len(times))
	if len(times) == 0 {
		return out, nil
	}
	stepEps := eps / float64(len(times))
	cur := append([]float64(nil), p0...)
	prevT := 0.0
	for i, t := range times {
		dt := t - prevT
		if dt < 0 {
			return nil, fmt.Errorf("ctmc: TransientSeries needs an ascending grid (t[%d]=%g < %g)", i, t, prevT)
		}
		pt, err := c.Transient(cur, dt, stepEps)
		if err != nil {
			return nil, fmt.Errorf("ctmc: transient step to t=%g: %w", t, err)
		}
		out[i] = pt
		cur = append(cur[:0], pt...)
		prevT = t
	}
	return out, nil
}

func (c *Chain) uniformized(q float64) *sparse.CSR {
	coo := sparse.NewCOO(c.N, c.N)
	for i := 0; i < c.N; i++ {
		var offDiag float64
		c.Q.Row(i, func(j int, v float64) {
			if j != i {
				coo.Add(i, j, v/q)
				offDiag += v / q
			}
		})
		coo.Add(i, i, 1-offDiag)
	}
	return coo.ToCSR()
}

// PointMass returns a distribution concentrated on state s.
func (c *Chain) PointMass(s int) []float64 {
	p := make([]float64, c.N)
	p[s] = 1
	return p
}

// Throughput returns the steady-state throughput of an action: the
// expected number of completions per unit time, sum_s pi(s)·rate_a(s).
func (c *Chain) Throughput(pi []float64, action string) (float64, error) {
	rates, ok := c.ActionRate[action]
	if !ok {
		return 0, fmt.Errorf("ctmc: unknown action type %q", action)
	}
	return linalg.Dot(pi, rates), nil
}

// Throughputs returns the steady-state throughput of every action type,
// keyed by action. Conformance checks use this to compare the exact chain
// against simulation estimates action-by-action.
func (c *Chain) Throughputs(pi []float64) map[string]float64 {
	out := make(map[string]float64, len(c.ActionRate))
	for a, rates := range c.ActionRate {
		out[a] = linalg.Dot(pi, rates)
	}
	return out
}

// Utilization returns the steady-state probability mass of the states
// selected by the predicate over state indices.
func (c *Chain) Utilization(pi []float64, selected []int) float64 {
	var u float64
	for _, s := range selected {
		u += pi[s]
	}
	return u
}

// PassageCDF computes the first-passage-time distribution from the source
// distribution p0 to the target set: targets are made absorbing and the
// CDF value at time t is the probability mass absorbed by t.
type PassageCDF struct {
	Times []float64
	Probs []float64
}

// FirstPassageCDF evaluates P(T_target <= t) on the given ascending time
// grid. Target states are transformed to absorbing states; if p0 already
// places mass on a target, that mass counts as passed at t=0.
func (c *Chain) FirstPassageCDF(p0 []float64, targets []int, times []float64, eps float64) (*PassageCDF, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("ctmc: empty passage target set")
	}
	isTarget := make([]bool, c.N)
	for _, s := range targets {
		if s < 0 || s >= c.N {
			return nil, fmt.Errorf("ctmc: target state %d out of range", s)
		}
		isTarget[s] = true
	}
	// Build the absorbing chain Q~: zero out rows of target states.
	coo := sparse.NewCOO(c.N, c.N)
	exit := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		if isTarget[i] {
			continue
		}
		var rowExit float64
		c.Q.Row(i, func(j int, v float64) {
			if j != i && v > 0 {
				coo.Add(i, j, v)
				rowExit += v
			}
		})
		coo.Add(i, i, -rowExit)
		exit[i] = rowExit
	}
	abs := &Chain{N: c.N, Q: coo.ToCSR(), ExitRate: exit, ActionRate: map[string][]float64{}, Obs: c.Obs}
	cdf := &PassageCDF{Times: append([]float64(nil), times...), Probs: make([]float64, len(times))}
	series, err := abs.TransientSeries(p0, times, eps)
	if err != nil {
		return nil, fmt.Errorf("ctmc: passage transient: %w", err)
	}
	for i, pt := range series {
		var mass float64
		for s, v := range pt {
			if isTarget[s] {
				mass += v
			}
		}
		// Clamp01 also maps NaN to 0, so a poisoned transient solve can
		// not leak NaN into the CDF (it shows up as missing mass instead).
		cdf.Probs[i] = sparseutil.Clamp01(mass)
	}
	return cdf, nil
}

// Quantile returns the earliest grid time at which the CDF reaches p, or
// +Inf if it never does on the grid.
func (c *PassageCDF) Quantile(p float64) float64 {
	for i, v := range c.Probs {
		if v >= p {
			return c.Times[i]
		}
	}
	return math.Inf(1)
}

// Mean estimates the mean passage time by trapezoidal integration of the
// complementary CDF over the grid (a lower bound if the CDF has not
// reached 1 by the final grid point).
func (c *PassageCDF) Mean() float64 {
	var m float64
	for i := 1; i < len(c.Times); i++ {
		dt := c.Times[i] - c.Times[i-1]
		surv0 := 1 - c.Probs[i-1]
		surv1 := 1 - c.Probs[i]
		m += dt * (surv0 + surv1) / 2
	}
	return m
}
