// Package ctmc assembles continuous-time Markov chains from derived PEPA
// state spaces and solves them: steady-state distributions (iterative
// Gauss–Seidel with a dense LU fallback), transient distributions via
// uniformization with truncated Poisson weights, first-passage-time CDFs
// via the absorbing-state transform, and the standard PEPA reward measures
// (throughput, utilization).
package ctmc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/numeric/linalg"
	"repro/internal/numeric/poisson"
	"repro/internal/numeric/sparse"
	"repro/internal/obs"
	"repro/internal/pepa/derive"
	"repro/internal/runctx"
	"repro/internal/sparseutil"
)

// Chain is a CTMC: a generator matrix Q (CSR) plus the action-labelled
// rate matrices needed for throughput rewards.
type Chain struct {
	N int
	// Q is the infinitesimal generator: Q[i][j] is the total rate from i to
	// j (i != j), and Q[i][i] = -sum of the row's off-diagonal rates.
	//
	// The solvers memoize operators derived from Q (see solveCache).
	// Replacing Q with a new matrix is detected automatically; mutating the
	// stored matrix in place is not supported — call InvalidateSolveCache
	// after doing so (see docs/PERFORMANCE.md for the full contract).
	Q *sparse.CSR
	// ExitRate[i] is the total outgoing rate of state i.
	ExitRate []float64
	// ActionRate maps an action type to the per-state total rate at which
	// that action fires (for throughput).
	ActionRate map[string][]float64
	// Initial is the index of the initial state (0 for derived spaces).
	Initial int
	// Obs, when non-nil, receives solver metrics (stage iterations,
	// residuals, uniformization truncation depths, cache hit rates).
	// Nil costs nothing.
	Obs *obs.Registry
	// Workers bounds the goroutines the solve kernels use for
	// matrix-vector products (<= 1 means sequential). Every parallel
	// kernel is bit-identical to its sequential twin, so Workers changes
	// wall-clock time only, never a single output bit.
	Workers int

	// mu guards cache and pool: chains may be shared across goroutines
	// (the makespan fan-out, conformance sweeps).
	mu    sync.Mutex
	cache *solveCache
	// pool is the persistent worker pool the parallel kernels dispatch
	// on, created lazily by the first Workers > 1 solve (or attached via
	// AttachPool, in which case poolOwned is false and the caller owns
	// its lifecycle). An owned pool is shut down by InvalidateSolveCache
	// and by the finalizer installed at creation, so dropping a chain
	// never strands its worker goroutines.
	pool      *sparse.Pool
	poolOwned bool
	// finalizerSet records that the shutdownPool finalizer is installed
	// (SetFinalizer panics if installed twice, and pool regrowth creates
	// a second pool over the chain's lifetime).
	finalizerSet bool
	// noSolveCache disables all memoization (tests and the cached-vs-
	// uncached benchmarks; the zero value — caching on — is the API).
	noSolveCache bool
	// family, when non-nil, is the ChainFamily this chain was assembled
	// by. Members route Poisson weight lookups and absorbing-transform
	// assembly through the family's shared caches (both are exact to
	// share: weights depend only on (lambda, eps), and the absorbing
	// plan is pattern-validated per member).
	family *ChainFamily
}

// solveCache memoizes the operators the hot solve path derives from Q:
// Qᵀ for the steady-state stages, the uniformized DTMC P = I + Q/q per
// uniformization rate (plus its transpose, built lazily for the parallel
// kernels), the truncated Poisson weight tables per (lambda, eps) — shared
// across the uniform-dt steps of a TransientSeries grid — and the last
// absorbing chain built by FirstPassageCDF. The cache is keyed to the
// identity and nonzero count of Q, so swapping in a different generator
// rebuilds everything.
type solveCache struct {
	q   *sparse.CSR // the generator these operators were derived from
	nnz int

	qt      *sparse.CSR
	uni     map[float64]*sparse.CSR // uniformization rate -> P
	uniT    map[float64]*sparse.CSR // uniformization rate -> Pᵀ
	weights map[weightKey]*poisson.Weights
	// plans memoizes the nnz-balanced row partitions of the parallel
	// kernels per (operand matrix, workers), so the per-term dispatch
	// costs a map lookup instead of a fresh round of binary searches.
	plans map[planKey]*sparse.Plan

	passageKey     string
	passageChain   *Chain
	passageTargets []bool
}

type weightKey struct{ lambda, eps float64 }

type planKey struct {
	m       *sparse.CSR
	workers int
}

// maxWeightTables bounds the Poisson weight memo: a uniform time grid needs
// exactly one table, an irregular one needs one per distinct step, and a
// pathological caller cycling through horizons gets the map reset instead
// of unbounded growth.
const maxWeightTables = 256

// InvalidateSolveCache drops every memoized solve operator and shuts down
// the chain's owned worker pool (goroutine counts return to baseline
// before it returns). Callers that mutate c.Q in place (rather than
// replacing it, which is detected) must call this before the next solve.
// The invalidation cascades to the memoized absorbing passage chain, so
// its operators and pool are released too.
func (c *Chain) InvalidateSolveCache() {
	c.mu.Lock()
	sc := c.cache
	c.cache = nil
	pool, owned := c.pool, c.poolOwned
	c.pool, c.poolOwned = nil, false
	c.mu.Unlock()
	if owned {
		pool.Close()
	}
	if sc != nil && sc.passageChain != nil {
		sc.passageChain.InvalidateSolveCache()
	}
}

// shutdownPool releases the owned worker pool; it is both the tail of
// InvalidateSolveCache's pool handling and the finalizer installed when
// the pool is created, so a chain dropped without an explicit invalidate
// never strands its worker goroutines.
func (c *Chain) shutdownPool() {
	c.mu.Lock()
	pool, owned := c.pool, c.poolOwned
	c.pool, c.poolOwned = nil, false
	c.mu.Unlock()
	if owned {
		pool.Close()
	}
}

// solvePool returns the chain's persistent worker pool for a solve with
// the given worker count, creating it lazily on first use. The pool runs
// workers-1 pinned goroutines — the solving goroutine itself executes the
// final partition of every dispatch — and is replaced (old one closed) if
// a later solve asks for more workers than it has. Returns nil for
// workers <= 1: the kernels treat a nil pool as inline execution.
func (c *Chain) solvePool(workers int) *sparse.Pool {
	if workers <= 1 {
		return nil
	}
	size := workers - 1
	c.mu.Lock()
	if c.pool != nil && (!c.poolOwned || c.pool.Size() >= size) {
		p := c.pool
		c.mu.Unlock()
		return p
	}
	old := c.pool
	p := sparse.NewPool(size)
	c.pool = p
	c.poolOwned = true
	installFinalizer := !c.finalizerSet
	c.finalizerSet = true
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if installFinalizer {
		runtime.SetFinalizer(c, (*Chain).shutdownPool)
	}
	return p
}

// AttachPool makes the chain dispatch its parallel kernels on an
// externally-owned pool (robustness studies share one pool across their
// per-machine chains). The caller keeps ownership: the chain never closes
// an attached pool, and InvalidateSolveCache merely detaches it. Any
// previously owned pool is shut down.
func (c *Chain) AttachPool(p *sparse.Pool) {
	c.mu.Lock()
	old, owned := c.pool, c.poolOwned
	c.pool = p
	c.poolOwned = false
	c.mu.Unlock()
	if owned {
		old.Close()
	}
}

// planCached returns the memoized nnz-balanced row partition of m for the
// given worker count, planning it on first use. Plans are cached next to
// the operator they partition (the uniformized transpose, Qᵀ), so the
// per-term dispatch of a transient series costs a map lookup.
func (c *Chain) planCached(m *sparse.CSR, workers int) *sparse.Plan {
	if c.noSolveCache {
		return sparse.NewPlan(m, workers)
	}
	key := planKey{m: m, workers: workers}
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.cacheLocked()
	if pl, ok := sc.plans[key]; ok {
		return pl
	}
	if sc.plans == nil {
		sc.plans = make(map[planKey]*sparse.Plan, 2)
	}
	pl := sparse.NewPlan(m, workers)
	sc.plans[key] = pl
	return pl
}

// cacheLocked returns the live cache for the current Q, rebuilding it when
// Q was replaced. Callers must hold c.mu.
func (c *Chain) cacheLocked() *solveCache {
	if c.cache == nil || c.cache.q != c.Q || c.cache.nnz != c.Q.NNZ() {
		c.cache = &solveCache{
			q:       c.Q,
			nnz:     c.Q.NNZ(),
			uni:     make(map[float64]*sparse.CSR, 2),
			uniT:    make(map[float64]*sparse.CSR, 2),
			weights: make(map[weightKey]*poisson.Weights),
		}
	}
	return c.cache
}

// uniformizedCached returns P = I + Q/q, memoized per uniformization rate.
func (c *Chain) uniformizedCached(q float64) *sparse.CSR {
	if c.noSolveCache {
		return c.uniformized(q)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.cacheLocked()
	if p, ok := sc.uni[q]; ok {
		c.Obs.Inc("ctmc_unicache_total", obs.L("outcome", "hit"))
		return p
	}
	c.Obs.Inc("ctmc_unicache_total", obs.L("outcome", "miss"))
	p := c.uniformized(q)
	sc.uni[q] = p
	return p
}

// uniformizedTransposeCached returns Pᵀ for the memoized P = I + Q/q,
// built on first use by a Workers > 1 solve.
func (c *Chain) uniformizedTransposeCached(q float64) *sparse.CSR {
	if c.noSolveCache {
		return c.uniformized(q).Transpose()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.cacheLocked()
	if pt, ok := sc.uniT[q]; ok {
		return pt
	}
	p, ok := sc.uni[q]
	if !ok {
		p = c.uniformized(q)
		sc.uni[q] = p
	}
	pt := p.Transpose()
	sc.uniT[q] = pt
	return pt
}

// transposedQCached returns Qᵀ, memoized.
func (c *Chain) transposedQCached() *sparse.CSR {
	if c.noSolveCache {
		return c.Q.Transpose()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.cacheLocked()
	if sc.qt == nil {
		sc.qt = c.Q.Transpose()
	}
	return sc.qt
}

// poissonCached returns the truncated Poisson(lambda) weight table,
// memoized per (lambda, eps): every uniform-dt step of a TransientSeries
// grid shares one table instead of recomputing it per grid point.
func (c *Chain) poissonCached(lambda, eps float64) (*poisson.Weights, error) {
	if c.noSolveCache {
		return poisson.Compute(lambda, eps)
	}
	key := weightKey{lambda, eps}
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.cacheLocked()
	if w, ok := sc.weights[key]; ok {
		c.Obs.Inc("ctmc_poisson_cache_total", obs.L("outcome", "hit"))
		return w, nil
	}
	if c.family != nil {
		if w, ok := c.family.poisson(key); ok {
			c.Obs.Inc("ctmc_poisson_cache_total", obs.L("outcome", "family-hit"))
			sc.weights[key] = w
			return w, nil
		}
	}
	c.Obs.Inc("ctmc_poisson_cache_total", obs.L("outcome", "miss"))
	w, err := poisson.Compute(lambda, eps)
	if err != nil {
		return nil, err
	}
	if len(sc.weights) >= maxWeightTables {
		sc.weights = make(map[weightKey]*poisson.Weights)
	}
	sc.weights[key] = w
	if c.family != nil {
		c.family.storePoisson(key, w)
	}
	return w, nil
}

// FromStateSpace builds the CTMC of a derived PEPA state space.
func FromStateSpace(ss *derive.StateSpace) *Chain {
	n := ss.NumStates()
	coo := sparse.NewCOO(n, n, ss.NumTransitions()+n)
	exit := make([]float64, n)
	actRate := map[string][]float64{}
	for _, a := range ss.ActionTypes {
		actRate[a] = make([]float64, n)
	}
	for s := 0; s < n; s++ {
		for _, tr := range ss.Trans[s] {
			coo.Add(s, tr.To, tr.Rate)
			exit[s] += tr.Rate
			actRate[tr.Action][s] += tr.Rate
		}
		coo.Add(s, s, -exit[s])
	}
	return &Chain{N: n, Q: coo.ToCSR(), ExitRate: exit, ActionRate: actRate, Initial: 0}
}

// NewChain builds a CTMC directly from a dense rate map (tests, synthetic
// chains). rates[i][j] is the transition rate from i to j.
func NewChain(n int, rates map[[2]int]float64) *Chain {
	coo := sparse.NewCOO(n, n, len(rates)+n)
	exit := make([]float64, n)
	keys := make([][2]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		r := rates[k]
		if k[0] == k[1] {
			continue
		}
		if r < 0 {
			panic(fmt.Sprintf("ctmc: negative rate %g at %v", r, k))
		}
		coo.Add(k[0], k[1], r)
		exit[k[0]] += r
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, -exit[i])
	}
	return &Chain{N: n, Q: coo.ToCSR(), ExitRate: exit, ActionRate: map[string][]float64{}}
}

// MaxExitRate returns the uniformization constant max_i |q_ii|.
func (c *Chain) MaxExitRate() float64 {
	var m float64
	for _, r := range c.ExitRate {
		if r > m {
			m = r
		}
	}
	return m
}

// SteadyStateOptions tunes the stationary solver.
type SteadyStateOptions struct {
	Tol       float64 // convergence tolerance (default 1e-12)
	MaxIter   int     // Gauss–Seidel sweep budget (default 20000)
	DenseOnly bool    // skip the iterative attempt (tests)
	// DenseLimit is the largest N for which the dense LU fallback is
	// attempted (default 2000).
	DenseLimit int
	// Workers bounds the goroutines of the power-iteration products and
	// residual checks (0 inherits Chain.Workers; <= 1 sequential).
	// Bit-identical for any value.
	Workers int
}

func (o SteadyStateOptions) withDefaults() SteadyStateOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 20000
	}
	if o.DenseLimit <= 0 {
		o.DenseLimit = 2000
	}
	return o
}

// StageAttempt records one stage of the steady-state escalation chain
// (Gauss–Seidel -> power iteration -> BiCGStab -> dense LU) for diagnosis
// when the whole chain fails.
type StageAttempt struct {
	Method     string  // "gauss-seidel", "power-iteration", "bicgstab", "dense-lu"
	Iterations int     // iterations spent (0 when the stage never ran)
	Residual   float64 // final ||pi·Q||_inf (NaN when unavailable)
	Err        string  // why the stage was rejected
}

// ConvergenceError is the structured escalation trace returned when
// every steady-state stage fails: it names each attempted solver, the
// work it did, and why it was rejected, so a non-converging model is
// debuggable instead of opaque.
type ConvergenceError struct {
	N      int // chain size
	Stages []StageAttempt
}

func (e *ConvergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ctmc: steady-state failed on all %d stages (n=%d):", len(e.Stages), e.N)
	for _, s := range e.Stages {
		fmt.Fprintf(&b, "\n  %-15s", s.Method)
		if s.Iterations > 0 {
			fmt.Fprintf(&b, " iters=%d", s.Iterations)
		}
		if !math.IsNaN(s.Residual) {
			fmt.Fprintf(&b, " residual=%.3g", s.Residual)
		}
		fmt.Fprintf(&b, ": %s", s.Err)
	}
	return b.String()
}

// SteadyState solves pi·Q = 0, sum(pi) = 1 for an irreducible chain. It
// first runs normalized Gauss–Seidel on Qᵀ·piᵀ = 0, then power iteration
// on the uniformized DTMC (which handles chains too large or too stiff
// for Gauss–Seidel), then Jacobi-preconditioned BiCGStab on the
// normalized system (a Krylov method whose iteration count does not
// scale with the stiffness ratio the way the stationary iterations do),
// and finally falls back to a dense LU solve with the normalization
// condition replacing one equation. When every stage fails the returned
// error is a *ConvergenceError carrying the full escalation trace.
func (c *Chain) SteadyState(opt SteadyStateOptions) ([]float64, error) {
	return c.SteadyStateCtx(context.Background(), opt)
}

// SteadyStateCtx is SteadyState with cooperative cancellation: ctx is
// polled once per Gauss–Seidel sweep and per power iteration, and an
// interrupted solve returns a *runctx.ErrCanceled carrying the
// iterations done and the residual at interruption. An uncancelled
// context leaves the escalation chain bit-identical to SteadyState.
func (c *Chain) SteadyStateCtx(ctx context.Context, opt SteadyStateOptions) ([]float64, error) {
	opt = opt.withDefaults()
	if c.N == 0 {
		return nil, fmt.Errorf("ctmc: empty chain")
	}
	if c.N == 1 {
		return []float64{1}, nil
	}
	if opt.Workers == 0 {
		opt.Workers = c.Workers
	}
	qt := c.transposedQCached()
	// One scratch arena serves the whole ladder: a rejected stage's work
	// vectors are recycled by the next stage's retry instead of growing
	// the heap per escalation. Scoped to this call (Scratch is not
	// concurrency-safe; chains are shared across goroutines).
	scratch := &sparse.Scratch{}
	var stages []StageAttempt
	if !opt.DenseOnly {
		pi, att, ok := c.steadyIterative(ctx, qt, opt, scratch)
		if cerr := ctx.Err(); cerr != nil && !ok {
			return nil, c.canceledStage(cerr, att)
		}
		c.recordStage(att, ok)
		if ok {
			return pi, nil
		}
		stages = append(stages, att)
		pi, att, ok = c.steadyPower(ctx, opt, scratch)
		if cerr := ctx.Err(); cerr != nil && !ok {
			return nil, c.canceledStage(cerr, att)
		}
		c.recordStage(att, ok)
		if ok {
			return pi, nil
		}
		stages = append(stages, att)
		pi, att, ok = c.steadyKrylov(ctx, qt, opt, scratch)
		if cerr := ctx.Err(); cerr != nil && !ok {
			return nil, c.canceledStage(cerr, att)
		}
		c.recordStage(att, ok)
		if ok {
			return pi, nil
		}
		stages = append(stages, att)
	}
	if c.N > opt.DenseLimit {
		stages = append(stages, StageAttempt{
			Method:   "dense-lu",
			Residual: math.NaN(),
			Err:      fmt.Sprintf("chain (n=%d) exceeds dense fallback limit %d", c.N, opt.DenseLimit),
		})
		return nil, &ConvergenceError{N: c.N, Stages: stages}
	}
	pi, err := c.steadyDense(qt)
	if err != nil {
		att := StageAttempt{Method: "dense-lu", Residual: math.NaN(), Err: err.Error()}
		c.recordStage(att, false)
		stages = append(stages, att)
		return nil, &ConvergenceError{N: c.N, Stages: stages}
	}
	c.recordStage(StageAttempt{Method: "dense-lu", Residual: math.NaN()}, true)
	return pi, nil
}

// canceledStage converts an interrupted stage attempt into the typed
// cancellation error (and counts it), preserving the iterations done
// and the residual at interruption for the partial report.
func (c *Chain) canceledStage(cause error, att StageAttempt) error {
	runctx.Record(c.Obs, "ctmc.steady-state", cause)
	err := runctx.New("ctmc.steady-state", cause, att.Iterations, 0, "iterations")
	err.Residual = att.Residual
	return err
}

// recordStage publishes one escalation-chain stage to the metrics
// registry. All Registry methods are nil-safe, so an uninstrumented
// chain pays only this call.
func (c *Chain) recordStage(att StageAttempt, ok bool) {
	if c.Obs == nil {
		return
	}
	outcome := "rejected"
	if ok {
		outcome = "accepted"
	}
	method := obs.L("method", att.Method)
	c.Obs.Inc("ctmc_steady_stages_total", method, obs.L("outcome", outcome))
	// Per-stage outcome counter keyed by stage name, so dashboards can
	// watch how often each ladder rung (notably the Krylov stage) fires
	// and whether it accepts, without parsing the combined trace.
	c.Obs.Inc("ctmc_solve_stage_total", obs.L("stage", att.Method), obs.L("outcome", outcome))
	c.Obs.Add("ctmc_steady_iterations_total", float64(att.Iterations), method)
	if !math.IsNaN(att.Residual) {
		c.Obs.Set("ctmc_steady_residual", att.Residual, method)
	}
}

// residualNormInf computes the acceptance residual ||piᵀ·Q||_inf of the
// steady-state stages, routing the product through the transpose-backed
// parallel kernel when workers > 1 (bit-identical to the sequential path).
func (c *Chain) residualNormInf(pi []float64, workers int) float64 {
	if workers > 1 {
		qt := c.transposedQCached()
		y := make([]float64, c.N)
		sparse.VecMulAccumPlanT(qt, y, pi, nil, 0, c.planCached(qt, workers), c.solvePool(workers))
		return linalg.NormInf(y)
	}
	return linalg.NormInf(c.Q.VecMul(pi))
}

// steadyPower runs power iteration on the uniformized DTMC
// P = I + Q/(1.1·q): the stationary distribution of P equals that of the
// CTMC, and the slack factor guarantees aperiodicity.
func (c *Chain) steadyPower(ctx context.Context, opt SteadyStateOptions, scratch *sparse.Scratch) ([]float64, StageAttempt, bool) {
	att := StageAttempt{Method: "power-iteration", Residual: math.NaN()}
	q := c.MaxExitRate()
	if q == 0 {
		att.Err = "zero uniformization rate (no transitions)"
		return nil, att, false
	}
	p := c.uniformizedCached(q * 1.1)
	iterOpt := sparse.IterOptions{MaxIter: opt.MaxIter * 5, Tol: opt.Tol, Workers: opt.Workers, Cancel: ctx.Err, Scratch: scratch}
	if opt.Workers > 1 {
		pt := c.uniformizedTransposeCached(q * 1.1)
		iterOpt.Transposed = pt
		iterOpt.Plan = c.planCached(pt, opt.Workers)
		iterOpt.Pool = c.solvePool(opt.Workers)
	}
	pi, res, err := sparse.PowerIteration(p, iterOpt)
	att.Iterations = res.Iterations
	if err != nil {
		att.Err = err.Error()
		return nil, att, false
	}
	if !res.Converged {
		att.Err = fmt.Sprintf("did not converge within %d iterations", opt.MaxIter*5)
		return nil, att, false
	}
	// Verify the CTMC residual before accepting.
	att.Residual = c.residualNormInf(pi, opt.Workers)
	if att.Residual > math.Sqrt(opt.Tol) {
		att.Err = fmt.Sprintf("converged but residual %.3g exceeds %.3g", att.Residual, math.Sqrt(opt.Tol))
		return nil, att, false
	}
	return pi, att, true
}

// steadyIterative runs Gauss–Seidel sweeps on Qᵀx = 0 with renormalization;
// the trivial solution is avoided by the normalization step.
func (c *Chain) steadyIterative(ctx context.Context, qt *sparse.CSR, opt SteadyStateOptions, scratch *sparse.Scratch) ([]float64, StageAttempt, bool) {
	att := StageAttempt{Method: "gauss-seidel", Residual: math.NaN()}
	n := c.N
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	// One linear pass over the CSR entries instead of a per-row binary
	// search: the diagonal is dense in any irreducible generator.
	diag := scratch.Get(n)
	defer scratch.Put(diag)
	qt.DiagInto(diag)
	for i, d := range diag {
		if d == 0 {
			// Absorbing state: the chain is not irreducible; Gauss–Seidel
			// in this form cannot proceed.
			att.Err = fmt.Sprintf("zero diagonal at state %d (absorbing state; chain not irreducible)", i)
			return nil, att, false
		}
	}
	for it := 0; it < opt.MaxIter; it++ {
		if cerr := ctx.Err(); cerr != nil {
			att.Residual = c.residualNormInf(pi, opt.Workers)
			att.Err = "canceled: " + cerr.Error()
			return nil, att, false
		}
		att.Iterations = it + 1
		var delta float64
		for i := 0; i < n; i++ {
			var s float64
			for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
				j := qt.ColIdx[k]
				if j != i {
					s -= qt.Val[k] * pi[j]
				}
			}
			nx := s / diag[i]
			if nx < 0 {
				nx = 0
			}
			if d := math.Abs(nx - pi[i]); d > delta {
				delta = d
			}
			pi[i] = nx
		}
		if sum := linalg.Normalize1(pi); sum == 0 {
			att.Err = "iterate collapsed to the zero vector"
			return nil, att, false
		}
		if delta < opt.Tol {
			// Verify the residual ||piQ||_inf before accepting.
			att.Residual = c.residualNormInf(pi, opt.Workers)
			if att.Residual < math.Sqrt(opt.Tol) {
				return pi, att, true
			}
			att.Err = fmt.Sprintf("converged but residual %.3g exceeds %.3g", att.Residual, math.Sqrt(opt.Tol))
			return nil, att, false
		}
	}
	att.Residual = c.residualNormInf(pi, opt.Workers)
	att.Err = fmt.Sprintf("did not converge within %d sweeps", opt.MaxIter)
	return nil, att, false
}

// steadyKrylov runs Jacobi-preconditioned BiCGStab on the normalized
// steady-state system A·piᵀ = e_n, where A is Qᵀ with its last row
// replaced by the all-ones normalization row (the same system steadyDense
// factorizes, but matrix-free and sparse): the product y = A·x is the
// cached Qᵀ product — routed through the plan/pool kernel when workers
// allow, bit-identical to the sequential path — with y[n-1] overwritten
// by sum(x). A Krylov method's iteration count is governed by the
// spectrum, not the stiffness ratio, so this rung catches generators
// whose rate spreads starve both stationary iterations while n is far
// beyond the dense fallback limit.
func (c *Chain) steadyKrylov(ctx context.Context, qt *sparse.CSR, opt SteadyStateOptions, scratch *sparse.Scratch) ([]float64, StageAttempt, bool) {
	att := StageAttempt{Method: "bicgstab", Residual: math.NaN()}
	n := c.N
	workers := opt.Workers
	var (
		plan *sparse.Plan
		pool *sparse.Pool
	)
	if workers > 1 && qt.NNZ() >= sparse.ParallelNNZThreshold {
		plan = c.planCached(qt, workers)
		pool = c.solvePool(workers)
	} else {
		workers = 1
	}
	apply := func(y, x []float64) {
		if workers > 1 {
			sparse.VecMulAccumPlanT(qt, y, x, nil, 0, plan, pool)
		} else {
			qt.MulVecTo(y, x)
		}
		var sum float64
		for _, v := range x {
			sum += v
		}
		y[n-1] = sum
	}
	diag := scratch.Get(n)
	defer scratch.Put(diag)
	qt.DiagInto(diag)
	// The normalization row's diagonal entry is 1; generator diagonals are
	// negative exit rates, which Jacobi handles sign and all.
	diag[n-1] = 1
	b := scratch.Get(n)
	defer scratch.Put(b)
	clear(b)
	b[n-1] = 1
	pi := make([]float64, n)
	res, err := sparse.BiCGStab(apply, pi, b, diag, sparse.IterOptions{
		Tol: opt.Tol, MaxIter: opt.MaxIter, Cancel: ctx.Err, Scratch: scratch,
	})
	att.Iterations = res.Iterations
	att.Residual = res.Residual
	if err != nil {
		att.Err = err.Error()
		return nil, att, false
	}
	if !res.Converged {
		att.Err = fmt.Sprintf("did not converge within %d iterations", opt.MaxIter)
		return nil, att, false
	}
	// Post-process exactly like the dense stage: reject NaN and genuinely
	// negative mass, forgive LU-scale negative roundoff, renormalize.
	for i, v := range pi {
		if math.IsNaN(v) {
			att.Err = fmt.Sprintf("produced NaN at state %d (singular system?)", i)
			return nil, att, false
		}
		if v < 0 && v > -1e-9 {
			pi[i] = 0
		} else if v < 0 {
			att.Err = fmt.Sprintf("produced negative probability %g at state %d (chain reducible?)", v, i)
			return nil, att, false
		}
	}
	if sum := linalg.Normalize1(pi); sum == 0 {
		att.Err = "solution collapsed to the zero vector"
		return nil, att, false
	}
	// Verify the CTMC residual before accepting, like every other rung.
	att.Residual = c.residualNormInf(pi, opt.Workers)
	if att.Residual > math.Sqrt(opt.Tol) {
		att.Err = fmt.Sprintf("converged but residual %.3g exceeds %.3g", att.Residual, math.Sqrt(opt.Tol))
		return nil, att, false
	}
	return pi, att, true
}

// steadyDense solves the dense system Qᵀ·piᵀ = 0 with the last equation
// replaced by sum(pi) = 1.
func (c *Chain) steadyDense(qt *sparse.CSR) ([]float64, error) {
	n := c.N
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
			a.Set(i, qt.ColIdx[k], qt.Val[k])
		}
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	pi, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: dense steady-state solve: %w", err)
	}
	for i, v := range pi {
		if math.IsNaN(v) {
			// Both ordered branches below are false for NaN; without this
			// check a singular system would silently yield a NaN vector.
			return nil, fmt.Errorf("ctmc: steady-state produced NaN at state %d (singular system?)", i)
		}
		if v < 0 && v > -1e-9 {
			pi[i] = 0
		} else if v < 0 {
			return nil, fmt.Errorf("ctmc: steady-state produced negative probability %g at state %d (chain reducible?)", v, i)
		}
	}
	linalg.Normalize1(pi)
	return pi, nil
}

// Transient computes the state distribution at time t from the initial
// distribution p0 by uniformization:
//
//	p(t) = sum_k Poisson(q·t; k) · p0 · P^k,  P = I + Q/q,
//
// with q the uniformization rate and the Poisson sum truncated to capture
// 1-eps of the mass.
func (c *Chain) Transient(p0 []float64, t, eps float64) ([]float64, error) {
	return c.TransientCtx(context.Background(), p0, t, eps)
}

// TransientCtx is Transient with cooperative cancellation: ctx is
// polled once per uniformization term (each term costs a sparse
// matrix-vector product, so the poll is noise). An interrupted solve
// returns a *runctx.ErrCanceled reporting the terms summed so far.
func (c *Chain) TransientCtx(ctx context.Context, p0 []float64, t, eps float64) ([]float64, error) {
	return c.transientCtx(ctx, p0, t, eps, nil, nil)
}

// transientCtx is TransientCtx with an optional scratch arena for the
// propagation buffers (cur/next) and an optional output buffer: when out
// is non-nil the result is accumulated into it (cleared first) instead
// of a fresh allocation, so a grid whose caller reduces each point to a
// scalar (FirstPassageCDF) allocates no per-point distribution at all.
// Results are bit-identical in every combination (all buffers are fully
// initialized before use).
func (c *Chain) transientCtx(ctx context.Context, p0 []float64, t, eps float64, scratch *sparse.Scratch, out []float64) ([]float64, error) {
	if len(p0) != c.N {
		return nil, fmt.Errorf("ctmc: initial distribution length %d != %d states", len(p0), c.N)
	}
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	if eps <= 0 {
		eps = 1e-10
	}
	q := c.MaxExitRate()
	if q == 0 || t == 0 {
		if out == nil {
			out = make([]float64, c.N)
		}
		copy(out, p0)
		return out, nil
	}
	// Uniformized DTMC P = I + Q/q as CSR, memoized per chain so a series
	// of transient solves (a CDF grid) assembles and sorts it exactly once.
	p := c.uniformizedCached(q)
	w, err := c.poissonCached(q*t, eps)
	if err != nil {
		return nil, err
	}
	workers := c.Workers
	var (
		pt   *sparse.CSR
		plan *sparse.Plan
		pool *sparse.Pool
	)
	// The power loop needs xᵀ·P, whose scatter writes defeat row
	// partitioning; the cached transpose turns each output entry into an
	// independent dot product (bit-identical, disjoint writes). Matrices
	// under the parallel threshold never pay for the transpose or pool.
	parallel := workers > 1 && p.NNZ() >= sparse.ParallelNNZThreshold
	if parallel {
		pt = c.uniformizedTransposeCached(q)
		plan = c.planCached(pt, workers)
		pool = c.solvePool(workers)
	}
	c.Obs.Inc("ctmc_transient_solves_total")
	c.Obs.Add("ctmc_uniformization_terms_total", float64(w.Right+1))
	c.Obs.Set("ctmc_uniformization_truncation_depth", float64(w.Right))
	c.Obs.Set("ctmc_solve_workers", math.Max(1, float64(workers)))
	// acc is returned, so without a caller-provided buffer it is a fresh
	// allocation; the two propagation buffers come from the scratch arena
	// when one is provided. Recycled buffers must start zeroed — acc is
	// pure accumulation, and the windowed scatter relies on everything
	// outside next's dirty window being exact zero.
	cur := scratch.Get(c.N)
	defer scratch.Put(cur)
	copy(cur, p0)
	acc := out
	if acc == nil {
		acc = make([]float64, c.N)
	} else {
		clear(acc)
	}
	next := scratch.Get(c.N)
	defer scratch.Put(next)
	clear(next)
	// lo/hi is the nonzero support window of cur; dirtyLo/dirtyHi bounds
	// what next may hold from its previous use as cur. Propagating the
	// windows keeps a concentrated iterate (a point mass spreading one
	// transition per term) at O(support) per term instead of O(n). All
	// skipped work is exact zeros, so the windows change no output bit.
	lo, hi := c.N, 0
	for i, v := range cur {
		if v != 0 {
			if i < lo {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo >= hi {
		lo, hi = 0, 0
	}
	dirtyLo, dirtyHi := 0, 0
	for k := 0; k <= w.Right; k++ {
		if cerr := ctx.Err(); cerr != nil {
			runctx.Record(c.Obs, "ctmc.transient", cerr)
			return nil, runctx.New("ctmc.transient", cerr, k, w.Right+1, "uniformization terms")
		}
		pw := w.Pmf(k)
		var accTerm []float64
		if pw > 0 {
			accTerm = acc
		}
		if k == w.Right {
			if pw > 0 {
				for i := lo; i < hi; i++ {
					if xi := cur[i]; xi != 0 {
						acc[i] += pw * xi
					}
				}
			}
			break
		}
		// Adaptive dispatch: the parallel transpose kernel reads every
		// stored entry, so it only wins once the iterate's support covers
		// enough of the matrix; a concentrated iterate runs the windowed
		// scatter. Both paths fuse the Poisson accumulation into the pass.
		if parallel && p.ActiveNNZ(cur, lo, hi, sparse.ParallelNNZThreshold) >= sparse.ParallelNNZThreshold {
			sparse.VecMulAccumPlanT(pt, next, cur, accTerm, pw, plan, pool)
			cur, next = next, cur
			// The kernel wrote every entry of the new cur; the swapped-out
			// buffer only held the old support window.
			dirtyLo, dirtyHi = lo, hi
			lo, hi = 0, c.N
		} else {
			if dirtyHi > dirtyLo {
				clear(next[dirtyLo:dirtyHi])
			}
			nlo, nhi := p.VecMulAccumScatter(next, cur, accTerm, pw, lo, hi)
			cur, next = next, cur
			dirtyLo, dirtyHi = lo, hi
			lo, hi = nlo, nhi
		}
	}
	// Renormalize the truncation slack.
	linalg.Normalize1(acc)
	return acc, nil
}

// TransientSeries evaluates the transient distribution on an ascending
// time grid. Instead of solving each horizon from scratch (O(sum q·t_k)
// matrix-vector products), it propagates incrementally from grid point to
// grid point (O(q·t_max) total): p(t_{k+1}) = Transient(p(t_k), dt).
// Truncation error accumulates additively over the grid, so the per-step
// eps is tightened by the number of steps.
func (c *Chain) TransientSeries(p0 []float64, times []float64, eps float64) ([][]float64, error) {
	return c.TransientSeriesCtx(context.Background(), p0, times, eps)
}

// TransientSeriesCtx is TransientSeries with cooperative cancellation.
// An interrupted run returns a *runctx.ErrCanceled whose Partial holds
// the prefix of grid distributions already propagated (out[:Done]),
// chained to the inner per-term cancellation for the full trace.
func (c *Chain) TransientSeriesCtx(ctx context.Context, p0 []float64, times []float64, eps float64) ([][]float64, error) {
	if eps <= 0 {
		eps = 1e-10
	}
	out := make([][]float64, len(times))
	if len(times) == 0 {
		return out, nil
	}
	stepEps := eps / float64(len(times))
	cur := append([]float64(nil), p0...)
	prevT := 0.0
	// One scratch arena serves every grid point's propagation buffers;
	// only the per-point output distributions are fresh allocations.
	scratch := &sparse.Scratch{}
	for i, t := range times {
		dt := t - prevT
		if dt < 0 {
			return nil, fmt.Errorf("ctmc: TransientSeries needs an ascending grid (t[%d]=%g < %g)", i, t, prevT)
		}
		pt, err := c.transientCtx(ctx, cur, dt, stepEps, scratch, nil)
		if err != nil {
			var inner *runctx.ErrCanceled
			if errors.As(err, &inner) {
				ec := runctx.New("ctmc.transient-series", err, i, len(times), "grid points")
				ec.Partial = out[:i]
				return nil, ec
			}
			return nil, fmt.Errorf("ctmc: transient step to t=%g: %w", t, err)
		}
		out[i] = pt
		cur = append(cur[:0], pt...)
		prevT = t
	}
	return out, nil
}

// uniformized builds P = I + Q/q directly in CSR form. Q's rows are
// already column-sorted and duplicate-free, so the COO round-trip the
// original implementation paid — a counting sort plus per-row column
// sorts on every uncached build — is pure overhead; the direct build is
// one pass over Q. Bit-identity with the COO path is preserved exactly:
// the off-diagonal mass is accumulated in the same ascending-column
// order, the diagonal 1-offDiag is emitted at its sorted position, and
// exact-zero values are dropped just as ToCSR drops them.
func (c *Chain) uniformized(q float64) *sparse.CSR {
	n := c.N
	m := &sparse.CSR{
		Rows: n, Cols: n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, c.Q.NNZ()+n),
		Val:    make([]float64, 0, c.Q.NNZ()+n),
	}
	for i := 0; i < n; i++ {
		s, e := c.Q.RowPtr[i], c.Q.RowPtr[i+1]
		var offDiag float64
		for k := s; k < e; k++ {
			if c.Q.ColIdx[k] != i {
				offDiag += c.Q.Val[k] / q
			}
		}
		d := 1 - offDiag
		emittedDiag := false
		for k := s; k < e; k++ {
			j := c.Q.ColIdx[k]
			if j == i {
				continue
			}
			if !emittedDiag && j > i {
				if d != 0 {
					m.ColIdx = append(m.ColIdx, i)
					m.Val = append(m.Val, d)
				}
				emittedDiag = true
			}
			if v := c.Q.Val[k] / q; v != 0 {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, v)
			}
		}
		if !emittedDiag && d != 0 {
			m.ColIdx = append(m.ColIdx, i)
			m.Val = append(m.Val, d)
		}
		m.RowPtr[i+1] = len(m.ColIdx)
	}
	return m
}

// PointMass returns a distribution concentrated on state s.
func (c *Chain) PointMass(s int) []float64 {
	p := make([]float64, c.N)
	p[s] = 1
	return p
}

// Throughput returns the steady-state throughput of an action: the
// expected number of completions per unit time, sum_s pi(s)·rate_a(s).
func (c *Chain) Throughput(pi []float64, action string) (float64, error) {
	rates, ok := c.ActionRate[action]
	if !ok {
		return 0, fmt.Errorf("ctmc: unknown action type %q", action)
	}
	return linalg.Dot(pi, rates), nil
}

// Throughputs returns the steady-state throughput of every action type,
// keyed by action. Conformance checks use this to compare the exact chain
// against simulation estimates action-by-action.
func (c *Chain) Throughputs(pi []float64) map[string]float64 {
	out := make(map[string]float64, len(c.ActionRate))
	for a, rates := range c.ActionRate {
		out[a] = linalg.Dot(pi, rates)
	}
	return out
}

// Utilization returns the steady-state probability mass of the states
// selected by the predicate over state indices.
func (c *Chain) Utilization(pi []float64, selected []int) float64 {
	var u float64
	for _, s := range selected {
		u += pi[s]
	}
	return u
}

// PassageCDF computes the first-passage-time distribution from the source
// distribution p0 to the target set: targets are made absorbing and the
// CDF value at time t is the probability mass absorbed by t.
type PassageCDF struct {
	Times []float64
	Probs []float64
}

// FirstPassageCDF evaluates P(T_target <= t) on the given ascending time
// grid. Target states are transformed to absorbing states; if p0 already
// places mass on a target, that mass counts as passed at t=0. A generator
// with a negative off-diagonal rate is rejected with an error (it would
// silently lose probability mass in the absorbing transform).
func (c *Chain) FirstPassageCDF(p0 []float64, targets []int, times []float64, eps float64) (*PassageCDF, error) {
	return c.FirstPassageCDFCtx(context.Background(), p0, targets, times, eps)
}

// FirstPassageCDFCtx is FirstPassageCDF with cooperative cancellation
// (inherited from the transient-series propagation). An interrupted
// evaluation returns a *runctx.ErrCanceled whose Partial is the
// *PassageCDF over the grid prefix already reached.
func (c *Chain) FirstPassageCDFCtx(ctx context.Context, p0 []float64, targets []int, times []float64, eps float64) (*PassageCDF, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("ctmc: empty passage target set")
	}
	for _, s := range targets {
		if s < 0 || s >= c.N {
			return nil, fmt.Errorf("ctmc: target state %d out of range", s)
		}
	}
	abs, isTarget, err := c.absorbingChain(targets)
	if err != nil {
		return nil, err
	}
	cdf := &PassageCDF{Times: append([]float64(nil), times...), Probs: make([]float64, len(times))}
	if len(times) == 0 {
		return cdf, nil
	}
	// Stream the grid instead of materializing the full distribution
	// series: each point is propagated incrementally like
	// TransientSeriesCtx (same grid math, bit-identical probabilities)
	// but reduced to its absorbed-mass scalar on the spot, with the
	// distribution buffers recycled through one scratch arena — a CDF
	// grid allocates no per-point distributions at all.
	if eps <= 0 {
		eps = 1e-10
	}
	stepEps := eps / float64(len(times))
	scratch := &sparse.Scratch{}
	cur := scratch.Get(c.N)
	copy(cur, p0)
	acc := scratch.Get(c.N)
	prevT := 0.0
	for i, t := range times {
		dt := t - prevT
		if dt < 0 {
			return nil, fmt.Errorf("ctmc: FirstPassageCDF needs an ascending grid (t[%d]=%g < %g)", i, t, prevT)
		}
		pt, err := abs.transientCtx(ctx, cur, dt, stepEps, scratch, acc)
		if err != nil {
			var inner *runctx.ErrCanceled
			if errors.As(err, &inner) {
				partial := &PassageCDF{Times: append([]float64(nil), times[:i]...), Probs: append([]float64(nil), cdf.Probs[:i]...)}
				ec := runctx.New("ctmc.first-passage", err, i, len(times), "grid points")
				ec.Partial = partial
				return nil, ec
			}
			return nil, fmt.Errorf("ctmc: passage transient step to t=%g: %w", t, err)
		}
		cdf.Probs[i] = absorbedMass(pt, isTarget)
		copy(cur, pt)
		prevT = t
	}
	return cdf, nil
}

// absorbedMass sums the probability mass sitting on target states,
// clamped to [0,1]. Clamp01 also maps NaN to 0, so a poisoned transient
// solve cannot leak NaN into the CDF (it shows up as missing mass
// instead).
func absorbedMass(pt []float64, isTarget []bool) float64 {
	var mass float64
	for s, v := range pt {
		if isTarget[s] {
			mass += v
		}
	}
	return sparseutil.Clamp01(mass)
}

// absorbingChain builds (or returns the memoized) absorbing-transformed
// chain Q~ for the target set: target rows are zeroed so their mass can
// only accumulate. Conformance checks and CLI sweeps evaluate the same
// passage repeatedly, so the last target set's chain — including its own
// solve cache of P, Pᵀ, and weight tables — is kept on the parent cache.
func (c *Chain) absorbingChain(targets []int) (*Chain, []bool, error) {
	key := passageKey(targets)
	if !c.noSolveCache {
		c.mu.Lock()
		sc := c.cacheLocked()
		// Workers and Obs are baked into the memoized chain at build time
		// and never mutated afterwards (a published chain may be in use by
		// another goroutine), so a settings change is a cache miss.
		if sc.passageChain != nil && sc.passageKey == key &&
			sc.passageChain.Workers == c.Workers && sc.passageChain.Obs == c.Obs {
			abs, isTarget := sc.passageChain, sc.passageTargets
			c.mu.Unlock()
			c.Obs.Inc("ctmc_passage_cache_total", obs.L("outcome", "hit"))
			return abs, isTarget, nil
		}
		c.mu.Unlock()
		c.Obs.Inc("ctmc_passage_cache_total", obs.L("outcome", "miss"))
	}
	isTarget := make([]bool, c.N)
	for _, s := range targets {
		isTarget[s] = true
	}
	// Direct CSR→CSR build. Q's rows are column-sorted and duplicate-free,
	// so each non-target row of the absorbing matrix is its off-diagonals
	// copied in order with the diagonal -exit spliced at its sorted
	// position; a row with no exit gets no diagonal (its sum is exactly
	// zero, which ToCSR dropped). Bit-identical to the COO round-trip the
	// original implementation paid — same values accumulated in the same
	// ascending-column order — without the O(nnz) entry buffer or the
	// counting sort, which matters because a chain-family sweep builds one
	// absorbing chain per re-rated member.
	exit := make([]float64, c.N)
	qabs := &sparse.CSR{
		Rows: c.N, Cols: c.N,
		RowPtr: make([]int, c.N+1),
		ColIdx: make([]int, 0, c.Q.NNZ()),
		Val:    make([]float64, 0, c.Q.NNZ()),
	}
	for i := 0; i < c.N; i++ {
		if isTarget[i] {
			qabs.RowPtr[i+1] = len(qabs.Val)
			continue
		}
		lo, hi := c.Q.RowPtr[i], c.Q.RowPtr[i+1]
		var rowExit float64
		for k := lo; k < hi; k++ {
			if j := c.Q.ColIdx[k]; j != i {
				v := c.Q.Val[k]
				if v < 0 {
					return nil, nil, fmt.Errorf("ctmc: malformed generator: negative off-diagonal rate %g at (%d,%d)", v, i, j)
				}
				rowExit += v
			}
		}
		diagDone := rowExit == 0
		for k := lo; k < hi; k++ {
			j := c.Q.ColIdx[k]
			if j == i {
				continue
			}
			if !diagDone && j > i {
				qabs.ColIdx = append(qabs.ColIdx, i)
				qabs.Val = append(qabs.Val, -rowExit)
				diagDone = true
			}
			qabs.ColIdx = append(qabs.ColIdx, j)
			qabs.Val = append(qabs.Val, c.Q.Val[k])
		}
		if !diagDone {
			qabs.ColIdx = append(qabs.ColIdx, i)
			qabs.Val = append(qabs.Val, -rowExit)
		}
		exit[i] = rowExit
		qabs.RowPtr[i+1] = len(qabs.Val)
	}
	// The weight tables of the absorbing solve are shared through the
	// family (abs keeps the pointer), so a sweep's members compute each
	// Poisson table once between them.
	abs := &Chain{N: c.N, Q: qabs, ExitRate: exit, ActionRate: map[string][]float64{},
		Obs: c.Obs, Workers: c.Workers, noSolveCache: c.noSolveCache, family: c.family}
	// The passage solve runs on the absorbing chain; if the parent
	// already has a pool (owned or attached), share it instead of
	// spinning up a second set of workers. The absorbing chain never
	// closes a shared pool, and a pool replaced under it degrades to
	// inline execution — never to a wrong result.
	c.mu.Lock()
	if c.pool != nil {
		abs.pool, abs.poolOwned = c.pool, false
	}
	c.mu.Unlock()
	if !c.noSolveCache {
		c.mu.Lock()
		sc := c.cacheLocked()
		sc.passageKey, sc.passageChain, sc.passageTargets = key, abs, isTarget
		c.mu.Unlock()
	}
	return abs, isTarget, nil
}

// passageKey fingerprints a target set order-insensitively.
func passageKey(targets []int) string {
	sorted := append([]int(nil), targets...)
	sort.Ints(sorted)
	var b strings.Builder
	for _, s := range sorted {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// Quantile returns the earliest grid time at which the CDF reaches p, or
// +Inf if it never does on the grid.
func (c *PassageCDF) Quantile(p float64) float64 {
	for i, v := range c.Probs {
		if v >= p {
			return c.Times[i]
		}
	}
	return math.Inf(1)
}

// Mean estimates the mean passage time by trapezoidal integration of the
// complementary CDF over the grid (a lower bound if the CDF has not
// reached 1 by the final grid point).
func (c *PassageCDF) Mean() float64 {
	var m float64
	for i := 1; i < len(c.Times); i++ {
		dt := c.Times[i] - c.Times[i-1]
		surv0 := 1 - c.Probs[i-1]
		surv1 := 1 - c.Probs[i]
		m += dt * (surv0 + surv1) / 2
	}
	return m
}
