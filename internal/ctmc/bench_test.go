package ctmc

// Solve-path benchmarks gated by `make bench-compare`. The cached/uncached
// split on BenchmarkTransientSeries quantifies the uniformization cache;
// the workers sub-benchmarks show multi-core scaling of the transpose
// kernel on the same grid.

import (
	"fmt"
	"testing"
)

func benchSeriesChain(k, workers int, uncached bool) *Chain {
	c := NewChain(k+1, benchChainRates(k))
	c.Workers = workers
	c.noSolveCache = uncached
	return c
}

func runSeries(b *testing.B, c *Chain, points int, dt float64) {
	times := cdfGrid(points, dt)
	p0 := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientSeries(p0, times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientSeries(b *testing.B) {
	const k = 2000 // 2001 states, ~6k nonzeros: Fig 3/4 scale
	b.Run("uncached", func(b *testing.B) { runSeries(b, benchSeriesChain(k, 0, true), 40, 0.25) })
	b.Run("cached", func(b *testing.B) { runSeries(b, benchSeriesChain(k, 0, false), 40, 0.25) })
}

func BenchmarkTransientWorkers(b *testing.B) {
	const k = 60000 // ~180k nonzeros: above the parallel kernel threshold
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		// "=" keeps the worker count out of benchcmp's GOMAXPROCS-suffix
		// normalization (which strips a trailing -N).
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runSeries(b, benchSeriesChain(k, w, false), 8, 0.5)
		})
	}
}

func BenchmarkFirstPassageCDF(b *testing.B) {
	c := NewChain(801, benchChainRates(800))
	times := cdfGrid(30, 1)
	p0 := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FirstPassageCDF(p0, []int{800}, times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
