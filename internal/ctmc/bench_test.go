package ctmc

// Solve-path benchmarks gated by `make bench-compare`. The cached/uncached
// split on BenchmarkTransientSeries quantifies the uniformization cache;
// the workers sub-benchmarks show multi-core scaling of the transpose
// kernel on the same grid.

import (
	"fmt"
	"runtime"
	"testing"
)

func benchSeriesChain(k, workers int, uncached bool) *Chain {
	c := NewChain(k+1, benchChainRates(k))
	c.Workers = workers
	c.noSolveCache = uncached
	return c
}

func runSeries(b *testing.B, c *Chain, points int, dt float64) {
	times := cdfGrid(points, dt)
	p0 := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientSeries(p0, times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// runSeriesDense propagates a uniform initial distribution: full support
// from the first term, so the solve takes the parallel transpose kernel
// every term instead of the windowed scatter a point mass stays on.
func runSeriesDense(b *testing.B, c *Chain, points int, dt float64) {
	times := cdfGrid(points, dt)
	p0 := make([]float64, c.N)
	for i := range p0 {
		p0[i] = 1 / float64(c.N)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientSeries(p0, times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientSeries(b *testing.B) {
	const k = 2000 // 2001 states, ~6k nonzeros: Fig 3/4 scale
	b.Run("uncached", func(b *testing.B) { runSeries(b, benchSeriesChain(k, 0, true), 40, 0.25) })
	b.Run("cached", func(b *testing.B) { runSeries(b, benchSeriesChain(k, 0, false), 40, 0.25) })
}

func BenchmarkTransientWorkers(b *testing.B) {
	const k = 60000 // ~180k nonzeros: above the parallel kernel threshold
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		// "=" keeps the worker count out of benchcmp's GOMAXPROCS-suffix
		// normalization (which strips a trailing -N). The dense initial
		// distribution keeps the adaptive dispatch on the pooled parallel
		// kernel — a point mass would take the windowed scatter at every
		// worker count and measure nothing but the scatter.
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			// More pool workers than schedulable threads measures contention,
			// not scaling: on a GOMAXPROCS=1 runner every variant degenerates
			// to the sequential kernel plus handoff overhead and the sweep
			// records a flat (or inverted) curve. Skip rather than record a
			// misleading point; benchcmp's plateau rule warns on the
			// remaining variants instead of failing the gate.
			if w > runtime.GOMAXPROCS(0) {
				b.Skipf("workers=%d exceeds GOMAXPROCS=%d; scaling not measurable", w, runtime.GOMAXPROCS(0))
			}
			runSeriesDense(b, benchSeriesChain(k, w, false), 8, 0.5)
		})
	}
}

// BenchmarkSteadyStateStiff measures the escalation ladder on a stiff
// birth–death chain tuned so Gauss–Seidel and power iteration reject
// within the sweep budget and the BiCGStab rung accepts: the full
// GS-fail + power-fail + Krylov-accept sequence is the steady cost of a
// stiff model, so it is what `make bench-sweep` tracks.
func BenchmarkSteadyStateStiff(b *testing.B) {
	c := stiffChain(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SteadyState(SteadyStateOptions{MaxIter: 50, DenseLimit: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstPassageCDF(b *testing.B) {
	c := NewChain(801, benchChainRates(800))
	times := cdfGrid(30, 1)
	p0 := c.PointMass(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FirstPassageCDF(p0, []int{800}, times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
