package ctmc

import (
	"math"
	"testing"
)

func TestMeanTimeToAbsorptionErlang(t *testing.T) {
	// k exponential stages of rate lambda: mean hitting time of the end is
	// k/lambda from the start, (k-i)/lambda from stage i.
	k, lambda := 4, 2.0
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = lambda
	}
	c := NewChain(k+1, rates)
	m, err := c.MeanTimeToAbsorption([]int{k})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= k; i++ {
		want := float64(k-i) / lambda
		if math.Abs(m[i]-want) > 1e-12 {
			t.Errorf("m[%d] = %g, want %g", i, m[i], want)
		}
	}
}

func TestMeanTimeToAbsorptionWithBacktracking(t *testing.T) {
	// Birth-death on {0,1,2} absorbing at 2, all rates 1: first-step
	// analysis gives m0 = 1 + m1 and m1 = 1/2 + m0/2, so m0 = 3, m1 = 2.
	c := NewChain(3, map[[2]int]float64{
		{0, 1}: 1,
		{1, 0}: 1, {1, 2}: 1,
	})
	m, err := c.MeanTimeToAbsorption([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-3) > 1e-10 || math.Abs(m[1]-2) > 1e-10 {
		t.Errorf("m = %v, want [3 2 0]", m)
	}
}

func TestMeanTimeMatchesCDFMean(t *testing.T) {
	// Cross-check the direct solver against trapezoidal integration of the
	// passage CDF.
	c := NewChain(4, map[[2]int]float64{
		{0, 1}: 1.5, {1, 0}: 0.5, {1, 2}: 2, {2, 3}: 0.8,
	})
	m, err := c.MeanTimeToAbsorption([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 4001)
	for i := range times {
		times[i] = float64(i) * 0.01
	}
	cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{3}, times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf.Mean()-m[0]) > 0.02 {
		t.Errorf("CDF mean %g vs direct mean %g", cdf.Mean(), m[0])
	}
}

func TestMeanTimeUnreachableTarget(t *testing.T) {
	// State 0 cycles with 1 and never reaches 2.
	c := NewChain(3, map[[2]int]float64{
		{0, 1}: 1, {1, 0}: 1,
	})
	if _, err := c.MeanTimeToAbsorption([]int{2}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestMeanTimeBadInputs(t *testing.T) {
	c := NewChain(2, map[[2]int]float64{{0, 1}: 1})
	if _, err := c.MeanTimeToAbsorption(nil); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := c.MeanTimeToAbsorption([]int{5}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestAbsorptionProbabilityGamblersRuin(t *testing.T) {
	// Symmetric gambler's ruin on {0..4}: P(hit 4 before 0 | start=i) = i/4.
	n := 5
	rates := map[[2]int]float64{}
	for i := 1; i < n-1; i++ {
		rates[[2]int{i, i - 1}] = 1
		rates[[2]int{i, i + 1}] = 1
	}
	c := NewChain(n, rates)
	h, err := c.AbsorptionProbability([]int{4}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / 4
		if math.Abs(h[i]-want) > 1e-12 {
			t.Errorf("h[%d] = %g, want %g", i, h[i], want)
		}
	}
}

func TestAbsorptionProbabilityBiased(t *testing.T) {
	// Up-rate 2, down-rate 1 on {0..3}: h_i = (1-(1/2)^i)/(1-(1/2)^3).
	rates := map[[2]int]float64{}
	for i := 1; i < 3; i++ {
		rates[[2]int{i, i - 1}] = 1
		rates[[2]int{i, i + 1}] = 2
	}
	c := NewChain(4, rates)
	h, err := c.AbsorptionProbability([]int{3}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	denom := 1 - math.Pow(0.5, 3)
	for i := 0; i < 4; i++ {
		want := (1 - math.Pow(0.5, float64(i))) / denom
		if math.Abs(h[i]-want) > 1e-12 {
			t.Errorf("h[%d] = %g, want %g", i, h[i], want)
		}
	}
}

func TestAbsorptionProbabilityValidation(t *testing.T) {
	c := NewChain(3, map[[2]int]float64{{1, 0}: 1, {1, 2}: 1})
	if _, err := c.AbsorptionProbability(nil, []int{0}); err == nil {
		t.Error("empty set A accepted")
	}
	if _, err := c.AbsorptionProbability([]int{0}, []int{0}); err == nil {
		t.Error("overlapping sets accepted")
	}
	if _, err := c.AbsorptionProbability([]int{9}, []int{0}); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestExpectedSojourn(t *testing.T) {
	c := NewChain(3, map[[2]int]float64{{0, 1}: 4, {1, 2}: 2})
	mean, absorbing := c.ExpectedSojourn()
	if mean[0] != 0.25 || mean[1] != 0.5 {
		t.Errorf("sojourn = %v", mean)
	}
	if absorbing[0] || absorbing[1] || !absorbing[2] {
		t.Errorf("absorbing flags = %v", absorbing)
	}
}
