package ctmc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

// famTemplate mixes constant references, a literal, and an active/passive
// cooperation — the shape the robustness machines have.
const famTemplate = `
	r1 = %R1%; r2 = %R2%;
	P = (task, r1).P1; P1 = (reset, r2).P;
	Q = (task, T).Q1; Q1 = (go, 2.5).Q;
	P <task> Q`

func famModel(t *testing.T, r1, r2 string) *pepa.Model {
	t.Helper()
	src := strings.ReplaceAll(strings.ReplaceAll(famTemplate, "%R1%", r1), "%R2%", r2)
	m, err := pepa.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if res := pepa.Check(m); res.Err() != nil {
		t.Fatalf("check: %v", res.Err())
	}
	return m
}

func famExplore(t *testing.T, m *pepa.Model) *derive.StateSpace {
	t.Helper()
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func chainsByteIdentical(t *testing.T, tag string, got, want *Chain) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d vs %d", tag, got.N, want.N)
	}
	if len(got.Q.RowPtr) != len(want.Q.RowPtr) || len(got.Q.ColIdx) != len(want.Q.ColIdx) {
		t.Fatalf("%s: pattern size differs", tag)
	}
	for i, p := range want.Q.RowPtr {
		if got.Q.RowPtr[i] != p {
			t.Fatalf("%s: RowPtr[%d] = %d vs %d", tag, i, got.Q.RowPtr[i], p)
		}
	}
	for k, j := range want.Q.ColIdx {
		if got.Q.ColIdx[k] != j {
			t.Fatalf("%s: ColIdx[%d] = %d vs %d", tag, k, got.Q.ColIdx[k], j)
		}
	}
	for k, v := range want.Q.Val {
		if math.Float64bits(got.Q.Val[k]) != math.Float64bits(v) {
			t.Fatalf("%s: Val[%d] = %x vs %x", tag, k, math.Float64bits(got.Q.Val[k]), math.Float64bits(v))
		}
	}
	for i, v := range want.ExitRate {
		if math.Float64bits(got.ExitRate[i]) != math.Float64bits(v) {
			t.Fatalf("%s: ExitRate[%d] differs", tag, i)
		}
	}
	if len(got.ActionRate) != len(want.ActionRate) {
		t.Fatalf("%s: actions %d vs %d", tag, len(got.ActionRate), len(want.ActionRate))
	}
	for a, ws := range want.ActionRate {
		gs, ok := got.ActionRate[a]
		if !ok {
			t.Fatalf("%s: missing action %q", tag, a)
		}
		for i, v := range ws {
			if math.Float64bits(gs[i]) != math.Float64bits(v) {
				t.Fatalf("%s: ActionRate[%q][%d] differs", tag, a, i)
			}
		}
	}
}

// TestChainFamilyBitIdenticalToFreshDerive pins the tentpole exactness
// claim: a family member assembled by plan-gather is byte-identical — Q
// pattern and values, exit rates, action rates — to deriving the
// re-rated model from scratch and running the cold FromStateSpace path.
func TestChainFamilyBitIdenticalToFreshDerive(t *testing.T) {
	fam, err := NewChainFamily(famExplore(t, famModel(t, "1.5", "0.25")))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ r1, r2 string }{
		{"1.5", "0.25"}, // the prototype's own rates
		{"0.7234985172345", "3.1121314151617"},
		{"1e-6", "1e6"}, // stiff member
	}
	for _, tc := range cases {
		env := map[string]float64{
			"r1": mustParseFloat(t, tc.r1),
			"r2": mustParseFloat(t, tc.r2),
		}
		member, err := fam.ChainForRates(env)
		if err != nil {
			t.Fatalf("r1=%s r2=%s: %v", tc.r1, tc.r2, err)
		}
		fresh := FromStateSpace(famExplore(t, famModel(t, tc.r1, tc.r2)))
		chainsByteIdentical(t, "r1="+tc.r1, member, fresh)
	}
}

func mustParseFloat(t *testing.T, s string) float64 {
	t.Helper()
	// Route through the PEPA parser so the test's env bits are exactly
	// the bits a literal in source would produce.
	m, err := pepa.Parse("x = " + s + "; P = (a, x).P; P")
	if err != nil {
		t.Fatal(err)
	}
	return m.Rates["x"]
}

// TestChainFamilyPassageBitIdentical: the passage CDF of a family member
// (absorbing transform built directly from the member's CSR, weights
// through the shared table) must be byte-identical to the fresh chain's.
func TestChainFamilyPassageBitIdentical(t *testing.T) {
	fam, err := NewChainFamily(famExplore(t, famModel(t, "1.5", "0.25")))
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{"r1": 0.7234985172345, "r2": 3.1121314151617}
	member, err := fam.ChainForRates(env)
	if err != nil {
		t.Fatal(err)
	}
	fresh := FromStateSpace(famExplore(t, famModel(t, "0.7234985172345", "3.1121314151617")))
	ssFresh := famExplore(t, famModel(t, "0.7234985172345", "3.1121314151617"))
	targets := ssFresh.StatesMatching(func(term string) bool { return strings.Contains(term, "Q1") })
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	times := []float64{0.5, 1, 2, 4}
	got, err := member.FirstPassageCDF(member.PointMass(0), targets, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.FirstPassageCDF(fresh.PointMass(0), targets, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Probs {
		if math.Float64bits(got.Probs[i]) != math.Float64bits(want.Probs[i]) {
			t.Fatalf("Probs[%d] = %x vs %x", i, math.Float64bits(got.Probs[i]), math.Float64bits(want.Probs[i]))
		}
	}
	// A second member with the same rates shares the family's weight
	// tables: its solve must report a family-level Poisson hit.
	member2, err := fam.ChainForRates(env)
	if err != nil {
		t.Fatal(err)
	}
	member2.Obs = obs.NewRegistry()
	if _, err := member2.FirstPassageCDF(member2.PointMass(0), targets, times, 1e-10); err != nil {
		t.Fatal(err)
	}
	if hits := member2.Obs.Counter("ctmc_poisson_cache_total", obs.L("outcome", "family-hit")); hits == 0 {
		t.Error("second member recorded no family-level Poisson hits")
	}
}

// TestChainFamilyFingerprint: ChainFor accepts a re-rated member and
// rejects a structurally different model.
func TestChainFamilyFingerprint(t *testing.T) {
	fam, err := NewChainFamily(famExplore(t, famModel(t, "1.5", "0.25")))
	if err != nil {
		t.Fatal(err)
	}
	member, err := fam.ChainFor(famModel(t, "2.5", "0.5"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := FromStateSpace(famExplore(t, famModel(t, "2.5", "0.5")))
	chainsByteIdentical(t, "ChainFor", member, fresh)

	other, err := pepa.Parse("r1 = 1; r2 = 1; P = (other, r1).P1; P1 = (reset, r2).P; P")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fam.ChainFor(other); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("structurally different model accepted: %v", err)
	}
}

// TestChainFamilyErrors: opaque provenance blocks family construction,
// and member construction validates the environment.
func TestChainFamilyErrors(t *testing.T) {
	m, err := pepa.Parse("r = 2; P = (a, 2*r).P; P")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChainFamily(famExplore(t, m)); !errors.Is(err, derive.ErrNotReratable) {
		t.Fatalf("err = %v, want ErrNotReratable", err)
	}
	fam, err := NewChainFamily(famExplore(t, famModel(t, "1.5", "0.25")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fam.ChainForRates(map[string]float64{"r1": 1}); err == nil {
		t.Error("missing constant accepted")
	}
	if _, err := fam.ChainForRates(map[string]float64{"r1": 1, "r2": -2}); err == nil {
		t.Error("non-positive constant accepted")
	}
}
