package ctmc

// Pool lifecycle and bit-identity tests for the persistent-worker solve
// path: the property battery pins that TransientSeries and
// FirstPassageCDF produce bit-identical output at every worker count
// (forcing tiny chains down the parallel kernels), the lifecycle tests
// pin that InvalidateSolveCache and finalization return the goroutine
// count to baseline, and the cancellation test pins that an interrupted
// series reports partial progress and leaves the pool reusable.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/numeric/sparse"
	"repro/internal/runctx"
)

// forceParallel drops the parallel-kernel threshold to zero for the test
// so small chains take the pooled transpose path, restoring it on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	saved := sparse.ParallelNNZThreshold
	sparse.ParallelNNZThreshold = 0
	t.Cleanup(func() { sparse.ParallelNNZThreshold = saved })
}

// randomRates builds a random generator from an LCG stream: some states
// absorbing (empty Q rows), one state dense (transitions everywhere).
func randomRates(s *uint64, n int) map[[2]int]float64 {
	next := func() float64 {
		*s = *s*6364136223846793005 + 1442695040888963407
		return float64(*s>>11) / (1 << 53)
	}
	rates := map[[2]int]float64{}
	denseState := int(next() * float64(n))
	for i := 0; i < n; i++ {
		if i != denseState && next() < 0.25 {
			continue // absorbing state: empty generator row
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if i == denseState || next() < 0.4 {
				rates[[2]int{i, j}] = next()*3 + 0.01
			}
		}
	}
	return rates
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestTransientAndPassageWorkersBitIdenticalProperty is the solver-level
// property battery: on randomized chains — empty rows, a dense row, and
// the 1×1 edge case — TransientSeries and FirstPassageCDF must be
// bit-identical across workers ∈ {1, 2, 4, 8}.
func TestTransientAndPassageWorkersBitIdenticalProperty(t *testing.T) {
	forceParallel(t)
	f := func(seed int64) bool {
		s := uint64(seed)
		n := 1 + int(s%24)
		rates := randomRates(&s, n)
		times := cdfGrid(5, 0.3)
		p0 := make([]float64, n)
		for i := range p0 {
			s = s*6364136223846793005 + 1442695040888963407
			p0[i] = float64(s >> 11)
		}

		ref := NewChain(n, rates) // Workers = 0: sequential scatter path
		refSeries, err := ref.TransientSeries(p0, times, 1e-9)
		if err != nil {
			t.Logf("seed %d: reference series: %v", seed, err)
			return false
		}
		var refCDF *PassageCDF
		if n > 1 {
			if refCDF, err = ref.FirstPassageCDF(p0, []int{n - 1}, times, 1e-9); err != nil {
				t.Logf("seed %d: reference CDF: %v", seed, err)
				return false
			}
		}

		for _, workers := range []int{1, 2, 4, 8} {
			c := NewChain(n, rates)
			c.Workers = workers
			defer c.InvalidateSolveCache()
			series, err := c.TransientSeries(p0, times, 1e-9)
			if err != nil {
				t.Logf("seed %d workers=%d: %v", seed, workers, err)
				return false
			}
			for k := range refSeries {
				if !bitsEqual(series[k], refSeries[k]) {
					t.Logf("seed %d workers=%d: series diverged at grid point %d", seed, workers, k)
					return false
				}
			}
			if n > 1 {
				cdf, err := c.FirstPassageCDF(p0, []int{n - 1}, times, 1e-9)
				if err != nil {
					t.Logf("seed %d workers=%d: CDF: %v", seed, workers, err)
					return false
				}
				if !bitsEqual(cdf.Probs, refCDF.Probs) {
					t.Logf("seed %d workers=%d: CDF diverged", seed, workers)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSteadyStateWorkersBitIdentical covers the power-iteration pool path
// (plan + pool from the chain caches) on a chain stiff enough that the
// escalation reaches power iteration deterministically at every worker
// count — bit-identical distributions and identical stage traces.
func TestSteadyStatePoolWorkersBitIdentical(t *testing.T) {
	forceParallel(t)
	rates := benchChainRates(150)
	ref := NewChain(151, rates)
	want, err := ref.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		c := NewChain(151, rates)
		c.Workers = workers
		defer c.InvalidateSolveCache()
		got, err := c.SteadyState(SteadyStateOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bitsEqual(got, want) {
			t.Fatalf("workers=%d: steady state diverged from sequential", workers)
		}
	}
}

func chainGoroutineBaseline(t *testing.T) int {
	t.Helper()
	runtime.GC()
	return runtime.NumGoroutine()
}

func waitForGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: goroutine count %d never returned to baseline %d", what, runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInvalidateSolveCacheReleasesPool(t *testing.T) {
	forceParallel(t)
	base := chainGoroutineBaseline(t)
	c := NewChain(101, benchChainRates(100))
	c.Workers = 4
	if _, err := c.TransientSeries(c.PointMass(0), cdfGrid(3, 0.5), 1e-9); err != nil {
		t.Fatal(err)
	}
	// The passage solve memoizes an absorbing chain with its own pool;
	// the cascade must release that one too.
	if _, err := c.FirstPassageCDF(c.PointMass(0), []int{100}, cdfGrid(3, 0.5), 1e-9); err != nil {
		t.Fatal(err)
	}
	if n := runtime.NumGoroutine(); n <= base {
		t.Fatalf("expected pool goroutines while solving, have %d (baseline %d)", n, base)
	}
	c.InvalidateSolveCache()
	waitForGoroutines(t, base, "InvalidateSolveCache")
	// The chain must stay fully usable: the next solve lazily rebuilds
	// cache and pool and produces bit-identical output.
	again, err := c.TransientSeries(c.PointMass(0), cdfGrid(3, 0.5), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewChain(101, benchChainRates(100))
	refSeries, err := ref.TransientSeries(ref.PointMass(0), cdfGrid(3, 0.5), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for k := range refSeries {
		if !bitsEqual(again[k], refSeries[k]) {
			t.Fatalf("post-invalidate solve diverged at grid point %d", k)
		}
	}
	c.InvalidateSolveCache()
	waitForGoroutines(t, base, "second InvalidateSolveCache")
}

func TestChainFinalizationReleasesPool(t *testing.T) {
	forceParallel(t)
	base := chainGoroutineBaseline(t)
	func() {
		c := NewChain(101, benchChainRates(100))
		c.Workers = 4
		if _, err := c.TransientSeries(c.PointMass(0), cdfGrid(3, 0.5), 1e-9); err != nil {
			t.Fatal(err)
		}
	}()
	// The chain is unreachable; its finalizer must close the owned pool.
	waitForGoroutines(t, base, "finalization")
}

func TestAttachedPoolSurvivesInvalidation(t *testing.T) {
	forceParallel(t)
	pool := sparse.NewPool(3)
	defer pool.Close()
	c := NewChain(101, benchChainRates(100))
	c.Workers = 4
	c.AttachPool(pool)
	if _, err := c.TransientSeries(c.PointMass(0), cdfGrid(3, 0.5), 1e-9); err != nil {
		t.Fatal(err)
	}
	c.InvalidateSolveCache()
	// The chain never owned the pool, so it must still dispatch work.
	var ran int32
	pool.Run(4, func(int) { atomic.AddInt32(&ran, 1) })
	if ran != 4 {
		t.Fatalf("attached pool ran %d of 4 parts after chain invalidation", ran)
	}
}

// countdownCtx reports cancellation after a fixed number of Err polls,
// making mid-series interruption deterministic (TransientCtx polls once
// per uniformization term).
type countdownCtx struct {
	context.Context
	polls *int32
}

func (c countdownCtx) Err() error {
	if atomic.AddInt32(c.polls, -1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestTransientCancelMidSeriesLeavesPoolReusable(t *testing.T) {
	forceParallel(t)
	c := NewChain(101, benchChainRates(100))
	c.Workers = 4
	times := cdfGrid(6, 0.5)
	p0 := c.PointMass(0)
	full, err := c.TransientSeries(p0, times, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	polls := int32(40) // enough terms to finish some grid points, not all
	_, err = c.TransientSeriesCtx(countdownCtx{context.Background(), &polls}, p0, times, 1e-9)
	var ec *runctx.ErrCanceled
	if !errors.As(err, &ec) {
		t.Fatalf("want *runctx.ErrCanceled, got %v", err)
	}
	if ec.Done <= 0 || ec.Done >= len(times) {
		t.Fatalf("cancellation reported Done=%d, want mid-series progress in (0,%d)", ec.Done, len(times))
	}
	partial, ok := ec.Partial.([][]float64)
	if !ok || len(partial) != ec.Done {
		t.Fatalf("Partial holds %T of len %d, want [][]float64 of len %d", ec.Partial, len(partial), ec.Done)
	}
	for k := range partial {
		if !bitsEqual(partial[k], full[k]) {
			t.Fatalf("partial prefix diverged at grid point %d", k)
		}
	}
	// The pool must remain reusable: the next solve is bit-identical.
	again, err := c.TransientSeries(p0, times, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for k := range full {
		if !bitsEqual(again[k], full[k]) {
			t.Fatalf("post-cancel solve diverged at grid point %d", k)
		}
	}
}

// TestConcurrentSolvesShareOnePool hammers one chain's pool from many
// goroutines (run under the CI -race job): every concurrent series must
// be bit-identical to the sequential result.
func TestConcurrentSolvesShareOnePool(t *testing.T) {
	forceParallel(t)
	rates := benchChainRates(80)
	ref := NewChain(81, rates)
	times := cdfGrid(4, 0.4)
	want, err := ref.TransientSeries(ref.PointMass(0), times, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(81, rates)
	c.Workers = 4
	defer c.InvalidateSolveCache()
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				series, err := c.TransientSeries(c.PointMass(0), times, 1e-9)
				if err != nil {
					errs[g] = err
					return
				}
				for k := range want {
					if !bitsEqual(series[k], want[k]) {
						errs[g] = errors.New("concurrent series diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
