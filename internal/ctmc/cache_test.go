package ctmc

// Tests of the solve-path memoization contract: cached results must be
// bit-identical to the uncached (pre-cache) solver, replacing Q must
// invalidate every derived operator, and Workers must never change an
// output bit.

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/numeric/sparse"
	"repro/internal/obs"
)

// benchChainRates builds a birth-death chain with k+1 states and slightly
// irregular rates so no two matrix entries are equal.
func benchChainRates(k int) map[[2]int]float64 {
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = 2 + 0.01*float64(i%7)
		rates[[2]int{i + 1, i}] = 1 + 0.03*float64(i%5)
	}
	return rates
}

func cdfGrid(n int, step float64) []float64 {
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i) * step
	}
	return times
}

func TestTransientSeriesCachedMatchesUncached(t *testing.T) {
	rates := benchChainRates(120)
	cached := NewChain(121, rates)
	uncached := NewChain(121, rates)
	uncached.noSolveCache = true
	times := cdfGrid(40, 0.5)
	a, err := cached.TransientSeries(cached.PointMass(0), times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uncached.TransientSeries(uncached.PointMass(0), times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for s := range a[i] {
			if a[i][s] != b[i][s] {
				t.Fatalf("t=%g state %d: cached %g != uncached %g", times[i], s, a[i][s], b[i][s])
			}
		}
	}
	// A second series over the same grid (cache fully warm) must agree too.
	a2, err := cached.TransientSeries(cached.PointMass(0), times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for s := range a[i] {
			if a[i][s] != a2[i][s] {
				t.Fatalf("warm cache drifted at t=%g state %d", times[i], s)
			}
		}
	}
}

func TestFirstPassageCDFCachedMatchesUncached(t *testing.T) {
	rates := benchChainRates(80)
	cached := NewChain(81, rates)
	uncached := NewChain(81, rates)
	uncached.noSolveCache = true
	times := cdfGrid(30, 1)
	targets := []int{80}
	a, err := cached.FirstPassageCDF(cached.PointMass(0), targets, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Repeat evaluation exercises the absorbing-chain memo.
	a2, err := cached.FirstPassageCDF(cached.PointMass(0), targets, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uncached.FirstPassageCDF(uncached.PointMass(0), targets, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Probs {
		if a.Probs[i] != b.Probs[i] {
			t.Fatalf("t=%g: cached %g != uncached %g", times[i], a.Probs[i], b.Probs[i])
		}
		if a.Probs[i] != a2.Probs[i] {
			t.Fatalf("t=%g: memoized re-evaluation drifted", times[i])
		}
	}
}

func TestPassageMemoHitCounted(t *testing.T) {
	c := NewChain(41, benchChainRates(40))
	c.Obs = obs.NewRegistry()
	times := cdfGrid(10, 1)
	for i := 0; i < 3; i++ {
		if _, err := c.FirstPassageCDF(c.PointMass(0), []int{40}, times, 1e-10); err != nil {
			t.Fatal(err)
		}
	}
	hits := c.Obs.Counter("ctmc_passage_cache_total", obs.L("outcome", "hit"))
	misses := c.Obs.Counter("ctmc_passage_cache_total", obs.L("outcome", "miss"))
	if misses != 1 || hits != 2 {
		t.Fatalf("passage cache counters: hits=%g misses=%g, want 2/1", hits, misses)
	}
	// A different target set misses and evicts.
	if _, err := c.FirstPassageCDF(c.PointMass(0), []int{39}, times, 1e-10); err != nil {
		t.Fatal(err)
	}
	if m := c.Obs.Counter("ctmc_passage_cache_total", obs.L("outcome", "miss")); m != 2 {
		t.Fatalf("expected second miss after target change, got %g", m)
	}
}

func TestSolveCacheInvalidatedOnQReplace(t *testing.T) {
	fast := map[[2]int]float64{{0, 1}: 5, {1, 0}: 5}
	slow := map[[2]int]float64{{0, 1}: 0.2, {1, 0}: 0.1}
	c := NewChain(2, fast)
	warm, err := c.Transient(c.PointMass(0), 1.5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	_ = warm
	// Replace the generator wholesale: the cache must notice and rebuild.
	c.Q = NewChain(2, slow).Q
	c.ExitRate = NewChain(2, slow).ExitRate
	got, err := c.Transient(c.PointMass(0), 1.5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewChain(2, slow)
	want, err := fresh.Transient(fresh.PointMass(0), 1.5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("stale cache survived Q replacement: state %d got %g want %g", s, got[s], want[s])
		}
	}
}

func TestInvalidateSolveCacheAfterInPlaceMutation(t *testing.T) {
	// In-place mutation of Q.Val is documentedly unsupported without an
	// explicit InvalidateSolveCache; with the call, results must match a
	// fresh chain. (The nnz-preserving mutation below is exactly the kind
	// the identity check cannot see.)
	c := NewChain(2, map[[2]int]float64{{0, 1}: 2, {1, 0}: 1})
	if _, err := c.Transient(c.PointMass(0), 1, 1e-10); err != nil {
		t.Fatal(err)
	}
	for k, v := range c.Q.Val {
		c.Q.Val[k] = v * 2
	}
	for i := range c.ExitRate {
		c.ExitRate[i] *= 2
	}
	c.InvalidateSolveCache()
	got, err := c.Transient(c.PointMass(0), 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewChain(2, map[[2]int]float64{{0, 1}: 4, {1, 0}: 2})
	want, err := fresh.Transient(fresh.PointMass(0), 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("InvalidateSolveCache did not take effect: state %d got %g want %g", s, got[s], want[s])
		}
	}
}

func TestTransientWorkersBitIdentical(t *testing.T) {
	// A chain big enough (~60k nonzeros) that Workers > 1 actually runs the
	// transpose-backed kernel rather than the small-matrix fallback.
	k := 20000
	rates := benchChainRates(k)
	seqChain := NewChain(k+1, rates)
	seq, err := seqChain.Transient(seqChain.PointMass(0), 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		c := NewChain(k+1, rates)
		c.Workers = workers
		got, err := c.Transient(c.PointMass(0), 3, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for s := range seq {
			if got[s] != seq[s] {
				t.Fatalf("workers=%d: state %d: %g != %g", workers, s, got[s], seq[s])
			}
		}
	}
}

func TestSteadyStateWorkersBitIdentical(t *testing.T) {
	k := 300
	rates := benchChainRates(k)
	a := NewChain(k+1, rates)
	b := NewChain(k+1, rates)
	b.Workers = 4
	piA, errA := a.SteadyState(SteadyStateOptions{})
	piB, errB := b.SteadyState(SteadyStateOptions{})
	if errA != nil || errB != nil {
		t.Fatalf("errors: %v / %v", errA, errB)
	}
	for s := range piA {
		if piA[s] != piB[s] {
			t.Fatalf("state %d: %g != %g", s, piA[s], piB[s])
		}
	}
}

func TestConcurrentTransientSolvesShareCache(t *testing.T) {
	// Hammer one chain from several goroutines: the cache accessors must be
	// race-free (run under -race in CI) and every result identical.
	c := NewChain(101, benchChainRates(100))
	want, err := c.Transient(c.PointMass(0), 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := c.Transient(c.PointMass(0), 2, 1e-10)
			if err != nil {
				errs[g] = err
				return
			}
			for s := range want {
				if got[s] != want[s] {
					errs[g] = errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent solve diverged from sequential result" }

func TestFirstPassageCDFRejectsMalformedGenerator(t *testing.T) {
	// Hand-build chains whose generators violate (or satisfy) the
	// nonnegative off-diagonal requirement.
	build := func(entries map[[2]int]float64, n int) *Chain {
		coo := newCOOFromMap(entries, n)
		exit := make([]float64, n)
		for k, v := range entries {
			if k[0] != k[1] && v > 0 {
				exit[k[0]] += v
			}
		}
		return &Chain{N: n, Q: coo, ExitRate: exit, ActionRate: map[string][]float64{}}
	}
	cases := []struct {
		name    string
		entries map[[2]int]float64
		n       int
		targets []int
		wantErr bool
	}{
		{"valid generator", map[[2]int]float64{{0, 1}: 1, {1, 1}: -1, {0, 0}: -1, {1, 0}: 1}, 2, []int{1}, false},
		{"negative off-diagonal", map[[2]int]float64{{0, 1}: -2, {0, 0}: 2, {1, 0}: 1, {1, 1}: -1}, 2, []int{1}, true},
		{"negative rate into target from transient row", map[[2]int]float64{{0, 2}: -3, {0, 1}: 1, {0, 0}: 2, {1, 0}: 1, {1, 1}: -1}, 3, []int{2}, true},
		{"negative entry inside target row is ignored (row is zeroed anyway)",
			map[[2]int]float64{{0, 1}: 1, {0, 0}: -1, {1, 0}: -5, {1, 1}: 5}, 2, []int{1}, false},
	}
	times := []float64{0, 0.5, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := build(tc.entries, tc.n)
			_, err := c.FirstPassageCDF(c.PointMass(0), tc.targets, times, 1e-9)
			if tc.wantErr && err == nil {
				t.Fatal("malformed generator accepted, want error")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("valid generator rejected: %v", err)
			}
		})
	}
}

// newCOOFromMap assembles a CSR from a dense entry map in deterministic
// (sorted) insertion order, bypassing NewChain's negative-rate panic so
// malformed generators can be constructed for the rejection tests.
func newCOOFromMap(entries map[[2]int]float64, n int) *sparse.CSR {
	keys := make([][2]int, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	coo := sparse.NewCOO(n, n, len(keys))
	for _, k := range keys {
		coo.Add(k[0], k[1], entries[k])
	}
	return coo.ToCSR()
}

func TestPoissonWeightSharingAcrossUniformGrid(t *testing.T) {
	c := NewChain(61, benchChainRates(60))
	c.Obs = obs.NewRegistry()
	times := cdfGrid(50, 0.25) // uniform dt -> one weight table after t=0
	if _, err := c.TransientSeries(c.PointMass(0), times, 1e-10); err != nil {
		t.Fatal(err)
	}
	misses := c.Obs.Counter("ctmc_poisson_cache_total", obs.L("outcome", "miss"))
	hits := c.Obs.Counter("ctmc_poisson_cache_total", obs.L("outcome", "hit"))
	if misses != 1 {
		t.Fatalf("uniform grid computed %g weight tables, want exactly 1", misses)
	}
	if hits < 40 {
		t.Fatalf("weight table hits = %g, want ~48", hits)
	}
	// The uniformized matrix is assembled exactly once for the whole grid.
	uniMisses := c.Obs.Counter("ctmc_unicache_total", obs.L("outcome", "miss"))
	if uniMisses != 1 {
		t.Fatalf("uniformized matrix built %g times for one series, want 1", uniMisses)
	}
}
