package ctmc

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric/sparse"
	"repro/internal/obs"
)

// stiffChain builds a birth–death chain whose rates span six orders of
// magnitude: the shape that starves both stationary iterations (their
// iteration counts scale with the stiffness ratio) while the Krylov
// stage converges in a few dozen iterations.
func stiffChain(n int) *Chain {
	rates := map[[2]int]float64{}
	for i := 0; i < n-1; i++ {
		rates[[2]int{i, i + 1}] = 1 + 1e6*float64(i)/float64(n)
		rates[[2]int{i + 1, i}] = 1 + 1e6*float64(n-i)/float64(n)
	}
	return NewChain(n, rates)
}

// TestSteadyStateKrylovStageAccepts pins the extended ladder: on a stiff
// chain with a starved sweep budget, Gauss–Seidel and power iteration
// are rejected, the BiCGStab rung accepts, and the per-stage metrics
// record exactly that. DenseLimit of 1 proves the answer did not come
// from the dense fallback.
func TestSteadyStateKrylovStageAccepts(t *testing.T) {
	c := stiffChain(400)
	c.Obs = obs.NewRegistry()
	pi, err := c.SteadyState(SteadyStateOptions{MaxIter: 50, DenseLimit: 1})
	if err != nil {
		t.Fatalf("ladder failed: %v", err)
	}
	var sum float64
	for i, v := range pi {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("pi[%d] = %g", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum(pi) = %g", sum)
	}
	// Detailed balance on the birth–death chain: pi_i·up_i = pi_{i+1}·down_i.
	for i := 0; i < c.N-1; i++ {
		up := 1 + 1e6*float64(i)/float64(c.N)
		down := 1 + 1e6*float64(c.N-i)/float64(c.N)
		if d := math.Abs(pi[i]*up - pi[i+1]*down); d > 1e-6 {
			t.Fatalf("detailed balance violated at %d: %g", i, d)
		}
	}
	for _, want := range []struct {
		stage, outcome string
		n              float64
	}{
		{"gauss-seidel", "rejected", 1},
		{"power-iteration", "rejected", 1},
		{"bicgstab", "accepted", 1},
		{"bicgstab", "rejected", 0},
	} {
		got := c.Obs.Counter("ctmc_solve_stage_total",
			obs.L("stage", want.stage), obs.L("outcome", want.outcome))
		if got != want.n {
			t.Errorf("ctmc_solve_stage_total{stage=%s,outcome=%s} = %g, want %g",
				want.stage, want.outcome, got, want.n)
		}
	}
}

// TestSteadyKrylovAgreesWithPowerIteration is the cross-solver property
// test: on random irreducible chains both accepted answers must agree —
// they approximate the same unique stationary distribution, and both
// stages verify the same ||pi·Q||_inf < sqrt(Tol) bound before accepting.
func TestSteadyKrylovAgreesWithPowerIteration(t *testing.T) {
	compared := 0
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		n := 3 + int(s%30)
		rates := map[[2]int]float64{}
		// Ring backbone guarantees irreducibility; extra random edges
		// break the ring's symmetry.
		for i := 0; i < n; i++ {
			rates[[2]int{i, (i + 1) % n}] = 0.1 + 3*next()
		}
		for e := 0; e < n; e++ {
			i, j := int(s%uint64(n)), int((s>>17)%uint64(n))
			if v := next(); i != j {
				rates[[2]int{i, j}] = 0.1 + 3*v
			}
		}
		c := NewChain(n, rates)
		opt := SteadyStateOptions{}.withDefaults()
		qt := c.transposedQCached()
		scratch := &sparse.Scratch{}
		piK, attK, okK := c.steadyKrylov(context.Background(), qt, opt, scratch)
		if !okK {
			// Breakdown or non-convergence is a legitimate rejection (the
			// ladder escalates); it just yields nothing to compare.
			t.Logf("n=%d: krylov rejected: %s", n, attK.Err)
			return true
		}
		piP, attP, okP := c.steadyPower(context.Background(), opt, scratch)
		if !okP {
			t.Logf("n=%d: power rejected: %s", n, attP.Err)
			return true
		}
		compared++
		for i := range piK {
			if math.Abs(piK[i]-piP[i]) > 1e-6 {
				t.Logf("n=%d: pi[%d] = %g (krylov) vs %g (power)", n, i, piK[i], piP[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if compared == 0 {
		t.Fatal("no case had both stages accept; the property was never exercised")
	}
}

// TestSteadyKrylovWorkersBitIdentical extends the Float64bits battery to
// the ladder's Krylov rung: the accepted distribution must not depend on
// the worker count.
func TestSteadyKrylovWorkersBitIdentical(t *testing.T) {
	saved := sparse.ParallelNNZThreshold
	sparse.ParallelNNZThreshold = 0
	defer func() { sparse.ParallelNNZThreshold = saved }()
	c := stiffChain(150)
	solve := func(workers int) []float64 {
		opt := SteadyStateOptions{MaxIter: 50, Workers: workers}.withDefaults()
		qt := c.transposedQCached()
		pi, att, ok := c.steadyKrylov(context.Background(), qt, opt, &sparse.Scratch{})
		if !ok {
			t.Fatalf("workers=%d: rejected: %s", workers, att.Err)
		}
		return pi
	}
	want := solve(1)
	for _, w := range []int{2, 4, 8} {
		got := solve(w)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: pi[%d] = %x, want %x", w, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}
