package ctmc

import (
	"errors"
	"strings"
	"testing"
)

// ring builds a unidirectional n-cycle with distinct rates, whose
// stationary distribution is non-uniform (so no solver converges by
// accident from the uniform initial guess).
func ring(n int) *Chain {
	rates := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		rates[[2]int{i, (i + 1) % n}] = float64(i + 1)
	}
	return NewChain(n, rates)
}

// TestConvergenceErrorTrace starves every stage — one Gauss–Seidel
// sweep, a handful of power iterations, one Krylov iteration, a dense
// limit below n — and asserts the structured escalation trace names all
// four.
func TestConvergenceErrorTrace(t *testing.T) {
	c := ring(10)
	_, err := c.SteadyState(SteadyStateOptions{MaxIter: 1, DenseLimit: 5})
	if err == nil {
		t.Fatal("starved solver converged")
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *ConvergenceError", err, err)
	}
	if ce.N != 10 || len(ce.Stages) != 4 {
		t.Fatalf("trace = {N: %d, stages: %d}, want 10 and 4", ce.N, len(ce.Stages))
	}
	wantMethods := []string{"gauss-seidel", "power-iteration", "bicgstab", "dense-lu"}
	for i, s := range ce.Stages {
		if s.Method != wantMethods[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Method, wantMethods[i])
		}
		if s.Err == "" {
			t.Errorf("stage %q has no rejection reason", s.Method)
		}
	}
	if !strings.Contains(ce.Stages[0].Err, "did not converge within 1 sweeps") {
		t.Errorf("gauss-seidel reason = %q", ce.Stages[0].Err)
	}
	if ce.Stages[1].Iterations == 0 {
		t.Error("power-iteration stage reports no work done")
	}
	if ce.Stages[2].Iterations == 0 {
		t.Error("bicgstab stage reports no work done")
	}
	if !strings.Contains(ce.Stages[3].Err, "exceeds dense fallback limit 5") {
		t.Errorf("dense-lu reason = %q", ce.Stages[3].Err)
	}
	msg := ce.Error()
	if !strings.Contains(msg, "steady-state failed on all 4 stages (n=10)") {
		t.Errorf("message = %q", msg)
	}
	for _, m := range wantMethods {
		if !strings.Contains(msg, m) {
			t.Errorf("message missing stage %q:\n%s", m, msg)
		}
	}
}

// TestConvergenceErrorAbsorbingStage: an absorbing state is reported as
// the Gauss–Seidel rejection reason when the whole escalation fails.
func TestConvergenceErrorAbsorbingStage(t *testing.T) {
	// States 0..3 feed forward into absorbing state 4; keep the budgets
	// starved and the dense limit below n so every stage fails.
	rates := map[[2]int]float64{}
	for i := 0; i < 4; i++ {
		rates[[2]int{i, i + 1}] = 1
	}
	c := NewChain(5, rates)
	_, err := c.SteadyState(SteadyStateOptions{MaxIter: 1, DenseLimit: 2})
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		// The starved power iteration may still converge to the absorbing
		// distribution; that is a legitimate steady state.
		if err != nil {
			t.Fatalf("err = %T %v, want *ConvergenceError or success", err, err)
		}
		return
	}
	if !strings.Contains(ce.Stages[0].Err, "absorbing state") {
		t.Errorf("gauss-seidel reason = %q, want absorbing-state diagnosis", ce.Stages[0].Err)
	}
}

// TestSteadyStateStillSolvesWithSaneBudgets: the escalation machinery
// must not change the happy path.
func TestSteadyStateStillSolvesWithSaneBudgets(t *testing.T) {
	c := ring(10)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Stationary distribution of the cycle: pi_i proportional to 1/rate_i.
	var norm float64
	for i := 0; i < 10; i++ {
		norm += 1 / float64(i+1)
	}
	for i, p := range pi {
		want := (1 / float64(i+1)) / norm
		if diff := p - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("pi[%d] = %g, want %g", i, p, want)
		}
	}
}
