package ctmc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

func twoState(a, b float64) *Chain {
	return NewChain(2, map[[2]int]float64{{0, 1}: a, {1, 0}: b})
}

func TestSteadyStateTwoState(t *testing.T) {
	// 0 -> 1 at rate 1, 1 -> 0 at rate 2: pi = (2/3, 1/3).
	c := twoState(1, 2)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-2.0/3) > 1e-9 || math.Abs(pi[1]-1.0/3) > 1e-9 {
		t.Errorf("pi = %v, want [2/3 1/3]", pi)
	}
}

func TestSteadyStateDenseMatchesIterative(t *testing.T) {
	c := twoState(0.7, 1.3)
	it, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	de, err := c.SteadyState(SteadyStateOptions{DenseOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range it {
		if math.Abs(it[i]-de[i]) > 1e-8 {
			t.Errorf("iterative %v vs dense %v", it, de)
		}
	}
}

func TestSteadyStateBirthDeath(t *testing.T) {
	// M/M/1/K with lambda=1, mu=2: pi_i proportional to (1/2)^i.
	k := 5
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = 1
		rates[[2]int{i + 1, i}] = 2
	}
	c := NewChain(k+1, rates)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := 0; i <= k; i++ {
		norm += math.Pow(0.5, float64(i))
	}
	for i := 0; i <= k; i++ {
		want := math.Pow(0.5, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-8 {
			t.Errorf("pi[%d] = %g, want %g", i, pi[i], want)
		}
	}
}

func TestSteadyStateSumsToOneProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 10) + 0.01
		b := math.Mod(math.Abs(bRaw), 10) + 0.01
		cc := math.Mod(math.Abs(cRaw), 10) + 0.01
		// 3-state ring.
		ch := NewChain(3, map[[2]int]float64{{0, 1}: a, {1, 2}: b, {2, 0}: cc})
		pi, err := ch.SteadyState(SteadyStateOptions{})
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Verify piQ ~ 0.
		res := ch.Q.VecMul(pi)
		for _, v := range res {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateLargeChainBeyondDenseLimit(t *testing.T) {
	// A 5000-state birth-death chain exceeds the dense fallback limit; the
	// iterative/power pipeline must still solve it. pi_i ~ (lambda/mu)^i.
	k := 5000
	lambda, mu := 1.0, 1.2
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = lambda
		rates[[2]int{i + 1, i}] = mu
	}
	c := NewChain(k+1, rates)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	// Compare the head of the distribution against the closed form.
	norm := (1 - rho) / (1 - math.Pow(rho, float64(k+1)))
	for i := 0; i < 10; i++ {
		want := norm * math.Pow(rho, float64(i))
		if math.Abs(pi[i]-want) > 1e-6 {
			t.Errorf("pi[%d] = %g, want %g", i, pi[i], want)
		}
	}
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	// p00(t) = b/(a+b) + a/(a+b)·e^{-(a+b)t}.
	a, b := 1.0, 2.0
	c := twoState(a, b)
	for _, tm := range []float64{0, 0.1, 0.5, 1, 3, 10} {
		p, err := c.Transient(c.PointMass(0), tm, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*tm)
		if math.Abs(p[0]-want) > 1e-8 {
			t.Errorf("p00(%g) = %g, want %g", tm, p[0], want)
		}
		if math.Abs(p[0]+p[1]-1) > 1e-9 {
			t.Errorf("transient mass at t=%g: %g", tm, p[0]+p[1])
		}
	}
}

func TestTransientZeroGeneratorIsIdentity(t *testing.T) {
	c := NewChain(3, map[[2]int]float64{})
	p0 := []float64{0.2, 0.5, 0.3}
	p, err := c.Transient(p0, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p0 {
		if p[i] != p0[i] {
			t.Errorf("transient of empty generator changed distribution: %v", p)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := twoState(1.5, 0.5)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Transient(c.PointMass(0), 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(p[i]-pi[i]) > 1e-9 {
			t.Errorf("transient at large t = %v, steady = %v", p, pi)
		}
	}
}

func TestFirstPassageExponential(t *testing.T) {
	// Single exponential transition: CDF(t) = 1 - e^{-lambda t}.
	lambda := 2.0
	c := NewChain(2, map[[2]int]float64{{0, 1}: lambda})
	times := []float64{0, 0.25, 0.5, 1, 2}
	cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{1}, times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		want := 1 - math.Exp(-lambda*tm)
		if math.Abs(cdf.Probs[i]-want) > 1e-8 {
			t.Errorf("CDF(%g) = %g, want %g", tm, cdf.Probs[i], want)
		}
	}
}

func TestFirstPassageErlang(t *testing.T) {
	// k-stage chain of rate lambda each: passage time ~ Erlang(k, lambda).
	k, lambda := 3, 1.5
	rates := map[[2]int]float64{}
	for i := 0; i < k; i++ {
		rates[[2]int{i, i + 1}] = lambda
	}
	c := NewChain(k+1, rates)
	times := []float64{0.5, 1, 2, 4}
	cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{k}, times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	erlangCDF := func(t float64) float64 {
		var s float64
		for n := 0; n < k; n++ {
			lg, _ := math.Lgamma(float64(n) + 1)
			s += math.Exp(float64(n)*math.Log(lambda*t) - lambda*t - lg)
		}
		return 1 - s
	}
	for i, tm := range times {
		want := erlangCDF(tm)
		if math.Abs(cdf.Probs[i]-want) > 1e-8 {
			t.Errorf("Erlang CDF(%g) = %g, want %g", tm, cdf.Probs[i], want)
		}
	}
}

func TestFirstPassageCDFMonotone(t *testing.T) {
	c := NewChain(4, map[[2]int]float64{
		{0, 1}: 1, {1, 0}: 0.5, {1, 2}: 2, {2, 3}: 0.7,
	})
	times := make([]float64, 41)
	for i := range times {
		times[i] = float64(i) * 0.25
	}
	cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{3}, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cdf.Probs); i++ {
		if cdf.Probs[i] < cdf.Probs[i-1]-1e-9 {
			t.Errorf("CDF not monotone at %g: %g < %g", times[i], cdf.Probs[i], cdf.Probs[i-1])
		}
	}
	if cdf.Probs[0] != 0 {
		t.Errorf("CDF(0) = %g, want 0", cdf.Probs[0])
	}
	if last := cdf.Probs[len(cdf.Probs)-1]; last < 0.99 {
		t.Errorf("CDF at horizon = %g, expected near 1", last)
	}
}

func TestPassageQuantileAndMean(t *testing.T) {
	lambda := 1.0
	c := NewChain(2, map[[2]int]float64{{0, 1}: lambda})
	times := make([]float64, 2001)
	for i := range times {
		times[i] = float64(i) * 0.01
	}
	cdf, err := c.FirstPassageCDF(c.PointMass(0), []int{1}, times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	med := cdf.Quantile(0.5)
	if math.Abs(med-math.Ln2) > 0.02 {
		t.Errorf("median = %g, want ln2=%g", med, math.Ln2)
	}
	if m := cdf.Mean(); math.Abs(m-1) > 0.01 {
		t.Errorf("mean = %g, want 1", m)
	}
	if q := cdf.Quantile(1.1); !math.IsInf(q, 1) {
		t.Errorf("unreachable quantile = %g, want +Inf", q)
	}
}

func TestFromStateSpaceThroughputUtilization(t *testing.T) {
	m := pepa.MustParse("P = (work, 2).P1; P1 = (rest, 1).P; P")
	ss, err := derive.Explore(m, derive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := FromStateSpace(ss)
	pi, err := c.SteadyState(SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// pi(P) = 1/3, pi(P1) = 2/3 (faster out of P).
	idxP := ss.Index["P"]
	idxP1 := ss.Index["P1"]
	if math.Abs(pi[idxP]-1.0/3) > 1e-9 {
		t.Errorf("pi(P) = %g, want 1/3", pi[idxP])
	}
	tput, err := c.Throughput(pi, "work")
	if err != nil {
		t.Fatal(err)
	}
	// throughput(work) = pi(P)*2 = 2/3; equals throughput(rest) in cycle.
	if math.Abs(tput-2.0/3) > 1e-9 {
		t.Errorf("throughput(work) = %g, want 2/3", tput)
	}
	rput, err := c.Throughput(pi, "rest")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tput-rput) > 1e-9 {
		t.Errorf("cycle throughputs differ: %g vs %g", tput, rput)
	}
	u := c.Utilization(pi, []int{idxP1})
	if math.Abs(u-2.0/3) > 1e-9 {
		t.Errorf("utilization = %g, want 2/3", u)
	}
	if _, err := c.Throughput(pi, "nope"); err == nil {
		t.Error("unknown action accepted")
	}
}

func TestGeneratorRowsSumToZeroProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		n := 6
		rates := map[[2]int]float64{}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && next() < 0.4 {
					rates[[2]int{i, j}] = next()*5 + 0.01
				}
			}
		}
		c := NewChain(n, rates)
		for i := 0; i < n; i++ {
			var row float64
			c.Q.Row(i, func(j int, v float64) { row += v })
			if math.Abs(row) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransientSeriesMatchesPointQueries(t *testing.T) {
	c := twoState(1, 1)
	times := []float64{0, 0.5, 1, 2}
	series, err := c.TransientSeries(c.PointMass(0), times, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		pt, err := c.Transient(c.PointMass(0), tm, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for s := range pt {
			if math.Abs(series[i][s]-pt[s]) > 1e-12 {
				t.Errorf("series/point mismatch at t=%g", tm)
			}
		}
	}
}

func TestBadInputs(t *testing.T) {
	c := twoState(1, 1)
	if _, err := c.Transient([]float64{1}, 1, 1e-9); err == nil {
		t.Error("wrong-length p0 accepted")
	}
	if _, err := c.Transient(c.PointMass(0), -1, 1e-9); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.FirstPassageCDF(c.PointMass(0), nil, []float64{1}, 1e-9); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := c.FirstPassageCDF(c.PointMass(0), []int{9}, []float64{1}, 1e-9); err == nil {
		t.Error("out-of-range target accepted")
	}
}
