package ctmc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/numeric/poisson"
	"repro/internal/numeric/sparse"
	"repro/internal/pepa"
	"repro/internal/pepa/derive"
)

// ChainFamily amortizes chain construction across models that share one
// derivation structure and differ only in rate-constant values — the
// shape of a perturbation sweep, where every sample re-rates the same
// machine model. The family derives the prototype once, memoizes the
// COO→CSR assembly permutation (sparse.AssemblyPlan), and builds each
// member with an O(nnz) rate evaluation plus gather instead of a fresh
// BFS derivation and counting sort.
//
// Exactness: PEPA derivation is structure-driven, and rate provenance
// (derive.RateSrc) is only recorded where re-evaluation provably
// reproduces the fresh derivation's bits, so every member chain is
// byte-identical — Q, exit rates, action rates — to
// FromStateSpace(Explore(model-with-those-rates)). The Float64bits
// battery in family_test.go pins this.
//
// Members share the family's Poisson weight tables (pure functions of
// (lambda, eps), so cross-member reuse is always sound). They do NOT
// share uniformized matrices, transposes, or kernel plans: those are
// value-dependent operators keyed to each member's own Q.
//
// A ChainFamily is safe for concurrent use; member chains are
// independent Chains with the usual concurrency contract.
type ChainFamily struct {
	ss          *derive.StateSpace
	plan        *sparse.AssemblyPlan
	fingerprint string
	nnz         int // COO pattern entries: transitions + one diagonal per state

	mu      sync.Mutex
	weights map[weightKey]*poisson.Weights
}

// NewChainFamily builds a family over a derived prototype state space.
// It errors (wrapping derive.ErrNotReratable) when the prototype carries
// opaque rate provenance — callers fall back to per-model derivation.
func NewChainFamily(ss *derive.StateSpace) (*ChainFamily, error) {
	if !ss.Reratable() {
		return nil, fmt.Errorf("ctmc: %w", derive.ErrNotReratable)
	}
	n := ss.NumStates()
	// Replay FromStateSpace's exact COO entry order — per state: each
	// transition, then the diagonal — so the memoized permutation gathers
	// members bit-identically to the fresh ToCSR path.
	coo := sparse.NewCOO(n, n, ss.NumTransitions()+n)
	for s := 0; s < n; s++ {
		var exit float64
		for _, tr := range ss.Trans[s] {
			coo.Add(s, tr.To, tr.Rate)
			exit += tr.Rate
		}
		coo.Add(s, s, -exit)
	}
	return &ChainFamily{
		ss:          ss,
		plan:        coo.Plan(),
		fingerprint: StructuralFingerprint(ss.Model),
		nnz:         coo.NNZ(),
	}, nil
}

// StateSpace returns the prototype state space (states, numbering, and
// transition structure shared by every member).
func (f *ChainFamily) StateSpace() *derive.StateSpace { return f.ss }

// ChainForRates builds the member chain for a rate-constant environment:
// every Const-provenance activity is re-valued from env (validated like
// derive.Reprice — missing or non-positive constants error), Fixed ones
// keep the prototype's value, and the generator is assembled through the
// memoized plan. The result is byte-identical to deriving the re-rated
// model from scratch and calling FromStateSpace.
func (f *ChainFamily) ChainForRates(env map[string]float64) (*Chain, error) {
	n := f.ss.NumStates()
	vals := make([]float64, f.nnz)
	exit := make([]float64, n)
	actRate := map[string][]float64{}
	for _, a := range f.ss.ActionTypes {
		actRate[a] = make([]float64, n)
	}
	idx := 0
	for s := 0; s < n; s++ {
		for _, tr := range f.ss.Trans[s] {
			r := tr.Rate
			switch {
			case tr.Src.Const != "":
				v, ok := env[tr.Src.Const]
				if !ok {
					return nil, fmt.Errorf("ctmc: family member: rate constant %q missing from environment", tr.Src.Const)
				}
				if v <= 0 {
					return nil, fmt.Errorf("ctmc: family member: rate constant %q = %g is not positive", tr.Src.Const, v)
				}
				r = v
			case tr.Src.Fixed:
				// Structure-fixed rate: the prototype's value is exact.
			default:
				return nil, fmt.Errorf("ctmc: %w: state %d activity %q has opaque rate provenance", derive.ErrNotReratable, s, tr.Action)
			}
			vals[idx] = r
			idx++
			exit[s] += r
			actRate[tr.Action][s] += r
		}
		vals[idx] = -exit[s]
		idx++
	}
	return &Chain{
		N: n, Q: f.plan.Gather(vals), ExitRate: exit, ActionRate: actRate,
		Initial: 0, family: f,
	}, nil
}

// ChainFor builds the member chain for a full model, first checking that
// the model is structurally a member of this family (same definitions,
// rate-constant names, and system equation — rate values free). The
// check catches the silent-wrong-answer hazard of gathering one model's
// rates through another model's assembly permutation.
func (f *ChainFamily) ChainFor(m *pepa.Model) (*Chain, error) {
	if StructuralFingerprint(m) != f.fingerprint {
		return nil, fmt.Errorf("ctmc: model is not a member of this chain family (structural fingerprint mismatch)")
	}
	return f.ChainForRates(m.Rates)
}

// StructuralFingerprint fingerprints the rate-independent structure of a
// model: process definitions (bodies print rate constants by name, so
// re-rated members collide as intended), the set of rate-constant names,
// and the system equation. Models with equal fingerprints derive the
// same state graph whenever their rates are positive — which
// ChainForRates enforces.
func StructuralFingerprint(m *pepa.Model) string {
	var b strings.Builder
	names := append([]string(nil), m.DefOrder...)
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "def %s = %s;\n", name, m.Defs[name].Body)
	}
	rateNames := append([]string(nil), m.RateOrder...)
	sort.Strings(rateNames)
	fmt.Fprintf(&b, "rates %s;\n", strings.Join(rateNames, ","))
	if m.System != nil {
		fmt.Fprintf(&b, "system %s", m.System)
	}
	return b.String()
}

// poisson returns the family-shared weight table for the key, if any
// member computed it already. Weight tables depend only on (lambda, eps),
// never on the matrix, so sharing across members is exact.
func (f *ChainFamily) poisson(key weightKey) (*poisson.Weights, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.weights[key]
	return w, ok
}

// storePoisson publishes a member's freshly computed weight table,
// bounded like the per-chain memo.
func (f *ChainFamily) storePoisson(key weightKey, w *poisson.Weights) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.weights) >= maxWeightTables {
		f.weights = nil
	}
	if f.weights == nil {
		f.weights = make(map[weightKey]*poisson.Weights)
	}
	f.weights[key] = w
}
