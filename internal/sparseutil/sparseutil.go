// Package sparseutil holds tiny numeric helpers shared by the solver
// packages.
package sparseutil

// Clamp01 clamps x into [0, 1], absorbing floating-point slack at the
// boundaries of probability computations.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
