// Package sparseutil holds tiny numeric helpers shared by the solver
// packages.
package sparseutil

import "math"

// Clamp01 clamps x into [0, 1], absorbing floating-point slack at the
// boundaries of probability computations.
//
// NaN clamps to 0: both ordered comparisons are false for NaN, so the
// naive two-branch clamp would return NaN and silently poison every
// downstream probability/CDF aggregation. A NaN here means an upstream
// solve produced garbage (0/0 in a renormalization, Inf-Inf in a
// residual); mapping it to 0 keeps the output a valid (sub-)probability
// and makes the corruption visible as missing mass rather than NaN text
// in reports. Callers that can distinguish the error case should check
// math.IsNaN before clamping.
func Clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
