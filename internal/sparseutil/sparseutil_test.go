package sparseutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp01(t *testing.T) {
	cases := map[float64]float64{
		-0.5:          0,
		0:             0,
		0.25:          0.25,
		1:             1,
		1.0001:        1,
		42:            1,
		math.Inf(1):   1,
		math.Inf(-1):  0,
		math.NaN():    0, // NaN must not propagate through probability post-processing
		-math.SmallestNonzeroFloat64: 0,
	}
	for in, want := range cases {
		if got := Clamp01(in); got != want {
			t.Errorf("Clamp01(%g) = %g, want %g", in, got, want)
		}
	}
}

// TestClamp01NeverNaN: the output is always a valid probability, for
// any input bit pattern.
func TestClamp01NeverNaN(t *testing.T) {
	f := func(bits uint64) bool {
		y := Clamp01(math.Float64frombits(bits))
		return !math.IsNaN(y) && y >= 0 && y <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01Property(t *testing.T) {
	f := func(x float64) bool {
		y := Clamp01(x)
		return y >= 0 && y <= 1 && (x < 0 || x > 1 || y == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
