package biopepa

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestToSBMLStructure(t *testing.T) {
	m := MustParse(enzymeSrc)
	out, err := m.ToSBML("enzyme")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`<?xml version="1.0" encoding="UTF-8"?>`,
		`xmlns="http://www.sbml.org/sbml/level2/version4"`,
		`level="2"`, `version="4"`,
		`<model id="enzyme">`,
		`<compartment id="cell" size="1">`,
		`<species id="S" compartment="cell" initialAmount="200">`,
		`<species id="ES" compartment="cell" initialAmount="0">`,
		`<parameter id="k1" value="0.002">`,
		`<reaction id="bind"`,
		`<speciesReference species="S" stoichiometry="1">`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SBML missing %q", want)
		}
	}
	// Output must be well-formed XML.
	var any struct{}
	if err := xml.Unmarshal(out, &any); err != nil {
		t.Fatalf("output is not well-formed XML: %v", err)
	}
}

func TestToSBMLMassActionFormula(t *testing.T) {
	m := MustParse(enzymeSrc)
	out, err := m.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<formula>k1 * S * E</formula>") {
		t.Errorf("bind formula missing:\n%s", out)
	}
}

func TestToSBMLInhibitorFormula(t *testing.T) {
	m := MustParse(inhibitedSrc)
	out, err := m.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "(1 / (1 + I))") {
		t.Errorf("inhibitor factor missing:\n%s", s)
	}
	if !strings.Contains(s, `<modifierSpeciesReference species="I">`) {
		t.Errorf("modifier reference missing:\n%s", s)
	}
}

func TestToSBMLMichaelisMenten(t *testing.T) {
	m := MustParse(mmSrc)
	out, err := m.ToSBML("mm")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<formula>v * E * S / (kM + S)</formula>") {
		t.Errorf("fMM formula missing:\n%s", out)
	}
}

func TestToSBMLExplicitLaw(t *testing.T) {
	m := MustParse("k = 0.5;\nkineticLawOf r : k * S;\nS = (r,1) <<;\nS[10]\n")
	out, err := m.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<formula>(k * S)</formula>") {
		t.Errorf("explicit formula missing:\n%s", out)
	}
}

func TestToSBMLCompartments(t *testing.T) {
	m := MustParse(`
compartment cytosol = 2.5;
k = 1;
kineticLawOf r : fMA(k);
S = (r,1) <<;
S[5]
`)
	out, err := m.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `<compartment id="cytosol" size="2.5">`) {
		t.Errorf("compartment missing:\n%s", s)
	}
	if !strings.Contains(s, `compartment="cytosol"`) {
		t.Errorf("species not placed in compartment:\n%s", s)
	}
}

func TestToSBMLDeterministic(t *testing.T) {
	m := MustParse(enzymeSrc)
	a, err := m.ToSBML("x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ToSBML("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("SBML output not deterministic")
	}
}

func TestToSBMLStoichiometry(t *testing.T) {
	m := MustParse(`
k = 1;
kineticLawOf dimerize : fMA(k);
A = (dimerize, 2) <<;
D = (dimerize, 1) >>;
A[10] <*> D[0]
`)
	out, err := m.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `stoichiometry="2"`) {
		t.Errorf("stoichiometry 2 missing:\n%s", s)
	}
	if !strings.Contains(s, "A^2") {
		t.Errorf("squared mass-action term missing:\n%s", s)
	}
}
