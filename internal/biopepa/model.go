// Package biopepa implements the Bio-PEPA process algebra of Ciocchetta &
// Hillston for biochemical networks: species components with stoichiometric
// roles (reactant <<, product >>, activator (+), inhibitor (-), generic
// modifier (.)), functional kinetic laws (mass action fMA, Michaelis–Menten
// fMM, and explicit rate expressions), and three analyses — reaction ODEs,
// exact Gillespie stochastic simulation, and CTMC state-space export for
// small populations.
//
// This is the Go counterpart of the Bio-PEPA Eclipse plug-in that the paper
// containerizes; the enzyme-kinetics models of the Bio-PEPA users' manual
// used for the paper's validation are reproduced in the test suite and in
// examples/biokinetics.
package biopepa

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Role is the part a species plays in a reaction.
type Role int

// Species roles, mirroring Bio-PEPA's prefix operators.
const (
	Reactant  Role = iota // <<
	Product               // >>
	Activator             // (+)
	Inhibitor             // (-)
	Modifier              // (.)
)

func (r Role) String() string {
	switch r {
	case Reactant:
		return "<<"
	case Product:
		return ">>"
	case Activator:
		return "(+)"
	case Inhibitor:
		return "(-)"
	case Modifier:
		return "(.)"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Participation records one species' role in one reaction.
type Participation struct {
	Reaction string
	Stoich   float64
	Role     Role
}

// Species is a Bio-PEPA species component.
type Species struct {
	Name           string
	Participations []Participation
	Initial        float64
}

// Expr is a kinetic-law arithmetic expression over parameters and species
// concentrations.
type Expr interface {
	Eval(env map[string]float64) (float64, error)
	String() string
}

// Num is a numeric literal.
type Num struct{ Value float64 }

// Var references a parameter or species concentration.
type Var struct{ Name string }

// Bin is a binary arithmetic node.
type Bin struct {
	Op          byte // + - * /
	Left, Right Expr
}

// Eval returns the literal value.
func (n *Num) Eval(map[string]float64) (float64, error) { return n.Value, nil }

// Eval looks the name up in the environment.
func (v *Var) Eval(env map[string]float64) (float64, error) {
	x, ok := env[v.Name]
	if !ok {
		return 0, fmt.Errorf("biopepa: undefined name %q in kinetic law", v.Name)
	}
	return x, nil
}

// Eval applies the operator.
func (b *Bin) Eval(env map[string]float64) (float64, error) {
	l, err := b.Left.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.Right.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("biopepa: division by zero in kinetic law")
		}
		return l / r, nil
	default:
		return 0, fmt.Errorf("biopepa: unknown operator %q", string(b.Op))
	}
}

func (n *Num) String() string { return trimFloat(n.Value) }
func (v *Var) String() string { return v.Name }
func (b *Bin) String() string {
	return "(" + b.Left.String() + " " + string(b.Op) + " " + b.Right.String() + ")"
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// KineticLaw computes a reaction's rate from concentrations and the
// reaction's participant structure.
type KineticLaw interface {
	// Rate evaluates the law. conc maps species and parameters to values;
	// rx describes the reaction's participants.
	Rate(conc map[string]float64, rx *Reaction) (float64, error)
	String() string
}

// MassAction is fMA(k): rate = k * prod over reactants of conc^stoich,
// scaled by activator concentrations and inhibited as k/(1+I) per
// inhibitor, following the Bio-PEPA manual's basic kinetics.
type MassAction struct{ K Expr }

// Rate implements KineticLaw.
func (l *MassAction) Rate(conc map[string]float64, rx *Reaction) (float64, error) {
	k, err := l.K.Eval(conc)
	if err != nil {
		return 0, err
	}
	rate := k
	for _, p := range rx.Reactants {
		c := conc[p.Species]
		if c < 0 {
			c = 0
		}
		rate *= math.Pow(c, p.Stoich)
	}
	for _, p := range rx.Modifiers {
		switch p.Role {
		case Activator:
			rate *= math.Max(conc[p.Species], 0)
		case Inhibitor:
			rate /= 1 + math.Max(conc[p.Species], 0)
		}
	}
	return rate, nil
}

func (l *MassAction) String() string { return "fMA(" + l.K.String() + ")" }

// MichaelisMenten is fMM(v, K): rate = v·E·S/(K+S) with exactly one
// reactant S and one enzyme modifier E ((+) or (.)).
type MichaelisMenten struct{ V, K Expr }

// Rate implements KineticLaw.
func (l *MichaelisMenten) Rate(conc map[string]float64, rx *Reaction) (float64, error) {
	if len(rx.Reactants) != 1 {
		return 0, fmt.Errorf("biopepa: fMM for reaction %q needs exactly one reactant, got %d", rx.Name, len(rx.Reactants))
	}
	var enzyme string
	for _, p := range rx.Modifiers {
		if p.Role == Activator || p.Role == Modifier {
			if enzyme != "" {
				return 0, fmt.Errorf("biopepa: fMM for reaction %q has multiple enzymes", rx.Name)
			}
			enzyme = p.Species
		}
	}
	if enzyme == "" {
		return 0, fmt.Errorf("biopepa: fMM for reaction %q needs an enzyme modifier", rx.Name)
	}
	v, err := l.V.Eval(conc)
	if err != nil {
		return 0, err
	}
	k, err := l.K.Eval(conc)
	if err != nil {
		return 0, err
	}
	s := math.Max(conc[rx.Reactants[0].Species], 0)
	e := math.Max(conc[enzyme], 0)
	if k+s == 0 {
		return 0, nil
	}
	return v * e * s / (k + s), nil
}

func (l *MichaelisMenten) String() string {
	return "fMM(" + l.V.String() + ", " + l.K.String() + ")"
}

// ExplicitLaw is an arbitrary rate expression over parameters and species.
type ExplicitLaw struct{ Body Expr }

// Rate implements KineticLaw.
func (l *ExplicitLaw) Rate(conc map[string]float64, rx *Reaction) (float64, error) {
	return l.Body.Eval(conc)
}

func (l *ExplicitLaw) String() string { return l.Body.String() }

// Participant pairs a species with its stoichiometry in a reaction.
type Participant struct {
	Species string
	Stoich  float64
	Role    Role
}

// Reaction is the assembled view of one reaction channel.
type Reaction struct {
	Name      string
	Law       KineticLaw
	Reactants []Participant // role Reactant
	Products  []Participant // role Product
	Modifiers []Participant // activator/inhibitor/modifier
}

// Model is a parsed Bio-PEPA model.
type Model struct {
	Params     map[string]float64
	ParamOrder []string
	Laws       map[string]KineticLaw
	LawOrder   []string
	Species    []*Species
	ByName     map[string]*Species
	// Compartment sizes by name (optional; defaults to a unit compartment).
	Compartments map[string]float64
}

// NewModel returns an empty Bio-PEPA model for programmatic construction.
func NewModel() *Model {
	return &Model{
		Params:       map[string]float64{},
		Laws:         map[string]KineticLaw{},
		ByName:       map[string]*Species{},
		Compartments: map[string]float64{},
	}
}

// AddParam defines a parameter.
func (m *Model) AddParam(name string, v float64) {
	if _, ok := m.Params[name]; !ok {
		m.ParamOrder = append(m.ParamOrder, name)
	}
	m.Params[name] = v
}

// AddLaw defines the kinetic law of a reaction.
func (m *Model) AddLaw(reaction string, law KineticLaw) {
	if _, ok := m.Laws[reaction]; !ok {
		m.LawOrder = append(m.LawOrder, reaction)
	}
	m.Laws[reaction] = law
}

// AddSpecies registers a species component.
func (m *Model) AddSpecies(s *Species) error {
	if _, dup := m.ByName[s.Name]; dup {
		return fmt.Errorf("biopepa: duplicate species %q", s.Name)
	}
	m.Species = append(m.Species, s)
	m.ByName[s.Name] = s
	return nil
}

// Reactions assembles the reaction channels from species participations.
// Every reaction must have a kinetic law and at least one reactant or
// product.
func (m *Model) Reactions() ([]*Reaction, error) {
	byName := map[string]*Reaction{}
	var order []string
	for _, sp := range m.Species {
		for _, p := range sp.Participations {
			rx, ok := byName[p.Reaction]
			if !ok {
				rx = &Reaction{Name: p.Reaction}
				byName[p.Reaction] = rx
				order = append(order, p.Reaction)
			}
			part := Participant{Species: sp.Name, Stoich: p.Stoich, Role: p.Role}
			switch p.Role {
			case Reactant:
				rx.Reactants = append(rx.Reactants, part)
			case Product:
				rx.Products = append(rx.Products, part)
			default:
				rx.Modifiers = append(rx.Modifiers, part)
			}
		}
	}
	sort.Strings(order)
	out := make([]*Reaction, 0, len(order))
	for _, name := range order {
		rx := byName[name]
		law, ok := m.Laws[name]
		if !ok {
			return nil, fmt.Errorf("biopepa: reaction %q has no kinetic law", name)
		}
		rx.Law = law
		if len(rx.Reactants) == 0 && len(rx.Products) == 0 {
			return nil, fmt.Errorf("biopepa: reaction %q has neither reactants nor products", name)
		}
		out = append(out, rx)
	}
	for _, name := range m.LawOrder {
		if _, used := byName[name]; !used {
			return nil, fmt.Errorf("biopepa: kinetic law for %q references no species participation", name)
		}
	}
	return out, nil
}

// InitialState returns the initial concentration/count vector in species
// order, plus an env map including parameters.
func (m *Model) InitialState() []float64 {
	x := make([]float64, len(m.Species))
	for i, sp := range m.Species {
		x[i] = sp.Initial
	}
	return x
}

// Env builds the evaluation environment for the given state vector.
func (m *Model) Env(x []float64) map[string]float64 {
	env := make(map[string]float64, len(m.Params)+len(m.Species))
	for k, v := range m.Params {
		env[k] = v
	}
	for i, sp := range m.Species {
		env[sp.Name] = x[i]
	}
	return env
}

// String renders the model in concrete syntax.
func (m *Model) String() string {
	var b strings.Builder
	for _, p := range m.ParamOrder {
		fmt.Fprintf(&b, "%s = %g;\n", p, m.Params[p])
	}
	for _, r := range m.LawOrder {
		fmt.Fprintf(&b, "kineticLawOf %s : %s;\n", r, m.Laws[r])
	}
	for _, sp := range m.Species {
		fmt.Fprintf(&b, "%s = ", sp.Name)
		for i, p := range sp.Participations {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "(%s, %g) %s", p.Reaction, p.Stoich, p.Role)
		}
		b.WriteString(";\n")
	}
	for i, sp := range m.Species {
		if i > 0 {
			b.WriteString(" <*> ")
		}
		fmt.Fprintf(&b, "%s[%g]", sp.Name, sp.Initial)
	}
	b.WriteString("\n")
	return b.String()
}
