package biopepa

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ctmc"
	"repro/internal/numeric/ode"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/runctx"
)

// compiled caches the reaction structure with species indices resolved.
type compiled struct {
	model     *Model
	reactions []*Reaction
	// delta[r][i] is the net stoichiometric change of species i when
	// reaction r fires.
	delta [][]float64
}

func (m *Model) compile() (*compiled, error) {
	rxs, err := m.Reactions()
	if err != nil {
		return nil, err
	}
	idx := map[string]int{}
	for i, sp := range m.Species {
		idx[sp.Name] = i
	}
	c := &compiled{model: m, reactions: rxs, delta: make([][]float64, len(rxs))}
	for r, rx := range rxs {
		c.delta[r] = make([]float64, len(m.Species))
		for _, p := range rx.Reactants {
			c.delta[r][idx[p.Species]] -= p.Stoich
		}
		for _, p := range rx.Products {
			c.delta[r][idx[p.Species]] += p.Stoich
		}
	}
	return c, nil
}

// rates evaluates all reaction rates at state x into dst.
func (c *compiled) rates(x []float64, dst []float64) error {
	env := c.model.Env(x)
	for r, rx := range c.reactions {
		v, err := rx.Law.Rate(env, rx)
		if err != nil {
			return fmt.Errorf("biopepa: rate of reaction %q: %w", rx.Name, err)
		}
		if v < 0 {
			v = 0
		}
		dst[r] = v
	}
	return nil
}

// ODEResult is a deterministic (reaction ODE) trajectory.
type ODEResult struct {
	Model *Model
	Times []float64
	X     [][]float64 // X[k][i] = concentration of species i at Times[k]
}

// SolveODE integrates the reaction ODEs dx/dt = S·v(x) over [0, horizon]
// with n output intervals.
func (m *Model) SolveODE(horizon float64, n int) (*ODEResult, error) {
	return m.SolveODECtx(context.Background(), horizon, n)
}

// SolveODECtx is SolveODE with cooperative cancellation: the integrator
// polls ctx before every adaptive step and an interrupted integration
// returns a *runctx.ErrCanceled whose Partial is the *ODEResult over
// the grid prefix actually reached.
func (m *Model) SolveODECtx(ctx context.Context, horizon float64, n int) (*ODEResult, error) {
	if horizon <= 0 || n < 1 {
		return nil, fmt.Errorf("biopepa: bad ODE parameters horizon=%g n=%d", horizon, n)
	}
	c, err := m.compile()
	if err != nil {
		return nil, err
	}
	rateBuf := make([]float64, len(c.reactions))
	var rateErr error
	f := func(t float64, y, dst []float64) {
		for i := range dst {
			dst[i] = 0
		}
		if err := c.rates(y, rateBuf); err != nil {
			rateErr = err
			return
		}
		for r := range c.reactions {
			v := rateBuf[r]
			if v == 0 {
				continue
			}
			for i, d := range c.delta[r] {
				dst[i] += d * v
			}
		}
	}
	sol, err := ode.DormandPrince(f, m.InitialState(), ode.Grid(0, horizon, n), ode.DormandPrinceOptions{RelTol: 1e-8, AbsTol: 1e-10, Cancel: ctx.Err})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			ec := runctx.New("biopepa.ode", cerr, len(sol.Y), n+1, "grid points")
			ec.Partial = &ODEResult{Model: m, Times: sol.T, X: sol.Y}
			return nil, ec
		}
		return nil, err
	}
	if rateErr != nil {
		return nil, rateErr
	}
	return &ODEResult{Model: m, Times: sol.T, X: sol.Y}, nil
}

// Series extracts one species' trajectory.
func (r *ODEResult) Series(species string) ([]float64, error) {
	for i, sp := range r.Model.Species {
		if sp.Name == species {
			out := make([]float64, len(r.X))
			for k, x := range r.X {
				out[k] = x[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("biopepa: unknown species %q", species)
}

// Final returns the final state.
func (r *ODEResult) Final() []float64 { return r.X[len(r.X)-1] }

// SSAResult is a stochastic simulation trajectory.
type SSAResult struct {
	Model *Model
	Times []float64
	X     [][]float64
	Jumps int
}

// SimulateSSA runs one Gillespie direct-method trajectory to the horizon,
// sampling on n+1 grid points. Initial amounts are interpreted as discrete
// counts (rounded).
func (m *Model) SimulateSSA(horizon float64, n int, seed uint64) (*SSAResult, error) {
	return m.SimulateSSACtx(context.Background(), horizon, n, seed)
}

// SimulateSSACtx is SimulateSSA with cooperative cancellation, polled
// once per reaction firing.
func (m *Model) SimulateSSACtx(ctx context.Context, horizon float64, n int, seed uint64) (*SSAResult, error) {
	if horizon <= 0 || n < 1 {
		return nil, fmt.Errorf("biopepa: bad SSA parameters horizon=%g n=%d", horizon, n)
	}
	c, err := m.compile()
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	x := m.InitialState()
	for i := range x {
		x[i] = float64(int64(x[i] + 0.5))
	}
	res := &SSAResult{Model: m}
	dt := horizon / float64(n)
	res.Times = make([]float64, n+1)
	res.X = make([][]float64, n+1)
	for i := range res.Times {
		res.Times[i] = float64(i) * dt
	}
	res.X[0] = append([]float64(nil), x...)
	nextSample := 1
	t := 0.0
	rates := make([]float64, len(c.reactions))
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, runctx.New("biopepa.ssa", cerr, res.Jumps, 0, "reactions")
		}
		if err := c.rates(x, rates); err != nil {
			return nil, err
		}
		var total float64
		for ri, v := range rates {
			// A reaction whose reactants are insufficient cannot fire in
			// the discrete setting.
			if !c.canFire(ri, x) {
				rates[ri] = 0
				continue
			}
			total += v
		}
		if total <= 0 {
			break
		}
		t += r.Exp(total)
		for nextSample <= n && res.Times[nextSample] < t {
			res.X[nextSample] = append([]float64(nil), x...)
			nextSample++
		}
		if t >= horizon {
			break
		}
		ri := r.Choose(rates)
		for i, d := range c.delta[ri] {
			x[i] += d
		}
		res.Jumps++
	}
	for nextSample <= n {
		res.X[nextSample] = append([]float64(nil), x...)
		nextSample++
	}
	return res, nil
}

func (c *compiled) canFire(r int, x []float64) bool {
	for i, d := range c.delta[r] {
		if d < 0 && x[i]+d < -1e-9 {
			return false
		}
	}
	return true
}

// MeanSSA averages k trajectories. Replications run in parallel (each
// compiles its own reaction structure via SimulateSSA and owns its RNG);
// the reduction runs in replication order for bit-stable output.
func (m *Model) MeanSSA(horizon float64, n, k int, seed uint64) (*SSAResult, error) {
	return m.MeanSSACtx(context.Background(), horizon, n, k, seed)
}

// MeanSSACtx is MeanSSA with cooperative cancellation: no new
// replication starts once ctx is done and running ones stop at their
// next reaction; the error reports the completed replication count.
func (m *Model) MeanSSACtx(ctx context.Context, horizon float64, n, k int, seed uint64) (*SSAResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("biopepa: need at least one replication")
	}
	runs, err := par.MapOpt(k, par.Options{Ctx: ctx}, func(rep int) (*SSAResult, error) {
		return m.SimulateSSACtx(ctx, horizon, n, seed+uint64(rep)*0x9E3779B9)
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			done := 0
			for _, r := range runs {
				if r != nil {
					done++
				}
			}
			return nil, runctx.New("biopepa.mean-ssa", cerr, done, k, "replications")
		}
		var merr *par.MultiError
		if errors.As(err, &merr) && len(merr.Errs) > 0 {
			return nil, fmt.Errorf("par: %w", merr.Errs[0])
		}
		return nil, err
	}
	acc := &SSAResult{Model: m, Times: runs[0].Times, X: make([][]float64, len(runs[0].X))}
	for i := range acc.X {
		acc.X[i] = make([]float64, len(runs[0].X[i]))
	}
	for _, res := range runs {
		for i := range res.X {
			for j := range res.X[i] {
				acc.X[i][j] += res.X[i][j]
			}
		}
		acc.Jumps += res.Jumps
	}
	for i := range acc.X {
		for j := range acc.X[i] {
			acc.X[i][j] /= float64(k)
		}
	}
	return acc, nil
}

// Series extracts one species' trajectory from an SSA run.
func (r *SSAResult) Series(species string) ([]float64, error) {
	for i, sp := range r.Model.Species {
		if sp.Name == species {
			out := make([]float64, len(r.X))
			for k, x := range r.X {
				out[k] = x[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("biopepa: unknown species %q", species)
}

// CTMCOptions bounds the discrete state-space construction.
type CTMCOptions struct {
	MaxStates int // default 100000
	// MaxCount caps any species count during exploration; transitions that
	// would exceed it are dropped (reflecting boundary). Default 1000.
	MaxCount float64
}

// CTMCSpace is the explicit population CTMC of a Bio-PEPA model with small
// initial counts, as built by the plug-in's CTMC analysis.
type CTMCSpace struct {
	Model  *Model
	States [][]float64 // population vectors
	Index  map[string]int
	Chain  *ctmc.Chain
}

// BuildCTMC explores the discrete population state space and assembles the
// generator. Rates are evaluated by the kinetic laws on the discrete
// counts.
func (m *Model) BuildCTMC(opt CTMCOptions) (*CTMCSpace, error) {
	return m.BuildCTMCCtx(context.Background(), opt)
}

// BuildCTMCCtx is BuildCTMC with cooperative cancellation, polled once
// per dequeued state of the population-space BFS.
func (m *Model) BuildCTMCCtx(ctx context.Context, opt CTMCOptions) (*CTMCSpace, error) {
	if opt.MaxStates <= 0 {
		opt.MaxStates = 100000
	}
	if opt.MaxCount <= 0 {
		opt.MaxCount = 1000
	}
	c, err := m.compile()
	if err != nil {
		return nil, err
	}
	x0 := m.InitialState()
	for i := range x0 {
		x0[i] = float64(int64(x0[i] + 0.5))
	}
	space := &CTMCSpace{Model: m, Index: map[string]int{}}
	key := func(x []float64) string {
		b := make([]byte, 0, len(x)*4)
		for _, v := range x {
			b = appendInt(b, int64(v))
			b = append(b, ',')
		}
		return string(b)
	}
	add := func(x []float64) (int, bool, error) {
		k := key(x)
		if id, ok := space.Index[k]; ok {
			return id, false, nil
		}
		if len(space.States) >= opt.MaxStates {
			return 0, false, fmt.Errorf("biopepa: CTMC state space exceeds %d states", opt.MaxStates)
		}
		id := len(space.States)
		space.Index[k] = id
		space.States = append(space.States, append([]float64(nil), x...))
		return id, true, nil
	}
	startID, _, err := add(x0)
	if err != nil {
		return nil, err
	}
	type edge struct {
		from, to int
		rate     float64
		rx       string
	}
	var edges []edge
	queue := []int{startID}
	rates := make([]float64, len(c.reactions))
	for len(queue) > 0 {
		if cerr := ctx.Err(); cerr != nil {
			return nil, runctx.New("biopepa.ctmc", cerr, len(space.States), 0, "states")
		}
		sid := queue[0]
		queue = queue[1:]
		x := space.States[sid]
		if err := c.rates(x, rates); err != nil {
			return nil, err
		}
		for ri, rx := range c.reactions {
			if rates[ri] <= 0 || !c.canFire(ri, x) {
				continue
			}
			nx := append([]float64(nil), x...)
			ok := true
			for i, d := range c.delta[ri] {
				nx[i] += d
				if nx[i] > opt.MaxCount {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			tid, fresh, err := add(nx)
			if err != nil {
				return nil, err
			}
			if fresh {
				queue = append(queue, tid)
			}
			edges = append(edges, edge{from: sid, to: tid, rate: rates[ri], rx: rx.Name})
		}
	}
	rateMap := map[[2]int]float64{}
	actionRates := map[string]map[int]float64{}
	for _, e := range edges {
		rateMap[[2]int{e.from, e.to}] += e.rate
		if actionRates[e.rx] == nil {
			actionRates[e.rx] = map[int]float64{}
		}
		actionRates[e.rx][e.from] += e.rate
	}
	space.Chain = ctmc.NewChain(len(space.States), rateMap)
	names := make([]string, 0, len(actionRates))
	for n := range actionRates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := make([]float64, len(space.States))
		for s, r := range actionRates[n] {
			v[s] = r
		}
		space.Chain.ActionRate[n] = v
	}
	return space, nil
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
