package biopepa

import (
	"fmt"

	"repro/internal/pepa"
)

// Parse parses a Bio-PEPA model in the plug-in's concrete syntax:
//
//	k1 = 0.1;                          // parameter
//	kineticLawOf bind : fMA(k1);       // mass-action law
//	kineticLawOf conv : fMM(v, kM);    // Michaelis–Menten law
//	kineticLawOf leak : k1 * S;        // explicit law
//	S = (bind, 1) << + (rel, 1) >>;    // species with roles
//	E = (bind, 1) (+);                 // enzyme/activator
//	S[100] <*> E[20]                   // initial amounts
//
// Roles: << reactant, >> product, (+) activator, (-) inhibitor,
// (.) generic modifier. "(bind, 1) << S" (with a trailing self reference,
// as written in the manual) is also accepted.
func Parse(src string) (*Model, error) {
	toks, err := pepa.LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &bparser{toks: toks}
	m := NewModel()
	for !p.at(pepa.TokEOF) {
		switch {
		case p.at(pepa.TokIdent) && p.cur().Text == "kineticLawOf":
			p.next()
			name := p.next()
			if name.Kind != pepa.TokIdent {
				return nil, p.errHere("expected reaction name after kineticLawOf")
			}
			if err := p.expect(pepa.TokColon); err != nil {
				return nil, err
			}
			law, err := p.parseLaw()
			if err != nil {
				return nil, err
			}
			if _, dup := m.Laws[name.Text]; dup {
				return nil, p.errHere("duplicate kinetic law for %q", name.Text)
			}
			m.AddLaw(name.Text, law)
			if err := p.expect(pepa.TokSemi); err != nil {
				return nil, err
			}
		case p.at(pepa.TokIdent) && p.cur().Text == "compartment":
			p.next()
			name := p.next()
			if name.Kind != pepa.TokIdent {
				return nil, p.errHere("expected compartment name")
			}
			if err := p.expect(pepa.TokEquals); err != nil {
				return nil, err
			}
			size := p.next()
			if size.Kind != pepa.TokNumber {
				return nil, p.errHere("expected compartment size")
			}
			m.Compartments[name.Text] = size.Num
			if err := p.expect(pepa.TokSemi); err != nil {
				return nil, err
			}
		case p.at(pepa.TokIdent) && p.atOffset(1, pepa.TokEquals):
			name := p.next().Text
			p.next() // '='
			if p.looksLikeSpeciesBody() {
				sp := &Species{Name: name}
				if err := p.parseSpeciesBody(sp); err != nil {
					return nil, err
				}
				if err := m.AddSpecies(sp); err != nil {
					return nil, err
				}
			} else {
				// Parameter definition (possibly an expression over
				// previously defined parameters).
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				val, err := v.Eval(m.Params)
				if err != nil {
					return nil, fmt.Errorf("biopepa: in parameter %q: %w", name, err)
				}
				if _, dup := m.Params[name]; dup {
					return nil, p.errHere("duplicate parameter %q", name)
				}
				m.AddParam(name, val)
			}
			if err := p.expect(pepa.TokSemi); err != nil {
				return nil, err
			}
		case p.at(pepa.TokIdent) && p.atOffset(1, pepa.TokLBracket):
			// System line: S[100] <*> E[20] ...
			if err := p.parseSystem(m); err != nil {
				return nil, err
			}
			if p.at(pepa.TokSemi) {
				p.next()
			}
			if !p.at(pepa.TokEOF) {
				return nil, p.errHere("unexpected input after system line")
			}
		default:
			return nil, p.errHere("unexpected token %q", p.cur().Text)
		}
	}
	if len(m.Species) == 0 {
		return nil, fmt.Errorf("biopepa: model defines no species")
	}
	// Validate: every participation references a law.
	if _, err := m.Reactions(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Model {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type bparser struct {
	toks []pepa.Token
	pos  int
}

func (p *bparser) cur() pepa.Token          { return p.toks[p.pos] }
func (p *bparser) at(k pepa.TokenKind) bool { return p.toks[p.pos].Kind == k }

func (p *bparser) atOffset(off int, k pepa.TokenKind) bool {
	if p.pos+off >= len(p.toks) {
		return k == pepa.TokEOF
	}
	return p.toks[p.pos+off].Kind == k
}

func (p *bparser) next() pepa.Token {
	t := p.toks[p.pos]
	if t.Kind != pepa.TokEOF {
		p.pos++
	}
	return t
}

func (p *bparser) expect(k pepa.TokenKind) error {
	if !p.at(k) {
		return p.errHere("expected %s, found %q", k, p.cur().Text)
	}
	p.next()
	return nil
}

func (p *bparser) errHere(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("biopepa: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// looksLikeSpeciesBody reports whether the upcoming tokens form a species
// participation "(rx[, n]) ROLE" rather than a parenthesized arithmetic
// expression. It distinguishes "S = (bind, 1) <<" from "c = (a + b) / 2".
func (p *bparser) looksLikeSpeciesBody() bool {
	if !p.at(pepa.TokLParen) || !p.atOffset(1, pepa.TokIdent) {
		return false
	}
	i := 2
	if p.atOffset(i, pepa.TokComma) {
		if !p.atOffset(i+1, pepa.TokNumber) {
			return false
		}
		i += 2
	}
	if !p.atOffset(i, pepa.TokRParen) {
		return false
	}
	i++
	// A role must follow: <<, >>, (+), (-), (.).
	switch {
	case p.atOffset(i, pepa.TokLAngle) && p.atOffset(i+1, pepa.TokLAngle):
		return true
	case p.atOffset(i, pepa.TokRAngle) && p.atOffset(i+1, pepa.TokRAngle):
		return true
	case p.atOffset(i, pepa.TokLParen) &&
		(p.atOffset(i+1, pepa.TokPlus) || p.atOffset(i+1, pepa.TokMinus) || p.atOffset(i+1, pepa.TokDot)) &&
		p.atOffset(i+2, pepa.TokRParen):
		return true
	}
	return false
}

// parseLaw parses fMA(e), fMM(e, e), or an explicit expression.
func (p *bparser) parseLaw() (KineticLaw, error) {
	if p.at(pepa.TokIdent) {
		switch p.cur().Text {
		case "fMA":
			p.next()
			if err := p.expect(pepa.TokLParen); err != nil {
				return nil, err
			}
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(pepa.TokRParen); err != nil {
				return nil, err
			}
			return &MassAction{K: k}, nil
		case "fMM":
			p.next()
			if err := p.expect(pepa.TokLParen); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(pepa.TokComma); err != nil {
				return nil, err
			}
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(pepa.TokRParen); err != nil {
				return nil, err
			}
			return &MichaelisMenten{V: v, K: k}, nil
		}
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExplicitLaw{Body: body}, nil
}

// parseSpeciesBody parses "(rx, n) ROLE [Name]" terms joined by '+'.
func (p *bparser) parseSpeciesBody(sp *Species) error {
	for {
		if err := p.expect(pepa.TokLParen); err != nil {
			return err
		}
		rx := p.next()
		if rx.Kind != pepa.TokIdent {
			return p.errHere("expected reaction name in species %q", sp.Name)
		}
		stoich := 1.0
		if p.at(pepa.TokComma) {
			p.next()
			n := p.next()
			if n.Kind != pepa.TokNumber {
				return p.errHere("expected stoichiometry in species %q", sp.Name)
			}
			stoich = n.Num
		}
		if err := p.expect(pepa.TokRParen); err != nil {
			return err
		}
		role, err := p.parseRole()
		if err != nil {
			return err
		}
		// Optional trailing self reference "<< S".
		if p.at(pepa.TokIdent) {
			if p.cur().Text != sp.Name {
				return p.errHere("species %q role references %q; only a self reference is allowed", sp.Name, p.cur().Text)
			}
			p.next()
		}
		sp.Participations = append(sp.Participations, Participation{
			Reaction: rx.Text, Stoich: stoich, Role: role,
		})
		if p.at(pepa.TokPlus) {
			p.next()
			continue
		}
		return nil
	}
}

// parseRole parses <<, >>, (+), (-), (.).
func (p *bparser) parseRole() (Role, error) {
	switch {
	case p.at(pepa.TokLAngle) && p.atOffset(1, pepa.TokLAngle):
		p.next()
		p.next()
		return Reactant, nil
	case p.at(pepa.TokRAngle) && p.atOffset(1, pepa.TokRAngle):
		p.next()
		p.next()
		return Product, nil
	case p.at(pepa.TokLParen) && p.atOffset(1, pepa.TokPlus) && p.atOffset(2, pepa.TokRParen):
		p.next()
		p.next()
		p.next()
		return Activator, nil
	case p.at(pepa.TokLParen) && p.atOffset(1, pepa.TokMinus) && p.atOffset(2, pepa.TokRParen):
		p.next()
		p.next()
		p.next()
		return Inhibitor, nil
	case p.at(pepa.TokLParen) && p.atOffset(1, pepa.TokDot) && p.atOffset(2, pepa.TokRParen):
		p.next()
		p.next()
		p.next()
		return Modifier, nil
	default:
		return 0, p.errHere("expected a species role (<<, >>, (+), (-), (.))")
	}
}

// parseSystem parses "S[100] <*> E[20] ..." and assigns initial amounts.
func (p *bparser) parseSystem(m *Model) error {
	seen := map[string]bool{}
	for {
		name := p.next()
		if name.Kind != pepa.TokIdent {
			return p.errHere("expected species name in system line")
		}
		sp, ok := m.ByName[name.Text]
		if !ok {
			return p.errHere("system line references undefined species %q", name.Text)
		}
		if seen[name.Text] {
			return p.errHere("species %q appears twice in system line", name.Text)
		}
		seen[name.Text] = true
		if err := p.expect(pepa.TokLBracket); err != nil {
			return err
		}
		amount := p.next()
		if amount.Kind != pepa.TokNumber {
			return p.errHere("expected initial amount for %q", name.Text)
		}
		if err := p.expect(pepa.TokRBracket); err != nil {
			return err
		}
		sp.Initial = amount.Num
		// Separator: <*> or ||, or end.
		if p.at(pepa.TokLAngle) && p.atOffset(1, pepa.TokStar) && p.atOffset(2, pepa.TokRAngle) {
			p.next()
			p.next()
			p.next()
			continue
		}
		if p.at(pepa.TokParallel) {
			p.next()
			continue
		}
		return nil
	}
}

// parseExpr parses arithmetic over numbers, parameters and species names.
func (p *bparser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(pepa.TokPlus) || p.at(pepa.TokMinus) {
		op := byte('+')
		if p.next().Kind == pepa.TokMinus {
			op = '-'
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *bparser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.at(pepa.TokStar) || p.at(pepa.TokSlash) {
		op := byte('*')
		if p.next().Kind == pepa.TokSlash {
			op = '/'
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *bparser) parseFactor() (Expr, error) {
	switch {
	case p.at(pepa.TokNumber):
		return &Num{Value: p.next().Num}, nil
	case p.at(pepa.TokIdent):
		return &Var{Name: p.next().Text}, nil
	case p.at(pepa.TokLParen):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(pepa.TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(pepa.TokMinus):
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: '-', Left: &Num{Value: 0}, Right: e}, nil
	default:
		return nil, p.errHere("expected an expression, found %q", p.cur().Text)
	}
}
