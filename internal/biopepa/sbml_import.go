package biopepa

import (
	"encoding/xml"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file completes the ref [16] mapping in the other direction: SBML
// Level 2 documents (as produced by ToSBML, or by compatible tools using
// infix formula text) import back into Bio-PEPA models. The round trip
// Model -> SBML -> Model preserves the reaction network and dynamics
// (kinetic laws come back as explicit rate expressions, which evaluate
// identically).

// Pow is x^y over kinetic-law expressions (SBML formulas use powers for
// stoichiometric mass action).
type Pow struct {
	Base, Exp Expr
}

// Eval implements Expr.
func (p *Pow) Eval(env map[string]float64) (float64, error) {
	b, err := p.Base.Eval(env)
	if err != nil {
		return 0, err
	}
	e, err := p.Exp.Eval(env)
	if err != nil {
		return 0, err
	}
	return pow(b, e), nil
}

func pow(b, e float64) float64 {
	// Integer exponents cover every formula we emit; math.Pow handles the
	// rest. Implemented via repeated multiplication for exact small cases.
	if e == float64(int(e)) && e >= 0 && e <= 8 {
		out := 1.0
		for i := 0; i < int(e); i++ {
			out *= b
		}
		return out
	}
	return math.Pow(b, e)
}

func (p *Pow) String() string { return p.Base.String() + "^" + p.Exp.String() }

// sbmlIn mirrors the subset of SBML we read.
type sbmlIn struct {
	XMLName xml.Name `xml:"sbml"`
	Model   struct {
		ID           string `xml:"id,attr"`
		Compartments []struct {
			ID   string  `xml:"id,attr"`
			Size float64 `xml:"size,attr"`
		} `xml:"listOfCompartments>compartment"`
		Species []struct {
			ID            string  `xml:"id,attr"`
			InitialAmount float64 `xml:"initialAmount,attr"`
		} `xml:"listOfSpecies>species"`
		Parameters []struct {
			ID    string  `xml:"id,attr"`
			Value float64 `xml:"value,attr"`
		} `xml:"listOfParameters>parameter"`
		Reactions []struct {
			ID        string `xml:"id,attr"`
			Reactants []struct {
				Species string  `xml:"species,attr"`
				Stoich  float64 `xml:"stoichiometry,attr"`
			} `xml:"listOfReactants>speciesReference"`
			Products []struct {
				Species string  `xml:"species,attr"`
				Stoich  float64 `xml:"stoichiometry,attr"`
			} `xml:"listOfProducts>speciesReference"`
			Modifiers []struct {
				Species string `xml:"species,attr"`
			} `xml:"listOfModifiers>modifierSpeciesReference"`
			Formula string `xml:"kineticLaw>math>formula"`
		} `xml:"listOfReactions>reaction"`
	} `xml:"model"`
}

// FromSBML imports an SBML Level 2 document with infix kinetic formulas.
// Modifier roles import as generic modifiers (SBML does not distinguish
// activator from inhibitor; the distinction lives in the formula, which is
// preserved verbatim as an explicit law).
func FromSBML(data []byte) (*Model, error) {
	var doc sbmlIn
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("biopepa: bad SBML: %w", err)
	}
	if len(doc.Model.Species) == 0 {
		return nil, fmt.Errorf("biopepa: SBML model has no species")
	}
	m := NewModel()
	for _, c := range doc.Model.Compartments {
		if c.ID != defaultCompartment {
			m.Compartments[c.ID] = c.Size
		}
	}
	for _, p := range doc.Model.Parameters {
		m.AddParam(p.ID, p.Value)
	}
	// Species first (participations attach below).
	for _, sp := range doc.Model.Species {
		if err := m.AddSpecies(&Species{Name: sp.ID, Initial: sp.InitialAmount}); err != nil {
			return nil, err
		}
	}
	for _, rx := range doc.Model.Reactions {
		if rx.ID == "" {
			return nil, fmt.Errorf("biopepa: SBML reaction without id")
		}
		if strings.TrimSpace(rx.Formula) == "" {
			return nil, fmt.Errorf("biopepa: SBML reaction %q has no kinetic formula", rx.ID)
		}
		law, err := ParseFormula(rx.Formula)
		if err != nil {
			return nil, fmt.Errorf("biopepa: reaction %q: %w", rx.ID, err)
		}
		m.AddLaw(rx.ID, &ExplicitLaw{Body: law})
		attach := func(species string, stoich float64, role Role) error {
			sp, ok := m.ByName[species]
			if !ok {
				return fmt.Errorf("biopepa: reaction %q references undefined species %q", rx.ID, species)
			}
			if stoich == 0 {
				stoich = 1
			}
			sp.Participations = append(sp.Participations, Participation{
				Reaction: rx.ID, Stoich: stoich, Role: role,
			})
			return nil
		}
		for _, r := range rx.Reactants {
			if err := attach(r.Species, r.Stoich, Reactant); err != nil {
				return nil, err
			}
		}
		for _, p := range rx.Products {
			if err := attach(p.Species, p.Stoich, Product); err != nil {
				return nil, err
			}
		}
		for _, mod := range rx.Modifiers {
			if err := attach(mod.Species, 1, Modifier); err != nil {
				return nil, err
			}
		}
	}
	if _, err := m.Reactions(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseFormula parses an infix kinetic formula: identifiers, numbers,
// + - * / ^, and parentheses.
func ParseFormula(src string) (Expr, error) {
	toks, err := scanFormula(src)
	if err != nil {
		return nil, err
	}
	p := &formulaParser{toks: toks}
	e, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing input %q in formula", p.toks[p.pos])
	}
	return e, nil
}

func scanFormula(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case strings.IndexByte("+-*/^()", c) >= 0:
			toks = append(toks, string(c))
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q in formula", string(c))
		}
	}
	return toks, nil
}

type formulaParser struct {
	toks []string
	pos  int
}

func (p *formulaParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *formulaParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *formulaParser) parseSum() (Expr, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for p.peek() == "+" || p.peek() == "-" {
		op := p.next()[0]
		right, err := p.parseProduct()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *formulaParser) parseProduct() (Expr, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for p.peek() == "*" || p.peek() == "/" {
		op := p.next()[0]
		right, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *formulaParser) parsePower() (Expr, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.peek() == "^" {
		p.next()
		exp, err := p.parsePower() // right-associative
		if err != nil {
			return nil, err
		}
		return &Pow{Base: base, Exp: exp}, nil
	}
	return base, nil
}

func (p *formulaParser) parseAtom() (Expr, error) {
	t := p.next()
	switch {
	case t == "":
		return nil, fmt.Errorf("unexpected end of formula")
	case t == "(":
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing ')' in formula")
		}
		return e, nil
	case t == "-":
		e, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: '-', Left: &Num{Value: 0}, Right: e}, nil
	case t[0] >= '0' && t[0] <= '9' || t[0] == '.':
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in formula", t)
		}
		return &Num{Value: v}, nil
	default:
		return &Var{Name: t}, nil
	}
}
