package biopepa

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// This file implements the automatic Bio-PEPA -> SBML mapping of the
// paper's ref [16] (Ellavarason 2008): species, compartments, parameters,
// and reactions with their kinetic laws are emitted as an SBML Level 2
// Version 4 document, the structured interchange format "significant
// portions of the biological research community use".

// sbmlDocument is the root <sbml> element.
type sbmlDocument struct {
	XMLName xml.Name  `xml:"sbml"`
	XMLNS   string    `xml:"xmlns,attr"`
	Level   int       `xml:"level,attr"`
	Version int       `xml:"version,attr"`
	Model   sbmlModel `xml:"model"`
}

type sbmlModel struct {
	ID           string            `xml:"id,attr"`
	Compartments []sbmlCompartment `xml:"listOfCompartments>compartment"`
	Species      []sbmlSpecies     `xml:"listOfSpecies>species"`
	Parameters   []sbmlParameter   `xml:"listOfParameters>parameter,omitempty"`
	Reactions    []sbmlReaction    `xml:"listOfReactions>reaction"`
}

type sbmlCompartment struct {
	ID   string  `xml:"id,attr"`
	Size float64 `xml:"size,attr"`
}

type sbmlSpecies struct {
	ID            string  `xml:"id,attr"`
	Compartment   string  `xml:"compartment,attr"`
	InitialAmount float64 `xml:"initialAmount,attr"`
}

type sbmlParameter struct {
	ID    string  `xml:"id,attr"`
	Value float64 `xml:"value,attr"`
}

type sbmlReaction struct {
	ID         string         `xml:"id,attr"`
	Reversible bool           `xml:"reversible,attr"`
	Reactants  []sbmlSpecRef  `xml:"listOfReactants>speciesReference,omitempty"`
	Products   []sbmlSpecRef  `xml:"listOfProducts>speciesReference,omitempty"`
	Modifiers  []sbmlModifier `xml:"listOfModifiers>modifierSpeciesReference,omitempty"`
	Law        sbmlKineticLaw `xml:"kineticLaw"`
}

type sbmlSpecRef struct {
	Species       string  `xml:"species,attr"`
	Stoichiometry float64 `xml:"stoichiometry,attr"`
}

type sbmlModifier struct {
	Species string `xml:"species,attr"`
}

type sbmlKineticLaw struct {
	Formula string `xml:"math>formula"`
}

// defaultCompartment is used when the model declares none.
const defaultCompartment = "cell"

// ToSBML renders the model as an SBML Level 2 Version 4 document. The
// mapping follows ref [16]: each Bio-PEPA reaction channel becomes an SBML
// reaction, reactant/product roles become speciesReferences with their
// stoichiometry, modifier roles ((+), (-), (.)) become
// modifierSpeciesReferences, and the kinetic law's rate expression is
// rendered as an infix formula.
func (m *Model) ToSBML(modelID string) ([]byte, error) {
	if modelID == "" {
		modelID = "biopepa_model"
	}
	rxs, err := m.Reactions()
	if err != nil {
		return nil, err
	}
	doc := sbmlDocument{
		XMLNS: "http://www.sbml.org/sbml/level2/version4",
		Level: 2, Version: 4,
		Model: sbmlModel{ID: modelID},
	}
	// Compartments (sorted for determinism); default if none declared.
	if len(m.Compartments) == 0 {
		doc.Model.Compartments = []sbmlCompartment{{ID: defaultCompartment, Size: 1}}
	} else {
		names := make([]string, 0, len(m.Compartments))
		for n := range m.Compartments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			doc.Model.Compartments = append(doc.Model.Compartments, sbmlCompartment{ID: n, Size: m.Compartments[n]})
		}
	}
	comp := doc.Model.Compartments[0].ID
	for _, sp := range m.Species {
		doc.Model.Species = append(doc.Model.Species, sbmlSpecies{
			ID: sp.Name, Compartment: comp, InitialAmount: sp.Initial,
		})
	}
	for _, p := range m.ParamOrder {
		doc.Model.Parameters = append(doc.Model.Parameters, sbmlParameter{ID: p, Value: m.Params[p]})
	}
	for _, rx := range rxs {
		sr := sbmlReaction{ID: rx.Name, Reversible: false}
		for _, p := range rx.Reactants {
			sr.Reactants = append(sr.Reactants, sbmlSpecRef{Species: p.Species, Stoichiometry: p.Stoich})
		}
		for _, p := range rx.Products {
			sr.Products = append(sr.Products, sbmlSpecRef{Species: p.Species, Stoichiometry: p.Stoich})
		}
		for _, p := range rx.Modifiers {
			sr.Modifiers = append(sr.Modifiers, sbmlModifier{Species: p.Species})
		}
		formula, err := kineticFormula(rx)
		if err != nil {
			return nil, fmt.Errorf("biopepa: reaction %q: %w", rx.Name, err)
		}
		sr.Law = sbmlKineticLaw{Formula: formula}
		doc.Model.Reactions = append(doc.Model.Reactions, sr)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// kineticFormula renders a reaction's rate law as infix SBML formula text.
func kineticFormula(rx *Reaction) (string, error) {
	switch law := rx.Law.(type) {
	case *MassAction:
		terms := []string{law.K.String()}
		for _, p := range rx.Reactants {
			if p.Stoich == 1 {
				terms = append(terms, p.Species)
			} else {
				terms = append(terms, fmt.Sprintf("%s^%g", p.Species, p.Stoich))
			}
		}
		for _, p := range rx.Modifiers {
			switch p.Role {
			case Activator:
				terms = append(terms, p.Species)
			case Inhibitor:
				terms = append(terms, fmt.Sprintf("(1 / (1 + %s))", p.Species))
			}
		}
		return strings.Join(terms, " * "), nil
	case *MichaelisMenten:
		if len(rx.Reactants) != 1 {
			return "", fmt.Errorf("fMM needs exactly one reactant")
		}
		s := rx.Reactants[0].Species
		var enzyme string
		for _, p := range rx.Modifiers {
			if p.Role == Activator || p.Role == Modifier {
				enzyme = p.Species
				break
			}
		}
		if enzyme == "" {
			return "", fmt.Errorf("fMM needs an enzyme modifier")
		}
		return fmt.Sprintf("%s * %s * %s / (%s + %s)",
			law.V.String(), enzyme, s, law.K.String(), s), nil
	case *ExplicitLaw:
		return law.Body.String(), nil
	default:
		return "", fmt.Errorf("unknown kinetic law %T", rx.Law)
	}
}
