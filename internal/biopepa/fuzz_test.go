package biopepa

import "testing"

// FuzzParse checks the Bio-PEPA parser never panics and successful parses
// round-trip through the printer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		enzymeSrc,
		inhibitedSrc,
		mmSrc,
		"k = 1;\nkineticLawOf r : fMA(k);\nS = (r, 1) <<;\nS[10]",
		"k = 1;\nkineticLawOf r : k * S;\nS = (r, 1) << S;\nS[10]",
		"compartment c = 2;\nk = 1;\nkineticLawOf r : fMA(k);\nS = (r,1) <<;\nS[1]",
		"k = 1; kineticLawOf r : fMM(k, k); S = (r,1) <<; E = (r,1) (+); S[5] <*> E[1]",
		"kineticLawOf r : fMA(k); S = (r,1) <<; S[1]",
		"k = 1; S = (r,1) <<; S[1]",
		"k = (1 + 2) * 3; kineticLawOf r : fMA(k); S = (r,1)<<; S[1]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		printed := m.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparsable output: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if m2.String() != printed {
			t.Fatalf("print/parse not a fixpoint for %q", src)
		}
		// SBML export must not panic on any valid model.
		if _, err := m.ToSBML("fuzz"); err != nil {
			// Export may legitimately fail (e.g. ill-posed fMM); it must
			// just not panic.
			_ = err
		}
	})
}
