package biopepa

import (
	"math"
	"strings"
	"testing"
)

func TestSBMLRoundTripPreservesDynamics(t *testing.T) {
	orig := MustParse(enzymeSrc)
	doc, err := orig.ToSBML("enzyme")
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSBML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Species) != len(orig.Species) {
		t.Fatalf("species = %d, want %d", len(back.Species), len(orig.Species))
	}
	ro, err := orig.SolveODE(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := back.SolveODE(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []string{"S", "E", "ES", "P"} {
		so, _ := ro.Series(sp)
		sb, _ := rb.Series(sp)
		for k := range so {
			if math.Abs(so[k]-sb[k]) > 1e-6 {
				t.Fatalf("species %s diverges at sample %d: %g vs %g", sp, k, so[k], sb[k])
			}
		}
	}
}

func TestSBMLRoundTripInhibited(t *testing.T) {
	orig := MustParse(inhibitedSrc)
	doc, err := orig.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSBML(doc)
	if err != nil {
		t.Fatal(err)
	}
	ro, _ := orig.SolveODE(50, 10)
	rb, err := back.SolveODE(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	po, _ := ro.Series("P")
	pb, _ := rb.Series("P")
	for k := range po {
		if math.Abs(po[k]-pb[k]) > 1e-6 {
			t.Fatalf("inhibited product diverges at %d: %g vs %g", k, po[k], pb[k])
		}
	}
}

func TestSBMLRoundTripMichaelisMenten(t *testing.T) {
	orig := MustParse(mmSrc)
	doc, err := orig.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSBML(doc)
	if err != nil {
		t.Fatal(err)
	}
	ro, _ := orig.SolveODE(80, 16)
	rb, err := back.SolveODE(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	so, _ := ro.Series("S")
	sb, _ := rb.Series("S")
	for k := range so {
		if math.Abs(so[k]-sb[k]) > 1e-6 {
			t.Fatalf("MM substrate diverges at %d: %g vs %g", k, so[k], sb[k])
		}
	}
}

func TestSBMLRoundTripStoichiometry(t *testing.T) {
	orig := MustParse(`
k = 0.01;
kineticLawOf dimerize : fMA(k);
A = (dimerize, 2) <<;
D = (dimerize, 1) >>;
A[100] <*> D[0]
`)
	doc, err := orig.ToSBML("")
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSBML(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation A + 2D = 100 must hold for the imported model too.
	res, err := back.SolveODE(50, 25)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Series("A")
	d, _ := res.Series("D")
	for k := range a {
		if math.Abs(a[k]+2*d[k]-100) > 1e-5 {
			t.Fatalf("stoichiometry lost: A+2D = %g at %d", a[k]+2*d[k], k)
		}
	}
}

func TestFromSBMLErrors(t *testing.T) {
	bad := []string{
		"not xml at all <",
		`<?xml version="1.0"?><sbml><model></model></sbml>`, // no species
		`<?xml version="1.0"?><sbml><model>
			<listOfSpecies><species id="S" initialAmount="1"/></listOfSpecies>
			<listOfReactions><reaction id="r">
			  <listOfReactants><speciesReference species="S" stoichiometry="1"/></listOfReactants>
			</reaction></listOfReactions></model></sbml>`, // no formula
		`<?xml version="1.0"?><sbml><model>
			<listOfSpecies><species id="S" initialAmount="1"/></listOfSpecies>
			<listOfReactions><reaction id="r">
			  <listOfReactants><speciesReference species="Ghost" stoichiometry="1"/></listOfReactants>
			  <kineticLaw><math><formula>1</formula></math></kineticLaw>
			</reaction></listOfReactions></model></sbml>`, // undefined species
	}
	for i, src := range bad {
		if _, err := FromSBML([]byte(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseFormula(t *testing.T) {
	env := map[string]float64{"k": 2, "S": 3, "E": 4}
	cases := map[string]float64{
		"k * S * E":           24,
		"k*S*E":               24,
		"S^2":                 9,
		"k * S^2":             18,
		"(S + E) / k":         3.5,
		"1 / (1 + S)":         0.25,
		"-k + S":              1,
		"2e1 + S":             23,
		"S ^ 2 ^ 1":           9, // right-associative
		"k * E * S / (k + S)": 4.8,
	}
	for src, want := range cases {
		e, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got, err := e.Eval(env)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %g, want %g", src, got, want)
		}
	}
	for _, bad := range []string{"", "k +", "(k", "k @ S", "1..2", "k S"} {
		if _, err := ParseFormula(bad); err == nil {
			t.Errorf("accepted bad formula %q", bad)
		}
	}
}

func TestPowString(t *testing.T) {
	p := &Pow{Base: &Var{Name: "S"}, Exp: &Num{Value: 2}}
	if !strings.Contains(p.String(), "S^2") {
		t.Errorf("Pow.String = %q", p.String())
	}
}
