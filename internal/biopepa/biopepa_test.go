package biopepa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// enzymeSrc is the basic enzyme-kinetics system of the Bio-PEPA users'
// manual (§ examples): E + S <-> ES -> E + P with mass-action kinetics.
const enzymeSrc = `
k1 = 0.002;  // binding
k2 = 0.1;    // unbinding
k3 = 0.05;   // catalysis

kineticLawOf bind    : fMA(k1);
kineticLawOf unbind  : fMA(k2);
kineticLawOf convert : fMA(k3);

S  = (bind, 1) << + (unbind, 1) >>;
E  = (bind, 1) << + (unbind, 1) >> + (convert, 1) >>;
ES = (bind, 1) >> + (unbind, 1) << + (convert, 1) <<;
P  = (convert, 1) >>;

S[200] <*> E[50] <*> ES[0] <*> P[0]
`

// inhibitedSrc adds a competitive inhibitor acting on the binding step.
const inhibitedSrc = `
k1 = 0.002;
k2 = 0.1;
k3 = 0.05;

kineticLawOf bind    : fMA(k1);
kineticLawOf unbind  : fMA(k2);
kineticLawOf convert : fMA(k3);

S  = (bind, 1) << + (unbind, 1) >>;
E  = (bind, 1) << + (unbind, 1) >> + (convert, 1) >>;
ES = (bind, 1) >> + (unbind, 1) << + (convert, 1) <<;
P  = (convert, 1) >>;
I  = (bind, 1) (-);

S[200] <*> E[50] <*> ES[0] <*> P[0] <*> I[100]
`

// mmSrc is the reduced Michaelis-Menten form.
const mmSrc = `
v = 2.0;
kM = 10.0;

kineticLawOf convert : fMM(v, kM);

S = (convert, 1) <<;
E = (convert, 1) (+);
P = (convert, 1) >>;

S[100] <*> E[5] <*> P[0]
`

func TestParseEnzymeModel(t *testing.T) {
	m, err := Parse(enzymeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Species) != 4 {
		t.Fatalf("species = %d, want 4", len(m.Species))
	}
	if m.ByName["S"].Initial != 200 || m.ByName["E"].Initial != 50 {
		t.Errorf("initial amounts wrong: S=%g E=%g", m.ByName["S"].Initial, m.ByName["E"].Initial)
	}
	rxs, err := m.Reactions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rxs) != 3 {
		t.Fatalf("reactions = %d, want 3", len(rxs))
	}
	var bind *Reaction
	for _, rx := range rxs {
		if rx.Name == "bind" {
			bind = rx
		}
	}
	if bind == nil || len(bind.Reactants) != 2 || len(bind.Products) != 1 {
		t.Errorf("bind reaction structure wrong: %+v", bind)
	}
}

func TestParseRoles(t *testing.T) {
	m, err := Parse(`
k = 1;
kineticLawOf r : fMA(k);
A = (r, 2) <<;
B = (r, 1) >>;
C = (r, 1) (+);
D = (r, 1) (-);
F = (r, 1) (.);
A[5] <*> B[0] <*> C[1] <*> D[1] <*> F[1]
`)
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := m.Reactions()
	if err != nil {
		t.Fatal(err)
	}
	rx := rxs[0]
	if rx.Reactants[0].Stoich != 2 {
		t.Errorf("stoichiometry = %g, want 2", rx.Reactants[0].Stoich)
	}
	if len(rx.Modifiers) != 3 {
		t.Errorf("modifiers = %d, want 3", len(rx.Modifiers))
	}
}

func TestParseSelfReferenceForm(t *testing.T) {
	// The manual writes "S = (bind, 1) << S;" — trailing self reference.
	m, err := Parse(`
k = 1;
kineticLawOf decay : fMA(k);
S = (decay, 1) << S;
S[10]
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Species) != 1 {
		t.Error("self-reference form not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"k = 1; kineticLawOf r : fMA(k); S = (r,1) << Other; S[1]":                        "foreign reference in role",
		"k = 1; S = (r,1) <<; S[1]":                                                       "missing kinetic law",
		"k = 1; kineticLawOf r : fMA(k); S[1]":                                            "no species",
		"k = 1; k = 2; kineticLawOf r : fMA(k); S = (r,1)<<; S[1]":                        "duplicate parameter",
		"k = 1; kineticLawOf r : fMA(k); kineticLawOf r : fMA(k); S = (r,1)<<; S[1]":      "duplicate law",
		"k = 1; kineticLawOf r : fMA(k); S = (r,1)<<; S[1] <*> S[2]":                      "species twice in system",
		"k = 1; kineticLawOf r : fMA(k); kineticLawOf unused : fMA(k); S = (r,1)<<; S[1]": "law without participants",
	}
	for src, why := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad model (%s)", why)
		}
	}
}

func TestMassActionRate(t *testing.T) {
	m := MustParse(enzymeSrc)
	rxs, _ := m.Reactions()
	env := m.Env(m.InitialState())
	for _, rx := range rxs {
		v, err := rx.Law.Rate(env, rx)
		if err != nil {
			t.Fatalf("%s: %v", rx.Name, err)
		}
		switch rx.Name {
		case "bind": // k1 * S * E = 0.002 * 200 * 50 = 20
			if math.Abs(v-20) > 1e-12 {
				t.Errorf("bind rate = %g, want 20", v)
			}
		case "unbind", "convert": // ES = 0
			if v != 0 {
				t.Errorf("%s rate = %g, want 0", rx.Name, v)
			}
		}
	}
}

func TestInhibitorReducesRate(t *testing.T) {
	plain := MustParse(enzymeSrc)
	inhib := MustParse(inhibitedSrc)
	prx, _ := plain.Reactions()
	irx, _ := inhib.Reactions()
	var pv, iv float64
	for _, rx := range prx {
		if rx.Name == "bind" {
			pv, _ = rx.Law.Rate(plain.Env(plain.InitialState()), rx)
		}
	}
	for _, rx := range irx {
		if rx.Name == "bind" {
			iv, _ = rx.Law.Rate(inhib.Env(inhib.InitialState()), rx)
		}
	}
	if !(iv < pv) {
		t.Errorf("inhibited rate %g not below plain rate %g", iv, pv)
	}
	// fMA divides by (1 + I) per inhibitor: 20 / 101.
	if math.Abs(iv-20.0/101) > 1e-12 {
		t.Errorf("inhibited rate = %g, want %g", iv, 20.0/101)
	}
}

func TestMichaelisMentenRate(t *testing.T) {
	m := MustParse(mmSrc)
	rxs, _ := m.Reactions()
	env := m.Env(m.InitialState())
	v, err := rxs[0].Law.Rate(env, rxs[0])
	if err != nil {
		t.Fatal(err)
	}
	// v*E*S/(kM+S) = 2*5*100/110.
	want := 2.0 * 5 * 100 / 110
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("fMM rate = %g, want %g", v, want)
	}
}

func TestMichaelisMentenValidation(t *testing.T) {
	// fMM without an enzyme must fail at rate evaluation.
	m := MustParse(`
v = 1; kM = 1;
kineticLawOf r : fMM(v, kM);
S = (r,1) <<;
P = (r,1) >>;
S[10] <*> P[0]
`)
	rxs, _ := m.Reactions()
	if _, err := rxs[0].Law.Rate(m.Env(m.InitialState()), rxs[0]); err == nil {
		t.Error("fMM without enzyme accepted")
	}
}

func TestODEConservation(t *testing.T) {
	m := MustParse(enzymeSrc)
	res, err := m.SolveODE(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: S + ES + P = 200 and E + ES = 50 throughout.
	si, ei, esi, pi := speciesIndex(m, "S"), speciesIndex(m, "E"), speciesIndex(m, "ES"), speciesIndex(m, "P")
	for k := range res.Times {
		x := res.X[k]
		if math.Abs(x[si]+x[esi]+x[pi]-200) > 1e-6 {
			t.Errorf("substrate conservation violated at t=%g: %g", res.Times[k], x[si]+x[esi]+x[pi])
		}
		if math.Abs(x[ei]+x[esi]-50) > 1e-6 {
			t.Errorf("enzyme conservation violated at t=%g: %g", res.Times[k], x[ei]+x[esi])
		}
	}
}

func TestODESubstrateConvertsToProduct(t *testing.T) {
	m := MustParse(enzymeSrc)
	res, err := m.SolveODE(400, 80)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Series("S")
	p, _ := res.Series("P")
	if !(s[len(s)-1] < 5) {
		t.Errorf("substrate not consumed: final S = %g", s[len(s)-1])
	}
	if !(p[len(p)-1] > 195) {
		t.Errorf("product not formed: final P = %g", p[len(p)-1])
	}
	for k := 1; k < len(p); k++ {
		if p[k] < p[k-1]-1e-9 {
			t.Errorf("product series not monotone at %d", k)
		}
	}
}

func TestInhibitionSlowsConversion(t *testing.T) {
	plain := MustParse(enzymeSrc)
	inhib := MustParse(inhibitedSrc)
	rp, err := plain.SolveODE(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := inhib.SolveODE(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := rp.Series("P")
	ppi, _ := ri.Series("P")
	if !(ppi[len(ppi)-1] < pp[len(pp)-1]) {
		t.Errorf("inhibitor did not slow product formation: %g vs %g", ppi[len(ppi)-1], pp[len(pp)-1])
	}
}

func TestSSAConservationAndDeterminism(t *testing.T) {
	m := MustParse(enzymeSrc)
	a, err := m.SimulateSSA(50, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateSSA(50, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Jumps != b.Jumps {
		t.Fatalf("SSA not deterministic: %d vs %d jumps", a.Jumps, b.Jumps)
	}
	si, esi, pi := speciesIndex(m, "S"), speciesIndex(m, "ES"), speciesIndex(m, "P")
	for k := range a.Times {
		total := a.X[k][si] + a.X[k][esi] + a.X[k][pi]
		if total != 200 {
			t.Errorf("SSA conservation violated at sample %d: %g", k, total)
		}
	}
	if a.Jumps == 0 {
		t.Error("SSA fired no reactions")
	}
}

func TestSSAMeanTracksODE(t *testing.T) {
	m := MustParse(enzymeSrc)
	odeRes, err := m.SolveODE(60, 20)
	if err != nil {
		t.Fatal(err)
	}
	ssaRes, err := m.MeanSSA(60, 20, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	po, _ := odeRes.Series("P")
	ps, _ := ssaRes.Series("P")
	for k := range po {
		if math.Abs(po[k]-ps[k]) > 12 {
			t.Errorf("t=%g: ODE P=%g vs SSA mean P=%g", odeRes.Times[k], po[k], ps[k])
		}
	}
}

func TestBuildCTMCSmall(t *testing.T) {
	m := MustParse(`
k = 1.0;
kineticLawOf decay : fMA(k);
S = (decay, 1) <<;
S[3]
`)
	space, err := m.BuildCTMC(CTMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(space.States) != 4 {
		t.Fatalf("states = %d, want 4 (3,2,1,0)", len(space.States))
	}
	// Passage from 3 to 0 is the sum of three exponentials with rates
	// 3k, 2k, k; its mean is 1/3 + 1/2 + 1 = 11/6.
	var target int
	for i, st := range space.States {
		if st[0] == 0 {
			target = i
		}
	}
	times := make([]float64, 600)
	for i := range times {
		times[i] = float64(i) * 0.05
	}
	cdf, err := space.Chain.FirstPassageCDF(space.Chain.PointMass(0), []int{target}, times, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cdf.Mean(), 11.0/6; math.Abs(got-want) > 0.02 {
		t.Errorf("mean extinction time = %g, want %g", got, want)
	}
}

func TestBuildCTMCBounds(t *testing.T) {
	// A birth process with no cap would explode; MaxCount must bound it.
	m := MustParse(`
k = 1.0;
kineticLawOf birth : k;
S = (birth, 1) >>;
S[0]
`)
	space, err := m.BuildCTMC(CTMCOptions{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(space.States) != 11 {
		t.Errorf("states = %d, want 11 (0..10)", len(space.States))
	}
	if _, err := m.BuildCTMC(CTMCOptions{MaxCount: 1e6, MaxStates: 50}); err == nil {
		t.Error("unbounded birth chain did not hit MaxStates")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := MustParse(enzymeSrc)
	printed := m.String()
	m2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if m2.String() != printed {
		t.Errorf("print/parse not a fixpoint:\n%s\nvs\n%s", printed, m2.String())
	}
}

func TestExprParsing(t *testing.T) {
	m := MustParse(`
a = 2;
b = a * 3 + 1;
c = (a + b) / 2 - 1;
kineticLawOf r : a * b;
S = (r,1) <<;
S[1]
`)
	if m.Params["b"] != 7 {
		t.Errorf("b = %g, want 7", m.Params["b"])
	}
	if m.Params["c"] != 3.5 {
		t.Errorf("c = %g, want 3.5", m.Params["c"])
	}
}

func TestExplicitLawUsesSpeciesConcentration(t *testing.T) {
	m := MustParse(`
k = 0.5;
kineticLawOf r : k * S;
S = (r,1) <<;
S[10]
`)
	res, err := m.SolveODE(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Series("S")
	// dS/dt = -0.5 S => S(t) = 10 e^{-t/2}.
	for k, tm := range res.Times {
		want := 10 * math.Exp(-0.5*tm)
		if math.Abs(s[k]-want) > 1e-5 {
			t.Errorf("S(%g) = %g, want %g", tm, s[k], want)
		}
	}
}

func TestODENonNegativityProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := float64(kRaw%100)/100 + 0.001
		src := "k = " + strings.TrimRight(strings.TrimRight(
			// fixed-point format to stay lexer-friendly
			fmtFixed(k), "0"), ".") + ";\n" +
			"kineticLawOf decay : fMA(k);\nS = (decay, 1) <<;\nS[5]"
		m, err := Parse(src)
		if err != nil {
			return false
		}
		res, err := m.SolveODE(20, 20)
		if err != nil {
			return false
		}
		for _, x := range res.X {
			if x[0] < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func fmtFixed(v float64) string {
	n := int(v*10000 + 0.5)
	whole := n / 10000
	frac := n % 10000
	digits := []byte{'0', '0', '0', '0'}
	for i := 3; i >= 0 && frac > 0; i-- {
		digits[i] = byte('0' + frac%10)
		frac /= 10
	}
	return itoa(whole) + "." + string(digits)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func speciesIndex(m *Model, name string) int {
	for i, sp := range m.Species {
		if sp.Name == name {
			return i
		}
	}
	return -1
}
