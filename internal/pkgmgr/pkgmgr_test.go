package pkgmgr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func TestVersionParseAndCompare(t *testing.T) {
	cases := map[string]Version{
		"1":     V(1, 0, 0),
		"1.2":   V(1, 2, 0),
		"1.2.3": V(1, 2, 3),
	}
	for s, want := range cases {
		got, err := ParseVersion(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != want {
			t.Errorf("ParseVersion(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", "1.2.3.4", "a.b", "1..2"} {
		if _, err := ParseVersion(bad); err == nil {
			t.Errorf("ParseVersion(%q) succeeded", bad)
		}
	}
	if V(1, 2, 3).Compare(V(1, 2, 3)) != 0 {
		t.Error("equal versions compare nonzero")
	}
	if V(1, 2, 3).Compare(V(1, 10, 0)) != -1 {
		t.Error("1.2.3 should be below 1.10.0")
	}
	if V(2, 0, 0).Compare(V(1, 99, 99)) != 1 {
		t.Error("major version should dominate")
	}
}

func TestDependencySatisfies(t *testing.T) {
	d := Range("x", V(1, 0, 0), V(2, 0, 0))
	if !d.Satisfies(V(1, 5, 0)) || !d.Satisfies(V(1, 0, 0)) || !d.Satisfies(V(2, 0, 0)) {
		t.Error("in-range versions rejected")
	}
	if d.Satisfies(V(0, 9, 0)) || d.Satisfies(V(2, 0, 1)) {
		t.Error("out-of-range versions accepted")
	}
	if !Any("x").Satisfies(V(99, 0, 0)) {
		t.Error("Any rejected a version")
	}
	if !Exactly("x", V(1, 2, 3)).Satisfies(V(1, 2, 3)) {
		t.Error("Exactly rejected its own version")
	}
}

func TestRepositoryBestPicksNewest(t *testing.T) {
	r := NewRepository("test")
	r.Add(&Package{Name: "a", Version: V(1, 0, 0)})
	r.Add(&Package{Name: "a", Version: V(2, 0, 0)})
	r.Add(&Package{Name: "a", Version: V(1, 5, 0)})
	best := r.Best(Any("a"))
	if best == nil || best.Version != V(2, 0, 0) {
		t.Errorf("Best = %v", best)
	}
	best = r.Best(Range("a", V(1, 0, 0), V(1, 9, 0)))
	if best == nil || best.Version != V(1, 5, 0) {
		t.Errorf("constrained Best = %v", best)
	}
	if r.Best(Any("zzz")) != nil {
		t.Error("Best of unknown package non-nil")
	}
}

func TestResolveSimpleChain(t *testing.T) {
	r := NewRepository("test")
	r.Add(&Package{Name: "app", Version: V(1, 0, 0), Deps: []Dependency{Any("lib")}})
	r.Add(&Package{Name: "lib", Version: V(3, 0, 0), Deps: []Dependency{Any("base")}})
	r.Add(&Package{Name: "base", Version: V(1, 0, 0)})
	plan, err := Resolve(r, []Dependency{Any("app")})
	if err != nil {
		t.Fatal(err)
	}
	ids := plan.IDs()
	if len(ids) != 3 {
		t.Fatalf("plan = %v", ids)
	}
	// Dependencies must come before dependents.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["base-1.0.0"] < pos["lib-3.0.0"] && pos["lib-3.0.0"] < pos["app-1.0.0"]) {
		t.Errorf("bad order: %v", ids)
	}
}

func TestResolveConstraintIntersection(t *testing.T) {
	r := NewRepository("test")
	r.Add(&Package{Name: "x", Version: V(1, 0, 0)})
	r.Add(&Package{Name: "x", Version: V(2, 0, 0)})
	r.Add(&Package{Name: "x", Version: V(3, 0, 0)})
	r.Add(&Package{Name: "a", Version: V(1, 0, 0), Deps: []Dependency{Range("x", V(1, 0, 0), V(2, 0, 0))}})
	r.Add(&Package{Name: "b", Version: V(1, 0, 0), Deps: []Dependency{Range("x", V(2, 0, 0), V(3, 0, 0))}})
	plan, err := Resolve(r, []Dependency{Any("a"), Any("b")})
	if err != nil {
		t.Fatal(err)
	}
	var xv Version
	for _, p := range plan.Packages {
		if p.Name == "x" {
			xv = p.Version
		}
	}
	if xv != V(2, 0, 0) {
		t.Errorf("intersected x version = %v, want 2.0.0", xv)
	}
}

func TestResolveConflict(t *testing.T) {
	r := NewRepository("test")
	r.Add(&Package{Name: "x", Version: V(1, 0, 0)})
	r.Add(&Package{Name: "x", Version: V(3, 0, 0)})
	r.Add(&Package{Name: "a", Version: V(1, 0, 0), Deps: []Dependency{Exactly("x", V(1, 0, 0))}})
	r.Add(&Package{Name: "b", Version: V(1, 0, 0), Deps: []Dependency{Exactly("x", V(3, 0, 0))}})
	_, err := Resolve(r, []Dependency{Any("a"), Any("b")})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want ConflictError", err)
	}
	if ce.Missing {
		t.Error("conflict mislabelled as missing")
	}
}

func TestResolveMissing(t *testing.T) {
	r := NewRepository("test")
	_, err := Resolve(r, []Dependency{Any("ghost")})
	var ce *ConflictError
	if !errors.As(err, &ce) || !ce.Missing {
		t.Fatalf("error = %v, want missing ConflictError", err)
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error message lacks package name: %v", err)
	}
}

func TestResolveReportsChain(t *testing.T) {
	r := NewRepository("test")
	r.Add(&Package{Name: "top", Version: V(1, 0, 0), Deps: []Dependency{Any("mid")}})
	r.Add(&Package{Name: "mid", Version: V(2, 0, 0), Deps: []Dependency{Any("leaf")}})
	_, err := Resolve(r, []Dependency{Any("top")})
	if err == nil || !strings.Contains(err.Error(), "top-1.0.0 -> mid-2.0.0") {
		t.Errorf("chain not reported: %v", err)
	}
}

func TestResolveDeterministic(t *testing.T) {
	r := Universe()
	a, err := Resolve(r, []Dependency{Any(PkgPEPAPlugin)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(r, []Dependency{Any(PkgPEPAPlugin)})
	if err != nil {
		t.Fatal(err)
	}
	ai, bi := a.IDs(), b.IDs()
	if len(ai) != len(bi) {
		t.Fatal("plans differ in length")
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Errorf("plan order differs at %d: %s vs %s", i, ai[i], bi[i])
		}
	}
}

func TestUniversePEPAPluginResolves(t *testing.T) {
	plan, err := Resolve(Universe(), []Dependency{Any(PkgPEPAPlugin)})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Version{}
	for _, p := range plan.Packages {
		got[p.Name] = p.Version
	}
	// The plug-in constrains Eclipse to Juno/Luna; newest admissible is 4.4.2.
	if got[PkgEclipse] != V(4, 4, 2) {
		t.Errorf("eclipse = %v, want 4.4.2", got[PkgEclipse])
	}
	if got[PkgJDK].Major != 8 {
		t.Errorf("jdk = %v, want a JDK 8", got[PkgJDK])
	}
}

func TestUniverseGPAnalyserNeedsExactVisToolkit(t *testing.T) {
	plan, err := Resolve(Universe(), []Dependency{Any(PkgGPAnalyser)})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Version{}
	for _, p := range plan.Packages {
		got[p.Name] = p.Version
	}
	if got[PkgVisToolkit] != V(2, 3, 0) {
		t.Errorf("vis-toolkit = %v, want pinned 2.3.0", got[PkgVisToolkit])
	}
	// A repo that has dropped vis-toolkit 2.3 cannot host GPAnalyser.
	repo := Universe().Clone("newer-distro")
	repo.RemoveVersion(PkgVisToolkit, V(2, 3, 0))
	if _, err := Resolve(repo, []Dependency{Any(PkgGPAnalyser)}); err == nil {
		t.Error("GPAnalyser resolved without its pinned visualization toolkit")
	}
}

func TestInstallMaterializesFiles(t *testing.T) {
	fs := vfs.New()
	plan, err := Resolve(Universe(), []Dependency{Any(PkgPEPAPlugin)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(fs, plan); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/opt/eclipse/plugins/pepa.jar") {
		t.Error("plug-in jar not installed")
	}
	if !fs.Exists("/usr/lib/jvm/java-8/bin/java") {
		t.Error("jdk not installed")
	}
	installed, err := Installed(fs)
	if err != nil {
		t.Fatal(err)
	}
	if installed[PkgEclipse] != V(4, 4, 2) {
		t.Errorf("database records eclipse %v", installed[PkgEclipse])
	}
}

func TestInstallIdempotentAndConflicts(t *testing.T) {
	fs := vfs.New()
	u := Universe()
	plan, _ := Resolve(u, []Dependency{Any(PkgJDK)})
	if err := Install(fs, plan); err != nil {
		t.Fatal(err)
	}
	if err := Install(fs, plan); err != nil {
		t.Fatalf("re-install of same plan failed: %v", err)
	}
	// Installing a different version of an installed package must fail.
	plan7, err := Resolve(u, []Dependency{Range(PkgJDK, V(7, 0, 0), V(7, 999, 999))})
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(fs, plan7); err == nil {
		t.Error("conflicting version install succeeded")
	}
}

func TestResolveIdempotenceProperty(t *testing.T) {
	// Property: resolving the same request twice against the same repo
	// yields identical plans, and every dependency in the plan is satisfied
	// by some package in the plan.
	u := Universe()
	reqs := [][]Dependency{
		{Any(PkgPEPAPlugin)},
		{Any(PkgBioPEPA)},
		{Any(PkgGPAnalyser)},
		{Any(PkgPEPAPlugin), Any(PkgGPAnalyser)},
	}
	f := func(pick uint8) bool {
		req := reqs[int(pick)%len(reqs)]
		p1, err1 := Resolve(u, req)
		p2, err2 := Resolve(u, req)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		ids1, ids2 := p1.IDs(), p2.IDs()
		if len(ids1) != len(ids2) {
			return false
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				return false
			}
		}
		have := map[string]Version{}
		for _, p := range p1.Packages {
			have[p.Name] = p.Version
		}
		for _, p := range p1.Packages {
			for _, d := range p.Deps {
				v, ok := have[d.Name]
				if !ok || !d.Satisfies(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBioPEPAAndPEPAPluginsConflict(t *testing.T) {
	// Bio-PEPA (Eclipse <= 4.2) and the PEPA plug-in (Eclipse >= 4.2) can
	// only coexist on Eclipse 4.2 exactly; with JDK constraints they still
	// resolve. Removing Eclipse 4.2 from a repo makes them unsatisfiable
	// together — the version-skew trap the paper describes.
	u := Universe()
	if _, err := Resolve(u, []Dependency{Any(PkgPEPAPlugin), Any(PkgBioPEPA)}); err != nil {
		t.Fatalf("coexistence on Eclipse 4.2 should resolve: %v", err)
	}
	repo := u.Clone("no-juno")
	repo.RemoveVersion(PkgEclipse, V(4, 2, 0))
	if _, err := Resolve(repo, []Dependency{Any(PkgPEPAPlugin), Any(PkgBioPEPA)}); err == nil {
		t.Error("plugins resolved together without any shared Eclipse version")
	}
}
