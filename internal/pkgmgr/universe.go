package pkgmgr

import "fmt"

// This file defines the synthetic package universe used throughout the
// reproduction. It mirrors the dependency structure the paper describes in
// §I–II: the PEPA and Bio-PEPA Eclipse plug-ins need *specific* JDK and
// Eclipse versions, GPAnalyser needs a specific JDK and a visualization
// library, and newer distributions have dropped the old versions — which is
// exactly why native installs fail on some hosts while containers built
// once keep working everywhere.

// Tool package names.
const (
	PkgJDK         = "jdk"
	PkgEclipse     = "eclipse"
	PkgPEPAPlugin  = "pepa-eclipse-plugin"
	PkgBioPEPA     = "biopepa-eclipse-plugin"
	PkgGPAnalyser  = "gpanalyser"
	PkgVisToolkit  = "vis-toolkit" // the "visualization package" GPAnalyser needs
	PkgXLibs       = "x11-libs"
	PkgGlibc       = "glibc"
	PkgCoreutils   = "coreutils"
	PkgSingularity = "singularity"
	// PkgModelChecker is the stochastic-probe model checker added as the
	// paper's §IV future work ("other process calculi modeling tools").
	PkgModelChecker = "pepa-modelchecker"
)

func jdk(v Version) *Package {
	return &Package{
		Name: PkgJDK, Version: v,
		Deps: []Dependency{Any(PkgGlibc)},
		Files: []File{
			{Path: fmt.Sprintf("/usr/lib/jvm/java-%d/bin/java", v.Major), Data: fmt.Sprintf("jvm %s", v), Mode: 0o755},
		},
	}
}

func eclipse(v Version, jdkMin, jdkMax Version) *Package {
	return &Package{
		Name: PkgEclipse, Version: v,
		Deps: []Dependency{Range(PkgJDK, jdkMin, jdkMax), Any(PkgXLibs)},
		Files: []File{
			{Path: "/opt/eclipse/eclipse", Data: fmt.Sprintf("eclipse %s", v), Mode: 0o755},
			{Path: "/opt/eclipse/version", Data: v.String()},
		},
	}
}

// Universe returns the full upstream archive: every version of every
// package ever published. Distribution repositories are carved out of it.
func Universe() *Repository {
	r := NewRepository("upstream")
	r.Add(&Package{Name: PkgGlibc, Version: V(2, 17, 0), Files: []File{{Path: "/lib/libc.so", Data: "glibc 2.17"}}})
	r.Add(&Package{Name: PkgGlibc, Version: V(2, 23, 0), Files: []File{{Path: "/lib/libc.so", Data: "glibc 2.23"}}})
	r.Add(&Package{Name: PkgGlibc, Version: V(2, 27, 0), Files: []File{{Path: "/lib/libc.so", Data: "glibc 2.27"}}})
	r.Add(&Package{Name: PkgCoreutils, Version: V(8, 22, 0), Files: []File{{Path: "/bin/sh", Data: "shell", Mode: 0o755}}})
	r.Add(&Package{Name: PkgCoreutils, Version: V(8, 28, 0), Files: []File{{Path: "/bin/sh", Data: "shell", Mode: 0o755}}})
	r.Add(&Package{Name: PkgXLibs, Version: V(1, 6, 0), Deps: []Dependency{Any(PkgGlibc)},
		Files: []File{{Path: "/usr/lib/libX11.so", Data: "x11 1.6"}}})
	r.Add(&Package{Name: PkgXLibs, Version: V(1, 19, 0), Deps: []Dependency{Any(PkgGlibc)},
		Files: []File{{Path: "/usr/lib/libX11.so", Data: "x11 1.19"}}})

	r.Add(jdk(V(6, 0, 45)))
	r.Add(jdk(V(7, 0, 80)))
	r.Add(jdk(V(8, 0, 181)))
	r.Add(jdk(V(11, 0, 2)))

	r.Add(eclipse(V(3, 6, 2), V(6, 0, 0), V(7, 999, 0)))  // Helios
	r.Add(eclipse(V(4, 2, 0), V(6, 0, 0), V(8, 999, 0)))  // Juno
	r.Add(eclipse(V(4, 4, 2), V(7, 0, 0), V(8, 999, 0)))  // Luna
	r.Add(eclipse(V(4, 9, 0), V(8, 0, 0), V(11, 999, 0))) // 2018-09

	// The PEPA plug-in was last revised against Eclipse Juno/Luna on JDK
	// 6–8; it does not load on Eclipse 4.9 / JDK 11.
	r.Add(&Package{
		Name: PkgPEPAPlugin, Version: V(1, 5, 0),
		Deps: []Dependency{
			Range(PkgEclipse, V(4, 2, 0), V(4, 4, 999)),
			Range(PkgJDK, V(6, 0, 0), V(8, 999, 999)),
		},
		Files: []File{
			{Path: "/opt/eclipse/plugins/pepa.jar", Data: "pepa plug-in 1.5.0"},
			{Path: "/opt/eclipse/plugins/pepa.solver", Data: "ctmc steady-state + passage-time"},
		},
	})
	// Bio-PEPA needs the older Eclipse line and JDK 6-7 only.
	r.Add(&Package{
		Name: PkgBioPEPA, Version: V(0, 9, 2),
		Deps: []Dependency{
			Range(PkgEclipse, V(3, 6, 0), V(4, 2, 999)),
			Range(PkgJDK, V(6, 0, 0), V(7, 999, 999)),
		},
		Files: []File{
			{Path: "/opt/eclipse/plugins/biopepa.jar", Data: "bio-pepa plug-in 0.9.2"},
		},
	})
	// GPAnalyser is standalone: JDK 7-8 plus the visualization toolkit.
	r.Add(&Package{
		Name: PkgGPAnalyser, Version: V(0, 9, 0),
		Deps: []Dependency{
			Range(PkgJDK, V(7, 0, 0), V(8, 999, 999)),
			Exactly(PkgVisToolkit, V(2, 3, 0)),
		},
		Files: []File{
			{Path: "/opt/gpa/gpa.jar", Data: "gpanalyser 0.9.0"},
			{Path: "/opt/gpa/bin/gpa", Data: "#!gpa launcher", Mode: 0o755},
		},
	})
	r.Add(&Package{Name: PkgVisToolkit, Version: V(2, 3, 0), Deps: []Dependency{Any(PkgXLibs)},
		Files: []File{{Path: "/usr/lib/libvis.so", Data: "vis 2.3"}}})
	r.Add(&Package{Name: PkgVisToolkit, Version: V(3, 0, 0), Deps: []Dependency{Any(PkgXLibs)},
		Files: []File{{Path: "/usr/lib/libvis.so", Data: "vis 3.0"}}})

	r.Add(&Package{Name: PkgSingularity, Version: V(2, 5, 2), Deps: []Dependency{Any(PkgGlibc)},
		Files: []File{{Path: "/usr/bin/singularity", Data: "singularity 2.5.2", Mode: 0o755}}})

	// The CSL-style model checker (future-work tool): needs any JDK >= 8.
	r.Add(&Package{
		Name: PkgModelChecker, Version: V(0, 3, 0),
		Deps: []Dependency{Range(PkgJDK, V(8, 0, 0), MaxVersion)},
		Files: []File{
			{Path: "/opt/pepa-mc/mc.jar", Data: "pepa model checker 0.3.0"},
		},
	})
	return r
}
