// Package pkgmgr simulates a distribution package manager: a universe of
// versioned packages with dependency ranges, per-distribution repositories
// with version skew, and a resolver that either produces an install plan or
// fails with the kind of dependency conflict that motivates the paper —
// "archaeological dig" reconstruction of the exact JDK/Eclipse versions a
// modelling tool was built against.
//
// Installation materializes package payloads into a vfs.FS, so the same
// resolver drives both native-host installs (internal/hostenv) and
// container builds (internal/runtime's %post handler).
package pkgmgr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// Version is a semantic package version.
type Version struct {
	Major, Minor, Patch int
}

// V is shorthand for constructing a version.
func V(major, minor, patch int) Version { return Version{major, minor, patch} }

// ParseVersion parses "1", "1.2", or "1.2.3".
func ParseVersion(s string) (Version, error) {
	var v Version
	parts := strings.Split(s, ".")
	if len(parts) == 0 || len(parts) > 3 {
		return v, fmt.Errorf("pkgmgr: bad version %q", s)
	}
	fields := []*int{&v.Major, &v.Minor, &v.Patch}
	for i, p := range parts {
		n := 0
		if p == "" {
			return v, fmt.Errorf("pkgmgr: bad version %q", s)
		}
		for _, r := range p {
			if r < '0' || r > '9' {
				return v, fmt.Errorf("pkgmgr: bad version %q", s)
			}
			n = n*10 + int(r-'0')
		}
		*fields[i] = n
	}
	return v, nil
}

// Compare returns -1, 0, or 1.
func (v Version) Compare(o Version) int {
	switch {
	case v.Major != o.Major:
		return sign(v.Major - o.Major)
	case v.Minor != o.Minor:
		return sign(v.Minor - o.Minor)
	default:
		return sign(v.Patch - o.Patch)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// MaxVersion is the open upper bound for unconstrained dependencies.
var MaxVersion = Version{1 << 30, 0, 0}

// Dependency is a constraint on another package: Min <= version <= Max.
type Dependency struct {
	Name string
	Min  Version
	Max  Version
}

// Any returns an unconstrained dependency on name.
func Any(name string) Dependency { return Dependency{Name: name, Max: MaxVersion} }

// Range returns a bounded dependency.
func Range(name string, min, max Version) Dependency {
	return Dependency{Name: name, Min: min, Max: max}
}

// Exactly pins a dependency to one version.
func Exactly(name string, v Version) Dependency {
	return Dependency{Name: name, Min: v, Max: v}
}

// Satisfies reports whether version v meets the constraint.
func (d Dependency) Satisfies(v Version) bool {
	return d.Min.Compare(v) <= 0 && v.Compare(d.Max) <= 0
}

func (d Dependency) String() string {
	if d.Max == MaxVersion {
		if (d.Min == Version{}) {
			return d.Name
		}
		return fmt.Sprintf("%s (>= %s)", d.Name, d.Min)
	}
	if d.Min == d.Max {
		return fmt.Sprintf("%s (= %s)", d.Name, d.Min)
	}
	return fmt.Sprintf("%s (%s..%s)", d.Name, d.Min, d.Max)
}

// File is a payload file a package installs.
type File struct {
	Path string // absolute path in the target filesystem
	Data string
	Mode uint32
}

// Package is one installable unit.
type Package struct {
	Name    string
	Version Version
	Deps    []Dependency
	Files   []File
}

// ID renders "name-1.2.3".
func (p *Package) ID() string { return p.Name + "-" + p.Version.String() }

// Repository is a named set of package versions (a distro's archive).
type Repository struct {
	Name string
	pkgs map[string][]*Package // name -> versions, kept sorted ascending
}

// NewRepository creates an empty repository.
func NewRepository(name string) *Repository {
	return &Repository{Name: name, pkgs: map[string][]*Package{}}
}

// Add registers a package version. Duplicate (name, version) replaces.
func (r *Repository) Add(p *Package) {
	list := r.pkgs[p.Name]
	for i, q := range list {
		if q.Version == p.Version {
			list[i] = p
			return
		}
	}
	list = append(list, p)
	sort.Slice(list, func(a, b int) bool { return list[a].Version.Compare(list[b].Version) < 0 })
	r.pkgs[p.Name] = list
}

// Versions lists available versions of a package, ascending.
func (r *Repository) Versions(name string) []Version {
	var out []Version
	for _, p := range r.pkgs[name] {
		out = append(out, p.Version)
	}
	return out
}

// Best returns the newest version satisfying the dependency, or nil.
func (r *Repository) Best(d Dependency) *Package {
	list := r.pkgs[d.Name]
	for i := len(list) - 1; i >= 0; i-- {
		if d.Satisfies(list[i].Version) {
			return list[i]
		}
	}
	return nil
}

// Names lists package names in the repository, sorted.
func (r *Repository) Names() []string {
	out := make([]string, 0, len(r.pkgs))
	for n := range r.pkgs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a repository sharing package pointers (packages are
// immutable by convention).
func (r *Repository) Clone(name string) *Repository {
	c := NewRepository(name)
	for _, list := range r.pkgs {
		for _, p := range list {
			c.Add(p)
		}
	}
	return c
}

// Remove drops a package name entirely (used to model distros that no
// longer carry a package).
func (r *Repository) Remove(name string) { delete(r.pkgs, name) }

// RemoveVersion drops a single version.
func (r *Repository) RemoveVersion(name string, v Version) {
	list := r.pkgs[name]
	for i, p := range list {
		if p.Version == v {
			r.pkgs[name] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// ConflictError describes a resolution failure precisely enough for the
// error messages the paper's users would see.
type ConflictError struct {
	Request Dependency
	// Missing is set when no version of the package exists at all.
	Missing bool
	// Available lists versions present but outside the constraint.
	Available []Version
	// Chain is the dependency chain that led here (outermost first).
	Chain []string
}

func (e *ConflictError) Error() string {
	var b strings.Builder
	b.WriteString("pkgmgr: cannot resolve ")
	b.WriteString(e.Request.String())
	if len(e.Chain) > 0 {
		b.WriteString(" (required by " + strings.Join(e.Chain, " -> ") + ")")
	}
	if e.Missing {
		b.WriteString(": package not in repository")
	} else {
		var vs []string
		for _, v := range e.Available {
			vs = append(vs, v.String())
		}
		b.WriteString(": available versions " + strings.Join(vs, ", ") + " do not satisfy the constraint")
	}
	return b.String()
}

// Plan is an ordered install plan (dependencies before dependents).
type Plan struct {
	Packages []*Package
}

// IDs lists the plan's package IDs in install order.
func (p *Plan) IDs() []string {
	out := make([]string, len(p.Packages))
	for i, pkg := range p.Packages {
		out[i] = pkg.ID()
	}
	return out
}

// Resolve computes an install plan for the requested dependencies against
// one repository. The solver picks the newest version satisfying each
// constraint and intersects constraints that reach the same package; a
// genuinely unsatisfiable intersection is reported as a ConflictError.
func Resolve(repo *Repository, requests []Dependency) (*Plan, error) {
	chosen := map[string]*Package{}
	constraint := map[string]Dependency{}
	var order []string

	var visit func(d Dependency, chain []string) error
	visit = func(d Dependency, chain []string) error {
		if prev, ok := constraint[d.Name]; ok {
			// Intersect with the previous constraint.
			merged := prev
			if d.Min.Compare(merged.Min) > 0 {
				merged.Min = d.Min
			}
			if d.Max.Compare(merged.Max) < 0 {
				merged.Max = d.Max
			}
			if merged.Min.Compare(merged.Max) > 0 {
				return &ConflictError{Request: d, Available: repo.Versions(d.Name), Chain: append([]string(nil), chain...)}
			}
			constraint[d.Name] = merged
			if cur := chosen[d.Name]; cur != nil && merged.Satisfies(cur.Version) {
				return nil // already satisfied
			}
			// Re-pick under the tightened constraint.
			d = merged
		} else {
			constraint[d.Name] = d
		}
		best := repo.Best(constraint[d.Name])
		if best == nil {
			vs := repo.Versions(d.Name)
			return &ConflictError{Request: d, Missing: len(vs) == 0, Available: vs, Chain: append([]string(nil), chain...)}
		}
		if cur := chosen[d.Name]; cur != nil && cur.Version == best.Version {
			return nil
		}
		first := chosen[d.Name] == nil
		chosen[d.Name] = best
		if first {
			order = append(order, d.Name)
		}
		nextChain := append(append([]string(nil), chain...), best.ID())
		for _, dep := range best.Deps {
			if err := visit(dep, nextChain); err != nil {
				return err
			}
		}
		return nil
	}
	for _, req := range requests {
		if err := visit(req, nil); err != nil {
			return nil, err
		}
	}
	// Topologically order: dependencies before dependents (DFS postorder).
	perm := map[string]bool{}
	temp := map[string]bool{}
	var sorted []*Package
	var topo func(name string) error
	topo = func(name string) error {
		if perm[name] {
			return nil
		}
		if temp[name] {
			return fmt.Errorf("pkgmgr: dependency cycle through %q", name)
		}
		temp[name] = true
		for _, dep := range chosen[name].Deps {
			if _, ok := chosen[dep.Name]; ok {
				if err := topo(dep.Name); err != nil {
					return err
				}
			}
		}
		temp[name] = false
		perm[name] = true
		sorted = append(sorted, chosen[name])
		return nil
	}
	for _, name := range order {
		if err := topo(name); err != nil {
			return nil, err
		}
	}
	return &Plan{Packages: sorted}, nil
}

// DBPath is where the installed-package database lives in a target
// filesystem.
const DBPath = "/var/lib/pkg/installed"

// Install materializes a plan into the filesystem: payload files plus a
// database entry per package. Already-installed identical versions are
// skipped; a different installed version of the same package is an error
// (no upgrades in this simulation).
func Install(fs *vfs.FS, plan *Plan) error {
	installed, err := Installed(fs)
	if err != nil {
		return err
	}
	if err := fs.MkdirAll("/var/lib/pkg", 0o755); err != nil {
		return err
	}
	for _, p := range plan.Packages {
		if cur, ok := installed[p.Name]; ok {
			if cur == p.Version {
				continue
			}
			return fmt.Errorf("pkgmgr: %s already installed at %s; cannot install %s", p.Name, cur, p.Version)
		}
		for _, f := range p.Files {
			dir := f.Path[:strings.LastIndex(f.Path, "/")]
			if dir == "" {
				dir = "/"
			}
			if err := fs.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("pkgmgr: installing %s: %w", p.ID(), err)
			}
			mode := f.Mode
			if mode == 0 {
				mode = 0o644
			}
			if err := fs.WriteFile(f.Path, []byte(f.Data), mode); err != nil {
				return fmt.Errorf("pkgmgr: installing %s: %w", p.ID(), err)
			}
		}
		if err := fs.AppendFile(DBPath, []byte(p.ID()+"\n"), 0o644); err != nil {
			return err
		}
		installed[p.Name] = p.Version
	}
	return nil
}

// Installed reads the package database of a filesystem.
func Installed(fs *vfs.FS) (map[string]Version, error) {
	out := map[string]Version{}
	data, err := fs.ReadFile(DBPath)
	if err != nil {
		return out, nil // no database yet
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		i := strings.LastIndex(line, "-")
		if i < 0 {
			return nil, fmt.Errorf("pkgmgr: corrupt database entry %q", line)
		}
		v, err := ParseVersion(line[i+1:])
		if err != nil {
			return nil, fmt.Errorf("pkgmgr: corrupt database entry %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}
