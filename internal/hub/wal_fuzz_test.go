package hub

import (
	"testing"
)

// FuzzHintJournalRecords hardens the journal decoder against arbitrary
// bytes standing where hinted-handoff records should be: whatever the
// input, decoding must not panic, must never claim more good bytes than
// exist, and every record it does accept must replay cleanly and
// re-encode into a journal that decodes back to the same records (the
// longest-valid-prefix contract). Seed corpus lives under
// testdata/fuzz/FuzzHintJournalRecords.
func FuzzHintJournalRecords(f *testing.F) {
	mustEncode := func(rec walRecord) []byte {
		buf, err := encodeWALRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	add := mustEncode(walRecord{Seq: 1, Op: walHintAdd,
		Hint: &Hint{Target: "b", Collection: "coll", Container: "pepa", Tag: "latest", Digest: "sha256:aaa"}})
	ack := mustEncode(walRecord{Seq: 2, Op: walHintAck,
		Hint: &Hint{Target: "b", Collection: "coll", Container: "pepa", Tag: "latest", Digest: "sha256:aaa"}})
	f.Add(append(append([]byte{}, add...), ack...)) // well-formed add+ack
	f.Add(add[:len(add)/2])                         // torn mid-record
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // zero-length frame

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, torn := decodeWALRecords(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		if !torn && goodLen != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", goodLen, len(data))
		}
		// Every accepted hint record must replay without panicking, on an
		// empty store and on one already holding the slot.
		s := NewStore()
		s.hints["b|coll/pepa:latest"] = Hint{Target: "b", Collection: "coll", Container: "pepa", Tag: "latest", Digest: "sha256:aaa"}
		for _, rec := range recs {
			if rec.Op == walHintAdd || rec.Op == walHintAck {
				s.applyWALRecord(".", rec) // hint ops never touch the dir
			}
		}
		// Round trip: re-encoding the accepted records yields a journal
		// that decodes cleanly to the same count.
		var out []byte
		for _, rec := range recs {
			buf, err := encodeWALRecord(rec)
			if err != nil {
				t.Fatalf("re-encoding accepted record: %v", err)
			}
			out = append(out, buf...)
		}
		recs2, n2, torn2 := decodeWALRecords(out)
		if torn2 || n2 != len(out) || len(recs2) != len(recs) {
			t.Fatalf("re-encoded journal decode = (%d recs, %d bytes, torn %v), want (%d, %d, false)",
				len(recs2), n2, torn2, len(recs), len(out))
		}
	})
}
