package hub

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Integrity scrubbing: a background loop re-hashes every stored blob on
// a jittered interval and quarantines entries whose bytes no longer
// match their recorded digest (bit-rot, torn writes that slipped past
// recovery, hostile edits). Quarantined content is served as 410 Gone
// with a typed error until a re-push repairs it; on durable stores the
// quarantine is journaled so it survives restarts. Metrics land in the
// hub_scrub_* family.

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Checked     int      // entries whose bytes were re-hashed
	Corrupt     int      // entries newly quarantined this pass
	Quarantined []string // keys ("coll/name:tag") newly quarantined
	Skipped     int      // entries already in quarantine (not re-checked)
}

// ScrubOnce re-hashes every stored blob now, quarantining mismatches.
// It is deterministic given the store contents, so chaos tests can
// assert exactly which entries a corruption flips. reg may be nil.
func (s *Store) ScrubOnce(reg *obs.Registry) ScrubReport {
	s.mu.RLock()
	keys := make([]string, 0, len(s.meta))
	for k := range s.meta {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)

	var report ScrubReport
	for _, k := range keys {
		s.mu.RLock()
		blob, ok := s.blobs[k]
		want := s.digest[k]
		_, already := s.quarantined[k]
		e, metaOK := s.meta[k]
		s.mu.RUnlock()
		if !ok || !metaOK {
			continue // deleted since the key snapshot
		}
		if already {
			report.Skipped++
			continue
		}
		report.Checked++
		reg.Inc("hub_scrub_blobs_checked_total")
		got, err := blobDigest(blob)
		if err == nil && got == want {
			continue
		}
		reason := "stored bytes failed digest verification"
		if err != nil {
			reason = "stored bytes unparsable: " + err.Error()
		}
		s.quarantine(k, e, reason)
		report.Corrupt++
		report.Quarantined = append(report.Quarantined, k)
		reg.Inc("hub_scrub_corrupt_total")
	}
	reg.Inc("hub_scrub_runs_total")
	s.mu.RLock()
	reg.Set("hub_scrub_quarantined", float64(len(s.quarantined)))
	s.mu.RUnlock()
	return report
}

// FlipBit flips one bit of the stored blob for (coll, name, tag) in
// place — the storage-side analogue of faultinject's wire-level
// corruption, for chaos tests that simulate bit-rot the scrubber must
// catch. The bit index wraps around the blob length, so any value picks
// a valid bit deterministically. Like real rot, the mutation is
// invisible until the next scrub or digest-verified read; it bypasses
// the journal on durable stores (rot is not a mutation the WAL saw).
// Returns false for an unknown or empty entry.
func (s *Store) FlipBit(coll, name, tag string, bit int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(coll, name, tag)
	blob, ok := s.blobs[k]
	if !ok || len(blob) == 0 {
		return false
	}
	// Mutate a copy: layer-index frames alias the original blob, and
	// real rot on a blob file would not rewrite them either.
	mutated := append([]byte(nil), blob...)
	bit %= len(mutated) * 8
	if bit < 0 {
		bit += len(mutated) * 8
	}
	mutated[bit/8] ^= 1 << (bit % 8)
	s.blobs[k] = mutated
	return true
}

// quarantine marks k as known-bad, journaling the transition on durable
// stores so it survives restarts. The corrupt bytes are kept in memory
// for forensics; they are never served.
func (s *Store) quarantine(k string, e Entry, reason string) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.wal != nil {
		e.Quarantined = true
		// Journal failures must not mask the quarantine: the in-memory
		// mark still protects readers this run.
		s.wal.append(walQuarantine, persistedEntry{Entry: e, Blob: blobFileName(e.Digest)})
	}
	s.mu.Lock()
	if cur, ok := s.meta[k]; ok {
		cur.Quarantined = true
		s.meta[k] = cur
		s.quarantined[k] = reason
	}
	s.mu.Unlock()
}

// Scrubber runs ScrubOnce on a jittered interval in the background.
type Scrubber struct {
	store    *Store
	interval time.Duration
	jitter   *rng.Source
	reg      *obs.Registry
	stop     chan struct{}
	done     chan struct{}
}

// StartScrubber begins background integrity scrubbing of store every
// interval, scaled per cycle by a deterministic jitter factor in
// [0.75, 1.25) from seed so a fleet of hubs does not scrub in lockstep.
// reg may be nil. Stop the scrubber with Stop.
func StartScrubber(store *Store, interval time.Duration, seed uint64, reg *obs.Registry) *Scrubber {
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	if seed == 0 {
		seed = 1
	}
	sc := &Scrubber{
		store: store, interval: interval, jitter: rng.New(seed), reg: reg,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go sc.run()
	return sc
}

func (sc *Scrubber) run() {
	defer close(sc.done)
	for {
		d := sc.nextDelay()
		timer := time.NewTimer(d)
		select {
		case <-sc.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		sc.store.ScrubOnce(sc.reg)
	}
}

// nextDelay returns the jittered wait before the next pass.
func (sc *Scrubber) nextDelay() time.Duration {
	u := sc.jitter.Float64()
	return time.Duration(float64(sc.interval) * (0.75 + 0.5*u))
}

// Stop halts the scrub loop and waits for an in-progress pass to end.
func (sc *Scrubber) Stop() {
	close(sc.stop)
	<-sc.done
}

// EnableScrubbing attaches a background scrubber to the server's store;
// it is stopped by Shutdown/Close. Call before Listen.
func (s *Server) EnableScrubbing(interval time.Duration, seed uint64) {
	s.scrubber = StartScrubber(s.Store, interval, seed, s.obs)
}
