package hub

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/image"
	"repro/internal/vfs"
)

// layeredTestImage builds an image with one layer per stage content:
// identical stage prefixes produce identical (shared) layers.
func layeredTestImage(t *testing.T, name, tag string, stages ...string) *image.Image {
	t.Helper()
	snaps := make([]*vfs.FS, 0, len(stages))
	fs := vfs.New()
	for i, content := range stages {
		fs = fs.Clone()
		if err := fs.WriteFile(fmt.Sprintf("/stage%d", i), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, fs)
	}
	layers, err := image.LayersFromSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	meta := image.Metadata{Name: name, Tag: tag, BaseRef: "centos:7.4", BuildHost: "centos-7.4-proliant"}
	img, err := image.AssembleFromLayers(meta, layers)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLayeredPushPullRoundTrip(t *testing.T) {
	c, store, done := newTestClient(t)
	defer done()
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	localDigest, err := img.Digest()
	if err != nil {
		t.Fatal(err)
	}

	digest, err := c.PushLayered("pepa-tools", img)
	if err != nil {
		t.Fatal(err)
	}
	if digest != localDigest {
		t.Errorf("push digest = %s, want %s", digest, localDigest)
	}

	// The committed blob is exactly the client's layered serialization.
	blob, _, ok := store.Get("pepa-tools", "pepa", "latest")
	if !ok {
		t.Fatal("entry missing after layered push")
	}
	if !image.IsLayered(blob) {
		t.Fatal("stored blob is not in layered form")
	}
	want, err := img.MarshalLayered()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(want) {
		t.Error("stored blob differs from local layered serialization")
	}
	entries := store.List("pepa-tools")
	if len(entries) != 1 || entries[0].Layers != 3 {
		t.Errorf("entries = %+v, want one entry with 3 layers", entries)
	}

	// A fresh client reassembles the image from its layers.
	c2 := NewClient(strings.TrimSuffix(c.BaseURL, "/"))
	pulled, gotDigest, err := c2.PullLayered("pepa-tools", "pepa", "latest", localDigest)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != localDigest {
		t.Errorf("pull digest = %s, want %s", gotDigest, localDigest)
	}
	for i, content := range []string{"base", "deps", "solver"} {
		data, err := pulled.FS.ReadFile(fmt.Sprintf("/stage%d", i))
		if err != nil || string(data) != content {
			t.Errorf("stage%d = %q, %v; want %q", i, data, err, content)
		}
	}
	if len(pulled.Layers) != 3 {
		t.Errorf("pulled image carries %d layers, want 3", len(pulled.Layers))
	}

	// The legacy monolithic pull still works against the layered entry
	// and agrees on the digest.
	legacy, legacyDigest, err := c2.Pull("pepa-tools", "pepa", "latest", localDigest)
	if err != nil {
		t.Fatal(err)
	}
	if legacyDigest != localDigest {
		t.Errorf("legacy pull digest = %s, want %s", legacyDigest, localDigest)
	}
	if d, _ := legacy.Digest(); d != localDigest {
		t.Errorf("legacy pulled image digest = %s, want %s", d, localDigest)
	}
}

func TestLayeredPushTransfersOnlyMissingLayers(t *testing.T) {
	c, store, done := newTestClient(t)
	defer done()
	a := layeredTestImage(t, "pepa", "v1", "base", "deps", "solver-v1")
	if _, err := c.PushLayered("coll", a); err != nil {
		t.Fatal(err)
	}
	if got := store.LayerCount(); got != 3 {
		t.Fatalf("LayerCount = %d, want 3", got)
	}

	// The second image shares the first two layers; only the third
	// should cross the wire.
	b := layeredTestImage(t, "pepa", "v2", "base", "deps", "solver-v2")
	c.ResetAttemptLog()
	if _, err := c.PushLayered("coll", b); err != nil {
		t.Fatal(err)
	}
	uploads := c.AttemptsMatching("pushlayer ")
	if len(uploads) != 1 {
		t.Errorf("pushed %d layers, want 1: %v", len(uploads), uploads)
	}
	if got := store.LayerCount(); got != 4 {
		t.Errorf("LayerCount = %d, want 4", got)
	}

	// Re-pushing the same image uploads nothing and is idempotent.
	c.ResetAttemptLog()
	if _, err := c.PushLayered("coll", b); err != nil {
		t.Fatal(err)
	}
	if uploads := c.AttemptsMatching("pushlayer "); len(uploads) != 0 {
		t.Errorf("re-push uploaded %d layers, want 0: %v", len(uploads), uploads)
	}
}

func TestLayeredPullUsesLayerCache(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	a := layeredTestImage(t, "pepa", "v1", "base", "deps", "solver-v1")
	b := layeredTestImage(t, "pepa", "v2", "base", "deps", "solver-v2")
	da, _ := a.Digest()
	db, _ := b.Digest()
	if _, err := c.PushLayered("coll", a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushLayered("coll", b); err != nil {
		t.Fatal(err)
	}

	puller := NewClient(c.BaseURL)
	if _, _, err := puller.PullLayered("coll", "pepa", "v1", da); err != nil {
		t.Fatal(err)
	}
	if got := puller.AttemptsMatching("pulllayer "); len(got) != 3 {
		t.Fatalf("cold pull fetched %d layers, want 3: %v", len(got), got)
	}
	puller.ResetAttemptLog()
	if _, _, err := puller.PullLayered("coll", "pepa", "v2", db); err != nil {
		t.Fatal(err)
	}
	if got := puller.AttemptsMatching("pulllayer "); len(got) != 1 {
		t.Errorf("warm pull fetched %d layers, want 1: %v", len(got), got)
	}
	if hits := puller.LayerCache().Hits(); hits < 2 {
		t.Errorf("layer cache hits = %d, want >= 2", hits)
	}
}

func TestPullLayeredFallsBackToLegacy(t *testing.T) {
	c, store, done := newTestClient(t)
	defer done()
	img := testImage("pepa", "latest", "monolithic")
	digest, err := c.Push("coll", img)
	if err != nil {
		t.Fatal(err)
	}
	blob, _, _ := store.Get("coll", "pepa", "latest")
	if image.IsLayered(blob) {
		t.Fatal("legacy push stored a layered blob")
	}

	pulled, gotDigest, err := c.PullLayered("coll", "pepa", "latest", digest)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest {
		t.Errorf("fallback pull digest = %s, want %s", gotDigest, digest)
	}
	got, err := pulled.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Error("fallback pull is not byte-identical to the stored legacy blob")
	}
	if len(c.AttemptsMatching("pull coll/pepa:latest")) == 0 {
		t.Error("expected a legacy pull attempt after the manifest 404")
	}
}

func TestLayeredPushRenegotiatesOn412(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	inner := srv.Handler()
	var once sync.Once
	// Drop every staged layer just before the first manifest commit,
	// simulating a registry that lost its (non-durable) staging area
	// between negotiation and commit.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && strings.HasSuffix(r.URL.Path, "/manifest") {
			once.Do(func() {
				store.mu.Lock()
				store.layers = map[string][]byte{}
				store.mu.Unlock()
			})
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	localDigest, _ := img.Digest()
	digest, err := c.PushLayered("coll", img)
	if err != nil {
		t.Fatal(err)
	}
	if digest != localDigest {
		t.Errorf("digest = %s, want %s", digest, localDigest)
	}
	// Two negotiation rounds: 3 uploads, a 412, then 3 re-uploads.
	if uploads := c.AttemptsMatching("pushlayer "); len(uploads) != 6 {
		t.Errorf("pushed %d layers across renegotiation, want 6: %v", len(uploads), uploads)
	}
	if _, _, ok := store.Get("coll", "pepa", "latest"); !ok {
		t.Error("entry missing after renegotiated push")
	}
}

func TestStoreIndexesLayersFromInstalledBlobs(t *testing.T) {
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	blob, err := img.MarshalLayered()
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	if _, err := store.Put("coll", "pepa", "latest", blob); err != nil {
		t.Fatal(err)
	}
	if got := store.LayerCount(); got != 3 {
		t.Errorf("LayerCount = %d, want 3", got)
	}
	var digests []string
	for _, l := range img.Layers {
		digests = append(digests, l.Digest())
	}
	if missing := store.MissingLayers(digests); len(missing) != 0 {
		t.Errorf("MissingLayers = %v, want none", missing)
	}
	for _, l := range img.Layers {
		frame, ok := store.LayerBlob(l.Digest())
		if !ok || string(frame) != string(l.Bytes()) {
			t.Errorf("LayerBlob(%s) missing or differs", l.Digest())
		}
	}
}
