package hub

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

func hint(target, coll, name, tag, digest string) Hint {
	return Hint{Target: target, Collection: coll, Container: name, Tag: tag, Digest: digest}
}

func TestHintAddAckRoundTrip(t *testing.T) {
	s := NewStore()
	h := hint("b", "coll", "pepa", "latest", "sha256:aaa")
	if err := s.AddHint(h); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-add, then a newer digest replaces the slot.
	if err := s.AddHint(h); err != nil {
		t.Fatal(err)
	}
	h2 := hint("b", "coll", "pepa", "latest", "sha256:bbb")
	if err := s.AddHint(h2); err != nil {
		t.Fatal(err)
	}
	if got := s.Hints("b"); !reflect.DeepEqual(got, []Hint{h2}) {
		t.Fatalf("hints = %+v, want the replaced slot only", got)
	}
	// A stale ack (old digest) must not drop the newer hint.
	if acked, err := s.AckHint(h); err != nil || acked {
		t.Fatalf("stale ack = (%v, %v), want (false, nil)", acked, err)
	}
	if s.HintCount() != 1 {
		t.Fatalf("hint count = %d after stale ack, want 1", s.HintCount())
	}
	if acked, err := s.AckHint(h2); err != nil || !acked {
		t.Fatalf("ack = (%v, %v), want (true, nil)", acked, err)
	}
	if s.HintCount() != 0 {
		t.Errorf("hint count = %d after ack, want 0", s.HintCount())
	}
	// Incomplete hints are rejected.
	if err := s.AddHint(hint("", "c", "n", "t", "d")); err == nil {
		t.Error("hint without target accepted")
	}
}

func TestHintsDeterministicOrder(t *testing.T) {
	s := NewStore()
	hints := []Hint{
		hint("c", "coll", "app", "v1", "sha256:3"),
		hint("a", "coll", "app", "v1", "sha256:1"),
		hint("a", "coll", "app", "v2", "sha256:2"),
	}
	for _, h := range hints {
		if err := s.AddHint(h); err != nil {
			t.Fatal(err)
		}
	}
	want := []Hint{hints[1], hints[2], hints[0]}
	if got := s.Hints(""); !reflect.DeepEqual(got, want) {
		t.Errorf("Hints() = %+v, want sorted %+v", got, want)
	}
	if got := s.Hints("a"); !reflect.DeepEqual(got, []Hint{hints[1], hints[2]}) {
		t.Errorf("Hints(a) = %+v", got)
	}
}

// TestHintsSurviveRestart: hints are journaled like puts — a crash after
// the hint is acknowledged must not lose it, and an acked hint must not
// resurrect on replay.
func TestHintsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	kept := hint("b", "coll", "pepa", "latest", "sha256:keep")
	acked := hint("c", "coll", "gpa", "v2", "sha256:gone")
	if err := s.AddHint(kept); err != nil {
		t.Fatal(err)
	}
	if err := s.AddHint(acked); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.AckHint(acked); err != nil || !ok {
		t.Fatalf("ack = (%v, %v)", ok, err)
	}

	// Crash-style restart: replay the journal without a clean close.
	crashed := copyStateDir(t, dir, 1<<30)
	rec, report, err := OpenDurable(crashed, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if report.JournalRecords != 3 {
		t.Errorf("journal records = %d, want 3 (two adds + one ack)", report.JournalRecords)
	}
	if got := rec.Hints(""); !reflect.DeepEqual(got, []Hint{kept}) {
		t.Errorf("recovered hints = %+v, want %+v", got, []Hint{kept})
	}

	// Clean close compacts the journal into hints.json; a fresh open must
	// still see the hint with zero journal records to replay.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, report2, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if report2.JournalRecords != 0 {
		t.Errorf("journal records after compaction = %d, want 0", report2.JournalRecords)
	}
	if got := reopened.Hints(""); !reflect.DeepEqual(got, []Hint{kept}) {
		t.Errorf("hints after compaction = %+v, want %+v", got, []Hint{kept})
	}
}

// TestHintEndpoints drives the /v1/_cluster API through the client.
func TestHintEndpoints(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.PeerName = "a"
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClientWithOptions(ts.URL, chaosOptions(2))

	h := hint("b", "coll", "pepa", "latest", "sha256:abc")
	if err := c.AddHint(h); err != nil {
		t.Fatal(err)
	}
	got, err := c.Hints("b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Hint{h}) {
		t.Fatalf("hints = %+v, want %+v", got, []Hint{h})
	}
	if other, err := c.Hints("zzz"); err != nil || len(other) != 0 {
		t.Fatalf("hints for unknown target = (%v, %v), want none", other, err)
	}

	st, err := c.NodeStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Peer != "a" || st.Hints != 1 || st.Durable {
		t.Errorf("status = %+v, want peer a with one hint, not durable", st)
	}

	if acked, err := c.AckHint(h); err != nil || !acked {
		t.Fatalf("ack = (%v, %v)", acked, err)
	}
	if acked, err := c.AckHint(h); err != nil || acked {
		t.Fatalf("double ack = (%v, %v), want (false, nil)", acked, err)
	}
	if store.HintCount() != 0 {
		t.Errorf("store still holds %d hints", store.HintCount())
	}

	// Malformed hint bodies are rejected without mutating state.
	if err := c.AddHint(Hint{Target: "b"}); err == nil {
		t.Error("incomplete hint accepted by server")
	}
}
