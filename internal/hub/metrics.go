package hub

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file is the server-side observability layer: a middleware that
// counts requests and measures latency per endpoint class, plus the
// sidecar mux that serves the Prometheus text exposition page and
// (optionally) net/http/pprof. See docs/OBSERVABILITY.md.

// EnableMetrics wraps the server's current handler with per-endpoint
// request counters and latency histograms recorded into reg. Call it
// after EnableFaults so injected faults are observed too; must be called
// before Listen/Handler use.
func (s *Server) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obs = reg
	next := s.handler
	s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		ep := endpointClass(r)
		reg.Inc("hub_server_requests_total",
			obs.L("endpoint", ep), obs.L("code", strconv.Itoa(sw.code)))
		reg.ObserveDuration("hub_server_request_seconds", time.Since(start),
			obs.L("endpoint", ep))
	})
}

// MetricsHandler returns the observability sidecar handler: GET /metrics
// in the Prometheus text format, plus the /debug/pprof endpoints when
// withPprof is set. Serve it on a separate address (schub -metrics-addr)
// so scrapes and profiles never contend with registry traffic.
func (s *Server) MetricsHandler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.WritePrometheus(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// endpointClass maps a request to a low-cardinality endpoint label:
// collection, container, and tag names are collapsed to placeholders so
// the metric space stays bounded no matter how many images exist.
func endpointClass(r *http.Request) string {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		return r.Method + " /healthz"
	case strings.HasPrefix(path, "/v1/"):
		parts := strings.Split(strings.Trim(strings.TrimPrefix(path, "/v1/"), "/"), "/")
		switch {
		case len(parts) == 1 && parts[0] == "":
			return r.Method + " /v1/"
		case len(parts) == 1:
			return r.Method + " /v1/{collection}"
		case len(parts) == 3:
			return r.Method + " /v1/{collection}/{container}/{tag}"
		}
	}
	return r.Method + " other"
}
