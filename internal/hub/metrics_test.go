package hub

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// promLine matches one Prometheus text-format sample:
// name{labels} value  — with the label block optional.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="(\\.|[^"\\])*"(,[a-zA-Z0-9_]+="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestServerMetricsEndpoint drives real registry traffic through an
// instrumented server and asserts the /metrics sidecar serves parseable
// Prometheus text covering it.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(NewStore())
	srv.EnableMetrics(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewClient(ts.URL)
	img := testImage("pepa", "latest", "payload")
	if _, err := client.Push("coll", img); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Pull("coll", "pepa", "latest", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.List("coll"); err != nil {
		t.Fatal(err)
	}

	ms := httptest.NewServer(srv.MetricsHandler(false))
	defer ms.Close()
	resp, err := ms.Client().Get(ms.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "hub_server_requests_total") {
		t.Error("missing hub_server_requests_total family")
	}
	if !strings.Contains(text, `endpoint="GET /v1/{collection}/{container}/{tag}"`) {
		t.Error("missing collapsed endpoint label for the pull")
	}
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Error("no samples in /metrics output")
	}

	// pprof must stay off unless requested.
	resp2, err := ms.Client().Get(ms.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == 200 {
		t.Error("pprof served without withPprof")
	}
}
