package hub

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/fsatomic"
	"repro/internal/image"
)

// Client-side streaming pull: the body is consumed incrementally in
// digest-framed chunks (the manifest arrives in response headers, see
// stream.go), the response-size cap is enforced as bytes arrive, and
// verified chunks survive a failed attempt — the next attempt sends a
// Range request from the last verified chunk boundary instead of
// re-pulling from byte zero. PullToFile additionally spools verified
// bytes to disk so a pull interrupted across process restarts resumes
// too.

// pullProgress is the cross-attempt state of one pull operation.
type pullProgress struct {
	adv       string   // advertised image digest (pinned on first response)
	chunkSize int      // framing granularity from the server
	chunks    []string // full-blob chunk digest list
	total     int      // full blob size (-1 until known)
	buf       []byte   // verified bytes (always chunk-aligned or complete)
	verified  int      // number of verified chunks in buf
	spool     *pullSpool
}

func (st *pullProgress) reset() {
	st.adv, st.chunks, st.buf, st.verified, st.total, st.chunkSize = "", nil, nil, 0, -1, 0
	if st.spool != nil {
		st.spool.discard()
	}
}

// absorb verifies one completed chunk against the manifest and commits
// it to the verified prefix (and the spool, when present).
func (st *pullProgress) absorb(chunk []byte) error {
	if st.chunks != nil {
		if st.verified >= len(st.chunks) {
			return fmt.Errorf("%w: body longer than chunk manifest (%d chunks)", ErrCorrupt, len(st.chunks))
		}
		sum := sha256.Sum256(chunk)
		if hex.EncodeToString(sum[:]) != st.chunks[st.verified] {
			return fmt.Errorf("%w: chunk %d/%d failed digest verification", ErrCorrupt, st.verified+1, len(st.chunks))
		}
	}
	st.buf = append(st.buf, chunk...)
	st.verified++
	if st.spool != nil {
		if err := st.spool.commit(st, chunk); err != nil {
			return err
		}
	}
	return nil
}

// complete reports whether every byte (and chunk) has been verified. With
// no framing information at all (legacy server, chunked encoding), a
// clean EOF is the only end-of-body signal and the whole-image digest
// check is the integrity gate — so nothing more is owed.
func (st *pullProgress) complete() bool {
	if st.total >= 0 {
		return len(st.buf) == st.total
	}
	if st.chunks != nil {
		return st.verified == len(st.chunks)
	}
	return true
}

// Pull downloads an image and verifies its digest against the server's
// advertised value (and, when expectedDigest is non-empty, against
// that). The body streams through chunk-level digest checks with the
// response cap enforced incrementally; truncated transfers resume from
// the last verified chunk on the next attempt, and corrupt chunks are
// re-pulled once (a second corruption means the stored content is bad).
func (c *Client) Pull(coll, name, tag, expectedDigest string) (*image.Image, string, error) {
	return c.pull(coll, name, tag, expectedDigest, nil)
}

// PullToFile pulls coll/name:tag into destPath (written atomically) and
// returns the digest. Partial progress is spooled next to destPath
// (".partial"/".pullstate" suffixes); if a previous PullToFile of the
// same content was interrupted — even in another process — the pull
// resumes from the spooled verified offset, then the spool is removed.
func (c *Client) PullToFile(coll, name, tag, expectedDigest, destPath string) (string, error) {
	spool := &pullSpool{dataPath: destPath + ".partial", statePath: destPath + ".pullstate"}
	img, digest, err := c.pull(coll, name, tag, expectedDigest, spool)
	if err != nil {
		return "", err // spool files stay behind for the next run to resume
	}
	blob, err := img.Marshal()
	if err != nil {
		return "", err
	}
	if err := fsatomic.WriteFile(destPath, blob, 0o644); err != nil {
		return "", err
	}
	spool.remove()
	return digest, nil
}

func (c *Client) pull(coll, name, tag, expectedDigest string, spool *pullSpool) (*image.Image, string, error) {
	op := fmt.Sprintf("pull %s/%s:%s", coll, name, tag)
	url := fmt.Sprintf("%s/v1/%s/%s/%s", c.BaseURL, coll, name, tag)
	st := &pullProgress{total: -1, spool: spool}
	if spool != nil {
		spool.restore(st, expectedDigest)
	}
	var (
		img        *image.Image
		advertised string
	)
	err := c.do(op, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if len(st.buf) > 0 {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-", len(st.buf)))
			c.logf("%s resuming from verified offset %d", op, len(st.buf))
			c.obs.Inc("hub_client_pull_resumes_total")
		}
		return req, nil
	}, func(resp *http.Response) error {
		blob, err := c.readPull(st, resp, expectedDigest)
		if err != nil {
			return err
		}
		got, err := image.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if err := got.VerifyDigest(st.adv); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		c.obs.Add("hub_client_bytes_pulled_total", float64(len(blob)))
		img, advertised = got, st.adv
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return img, advertised, nil
}

// readPull consumes one pull response incrementally, returning the
// complete verified blob or an error classified for the retry loop
// (transient read faults resume; chunk mismatches are ErrCorrupt).
func (c *Client) readPull(st *pullProgress, resp *http.Response, expectedDigest string) ([]byte, error) {
	adv := resp.Header.Get(headerDigest)
	if expectedDigest != "" && adv != expectedDigest {
		return nil, fmt.Errorf("%w: pulled digest %s != expected %s", ErrCorrupt, adv, expectedDigest)
	}
	if st.adv != "" && adv != st.adv {
		// The tag was re-pushed between attempts; the verified prefix
		// belongs to different content. Start over.
		prev := st.adv
		st.reset()
		return nil, fmt.Errorf("hub: content changed during pull (digest %s -> %s)", prev, adv)
	}
	st.adv = adv

	chunkSize := 0
	var chunks []string
	if v := resp.Header.Get(headerChunkSize); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			chunkSize = n
		}
	}
	if v := resp.Header.Get(headerChunkList); chunkSize > 0 && v != "" {
		chunks = strings.Split(v, ",")
	}
	if chunks == nil {
		// No manifest (legacy server): partial bytes cannot be chunk-
		// verified, so each attempt starts fresh and the whole-image
		// digest check is the only integrity gate.
		st.reset()
		st.adv = adv
	} else if st.chunks != nil && !equalStrings(st.chunks, chunks) {
		st.reset()
		return nil, fmt.Errorf("hub: chunk manifest changed during pull")
	} else {
		st.chunkSize, st.chunks = chunkSize, chunks
	}

	switch resp.StatusCode {
	case http.StatusPartialContent:
		start, total, err := parseContentRange(resp.Header.Get("Content-Range"))
		if err != nil {
			st.reset()
			return nil, fmt.Errorf("hub: unparsable Content-Range: %v", err)
		}
		if start != len(st.buf) {
			st.reset()
			return nil, fmt.Errorf("hub: server resumed at %d, wanted %d", start, len(st.buf))
		}
		st.total = total
	default: // 200: a full body, regardless of any Range we sent
		if len(st.buf) > 0 {
			st.reset()
			st.adv = adv
			st.chunkSize, st.chunks = chunkSize, chunks
		}
		if resp.ContentLength >= 0 {
			st.total = int(resp.ContentLength)
		}
	}
	if st.total >= 0 && int64(st.total) > c.MaxResponseBytes {
		return nil, fmt.Errorf("hub: response exceeds %d-byte cap", c.MaxResponseBytes)
	}

	effChunk := st.chunkSize
	if effChunk <= 0 {
		effChunk = DefaultChunkSize
	}
	var pending []byte
	rbuf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(rbuf)
		if n > 0 {
			// Incremental size-cap enforcement: an oversized body aborts
			// here, mid-stream, not after a full download.
			if int64(len(st.buf)+len(pending)+n) > c.MaxResponseBytes {
				return nil, fmt.Errorf("hub: response exceeds %d-byte cap", c.MaxResponseBytes)
			}
			pending = append(pending, rbuf[:n]...)
			for len(pending) >= effChunk {
				if aerr := st.absorb(pending[:effChunk:effChunk]); aerr != nil {
					return nil, aerr
				}
				pending = pending[effChunk:]
				c.obs.Inc("hub_client_pull_chunks_verified_total")
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err // read/truncation faults classify as transient
		}
	}
	if len(pending) > 0 {
		// A trailing short chunk is only valid as the blob's final chunk.
		if st.total >= 0 && len(st.buf)+len(pending) != st.total {
			return nil, io.ErrUnexpectedEOF
		}
		if st.chunks != nil && st.verified != len(st.chunks)-1 {
			return nil, io.ErrUnexpectedEOF
		}
		if err := st.absorb(pending); err != nil {
			return nil, err
		}
		c.obs.Inc("hub_client_pull_chunks_verified_total")
	}
	if !st.complete() {
		return nil, io.ErrUnexpectedEOF
	}
	return st.buf, nil
}

// parseContentRange parses "bytes START-END/TOTAL".
func parseContentRange(h string) (start, total int, err error) {
	rest, found := strings.CutPrefix(h, "bytes ")
	if !found {
		return 0, 0, fmt.Errorf("missing bytes prefix in %q", h)
	}
	span, totalStr, found := strings.Cut(rest, "/")
	if !found {
		return 0, 0, fmt.Errorf("missing total in %q", h)
	}
	startStr, _, found := strings.Cut(span, "-")
	if !found {
		return 0, 0, fmt.Errorf("missing span in %q", h)
	}
	if start, err = strconv.Atoi(startStr); err != nil {
		return 0, 0, err
	}
	if total, err = strconv.Atoi(totalStr); err != nil {
		return 0, 0, err
	}
	return start, total, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pullSpool persists pull progress on disk: verified bytes in dataPath,
// and a JSON state file naming the digest, framing, and verified offset.
// Bytes are appended before the state is updated, so a crash between the
// two leaves extra unacknowledged bytes that restore() truncates away.
type pullSpool struct {
	dataPath  string
	statePath string
	f         *fsatomic.AppendFile
}

type pullSpoolState struct {
	Digest    string `json:"digest"`
	ChunkSize int    `json:"chunkSize"`
	Total     int    `json:"total"`
	Offset    int    `json:"offset"`
	Verified  int    `json:"verified"`
	Chunks    string `json:"chunks"`
}

// restore loads spooled progress into st, discarding the spool if it is
// unreadable, inconsistent, or belongs to different content.
func (p *pullSpool) restore(st *pullProgress, expectedDigest string) {
	raw, err := os.ReadFile(p.statePath)
	if err != nil {
		p.discard()
		return
	}
	var s pullSpoolState
	if err := json.Unmarshal(raw, &s); err != nil || s.Offset <= 0 || s.ChunkSize <= 0 {
		p.discard()
		return
	}
	if expectedDigest != "" && s.Digest != expectedDigest {
		p.discard()
		return
	}
	data, err := os.ReadFile(p.dataPath)
	if err != nil || len(data) < s.Offset {
		p.discard()
		return
	}
	st.adv = s.Digest
	st.chunkSize = s.ChunkSize
	st.total = s.Total
	st.buf = data[:s.Offset]
	st.verified = s.Verified
	if s.Chunks != "" {
		st.chunks = strings.Split(s.Chunks, ",")
	}
	// Drop unacknowledged tail bytes, if any, so appends line up.
	if len(data) > s.Offset {
		os.WriteFile(p.dataPath, st.buf, 0o644)
	}
}

// commit appends one verified chunk and records the new offset.
func (p *pullSpool) commit(st *pullProgress, chunk []byte) error {
	if p.f == nil {
		// First commit of this run: materialize the file to the verified
		// prefix that preceded this chunk, then append from there.
		if err := os.WriteFile(p.dataPath, st.buf[:len(st.buf)-len(chunk)], 0o644); err != nil {
			return fmt.Errorf("hub: pull spool: %w", err)
		}
		f, err := fsatomic.OpenAppend(p.dataPath)
		if err != nil {
			return fmt.Errorf("hub: pull spool: %w", err)
		}
		p.f = f
	}
	if err := p.f.Append(chunk); err != nil {
		return fmt.Errorf("hub: pull spool: %w", err)
	}
	state := pullSpoolState{
		Digest: st.adv, ChunkSize: st.chunkSize, Total: st.total,
		Offset: len(st.buf), Verified: st.verified,
		Chunks: strings.Join(st.chunks, ","),
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return err
	}
	if err := fsatomic.WriteFile(p.statePath, raw, 0o644); err != nil {
		return fmt.Errorf("hub: pull spool: %w", err)
	}
	return nil
}

// discard wipes the spool (progress invalid or restarted).
func (p *pullSpool) discard() {
	if p == nil {
		return
	}
	if p.f != nil {
		p.f.Close()
		p.f = nil
	}
	os.Remove(p.dataPath)
	os.Remove(p.statePath)
}

// remove cleans up after a completed pull.
func (p *pullSpool) remove() { p.discard() }
