package hub

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Satellite regression: breakers are scoped per destination host, so a
// single failing peer cannot open the breaker against healthy ones.

func TestBreakerForScopedPerHost(t *testing.T) {
	c := NewClientWithOptions("http://hub-a:9000", ClientOptions{BreakerThreshold: 1, BreakerCooldown: 1})
	tests := []struct {
		name   string
		hostA  string
		hostB  string
		shared bool
	}{
		{"distinct hosts get distinct breakers", "hub-a:9000", "hub-b:9000", false},
		{"same host same port is one breaker", "hub-a:9000", "hub-a:9000", true},
		{"same host different port is two breakers", "hub-a:9000", "hub-a:9001", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a, b := c.breakerFor(tc.hostA), c.breakerFor(tc.hostB)
			if (a == b) != tc.shared {
				t.Errorf("breakerFor(%q) == breakerFor(%q) is %v, want %v", tc.hostA, tc.hostB, a == b, tc.shared)
			}
		})
	}

	// Tripping one host's breaker leaves the other closed.
	c.breakerFor("hub-a:9000").Failure()
	if st := c.breakerFor("hub-a:9000").State(); st != BreakerOpen {
		t.Errorf("hub-a breaker = %v, want open", st)
	}
	if st := c.breakerFor("hub-b:9000").State(); st != BreakerClosed {
		t.Errorf("hub-b breaker = %v, want closed", st)
	}
	// Breaker() follows the configured BaseURL host.
	if c.Breaker() != c.breakerFor("hub-a:9000") {
		t.Error("Breaker() is not the BaseURL host's breaker")
	}
}

// TestBreakerChaosFailingPeerDoesNotRejectHealthyPeer is the chaos
// regression for the shared-breaker bug: a dead peer trips its own
// breaker open, and the same client repointed at a healthy peer serves
// the pull on the first attempt — no breaker rejection.
func TestBreakerChaosFailingPeerDoesNotRejectHealthyPeer(t *testing.T) {
	store := NewStore()
	img := testImage("pepa", "latest", "replica-payload")

	healthy := httptest.NewServer(NewServer(store).Handler())
	defer healthy.Close()

	plan := faultinject.NewPlan(3, faultinject.Rule{Kind: faultinject.KindConn, First: 99})
	deadSrv := NewServer(store)
	deadSrv.EnableFaults(plan)
	dead := httptest.NewServer(deadSrv.Handler())
	defer dead.Close()

	opts := chaosOptions(4)
	opts.BreakerThreshold = 2
	c := NewClientWithOptions(healthy.URL, opts)
	digest, err := c.Push("chaos", img)
	if err != nil {
		t.Fatal(err)
	}

	// Exhaust the attempt budget against the dead peer: its breaker opens.
	c.BaseURL = strings.TrimRight(dead.URL, "/")
	if _, _, err := c.Pull("chaos", "pepa", "latest", digest); err == nil {
		t.Fatal("pull from dead peer succeeded")
	}
	if st := c.Breaker().State(); st != BreakerOpen {
		t.Fatalf("dead peer breaker = %v, want open", st)
	}

	// Repointed at the healthy peer, the very first attempt must flow:
	// with one shared breaker this pull was rejected with ErrCircuitOpen.
	c.BaseURL = strings.TrimRight(healthy.URL, "/")
	c.ResetAttemptLog()
	pulled, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("pull from healthy peer: %v", err)
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	if data, _ := pulled.FS.ReadFile("/payload"); string(data) != "replica-payload" {
		t.Errorf("payload = %q", data)
	}
	for _, line := range c.AttemptLog() {
		if strings.Contains(line, "rejected") {
			t.Errorf("healthy peer attempt rejected by breaker: %s", line)
		}
	}
	if st := c.Breaker().State(); st != BreakerClosed {
		t.Errorf("healthy peer breaker = %v, want closed", st)
	}
}

// TestThrottleFailoverReturns429Immediately: with ThrottleFailover set,
// a 429 + Retry-After surfaces as an *HTTPError without sleeping, so a
// clustered caller can try the next replica at once.
func TestThrottleFailoverReturns429Immediately(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var slept []time.Duration
	opts := chaosOptions(4)
	opts.ThrottleFailover = true
	opts.Sleep = func(d time.Duration) { slept = append(slept, d) }
	c := NewClientWithOptions(ts.URL, opts)

	_, _, err := c.Pull("coll", "pepa", "latest", "")
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want HTTP 429", err)
	}
	if he.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", he.RetryAfter)
	}
	if len(slept) != 0 {
		t.Errorf("client slept %v; throttle failover must not sleep", slept)
	}
	var found bool
	for _, line := range c.AttemptLog() {
		if strings.Contains(line, "throttled, failing over") {
			found = true
		}
	}
	if !found {
		t.Errorf("attempt log missing failover line:\n%s", strings.Join(c.AttemptLog(), "\n"))
	}
}
