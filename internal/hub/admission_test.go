package hub

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a manually-advanced time source for the token bucket.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (fc *fakeClock) now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.t
}

func (fc *fakeClock) advance(d time.Duration) {
	fc.mu.Lock()
	fc.t = fc.t.Add(d)
	fc.mu.Unlock()
}

func TestTokenBucket(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	b := newTokenBucket(1, 2, fc.now) // 1 token/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d within burst refused", i+1)
		}
	}
	ok, wait := b.take()
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait != time.Second {
		t.Errorf("wait = %s, want 1s for a full-token deficit", wait)
	}
	fc.advance(500 * time.Millisecond)
	if ok, wait := b.take(); ok || wait != 500*time.Millisecond {
		t.Errorf("after 0.5s: take = (%v, %s), want refused with 0.5s wait", ok, wait)
	}
	fc.advance(500 * time.Millisecond)
	if ok, _ := b.take(); !ok {
		t.Error("token not refilled after a full second")
	}
	// Idle time never accumulates beyond the burst.
	fc.advance(time.Hour)
	granted := 0
	for {
		ok, _ := b.take()
		if !ok {
			break
		}
		granted++
	}
	if granted != 2 {
		t.Errorf("burst after long idle = %d tokens, want 2", granted)
	}
}

// TestAdmissionRateLimitSheds: with the bucket drained, requests are
// answered 429 with a whole-seconds Retry-After hint; /healthz stays
// exempt so an overloaded hub remains observable.
func TestAdmissionRateLimitSheds(t *testing.T) {
	store := NewStore()
	if _, err := store.Put("c", "app", "v1", mustBlob(t, testImage("app", "v1", "x"))); err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{t: time.Unix(0, 0)}
	reg := obs.NewRegistry()
	srv := NewServer(store)
	srv.EnableAdmission(AdmissionOptions{
		MaxInflightReads:  -1,
		MaxInflightWrites: -1,
		RatePerSec:        1,
		Burst:             1,
		Now:               fc.now,
		Obs:               reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ok, err := http.Get(ts.URL + "/v1/c/app/v1")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200", ok.StatusCode)
	}

	shed, err := http.Get(ts.URL + "/v1/c/app/v1")
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket = %d, want 429", shed.StatusCode)
	}
	secs, err := strconv.Atoi(shed.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-seconds hint", shed.Header.Get("Retry-After"))
	}
	var body strings.Builder
	buf := make([]byte, 256)
	for {
		n, rerr := shed.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(body.String(), "hub overloaded (rate limit)") {
		t.Errorf("shed body = %q", body.String())
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz shed with the bucket drained: %d", hz.StatusCode)
	}

	if got := reg.Counter("hub_admission_rejections_total", obs.L("class", "read"), obs.L("reason", "rate")); got != 1 {
		t.Errorf("rejections{read,rate} = %v, want 1", got)
	}
	if got := reg.Counter("hub_admission_admitted_total", obs.L("class", "read")); got != 1 {
		t.Errorf("admitted{read} = %v, want 1", got)
	}
}

// TestAdmissionConcurrencyGateSheds: with the single read slot occupied
// by a blocked request, the next read is shed with 429; writes use a
// separate gate and still pass.
func TestAdmissionConcurrencyGateSheds(t *testing.T) {
	store := NewStore()
	if _, err := store.Put("c", "app", "v1", mustBlob(t, testImage("app", "v1", "x"))); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	reg := obs.NewRegistry()
	srv.EnableAdmission(AdmissionOptions{MaxInflightReads: 1, MaxInflightWrites: 1, Obs: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the lone read slot is now held

	shed, err := http.Get(ts.URL + "/v1/c/app/v1")
	if err != nil {
		t.Fatal(err)
	}
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second concurrent read = %d, want 429", shed.StatusCode)
	}

	// Writes ride a separate gate.
	blob := mustBlob(t, testImage("other", "v1", "y"))
	put, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/c/other/v1", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Errorf("write while reads saturated = %d, want 200", wresp.StatusCode)
	}

	close(release)
	<-done
	if got := reg.Counter("hub_admission_rejections_total", obs.L("class", "read"), obs.L("reason", "concurrency")); got != 1 {
		t.Errorf("rejections{read,concurrency} = %v, want 1", got)
	}

	// With the slot free again, reads flow.
	after, err := http.Get(ts.URL + "/v1/c/app/v1")
	if err != nil {
		t.Fatal(err)
	}
	after.Body.Close()
	if after.StatusCode != http.StatusOK {
		t.Errorf("read after release = %d, want 200", after.StatusCode)
	}
}

// throttlingHandler shunts the first n requests to 429 + Retry-After,
// then delegates.
func throttlingHandler(n int, retryAfter string, next http.Handler) http.Handler {
	var mu sync.Mutex
	served := 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		throttle := served < n
		served++
		mu.Unlock()
		if throttle {
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "hub overloaded (rate limit); retry after "+retryAfter+"s", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestClientHonorsRetryAfter (tentpole): 429 + Retry-After is a backoff
// hint, not a failure — the client sleeps the advertised delay without
// consuming its attempt budget or touching the breaker.
func TestClientHonorsRetryAfter(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	img := testImage("pepa", "latest", "throttled-payload")
	digest, err := store.Put("chaos", "pepa", "latest", mustBlob(t, img))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(throttlingHandler(2, "2", srv.Handler()))
	defer ts.Close()

	var slept []time.Duration
	var sleptMu sync.Mutex
	opts := chaosOptions(2) // budget of 2 would be blown by counted throttles
	opts.Sleep = func(d time.Duration) {
		sleptMu.Lock()
		slept = append(slept, d)
		sleptMu.Unlock()
	}
	reg := obs.NewRegistry()
	opts.Obs = reg
	c := NewClientWithOptions(ts.URL, opts)

	_, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("throttled pull failed: %v", err)
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}

	log := strings.Join(c.AttemptLog(), "\n")
	throttleLines := c.AttemptsMatching("throttled, retry-after 2s (not counted)")
	if len(throttleLines) != 2 {
		t.Errorf("throttle lines = %d, want 2:\n%s", len(throttleLines), log)
	}
	// The budget was not consumed: the winning attempt is still number 1.
	if !strings.Contains(log, "attempt 1/2: ok") {
		t.Errorf("throttles consumed the attempt budget:\n%s", log)
	}
	sleptMu.Lock()
	defer sleptMu.Unlock()
	twos := 0
	for _, d := range slept {
		if d == 2*time.Second {
			twos++
		}
	}
	if twos != 2 {
		t.Errorf("slept %v, want two 2s throttle waits", slept)
	}
	if c.Breaker().State() != BreakerClosed {
		t.Error("throttling tripped the breaker")
	}
	if got := reg.Counter("hub_client_throttled_total", obs.L("op", "pull")); got != 2 {
		t.Errorf("hub_client_throttled_total = %v, want 2", got)
	}
	if got := reg.Counter("hub_client_throttle_seconds_total"); got != 4 {
		t.Errorf("hub_client_throttle_seconds_total = %v, want 4", got)
	}
}

// TestClientThrottleCap: a server that sheds forever cannot pin the
// client — after maxThrottles uncounted passes the 429s consume the
// normal transient budget and the operation fails.
func TestClientThrottleCap(t *testing.T) {
	ts := httptest.NewServer(throttlingHandler(1<<30, "1", http.NotFoundHandler()))
	defer ts.Close()
	c := NewClientWithOptions(ts.URL, chaosOptions(2))
	_, err := c.List("chaos")
	if err == nil {
		t.Fatal("list against a permanently-shedding hub succeeded")
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Errorf("err = %v, want HTTPError 429", err)
	}
	uncounted := c.AttemptsMatching("(not counted)")
	if len(uncounted) != 4 { // maxThrottles
		t.Errorf("uncounted throttles = %d, want 4:\n%s", len(uncounted), strings.Join(c.AttemptLog(), "\n"))
	}
	counted := c.AttemptsMatching("HTTP 429 (transient)")
	if len(counted) != 2 { // the full attempt budget, once the cap is hit
		t.Errorf("counted 429s = %d, want 2:\n%s", len(counted), strings.Join(c.AttemptLog(), "\n"))
	}
}

// TestAdmissionDefaults: zero options resolve to documented defaults.
func TestAdmissionDefaults(t *testing.T) {
	o := AdmissionOptions{}.withDefaults()
	if o.MaxInflightReads != 256 || o.MaxInflightWrites != 64 {
		t.Errorf("inflight defaults = %d/%d, want 256/64", o.MaxInflightReads, o.MaxInflightWrites)
	}
	if o.RetryAfter != time.Second {
		t.Errorf("RetryAfter default = %s, want 1s", o.RetryAfter)
	}
	if o.Now == nil {
		t.Error("Now default is nil")
	}
	r := AdmissionOptions{RatePerSec: 10}.withDefaults()
	if r.Burst != 20 {
		t.Errorf("Burst default = %v, want 2*rate", r.Burst)
	}
	low := AdmissionOptions{RatePerSec: 0.25}.withDefaults()
	if low.Burst < 1 {
		t.Errorf("Burst = %v, want at least one token of headroom", low.Burst)
	}
}
