package hub

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Admission control: before a request reaches the registry handlers it
// passes a token-bucket rate limiter and a per-endpoint-class
// concurrency gate. Load beyond either bound is shed with 429 Too Many
// Requests plus a Retry-After hint, which the client's retry stack
// honors as a non-counting backoff (see resilience.go). Health and
// metrics probes are exempt — an overloaded hub must stay observable.

// AdmissionOptions tunes EnableAdmission. Zero fields use defaults.
type AdmissionOptions struct {
	// MaxInflightReads caps concurrently-served GET requests
	// (default 256; negative disables the gate).
	MaxInflightReads int
	// MaxInflightWrites caps concurrently-served PUT/POST/DELETE
	// requests (default 64; negative disables the gate).
	MaxInflightWrites int
	// RatePerSec refills the token bucket (0 disables rate limiting).
	RatePerSec float64
	// Burst is the bucket capacity (default 2*RatePerSec, minimum 1).
	Burst float64
	// RetryAfter is the hint attached to shed requests (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Now overrides the clock (deterministic tests).
	Now func() time.Time
	// Obs receives hub_admission_* metrics; nil disables.
	Obs *obs.Registry
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.MaxInflightReads == 0 {
		o.MaxInflightReads = 256
	}
	if o.MaxInflightWrites == 0 {
		o.MaxInflightWrites = 64
	}
	if o.Burst <= 0 {
		o.Burst = 2 * o.RatePerSec
	}
	if o.Burst < 1 && o.RatePerSec > 0 {
		o.Burst = 1
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// tokenBucket is a mutex-guarded token bucket over an injectable clock.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: burst, now: now}
	b.tokens = burst
	b.last = now()
	return b
}

// take consumes one token if available; otherwise it reports how long
// until one accrues.
func (b *tokenBucket) take() (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// admission is the state behind the middleware.
type admission struct {
	opts   AdmissionOptions
	bucket *tokenBucket // nil when rate limiting is off
	reads  chan struct{}
	writes chan struct{}
	reg    *obs.Registry
}

// EnableAdmission wraps the server's current handler with load shedding.
// Call it after EnableFaults (shed requests never reach the fault
// injector) and before EnableMetrics (shed responses are still counted).
// Must be called before Listen/Handler use.
func (s *Server) EnableAdmission(opts AdmissionOptions) {
	opts = opts.withDefaults()
	a := &admission{opts: opts, reg: opts.Obs}
	if opts.RatePerSec > 0 {
		a.bucket = newTokenBucket(opts.RatePerSec, opts.Burst, opts.Now)
	}
	if opts.MaxInflightReads > 0 {
		a.reads = make(chan struct{}, opts.MaxInflightReads)
	}
	if opts.MaxInflightWrites > 0 {
		a.writes = make(chan struct{}, opts.MaxInflightWrites)
	}
	next := s.handler
	s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		class, gate := a.classify(r)
		if a.bucket != nil {
			if ok, wait := a.bucket.take(); !ok {
				a.shed(w, r, class, "rate", wait)
				return
			}
		}
		if gate != nil {
			select {
			case gate <- struct{}{}:
				defer func() { <-gate }()
			default:
				a.shed(w, r, class, "concurrency", a.opts.RetryAfter)
				return
			}
			a.reg.Set("hub_admission_inflight", float64(len(gate)), obs.L("class", class))
			defer func() { a.reg.Set("hub_admission_inflight", float64(len(gate)-1), obs.L("class", class)) }()
		}
		a.reg.Inc("hub_admission_admitted_total", obs.L("class", class))
		next.ServeHTTP(w, r)
	})
}

// classify maps a request to its admission class and concurrency gate.
func (a *admission) classify(r *http.Request) (string, chan struct{}) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return "read", a.reads
	default:
		return "write", a.writes
	}
}

// shed answers a request the hub will not serve right now: 429 plus a
// Retry-After hint in whole seconds (rounded up, minimum 1).
func (a *admission) shed(w http.ResponseWriter, r *http.Request, class, reason string, wait time.Duration) {
	if wait < a.opts.RetryAfter {
		wait = a.opts.RetryAfter
	}
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs == 0 {
		secs++
	}
	a.reg.Inc("hub_admission_rejections_total", obs.L("class", class), obs.L("reason", reason))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, fmt.Sprintf("hub overloaded (%s limit); retry after %ds", reason, secs), http.StatusTooManyRequests)
}
