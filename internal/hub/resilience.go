package hub

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// This file is the client-side resilience layer: a retry policy with
// exponential backoff and deterministic (seeded) jitter, a consecutive-
// failure circuit breaker, and the transient-vs-deterministic error
// taxonomy that core's validation matrix reports. All jitter comes from
// internal/rng so a fixed seed reproduces the attempt log byte-for-byte
// (see docs/RESILIENCE.md).

// ErrCircuitOpen is returned (possibly wrapped) when the client's
// circuit breaker rejects an operation without attempting it.
var ErrCircuitOpen = errors.New("hub: circuit breaker open")

// ErrCorrupt marks responses whose payload failed digest or structural
// verification: the transfer (or the registry copy) is corrupt. Such
// errors are retried exactly once — a second identical corruption means
// the stored content itself is bad.
var ErrCorrupt = errors.New("hub: response corrupt")

// ErrQuarantined marks pulls answered 410 Gone because the hub's
// integrity scrubber quarantined the stored bytes. Retrying cannot
// help — the fix is a re-push of the content — so it classifies as
// deterministic.
var ErrQuarantined = errors.New("hub: content quarantined by registry")

// HTTPError is a non-200 registry response.
type HTTPError struct {
	Op     string // e.g. "pull coll/pepa:latest"
	Status int
	Msg    string // trimmed response body
	// RetryAfter carries the server's Retry-After hint on 429 responses
	// (zero when absent). The retry loop honors it as a non-counting
	// backoff: the sleep does not consume the attempt budget.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	msg := e.Msg
	if msg != "" {
		msg = ": " + msg
	}
	return fmt.Sprintf("hub: %s: HTTP %d %s%s", e.Op, e.Status, http.StatusText(e.Status), msg)
}

// ErrorClass is the failure taxonomy used by the validation matrix:
// transient failures (connection errors, timeouts, 429/5xx, corrupt
// transfers, open breakers) are worth retrying on a later run; anything
// else is deterministic and will fail again identically.
type ErrorClass int

const (
	// ClassDeterministic failures reproduce on every attempt (4xx,
	// malformed images, configuration errors, panics).
	ClassDeterministic ErrorClass = iota
	// ClassTransient failures are infrastructure weather: they may pass
	// on retry.
	ClassTransient
)

// String names the class for reports.
func (c ErrorClass) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "deterministic"
}

// Classify sorts an error into the transient/deterministic taxonomy.
func Classify(err error) ErrorClass {
	switch classify(err) {
	case classTransient, classCorrupt:
		return ClassTransient
	}
	if errors.Is(err, ErrCircuitOpen) {
		return ClassTransient
	}
	return ClassDeterministic
}

// errClass is the internal retry decision for one attempt error.
type errClass int

const (
	classPermanent errClass = iota
	classTransient          // retry up to the attempt budget
	classCorrupt            // retry exactly once
)

func classify(err error) errClass {
	if err == nil {
		return classPermanent
	}
	if errors.Is(err, ErrQuarantined) {
		// The registry answered coherently: its copy is known-bad and
		// only a re-push repairs it. Deterministic, not worth retrying.
		return classPermanent
	}
	if errors.Is(err, ErrCorrupt) {
		return classCorrupt
	}
	var he *HTTPError
	if errors.As(err, &he) {
		if he.Status == http.StatusTooManyRequests || he.Status >= 500 {
			return classTransient
		}
		return classPermanent
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return classTransient
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return classTransient
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return classTransient
	}
	return classPermanent
}

// describe renders an attempt error as a short, stable phrase for the
// attempt log: no URLs, addresses, or ports, so logs are byte-identical
// across runs against ephemeral-port servers.
func describe(err error) string {
	if errors.Is(err, ErrQuarantined) {
		return "quarantined content"
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return fmt.Sprintf("HTTP %d", he.Status)
	}
	if errors.Is(err, ErrCorrupt) {
		return "corrupt response"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return "transport error"
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return "truncated response"
	}
	return "error"
}

// RetryPolicy tunes the client's retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per operation (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// BreakerState is the circuit breaker's visible state.
type BreakerState int

const (
	// BreakerClosed: operations flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: operations are rejected without being attempted.
	BreakerOpen
	// BreakerHalfOpen: one probe operation is allowed through.
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Breaker is a deterministic consecutive-failure circuit breaker. It
// trips open after Threshold consecutive transient failures; while open
// it rejects calls, and after Cooldown rejections it half-opens to let
// exactly one in-flight probe through — concurrent callers are rejected
// until the probe resolves. Probe success (or a deterministic failure,
// which proves the transport answered coherently) closes the breaker;
// probe failure reopens it. The breaker is counted in operations, not
// wall time, so chaos tests reproduce its trajectory exactly.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    int
	consecutive int
	rejected    int
	// probing marks the half-open probe slot as taken; every outcome path
	// (Success, Failure, ProbeHealthy, Reset) releases it.
	probing bool
	state   BreakerState
	// onTransition observes state changes (metrics); called with mu held.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and half-opening after cooldown rejected calls (defaults 5
// and 3 when non-positive).
func NewBreaker(threshold, cooldown int) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 3
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// setState transitions the breaker, notifying the observer. Caller
// holds mu.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	from := b.state
	b.state = s
	if b.onTransition != nil {
		b.onTransition(from, s)
	}
}

// Allow reports whether an operation may proceed, advancing the
// open -> half-open cooldown as rejected calls accumulate. While
// half-open, exactly one caller is admitted as the probe; the rest are
// rejected until Success, Failure, or ProbeHealthy resolves it.
func (b *Breaker) Allow() bool {
	ok, _ := b.allow()
	return ok
}

// allow is Allow plus the state the decision was made in (for log wording).
func (b *Breaker) allow() (bool, BreakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, BreakerClosed
	case BreakerHalfOpen:
		if b.probing {
			// The probe slot is taken: concurrent operations must not all
			// pass as "the one probe".
			return false, BreakerHalfOpen
		}
		b.probing = true
		return true, BreakerHalfOpen
	default: // open
		b.rejected++
		if b.rejected >= b.cooldown {
			b.setState(BreakerHalfOpen)
			b.probing = true
			return true, BreakerHalfOpen
		}
		return false, BreakerOpen
	}
}

// Success records a healthy round trip, resolving any in-flight probe
// and closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	b.setState(BreakerClosed)
}

// Failure records a transient failure, resolving any in-flight probe and
// tripping the breaker when the consecutive-failure threshold is reached
// (immediately, if half-open).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		b.setState(BreakerOpen)
		b.rejected = 0
	}
	b.probing = false
}

// ProbeHealthy resolves an in-flight half-open probe whose attempt
// reached the registry but failed deterministically (e.g. a 404): the
// transport answered coherently, so the probe proves the infrastructure
// healthy and the breaker closes. In every other state this is a no-op,
// preserving the rule that deterministic failures are not breaker
// events. Without this, a permanently-failing probe left the breaker
// stuck half-open forever.
func (b *Breaker) ProbeHealthy() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.probing = false
		b.consecutive = 0
		b.setState(BreakerClosed)
	}
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Reset force-closes the breaker and zeroes its counters.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.rejected = 0
	b.probing = false
	b.setState(BreakerClosed)
}

// backoff computes the delay before the retry following attempt
// (1-based): exponential growth from BaseDelay, capped at MaxDelay,
// scaled by a deterministic jitter factor in [0.5, 1.0).
func (c *Client) backoff(pol RetryPolicy, attempt int) time.Duration {
	d := pol.BaseDelay
	for i := 1; i < attempt && d < pol.MaxDelay; i++ {
		d *= 2
	}
	if d > pol.MaxDelay {
		d = pol.MaxDelay
	}
	c.jmu.Lock()
	u := c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// logf appends one line to the client attempt log.
func (c *Client) logf(format string, args ...any) {
	c.logMu.Lock()
	c.attempts = append(c.attempts, fmt.Sprintf(format, args...))
	c.logMu.Unlock()
}

// AttemptLog returns a copy of the attempt log: one line per attempt,
// stable and byte-identical for a fixed jitter seed and fault plan.
func (c *Client) AttemptLog() []string {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	return append([]string(nil), c.attempts...)
}

// AttemptsMatching returns the attempt-log lines containing substr
// (used to attach one operation's attempts to a matrix cell).
func (c *Client) AttemptsMatching(substr string) []string {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	var out []string
	for _, line := range c.attempts {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}

// ResetAttemptLog clears the attempt log.
func (c *Client) ResetAttemptLog() {
	c.logMu.Lock()
	c.attempts = nil
	c.logMu.Unlock()
}

// Breaker exposes the circuit breaker guarding the client's configured
// BaseURL host (state inspection and manual reset). Breakers are scoped
// per destination host — see breakerFor — so this is the breaker every
// request of a single-hub client flows through.
func (c *Client) Breaker() *Breaker { return c.breakerFor(hostOf(c.BaseURL)) }

// hostOf extracts the host[:port] a base URL routes to, the key the
// per-host breaker map is scoped by.
func hostOf(baseURL string) string {
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		return u.Host
	}
	return baseURL
}

// breakerFor returns the circuit breaker for one destination host,
// creating it closed on first use. Scoping breakers per host keeps a
// failing peer from opening the breaker against healthy ones: a client
// whose BaseURL is repointed between hub replicas (or whose requests
// are routed by the cluster layer) trips only the sick host's breaker.
func (c *Client) breakerFor(host string) *Breaker {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[host]
	if !ok {
		b = NewBreaker(c.brThreshold, c.brCooldown)
		b.onTransition = c.onBrTransition
		c.breakers[host] = b
	}
	return b
}

// do runs one logical operation through the breaker and retry loop.
// mkReq builds a fresh request per attempt (bodies cannot be replayed);
// handle consumes a 200 response. Transient failures retry with
// backoff, corrupt payloads retry once, deterministic failures return
// immediately.
func (c *Client) do(op string, mkReq func() (*http.Request, error), handle func(*http.Response) error) error {
	pol := c.Retry.withDefaults()
	kind := obs.L("op", opKind(op))
	var lastErr error
	corruptRetried := false
	// Admission-control pushback (429 + Retry-After) is honored as a
	// non-counting backoff hint: the client sleeps the advertised delay
	// without consuming its attempt budget or tripping the breaker, but
	// at most maxThrottles times so a pathological server cannot pin it.
	const maxThrottles = 4
	throttled := 0
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		req, err := mkReq()
		if err != nil {
			// A request that cannot be built will never build: no breaker
			// event, no retry.
			c.logf("%s attempt %d/%d: bad request (deterministic; giving up)", op, attempt, pol.MaxAttempts)
			c.obs.Inc("hub_client_outcomes_total", obs.L("class", "deterministic"))
			return err
		}
		br := c.breakerFor(req.URL.Host)
		ok, st := br.allow()
		if !ok {
			reason := "breaker open"
			if st == BreakerHalfOpen {
				reason = "half-open probe in flight"
			}
			c.logf("%s attempt %d/%d: rejected (%s)", op, attempt, pol.MaxAttempts, reason)
			c.obs.Inc("hub_client_breaker_rejects_total", kind)
			// Both wrap paths keep the operation context and the
			// ErrCircuitOpen sentinel, so Classify and the validation
			// matrix see one consistent error shape.
			if lastErr != nil {
				return fmt.Errorf("%w: %s (last error: %v)", ErrCircuitOpen, op, lastErr)
			}
			return fmt.Errorf("%w: %s", ErrCircuitOpen, op)
		}
		c.obs.Inc("hub_client_attempts_total", kind)
		if attempt > 1 {
			c.obs.Inc("hub_client_retries_total", kind)
		}
		err = c.attempt(br, op, req, handle)
		if err == nil {
			br.Success()
			c.logf("%s attempt %d/%d: ok", op, attempt, pol.MaxAttempts)
			c.obs.Inc("hub_client_outcomes_total", obs.L("class", "ok"))
			return nil
		}
		lastErr = err
		var he *HTTPError
		if errors.As(err, &he) && he.Status == http.StatusTooManyRequests && he.RetryAfter > 0 {
			if c.throttleFailover {
				// A clustered caller has other replicas to try: surface the
				// throttle immediately instead of sleeping out the hint. The
				// registry answered coherently, so any half-open probe
				// resolves as healthy.
				br.ProbeHealthy()
				c.logf("%s attempt %d/%d: throttled, failing over (retry-after %s)", op, attempt, pol.MaxAttempts, he.RetryAfter)
				c.obs.Inc("hub_client_throttled_total", kind)
				return err
			}
			if throttled < maxThrottles {
				// The registry is shedding load and told us when to come
				// back. That is a coherent answer, not infrastructure
				// weather: resolve any half-open probe as healthy, sleep the
				// hint, and do not charge the attempt budget.
				throttled++
				br.ProbeHealthy()
				c.logf("%s attempt %d/%d: throttled, retry-after %s (not counted)", op, attempt, pol.MaxAttempts, he.RetryAfter)
				c.obs.Inc("hub_client_throttled_total", kind)
				c.obs.Add("hub_client_throttle_seconds_total", he.RetryAfter.Seconds())
				c.sleep(he.RetryAfter)
				attempt--
				continue
			}
		}
		switch classify(err) {
		case classPermanent:
			// The infrastructure answered coherently; only the request is
			// doomed. Not a breaker event in the closed state — but an
			// in-flight half-open probe is resolved (as healthy), so the
			// breaker can never be left stuck half-open.
			br.ProbeHealthy()
			c.logf("%s attempt %d/%d: %s (deterministic; giving up)", op, attempt, pol.MaxAttempts, describe(err))
			c.obs.Inc("hub_client_outcomes_total", obs.L("class", "deterministic"))
			return err
		case classCorrupt:
			br.Failure()
			c.obs.Inc("hub_client_outcomes_total", obs.L("class", "corrupt"))
			if corruptRetried {
				c.logf("%s attempt %d/%d: %s (corrupt again; giving up)", op, attempt, pol.MaxAttempts, describe(err))
				return err
			}
			corruptRetried = true
			c.logf("%s attempt %d/%d: %s (re-pulling once)", op, attempt, pol.MaxAttempts, describe(err))
		default: // transient
			br.Failure()
			c.logf("%s attempt %d/%d: %s (transient)", op, attempt, pol.MaxAttempts, describe(err))
			c.obs.Inc("hub_client_outcomes_total", obs.L("class", "transient"))
		}
		if attempt == pol.MaxAttempts {
			break
		}
		d := c.backoff(pol, attempt)
		c.logf("%s backoff %s", op, d.Round(time.Millisecond))
		c.obs.Inc("hub_client_backoff_sleeps_total")
		c.obs.Add("hub_client_backoff_seconds_total", d.Seconds())
		c.sleep(d)
	}
	return fmt.Errorf("hub: %s failed after %d attempts: %w", op, pol.MaxAttempts, lastErr)
}

// attempt runs try under a panic guard: a panicking request body or
// response handler resolves the breaker probe (as a failure) before the
// panic propagates, so supervised panics (internal/par) cannot leave the
// breaker stuck half-open.
func (c *Client) attempt(br *Breaker, op string, req *http.Request, handle func(*http.Response) error) (err error) {
	completed := false
	defer func() {
		if !completed {
			br.Failure()
		}
	}()
	err = c.try(op, req, handle)
	completed = true
	return err
}

// opKind maps an operation string ("pull coll/pepa:latest") to its
// low-cardinality metric label ("pull").
func opKind(op string) string {
	if k, _, ok := strings.Cut(op, " "); ok {
		return k
	}
	return op
}

// try performs a single attempt: issue the (pre-built) request, surface
// non-200 statuses as HTTPError, and always drain and close the body so
// the connection can be reused.
func (c *Client) try(op string, req *http.Request, handle func(*http.Response) error) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	// 206 Partial Content only arises on pull resumes that sent a Range
	// header; it is a success status for the streaming reader.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		trimmed := strings.TrimSpace(string(msg))
		if resp.StatusCode == http.StatusGone && resp.Header.Get(headerHubError) == hubErrQuarantined {
			return fmt.Errorf("%w: %s: %s", ErrQuarantined, op, trimmed)
		}
		he := &HTTPError{Op: op, Status: resp.StatusCode, Msg: trimmed}
		if resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return he
	}
	return handle(resp)
}

// newJitter builds the client's seeded jitter source.
func newJitter(seed uint64) *rng.Source {
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed)
}
