package hub

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/image"
)

func TestChunkDigests(t *testing.T) {
	blob := []byte("0123456789abcdef0123")
	m := chunkDigests(blob, 8)
	if len(m) != 3 { // 8 + 8 + 4
		t.Fatalf("chunks = %d, want 3", len(m))
	}
	// The final short chunk hashes only its own bytes.
	if m[2] == m[0] || m[0] != chunkDigests(blob[:8], 8)[0] {
		t.Error("chunk digests not positional over the blob")
	}
	if got := chunkDigests(nil, 8); len(got) != 0 {
		t.Errorf("empty blob produced %d chunks", len(got))
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		h               string
		size            int
		start, end      int
		ok, satisfiable bool
	}{
		{"", 100, 0, 0, false, true},
		{"bytes=0-", 100, 0, 100, true, true},
		{"bytes=40-", 100, 40, 100, true, true},
		{"bytes=40-59", 100, 40, 60, true, true},
		{"bytes=40-5000", 100, 40, 100, true, true},
		{"bytes=100-", 100, 0, 0, true, false}, // past the end
		{"bytes=-20", 100, 0, 0, false, true},  // suffix range: serve full
		{"bytes=0-10,20-30", 100, 0, 0, false, true},
		{"items=0-", 100, 0, 0, false, true},
		{"bytes=abc-", 100, 0, 0, false, true},
		{"bytes=9-5", 100, 0, 0, false, true},
	}
	for _, tc := range cases {
		start, end, ok, sat := parseRange(tc.h, tc.size)
		if start != tc.start || end != tc.end || ok != tc.ok || sat != tc.satisfiable {
			t.Errorf("parseRange(%q, %d) = (%d, %d, %v, %v), want (%d, %d, %v, %v)",
				tc.h, tc.size, start, end, ok, sat, tc.start, tc.end, tc.ok, tc.satisfiable)
		}
	}
}

// TestServeBlobRange exercises the raw HTTP surface: chunk manifest
// headers on every response, 206 + Content-Range for ranged requests,
// 416 for unsatisfiable ones.
func TestServeBlobRange(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.ChunkSize = 64
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	img := testImage("app", "v1", strings.Repeat("range-payload ", 40))
	blob := mustBlob(t, img)
	digest, err := store.Put("c", "app", "v1", blob)
	if err != nil {
		t.Fatal(err)
	}

	get := func(rangeHdr string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/c/app/v1", nil)
		if rangeHdr != "" {
			req.Header.Set("Range", rangeHdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	full := get("")
	if full.StatusCode != http.StatusOK {
		t.Fatalf("full GET = %d", full.StatusCode)
	}
	if got := full.Header.Get(headerDigest); got != digest {
		t.Errorf("digest header = %q, want %q", got, digest)
	}
	if got := full.Header.Get(headerChunkSize); got != "64" {
		t.Errorf("chunk size header = %q, want 64", got)
	}
	wantChunks := (len(blob) + 63) / 64
	if got := strings.Split(full.Header.Get(headerChunkList), ","); len(got) != wantChunks {
		t.Errorf("chunk list has %d digests, want %d", len(got), wantChunks)
	}
	if got := full.Header.Get("Accept-Ranges"); got != "bytes" {
		t.Errorf("Accept-Ranges = %q", got)
	}

	ranged := get("bytes=128-")
	if ranged.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged GET = %d, want 206", ranged.StatusCode)
	}
	wantCR := fmt.Sprintf("bytes 128-%d/%d", len(blob)-1, len(blob))
	if got := ranged.Header.Get("Content-Range"); got != wantCR {
		t.Errorf("Content-Range = %q, want %q", got, wantCR)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(ranged.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body.Bytes(), blob[128:]) {
		t.Error("ranged body does not match blob suffix")
	}

	if resp := get(fmt.Sprintf("bytes=%d-", len(blob))); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("past-the-end range = %d, want 416", resp.StatusCode)
	}
}

// rangeRecordingServer wraps a hub handler, recording the Range header of
// every incoming request.
type rangeRecordingServer struct {
	mu     sync.Mutex
	ranges []string
}

func (rr *rangeRecordingServer) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rr.mu.Lock()
		rr.ranges = append(rr.ranges, r.Header.Get("Range"))
		rr.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}

func (rr *rangeRecordingServer) recorded() []string {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return append([]string(nil), rr.ranges...)
}

// TestPullResumesFromVerifiedChunk: a truncated first attempt leaves
// verified chunks behind; the retry must send a chunk-aligned Range
// request instead of re-pulling from byte zero.
func TestPullResumesFromVerifiedChunk(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	srv.ChunkSize = 1024
	srv.EnableFaults(faultinject.NewPlan(21,
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindTruncate, First: 1},
	))
	rec := &rangeRecordingServer{}
	ts := httptest.NewServer(rec.wrap(srv.Handler()))
	defer ts.Close()

	img := testImage("pepa", "latest", strings.Repeat("resumable-payload ", 400))
	blob := mustBlob(t, img)
	digest, err := store.Put("chaos", "pepa", "latest", blob)
	if err != nil {
		t.Fatal(err)
	}

	c := NewClientWithOptions(ts.URL, chaosOptions(4))
	pulled, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("pull did not converge: %v", err)
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	if data, err := pulled.FS.ReadFile("/payload"); err != nil || !strings.HasPrefix(string(data), "resumable-payload ") {
		t.Errorf("payload = %.30q, err %v", data, err)
	}

	ranges := rec.recorded()
	// Request for the GET: attempt 1 full (truncated), attempt 2 resumed.
	var pullRanges []string
	for _, r := range ranges[len(ranges)-2:] {
		pullRanges = append(pullRanges, r)
	}
	if pullRanges[0] != "" {
		t.Errorf("first attempt sent Range %q, want none", pullRanges[0])
	}
	var off int
	if n, err := fmt.Sscanf(pullRanges[1], "bytes=%d-", &off); n != 1 || err != nil {
		t.Fatalf("second attempt Range = %q, want bytes=N-", pullRanges[1])
	}
	if off <= 0 || off%1024 != 0 {
		t.Errorf("resume offset %d not a positive chunk boundary", off)
	}
	if off >= len(blob) {
		t.Errorf("resume offset %d past blob end %d", off, len(blob))
	}
	log := strings.Join(c.AttemptsMatching("pull chaos/pepa:latest"), "\n")
	if !strings.Contains(log, fmt.Sprintf("resuming from verified offset %d", off)) {
		t.Errorf("resume not logged:\n%s", log)
	}
	if !strings.Contains(log, "truncated response (transient)") {
		t.Errorf("truncation not classified transient:\n%s", log)
	}
}

// TestPullIncrementalCapAbort (satellite): a response of unbounded
// length must be aborted as soon as the cap is crossed, mid-stream — an
// endless body would otherwise hang the client forever.
func TestPullIncrementalCapAbort(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(headerDigest, "sha256:feedfeed")
		fl, _ := w.(http.Flusher)
		chunk := bytes.Repeat([]byte("x"), 8<<10)
		for {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			default:
			}
		}
	}))
	defer ts.Close()

	opts := chaosOptions(3)
	opts.MaxResponseBytes = 64 << 10
	c := NewClientWithOptions(ts.URL, opts)
	_, _, err := c.Pull("coll", "endless", "latest", "")
	if err == nil {
		t.Fatal("pull of an endless body succeeded")
	}
	if !strings.Contains(err.Error(), "65536-byte cap") {
		t.Errorf("err = %v, want response-cap error", err)
	}
	// The cap violation is deterministic: one attempt, no retries.
	log := c.AttemptsMatching("pull coll/endless:latest attempt")
	if len(log) != 1 || !strings.Contains(log[0], "deterministic; giving up") {
		t.Errorf("cap violation was retried:\n%s", strings.Join(log, "\n"))
	}
}

// TestPullLegacyServerWithoutManifest: a server that advertises no chunk
// framing still round-trips — the whole-image digest remains the gate.
func TestPullLegacyServerWithoutManifest(t *testing.T) {
	img := testImage("app", "v1", "legacy-payload")
	blob := mustBlob(t, img)
	digest, err := img.Digest()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(headerDigest, digest)
		w.Write(blob)
	}))
	defer ts.Close()

	c := NewClientWithOptions(ts.URL, chaosOptions(2))
	pulled, got, err := c.Pull("c", "app", "v1", digest)
	if err != nil {
		t.Fatal(err)
	}
	if got != digest {
		t.Errorf("digest = %s, want %s", got, digest)
	}
	if data, _ := pulled.FS.ReadFile("/payload"); string(data) != "legacy-payload" {
		t.Errorf("payload = %q", data)
	}
}

// TestPullToFileCrossProcessResume (tentpole acceptance): a pull that
// dies mid-transfer leaves a spool on disk; a brand-new client — as
// after a process restart — resumes from the spooled verified offset
// instead of byte zero, then cleans the spool up.
func TestPullToFileCrossProcessResume(t *testing.T) {
	store := NewStore()
	img := testImage("pepa", "latest", strings.Repeat("spooled-payload ", 400))
	blob := mustBlob(t, img)
	digest, err := store.Put("chaos", "pepa", "latest", blob)
	if err != nil {
		t.Fatal(err)
	}
	dest := filepath.Join(t.TempDir(), "pepa.scif")

	// Process 1: every GET is truncated and the attempt budget is 1, so
	// the pull fails with partial verified progress spooled.
	srv1 := NewServer(store)
	srv1.ChunkSize = 512
	srv1.EnableFaults(faultinject.NewPlan(31,
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindTruncate, First: 100},
	))
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := NewClientWithOptions(ts1.URL, chaosOptions(1))
	if _, err := c1.PullToFile("chaos", "pepa", "latest", digest, dest); err == nil {
		t.Fatal("pull against an always-truncating server succeeded")
	}
	ts1.Close()
	spooled, err := os.ReadFile(dest + ".partial")
	if err != nil {
		t.Fatalf("no spool left behind: %v", err)
	}
	if len(spooled) == 0 || len(spooled)%512 != 0 || len(spooled) >= len(blob) {
		t.Fatalf("spool holds %d bytes, want a positive chunk-aligned partial of %d", len(spooled), len(blob))
	}
	if !bytes.Equal(spooled, blob[:len(spooled)]) {
		t.Fatal("spooled bytes do not match the blob prefix")
	}
	if _, err := os.Stat(dest + ".pullstate"); err != nil {
		t.Fatalf("no spool state left behind: %v", err)
	}

	// Process 2: a fresh client against a healthy server resumes from the
	// spooled offset (observed as a Range request) and completes.
	srv2 := NewServer(store)
	srv2.ChunkSize = 512
	rec := &rangeRecordingServer{}
	ts2 := httptest.NewServer(rec.wrap(srv2.Handler()))
	defer ts2.Close()
	c2 := NewClientWithOptions(ts2.URL, chaosOptions(3))
	got, err := c2.PullToFile("chaos", "pepa", "latest", digest, dest)
	if err != nil {
		t.Fatalf("resumed pull failed: %v", err)
	}
	if got != digest {
		t.Errorf("digest = %s, want %s", got, digest)
	}
	ranges := rec.recorded()
	want := fmt.Sprintf("bytes=%d-", len(spooled))
	if len(ranges) == 0 || ranges[0] != want {
		t.Errorf("resumed request Range = %v, want [%s]", ranges, want)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	final, err := image.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := final.VerifyDigest(digest); err != nil {
		t.Errorf("final file fails digest verification: %v", err)
	}
	for _, leftover := range []string{dest + ".partial", dest + ".pullstate"} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Errorf("spool file %s not cleaned up", leftover)
		}
	}
}
