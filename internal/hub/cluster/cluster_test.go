package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hub"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/vfs"
)

func testImage(name, tag, content string) *image.Image {
	fs := vfs.New()
	fs.WriteFile("/payload", []byte(content), 0o644)
	return &image.Image{
		Meta: image.Metadata{Name: name, Tag: tag, BaseRef: "centos:7.4", BuildHost: "centos-7.4-proliant"},
		FS:   fs,
	}
}

// layeredTestImage builds an image with one layer per stage content, so
// images sharing stage prefixes share layers (the delta-transfer tests
// rely on this).
func layeredTestImage(t *testing.T, name, tag string, stages ...string) *image.Image {
	t.Helper()
	snaps := make([]*vfs.FS, 0, len(stages))
	fs := vfs.New()
	for i, content := range stages {
		fs = fs.Clone()
		if err := fs.WriteFile(fmt.Sprintf("/stage%d", i), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, fs)
	}
	layers, err := image.LayersFromSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	meta := image.Metadata{Name: name, Tag: tag, BaseRef: "centos:7.4", BuildHost: "centos-7.4-proliant"}
	img, err := image.AssembleFromLayers(meta, layers)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// chaosClientOptions are fast, fully deterministic per-peer client
// knobs: no real sleeping, tiny backoff, fixed jitter seed.
func chaosClientOptions(attempts int) hub.ClientOptions {
	return hub.ClientOptions{
		Retry:      hub.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: 7,
		Sleep:      func(time.Duration) {},
	}
}

// harness is a whole in-process cluster: one hub server + store per
// peer name, wired to one Cluster router.
type harness struct {
	cl     *Cluster
	reg    *obs.Registry
	stores map[string]*hub.Store
	urls   map[string]string
}

// newHarness spins one hub per name. serverPlan (may be nil) wraps each
// server's handler via MiddlewareFor(name); clientPlan (may be nil)
// gives each peer client a faulting transport via TransportFor(name).
func newHarness(t *testing.T, names []string, r int, serverPlan, clientPlan *faultinject.Plan, attempts int) *harness {
	t.Helper()
	h := &harness{reg: obs.NewRegistry(), stores: map[string]*hub.Store{}, urls: map[string]string{}}
	var peers []Peer
	for _, n := range names {
		store := hub.NewStore()
		srv := hub.NewServer(store)
		srv.PeerName = n
		var handler http.Handler = srv.Handler()
		if serverPlan != nil {
			handler = serverPlan.MiddlewareFor(n, handler)
		}
		ts := httptest.NewServer(handler)
		t.Cleanup(ts.Close)
		h.stores[n] = store
		h.urls[n] = ts.URL
		peers = append(peers, Peer{Name: n, URL: ts.URL})
	}
	opts := Options{Peers: peers, Replication: r, Seed: 1, Obs: h.reg, Client: chaosClientOptions(attempts)}
	if clientPlan != nil {
		opts.TransportFor = func(peer string) http.RoundTripper { return clientPlan.TransportFor(peer, nil) }
	}
	cl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	h.cl = cl
	return h
}

func TestParsePeers(t *testing.T) {
	cases := []struct {
		spec string
		want []Peer
		ok   bool
	}{
		{"a=http://h1:1,b=http://h2:2", []Peer{{"a", "http://h1:1"}, {"b", "http://h2:2"}}, true},
		{" a=u1 , , b=u2 ", []Peer{{"a", "u1"}, {"b", "u2"}}, true},
		{"a=u1,a=u2", nil, false}, // duplicate name
		{"nourl", nil, false},
		{"=u1", nil, false},
		{"a=", nil, false},
		{"", nil, false},
		{" , ", nil, false},
	}
	for _, c := range cases {
		got, err := ParsePeers(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParsePeers(%q) error = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParsePeers(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestRankDeterministicOrderIndependent(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	shuffled := []string{"d", "b", "e", "a", "c"}
	key := "sha256:0011"
	r1 := Rank(peers, key)
	r2 := Rank(shuffled, key)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("ranking depends on input order: %v vs %v", r1, r2)
	}
	if !reflect.DeepEqual(r1, Rank(peers, key)) {
		t.Error("ranking is not stable across calls")
	}
	seen := map[string]bool{}
	for _, p := range r1 {
		seen[p] = true
	}
	if len(seen) != len(peers) {
		t.Errorf("ranking %v is not a permutation of %v", r1, peers)
	}
	if !reflect.DeepEqual(Owners(peers, key, 3), r1[:3]) {
		t.Error("Owners is not the ranking prefix")
	}
	if got := Owners(peers, key, 99); len(got) != len(peers) {
		t.Errorf("Owners with r > n returned %d peers", len(got))
	}
}

// TestOwnersMinimalMovement: removing a non-owner never changes a key's
// owners, and removing one owner replaces exactly that owner — the
// rendezvous property rebalancing depends on.
func TestOwnersMinimalMovement(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("sha256:%04d", i)
		owners := Owners(peers, key, 2)
		isOwner := map[string]bool{owners[0]: true, owners[1]: true}
		for _, gone := range peers {
			rest := make([]string, 0, len(peers)-1)
			for _, p := range peers {
				if p != gone {
					rest = append(rest, p)
				}
			}
			after := Owners(rest, key, 2)
			if !isOwner[gone] {
				if !reflect.DeepEqual(after, owners) {
					t.Fatalf("key %s: removing non-owner %s moved owners %v -> %v", key, gone, owners, after)
				}
				continue
			}
			survivors := 0
			for _, o := range after {
				if isOwner[o] && o != gone {
					survivors++
				}
			}
			if survivors != 1 {
				t.Fatalf("key %s: removing owner %s kept %d of the remaining owners (%v -> %v)",
					key, gone, survivors, owners, after)
			}
		}
	}
}

func TestOwnersSpreadAcrossPeers(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	load := map[string]int{}
	for i := 0; i < 100; i++ {
		for _, o := range Owners(peers, fmt.Sprintf("sha256:spread-%d", i), 2) {
			load[o]++
		}
	}
	for _, p := range peers {
		if load[p] == 0 {
			t.Errorf("peer %s owns none of 100 keys: %v", p, load)
		}
	}
}

func TestClusterPushPullRoundTrip(t *testing.T) {
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 2, nil, nil, 3)
	img := testImage("pepa", "latest", "solver-v1")
	digest, err := h.cl.Push("tools", img)
	if err != nil {
		t.Fatal(err)
	}

	owners := Owners(names, digest, 2)
	isOwner := map[string]bool{owners[0]: true, owners[1]: true}
	for _, n := range names {
		want := 0
		if isOwner[n] {
			want = 1
		}
		if got := h.stores[n].EntryCount(); got != want {
			t.Errorf("peer %s holds %d entries, want %d (owners %v)", n, got, want, owners)
		}
	}

	for _, expected := range []string{"", digest} {
		pulled, gotDigest, err := h.cl.Pull("tools", "pepa", "latest", expected)
		if err != nil {
			t.Fatalf("pull (digest %q): %v", expected, err)
		}
		if gotDigest != digest {
			t.Errorf("pull digest = %s, want %s", gotDigest, digest)
		}
		data, err := pulled.FS.ReadFile("/payload")
		if err != nil || string(data) != "solver-v1" {
			t.Errorf("payload = %q, %v", data, err)
		}
	}
}

// TestPushHandoffAndDelivery: a push with one owner down still succeeds,
// leaves a journaled hint for the down owner, and a DeliverHints drive
// on its recovery installs the write and retires the hint.
func TestPushHandoffAndDelivery(t *testing.T) {
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 2, nil, nil, 3)
	img := testImage("pepa", "latest", "solver-v1")
	digest, err := img.Digest()
	if err != nil {
		t.Fatal(err)
	}
	down := Owners(names, digest, 2)[0]
	h.cl.setUp(h.cl.peer(down), false, "test: simulated outage")

	if _, err := h.cl.Push("tools", img); err != nil {
		t.Fatal(err)
	}
	if got := h.stores[down].EntryCount(); got != 0 {
		t.Errorf("down owner %s holds %d entries", down, got)
	}
	var hints []hub.Hint
	for _, n := range names {
		hints = append(hints, h.stores[n].Hints(down)...)
	}
	want := hub.Hint{Target: down, Collection: "tools", Container: "pepa", Tag: "latest", Digest: digest}
	if !reflect.DeepEqual(hints, []hub.Hint{want}) {
		t.Fatalf("journaled hints = %+v, want exactly %+v", hints, want)
	}
	// The pull must succeed without the down owner.
	if _, gotDigest, err := h.cl.Pull("tools", "pepa", "latest", digest); err != nil || gotDigest != digest {
		t.Fatalf("pull with down owner = (%s, %v)", gotDigest, err)
	}

	// Recovery: the delivery drive probes the target back up, streams the
	// hinted write, and acks the hint on its holder.
	rep, err := h.cl.DeliverHints(down)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hints != 1 || rep.Delivered != 1 || rep.Acked != 1 || rep.Failed != 0 {
		t.Errorf("delivery report = %+v", rep)
	}
	if !h.cl.peer(down).isUp() {
		t.Error("target still marked down after successful delivery")
	}
	if got := h.stores[down].EntryCount(); got != 1 {
		t.Errorf("recovered owner holds %d entries, want 1", got)
	}
	for _, n := range names {
		if left := h.stores[n].Hints(down); len(left) != 0 {
			t.Errorf("peer %s still journals hints %+v", n, left)
		}
	}
	if got := h.reg.Counter("hub_cluster_hints_delivered_total", obs.L("target", down)); got != 1 {
		t.Errorf("hub_cluster_hints_delivered_total{target=%s} = %v, want 1", down, got)
	}
}

// TestRebalanceAfterJoin: a new member receives exactly its share of the
// catalog, and a second drive is a no-op.
func TestRebalanceAfterJoin(t *testing.T) {
	names := []string{"a", "b"}
	h := newHarness(t, names, 2, nil, nil, 3)
	imgs := map[string]string{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("app%d", i)
		digest, err := h.cl.Push("tools", testImage(name, "v1", name+"-payload"))
		if err != nil {
			t.Fatal(err)
		}
		imgs[name] = digest
	}

	store := hub.NewStore()
	srv := hub.NewServer(store)
	srv.PeerName = "c"
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	h.stores["c"] = store
	if err := h.cl.AddPeer(Peer{Name: "c", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}

	rep := h.cl.RebalanceOnce()
	if rep.Refs != 4 || rep.Failed != 0 {
		t.Fatalf("rebalance report = %+v", rep)
	}
	members := h.cl.PeerNames()
	for name, digest := range imgs {
		for _, o := range Owners(members, digest, 2) {
			entries, err := h.cl.PeerClient(o).List("tools")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range entries {
				if e.Container == name && e.Digest == digest {
					found = true
				}
			}
			if !found {
				t.Errorf("owner %s misses %s after rebalance", o, name)
			}
		}
	}
	if again := h.cl.RebalanceOnce(); again.Transferred != 0 || again.Failed != 0 {
		t.Errorf("second rebalance moved data: %+v", again)
	}
}

// TestRemovePeerRestoresReplication: after a member leaves, one drive
// re-replicates the keys it owned onto the surviving owners.
func TestRemovePeerRestoresReplication(t *testing.T) {
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 2, nil, nil, 3)
	var digests []string
	for i := 0; i < 4; i++ {
		d, err := h.cl.Push("tools", testImage(fmt.Sprintf("app%d", i), "v1", fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	if !h.cl.RemovePeer("b") {
		t.Fatal("RemovePeer(b) = false")
	}
	h.cl.RebalanceOnce()
	for i, d := range digests {
		for _, o := range Owners(h.cl.PeerNames(), d, 2) {
			entries, err := h.cl.PeerClient(o).List("tools")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range entries {
				if e.Container == fmt.Sprintf("app%d", i) && e.Digest == d {
					found = true
				}
			}
			if !found {
				t.Errorf("owner %s misses app%d after departure rebalance", o, i)
			}
		}
	}
}

func TestProbeOnceTracksHealth(t *testing.T) {
	// Server-side plan: peer b refuses its first 2 requests, then heals.
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Peer: "b", Kind: faultinject.KindConn, First: 2})
	h := newHarness(t, []string{"a", "b"}, 2, plan, nil, 1)

	st := h.cl.ProbeOnce()
	if len(st) != 2 || !st[0].Up || st[1].Up {
		t.Fatalf("first probe = %+v, want a up and b down", st)
	}
	if st[1].Err != "transport error" {
		t.Errorf("b's probe error class = %q", st[1].Err)
	}
	if got := h.reg.Gauge("hub_cluster_peer_up", obs.L("peer", "b")); got != 0 {
		t.Errorf("hub_cluster_peer_up{peer=b} = %v, want 0", got)
	}

	st = h.cl.ProbeOnce() // b's fault budget (2) is spent by probe 1 + this one
	if st[1].Up {
		t.Fatal("b still down after one more faulted probe")
	}
	st = h.cl.ProbeOnce()
	if !st[1].Up {
		t.Fatalf("b did not recover: %+v", st[1])
	}
	if st[1].Node.Peer != "b" {
		t.Errorf("recovered status = %+v, want node report from b", st[1].Node)
	}
	if got := h.reg.Gauge("hub_cluster_peer_up", obs.L("peer", "b")); got != 1 {
		t.Errorf("hub_cluster_peer_up{peer=b} = %v, want 1", got)
	}
}
