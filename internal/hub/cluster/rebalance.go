package cluster

import (
	"fmt"
	"sort"

	"repro/internal/image"
	"repro/internal/obs"
)

// Recovery drives: DeliverHints streams handed-off writes back to a
// rejoined peer, RebalanceOnce restores full replication after any
// membership change. Both reuse the layered transfer path, so a peer
// that already holds most of an image's layers receives only the delta
// (layer negotiation, PR 8) and interrupted streams resume from their
// last verified chunk (Range pulls, PR 6).

// HandoffReport summarizes one DeliverHints drive.
type HandoffReport struct {
	Hints     int // hints found across the cluster for the target
	Delivered int // images streamed onto the target
	Acked     int // hints retired from their holders' journals
	Failed    int // hints left in place for a later drive
}

// DeliverHints streams every journaled hint for target back onto it and
// retires the delivered hints. Holders are visited in configured peer
// order and each holder's hints in its own deterministic (sorted) order,
// so the delivery sequence is stable. Hints that cannot be delivered
// stay journaled for the next drive.
func (cl *Cluster) DeliverHints(target string) (HandoffReport, error) {
	var rep HandoffReport
	tp := cl.peer(target)
	if tp == nil {
		return rep, fmt.Errorf("cluster: unknown peer %q", target)
	}
	// The drive starts with a probe: delivering to a still-down peer
	// would burn every hint's transfer just to fail at the push.
	if _, err := tp.client.NodeStatus(); err != nil {
		cl.setUp(tp, false, "hint delivery probe failed: "+describeClass(err))
		return rep, fmt.Errorf("cluster: hint target %s unreachable: %s", target, describeClass(err))
	}
	cl.setUp(tp, true, "hint delivery probe ok")

	cl.pmu.Lock()
	holders := append([]*peer(nil), cl.peers...)
	cl.pmu.Unlock()
	for _, holder := range holders {
		if holder.name == target || !holder.isUp() {
			continue
		}
		hints, err := holder.client.Hints(target)
		if err != nil {
			if isDownError(err) {
				cl.setUp(holder, false, "hint listing failed: "+describeClass(err))
			}
			cl.logf("handoff to %s: listing hints on %s failed (%s)", target, holder.name, describeClass(err))
			continue
		}
		rep.Hints += len(hints)
		for _, h := range hints {
			rf := ref(h.Collection, h.Container, h.Tag)
			img, _, err := holder.client.PullLayered(h.Collection, h.Container, h.Tag, h.Digest)
			if err != nil {
				rep.Failed++
				cl.logf("handoff to %s: reading %s from %s failed (%s)", target, rf, holder.name, describeClass(err))
				continue
			}
			if _, err := tp.client.PushLayered(h.Collection, img); err != nil {
				rep.Failed++
				if isDownError(err) {
					cl.setUp(tp, false, "hint delivery failed: "+describeClass(err))
				}
				cl.logf("handoff to %s: delivering %s failed (%s)", target, rf, describeClass(err))
				continue
			}
			rep.Delivered++
			cl.obs.Inc("hub_cluster_hints_delivered_total", obs.L("target", target))
			cl.logf("handoff to %s: delivered %s from %s", target, rf, holder.name)
			if acked, err := holder.client.AckHint(h); err != nil {
				cl.logf("handoff to %s: ack of %s on %s failed (%s)", target, rf, holder.name, describeClass(err))
			} else if acked {
				rep.Acked++
			}
		}
	}
	return rep, nil
}

// RebalanceReport summarizes one RebalanceOnce drive.
type RebalanceReport struct {
	Refs        int // distinct references catalogued across up peers
	Transferred int // (ref, owner) copies created
	Skipped     int // (ref, owner) pairs already in place
	Failed      int // (ref, owner) pairs that could not be restored
}

// RebalanceOnce restores the placement invariant after membership
// changes: every healthy reference ends up on all R rendezvous owners of
// its digest. The catalog is the union of every up peer's listings
// (quarantined entries excluded — the scrubber and read repair own
// those); on digest divergence between peers the copy on the earliest
// peer in configured order wins. Transfers go through the layered path,
// so established peers send only missing layers to the new owner.
func (cl *Cluster) RebalanceOnce() RebalanceReport {
	var rep RebalanceReport
	type refInfo struct {
		coll, name, tag, digest string
		holders                 map[string]bool
	}
	catalog := map[string]*refInfo{}
	var order []string

	cl.pmu.Lock()
	peers := append([]*peer(nil), cl.peers...)
	cl.pmu.Unlock()
	for _, p := range peers {
		if !p.isUp() {
			continue
		}
		colls, err := p.client.Collections()
		if err != nil {
			if isDownError(err) {
				cl.setUp(p, false, "catalog listing failed: "+describeClass(err))
			}
			cl.logf("rebalance: cataloguing %s failed (%s)", p.name, describeClass(err))
			continue
		}
		sort.Strings(colls)
		for _, coll := range colls {
			entries, err := p.client.List(coll)
			if err != nil {
				cl.logf("rebalance: listing %s on %s failed (%s)", coll, p.name, describeClass(err))
				continue
			}
			for _, e := range entries {
				if e.Quarantined {
					continue
				}
				rf := ref(coll, e.Container, e.Tag)
				ri, ok := catalog[rf]
				if !ok {
					ri = &refInfo{coll: coll, name: e.Container, tag: e.Tag, digest: e.Digest,
						holders: map[string]bool{}}
					catalog[rf] = ri
					order = append(order, rf)
				}
				// First holder in configured order wins on divergence; a
				// stale copy elsewhere is not a holder of the winning digest.
				if ri.digest == e.Digest {
					ri.holders[p.name] = true
				} else {
					cl.logf("rebalance: %s digest diverges on %s (keeping %s's copy)", rf, p.name, firstHolder(ri.holders, peers))
				}
			}
		}
	}
	rep.Refs = len(order)

	for _, rf := range order {
		ri := catalog[rf]
		for _, o := range cl.owners(ri.digest) {
			if ri.holders[o] {
				rep.Skipped++
				continue
			}
			p := cl.peer(o)
			if p == nil || !p.isUp() {
				rep.Failed++
				cl.logf("rebalance: owner %s of %s is down, leaving for next drive", o, rf)
				continue
			}
			img, err := cl.pullFromHolder(ri.coll, ri.name, ri.tag, ri.digest, ri.holders, peers)
			if err != nil {
				rep.Failed++
				cl.logf("rebalance: no holder could serve %s (%s)", rf, describeClass(err))
				continue
			}
			if _, err := p.client.PushLayered(ri.coll, img); err != nil {
				rep.Failed++
				if isDownError(err) {
					cl.setUp(p, false, "rebalance push failed: "+describeClass(err))
				}
				cl.logf("rebalance: placing %s on %s failed (%s)", rf, o, describeClass(err))
				continue
			}
			ri.holders[o] = true
			rep.Transferred++
			cl.obs.Inc("hub_cluster_rebalance_transfers_total", obs.L("peer", o))
			cl.logf("rebalance: placed %s on %s", rf, o)
		}
	}
	return rep
}

// pullFromHolder reads one reference from the first up holder in
// configured peer order.
func (cl *Cluster) pullFromHolder(coll, name, tag, digest string, holders map[string]bool, peers []*peer) (img *image.Image, err error) {
	err = fmt.Errorf("no up holder")
	for _, p := range peers {
		if !holders[p.name] || !p.isUp() {
			continue
		}
		var pulled *image.Image
		pulled, _, err = p.client.PullLayered(coll, name, tag, digest)
		if err == nil {
			return pulled, nil
		}
		if isDownError(err) {
			cl.setUp(p, false, "rebalance read failed: "+describeClass(err))
		}
	}
	return nil, err
}

// firstHolder names the earliest holder in configured peer order (for
// the divergence log line).
func firstHolder(holders map[string]bool, peers []*peer) string {
	for _, p := range peers {
		if holders[p.name] {
			return p.name
		}
	}
	return "?"
}
