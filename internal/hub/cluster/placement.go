package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Placement by rendezvous (highest-random-weight) hashing: every peer is
// scored against a content key by hashing (peer, key) and the replicas
// of that key are the R highest-scoring peers. The ranking depends only
// on the peer names and the key — never on list order or map iteration —
// so every cluster member (and every test run, on every Go release)
// computes the same owners, and adding or removing one peer reshuffles
// only the keys that peer gains or loses (minimal movement, the property
// rebalancing relies on).

// rendezvousWeight scores one peer for one key: the first 8 bytes of
// sha256(peer || NUL || key) as a big-endian uint64. The NUL separator
// keeps ("ab","c") and ("a","bc") from colliding.
func rendezvousWeight(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Rank orders peer names by descending rendezvous weight for key, ties
// broken by name so the order is total and deterministic.
func Rank(peers []string, key string) []string {
	ranked := append([]string(nil), peers...)
	sort.Slice(ranked, func(i, j int) bool {
		wi, wj := rendezvousWeight(ranked[i], key), rendezvousWeight(ranked[j], key)
		if wi != wj {
			return wi > wj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owners returns the first r peers of the ranking for key (all peers
// when r exceeds the peer count).
func Owners(peers []string, key string, r int) []string {
	ranked := Rank(peers, key)
	if r > len(ranked) {
		r = len(ranked)
	}
	if r < 1 {
		r = 1
		if len(ranked) == 0 {
			return nil
		}
	}
	return ranked[:r]
}
