package cluster

import (
	"errors"
	"fmt"

	"repro/internal/hub"
	"repro/internal/image"
	"repro/internal/obs"
)

// Write and read routing. A push fans out to the R rendezvous owners of
// the content digest; owners that are down (or shedding load) degrade to
// hinted handoff — the bytes and a journaled hint land on the next up
// peer in hash order, to be streamed back on recovery. A pull walks the
// owners in hash order with per-peer failover, and a replica that turns
// out to be missing or quarantined while a sibling still serves the
// content is repaired in place with a digest-verified re-push.

// isDownError reports whether err means the peer itself is unreachable
// (transport-level weather or an open breaker) as opposed to a coherent
// HTTP answer from a live process.
func isDownError(err error) bool {
	var he *hub.HTTPError
	if errors.As(err, &he) {
		return false
	}
	if errors.Is(err, hub.ErrQuarantined) {
		return false
	}
	return hub.Classify(err) == hub.ClassTransient
}

// isMissing reports whether err means the peer is alive but has no
// healthy copy of the content: a 404, or a copy quarantined by the
// integrity scrubber. These replicas are read-repair candidates.
func isMissing(err error) bool {
	if errors.Is(err, hub.ErrQuarantined) {
		return true
	}
	var he *hub.HTTPError
	return errors.As(err, &he) && he.Status == 404
}

func ref(coll, name, tag string) string { return coll + "/" + name + ":" + tag }

// Push replicates an image onto the R owners of its content digest,
// acknowledging only once every owner either holds the bytes or is
// covered by a journaled hint on a reachable fallback peer — the
// zero-lost-acknowledged-writes contract.
func (cl *Cluster) Push(coll string, img *image.Image) (string, error) {
	digest, err := img.Digest()
	if err != nil {
		return "", err
	}
	rf := ref(coll, img.Meta.Name, img.Meta.Tag)
	ranked := cl.rank(digest)
	owners := ranked
	if cl.r < len(ranked) {
		owners = ranked[:cl.r]
	}
	written := map[string]bool{}
	var deferred []string // owners needing hinted handoff
	for _, o := range owners {
		p := cl.peer(o)
		if p == nil {
			continue
		}
		if !p.isUp() {
			cl.logf("push %s: owner %s down, handing off", rf, o)
			deferred = append(deferred, o)
			continue
		}
		if _, err := p.client.PushLayered(coll, img); err != nil {
			cl.obs.Inc("hub_cluster_replica_writes_total", obs.L("peer", o), obs.L("outcome", "error"))
			if hub.Classify(err) == hub.ClassDeterministic {
				// A coherent rejection (malformed image, oversized upload)
				// dooms the write on every replica identically.
				return "", fmt.Errorf("cluster: push %s via %s: %w", rf, o, err)
			}
			if isDownError(err) {
				cl.setUp(p, false, "push failed: "+describeClass(err))
			}
			cl.logf("push %s: owner %s failed (%s), handing off", rf, o, describeClass(err))
			deferred = append(deferred, o)
			continue
		}
		written[o] = true
		cl.obs.Inc("hub_cluster_replica_writes_total", obs.L("peer", o), obs.L("outcome", "ok"))
		cl.logf("push %s: replica %s ok", rf, o)
	}
	for _, o := range deferred {
		if err := cl.handoff(ranked, o, coll, img, digest, written); err != nil {
			return "", err
		}
	}
	if len(written) == 0 {
		return "", fmt.Errorf("cluster: push %s: no replica accepted the write", rf)
	}
	return digest, nil
}

// handoff covers one down owner: the next up peer in hash order after it
// (wrapping) takes the bytes plus a journaled hint naming the owner.
// When R equals the cluster size the fallback is another owner that
// already holds the content, and only the hint is new state.
func (cl *Cluster) handoff(ranked []string, owner, coll string, img *image.Image, digest string, written map[string]bool) error {
	rf := ref(coll, img.Meta.Name, img.Meta.Tag)
	idx := 0
	for i, n := range ranked {
		if n == owner {
			idx = i
			break
		}
	}
	for i := 1; i < len(ranked); i++ {
		cand := ranked[(idx+i)%len(ranked)]
		p := cl.peer(cand)
		if p == nil || !p.isUp() {
			continue
		}
		if !written[cand] {
			if _, err := p.client.PushLayered(coll, img); err != nil {
				if isDownError(err) {
					cl.setUp(p, false, "handoff push failed: "+describeClass(err))
				}
				cl.logf("push %s: fallback %s failed (%s), trying next", rf, cand, describeClass(err))
				continue
			}
			written[cand] = true
		}
		h := hub.Hint{Target: owner, Collection: coll, Container: img.Meta.Name, Tag: img.Meta.Tag, Digest: digest}
		if err := p.client.AddHint(h); err != nil {
			if isDownError(err) {
				cl.setUp(p, false, "hint journal failed: "+describeClass(err))
			}
			cl.logf("push %s: hint on %s failed (%s), trying next", rf, cand, describeClass(err))
			continue
		}
		cl.obs.Inc("hub_cluster_handoffs_total", obs.L("peer", cand), obs.L("target", owner))
		cl.logf("push %s: hint for %s journaled on %s", rf, owner, cand)
		return nil
	}
	return fmt.Errorf("cluster: push %s: owner %s is down and no fallback peer is reachable", rf, owner)
}

// Pull fetches an image with per-peer failover: owners in hash order
// when the digest is known (any peer can hold a handed-off copy, so the
// walk continues past the owners), configured order otherwise. A replica
// that answers "no healthy copy" while a later one serves the content is
// read-repaired with a digest-verified re-push before returning.
func (cl *Cluster) Pull(coll, name, tag, expectedDigest string) (*image.Image, string, error) {
	rf := ref(coll, name, tag)
	var order []string
	if expectedDigest != "" {
		order = cl.rank(expectedDigest)
	} else {
		order = cl.PeerNames()
	}
	var absent []string
	for _, pn := range order {
		p := cl.peer(pn)
		if p == nil {
			continue
		}
		if !p.isUp() {
			cl.logf("pull %s: skipping %s (down)", rf, pn)
			continue
		}
		img, digest, err := p.client.PullLayered(coll, name, tag, expectedDigest)
		if err == nil {
			cl.logf("pull %s: served by %s", rf, pn)
			cl.readRepair(coll, img, digest, absent)
			return img, digest, nil
		}
		cl.obs.Inc("hub_cluster_read_failovers_total", obs.L("peer", pn))
		switch {
		case isMissing(err):
			absent = append(absent, pn)
			cl.logf("pull %s: %s has no healthy copy (%s), failing over", rf, pn, describeClass(err))
		case isDownError(err):
			cl.setUp(p, false, "pull failed: "+describeClass(err))
			cl.logf("pull %s: %s unreachable (%s), failing over", rf, pn, describeClass(err))
		default:
			cl.logf("pull %s: %s failed (%s), failing over", rf, pn, describeClass(err))
		}
	}
	return nil, "", fmt.Errorf("cluster: pull %s: no replica could serve it", rf)
}

// readRepair re-pushes just-pulled content onto owner replicas that
// answered 404 or quarantined during the failover walk. The monolithic
// push path force-overwrites a quarantined entry's on-disk blob and
// digest-verifies the round trip, so a repaired replica is byte-healthy.
func (cl *Cluster) readRepair(coll string, img *image.Image, digest string, absent []string) {
	if len(absent) == 0 {
		return
	}
	owners := cl.owners(digest)
	isOwner := map[string]bool{}
	for _, o := range owners {
		isOwner[o] = true
	}
	rf := ref(coll, img.Meta.Name, img.Meta.Tag)
	for _, pn := range absent {
		if !isOwner[pn] {
			continue
		}
		p := cl.peer(pn)
		if p == nil || !p.isUp() {
			continue
		}
		if _, err := p.client.Push(coll, img); err != nil {
			cl.obs.Inc("hub_cluster_read_repairs_total", obs.L("peer", pn), obs.L("outcome", "error"))
			cl.logf("read-repair %s on %s: failed (%s)", rf, pn, describeClass(err))
			if isDownError(err) {
				cl.setUp(p, false, "read-repair failed: "+describeClass(err))
			}
			continue
		}
		cl.obs.Inc("hub_cluster_read_repairs_total", obs.L("peer", pn), obs.L("outcome", "ok"))
		cl.logf("read-repair %s on %s: ok", rf, pn)
	}
}
