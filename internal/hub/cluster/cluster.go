// Package cluster turns N independent hub replicas into one replicated,
// self-healing registry: blobs and layers are placed on R of the peers
// by rendezvous hashing of their content digests, writes fan out to all
// owners and degrade to journaled hinted handoff when an owner is down,
// reads fail over between owners and repair replicas found missing or
// quarantined, and peer rejoin streams back only the hinted or missing
// layers (layer negotiation + resumable chunked pulls, PRs 6 and 8).
// Everything is deterministic under the faultinject harness: peer
// probing order, placement, and the decision log all derive from peer
// names and content digests, never from addresses, ports, or map order.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/hub"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Peer names one cluster member: a stable name (used for placement,
// logs, and metrics) and the base URL its hub listens on.
type Peer struct {
	Name string
	URL  string
}

// ParsePeers parses a "-peers" flag value: comma-separated name=url
// pairs, e.g. "a=http://127.0.0.1:7001,b=http://127.0.0.1:7002".
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, url, ok := strings.Cut(clause, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want name=url)", clause)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		seen[name] = true
		peers = append(peers, Peer{Name: name, URL: url})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list %q", spec)
	}
	return peers, nil
}

// Options configures New. Zero fields use defaults.
type Options struct {
	// Peers is the static membership list (at least one).
	Peers []Peer
	// Replication is R, the number of owners per content key (default 2,
	// capped at the peer count).
	Replication int
	// Seed drives the probe-loop jitter (default 1).
	Seed uint64
	// Obs receives hub_cluster_* metrics and the per-peer client series.
	Obs *obs.Registry
	// Client is the base resilience configuration for the per-peer hub
	// clients. PeerName, ThrottleFailover, LayerCache, and Obs are set by
	// the cluster; everything else passes through.
	Client hub.ClientOptions
	// TransportFor, when set, supplies each peer client's HTTP transport
	// (e.g. faultinject.TransportFor for client-side chaos). Overrides
	// Client.Transport.
	TransportFor func(peerName string) http.RoundTripper
}

// peer is one member plus its routing state.
type peer struct {
	name   string
	url    string
	client *hub.Client
	mu     sync.Mutex
	up     bool
}

func (p *peer) isUp() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// Cluster is a replicated-hub client: it routes pushes and pulls across
// the peer set with failover, hinted handoff, read repair, and explicit
// hint-delivery / rebalance drives. Safe for concurrent use; note that
// the decision log is byte-stable only for serial operation sequences
// (which is what the chaos tests run).
type Cluster struct {
	pmu    sync.Mutex
	peers  []*peer // configured order
	r      int
	obs    *obs.Registry
	cache  *hub.LayerCache
	opts   Options
	jitter *rng.Source

	logMu sync.Mutex
	log   []string

	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a cluster client over the peer list. Peers start optimistic
// (up) until a probe or a failed operation marks them down.
func New(opts Options) (*Cluster, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	r := opts.Replication
	if r <= 0 {
		r = 2
	}
	if r > len(opts.Peers) {
		r = len(opts.Peers)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cache := opts.Client.LayerCache
	if cache == nil {
		cache = hub.NewLayerCache()
	}
	cl := &Cluster{r: r, obs: opts.Obs, cache: cache, opts: opts, jitter: rng.New(seed)}
	seen := map[string]bool{}
	for _, p := range opts.Peers {
		if p.Name == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs both name and url (got %+v)", p)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		cl.peers = append(cl.peers, cl.newPeer(p))
	}
	return cl, nil
}

// newPeer builds one member's routing state and resilient client.
func (cl *Cluster) newPeer(p Peer) *peer {
	copts := cl.opts.Client
	copts.PeerName = p.Name
	copts.ThrottleFailover = true // a throttled replica is a failover, not a wait
	copts.LayerCache = cl.cache   // cross-peer layer dedupe
	copts.Obs = cl.obs
	if cl.opts.TransportFor != nil {
		copts.Transport = cl.opts.TransportFor(p.Name)
	}
	cl.obs.Set("hub_cluster_peer_up", 1, obs.L("peer", p.Name))
	return &peer{name: p.Name, url: p.URL, client: hub.NewClientWithOptions(p.URL, copts), up: true}
}

// Replication returns the effective replication factor R.
func (cl *Cluster) Replication() int { return cl.r }

// PeerNames returns the member names in configured order.
func (cl *Cluster) PeerNames() []string {
	cl.pmu.Lock()
	defer cl.pmu.Unlock()
	names := make([]string, len(cl.peers))
	for i, p := range cl.peers {
		names[i] = p.name
	}
	return names
}

// PeerClient exposes the resilient hub client bound to one peer (nil for
// an unknown name) — the escape hatch tests and the CLI use for direct
// per-replica operations.
func (cl *Cluster) PeerClient(name string) *hub.Client {
	if p := cl.peer(name); p != nil {
		return p.client
	}
	return nil
}

func (cl *Cluster) peer(name string) *peer {
	cl.pmu.Lock()
	defer cl.pmu.Unlock()
	for _, p := range cl.peers {
		if p.name == name {
			return p
		}
	}
	return nil
}

// setUp flips one peer's health state, maintaining the per-peer gauge
// and transition counter.
func (cl *Cluster) setUp(p *peer, up bool, why string) {
	p.mu.Lock()
	changed := p.up != up
	p.up = up
	p.mu.Unlock()
	if !changed {
		return
	}
	v := 0.0
	state := "down"
	if up {
		v, state = 1.0, "up"
	}
	cl.obs.Set("hub_cluster_peer_up", v, obs.L("peer", p.name))
	cl.obs.Inc("hub_cluster_peer_transitions_total", obs.L("peer", p.name), obs.L("to", state))
	cl.logf("peer %s marked %s (%s)", p.name, state, why)
}

// AddPeer joins a new member to the cluster (idempotent on the name).
// The caller runs RebalanceOnce afterwards to move its share of content
// over — only the layers it is missing cross the wire.
func (cl *Cluster) AddPeer(p Peer) error {
	if p.Name == "" || p.URL == "" {
		return fmt.Errorf("cluster: peer needs both name and url")
	}
	cl.pmu.Lock()
	for _, existing := range cl.peers {
		if existing.name == p.Name {
			cl.pmu.Unlock()
			return fmt.Errorf("cluster: peer %q already a member", p.Name)
		}
	}
	cl.pmu.Unlock()
	np := cl.newPeer(p)
	cl.pmu.Lock()
	cl.peers = append(cl.peers, np)
	cl.pmu.Unlock()
	cl.logf("peer %s joined", p.Name)
	return nil
}

// RemovePeer leaves a member out of the membership (its stored content
// is untouched). The caller runs RebalanceOnce afterwards to restore
// replication for the keys it owned.
func (cl *Cluster) RemovePeer(name string) bool {
	cl.pmu.Lock()
	defer cl.pmu.Unlock()
	for i, p := range cl.peers {
		if p.name == name {
			cl.peers = append(cl.peers[:i], cl.peers[i+1:]...)
			cl.logf("peer %s left", name)
			return true
		}
	}
	return false
}

// rank returns the full rendezvous ordering of current members for key.
func (cl *Cluster) rank(key string) []string {
	return Rank(cl.PeerNames(), key)
}

// owners returns the R owners for key.
func (cl *Cluster) owners(key string) []string {
	ranked := cl.rank(key)
	if cl.r < len(ranked) {
		return ranked[:cl.r]
	}
	return ranked
}

// PeerStatus is one member's view in a Status report.
type PeerStatus struct {
	Peer Peer
	Up   bool
	Node hub.NodeStatus // zero when the peer is unreachable
	Err  string         // probe error class ("" when healthy)
}

// ProbeOnce checks every member's health in configured order (one GET
// /v1/_cluster/status per peer), updates the up/down state and per-peer
// gauges, and returns the statuses. Deterministic for a fixed fault
// schedule: the probe order is the configured peer order.
func (cl *Cluster) ProbeOnce() []PeerStatus {
	cl.pmu.Lock()
	peers := append([]*peer(nil), cl.peers...)
	cl.pmu.Unlock()
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		st, err := p.client.NodeStatus()
		ps := PeerStatus{Peer: Peer{Name: p.name, URL: p.url}, Node: st}
		if err != nil {
			ps.Err = describeClass(err)
			cl.setUp(p, false, "probe failed: "+ps.Err)
			cl.obs.Inc("hub_cluster_probes_total", obs.L("peer", p.name), obs.L("outcome", "down"))
		} else {
			cl.setUp(p, true, "probe ok")
			cl.obs.Inc("hub_cluster_probes_total", obs.L("peer", p.name), obs.L("outcome", "up"))
		}
		ps.Up = p.isUp()
		out = append(out, ps)
	}
	return out
}

// StartProbing runs ProbeOnce on a jittered interval (factor in
// [0.75, 1.25) from the cluster seed, so a fleet of routers does not
// probe in lockstep). Stop with StopProbing.
func (cl *Cluster) StartProbing(interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	cl.probeStop = make(chan struct{})
	cl.probeDone = make(chan struct{})
	go func() {
		defer close(cl.probeDone)
		for {
			u := cl.jitter.Float64()
			timer := time.NewTimer(time.Duration(float64(interval) * (0.75 + 0.5*u)))
			select {
			case <-cl.probeStop:
				timer.Stop()
				return
			case <-timer.C:
			}
			cl.ProbeOnce()
		}
	}()
}

// StopProbing halts the background probe loop.
func (cl *Cluster) StopProbing() {
	if cl.probeStop == nil {
		return
	}
	close(cl.probeStop)
	<-cl.probeDone
	cl.probeStop, cl.probeDone = nil, nil
}

// describeClass renders an error as a short stable phrase for the
// decision log — no URLs, addresses, or ports.
func describeClass(err error) string {
	var he *hub.HTTPError
	if errors.As(err, &he) {
		return fmt.Sprintf("HTTP %d", he.Status)
	}
	if errors.Is(err, hub.ErrQuarantined) {
		return "quarantined"
	}
	if errors.Is(err, hub.ErrCircuitOpen) {
		return "breaker open"
	}
	if hub.Classify(err) == hub.ClassTransient {
		return "transport error"
	}
	return "error"
}

// logf appends one line to the cluster decision log.
func (cl *Cluster) logf(format string, args ...any) {
	cl.logMu.Lock()
	cl.log = append(cl.log, fmt.Sprintf(format, args...))
	cl.logMu.Unlock()
}

// Log returns a copy of the decision log: peer names and outcomes only,
// byte-identical across runs for a fixed seed and fault plan.
func (cl *Cluster) Log() []string {
	cl.logMu.Lock()
	defer cl.logMu.Unlock()
	return append([]string(nil), cl.log...)
}

// FormatLog renders the decision log as one newline-joined block.
func (cl *Cluster) FormatLog() string {
	lines := cl.Log()
	if len(lines) == 0 {
		return "(no cluster operations)"
	}
	return strings.Join(lines, "\n")
}

// ResetLog clears the decision log.
func (cl *Cluster) ResetLog() {
	cl.logMu.Lock()
	cl.log = nil
	cl.logMu.Unlock()
}
