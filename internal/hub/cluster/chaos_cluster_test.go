package cluster

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// The cluster acceptance scenarios from the issue, driven end to end
// through the deterministic fault plan: a replica killed mid-pull, a
// rejoined peer receiving only the layers it missed, and bit-rot healed
// by scrub + read repair — each asserting both the outcome and the
// stability of the decision logs across runs.

// runKilledReplicaScenario pushes one image to an R=3 cluster, then
// pulls it through a fresh router whose connection to the first-ranked
// owner dies on every layer fetch — the client-side view of a replica
// killed mid-pull. Returns the pulled bytes and both decision logs.
func runKilledReplicaScenario(t *testing.T) (pulledBytes []byte, wantBytes []byte, clusterLog, planLog string) {
	t.Helper()
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 3, nil, nil, 2)
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	digest, err := h.cl.Push("tools", img)
	if err != nil {
		t.Fatal(err)
	}
	victim := h.cl.rank(digest)[0]

	// A separate router with an empty layer cache, so the pull really
	// fetches layers over the wire; the victim's transport drops every
	// layer GET, like a process killed after serving the manifest.
	plan := faultinject.NewPlan(1, faultinject.Rule{
		Peer: victim, Match: "GET /v1/_layers/", Kind: faultinject.KindConn, First: 1 << 30,
	})
	var peers []Peer
	for _, n := range names {
		peers = append(peers, Peer{Name: n, URL: h.urls[n]})
	}
	reg := obs.NewRegistry()
	reader, err := New(Options{
		Peers: peers, Replication: 3, Seed: 1, Obs: reg, Client: chaosClientOptions(2),
		TransportFor: func(p string) http.RoundTripper { return plan.TransportFor(p, nil) },
	})
	if err != nil {
		t.Fatal(err)
	}

	pulled, gotDigest, err := reader.Pull("tools", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("pull did not fail over: %v\nlog:\n%s", err, reader.FormatLog())
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	if reader.peer(victim).isUp() {
		t.Errorf("victim %s still marked up after the kill", victim)
	}
	if got := reg.Counter("hub_cluster_read_failovers_total", obs.L("peer", victim)); got != 1 {
		t.Errorf("hub_cluster_read_failovers_total{peer=%s} = %v, want 1", victim, got)
	}
	got, err := pulled.MarshalLayered()
	if err != nil {
		t.Fatal(err)
	}
	want, err := img.MarshalLayered()
	if err != nil {
		t.Fatal(err)
	}
	return got, want, reader.FormatLog(), plan.FormatLog()
}

// TestChaosKilledReplicaMidPull: killing one of the R=3 replicas mid-
// pull still yields the byte-identical image via failover, and both the
// router's decision log and the fault plan's op log are byte-identical
// across runs — the reproducibility contract.
func TestChaosKilledReplicaMidPull(t *testing.T) {
	got1, want1, clog1, plog1 := runKilledReplicaScenario(t)
	if !bytes.Equal(got1, want1) {
		t.Fatal("pulled image differs from the pushed bytes")
	}
	if !strings.Contains(clog1, "failing over") || !strings.Contains(clog1, "marked down") {
		t.Errorf("decision log misses the failover story:\n%s", clog1)
	}
	got2, _, clog2, plog2 := runKilledReplicaScenario(t)
	if !bytes.Equal(got1, got2) {
		t.Error("pulled bytes differ between runs")
	}
	if clog1 != clog2 {
		t.Errorf("cluster decision log not reproducible:\n--- run 1\n%s\n--- run 2\n%s", clog1, clog2)
	}
	if plog1 != plog2 {
		t.Errorf("fault plan log not reproducible:\n--- run 1\n%s\n--- run 2\n%s", plog1, plog2)
	}
}

// TestChaosRejoinStreamsOnlyHintedLayers: a peer that was down for one
// push receives, on rejoin, only the layers it does not already hold —
// the hinted write rides the layer negotiation, so shared base layers
// never cross the wire again.
func TestChaosRejoinStreamsOnlyHintedLayers(t *testing.T) {
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 3, nil, nil, 3)

	// v1 reaches everybody: 3 fresh layers per replica.
	v1 := layeredTestImage(t, "pepa", "v1", "base", "deps", "solver-v1")
	if _, err := h.cl.Push("tools", v1); err != nil {
		t.Fatal(err)
	}
	// c goes down; v2 (sharing base+deps with v1) is pushed with handoff.
	h.cl.setUp(h.cl.peer("c"), false, "test: simulated outage")
	v2 := layeredTestImage(t, "pepa", "v2", "base", "deps", "solver-v2")
	if _, err := h.cl.Push("tools", v2); err != nil {
		t.Fatal(err)
	}
	if got := h.stores["c"].EntryCount(); got != 1 {
		t.Fatalf("down peer holds %d entries, want just v1", got)
	}

	pushedBefore := h.reg.Counter("hub_client_layers_pushed_total")
	rep, err := h.cl.DeliverHints("c")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.Acked != 1 || rep.Failed != 0 {
		t.Fatalf("delivery report = %+v", rep)
	}
	pushedDelta := h.reg.Counter("hub_client_layers_pushed_total") - pushedBefore
	if pushedDelta != 1 {
		t.Errorf("rejoin pushed %v layers over the wire, want only the 1 missing (solver-v2)", pushedDelta)
	}
	if got := h.stores["c"].EntryCount(); got != 2 {
		t.Errorf("rejoined peer holds %d entries, want 2", got)
	}
	if got := h.stores["c"].LayerCount(); got != 4 {
		t.Errorf("rejoined peer indexes %d layers, want 4 (3 shared + solver-v2)", got)
	}
	for _, n := range names {
		if left := h.stores[n].Hints("c"); len(left) != 0 {
			t.Errorf("peer %s still journals hints for c: %+v", n, left)
		}
	}
}

// TestChaosBitRotScrubAndReadRepair is satellite 3: rot one replica's
// stored bytes, let the scrubber quarantine it, and assert a clustered
// pull fails over past the quarantined copy and repairs it in place —
// after which a full-cluster scrub finds zero mismatches.
func TestChaosBitRotScrubAndReadRepair(t *testing.T) {
	names := []string{"a", "b", "c"}
	h := newHarness(t, names, 3, nil, nil, 3)
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	digest, err := h.cl.Push("tools", img)
	if err != nil {
		t.Fatal(err)
	}
	victim := h.cl.rank(digest)[0]

	// Deterministic rot on the first replica every pull tries.
	if !h.stores[victim].FlipBit("tools", "pepa", "latest", 31) {
		t.Fatal("FlipBit found no blob to rot")
	}
	scrub := h.stores[victim].ScrubOnce(nil)
	if scrub.Corrupt != 1 {
		t.Fatalf("scrub on rotted replica = %+v, want exactly one quarantine", scrub)
	}

	pulled, gotDigest, err := h.cl.Pull("tools", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("pull did not fail over past the quarantined replica: %v\nlog:\n%s", err, h.cl.FormatLog())
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	for i, want := range []string{"base", "deps", "solver"} {
		data, err := pulled.FS.ReadFile("/stage" + string(rune('0'+i)))
		if err != nil || string(data) != want {
			t.Errorf("stage %d = (%q, %v), want %q", i, data, err, want)
		}
	}

	// The quarantined replica was repaired in place by the read path.
	if got := h.stores[victim].QuarantinedCount(); got != 0 {
		t.Errorf("victim still quarantines %d entries after read repair", got)
	}
	if got := h.reg.Counter("hub_cluster_read_repairs_total", obs.L("peer", victim), obs.L("outcome", "ok")); got != 1 {
		t.Errorf("hub_cluster_read_repairs_total{peer=%s,outcome=ok} = %v, want 1", victim, got)
	}
	if got := h.reg.Counter("hub_cluster_read_failovers_total", obs.L("peer", victim)); got != 1 {
		t.Errorf("hub_cluster_read_failovers_total{peer=%s} = %v, want 1", victim, got)
	}
	repaired, repairedDigest, err := h.cl.PeerClient(victim).Pull("tools", "pepa", "latest", digest)
	if err != nil || repairedDigest != digest {
		t.Fatalf("direct pull from repaired replica = (%s, %v)", repairedDigest, err)
	}
	if data, err := repaired.FS.ReadFile("/stage2"); err != nil || string(data) != "solver" {
		t.Errorf("repaired payload = (%q, %v)", data, err)
	}

	// Full-cluster scrub: every replica re-hashes clean.
	for _, n := range names {
		if rep := h.stores[n].ScrubOnce(nil); rep.Corrupt != 0 || rep.Skipped != 0 {
			t.Errorf("final scrub on %s = %+v, want zero mismatches and zero quarantined", n, rep)
		}
	}
}

// TestChaosPushFansOutUnderServerFaults: a push against a cluster whose
// first-ranked owner sheds its first two requests with 503s still lands
// on all R owners (the per-peer client retries absorb the weather) and
// trips neither handoff nor breaker for the healthy peers.
func TestChaosPushFansOutUnderServerFaults(t *testing.T) {
	names := []string{"a", "b", "c"}
	img := layeredTestImage(t, "pepa", "latest", "base", "deps", "solver")
	digest, err := img.Digest()
	if err != nil {
		t.Fatal(err)
	}
	first := Rank(names, digest)[0]
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Peer: first, Kind: faultinject.KindStatus, Status: 503, First: 2})
	h := newHarness(t, names, 3, plan, nil, 4)
	if _, err := h.cl.Push("tools", img); err != nil {
		t.Fatalf("push under 503 weather: %v\nlog:\n%s", err, h.cl.FormatLog())
	}
	for _, n := range names {
		if got := h.stores[n].EntryCount(); got != 1 {
			t.Errorf("replica %s holds %d entries, want 1", n, got)
		}
		if got := h.stores[n].HintCount(); got != 0 {
			t.Errorf("replica %s journals %d hints, want none", n, got)
		}
	}
	if !h.cl.peer(first).isUp() {
		t.Errorf("first owner %s marked down by retryable weather", first)
	}
}
