// Package hub implements the container registry of the paper's
// distribution model (the Singularity-Hub stand-in): an HTTP server
// organizing built images into collections with tags and content digests,
// plus a client with digest-verified pull — reproducing Fig 6's
// "collection page + clone of each container" workflow.
package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/image"
)

// Entry describes one stored image version.
type Entry struct {
	Collection string `json:"collection"`
	Container  string `json:"container"`
	Tag        string `json:"tag"`
	Digest     string `json:"digest"`
	Size       int    `json:"size"`
	BuildHost  string `json:"buildHost,omitempty"`
}

// Store is the in-memory registry state, safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	blobs  map[string][]byte // key: coll/name:tag
	digest map[string]string
	meta   map[string]Entry
}

// NewStore creates an empty registry store.
func NewStore() *Store {
	return &Store{blobs: map[string][]byte{}, digest: map[string]string{}, meta: map[string]Entry{}}
}

func key(coll, name, tag string) string { return coll + "/" + name + ":" + tag }

// Put stores an image blob, computing and recording its digest.
func (s *Store) Put(coll, name, tag string, blob []byte) (string, error) {
	img, err := image.Unmarshal(blob)
	if err != nil {
		return "", fmt.Errorf("hub: rejecting malformed image: %w", err)
	}
	d, err := img.Digest()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(coll, name, tag)
	s.blobs[k] = append([]byte(nil), blob...)
	s.digest[k] = d
	s.meta[k] = Entry{
		Collection: coll, Container: name, Tag: tag,
		Digest: d, Size: len(blob), BuildHost: img.Meta.BuildHost,
	}
	return d, nil
}

// Get retrieves an image blob and its digest.
func (s *Store) Get(coll, name, tag string) ([]byte, string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := key(coll, name, tag)
	blob, ok := s.blobs[k]
	if !ok {
		return nil, "", false
	}
	return append([]byte(nil), blob...), s.digest[k], true
}

// List returns the entries of one collection, sorted by container then tag.
func (s *Store) List(coll string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, e := range s.meta {
		if e.Collection == coll {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Container != out[j].Container {
			return out[i].Container < out[j].Container
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Collections lists collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for _, e := range s.meta {
		set[e.Collection] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Server wraps a Store with the HTTP API.
type Server struct {
	Store   *Store
	mux     *http.ServeMux
	ln      net.Listener
	srv     *http.Server
	builder Builder // set by EnableAutoBuild
}

// NewServer creates a server over the store.
func NewServer(store *Store) *Server {
	s := &Server{Store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/", s.handle)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the HTTP handler (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// handle routes /v1/{collection}[/{container}/{tag}].
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(strings.TrimPrefix(r.URL.Path, "/v1/"), "/"), "/")
	switch {
	case len(parts) == 1 && parts[0] == "":
		// GET /v1/ — list collections.
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Store.Collections())
	case len(parts) == 1:
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		entries := s.Store.List(parts[0])
		if len(entries) == 0 {
			http.Error(w, "collection not found", http.StatusNotFound)
			return
		}
		writeJSON(w, entries)
	case len(parts) == 3:
		coll, name, tag := parts[0], parts[1], parts[2]
		switch r.Method {
		case http.MethodGet:
			blob, digest, ok := s.Store.Get(coll, name, tag)
			if !ok {
				http.Error(w, "image not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Image-Digest", digest)
			w.Write(blob)
		case http.MethodPut, http.MethodPost:
			blob, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			digest, err := s.Store.Put(coll, name, tag, blob)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]string{"digest": digest})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// Client talks to a hub server.
type Client struct {
	BaseURL string // e.g. "http://127.0.0.1:4321"
	HTTP    *http.Client
}

// NewClient creates a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{}}
}

// Push uploads an image, returning the server-computed digest. It verifies
// the server digest against a locally computed one.
func (c *Client) Push(coll string, img *image.Image) (string, error) {
	blob, err := img.Marshal()
	if err != nil {
		return "", err
	}
	localDigest, err := img.Digest()
	if err != nil {
		return "", err
	}
	url := fmt.Sprintf("%s/v1/%s/%s/%s", c.BaseURL, coll, img.Meta.Name, img.Meta.Tag)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("hub: push failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.Digest != localDigest {
		return "", fmt.Errorf("hub: server digest %s != local digest %s", out.Digest, localDigest)
	}
	return out.Digest, nil
}

// Pull downloads an image and verifies its digest against the server's
// advertised value (and, when expectedDigest is non-empty, against that).
func (c *Client) Pull(coll, name, tag, expectedDigest string) (*image.Image, string, error) {
	url := fmt.Sprintf("%s/v1/%s/%s/%s", c.BaseURL, coll, name, tag)
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, "", fmt.Errorf("hub: pull failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	img, err := image.Unmarshal(blob)
	if err != nil {
		return nil, "", err
	}
	advertised := resp.Header.Get("X-Image-Digest")
	if err := img.VerifyDigest(advertised); err != nil {
		return nil, "", fmt.Errorf("hub: pulled image corrupt: %w", err)
	}
	if expectedDigest != "" && advertised != expectedDigest {
		return nil, "", fmt.Errorf("hub: pulled digest %s != expected %s", advertised, expectedDigest)
	}
	return img, advertised, nil
}

// List fetches the entries of a collection.
func (c *Client) List(coll string) ([]Entry, error) {
	resp, err := c.HTTP.Get(fmt.Sprintf("%s/v1/%s", c.BaseURL, coll))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hub: list failed: %s", resp.Status)
	}
	var entries []Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	return entries, nil
}

// Collections fetches the collection names.
func (c *Client) Collections() ([]string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hub: collections failed: %s", resp.Status)
	}
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
