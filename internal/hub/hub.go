// Package hub implements the container registry of the paper's
// distribution model (the Singularity-Hub stand-in): an HTTP server
// organizing built images into collections with tags and content digests,
// plus a client with digest-verified pull — reproducing Fig 6's
// "collection page + clone of each container" workflow.
//
// The client is resilient by construction: every operation runs through
// a retry loop with exponential backoff, deterministic seeded jitter,
// and a circuit breaker (see resilience.go and docs/RESILIENCE.md);
// response sizes are capped; and corrupt transfers are detected by
// digest and re-pulled once. The server can be wrapped with a
// faultinject.Plan to chaos-test all of the above deterministically.
package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Entry describes one stored image version.
type Entry struct {
	Collection string `json:"collection"`
	Container  string `json:"container"`
	Tag        string `json:"tag"`
	Digest     string `json:"digest"`
	Size       int    `json:"size"`
	BuildHost  string `json:"buildHost,omitempty"`
	// Layers counts the content-addressed layers of a layered (SCIF2)
	// entry; 0 for monolithic (SCIF1) content.
	Layers int `json:"layers,omitempty"`
	// Quarantined marks content whose stored bytes failed digest
	// verification (scrubber or recovery); it is served as 410 Gone
	// until a re-push repairs it.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Store is the in-memory registry state, safe for concurrent use. A
// store opened with OpenDurable additionally journals every mutation to
// a write-ahead log before acknowledging it (see persist.go, wal.go).
type Store struct {
	mu          sync.RWMutex
	blobs       map[string][]byte // key: coll/name:tag
	digest      map[string]string
	meta        map[string]Entry
	quarantined map[string]string // key -> quarantine reason
	// layers is the content-addressed layer index: encoded layer frames
	// keyed by digest, learned from installed layered blobs and from
	// PutLayer staging. A cache, not durable state (see layers.go).
	layers map[string][]byte
	// hints holds journaled hinted-handoff records, keyed by
	// (target, ref) — writes owed to down peers (see hints.go).
	hints map[string]Hint

	// pmu serializes mutations so the journal order matches the order
	// the in-memory maps were updated in; nil wal means in-memory only.
	pmu          sync.Mutex
	dir          string
	wal          *wal
	compactEvery int
}

// NewStore creates an empty registry store.
func NewStore() *Store {
	return &Store{
		blobs:       map[string][]byte{},
		digest:      map[string]string{},
		meta:        map[string]Entry{},
		quarantined: map[string]string{},
		layers:      map[string][]byte{},
		hints:       map[string]Hint{},
	}
}

func key(coll, name, tag string) string { return coll + "/" + name + ":" + tag }

// blobDigest computes the content digest of a marshalled image blob,
// rejecting malformed payloads.
func blobDigest(blob []byte) (string, error) {
	img, err := image.Unmarshal(blob)
	if err != nil {
		return "", fmt.Errorf("hub: rejecting malformed image: %w", err)
	}
	return img.Digest()
}

// Put stores an image blob, computing and recording its digest. On a
// durable store the blob file and journal record are fsynced before the
// in-memory state changes. Re-pushing bytes whose digest matches the
// already-stored (healthy) entry is a no-op: no copy, no blob write, no
// journal record. Re-pushing to a quarantined entry repairs it.
func (s *Store) Put(coll, name, tag string, blob []byte) (string, error) {
	img, err := image.Unmarshal(blob)
	if err != nil {
		return "", fmt.Errorf("hub: rejecting malformed image: %w", err)
	}
	d, err := img.Digest()
	if err != nil {
		return "", err
	}
	k := key(coll, name, tag)
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.mu.RLock()
	_, inQuarantine := s.quarantined[k]
	identical := s.digest[k] == d && !inQuarantine
	s.mu.RUnlock()
	if identical {
		// Idempotent re-push: the stored entry already holds exactly
		// these bytes and is healthy.
		return d, nil
	}
	e := Entry{
		Collection: coll, Container: name, Tag: tag,
		Digest: d, Size: len(blob), BuildHost: img.Meta.BuildHost,
		Layers: len(img.Layers),
	}
	stored := append([]byte(nil), blob...)
	if s.wal != nil {
		pe := persistedEntry{Entry: e, Blob: blobFileName(d)}
		// Repairing quarantined content must overwrite the on-disk blob:
		// its content-addressed file may be the corrupt copy.
		if err := s.persistPut(pe, stored, inQuarantine); err != nil {
			return "", err
		}
	}
	s.installEntry(k, e, stored)
	if s.wal != nil && s.compactEvery > 0 && s.wal.records >= s.compactEvery {
		if err := s.compactLocked(); err != nil {
			return "", err
		}
	}
	return d, nil
}

// Delete removes an entry, journaling the removal on durable stores.
// It reports whether the entry existed.
func (s *Store) Delete(coll, name, tag string) (bool, error) {
	k := key(coll, name, tag)
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.mu.RLock()
	e, ok := s.meta[k]
	s.mu.RUnlock()
	if !ok {
		return false, nil
	}
	if s.wal != nil {
		pe := persistedEntry{Entry: e}
		if err := s.wal.append(walDelete, pe); err != nil {
			return false, err
		}
	}
	s.removeEntry(k)
	return true, nil
}

// Get retrieves an image blob and its digest. Quarantined entries are
// not served.
func (s *Store) Get(coll, name, tag string) ([]byte, string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := key(coll, name, tag)
	blob, ok := s.blobs[k]
	if !ok {
		return nil, "", false
	}
	if _, bad := s.quarantined[k]; bad {
		return nil, "", false
	}
	return append([]byte(nil), blob...), s.digest[k], true
}

// view returns the stored blob without copying, plus its entry and
// quarantine reason. The slice is safe to read concurrently: Put
// replaces blobs wholesale and never mutates them in place.
func (s *Store) view(coll, name, tag string) (blob []byte, e Entry, reason string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := key(coll, name, tag)
	e, ok = s.meta[k]
	if !ok {
		return nil, Entry{}, "", false
	}
	return s.blobs[k], e, s.quarantined[k], true
}

// QuarantineReason reports whether the entry is quarantined and why.
func (s *Store) QuarantineReason(coll, name, tag string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reason, ok := s.quarantined[key(coll, name, tag)]
	return reason, ok
}

// List returns the entries of one collection, sorted by container then tag.
func (s *Store) List(coll string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, e := range s.meta {
		if e.Collection == coll {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Container != out[j].Container {
			return out[i].Container < out[j].Container
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Collections lists collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for _, e := range s.meta {
		set[e.Collection] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Server wraps a Store with the HTTP API.
type Server struct {
	Store *Store
	// PeerName is this server's stable cluster peer name, reported by
	// GET /v1/_cluster/status (empty for a standalone hub).
	PeerName string
	// MaxUploadBytes caps PUT/POST request bodies (default 64 MiB);
	// oversized uploads are rejected with 413.
	MaxUploadBytes int64
	// ChunkSize is the digest-framing granularity for blob GETs (default
	// 64 KiB): responses advertise a per-chunk SHA-256 list so clients
	// can verify and resume partial transfers (see stream.go).
	ChunkSize int
	mux       *http.ServeMux
	handler   http.Handler
	ln        net.Listener
	srv       *http.Server
	builder   Builder // set by EnableAutoBuild
	// obs is the optional server metrics registry (EnableMetrics).
	obs *obs.Registry
	// inflight counts requests currently being served; Shutdown reports
	// it as the drain backlog and the gauge hub_server_inflight_requests
	// tracks it when metrics are enabled.
	inflight atomic.Int64
	// chunkMu guards chunkCache, the per-digest chunk manifest memo
	// (content-addressed, so entries never go stale).
	chunkMu    sync.Mutex
	chunkCache map[string][]string
	// scrubber is the optional background integrity scrubber.
	scrubber *Scrubber
}

// NewServer creates a server over the store.
func NewServer(store *Store) *Server {
	s := &Server{
		Store: store, MaxUploadBytes: 64 << 20, ChunkSize: DefaultChunkSize,
		mux: http.NewServeMux(), chunkCache: map[string][]string{},
	}
	s.handler = s.mux
	s.mux.HandleFunc("/v1/", s.handle)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// EnableFaults wraps the server's handler with a deterministic fault
// plan (chaos testing). The plan is consulted on behalf of the server's
// PeerName, so a spec with %peer clauses can crash exactly this member
// of a cluster sharing one spec; set PeerName before calling. Must be
// called before Listen/Handler use.
func (s *Server) EnableFaults(plan *faultinject.Plan) {
	s.handler = plan.MiddlewareFor(s.PeerName, s.mux)
}

// Handler returns the HTTP handler (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.track(s.handler) }

// track wraps a handler with in-flight request accounting. The counter
// is shared across wrappers, so Handler and Listen agree on the count.
func (s *Server) track(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.obs.Set("hub_server_inflight_requests", float64(s.inflight.Add(1)))
		defer func() {
			s.obs.Set("hub_server_inflight_requests", float64(s.inflight.Add(-1)))
		}()
		inner.ServeHTTP(w, r)
	})
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.track(s.handler)}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown stops the server gracefully: the listener closes immediately
// (no new connections), in-flight requests get until ctx expires to
// finish, and only then are the stragglers aborted. The outcome is
// recorded in hub_server_shutdowns_total{outcome="drained"|"aborted"};
// an aborted drain returns ctx's error after force-closing.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.scrubber != nil {
		s.scrubber.Stop()
		s.scrubber = nil
	}
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.obs.Inc("hub_server_shutdowns_total", obs.L("outcome", "aborted"))
		s.srv.Close()
		return err
	}
	s.obs.Inc("hub_server_shutdowns_total", obs.L("outcome", "drained"))
	return nil
}

// Close stops the server abortively, cutting in-flight requests. Prefer
// Shutdown; Close remains as the immediate-stop fallback.
func (s *Server) Close() error {
	if s.scrubber != nil {
		s.scrubber.Stop()
		s.scrubber = nil
	}
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// handle routes /v1/{collection}[/{container}/{tag}[/manifest]] and the
// layer-transfer endpoints under /v1/_layers/ (see layers.go).
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(strings.TrimPrefix(r.URL.Path, "/v1/"), "/"), "/")
	switch {
	case len(parts) == 2 && parts[0] == "_layers" && parts[1] == "missing":
		s.handleLayerMissing(w, r)
		return
	case len(parts) == 2 && parts[0] == "_layers":
		s.handleLayer(w, r, parts[1])
		return
	case len(parts) >= 2 && parts[0] == "_cluster":
		s.handleCluster(w, r, parts)
		return
	case len(parts) == 4 && parts[3] == "manifest":
		s.handleManifest(w, r, parts[0], parts[1], parts[2])
		return
	}
	switch {
	case len(parts) == 1 && parts[0] == "":
		// GET /v1/ — list collections.
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Store.Collections())
	case len(parts) == 1:
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		entries := s.Store.List(parts[0])
		if len(entries) == 0 {
			http.Error(w, "collection not found", http.StatusNotFound)
			return
		}
		writeJSON(w, entries)
	case len(parts) == 3:
		coll, name, tag := parts[0], parts[1], parts[2]
		switch r.Method {
		case http.MethodGet:
			s.serveBlob(w, r, coll, name, tag)
		case http.MethodPut, http.MethodPost:
			blob, err := readBody(w, r, s.MaxUploadBytes)
			if err != nil {
				return // readBody already wrote the status
			}
			digest, err := s.Store.Put(coll, name, tag, blob)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]string{"digest": digest})
		case http.MethodDelete:
			existed, err := s.Store.Delete(coll, name, tag)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !existed {
				http.Error(w, "image not found", http.StatusNotFound)
				return
			}
			writeJSON(w, map[string]string{"deleted": coll + "/" + name + ":" + tag})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// readBody reads a size-capped request body, writing 413 (too large) or
// 400 (read failure) itself when it fails.
func readBody(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	blob, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return nil, err
	}
	return blob, nil
}

// writeJSON marshals v up front so encode failures become a clean 500
// instead of a silently truncated 200, and Content-Length is exact.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// Client talks to a hub server. The zero value is not usable; construct
// with NewClient or NewClientWithOptions. All operations retry
// transient failures with backoff and run through a circuit breaker.
type Client struct {
	BaseURL string // e.g. "http://127.0.0.1:4321"
	HTTP    *http.Client
	// Retry tunes the retry loop (zero fields use defaults).
	Retry RetryPolicy
	// MaxResponseBytes caps how much of any response body is read
	// (default 64 MiB).
	MaxResponseBytes int64

	// breakers holds one circuit breaker per destination host, created
	// lazily as requests are routed (see breakerFor): a failing peer
	// trips only its own breaker, so a client whose BaseURL moves
	// between hub replicas never rejects requests to healthy ones.
	bmu            sync.Mutex
	breakers       map[string]*Breaker
	brThreshold    int
	brCooldown     int
	onBrTransition func(from, to BreakerState)
	// throttleFailover makes 429+Retry-After responses return
	// immediately (as *HTTPError) instead of sleeping out the hint, so a
	// clustered caller can try the next replica at once. Single-hub
	// clients leave it off and keep the uncounted-pass behavior.
	throttleFailover bool
	// layerCache holds layers pulled or pushed by this client so layered
	// transfers skip layers already on hand (see layers.go).
	layerCache *LayerCache
	jmu        sync.Mutex
	jitter   *rng.Source
	logMu    sync.Mutex
	attempts []string
	sleep    func(time.Duration)
	// obs is the optional metrics registry; nil (the default) disables
	// instrumentation at zero cost and cannot perturb attempt logs.
	obs *obs.Registry
}

// ClientOptions tunes NewClientWithOptions. Zero fields use defaults.
type ClientOptions struct {
	Timeout          time.Duration // HTTP client timeout (default 30s)
	Retry            RetryPolicy
	MaxResponseBytes int64
	BreakerThreshold int    // consecutive failures to trip (default 5)
	BreakerCooldown  int    // rejections before a half-open probe (default 3)
	JitterSeed       uint64 // backoff jitter seed (default 1)
	// Transport overrides the HTTP transport (e.g. a faultinject plan's
	// Transport for chaos tests).
	Transport http.RoundTripper
	// Sleep overrides the inter-retry sleep (tests use a no-op).
	Sleep func(time.Duration)
	// Obs receives client metrics (attempts, retries, backoff, breaker
	// transitions, bytes moved). Nil disables instrumentation.
	Obs *obs.Registry
	// LayerCache shares a layer cache between clients (nil creates a
	// fresh per-client cache).
	LayerCache *LayerCache
	// ThrottleFailover makes admission-control pushback (429 +
	// Retry-After) surface immediately as *HTTPError instead of being
	// slept out, so a clustered caller can fail over to another replica
	// at once (see internal/hub/cluster). Leave unset for single-hub
	// clients: they keep the capped uncounted-pass backoff.
	ThrottleFailover bool
	// PeerName labels this client's breaker metrics with {peer=...} —
	// stable cluster peer names, never addresses. Empty emits the
	// legacy unlabeled series.
	PeerName string
}

// NewClient creates a client for the given base URL with default
// resilience settings: 30s request timeout, 4 attempts with exponential
// backoff, 64 MiB response cap, breaker tripping after 5 consecutive
// failures.
func NewClient(baseURL string) *Client {
	return NewClientWithOptions(baseURL, ClientOptions{})
}

// NewClientWithOptions creates a client with explicit resilience knobs.
func NewClientWithOptions(baseURL string, opts ClientOptions) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxResponseBytes <= 0 {
		opts.MaxResponseBytes = 64 << 20
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.LayerCache == nil {
		opts.LayerCache = NewLayerCache()
	}
	c := &Client{
		BaseURL:          strings.TrimRight(baseURL, "/"),
		HTTP:             &http.Client{Timeout: opts.Timeout, Transport: opts.Transport},
		Retry:            opts.Retry,
		MaxResponseBytes: opts.MaxResponseBytes,
		breakers:         map[string]*Breaker{},
		brThreshold:      opts.BreakerThreshold,
		brCooldown:       opts.BreakerCooldown,
		throttleFailover: opts.ThrottleFailover,
		layerCache:       opts.LayerCache,
		jitter:           newJitter(opts.JitterSeed),
		sleep:            opts.Sleep,
		obs:              opts.Obs,
	}
	if reg := opts.Obs; reg != nil {
		// The transition hook is shared by every per-host breaker. With a
		// PeerName the series carries a stable {peer} label; without one
		// it is the legacy unlabeled gauge (single-host clients only ever
		// create one breaker, so the aggregate is exact).
		var labels []obs.Label
		if opts.PeerName != "" {
			labels = []obs.Label{obs.L("peer", opts.PeerName)}
		}
		reg.Set("hub_breaker_state", float64(BreakerClosed), labels...)
		c.onBrTransition = func(from, to BreakerState) {
			reg.Inc("hub_breaker_transitions_total",
				append([]obs.Label{obs.L("from", from.String()), obs.L("to", to.String())}, labels...)...)
			reg.Set("hub_breaker_state", float64(to), labels...)
		}
	}
	return c
}

// Push uploads an image, returning the server-computed digest. It verifies
// the server digest against a locally computed one; a mismatch is treated
// as a corrupt transfer and retried once.
func (c *Client) Push(coll string, img *image.Image) (string, error) {
	blob, err := img.Marshal()
	if err != nil {
		return "", err
	}
	localDigest, err := img.Digest()
	if err != nil {
		return "", err
	}
	op := fmt.Sprintf("push %s/%s:%s", coll, img.Meta.Name, img.Meta.Tag)
	url := fmt.Sprintf("%s/v1/%s/%s/%s", c.BaseURL, coll, img.Meta.Name, img.Meta.Tag)
	var digest string
	err = c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	}, func(resp *http.Response) error {
		var out struct {
			Digest string `json:"digest"`
		}
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding push response: %v", ErrCorrupt, err)
		}
		if out.Digest != localDigest {
			return fmt.Errorf("%w: server digest %s != local digest %s", ErrCorrupt, out.Digest, localDigest)
		}
		digest = out.Digest
		return nil
	})
	if err != nil {
		return "", err
	}
	c.obs.Add("hub_client_bytes_pushed_total", float64(len(blob)))
	return digest, nil
}

// List fetches the entries of a collection.
func (c *Client) List(coll string) ([]Entry, error) {
	var entries []Entry
	err := c.do("list "+coll, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/%s", c.BaseURL, coll), nil)
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &entries); err != nil {
			return fmt.Errorf("%w: decoding list response: %v", ErrCorrupt, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// Collections fetches the collection names.
func (c *Client) Collections() ([]string, error) {
	var out []string
	err := c.do("collections", func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.BaseURL+"/v1/", nil)
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding collections response: %v", ErrCorrupt, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
