package hub

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Streaming blob delivery: blobs are served with HTTP Range support and
// a digest-framed chunk manifest, so a client can verify the transfer
// chunk by chunk and resume an interrupted pull from the last verified
// chunk boundary instead of byte zero. The manifest travels in response
// headers (one SHA-256 per fixed-size chunk of the full blob), which
// keeps every pull a single request — resumable pulls do not perturb
// fault-plan op sequences in chaos tests.

// DefaultChunkSize is the digest-framing granularity (64 KiB).
const DefaultChunkSize = 64 << 10

// Response headers describing the chunk framing.
const (
	headerDigest      = "X-Image-Digest"
	headerChunkSize   = "X-Image-Chunk-Size"
	headerChunkList   = "X-Image-Chunk-Digests"
	headerHubError    = "X-Hub-Error"
	hubErrQuarantined = "quarantined"
	hubErrNotLayered  = "not-layered"
)

// chunkDigests splits blob into chunkSize pieces and returns the hex
// SHA-256 of each (the final chunk may be short).
func chunkDigests(blob []byte, chunkSize int) []string {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := (len(blob) + chunkSize - 1) / chunkSize
	out := make([]string, 0, n)
	for off := 0; off < len(blob); off += chunkSize {
		end := off + chunkSize
		if end > len(blob) {
			end = len(blob)
		}
		sum := sha256.Sum256(blob[off:end])
		out = append(out, hex.EncodeToString(sum[:]))
	}
	return out
}

// manifestFor returns the (memoized) chunk digest list for a stored
// blob. The cache is keyed by content digest, so it never goes stale.
func (s *Server) manifestFor(digest string, blob []byte) []string {
	s.chunkMu.Lock()
	defer s.chunkMu.Unlock()
	if m, ok := s.chunkCache[digest]; ok {
		return m
	}
	m := chunkDigests(blob, s.ChunkSize)
	s.chunkCache[digest] = m
	return m
}

// parseRange parses a single-range "bytes=N-" or "bytes=N-M" header
// against a resource of the given size. It returns the start offset and
// the (exclusive) end. ok is false when the header is absent or not a
// single byte range we serve (the caller then sends the full body).
func parseRange(h string, size int) (start, end int, ok bool, satisfiable bool) {
	if h == "" || !strings.HasPrefix(h, "bytes=") {
		return 0, 0, false, true
	}
	spec := strings.TrimPrefix(h, "bytes=")
	if strings.Contains(spec, ",") {
		// Multi-range requests are not used by our client; serve full.
		return 0, 0, false, true
	}
	first, last, found := strings.Cut(spec, "-")
	if !found || first == "" {
		// Suffix ranges ("bytes=-N") are not used by our client.
		return 0, 0, false, true
	}
	s0, err := strconv.Atoi(first)
	if err != nil || s0 < 0 {
		return 0, 0, false, true
	}
	e0 := size
	if last != "" {
		l, err := strconv.Atoi(last)
		if err != nil || l < s0 {
			return 0, 0, false, true
		}
		if l+1 < e0 {
			e0 = l + 1
		}
	}
	if s0 >= size {
		return 0, 0, true, false // syntactically valid but unsatisfiable
	}
	return s0, e0, true, true
}

// serveBlob answers GET /v1/{coll}/{name}/{tag}: the full blob (200) or
// a byte range of it (206), always annotated with the image digest and
// the chunk manifest. Quarantined content is answered with 410 Gone and
// a typed error header — the bytes on hand are known-bad, and the fix
// is a re-push, not a retry.
func (s *Server) serveBlob(w http.ResponseWriter, r *http.Request, coll, name, tag string) {
	blob, e, reason, ok := s.Store.view(coll, name, tag)
	if !ok {
		http.Error(w, "image not found", http.StatusNotFound)
		return
	}
	if e.Quarantined || reason != "" {
		w.Header().Set(headerHubError, hubErrQuarantined)
		http.Error(w, fmt.Sprintf("content quarantined (%s); re-push to repair", reason), http.StatusGone)
		return
	}
	s.serveVerified(w, r, e.Digest, blob)
}

// serveVerified streams one content-addressed blob — an image or a
// single layer — with the digest header, chunk manifest, and Range
// support. The chunk manifest memo is keyed by digest, so image blobs
// and layer blobs share it safely.
func (s *Server) serveVerified(w http.ResponseWriter, r *http.Request, digest string, blob []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set(headerDigest, digest)
	chunkSize := s.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	w.Header().Set(headerChunkSize, strconv.Itoa(chunkSize))
	w.Header().Set(headerChunkList, strings.Join(s.manifestFor(digest, blob), ","))

	start, end, ranged, satisfiable := parseRange(r.Header.Get("Range"), len(blob))
	if !satisfiable {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", len(blob)))
		http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if !ranged {
		start, end = 0, len(blob)
	}
	w.Header().Set("Content-Length", strconv.Itoa(end-start))
	if ranged {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end-1, len(blob)))
		w.WriteHeader(http.StatusPartialContent)
	}
	// The slice is immutable once stored (Put replaces wholesale), so
	// writing it directly streams without a per-request copy.
	w.Write(blob[start:end])
}
