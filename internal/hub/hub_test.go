package hub

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/image"
	"repro/internal/vfs"
)

func testImage(name, tag, content string) *image.Image {
	fs := vfs.New()
	fs.WriteFile("/payload", []byte(content), 0o644)
	return &image.Image{
		Meta: image.Metadata{Name: name, Tag: tag, BaseRef: "centos:7.4", BuildHost: "centos-7.4-proliant"},
		FS:   fs,
	}
}

func newTestClient(t *testing.T) (*Client, *Store, func()) {
	t.Helper()
	store := NewStore()
	ts := httptest.NewServer(NewServer(store).Handler())
	return NewClient(ts.URL), store, ts.Close
}

func TestPushPullRoundTrip(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	img := testImage("pepa", "latest", "solver-v1")
	digest, err := c.Push("pepa-tools", img)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(digest, "sha256:") {
		t.Errorf("digest = %q", digest)
	}
	pulled, gotDigest, err := c.Pull("pepa-tools", "pepa", "latest", digest)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest {
		t.Errorf("pull digest = %s, want %s", gotDigest, digest)
	}
	data, err := pulled.FS.ReadFile("/payload")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "solver-v1" {
		t.Errorf("payload = %q", data)
	}
}

func TestPullUnknown(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	if _, _, err := c.Pull("nope", "x", "y", ""); err == nil {
		t.Error("pull of missing image succeeded")
	}
}

func TestPullWrongExpectedDigest(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	img := testImage("pepa", "latest", "v1")
	if _, err := c.Push("coll", img); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Pull("coll", "pepa", "latest", "sha256:deadbeef"); err == nil {
		t.Error("digest mismatch not detected")
	}
}

func TestListCollection(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	for _, spec := range []struct{ name, tag string }{
		{"pepa", "latest"}, {"biopepa", "latest"}, {"gpa", "latest"}, {"pepa", "v2"},
	} {
		if _, err := c.Push("pepa-tools", testImage(spec.name, spec.tag, spec.name+spec.tag)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.List("pepa-tools")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	// Sorted by container then tag.
	if entries[0].Container != "biopepa" || entries[1].Container != "gpa" {
		t.Errorf("order = %v", entries)
	}
	if entries[2].Tag != "latest" || entries[3].Tag != "v2" {
		t.Errorf("tag order = %v", entries)
	}
	for _, e := range entries {
		if e.Digest == "" || e.Size == 0 || e.BuildHost == "" {
			t.Errorf("entry incomplete: %+v", e)
		}
	}
}

func TestCollections(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	c.Push("zeta", testImage("a", "1", "x"))
	c.Push("alpha", testImage("b", "1", "y"))
	colls, err := c.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if len(colls) != 2 || colls[0] != "alpha" || colls[1] != "zeta" {
		t.Errorf("collections = %v", colls)
	}
}

func TestListMissingCollection404(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	if _, err := c.List("ghost"); err == nil {
		t.Error("list of missing collection succeeded")
	}
}

func TestStoreRejectsMalformedBlob(t *testing.T) {
	store := NewStore()
	if _, err := store.Put("c", "n", "t", []byte("garbage")); err == nil {
		t.Error("malformed blob stored")
	}
}

func TestServerRejectsCorruptUpload(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	req, _ := http.NewRequest(http.MethodPut, c.BaseURL+"/v1/c/n/t", bytes.NewReader([]byte("garbage")))
	resp, err := c.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestPushOverwritesTag(t *testing.T) {
	c, _, done := newTestClient(t)
	defer done()
	d1, err := c.Push("coll", testImage("app", "latest", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Push("coll", testImage("app", "latest", "v2"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Error("different content produced same digest")
	}
	_, got, err := c.Pull("coll", "app", "latest", "")
	if err != nil {
		t.Fatal(err)
	}
	if got != d2 {
		t.Errorf("latest digest = %s, want %s", got, d2)
	}
}

func TestConcurrentPushPull(t *testing.T) {
	// The store must tolerate concurrent pushes and pulls (the parallel
	// validation matrix pulls from many host workers at once).
	c, _, done := newTestClient(t)
	defer done()
	if _, err := c.Push("coll", testImage("seed", "latest", "v0")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				name := fmt.Sprintf("app%d", i)
				_, errs[i] = c.Push("coll", testImage(name, "latest", name))
			} else {
				_, _, errs[i] = c.Pull("coll", "seed", "latest", "")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	entries, err := c.List("coll")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 17 { // seed + 16 pushes
		t.Errorf("entries = %d, want 17", len(entries))
	}
}

func TestRealListener(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient("http://" + addr)
	if _, err := c.Push("coll", testImage("app", "1", "x")); err != nil {
		t.Fatal(err)
	}
	entries, err := c.List("coll")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("entries = %v", entries)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}
