package hub

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowGate wraps the server handler so one request can be held in
// flight at a known point — the deterministic stand-in for a slow pull
// caught by a shutdown.
type slowGate struct {
	inner   http.Handler
	entered chan struct{} // closed-over signal: a request reached the gate
	release chan struct{} // the request proceeds when this closes
}

func (g *slowGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.entered <- struct{}{}
	<-g.release
	g.inner.ServeHTTP(w, r)
}

// TestShutdownDrainsSlowInflightPull pins the graceful path: a pull
// held in flight when Shutdown starts still completes with its full
// payload, and the shutdown is recorded as drained.
func TestShutdownDrainsSlowInflightPull(t *testing.T) {
	store := NewStore()
	img := testImage("pepa", "latest", "solver")
	blob, _ := img.Marshal()
	if _, err := store.Put("c", "pepa", "latest", blob); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	gate := &slowGate{inner: srv.handler, entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv.handler = gate
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type pullResult struct {
		status int
		body   []byte
		err    error
	}
	got := make(chan pullResult, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/v1/c/pepa/latest")
		if err != nil {
			got <- pullResult{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			got <- pullResult{err: err}
			return
		}
		got <- pullResult{status: resp.StatusCode, body: body}
	}()
	<-gate.entered // the pull is now in flight, parked at the gate

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the parked request. Give it a moment to
	// close the listener, then verify new connections are refused while
	// the old one survives.
	time.Sleep(20 * time.Millisecond)
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("new request accepted after Shutdown began")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight pull finished", err)
	default:
	}
	close(gate.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-got
	if res.err != nil {
		t.Fatalf("in-flight pull failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight pull status = %d", res.status)
	}
	if string(res.body) != string(blob) {
		t.Error("in-flight pull returned a truncated or corrupt blob")
	}
	if n := reg.Counter("hub_server_shutdowns_total", obs.L("outcome", "drained")); n != 1 {
		t.Errorf("drained shutdowns = %v, want 1", n)
	}
	if n := reg.Counter("hub_server_shutdowns_total", obs.L("outcome", "aborted")); n != 0 {
		t.Errorf("aborted shutdowns = %v, want 0", n)
	}
}

// TestShutdownAbortsAfterDeadline pins the abortive fallback: a request
// that outlives the drain deadline is cut, Shutdown reports the
// context's error, and the outcome counts as aborted.
func TestShutdownAbortsAfterDeadline(t *testing.T) {
	srv := NewServer(NewStore())
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	gate := &slowGate{inner: srv.handler, entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv.handler = gate
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		_, err := http.Get("http://" + addr + "/healthz")
		reqDone <- err
	}()
	<-gate.entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown drained despite a stuck request")
	}
	if ctx.Err() == nil {
		t.Fatalf("Shutdown returned %v before the drain deadline", err)
	}
	close(gate.release) // unblock the handler goroutine
	<-reqDone
	if n := reg.Counter("hub_server_shutdowns_total", obs.L("outcome", "aborted")); n != 1 {
		t.Errorf("aborted shutdowns = %v, want 1", n)
	}
}

// TestShutdownWithoutListen is a no-op, matching Close.
func TestShutdownWithoutListen(t *testing.T) {
	srv := NewServer(NewStore())
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown on unstarted server: %v", err)
	}
}

// TestSaveSurvivesTornWriteArtifacts pins the fsatomic migration: a
// stale tmp file from an interrupted earlier save neither corrupts a
// later save nor leaks into the reloaded store, and the index on disk
// is never observable half-written (the tmp is renamed into place).
func TestSaveSurvivesTornWriteArtifacts(t *testing.T) {
	store := NewStore()
	img := testImage("pepa", "latest", "solver")
	blob, _ := img.Marshal()
	if _, err := store.Put("c", "pepa", "latest", blob); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Simulate the debris of a crash mid-save: a torn index tmp and a
	// torn blob tmp, as the pre-fsync scheme could leave behind.
	if err := os.WriteFile(filepath.Join(dir, indexFile+".tmp-123"), []byte(`[{"collection":"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.scif.tmp-9"), []byte("half a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after save over torn artifacts: %v", err)
	}
	if _, _, ok := back.Get("c", "pepa", "latest"); !ok {
		t.Fatal("image lost")
	}
	// A fresh save leaves no tmp files of its own behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") && e.Name() != indexFile+".tmp-123" && e.Name() != "deadbeef.scif.tmp-9" {
			t.Errorf("save leaked tmp file %s", e.Name())
		}
	}
}

// TestLoadRejectsTornIndex pins recovery semantics: a torn (truncated)
// index — possible only under the old non-durable write path — fails
// loudly instead of silently serving a partial catalogue.
func TestLoadRejectsTornIndex(t *testing.T) {
	store := NewStore()
	img := testImage("pepa", "latest", "solver")
	blob, _ := img.Marshal()
	store.Put("c", "pepa", "latest", blob)
	dir := t.TempDir()
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "corrupt index") {
		t.Fatalf("Load of torn index = %v, want corrupt-index error", err)
	}
	// Re-saving from a live store repairs the directory.
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("Load after repair: %v", err)
	}
}
