package hub

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// chaosOptions are fast, fully deterministic client knobs for chaos
// tests: no real sleeping, tiny backoff, fixed jitter seed.
func chaosOptions(attempts int) ClientOptions {
	return ClientOptions{
		Retry:      RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		JitterSeed: 7,
		Sleep:      func(time.Duration) {},
	}
}

// faultyServer starts a hub whose handler is wrapped in the plan.
func faultyServer(t *testing.T, plan *faultinject.Plan) string {
	t.Helper()
	srv := NewServer(NewStore())
	srv.EnableFaults(plan)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestChaosPullConverges is the headline scenario: two 503s then one
// digest-corrupting bit flip on the pull path, and the client still
// converges to the correct digest within its attempt budget.
func TestChaosPullConverges(t *testing.T) {
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindStatus, Status: 503, First: 2},
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindCorrupt, First: 1},
	)
	url := faultyServer(t, plan)
	c := NewClientWithOptions(url, chaosOptions(6))

	img := testImage("pepa", "latest", "solver-under-chaos")
	digest, err := c.Push("chaos", img)
	if err != nil {
		t.Fatal(err)
	}
	pulled, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest)
	if err != nil {
		t.Fatalf("pull did not converge: %v", err)
	}
	if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	data, err := pulled.FS.ReadFile("/payload")
	if err != nil || string(data) != "solver-under-chaos" {
		t.Errorf("payload = %q, err %v", data, err)
	}

	log := strings.Join(c.AttemptsMatching("pull chaos/pepa:latest"), "\n")
	for _, want := range []string{
		"attempt 1/6: HTTP 503 (transient)",
		"attempt 2/6: HTTP 503 (transient)",
		"attempt 3/6: corrupt response (re-pulling once)",
		"attempt 4/6: ok",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("attempt log missing %q:\n%s", want, log)
		}
	}
}

// TestChaosTruncatedPullRetries cuts the pull body mid-stream twice;
// the truncation classifies as transient and the third attempt wins.
func TestChaosTruncatedPullRetries(t *testing.T) {
	plan := faultinject.NewPlan(2,
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindTruncate, First: 2},
	)
	url := faultyServer(t, plan)
	c := NewClientWithOptions(url, chaosOptions(5))

	img := testImage("pepa", "latest", strings.Repeat("big-payload ", 200))
	digest, err := c.Push("chaos", img)
	if err != nil {
		t.Fatal(err)
	}
	if _, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest); err != nil {
		t.Fatalf("pull did not converge: %v", err)
	} else if gotDigest != digest {
		t.Errorf("digest = %s, want %s", gotDigest, digest)
	}
	log := strings.Join(c.AttemptsMatching("pull chaos/pepa:latest"), "\n")
	if !strings.Contains(log, "truncated response (transient)") {
		t.Errorf("truncation not classified transient:\n%s", log)
	}
}

// TestChaosPushListUnderFaults exercises the other verbs: a 503 on the
// push and a truncated list response, both retried to success.
func TestChaosPushListUnderFaults(t *testing.T) {
	plan := faultinject.NewPlan(3,
		faultinject.Rule{Match: "PUT /v1/", Kind: faultinject.KindStatus, Status: 503, First: 1},
		faultinject.Rule{Match: "GET /v1/chaos", Kind: faultinject.KindTruncate, First: 1},
	)
	url := faultyServer(t, plan)
	c := NewClientWithOptions(url, chaosOptions(4))

	digest, err := c.Push("chaos", testImage("pepa", "latest", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := c.List("chaos")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Digest != digest {
		t.Errorf("entries = %+v", entries)
	}
	log := strings.Join(c.AttemptLog(), "\n")
	if !strings.Contains(log, "push chaos/pepa:latest attempt 1/4: HTTP 503 (transient)") {
		t.Errorf("push 503 not retried:\n%s", log)
	}
	if !strings.Contains(log, "list chaos attempt 2/4: ok") {
		t.Errorf("list truncation not retried:\n%s", log)
	}
}

// TestChaosRemoteBuildRetries injects a 503 into the auto-build
// endpoint; the build is idempotent so the retry converges.
func TestChaosRemoteBuildRetries(t *testing.T) {
	srv := NewServer(NewStore())
	srv.EnableAutoBuild(&stubBuilder{})
	srv.EnableFaults(faultinject.NewPlan(4,
		faultinject.Rule{Match: "POST /v1/build/", Kind: faultinject.KindStatus, Status: 503, First: 1},
	))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClientWithOptions(ts.URL, chaosOptions(3))

	digest, err := c.RemoteBuild("coll", "pepa", "latest", "Bootstrap: library\nFrom: centos:7.4\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(digest, "sha256:") {
		t.Errorf("digest = %q", digest)
	}
	log := strings.Join(c.AttemptLog(), "\n")
	if !strings.Contains(log, "build coll/pepa:latest attempt 2/3: ok") {
		t.Errorf("build 503 not retried:\n%s", log)
	}
}

// TestChaosDoubleCorruptionGivesUp: corruption is retried exactly once;
// a second corrupt payload means the stored content is bad.
func TestChaosDoubleCorruptionGivesUp(t *testing.T) {
	store := NewStore()
	srv := NewServer(store)
	cleanTS := httptest.NewServer(srv.Handler())
	defer cleanTS.Close()
	digest, err := NewClientWithOptions(cleanTS.URL, chaosOptions(2)).Push("chaos", testImage("pepa", "latest", "v1"))
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(5,
		faultinject.Rule{Match: "GET /v1/chaos/", Kind: faultinject.KindCorrupt, First: 10},
	)
	c := NewClientWithOptions(cleanTS.URL, chaosOptions(8))
	c.HTTP.Transport = plan.Transport(nil)
	_, _, err = c.Pull("chaos", "pepa", "latest", digest)
	if err == nil {
		t.Fatal("pull of persistently corrupt content succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	log := c.AttemptsMatching("pull chaos/pepa:latest attempt")
	if len(log) != 2 {
		t.Errorf("corrupt pull made %d attempts, want exactly 2:\n%s", len(log), strings.Join(log, "\n"))
	}
	if !strings.Contains(strings.Join(log, "\n"), "corrupt again; giving up") {
		t.Errorf("second corruption not terminal:\n%s", strings.Join(log, "\n"))
	}
}

// TestChaosAttemptLogDeterministic replays the same fault plan and
// jitter seed against two fresh servers: the attempt logs (including
// backoff durations) must be byte-identical.
func TestChaosAttemptLogDeterministic(t *testing.T) {
	run := func() []string {
		srv := NewServer(NewStore())
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		seed := NewClientWithOptions(ts.URL, chaosOptions(2))
		digest, err := seed.Push("chaos", testImage("pepa", "latest", "v1"))
		if err != nil {
			t.Fatal(err)
		}
		plan := faultinject.NewPlan(11,
			faultinject.Rule{Kind: faultinject.KindConn, First: 1},
			faultinject.Rule{Kind: faultinject.KindStatus, Status: 503, First: 1},
			faultinject.Rule{Kind: faultinject.KindTruncate, First: 1},
		)
		c := NewClientWithOptions(ts.URL, chaosOptions(6))
		c.HTTP.Transport = plan.Transport(nil)
		if _, gotDigest, err := c.Pull("chaos", "pepa", "latest", digest); err != nil {
			t.Fatalf("pull did not converge: %v", err)
		} else if gotDigest != digest {
			t.Errorf("digest = %s, want %s", gotDigest, digest)
		}
		return c.AttemptLog()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("attempt logs differ between identical seeds:\n%s\n--- vs ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	joined := strings.Join(a, "\n")
	for _, want := range []string{
		"transport error (transient)",
		"HTTP 503 (transient)",
		"truncated response (transient)",
		"attempt 4/6: ok",
		"backoff",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %q:\n%s", want, joined)
		}
	}
}

// TestChaosBreakerTripsAndRecovers drives the breaker through its whole
// trajectory with operation counts only — no wall clock involved.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := NewClientWithOptions(ts.URL, chaosOptions(2)).Push("chaos", testImage("pepa", "latest", "v1")); err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(6, faultinject.Rule{Kind: faultinject.KindConn, First: 3})
	opts := chaosOptions(10)
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 2
	c := NewClientWithOptions(ts.URL, opts)
	c.HTTP.Transport = plan.Transport(nil)

	// Op 1: three conn errors trip the breaker; attempt 4 is rejected.
	_, err := c.List("chaos")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Errorf("breaker state = %v, want open", got)
	}
	if !strings.Contains(strings.Join(c.AttemptLog(), "\n"), "rejected (breaker open)") {
		t.Error("rejection not logged")
	}

	// Op 2: the cooldown elapses (counted in rejections), the half-open
	// probe goes through against a now-healthy plan, and the breaker closes.
	entries, err := c.List("chaos")
	if err != nil {
		t.Fatalf("probe op failed: %v", err)
	}
	if len(entries) != 1 {
		t.Errorf("entries = %+v", entries)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Errorf("breaker state after probe = %v, want closed", got)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, 2)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Error("tripped below threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Error("open breaker allowed an op before cooldown")
	}
	if !b.Allow() {
		t.Error("cooldown did not half-open the breaker")
	}
	if b.State() != BreakerHalfOpen {
		t.Errorf("state = %v, want half-open", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Error("failed probe did not reopen")
	}
	b.Allow()
	b.Allow() // second rejection half-opens again
	b.Success()
	if b.State() != BreakerClosed {
		t.Error("successful probe did not close")
	}
	b.Failure()
	b.Failure()
	b.Reset()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Error("reset did not close the breaker")
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{&HTTPError{Op: "pull", Status: 404}, ClassDeterministic},
		{&HTTPError{Op: "pull", Status: 413}, ClassDeterministic},
		{&HTTPError{Op: "pull", Status: 429}, ClassTransient},
		{&HTTPError{Op: "pull", Status: 503}, ClassTransient},
		{io.ErrUnexpectedEOF, ClassTransient},
		{fmt.Errorf("%w: digest mismatch", ErrCorrupt), ClassTransient},
		{fmt.Errorf("%w: last error", ErrCircuitOpen), ClassTransient},
		{errors.New("hub: rejecting malformed image"), ClassDeterministic},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestDeterministicFailureNotRetried: a 404 is answered coherently by
// the registry; retrying it would be waste, so the client gives up on
// attempt 1 and the breaker stays closed.
func TestDeterministicFailureNotRetried(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClientWithOptions(ts.URL, chaosOptions(5))
	_, _, err := c.Pull("nope", "missing", "latest", "")
	if err == nil {
		t.Fatal("pull of missing image succeeded")
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Errorf("err = %v, want HTTPError 404", err)
	}
	log := c.AttemptsMatching("pull nope/missing:latest attempt")
	if len(log) != 1 || !strings.Contains(log[0], "deterministic; giving up") {
		t.Errorf("404 was retried:\n%s", strings.Join(log, "\n"))
	}
	if c.Breaker().State() != BreakerClosed {
		t.Error("deterministic failure counted against the breaker")
	}
}

// TestUploadCapEnforced: the server rejects oversized uploads with 413
// and the client treats that as deterministic.
func TestUploadCapEnforced(t *testing.T) {
	srv := NewServer(NewStore())
	srv.MaxUploadBytes = 64
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/coll/pepa/latest", "application/octet-stream",
		bytes.NewReader(make([]byte, 200)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}

	c := NewClientWithOptions(ts.URL, chaosOptions(5))
	if _, err := c.Push("coll", testImage("pepa", "latest", strings.Repeat("x", 500))); err == nil {
		t.Fatal("oversized push succeeded")
	}
	log := c.AttemptsMatching("push coll/pepa:latest attempt")
	if len(log) != 1 {
		t.Errorf("413 push was retried:\n%s", strings.Join(log, "\n"))
	}
}

// TestResponseCapEnforced: a blob larger than the client's response cap
// is refused on the client side.
func TestResponseCapEnforced(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	seed := NewClientWithOptions(ts.URL, chaosOptions(2))
	digest, err := seed.Push("coll", testImage("pepa", "latest", strings.Repeat("payload ", 100)))
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOptions(2)
	opts.MaxResponseBytes = 64
	c := NewClientWithOptions(ts.URL, opts)
	if _, _, err := c.Pull("coll", "pepa", "latest", digest); err == nil {
		t.Fatal("pull above the response cap succeeded")
	} else if !strings.Contains(err.Error(), "64-byte cap") {
		t.Errorf("err = %v, want response-cap error", err)
	}
}

// TestWriteJSONContentLength: JSON responses carry an exact
// Content-Length (regression guard for the silent-encode-error fix).
func TestWriteJSONContentLength(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := NewClientWithOptions(ts.URL, chaosOptions(2)).Push("coll", testImage("pepa", "latest", "v1")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/coll")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Errorf("Content-Length = %q, body is %d bytes", cl, len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}
