package hub

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/image"
)

// Layer-level transfer: layered (SCIF2) images are negotiated by layer
// digest, so a push uploads only the layers the registry is missing and
// a pull downloads only the layers the client has not already cached —
// the registry analogue of the stage-level build cache. The protocol
// rides on the existing resilient primitives: layer bodies are served
// with the same chunk-digest framing and Range resume as image blobs,
// and every operation runs through the retry loop and breaker.
//
// Server endpoints:
//
//	POST /v1/_layers/missing            {"digests":[...]} -> {"missing":[...]}
//	GET  /v1/_layers/{digest}           one encoded layer (chunk-framed)
//	PUT  /v1/_layers/{digest}           stage one layer for later manifests
//	GET  /v1/{c}/{n}/{t}/manifest       the stored image's layer manifest
//	PUT  /v1/{c}/{n}/{t}/manifest       commit a manifest; 412 + missing
//	                                    list when layers are absent
//
// Staged layers are a content-addressed cache, not durable registry
// state: they are not journaled, and a restarted durable store re-learns
// its layer index from the installed blobs. A client whose staged layers
// were lost between negotiation and manifest commit sees 412 and simply
// re-uploads — the manifest commit is the only durable mutation, and it
// goes through Store.Put, so WAL ordering and digest verification are
// exactly those of a monolithic push.

// layerContentDigest is the content address of one encoded layer frame.
func layerContentDigest(frame []byte) string {
	sum := sha256.Sum256(frame)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// indexLayersLocked records the layer frames of a layered blob in the
// content-addressed layer index. Caller holds s.mu. The frames alias
// blob, which is safe: installed blobs are immutable (Put replaces them
// wholesale).
func (s *Store) indexLayersLocked(blob []byte) {
	if !image.IsLayered(blob) {
		return
	}
	_, frames, err := image.LayeredFrames(blob)
	if err != nil {
		return // the blob was digest-verified upstream; be lenient here
	}
	for _, f := range frames {
		d := layerContentDigest(f)
		if _, ok := s.layers[d]; !ok {
			s.layers[d] = f
		}
	}
}

// PutLayer stages one encoded layer, verifying it decodes cleanly, and
// returns its content digest. Staging is idempotent and content-addressed;
// the layer becomes reachable registry state only once a manifest commit
// references it.
func (s *Store) PutLayer(data []byte) (string, error) {
	l, err := image.DecodeLayer(data) // copies data, validates the changeset
	if err != nil {
		return "", fmt.Errorf("hub: rejecting malformed layer: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.layers[l.Digest()]; !ok {
		s.layers[l.Digest()] = l.Bytes()
	}
	return l.Digest(), nil
}

// LayerBlob returns the encoded bytes of one layer. The slice is
// immutable; callers must not modify it.
func (s *Store) LayerBlob(digest string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.layers[digest]
	return f, ok
}

// MissingLayers reports which of the given digests the store does not
// hold, preserving order.
func (s *Store) MissingLayers(digests []string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	missing := []string{}
	for _, d := range digests {
		if _, ok := s.layers[d]; !ok {
			missing = append(missing, d)
		}
	}
	return missing
}

// layerFrames returns the encoded frames for digests in order, or the
// list of absent digests (checked and fetched under one lock, so a
// concurrent eviction cannot split the answer).
func (s *Store) layerFrames(digests []string) (frames [][]byte, missing []string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	frames = make([][]byte, 0, len(digests))
	for _, d := range digests {
		f, ok := s.layers[d]
		if !ok {
			missing = append(missing, d)
			continue
		}
		frames = append(frames, f)
	}
	if len(missing) > 0 {
		return nil, missing
	}
	return frames, nil
}

// LayerCount returns the number of distinct layers indexed.
func (s *Store) LayerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.layers)
}

// handleLayerMissing answers POST /v1/_layers/missing: the negotiation
// step of a layered push.
func (s *Server) handleLayerMissing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(w, r, s.MaxUploadBytes)
	if err != nil {
		return
	}
	var req struct {
		Digests []string `json:"digests"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad negotiation request: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string][]string{"missing": s.Store.MissingLayers(req.Digests)})
}

// handleLayer answers GET/PUT /v1/_layers/{digest}: one encoded layer,
// served with the same chunk framing and Range support as image blobs.
func (s *Server) handleLayer(w http.ResponseWriter, r *http.Request, digest string) {
	switch r.Method {
	case http.MethodGet:
		blob, ok := s.Store.LayerBlob(digest)
		if !ok {
			http.Error(w, "layer not found", http.StatusNotFound)
			return
		}
		s.serveVerified(w, r, digest, blob)
	case http.MethodPut, http.MethodPost:
		body, err := readBody(w, r, s.MaxUploadBytes)
		if err != nil {
			return
		}
		d, err := s.Store.PutLayer(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if d != digest {
			// The layer is valid and stays staged under its true content
			// address; the request just named the wrong one.
			http.Error(w, fmt.Sprintf("layer digest mismatch: body is %s, url says %s", d, digest), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"digest": d})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleManifest answers GET/PUT /v1/{coll}/{name}/{tag}/manifest.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request, coll, name, tag string) {
	switch r.Method {
	case http.MethodGet:
		blob, e, reason, ok := s.Store.view(coll, name, tag)
		if !ok {
			http.Error(w, "image not found", http.StatusNotFound)
			return
		}
		if e.Quarantined || reason != "" {
			w.Header().Set(headerHubError, hubErrQuarantined)
			http.Error(w, fmt.Sprintf("content quarantined (%s); re-push to repair", reason), http.StatusGone)
			return
		}
		if !image.IsLayered(blob) {
			// A monolithic (SCIF1) entry has no manifest; the typed 404
			// tells the client to fall back to a legacy pull.
			w.Header().Set(headerHubError, hubErrNotLayered)
			http.Error(w, "image is not stored in layered form", http.StatusNotFound)
			return
		}
		manifest, _, err := image.LayeredFrames(blob)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(headerDigest, e.Digest)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(manifest)))
		w.Write(manifest)
	case http.MethodPut, http.MethodPost:
		body, err := readBody(w, r, s.MaxUploadBytes)
		if err != nil {
			return
		}
		m, err := image.ParseManifest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		digests := make([]string, 0, len(m.Layers))
		for _, d := range m.Layers {
			digests = append(digests, d.Digest)
		}
		frames, missing := s.Store.layerFrames(digests)
		if len(missing) > 0 {
			// Precondition failed: the client must upload these layers and
			// retry the commit.
			data, jerr := json.Marshal(map[string][]string{"missing": missing})
			if jerr != nil {
				http.Error(w, jerr.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusPreconditionFailed)
			w.Write(data)
			return
		}
		// Reassemble the layered blob from the client's exact manifest
		// bytes and the staged frames, then commit through Store.Put so the
		// result is digest-verified end to end (layer digests, sizes, and
		// the flattened image digest) and journaled like any other push.
		blob := image.AssembleLayered(body, frames)
		digest, err := s.Store.Put(coll, name, tag, blob)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"digest": digest})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// LayerCache is the client-side content-addressed layer cache: layers
// pulled or pushed once are reused across images and tags, so a pull of
// an image sharing layers with one already seen transfers only the new
// layers. Safe for concurrent use and shareable between clients (pass it
// via ClientOptions.LayerCache).
type LayerCache struct {
	mu     sync.Mutex
	layers map[string]*image.Layer
	hits   int64
}

// NewLayerCache creates an empty layer cache.
func NewLayerCache() *LayerCache {
	return &LayerCache{layers: map[string]*image.Layer{}}
}

func (lc *LayerCache) get(digest string) (*image.Layer, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	l, ok := lc.layers[digest]
	if ok {
		lc.hits++
	}
	return l, ok
}

func (lc *LayerCache) add(l *image.Layer) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if _, ok := lc.layers[l.Digest()]; !ok {
		lc.layers[l.Digest()] = l
	}
}

// Len returns the number of distinct layers cached.
func (lc *LayerCache) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.layers)
}

// Hits counts lookups answered from the cache.
func (lc *LayerCache) Hits() int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.hits
}

// LayerCache returns the client's layer cache.
func (c *Client) LayerCache() *LayerCache { return c.layerCache }

// MissingLayers asks the server which of the given layer digests it does
// not hold.
func (c *Client) MissingLayers(digests []string) ([]string, error) {
	body, err := json.Marshal(map[string][]string{"digests": digests})
	if err != nil {
		return nil, err
	}
	var out struct {
		Missing []string `json:"missing"`
	}
	err = c.do("negotiate layers", func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, c.BaseURL+"/v1/_layers/missing", bytes.NewReader(body))
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding negotiation response: %v", ErrCorrupt, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out.Missing, nil
}

// PushLayered uploads an image by layer negotiation: ask the server which
// layers it is missing, upload only those, then commit the manifest. A
// monolithic image is layerized (one layer) first. If the server loses
// staged layers between negotiation and commit (e.g. it restarted), the
// 412 answer triggers one full re-negotiation before giving up.
func (c *Client) PushLayered(coll string, img *image.Image) (string, error) {
	m, err := img.Manifest()
	if err != nil {
		return "", err
	}
	manifestBytes, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	byDigest := make(map[string]*image.Layer, len(img.Layers))
	digests := make([]string, 0, len(img.Layers))
	for _, l := range img.Layers {
		byDigest[l.Digest()] = l
		digests = append(digests, l.Digest())
	}
	for attempt := 0; ; attempt++ {
		missing, err := c.MissingLayers(digests)
		if err != nil {
			return "", err
		}
		c.obs.Add("hub_client_layers_skipped_total", float64(len(digests)-len(missing)))
		for _, d := range missing {
			l, ok := byDigest[d]
			if !ok {
				return "", fmt.Errorf("hub: server wants layer %s the image does not carry", d)
			}
			if err := c.pushLayer(l); err != nil {
				return "", err
			}
		}
		digest, err := c.putManifest(coll, img.Meta.Name, img.Meta.Tag, manifestBytes, m.ImageDigest)
		if err == nil {
			for _, l := range img.Layers {
				c.layerCache.add(l)
			}
			return digest, nil
		}
		var he *HTTPError
		if errors.As(err, &he) && he.Status == http.StatusPreconditionFailed && attempt == 0 {
			c.logf("push-layered %s/%s:%s: staged layers lost, re-negotiating", coll, img.Meta.Name, img.Meta.Tag)
			continue
		}
		return "", err
	}
}

// pushLayer uploads one encoded layer, verifying the server's echoed
// digest.
func (c *Client) pushLayer(l *image.Layer) error {
	op := "pushlayer " + l.Digest()
	url := c.BaseURL + "/v1/_layers/" + l.Digest()
	err := c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, url, bytes.NewReader(l.Bytes()))
	}, func(resp *http.Response) error {
		var out struct {
			Digest string `json:"digest"`
		}
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding layer push response: %v", ErrCorrupt, err)
		}
		if out.Digest != l.Digest() {
			return fmt.Errorf("%w: server layer digest %s != local %s", ErrCorrupt, out.Digest, l.Digest())
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.obs.Inc("hub_client_layers_pushed_total")
	c.obs.Add("hub_client_layer_bytes_pushed_total", float64(l.Size()))
	return nil
}

// putManifest commits a manifest and verifies the server-computed digest
// against the locally known flattened digest. A 412 (missing layers)
// surfaces as *HTTPError for the caller to re-negotiate.
func (c *Client) putManifest(coll, name, tag string, manifestBytes []byte, localDigest string) (string, error) {
	op := fmt.Sprintf("pushmanifest %s/%s:%s", coll, name, tag)
	url := fmt.Sprintf("%s/v1/%s/%s/%s/manifest", c.BaseURL, coll, name, tag)
	var digest string
	err := c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, url, bytes.NewReader(manifestBytes))
	}, func(resp *http.Response) error {
		var out struct {
			Digest string `json:"digest"`
		}
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding manifest response: %v", ErrCorrupt, err)
		}
		if out.Digest != localDigest {
			return fmt.Errorf("%w: server digest %s != local digest %s", ErrCorrupt, out.Digest, localDigest)
		}
		digest = out.Digest
		return nil
	})
	if err != nil {
		return "", err
	}
	return digest, nil
}

// PullLayered downloads an image by manifest: fetch the layer manifest,
// pull only the layers not already in the client's layer cache, and
// reassemble — verifying each layer's digest on the wire and the
// flattened image digest at the end. If the server does not hold the
// image in layered form (or predates the manifest API), it falls back to
// the legacy monolithic Pull, so PullLayered is safe to use against any
// entry.
func (c *Client) PullLayered(coll, name, tag, expectedDigest string) (*image.Image, string, error) {
	op := fmt.Sprintf("pullmanifest %s/%s:%s", coll, name, tag)
	url := fmt.Sprintf("%s/v1/%s/%s/%s/manifest", c.BaseURL, coll, name, tag)
	var m *image.Manifest
	err := c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, func(resp *http.Response) error {
		body, err := io.ReadAll(io.LimitReader(resp.Body, c.MaxResponseBytes))
		if err != nil {
			return err
		}
		got, err := image.ParseManifest(body)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if expectedDigest != "" && got.ImageDigest != expectedDigest {
			return fmt.Errorf("%w: manifest digest %s != expected %s", ErrCorrupt, got.ImageDigest, expectedDigest)
		}
		if adv := resp.Header.Get(headerDigest); adv != "" && adv != got.ImageDigest {
			return fmt.Errorf("%w: advertised digest %s != manifest digest %s", ErrCorrupt, adv, got.ImageDigest)
		}
		m = got
		return nil
	})
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) && he.Status == http.StatusNotFound {
			c.logf("%s: no layered manifest, falling back to monolithic pull", op)
			return c.Pull(coll, name, tag, expectedDigest)
		}
		return nil, "", err
	}
	layers := make([]*image.Layer, len(m.Layers))
	for i, desc := range m.Layers {
		if l, ok := c.layerCache.get(desc.Digest); ok {
			c.obs.Inc("hub_client_layer_cache_hits_total")
			layers[i] = l
			continue
		}
		l, err := c.pullLayer(desc)
		if err != nil {
			return nil, "", err
		}
		c.layerCache.add(l)
		layers[i] = l
	}
	img, err := image.AssembleFromLayers(m.Config, layers)
	if err != nil {
		return nil, "", err
	}
	if err := img.VerifyDigest(m.ImageDigest); err != nil {
		return nil, "", fmt.Errorf("%w: reassembled image: %v", ErrCorrupt, err)
	}
	return img, m.ImageDigest, nil
}

// pullLayer downloads one layer through the streaming pull machinery:
// chunk-level digest verification, incremental size-cap enforcement, and
// Range resume from the last verified chunk across attempts.
func (c *Client) pullLayer(desc image.LayerDescriptor) (*image.Layer, error) {
	op := "pulllayer " + desc.Digest
	url := c.BaseURL + "/v1/_layers/" + desc.Digest
	st := &pullProgress{total: -1}
	var layer *image.Layer
	err := c.do(op, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if len(st.buf) > 0 {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-", len(st.buf)))
			c.logf("%s resuming from verified offset %d", op, len(st.buf))
			c.obs.Inc("hub_client_pull_resumes_total")
		}
		return req, nil
	}, func(resp *http.Response) error {
		blob, err := c.readPull(st, resp, desc.Digest)
		if err != nil {
			return err
		}
		l, err := image.DecodeLayer(blob)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if l.Digest() != desc.Digest {
			return fmt.Errorf("%w: pulled layer digest %s != %s", ErrCorrupt, l.Digest(), desc.Digest)
		}
		layer = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.obs.Inc("hub_client_layers_pulled_total")
	c.obs.Add("hub_client_layer_bytes_pulled_total", float64(layer.Size()))
	return layer, nil
}
