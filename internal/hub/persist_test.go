package hub

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	store := NewStore()
	for _, spec := range []struct{ coll, name, tag, payload string }{
		{"pepa-containers", "pepa", "latest", "solver-v1"},
		{"pepa-containers", "gpa", "latest", "analyser"},
		{"other", "tool", "v2", "x"},
	} {
		img := testImage(spec.name, spec.tag, spec.payload)
		blob, err := img.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Put(spec.coll, spec.name, spec.tag, blob); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Collections(); len(got) != 2 {
		t.Fatalf("collections = %v", got)
	}
	blob, digest, ok := back.Get("pepa-containers", "pepa", "latest")
	if !ok || len(blob) == 0 {
		t.Fatal("pepa image lost")
	}
	_, origDigest, _ := store.Get("pepa-containers", "pepa", "latest")
	if digest != origDigest {
		t.Errorf("digest changed: %s vs %s", digest, origDigest)
	}
}

func TestSaveIsIdempotent(t *testing.T) {
	store := NewStore()
	img := testImage("a", "1", "x")
	blob, _ := img.Marshal()
	store.Put("c", "a", "1", blob)
	dir := t.TempDir()
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(filepath.Join(dir, indexFile))
	if string(first) != string(second) {
		t.Error("repeated save changed the index")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	store := NewStore()
	img := testImage("a", "1", "payload")
	blob, _ := img.Marshal()
	store.Put("c", "a", "1", blob)
	dir := t.TempDir()
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the blob.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".scif") {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0xFF
			os.WriteFile(p, data, 0o644)
		}
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupted blob loaded without error")
	}
}

func TestLoadRejectsPathTraversal(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, indexFile),
		[]byte(`[{"collection":"c","container":"a","tag":"1","digest":"sha256:x","size":1,"blob":"../evil"}]`), 0o644)
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "suspicious blob path") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadOrNew(t *testing.T) {
	dir := t.TempDir()
	s, err := LoadOrNew(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Collections()) != 0 {
		t.Error("fresh store not empty")
	}
	img := testImage("a", "1", "x")
	blob, _ := img.Marshal()
	s.Put("c", "a", "1", blob)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadOrNew(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Collections()) != 1 {
		t.Error("reloaded store empty")
	}
}

func TestLoadMissingIndex(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load without index succeeded")
	}
}
