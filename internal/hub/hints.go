package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Hinted handoff: when a clustered write cannot reach one of its owners,
// the fallback peer that accepted the bytes also journals a Hint — a
// small metadata record naming the down owner and the entry it is owed.
// Hints are durable registry state (journaled like puts, folded into
// hints.json at compaction) so an acknowledged write survives the
// fallback peer restarting before the owner recovers. When the owner
// comes back, the cluster layer streams each hinted entry over (layer
// negotiation keeps the transfer incremental) and acks the hint, which
// removes it — again through the journal.
//
// Server endpoints (under the /v1/_cluster/ prefix):
//
//	POST /v1/_cluster/hints        store one hint        -> {"stored":true}
//	GET  /v1/_cluster/hints?target=NAME   list hints owed to NAME
//	POST /v1/_cluster/hints/ack    remove one delivered hint -> {"acked":bool}
//	GET  /v1/_cluster/status       this peer's replica summary

// Hint records one write owed to a down peer.
type Hint struct {
	// Target is the peer name the write is owed to (never an address).
	Target     string `json:"target"`
	Collection string `json:"collection"`
	Container  string `json:"container"`
	Tag        string `json:"tag"`
	// Digest pins which content version the hint covers; a newer write to
	// the same ref replaces it.
	Digest string `json:"digest"`
}

// hintKey identifies the slot a hint occupies: one per (target, ref),
// with a newer digest replacing an older one.
func (h Hint) hintKey() string { return h.Target + "|" + key(h.Collection, h.Container, h.Tag) }

func (h Hint) validate() error {
	if h.Target == "" || h.Collection == "" || h.Container == "" || h.Tag == "" || h.Digest == "" {
		return fmt.Errorf("hub: incomplete hint (target %q, ref %s/%s:%s, digest %q)",
			h.Target, h.Collection, h.Container, h.Tag, h.Digest)
	}
	return nil
}

// AddHint journals and stores one hinted-handoff record. Re-adding the
// same (target, ref, digest) is a no-op; a different digest for the same
// slot replaces the stale hint (the newer write supersedes it).
func (s *Store) AddHint(h Hint) error {
	if err := h.validate(); err != nil {
		return err
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.mu.RLock()
	existing, ok := s.hints[h.hintKey()]
	s.mu.RUnlock()
	if ok && existing.Digest == h.Digest {
		return nil
	}
	if s.wal != nil {
		if err := s.wal.appendHint(walHintAdd, h); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.hints[h.hintKey()] = h
	s.mu.Unlock()
	return nil
}

// AckHint removes one delivered hint, journaling the removal. It reports
// whether a hint was actually removed: an ack whose digest no longer
// matches the stored hint (a newer write arrived while the delivery was
// in flight) leaves the newer hint in place.
func (s *Store) AckHint(h Hint) (bool, error) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.mu.RLock()
	existing, ok := s.hints[h.hintKey()]
	s.mu.RUnlock()
	if !ok {
		return false, nil
	}
	if h.Digest != "" && existing.Digest != h.Digest {
		return false, nil
	}
	if s.wal != nil {
		if err := s.wal.appendHint(walHintAck, existing); err != nil {
			return false, err
		}
	}
	s.mu.Lock()
	delete(s.hints, existing.hintKey())
	s.mu.Unlock()
	return true, nil
}

// Hints returns the stored hints owed to target (all hints when target
// is empty), in deterministic order.
func (s *Store) Hints(target string) []Hint {
	s.mu.RLock()
	out := make([]Hint, 0, len(s.hints))
	for _, h := range s.hints {
		if target == "" || h.Target == target {
			out = append(out, h)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].hintKey() < out[j].hintKey() })
	return out
}

// HintCount returns the number of stored hints.
func (s *Store) HintCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.hints)
}

// EntryCount returns the number of stored entries across all collections.
func (s *Store) EntryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.meta)
}

// QuarantinedCount returns the number of quarantined entries.
func (s *Store) QuarantinedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.quarantined)
}

// NodeStatus is one peer's replica summary (GET /v1/_cluster/status).
type NodeStatus struct {
	Peer        string `json:"peer,omitempty"` // the server's configured peer name
	Entries     int    `json:"entries"`
	Layers      int    `json:"layers"`
	Hints       int    `json:"hints"`
	Quarantined int    `json:"quarantined"`
	Durable     bool   `json:"durable"`
}

// handleCluster routes /v1/_cluster/{hints[,ack],status}.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request, parts []string) {
	switch {
	case len(parts) == 2 && parts[1] == "status":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, NodeStatus{
			Peer:        s.PeerName,
			Entries:     s.Store.EntryCount(),
			Layers:      s.Store.LayerCount(),
			Hints:       s.Store.HintCount(),
			Quarantined: s.Store.QuarantinedCount(),
			Durable:     s.Store.Durable(),
		})
	case len(parts) == 2 && parts[1] == "hints":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, map[string][]Hint{"hints": s.Store.Hints(r.URL.Query().Get("target"))})
		case http.MethodPost, http.MethodPut:
			var h Hint
			if !decodeHintBody(w, r, s.MaxUploadBytes, &h) {
				return
			}
			if err := s.Store.AddHint(h); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]bool{"stored": true})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case len(parts) == 3 && parts[1] == "hints" && parts[2] == "ack":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var h Hint
		if !decodeHintBody(w, r, s.MaxUploadBytes, &h) {
			return
		}
		acked, err := s.Store.AckHint(h)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]bool{"acked": acked})
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// decodeHintBody reads and parses a hint request body, answering 4xx
// itself on failure.
func decodeHintBody(w http.ResponseWriter, r *http.Request, maxBytes int64, h *Hint) bool {
	body, err := readBody(w, r, maxBytes)
	if err != nil {
		return false
	}
	if err := json.Unmarshal(body, h); err != nil {
		http.Error(w, "bad hint: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// --- client side ---

// AddHint stores a hinted-handoff record on the hub the client points at.
func (c *Client) AddHint(h Hint) error {
	body, err := json.Marshal(h)
	if err != nil {
		return err
	}
	op := fmt.Sprintf("hint %s %s/%s:%s", h.Target, h.Collection, h.Container, h.Tag)
	return c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, c.BaseURL+"/v1/_cluster/hints", bytes.NewReader(body))
	}, func(resp *http.Response) error {
		var out struct {
			Stored bool `json:"stored"`
		}
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding hint response: %v", ErrCorrupt, err)
		}
		if !out.Stored {
			return fmt.Errorf("%w: hint not acknowledged as stored", ErrCorrupt)
		}
		return nil
	})
}

// Hints lists the hints the hub holds for target (all when empty).
func (c *Client) Hints(target string) ([]Hint, error) {
	url := c.BaseURL + "/v1/_cluster/hints"
	if target != "" {
		url += "?target=" + target
	}
	var out struct {
		Hints []Hint `json:"hints"`
	}
	err := c.do("hints "+target, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding hints response: %v", ErrCorrupt, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out.Hints, nil
}

// AckHint removes one delivered hint from the hub the client points at,
// reporting whether the hub actually dropped it.
func (c *Client) AckHint(h Hint) (bool, error) {
	body, err := json.Marshal(h)
	if err != nil {
		return false, err
	}
	var out struct {
		Acked bool `json:"acked"`
	}
	op := fmt.Sprintf("ackhint %s %s/%s:%s", h.Target, h.Collection, h.Container, h.Tag)
	err = c.do(op, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, c.BaseURL+"/v1/_cluster/hints/ack", bytes.NewReader(body))
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding ack response: %v", ErrCorrupt, err)
		}
		return nil
	})
	return out.Acked, err
}

// NodeStatus fetches the hub's replica summary.
func (c *Client) NodeStatus() (NodeStatus, error) {
	var out NodeStatus
	err := c.do("status", func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.BaseURL+"/v1/_cluster/status", nil)
	}, func(resp *http.Response) error {
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding status response: %v", ErrCorrupt, err)
		}
		return nil
	})
	return out, err
}
