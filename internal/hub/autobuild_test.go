package hub

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/vfs"
)

// stubBuilder builds a fixed image from any recipe containing "From:".
type stubBuilder struct{ fail bool }

func (b *stubBuilder) BuildFromRecipe(src, name, tag string) (*image.Image, error) {
	if b.fail || !strings.Contains(src, "From:") {
		return nil, fmt.Errorf("stub: bad recipe")
	}
	fs := vfs.New()
	fs.WriteFile("/payload", []byte(src), 0o644)
	return &image.Image{
		Meta: image.Metadata{Name: name, Tag: tag, RecipeSource: src, BuildHost: "hub-builder"},
		FS:   fs,
	}, nil
}

func autoBuildClient(t *testing.T, b Builder) (*Client, func()) {
	t.Helper()
	srv := NewServer(NewStore())
	srv.EnableAutoBuild(b)
	ts := httptest.NewServer(srv.Handler())
	return NewClient(ts.URL), ts.Close
}

func TestRemoteBuildStoresImage(t *testing.T) {
	c, done := autoBuildClient(t, &stubBuilder{})
	defer done()
	recipe := "Bootstrap: library\nFrom: centos:7.4\n"
	digest, err := c.RemoteBuild("coll", "pepa", "latest", recipe)
	if err != nil {
		t.Fatal(err)
	}
	img, got, err := c.Pull("coll", "pepa", "latest", digest)
	if err != nil {
		t.Fatal(err)
	}
	if got != digest {
		t.Errorf("digest = %s, want %s", got, digest)
	}
	if img.Meta.RecipeSource != recipe {
		t.Error("recipe provenance lost")
	}
	if img.Meta.BuildHost != "hub-builder" {
		t.Errorf("build host = %q", img.Meta.BuildHost)
	}
}

func TestRemoteBuildRejectsBadRecipe(t *testing.T) {
	c, done := autoBuildClient(t, &stubBuilder{})
	defer done()
	if _, err := c.RemoteBuild("coll", "x", "1", "not a recipe"); err == nil {
		t.Error("bad recipe accepted")
	}
	if _, err := c.RemoteBuild("coll", "x", "1", ""); err == nil {
		t.Error("empty recipe accepted")
	}
}

func TestRemoteBuildWithoutBuilder(t *testing.T) {
	// A hub without auto-build must refuse.
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.RemoteBuild("coll", "x", "1", "From: y\n"); err == nil {
		t.Error("build accepted without a builder")
	}
}

func TestRemoteBuildBuilderFailureSurfaces(t *testing.T) {
	c, done := autoBuildClient(t, &stubBuilder{fail: true})
	defer done()
	_, err := c.RemoteBuild("coll", "x", "1", "From: y\n")
	if err == nil || !strings.Contains(err.Error(), "build failed") {
		t.Errorf("err = %v", err)
	}
}
