package hub

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/image"
)

// Builder turns a recipe source into an image. The hub uses it to offer
// Singularity-Hub's actual operating model: users push *recipes* (kept in
// version control) and the hub builds the containers itself, so the
// published image provably corresponds to the published recipe.
type Builder interface {
	BuildFromRecipe(recipeSrc, name, tag string) (*image.Image, error)
}

// EnableAutoBuild installs a builder and the POST /v1/build/... endpoint.
// Must be called before Listen/Handler use.
func (s *Server) EnableAutoBuild(b Builder) {
	s.builder = b
	s.mux.HandleFunc("/v1/build/", s.handleBuild)
}

// handleBuild serves POST /v1/build/{collection}/{container}/{tag} with the
// recipe source as the request body.
func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if s.builder == nil {
		http.Error(w, "auto-build not enabled", http.StatusNotImplemented)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.Trim(strings.TrimPrefix(r.URL.Path, "/v1/build/"), "/"), "/")
	if len(parts) != 3 {
		http.Error(w, "want /v1/build/{collection}/{container}/{tag}", http.StatusBadRequest)
		return
	}
	coll, name, tag := parts[0], parts[1], parts[2]
	// Recipes are text; a generous 1 MiB cap rejects runaway uploads.
	recipeSrc, err := readBody(w, r, 1<<20)
	if err != nil {
		return
	}
	if len(recipeSrc) == 0 {
		http.Error(w, "empty recipe", http.StatusBadRequest)
		return
	}
	img, err := s.builder.BuildFromRecipe(string(recipeSrc), name, tag)
	if err != nil {
		http.Error(w, fmt.Sprintf("build failed: %v", err), http.StatusUnprocessableEntity)
		return
	}
	blob, err := img.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	digest, err := s.Store.Put(coll, name, tag, blob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"digest": digest})
}

// RemoteBuild asks the hub to build a recipe server-side and returns the
// digest of the stored image. Builds are content-addressed and therefore
// idempotent, so transient failures retry safely.
func (c *Client) RemoteBuild(coll, name, tag, recipeSrc string) (string, error) {
	op := fmt.Sprintf("build %s/%s:%s", coll, name, tag)
	url := fmt.Sprintf("%s/v1/build/%s/%s/%s", c.BaseURL, coll, name, tag)
	var digest string
	err := c.do(op, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(recipeSrc))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		return req, nil
	}, func(resp *http.Response) error {
		var out struct {
			Digest string `json:"digest"`
		}
		if err := jsonDecode(io.LimitReader(resp.Body, c.MaxResponseBytes), &out); err != nil {
			return fmt.Errorf("%w: decoding build response: %v", ErrCorrupt, err)
		}
		digest = out.Digest
		return nil
	})
	if err != nil {
		return "", err
	}
	return digest, nil
}
