package hub

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/fsatomic"
)

// Write-ahead journal: every store mutation (put, delete, quarantine)
// appends one fsynced, CRC-framed record to journal.wal before it is
// acknowledged, so a crash at any instant loses at most the record being
// written — and that record is detectably torn, not silently corrupt.
// On open the journal is replayed on top of the last snapshot
// (index.json); a torn or garbage tail is truncated back to the last
// whole record. Periodic compaction rewrites the snapshot and resets the
// journal (see persist.go).

// walFileName is the journal's name within the state directory.
const walFileName = "journal.wal"

// walMagic opens every journal file; a file that does not start with it
// is treated as wholly torn (zero records).
var walMagic = []byte("SHWAL1\n")

// walMaxRecord bounds a single record's payload. Records carry metadata
// only (blob bytes live in content-addressed files), so anything larger
// is garbage, not a record.
const walMaxRecord = 1 << 20

// walOp enumerates journaled mutations.
type walOp string

const (
	walPut        walOp = "put"
	walDelete     walOp = "delete"
	walQuarantine walOp = "quarantine"
	// walHintAdd / walHintAck journal hinted-handoff records: a write
	// owed to a down peer, and its removal once delivered (see hints.go).
	walHintAdd walOp = "hint-add"
	walHintAck walOp = "hint-ack"
)

// walRecord is one journal entry. Put records reference the
// content-addressed blob file (written and fsynced before the record),
// so replay can re-verify the bytes they acknowledge. Hint records carry
// the hint instead of an entry.
type walRecord struct {
	Seq   uint64         `json:"seq"`
	Op    walOp          `json:"op"`
	Entry persistedEntry `json:"entry"`
	Hint  *Hint          `json:"hint,omitempty"`
}

// encodeWALRecord frames a record as
// [uint32 payload length][uint32 IEEE CRC of payload][payload JSON].
func encodeWALRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("hub: encoding journal record: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// decodeWALRecords parses journal bytes (after the magic) into the
// longest valid prefix of records. It returns the records, the byte
// offset just past the last whole record (relative to the start of
// data), and whether a torn/garbage tail was detected. It never fails:
// any undecodable suffix is, by definition, the torn tail.
func decodeWALRecords(data []byte) (recs []walRecord, goodLen int, torn bool) {
	off := 0
	for {
		if len(data)-off < 8 {
			return recs, off, len(data)-off > 0
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		if n == 0 || n > walMaxRecord || int(n) > len(data)-off-8 {
			return recs, off, true
		}
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, true
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC-valid but structurally invalid: treat as torn — replay
			// must never apply a record it cannot fully interpret.
			return recs, off, true
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
}

// wal is an open journal bound to a state directory.
type wal struct {
	file    *fsatomic.AppendFile
	seq     uint64 // last sequence number written
	records int    // records appended since the last compaction
}

// walReplay is the outcome of opening a journal: the decoded records and
// bookkeeping about any torn tail that was discarded.
type walReplay struct {
	Records   []walRecord
	TornBytes int64 // bytes truncated from the tail (0 = clean)
}

// openWAL opens (creating if needed) the journal in dir, replays its
// records, and truncates any torn tail so subsequent appends extend a
// well-formed file. The caller applies the returned records on top of
// the snapshot.
func openWAL(dir string) (*wal, walReplay, error) {
	path := dir + string(os.PathSeparator) + walFileName
	// Read existing contents before opening for append.
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, walReplay{}, fmt.Errorf("hub: reading journal: %w", err)
	}
	f, err := fsatomic.OpenAppend(path)
	if err != nil {
		return nil, walReplay{}, err
	}
	w := &wal{file: f}
	if len(raw) == 0 {
		if err := f.Append(walMagic); err != nil {
			f.Close()
			return nil, walReplay{}, err
		}
		return w, walReplay{}, nil
	}
	var replay walReplay
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != string(walMagic) {
		// Unrecognizable journal: keep zero records and start fresh. The
		// snapshot still loads, so this degrades to losing the un-
		// compacted tail rather than refusing to start.
		replay.TornBytes = int64(len(raw))
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, walReplay{}, err
		}
		if err := f.Append(walMagic); err != nil {
			f.Close()
			return nil, walReplay{}, err
		}
		return w, replay, nil
	}
	recs, goodLen, torn := decodeWALRecords(raw[len(walMagic):])
	replay.Records = recs
	w.records = len(recs)
	for _, r := range recs {
		if r.Seq > w.seq {
			w.seq = r.Seq
		}
	}
	if torn {
		keep := int64(len(walMagic) + goodLen)
		replay.TornBytes = int64(len(raw)) - keep
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, walReplay{}, err
		}
	}
	return w, replay, nil
}

// append journals one record durably.
func (w *wal) append(op walOp, pe persistedEntry) error {
	return w.appendRecord(walRecord{Op: op, Entry: pe})
}

// appendHint journals one hinted-handoff mutation durably.
func (w *wal) appendHint(op walOp, h Hint) error {
	return w.appendRecord(walRecord{Op: op, Hint: &h})
}

func (w *wal) appendRecord(rec walRecord) error {
	w.seq++
	rec.Seq = w.seq
	buf, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if err := w.file.Append(buf); err != nil {
		return err
	}
	w.records++
	return nil
}

// reset truncates the journal back to its magic header (after a
// snapshot has made its records redundant).
func (w *wal) reset() error {
	if err := w.file.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	w.records = 0
	return nil
}

// close flushes and closes the journal file.
func (w *wal) close() error {
	if w.file == nil {
		return nil
	}
	err := w.file.Close()
	w.file = nil
	return err
}
