package hub

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

// TestBreakerHalfOpenAdmitsSingleProbe is the regression test for the
// half-open race: N concurrent callers hit a half-open breaker and
// exactly one may pass as the probe. The old logic returned true for
// every caller while half-open, so this fails against it.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	b := NewBreaker(1, 1)
	b.Failure() // threshold 1: open
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	const callers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	// Cooldown is 1, so the first rejection half-opens the breaker and
	// admits that caller as the probe; everyone else must be rejected
	// while the probe is unresolved.
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d concurrent callers admitted through half-open, want exactly 1", got)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// While the probe is in flight, later sequential callers are rejected too.
	if b.Allow() {
		t.Fatal("second probe admitted while the first is unresolved")
	}
	// Resolving the probe releases the slot.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("resolved probe did not close the breaker")
	}
}

// TestBreakerProbeResolvedOnPermanentFailure: a half-open probe that
// reaches the registry but fails deterministically (404) must resolve
// the probe — the old code left the breaker half-open with no way to
// ever resolve, which with single-probe admission would mean rejecting
// every future operation.
func TestBreakerProbeResolvedOnPermanentFailure(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := NewClientWithOptions(ts.URL, chaosOptions(2)).Push("c", testImage("pepa", "latest", "v1")); err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(9, faultinject.Rule{Kind: faultinject.KindConn, First: 1})
	opts := chaosOptions(1) // one attempt per op: breaker events map 1:1 to ops
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 1
	c := NewClientWithOptions(ts.URL, opts)
	c.HTTP.Transport = plan.Transport(nil)

	// Op 1: conn error trips the breaker (threshold 1).
	if _, err := c.List("c"); err == nil {
		t.Fatal("op under conn fault succeeded")
	}
	if c.Breaker().State() != BreakerOpen {
		t.Fatalf("state = %v, want open", c.Breaker().State())
	}
	// Op 2: the rejection reaches the cooldown, half-opens, and the probe
	// goes through — to a 404 (deterministic). The probe must resolve:
	// the transport answered, so the breaker closes.
	_, _, err := c.Pull("c", "missing", "latest", "")
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 404 {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker %v after permanent probe, want closed (stuck probe)", got)
	}
	// Op 3 flows normally.
	if _, err := c.List("c"); err != nil {
		t.Fatalf("breaker did not recover after permanent probe: %v", err)
	}
}

// TestBreakerConcurrentChaos hammers one client from many goroutines
// against a server that injects probabilistic faults. Run under -race
// this is the breaker's and attempt log's thread-safety proof; the
// invariant checked here is that every operation terminates with either
// success or a classified error (no deadlocks, no stuck half-open).
func TestBreakerConcurrentChaos(t *testing.T) {
	srv := NewServer(NewStore())
	plan := faultinject.NewPlan(7,
		faultinject.Rule{Match: "GET /v1/", Kind: faultinject.KindStatus, Status: 503, Prob: 0.3},
	)
	srv.EnableFaults(plan)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := NewClientWithOptions(ts.URL, chaosOptions(2)).Push("c", testImage("pepa", "latest", "v1")); err != nil {
		t.Fatal(err)
	}

	opts := chaosOptions(3)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 1
	c := NewClientWithOptions(ts.URL, opts)

	const workers, opsEach = 16, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*opsEach)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				_, err := c.List("c")
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	var ok, rejected, failed int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrCircuitOpen):
			rejected++
		default:
			failed++
		}
	}
	if ok == 0 {
		t.Errorf("no operation succeeded (ok=%d rejected=%d failed=%d)", ok, rejected, failed)
	}
	// The breaker must not be wedged: resolve any state and verify flow.
	c.Breaker().Reset()
	if _, err := c.List("c"); err != nil && !errors.Is(err, ErrCircuitOpen) {
		var he *HTTPError
		if !errors.As(err, &he) {
			t.Errorf("post-chaos op failed oddly: %v", err)
		}
	}
}

// TestCircuitOpenErrorShape pins the two ErrCircuitOpen wrap paths to one
// consistent shape: both carry the operation context, match the sentinel,
// and classify transient — so the validation matrix renders rejected
// cells identically whether or not an attempt preceded the rejection.
func TestCircuitOpenErrorShape(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	newTripped := func(attempts int) *Client {
		plan := faultinject.NewPlan(3, faultinject.Rule{Kind: faultinject.KindConn, First: 99})
		opts := chaosOptions(attempts)
		opts.BreakerThreshold = 1
		opts.BreakerCooldown = 1 << 20 // never half-opens during the test
		c := NewClientWithOptions(ts.URL, opts)
		c.HTTP.Transport = plan.Transport(nil)
		return c
	}

	cases := []struct {
		name string
		run  func() (string, error) // returns the op string it used
	}{
		{
			// Attempt 1 fails transient, trips the breaker, attempt 2 is
			// rejected: the lastErr-bearing wrap path.
			name: "rejected after failed attempt",
			run: func() (string, error) {
				c := newTripped(2)
				_, err := c.List("shape")
				return "list shape", err
			},
		},
		{
			// A previous operation tripped the breaker; the next operation
			// is rejected on attempt 1: the no-lastErr wrap path.
			name: "rejected on first attempt",
			run: func() (string, error) {
				c := newTripped(1)
				c.List("earlier") // trips
				_, err := c.List("shape")
				return "list shape", err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op, err := tc.run()
			if err == nil {
				t.Fatal("operation unexpectedly succeeded")
			}
			if !errors.Is(err, ErrCircuitOpen) {
				t.Errorf("err = %v, want ErrCircuitOpen sentinel", err)
			}
			if !strings.Contains(err.Error(), op) {
				t.Errorf("error %q dropped the operation context %q", err, op)
			}
			if Classify(err) != ClassTransient {
				t.Errorf("Classify(%v) = %v, want transient", err, Classify(err))
			}
		})
	}
}

// TestBreakerRejectLogWording: open-state rejections keep the historic
// log line (byte-identical attempt logs are the regression bar); the new
// half-open rejection path has its own wording.
func TestBreakerRejectLogWording(t *testing.T) {
	srv := NewServer(NewStore())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	plan := faultinject.NewPlan(4, faultinject.Rule{Kind: faultinject.KindConn, First: 99})
	opts := chaosOptions(3)
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 1 << 20
	c := NewClientWithOptions(ts.URL, opts)
	c.HTTP.Transport = plan.Transport(nil)
	c.List("c")
	joined := strings.Join(c.AttemptLog(), "\n")
	if !strings.Contains(joined, "rejected (breaker open)") {
		t.Errorf("open rejection line drifted:\n%s", joined)
	}
	if strings.Contains(joined, "half-open probe in flight") {
		t.Errorf("sequential run logged a half-open rejection:\n%s", joined)
	}
}
