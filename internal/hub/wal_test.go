package hub

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// dumpStore renders a store's full logical state (entries, digests, blob
// bytes, quarantine marks) as one canonical string, so two stores can be
// compared byte-for-byte.
func dumpStore(s *Store) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.meta))
	for k := range s.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		e := s.meta[k]
		sum := sha256.Sum256(s.blobs[k])
		fmt.Fprintf(&b, "%s digest=%s size=%d blob=%s quarantined=%v reason=%q\n",
			k, s.digest[k], e.Size, hex.EncodeToString(sum[:]), e.Quarantined, s.quarantined[k])
	}
	return b.String()
}

// copyStateDir clones a durable state directory, truncating the journal
// to cut bytes — the on-disk picture a crash at that instant leaves.
func copyStateDir(t *testing.T, src string, cut int) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == walFileName && cut < len(data) {
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mustBlob marshals a test image.
func mustBlob(t *testing.T, img interface{ Marshal() ([]byte, error) }) []byte {
	t.Helper()
	blob, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestWALCrashPointRecovery is the durability acceptance table: a store
// journals three puts, then the journal is cut at EVERY byte offset —
// simulating a crash between any two bytes of the append stream — and
// each cut must recover to exactly the state of the longest whole-record
// prefix, byte-identical, with the torn tail truncated away.
func TestWALCrashPointRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		blob := mustBlob(t, testImage(fmt.Sprintf("app%d", i), "v1", fmt.Sprintf("payload-%d", i)))
		if _, err := s.Put("coll", fmt.Sprintf("app%d", i), "v1", blob); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, walMagic) {
		t.Fatalf("journal missing magic: %q", raw[:min(16, len(raw))])
	}

	// Record boundaries (absolute offsets just past each whole record).
	recs, goodLen, torn := decodeWALRecords(raw[len(walMagic):])
	if torn || len(recs) != 3 || goodLen != len(raw)-len(walMagic) {
		t.Fatalf("journal not clean: %d records, goodLen %d, torn %v", len(recs), goodLen, torn)
	}

	// Expected state per prefix length: replay the first k records into a
	// fresh store against the same blob files.
	expect := make([]string, 4)
	for k := 0; k <= 3; k++ {
		ref := NewStore()
		for _, rec := range recs[:k] {
			ref.applyWALRecord(dir, rec)
		}
		expect[k] = dumpStore(ref)
	}

	boundaries := []int{len(walMagic)}
	off := len(walMagic)
	for _, rec := range recs {
		enc, err := encodeWALRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		off += len(enc)
		boundaries = append(boundaries, off)
	}
	prefixFor := func(cut int) int {
		k := 0
		for i, b := range boundaries {
			if cut >= b {
				k = i
			}
		}
		return k
	}

	for cut := 0; cut <= len(raw); cut++ {
		crashed := copyStateDir(t, dir, cut)
		rec, report, err := OpenDurable(crashed, DurableOptions{CompactEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		k := 0
		if cut >= len(walMagic) {
			k = prefixFor(cut)
		}
		if got := dumpStore(rec); got != expect[k] {
			t.Fatalf("cut %d: recovered state differs from %d-record prefix:\n got: %s\nwant: %s",
				cut, k, got, expect[k])
		}
		if report.JournalRecords != k {
			t.Errorf("cut %d: replayed %d records, want %d", cut, report.JournalRecords, k)
		}
		// A torn tail must be physically truncated so appends extend a
		// well-formed journal.
		if err := rec.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestWALTornTailTruncatedOnDisk: after a recovery over a torn tail the
// journal file holds exactly the whole-record prefix.
func TestWALTornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("c", "n", "t", mustBlob(t, testImage("n", "t", "v1"))); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, walFileName))
	whole := len(raw)

	// Simulate a crash mid-append: half of a second record's bytes.
	if _, err := s.Put("c", "n2", "t", mustBlob(t, testImage("n2", "t", "v2"))); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(filepath.Join(dir, walFileName))
	cut := whole + (len(raw2)-whole)/2
	crashed := copyStateDir(t, dir, cut)

	rec, report, err := OpenDurable(crashed, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if report.TornBytes != int64(cut-whole) {
		t.Errorf("TornBytes = %d, want %d", report.TornBytes, cut-whole)
	}
	onDisk, _ := os.ReadFile(filepath.Join(crashed, walFileName))
	if !bytes.Equal(onDisk, raw2[:whole]) {
		t.Errorf("journal after recovery is %d bytes, want the %d-byte whole-record prefix", len(onDisk), whole)
	}
	if _, _, ok := rec.Get("c", "n", "t"); !ok {
		t.Error("acknowledged entry lost in recovery")
	}
	if _, _, ok := rec.Get("c", "n2", "t"); ok {
		t.Error("torn (unacknowledged) entry survived recovery")
	}
}

// TestWALGarbageJournalStartsFresh: a journal that does not begin with
// the magic degrades to zero replayed records, not a failed open.
func TestWALGarbageJournalStartsFresh(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("c", "n", "t", mustBlob(t, testImage("n", "t", "v1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // compacts: entry now lives in the snapshot
		t.Fatal(err)
	}
	garbage := []byte("this is not a journal")
	if err := os.WriteFile(filepath.Join(dir, walFileName), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, report, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if report.TornBytes != int64(len(garbage)) {
		t.Errorf("TornBytes = %d, want %d", report.TornBytes, len(garbage))
	}
	if report.SnapshotEntries != 1 || report.JournalRecords != 0 {
		t.Errorf("report = %+v", report)
	}
	if _, _, ok := rec.Get("c", "n", "t"); !ok {
		t.Error("snapshot entry lost")
	}
	onDisk, _ := os.ReadFile(filepath.Join(dir, walFileName))
	if !bytes.Equal(onDisk, walMagic) {
		t.Errorf("journal not reset to magic: %q", onDisk)
	}
}

// TestWALCompaction: crossing the CompactEvery threshold folds the
// journal into the snapshot, resets it, and drops unreferenced blobs.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Re-pushes of the same tag leave orphaned content-addressed blobs
	// for compaction's GC to collect; the 4th put crosses CompactEvery.
	var lastDigest string
	for i := 0; i < 4; i++ {
		d, err := s.Put("c", "app", "latest", mustBlob(t, testImage("app", "latest", fmt.Sprintf("v%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		lastDigest = d
	}
	if _, err := os.Stat(filepath.Join(dir, indexFile)); err != nil {
		t.Fatalf("compaction did not write a snapshot: %v", err)
	}
	onDisk, _ := os.ReadFile(filepath.Join(dir, walFileName))
	if len(onDisk) > len(walMagic)+200 {
		t.Errorf("journal not reset by compaction: %d bytes", len(onDisk))
	}
	scifs, _ := filepath.Glob(filepath.Join(dir, "*.scif"))
	if len(scifs) != 1 {
		t.Errorf("blob GC left %d blobs, want 1: %v", len(scifs), scifs)
	}
	before := dumpStore(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, report, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := dumpStore(rec); got != before {
		t.Errorf("state after compaction+reopen differs:\n got: %s\nwant: %s", got, before)
	}
	if report.JournalRecords != 0 {
		t.Errorf("journal not empty after Close: %d records", report.JournalRecords)
	}
	if _, d, ok := rec.Get("c", "app", "latest"); !ok || d != lastDigest {
		t.Errorf("latest digest = %s, want %s", d, lastDigest)
	}
}

// TestWALDeleteReplay: deletes are journaled and survive a reopen.
func TestWALDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"keep", "drop"} {
		if _, err := s.Put("c", n, "t", mustBlob(t, testImage(n, "t", n))); err != nil {
			t.Fatal(err)
		}
	}
	existed, err := s.Delete("c", "drop", "t")
	if err != nil || !existed {
		t.Fatalf("delete = %v, %v", existed, err)
	}
	if existed, _ := s.Delete("c", "ghost", "t"); existed {
		t.Error("delete of missing entry reported existed")
	}
	rec, report, err := OpenDurable(copyStateDir(t, dir, 1<<30), DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if report.JournalRecords != 3 { // 2 puts + 1 delete
		t.Errorf("replayed %d records, want 3", report.JournalRecords)
	}
	if _, _, ok := rec.Get("c", "keep", "t"); !ok {
		t.Error("kept entry missing after replay")
	}
	if _, _, ok := rec.Get("c", "drop", "t"); ok {
		t.Error("deleted entry resurrected by replay")
	}
}

// TestIdempotentPutSkipsJournal (satellite): re-pushing bytes whose
// digest matches the stored healthy entry writes nothing — no journal
// record, no blob rewrite.
func TestIdempotentPutSkipsJournal(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := mustBlob(t, testImage("app", "v1", "same-bytes"))
	d1, err := s.Put("c", "app", "v1", blob)
	if err != nil {
		t.Fatal(err)
	}
	size1, _ := os.Stat(filepath.Join(dir, walFileName))
	d2, err := s.Put("c", "app", "v1", append([]byte(nil), blob...))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("idempotent put changed digest: %s -> %s", d1, d2)
	}
	size2, _ := os.Stat(filepath.Join(dir, walFileName))
	if size1.Size() != size2.Size() {
		t.Errorf("idempotent re-push grew the journal: %d -> %d bytes", size1.Size(), size2.Size())
	}
	if s.wal.records != 1 {
		t.Errorf("journal records = %d, want 1", s.wal.records)
	}
}

// TestLoadReplaysJournal: the strict Load also sees journal records laid
// down after the last snapshot.
func TestLoadReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("c", "snap", "t", mustBlob(t, testImage("snap", "t", "v1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // "snap" -> snapshot
		t.Fatal(err)
	}
	if _, err := s.Put("c", "tail", "t", mustBlob(t, testImage("tail", "t", "v2"))); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"snap", "tail"} {
		if _, _, ok := loaded.Get("c", n, "t"); !ok {
			t.Errorf("entry %q missing from Load", n)
		}
	}
}

// FuzzWALReplay throws arbitrary bytes at the journal decoder: it must
// never panic, must consume a whole-record prefix only, and the prefix
// it accepts must itself decode cleanly (recovery is a fixpoint).
func FuzzWALReplay(f *testing.F) {
	rec1, err := encodeWALRecord(walRecord{Seq: 1, Op: walPut, Entry: persistedEntry{
		Entry: Entry{Collection: "c", Container: "n", Tag: "t", Digest: "sha256:abc", Size: 3},
		Blob:  "abc.scif",
	}})
	if err != nil {
		f.Fatal(err)
	}
	rec2, err := encodeWALRecord(walRecord{Seq: 2, Op: walDelete, Entry: persistedEntry{
		Entry: Entry{Collection: "c", Container: "n", Tag: "t"},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(rec1)
	f.Add(append(append([]byte{}, rec1...), rec2...))
	f.Add(append(append([]byte{}, rec1...), rec2[:len(rec2)/2]...)) // torn tail
	f.Add(rec1[:7])                                                 // torn mid-header
	f.Add([]byte("\x00\x00\x00\x00junk"))                           // zero-length frame
	f.Add([]byte("\xff\xff\xff\xffgarbage"))                        // absurd length
	corrupt := append([]byte{}, rec1...)
	corrupt[len(corrupt)-1] ^= 0xff // CRC mismatch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, torn := decodeWALRecords(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		if torn && goodLen == len(data) {
			t.Fatal("torn reported with no tail bytes")
		}
		if !torn && goodLen != len(data) {
			t.Fatalf("clean decode left %d bytes unconsumed", len(data)-goodLen)
		}
		// The accepted prefix must be a fixpoint: decoding it again yields
		// the same records and no tear — this is what recovery relies on
		// after truncating the tail.
		recs2, goodLen2, torn2 := decodeWALRecords(data[:goodLen])
		if torn2 || goodLen2 != goodLen || len(recs2) != len(recs) {
			t.Fatalf("prefix not a fixpoint: %d/%d records, %d/%d bytes, torn %v",
				len(recs2), len(recs), goodLen2, goodLen, torn2)
		}
		// Appending a valid record to any accepted prefix must extend the
		// decode by exactly that record.
		extended := append(append([]byte{}, data[:goodLen]...), rec1...)
		recs3, _, torn3 := decodeWALRecords(extended)
		if torn3 || len(recs3) != len(recs)+1 {
			t.Fatalf("append after recovery not decodable: %d records (want %d), torn %v",
				len(recs3), len(recs)+1, torn3)
		}
	})
}
