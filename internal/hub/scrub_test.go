package hub

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// corruptStoredBlob flips one byte of the stored copy of coll/name:tag,
// simulating at-rest corruption (bit rot) behind the store's back. The
// flip lands inside marker (payload content the image digest covers),
// not in tar padding the canonical digest ignores.
func corruptStoredBlob(t *testing.T, s *Store, coll, name, tag, marker string) {
	t.Helper()
	k := key(coll, name, tag)
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[k]
	if !ok || len(blob) == 0 {
		t.Fatalf("no stored blob for %s", k)
	}
	i := bytes.Index(blob, []byte(marker))
	if i < 0 {
		t.Fatalf("marker %q not found in stored blob for %s", marker, k)
	}
	blob[i] ^= 0xff
}

// TestScrubOnceQuarantinesExactlyTheCorruptEntry: of three stored
// entries, flipping one byte in one of them must quarantine exactly that
// entry and leave the others serving.
func TestScrubOnceQuarantinesExactlyTheCorruptEntry(t *testing.T) {
	s := NewStore()
	for _, n := range []string{"alpha", "beta", "gamma"} {
		if _, err := s.Put("c", n, "v1", mustBlob(t, testImage(n, "v1", n+"-payload"))); err != nil {
			t.Fatal(err)
		}
	}
	corruptStoredBlob(t, s, "c", "beta", "v1", "beta-payload")

	reg := obs.NewRegistry()
	report := s.ScrubOnce(reg)
	if report.Checked != 3 || report.Corrupt != 1 {
		t.Errorf("report = %+v, want 3 checked / 1 corrupt", report)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0] != "c/beta:v1" {
		t.Errorf("quarantined = %v, want exactly [c/beta:v1]", report.Quarantined)
	}
	if _, ok := s.QuarantineReason("c", "beta", "v1"); !ok {
		t.Error("corrupt entry not marked quarantined")
	}
	if _, _, ok := s.Get("c", "beta", "v1"); ok {
		t.Error("quarantined blob still served by Get")
	}
	for _, n := range []string{"alpha", "gamma"} {
		if _, _, ok := s.Get("c", n, "v1"); !ok {
			t.Errorf("healthy entry %s not served", n)
		}
	}
	if got := reg.Counter("hub_scrub_blobs_checked_total"); got != 3 {
		t.Errorf("hub_scrub_blobs_checked_total = %v, want 3", got)
	}
	if got := reg.Counter("hub_scrub_corrupt_total"); got != 1 {
		t.Errorf("hub_scrub_corrupt_total = %v, want 1", got)
	}
	if got := reg.Gauge("hub_scrub_quarantined"); got != 1 {
		t.Errorf("hub_scrub_quarantined = %v, want 1", got)
	}

	// A second pass skips the already-quarantined entry and finds nothing
	// new — scrubbing is idempotent.
	second := s.ScrubOnce(reg)
	if second.Checked != 2 || second.Corrupt != 0 || second.Skipped != 1 {
		t.Errorf("second pass = %+v, want 2 checked / 0 corrupt / 1 skipped", second)
	}
	if got := reg.Counter("hub_scrub_runs_total"); got != 2 {
		t.Errorf("hub_scrub_runs_total = %v, want 2", got)
	}
}

// TestRepushRepairsQuarantine: pushing the original bytes again clears
// the quarantine — even though the digest matches the recorded one, the
// idempotent-put shortcut must not skip the repair.
func TestRepushRepairsQuarantine(t *testing.T) {
	s := NewStore()
	blob := mustBlob(t, testImage("app", "v1", "good-payload"))
	d, err := s.Put("c", "app", "v1", blob)
	if err != nil {
		t.Fatal(err)
	}
	corruptStoredBlob(t, s, "c", "app", "v1", "good-payload")
	if r := s.ScrubOnce(nil); r.Corrupt != 1 {
		t.Fatalf("scrub report = %+v", r)
	}

	d2, err := s.Put("c", "app", "v1", blob)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Errorf("repair digest = %s, want %s", d2, d)
	}
	if _, ok := s.QuarantineReason("c", "app", "v1"); ok {
		t.Error("quarantine not cleared by re-push")
	}
	got, gotD, ok := s.Get("c", "app", "v1")
	if !ok || gotD != d {
		t.Fatalf("repaired entry not served: ok=%v digest=%s", ok, gotD)
	}
	if gd, err := blobDigest(got); err != nil || gd != d {
		t.Errorf("repaired bytes fail verification: %s, %v", gd, err)
	}
}

// TestQuarantineSurvivesReopen: on a durable store the quarantine is
// journaled, so a restart (journal replay, healthy blob on disk) still
// refuses to serve the entry.
func TestQuarantineSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("c", "app", "v1", mustBlob(t, testImage("app", "v1", "payload"))); err != nil {
		t.Fatal(err)
	}
	// Corrupt only the in-memory copy: the on-disk blob stays healthy, so
	// only the journaled quarantine record can preserve the verdict.
	corruptStoredBlob(t, s, "c", "app", "v1", "payload")
	if r := s.ScrubOnce(nil); r.Corrupt != 1 {
		t.Fatalf("scrub report = %+v", r)
	}

	// Reopen from disk without Close (crash restart) …
	reopened, _, err := OpenDurable(copyStateDir(t, dir, 1<<30), DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, ok := reopened.QuarantineReason("c", "app", "v1"); !ok {
		t.Error("quarantine lost across journal-replay reopen")
	}

	// … and through a snapshot (Close compacts, then a fresh open).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap, report, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if report.Quarantined != 1 {
		t.Errorf("report.Quarantined = %d, want 1", report.Quarantined)
	}
	if _, ok := snap.QuarantineReason("c", "app", "v1"); !ok {
		t.Error("quarantine lost across snapshot reopen")
	}
	if _, _, ok := snap.Get("c", "app", "v1"); ok {
		t.Error("quarantined entry served after snapshot reopen")
	}
}

// TestScrubberRunsAndStops: the background loop fires on its interval
// and Stop halts it cleanly.
func TestScrubberRunsAndStops(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("c", "app", "v1", mustBlob(t, testImage("app", "v1", "x"))); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sc := StartScrubber(s, time.Millisecond, 42, reg)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("hub_scrub_runs_total") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber never completed two passes")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	after := reg.Counter("hub_scrub_runs_total")
	time.Sleep(10 * time.Millisecond)
	if got := reg.Counter("hub_scrub_runs_total"); got != after {
		t.Errorf("scrubber still running after Stop: %v -> %v", after, got)
	}
}

// TestScrubJitterDeterministic: the jittered delay sequence is a pure
// function of the seed and stays within [0.75, 1.25) of the interval.
func TestScrubJitterDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		sc := &Scrubber{interval: time.Second, jitter: rng.New(seed)}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = sc.nextDelay()
		}
		return out
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs across identical seeds: %s vs %s", i, a[i], b[i])
		}
		if a[i] < 750*time.Millisecond || a[i] >= 1250*time.Millisecond {
			t.Errorf("delay %d = %s outside [0.75s, 1.25s)", i, a[i])
		}
	}
	if c := mk(10); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds produced identical jitter")
	}
}
