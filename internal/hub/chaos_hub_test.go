package hub

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// These are the acceptance scenarios for the durable, self-healing hub:
// every run is pinned to a fixed fault-plan seed, so the exact attempt
// sequence — not just the outcome — is reproducible under -race.

// TestChaosCrashMidJournalRecoversByteIdentical: a hub serving a
// durable store crashes with a torn record at the journal tail. The
// reopened store must be byte-identical to the acknowledged state, the
// torn bytes must be truncated away, and every acknowledged image must
// still pull clean through a fresh server.
func TestChaosCrashMidJournalRecoversByteIdentical(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDurable(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	c := NewClientWithOptions(ts.URL, chaosOptions(3))

	digests := map[string]string{}
	for _, n := range []string{"alpha", "beta", "gamma"} {
		d, err := c.Push("chaos", testImage(n, "v1", n+"-payload"))
		if err != nil {
			t.Fatalf("push %s: %v", n, err)
		}
		digests[n] = d
	}
	ts.Close()
	want := dumpStore(store)

	// Crash: the process dies while appending a fourth record, leaving a
	// plausible length/CRC header and half a payload at the tail.
	crashDir := copyStateDir(t, dir, 1<<30)
	torn := []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, '{', '"', 'S', 'e'}
	f, err := os.OpenFile(filepath.Join(crashDir, walFileName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, report, err := OpenDurable(crashDir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer recovered.Close()
	if report.TornBytes != int64(len(torn)) {
		t.Errorf("report.TornBytes = %d, want %d", report.TornBytes, len(torn))
	}
	if got := dumpStore(recovered); got != want {
		t.Errorf("recovered state differs from acknowledged state:\n--- want\n%s--- got\n%s", want, got)
	}

	ts2 := httptest.NewServer(NewServer(recovered).Handler())
	defer ts2.Close()
	c2 := NewClientWithOptions(ts2.URL, chaosOptions(3))
	for n, d := range digests {
		img, got, err := c2.Pull("chaos", n, "v1", d)
		if err != nil {
			t.Errorf("pull %s after recovery: %v", n, err)
			continue
		}
		if got != d || img == nil {
			t.Errorf("pull %s digest = %s, want %s", n, got, d)
		}
	}
}

// TestChaosTruncateMidChunkResumeIsDeterministic: a fault plan truncates
// the first two blob GETs mid-body. The client must resume from the last
// verified chunk boundary — and because the plan is seeded, two
// independent runs must produce identical attempt logs.
func TestChaosTruncateMidChunkResumeIsDeterministic(t *testing.T) {
	payload := strings.Repeat("resumable chunked payload ", 400) // ~10 KB, many 1 KiB chunks
	run := func() []string {
		store := NewStore()
		img := testImage("pepa", "latest", payload)
		digest, err := store.Put("chaos", "pepa", "latest", mustBlob(t, img))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		srv.ChunkSize = 1024
		srv.EnableFaults(faultinject.NewPlan(33,
			faultinject.Rule{Match: "GET /v1/chaos/pepa", Kind: faultinject.KindTruncate, First: 2},
		))
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		c := NewClientWithOptions(ts.URL, chaosOptions(5))
		_, got, err := c.Pull("chaos", "pepa", "latest", digest)
		if err != nil {
			t.Fatalf("pull never converged: %v", err)
		}
		if got != digest {
			t.Fatalf("digest = %s, want %s", got, digest)
		}
		return c.AttemptLog()
	}

	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("attempt logs diverge across identical seeds:\n--- run 1\n%s\n--- run 2\n%s",
			strings.Join(first, "\n"), strings.Join(second, "\n"))
	}
	log := strings.Join(first, "\n")
	if !strings.Contains(log, "truncated response (transient)") {
		t.Errorf("log missing truncation classification:\n%s", log)
	}
	if !strings.Contains(log, "resuming from verified offset") {
		t.Errorf("log missing chunk resume:\n%s", log)
	}
}

// TestChaosBitRotQuarantineAndRepair: flipping one stored byte must
// quarantine exactly that entry; pulling it fails fast (410 is
// deterministic — one attempt, no retries), siblings keep serving, and
// a re-push repairs the entry in place.
func TestChaosBitRotQuarantineAndRepair(t *testing.T) {
	store := NewStore()
	digests := map[string]string{}
	for _, n := range []string{"alpha", "beta", "gamma"} {
		d, err := store.Put("chaos", n, "v1", mustBlob(t, testImage(n, "v1", n+"-payload")))
		if err != nil {
			t.Fatal(err)
		}
		digests[n] = d
	}
	corruptStoredBlob(t, store, "chaos", "beta", "v1", "beta-payload")

	report := store.ScrubOnce(nil)
	if report.Corrupt != 1 || len(report.Quarantined) != 1 || report.Quarantined[0] != "chaos/beta:v1" {
		t.Fatalf("scrub report = %+v, want exactly chaos/beta:v1 quarantined", report)
	}

	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()
	c := NewClientWithOptions(ts.URL, chaosOptions(3))

	_, _, err := c.Pull("chaos", "beta", "v1", digests["beta"])
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("pull of quarantined entry: err = %v, want ErrQuarantined", err)
	}
	if got := c.AttemptsMatching("quarantined content (deterministic; giving up)"); len(got) != 1 {
		t.Errorf("quarantine give-up lines = %d, want exactly 1 (no retries):\n%s",
			len(got), strings.Join(c.AttemptLog(), "\n"))
	}
	if attempts := c.AttemptsMatching("pull chaos/beta:v1 attempt"); len(attempts) != 1 {
		t.Errorf("pull attempts = %d, want 1 for a deterministic 410", len(attempts))
	}

	for _, n := range []string{"alpha", "gamma"} {
		if _, d, err := c.Pull("chaos", n, "v1", digests[n]); err != nil || d != digests[n] {
			t.Errorf("healthy sibling %s: digest=%s err=%v", n, d, err)
		}
	}

	// Repair: pushing the original image again clears the quarantine.
	if _, err := c.Push("chaos", testImage("beta", "v1", "beta-payload")); err != nil {
		t.Fatalf("repair push: %v", err)
	}
	if _, ok := store.QuarantineReason("chaos", "beta", "v1"); ok {
		t.Error("quarantine not cleared by repair push")
	}
	if _, d, err := c.Pull("chaos", "beta", "v1", digests["beta"]); err != nil || d != digests["beta"] {
		t.Errorf("pull after repair: digest=%s err=%v", d, err)
	}
}
