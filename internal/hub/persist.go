package hub

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsatomic"
)

// Persistence: the registry state lives in a directory holding a
// snapshot index (index.json), one content-addressed blob file per
// image, and an append-only write-ahead journal (journal.wal, see
// wal.go). A durable store (OpenDurable) journals every mutation before
// acknowledging it and periodically compacts the journal into a fresh
// snapshot; replay-on-open recovers from crashes and torn tails. The
// legacy Save/Load pair remains for one-shot snapshot round trips.

// indexFile is the on-disk catalogue name.
const indexFile = "index.json"

// hintsFile persists hinted-handoff records across journal compactions
// (see hints.go); like the index it is rewritten atomically.
const hintsFile = "hints.json"

type persistedEntry struct {
	Entry
	Blob string `json:"blob,omitempty"` // file name within the state directory
}

// DurableOptions tunes OpenDurable. Zero fields use defaults.
type DurableOptions struct {
	// CompactEvery compacts the journal into a snapshot after this many
	// records (default 128; negative disables auto-compaction).
	CompactEvery int
}

// OpenReport summarizes what OpenDurable recovered.
type OpenReport struct {
	SnapshotEntries int   // entries restored from index.json
	JournalRecords  int   // journal records replayed on top
	TornBytes       int64 // torn journal tail bytes truncated
	Quarantined     int   // entries quarantined during recovery
}

// OpenDurable opens (creating if needed) a durable store rooted at dir:
// the snapshot is loaded, the journal is replayed on top (truncating any
// torn tail), and every subsequent Put/Delete/quarantine is journaled
// with an fsync before it is acknowledged. Blobs that fail their digest
// check during recovery are quarantined (served as 410, repairable by
// re-push) rather than aborting startup — a self-healing open.
func OpenDurable(dir string, opts DurableOptions) (*Store, OpenReport, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 128
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, OpenReport{}, err
	}
	var report OpenReport
	s := NewStore()
	if _, err := os.Stat(filepath.Join(dir, indexFile)); err == nil {
		loaded, err := loadSnapshot(dir, false)
		if err != nil {
			return nil, OpenReport{}, err
		}
		s = loaded
		report.SnapshotEntries = len(s.meta)
	}
	w, replay, err := openWAL(dir)
	if err != nil {
		return nil, OpenReport{}, err
	}
	for _, rec := range replay.Records {
		s.applyWALRecord(dir, rec)
	}
	report.JournalRecords = len(replay.Records)
	report.TornBytes = replay.TornBytes
	report.Quarantined = len(s.quarantined)
	s.dir = dir
	s.wal = w
	s.compactEvery = opts.CompactEvery
	// A long journal at open means the last run never compacted; fold it
	// into the snapshot now so replay stays cheap.
	if s.compactEvery > 0 && w.records >= s.compactEvery {
		s.pmu.Lock()
		err := s.compactLocked()
		s.pmu.Unlock()
		if err != nil {
			w.close()
			return nil, OpenReport{}, err
		}
	}
	return s, report, nil
}

// Close flushes the store's durability state: an in-progress journal is
// compacted into a snapshot and closed. On a purely in-memory store it
// is a no-op. Safe to call once; the store must not be mutated after.
func (s *Store) Close() error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.wal == nil {
		return nil
	}
	compactErr := s.compactLocked()
	closeErr := s.wal.close()
	s.wal = nil
	if compactErr != nil {
		return compactErr
	}
	return closeErr
}

// Durable reports whether the store journals its mutations.
func (s *Store) Durable() bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.wal != nil
}

// Compact folds the journal into a fresh snapshot immediately.
func (s *Store) Compact() error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("hub: store is not durable")
	}
	return s.compactLocked()
}

// compactLocked writes a snapshot and resets the journal. Caller holds
// pmu. Crash ordering: the snapshot replaces index.json atomically
// first; a crash before the journal reset merely replays records the
// snapshot already contains, which is idempotent.
func (s *Store) compactLocked() error {
	if err := s.writeSnapshot(s.dir); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.gcBlobs()
	return nil
}

// gcBlobs removes content-addressed blob files no live entry references
// (best effort — a leaked blob wastes space but harms nothing).
func (s *Store) gcBlobs() {
	s.mu.RLock()
	live := make(map[string]bool, len(s.digest))
	for _, d := range s.digest {
		live[blobFileName(d)] = true
	}
	s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".scif") && !live[e.Name()] {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// persistPut makes one put durable before it is applied: the blob file
// is written (fsynced, atomically renamed) and then the journal record
// is appended. force rewrites the blob file even if one with that name
// exists — required when repairing a quarantined entry whose on-disk
// copy may be the corrupt one. Caller holds pmu.
func (s *Store) persistPut(pe persistedEntry, blob []byte, force bool) error {
	path := filepath.Join(s.dir, pe.Blob)
	_, statErr := os.Stat(path)
	if force || statErr != nil {
		if err := fsatomic.WriteFile(path, blob, 0o644); err != nil {
			return fmt.Errorf("hub: saving blob %s: %w", pe.Blob, err)
		}
	}
	return s.wal.append(walPut, pe)
}

// applyWALRecord applies one replayed journal record to the in-memory
// maps (no re-journaling). Put records re-verify their blob bytes; a
// missing or digest-mismatched blob quarantines the entry instead of
// failing the open.
func (s *Store) applyWALRecord(dir string, rec walRecord) {
	pe := rec.Entry
	k := key(pe.Collection, pe.Container, pe.Tag)
	switch rec.Op {
	case walPut:
		blob, err := os.ReadFile(filepath.Join(dir, pe.Blob))
		if err == nil {
			if d, derr := blobDigest(blob); derr == nil && d == pe.Digest {
				s.installEntry(k, pe.Entry, blob)
				return
			}
		}
		pe.Entry.Quarantined = true
		s.installQuarantined(k, pe.Entry, nil, "journal blob failed digest verification")
	case walDelete:
		s.removeEntry(k)
	case walQuarantine:
		s.mu.Lock()
		if e, ok := s.meta[k]; ok {
			e.Quarantined = true
			s.meta[k] = e
			s.quarantined[k] = "quarantined by scrubber"
		}
		s.mu.Unlock()
	case walHintAdd:
		if rec.Hint != nil && rec.Hint.validate() == nil {
			s.mu.Lock()
			s.hints[rec.Hint.hintKey()] = *rec.Hint
			s.mu.Unlock()
		}
	case walHintAck:
		if rec.Hint != nil {
			s.mu.Lock()
			if existing, ok := s.hints[rec.Hint.hintKey()]; ok && existing.Digest == rec.Hint.Digest {
				delete(s.hints, rec.Hint.hintKey())
			}
			s.mu.Unlock()
		}
	}
}

// installEntry replaces the in-memory state for k (clearing quarantine).
// Layered blobs also feed the layer index here, so WAL replay and
// snapshot loads rebuild it for free.
func (s *Store) installEntry(k string, e Entry, blob []byte) {
	s.mu.Lock()
	e.Quarantined = false
	s.blobs[k] = blob
	s.digest[k] = e.Digest
	s.meta[k] = e
	delete(s.quarantined, k)
	s.indexLayersLocked(blob)
	s.mu.Unlock()
}

// installQuarantined installs k as quarantined content: listed, but
// served as 410 until a re-push repairs it.
func (s *Store) installQuarantined(k string, e Entry, blob []byte, reason string) {
	s.mu.Lock()
	e.Quarantined = true
	s.blobs[k] = blob
	s.digest[k] = e.Digest
	s.meta[k] = e
	s.quarantined[k] = reason
	s.mu.Unlock()
}

// removeEntry drops k from the in-memory maps.
func (s *Store) removeEntry(k string) {
	s.mu.Lock()
	delete(s.blobs, k)
	delete(s.digest, k)
	delete(s.meta, k)
	delete(s.quarantined, k)
	s.mu.Unlock()
}

// Save writes a snapshot of the store's contents to dir (created if
// needed). Blobs are content-addressed by digest, so repeated saves
// rewrite only the index and any new blobs. On a durable store prefer
// Compact, which also resets the journal.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return s.writeSnapshot(dir)
}

// writeSnapshot writes every blob file plus the index, atomically.
func (s *Store) writeSnapshot(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var index []persistedEntry
	for k, e := range s.meta {
		blobName := blobFileName(s.digest[k])
		if !e.Quarantined {
			if _, err := os.Stat(filepath.Join(dir, blobName)); err != nil {
				if err := fsatomic.WriteFile(filepath.Join(dir, blobName), s.blobs[k], 0o644); err != nil {
					return fmt.Errorf("hub: saving blob %s: %w", blobName, err)
				}
			}
		}
		index = append(index, persistedEntry{Entry: e, Blob: blobName})
	}
	// Deterministic index order.
	for i := 1; i < len(index); i++ {
		for j := i; j > 0 && indexLess(index[j], index[j-1]); j-- {
			index[j], index[j-1] = index[j-1], index[j]
		}
	}
	data, err := json.MarshalIndent(index, "", "  ")
	if err != nil {
		return err
	}
	// Hints are durable state too: compaction erases their journal
	// records, so the snapshot must carry them. Sorted for determinism.
	hints := make([]Hint, 0, len(s.hints))
	for _, h := range s.hints {
		hints = append(hints, h)
	}
	sort.Slice(hints, func(i, j int) bool { return hints[i].hintKey() < hints[j].hintKey() })
	hintData, err := json.MarshalIndent(hints, "", "  ")
	if err != nil {
		return err
	}
	if err := fsatomic.WriteFile(filepath.Join(dir, hintsFile), hintData, 0o644); err != nil {
		return err
	}
	// fsatomic (tmp + fsync + rename + dir sync) guarantees a crash mid-
	// save leaves either the previous index or the new one, never a torn
	// file — the blobs above get the same treatment, so a restored index
	// never points at a half-written blob.
	return fsatomic.WriteFile(filepath.Join(dir, indexFile), data, 0o644)
}

func indexLess(a, b persistedEntry) bool {
	if a.Collection != b.Collection {
		return a.Collection < b.Collection
	}
	if a.Container != b.Container {
		return a.Container < b.Container
	}
	return a.Tag < b.Tag
}

func blobFileName(digest string) string {
	return strings.TrimPrefix(digest, "sha256:") + ".scif"
}

// loadSnapshot restores a store from dir's index. In strict mode any
// unreadable or digest-mismatched blob is an error; in lenient mode it
// is quarantined and the load continues.
func loadSnapshot(dir string, strict bool) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("hub: reading index: %w", err)
	}
	var index []persistedEntry
	if err := json.Unmarshal(data, &index); err != nil {
		return nil, fmt.Errorf("hub: corrupt index: %w", err)
	}
	s := NewStore()
	for _, pe := range index {
		if strings.Contains(pe.Blob, "/") || strings.Contains(pe.Blob, "..") {
			return nil, fmt.Errorf("hub: suspicious blob path %q in index", pe.Blob)
		}
		k := key(pe.Collection, pe.Container, pe.Tag)
		if pe.Entry.Quarantined {
			s.installQuarantined(k, pe.Entry, nil, "quarantined in snapshot")
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, pe.Blob))
		if err != nil {
			if strict {
				return nil, fmt.Errorf("hub: reading blob for %s/%s:%s: %w", pe.Collection, pe.Container, pe.Tag, err)
			}
			s.installQuarantined(k, pe.Entry, nil, "snapshot blob unreadable")
			continue
		}
		digest, err := blobDigest(blob)
		if err != nil || digest != pe.Digest {
			if strict {
				if err != nil {
					return nil, fmt.Errorf("hub: restoring %s/%s:%s: %w", pe.Collection, pe.Container, pe.Tag, err)
				}
				return nil, fmt.Errorf("hub: blob for %s/%s:%s has digest %s, index says %s (corruption)",
					pe.Collection, pe.Container, pe.Tag, digest, pe.Digest)
			}
			s.installQuarantined(k, pe.Entry, nil, "snapshot blob failed digest verification")
			continue
		}
		s.installEntry(k, pe.Entry, blob)
	}
	loadHints(s, dir)
	return s, nil
}

// loadHints restores hints.json into the store (lenient in every mode:
// hints are recoverable metadata — a peer re-detecting a down owner
// recreates them — so an unreadable file never fails a load).
func loadHints(s *Store, dir string) {
	raw, err := os.ReadFile(filepath.Join(dir, hintsFile))
	if err != nil {
		return
	}
	var hints []Hint
	if err := json.Unmarshal(raw, &hints); err != nil {
		return
	}
	s.mu.Lock()
	for _, h := range hints {
		if h.validate() == nil {
			s.hints[h.hintKey()] = h
		}
	}
	s.mu.Unlock()
}

// Load restores a store from a directory written by Save. Every blob is
// digest-verified on the way in; corruption is reported, not silently
// served. If a journal is present its records are replayed read-only
// (lenient — journal corruption quarantines, never fails the load).
func Load(dir string) (*Store, error) {
	s, err := loadSnapshot(dir, true)
	if err != nil {
		return nil, err
	}
	replayInto(s, dir)
	return s, nil
}

// replayInto applies dir's journal (if any) to s without mutating the
// journal file — the read-only counterpart of OpenDurable's replay.
func replayInto(s *Store, dir string) {
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil || len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != string(walMagic) {
		return
	}
	recs, _, _ := decodeWALRecords(raw[len(walMagic):])
	for _, rec := range recs {
		s.applyWALRecord(dir, rec)
	}
}

// LoadOrNew loads a store from dir if a snapshot or journal exists
// there, otherwise returns an empty store (first run).
func LoadOrNew(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, indexFile)); err == nil {
		return Load(dir)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName)); err == nil {
		s := NewStore()
		replayInto(s, dir)
		return s, nil
	}
	return NewStore(), nil
}
