package hub

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fsatomic"
)

// Persistence: the registry state saves to a directory (an index plus one
// blob file per image, named by digest) and loads back, so `schub serve
// -state DIR` survives restarts — a hub that forgets its collections on
// redeploy would undermine the "containers stay available" premise.

// indexFile is the on-disk catalogue name.
const indexFile = "index.json"

type persistedEntry struct {
	Entry
	Blob string `json:"blob"` // file name within the state directory
}

// Save writes the store's contents to dir (created if needed). Blobs are
// content-addressed by digest, so repeated saves rewrite only the index
// and any new blobs.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var index []persistedEntry
	for k, e := range s.meta {
		blobName := blobFileName(s.digest[k])
		if _, err := os.Stat(filepath.Join(dir, blobName)); err != nil {
			if err := fsatomic.WriteFile(filepath.Join(dir, blobName), s.blobs[k], 0o644); err != nil {
				return fmt.Errorf("hub: saving blob %s: %w", blobName, err)
			}
		}
		index = append(index, persistedEntry{Entry: e, Blob: blobName})
	}
	// Deterministic index order.
	for i := 1; i < len(index); i++ {
		for j := i; j > 0 && indexLess(index[j], index[j-1]); j-- {
			index[j], index[j-1] = index[j-1], index[j]
		}
	}
	data, err := json.MarshalIndent(index, "", "  ")
	if err != nil {
		return err
	}
	// fsatomic (tmp + fsync + rename + dir sync) guarantees a crash mid-
	// save leaves either the previous index or the new one, never a torn
	// file — the blobs above get the same treatment, so a restored index
	// never points at a half-written blob.
	return fsatomic.WriteFile(filepath.Join(dir, indexFile), data, 0o644)
}

func indexLess(a, b persistedEntry) bool {
	if a.Collection != b.Collection {
		return a.Collection < b.Collection
	}
	if a.Container != b.Container {
		return a.Container < b.Container
	}
	return a.Tag < b.Tag
}

func blobFileName(digest string) string {
	return strings.TrimPrefix(digest, "sha256:") + ".scif"
}

// Load restores a store from a directory written by Save. Every blob is
// digest-verified on the way in; corruption is reported, not silently
// served.
func Load(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("hub: reading index: %w", err)
	}
	var index []persistedEntry
	if err := json.Unmarshal(data, &index); err != nil {
		return nil, fmt.Errorf("hub: corrupt index: %w", err)
	}
	s := NewStore()
	for _, pe := range index {
		if strings.Contains(pe.Blob, "/") || strings.Contains(pe.Blob, "..") {
			return nil, fmt.Errorf("hub: suspicious blob path %q in index", pe.Blob)
		}
		blob, err := os.ReadFile(filepath.Join(dir, pe.Blob))
		if err != nil {
			return nil, fmt.Errorf("hub: reading blob for %s/%s:%s: %w", pe.Collection, pe.Container, pe.Tag, err)
		}
		digest, err := s.Put(pe.Collection, pe.Container, pe.Tag, blob)
		if err != nil {
			return nil, fmt.Errorf("hub: restoring %s/%s:%s: %w", pe.Collection, pe.Container, pe.Tag, err)
		}
		if digest != pe.Digest {
			return nil, fmt.Errorf("hub: blob for %s/%s:%s has digest %s, index says %s (corruption)",
				pe.Collection, pe.Container, pe.Tag, digest, pe.Digest)
		}
	}
	return s, nil
}

// LoadOrNew loads a store from dir if an index exists there, otherwise
// returns an empty store (first run).
func LoadOrNew(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, indexFile)); err != nil {
		if os.IsNotExist(err) {
			return NewStore(), nil
		}
		return nil, err
	}
	return Load(dir)
}
