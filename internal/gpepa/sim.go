package gpepa

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/pepa"
	"repro/internal/rng"
)

// SimResult is a stochastic trajectory of the population CTMC underlying a
// GPEPA model, sampled on an even grid by the Gillespie direct method.
type SimResult struct {
	System *FluidSystem
	Times  []float64
	X      [][]float64 // population counts at each grid point
	Jumps  int         // total reactions fired
}

// Simulate runs one exact stochastic trajectory of the grouped population
// CTMC to the horizon, recording state on n+1 evenly spaced sample points.
// The jump process is the exact GPEPA semantics: shared actions fire at
// the min-coupled tree rate and move one component in every synchronizing
// group; independent actions move one component in one group.
func (fs *FluidSystem) Simulate(horizon float64, n int, seed uint64) (*SimResult, error) {
	if horizon <= 0 || n < 1 {
		return nil, fmt.Errorf("gpepa: bad simulation parameters horizon=%g n=%d", horizon, n)
	}
	r := rng.New(seed)
	x := append([]float64(nil), fs.X0...)
	res := &SimResult{System: fs}
	res.Times = make([]float64, n+1)
	res.X = make([][]float64, n+1)
	dt := horizon / float64(n)
	for i := range res.Times {
		res.Times[i] = float64(i) * dt
	}
	res.X[0] = append([]float64(nil), x...)
	nextSample := 1

	t := 0.0
	rates := make([]float64, len(fs.Actions))
	for {
		var total float64
		for i, a := range fs.Actions {
			rates[i] = fs.treeRate(fs.Model.System, a, x)
			total += rates[i]
		}
		if total <= 0 {
			break // absorbed
		}
		t += r.Exp(total)
		for nextSample <= n && res.Times[nextSample] < t {
			res.X[nextSample] = append([]float64(nil), x...)
			nextSample++
		}
		if t >= horizon {
			break
		}
		action := fs.Actions[r.Choose(rates)]
		fs.fire(fs.Model.System, action, x, r)
		res.Jumps++
	}
	for nextSample <= n {
		res.X[nextSample] = append([]float64(nil), x...)
		nextSample++
	}
	fs.Obs.Inc("gpepa_sim_runs_total")
	fs.Obs.Add("gpepa_sim_jumps_total", float64(res.Jumps))
	return res, nil
}

// fire applies one occurrence of the action to the population vector,
// choosing participating components by the semantics' probabilities:
// synchronizing subtrees each fire one component; interleaving subtrees
// are chosen proportionally to their apparent rates.
func (fs *FluidSystem) fire(e GroupExpr, action string, x []float64, r *rng.Source) {
	switch t := e.(type) {
	case *Group:
		// Choose a local transition proportional to x_from * rate.
		trs := fs.transByGrp[t.Label]
		weights := make([]float64, 0, len(trs))
		idxs := make([]int, 0, len(trs))
		for i, tr := range trs {
			if tr.action == action {
				weights = append(weights, x[tr.from]*tr.rate)
				idxs = append(idxs, i)
			}
		}
		if len(weights) == 0 {
			return
		}
		var anyPositive bool
		for _, w := range weights {
			if w > 0 {
				anyPositive = true
				break
			}
		}
		if !anyPositive {
			return
		}
		tr := trs[idxs[r.Choose(weights)]]
		x[tr.from]--
		x[tr.to]++
	case *GroupCoop:
		if pepa.Contains(t.Set, action) {
			fs.fire(t.Left, action, x, r)
			fs.fire(t.Right, action, x, r)
			return
		}
		l := fs.treeRate(t.Left, action, x)
		rr := fs.treeRate(t.Right, action, x)
		if l+rr <= 0 {
			return
		}
		if r.Choose([]float64{l, rr}) == 0 {
			fs.fire(t.Left, action, x, r)
		} else {
			fs.fire(t.Right, action, x, r)
		}
	}
}

// MeanOfSimulations averages k independent trajectories on the shared
// grid, for comparing the stochastic mean against the fluid limit.
// Replications run in parallel (the compiled system is read-only during
// simulation); the reduction runs in replication order, so the result is
// bit-identical regardless of scheduling.
func (fs *FluidSystem) MeanOfSimulations(horizon float64, n int, k int, seed uint64) (*SimResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("gpepa: need at least one replication")
	}
	runs, err := par.Map(k, 0, func(rep int) (*SimResult, error) {
		return fs.Simulate(horizon, n, seed+uint64(rep)*0x9E3779B9)
	})
	if err != nil {
		return nil, err
	}
	fs.Obs.Add("gpepa_sim_replications_total", float64(k))
	acc := &SimResult{System: fs, Times: runs[0].Times, X: make([][]float64, len(runs[0].X))}
	for i := range acc.X {
		acc.X[i] = make([]float64, len(runs[0].X[i]))
	}
	for _, res := range runs {
		for i := range res.X {
			for j := range res.X[i] {
				acc.X[i][j] += res.X[i][j]
			}
		}
		acc.Jumps += res.Jumps
	}
	for i := range acc.X {
		for j := range acc.X[i] {
			acc.X[i][j] /= float64(k)
		}
	}
	return acc, nil
}

// SimEnsemble is the pointwise mean and sample standard deviation of k
// independent population trajectories on a shared grid. The standard
// deviations let callers turn the mean into a confidence band — the
// cross-solver conformance harness compares the fluid ODE solution
// against Mean ± z·Std/√k plus the O(1/√K) mean-field bias allowance.
type SimEnsemble struct {
	System       *FluidSystem
	Times        []float64
	Mean         [][]float64 // Mean[k][i]: mean count of Vars[i] at Times[k]
	Std          [][]float64 // sample standard deviation, same shape
	Replications int
	Jumps        int
}

// EnsembleOfSimulations runs k independent trajectories in parallel and
// reduces them, in replication order, to pointwise means and sample
// standard deviations. Like MeanOfSimulations the result is bit-identical
// for any worker count.
func (fs *FluidSystem) EnsembleOfSimulations(horizon float64, n, k int, seed uint64) (*SimEnsemble, error) {
	if k < 2 {
		return nil, fmt.Errorf("gpepa: ensemble needs at least two replications, got %d", k)
	}
	runs, err := par.Map(k, 0, func(rep int) (*SimResult, error) {
		return fs.Simulate(horizon, n, seed+uint64(rep)*0x9E3779B9)
	})
	if err != nil {
		return nil, err
	}
	fs.Obs.Add("gpepa_sim_replications_total", float64(k))
	ens := &SimEnsemble{
		System:       fs,
		Times:        runs[0].Times,
		Mean:         make([][]float64, len(runs[0].X)),
		Std:          make([][]float64, len(runs[0].X)),
		Replications: k,
	}
	nv := len(fs.Vars)
	for i := range ens.Mean {
		ens.Mean[i] = make([]float64, nv)
		ens.Std[i] = make([]float64, nv)
	}
	sumSq := make([][]float64, len(ens.Mean))
	for i := range sumSq {
		sumSq[i] = make([]float64, nv)
	}
	for _, res := range runs {
		for i := range res.X {
			for j, v := range res.X[i] {
				ens.Mean[i][j] += v
				sumSq[i][j] += v * v
			}
		}
		ens.Jumps += res.Jumps
	}
	kf := float64(k)
	for i := range ens.Mean {
		for j := range ens.Mean[i] {
			m := ens.Mean[i][j] / kf
			ens.Mean[i][j] = m
			// NaN (overflowed sums) clamps like cancellation slack does:
			// ordered comparisons alone would let it through.
			v := (sumSq[i][j] - kf*m*m) / (kf - 1)
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			ens.Std[i][j] = math.Sqrt(v)
		}
	}
	return ens, nil
}

// Series extracts the time series of one local state from a simulation.
func (s *SimResult) Series(group, state string) ([]float64, error) {
	idx, ok := s.System.Index[LocalState{Group: group, State: state}]
	if !ok {
		return nil, fmt.Errorf("gpepa: unknown local state %s:%s", group, state)
	}
	out := make([]float64, len(s.X))
	for k, x := range s.X {
		out[k] = x[idx]
	}
	return out, nil
}
