package gpepa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/par"
	"repro/internal/pepa"
	"repro/internal/rng"
	"repro/internal/runctx"
)

// SimResult is a stochastic trajectory of the population CTMC underlying a
// GPEPA model, sampled on an even grid by the Gillespie direct method.
type SimResult struct {
	System *FluidSystem
	Times  []float64
	X      [][]float64 // population counts at each grid point
	Jumps  int         // total reactions fired
}

// Simulate runs one exact stochastic trajectory of the grouped population
// CTMC to the horizon, recording state on n+1 evenly spaced sample points.
// The jump process is the exact GPEPA semantics: shared actions fire at
// the min-coupled tree rate and move one component in every synchronizing
// group; independent actions move one component in one group.
func (fs *FluidSystem) Simulate(horizon float64, n int, seed uint64) (*SimResult, error) {
	return fs.SimulateCtx(context.Background(), horizon, n, seed)
}

// SimulateCtx is Simulate with cooperative cancellation: ctx is polled
// once per reaction (each reaction evaluates every action's tree rate,
// so the poll is noise). An uncancelled context leaves the jump
// sequence bit-identical to Simulate.
func (fs *FluidSystem) SimulateCtx(ctx context.Context, horizon float64, n int, seed uint64) (*SimResult, error) {
	if horizon <= 0 || n < 1 {
		return nil, fmt.Errorf("gpepa: bad simulation parameters horizon=%g n=%d", horizon, n)
	}
	r := rng.New(seed)
	x := append([]float64(nil), fs.X0...)
	res := &SimResult{System: fs}
	res.Times = make([]float64, n+1)
	res.X = make([][]float64, n+1)
	dt := horizon / float64(n)
	for i := range res.Times {
		res.Times[i] = float64(i) * dt
	}
	res.X[0] = append([]float64(nil), x...)
	nextSample := 1

	t := 0.0
	rates := make([]float64, len(fs.Actions))
	for {
		if cerr := ctx.Err(); cerr != nil {
			runctx.Record(fs.Obs, "gpepa.sim", cerr)
			return nil, runctx.New("gpepa.sim", cerr, res.Jumps, 0, "reactions")
		}
		var total float64
		for i, a := range fs.Actions {
			rates[i] = fs.treeRate(fs.Model.System, a, x)
			total += rates[i]
		}
		if total <= 0 {
			break // absorbed
		}
		t += r.Exp(total)
		for nextSample <= n && res.Times[nextSample] < t {
			res.X[nextSample] = append([]float64(nil), x...)
			nextSample++
		}
		if t >= horizon {
			break
		}
		action := fs.Actions[r.Choose(rates)]
		fs.fire(fs.Model.System, action, x, r)
		res.Jumps++
	}
	for nextSample <= n {
		res.X[nextSample] = append([]float64(nil), x...)
		nextSample++
	}
	fs.Obs.Inc("gpepa_sim_runs_total")
	fs.Obs.Add("gpepa_sim_jumps_total", float64(res.Jumps))
	return res, nil
}

// fire applies one occurrence of the action to the population vector,
// choosing participating components by the semantics' probabilities:
// synchronizing subtrees each fire one component; interleaving subtrees
// are chosen proportionally to their apparent rates.
func (fs *FluidSystem) fire(e GroupExpr, action string, x []float64, r *rng.Source) {
	switch t := e.(type) {
	case *Group:
		// Choose a local transition proportional to x_from * rate.
		trs := fs.transByGrp[t.Label]
		weights := make([]float64, 0, len(trs))
		idxs := make([]int, 0, len(trs))
		for i, tr := range trs {
			if tr.action == action {
				weights = append(weights, x[tr.from]*tr.rate)
				idxs = append(idxs, i)
			}
		}
		if len(weights) == 0 {
			return
		}
		var anyPositive bool
		for _, w := range weights {
			if w > 0 {
				anyPositive = true
				break
			}
		}
		if !anyPositive {
			return
		}
		tr := trs[idxs[r.Choose(weights)]]
		x[tr.from]--
		x[tr.to]++
	case *GroupCoop:
		if pepa.Contains(t.Set, action) {
			fs.fire(t.Left, action, x, r)
			fs.fire(t.Right, action, x, r)
			return
		}
		l := fs.treeRate(t.Left, action, x)
		rr := fs.treeRate(t.Right, action, x)
		if l+rr <= 0 {
			return
		}
		if r.Choose([]float64{l, rr}) == 0 {
			fs.fire(t.Left, action, x, r)
		} else {
			fs.fire(t.Right, action, x, r)
		}
	}
}

// gpepaRep is the per-replication record persisted to the ensemble
// checkpoint: the sampled trajectory and its reaction count. Floats
// round-trip JSON exactly, so resumed reductions are bit-identical.
type gpepaRep struct {
	X     [][]float64 `json:"x"`
	Jumps int         `json:"jumps"`
}

// gpepaRepPayload is the checkpoint payload: completed replications
// keyed by replication index.
type gpepaRepPayload struct {
	Reps map[int]gpepaRep `json:"reps"`
}

// simulateReps runs k replications with independent derived seeds,
// skipping any already present in the checkpoint at ckPath (empty =
// no checkpointing) and persisting each completed replication
// crash-safely. On cancellation it returns a *runctx.ErrCanceled
// counting the completed replications.
func (fs *FluidSystem) simulateReps(ctx context.Context, horizon float64, n, k int, seed uint64, ckPath string) (map[int]gpepaRep, error) {
	reps := make(map[int]gpepaRep, k)
	var (
		ck *checkpoint.File
		mu sync.Mutex
	)
	if ckPath != "" {
		ck = &checkpoint.File{
			Path: ckPath,
			Job:  "gpepa.ensemble",
			Fingerprint: checkpoint.Fingerprint("gpepa.ensemble", fs.Model.String(),
				fmt.Sprintf("horizon=%g n=%d k=%d seed=%d", horizon, n, k, seed)),
			Obs: fs.Obs,
		}
		var saved gpepaRepPayload
		if ok, err := ck.Load(&saved); err != nil {
			return nil, err
		} else if ok && saved.Reps != nil {
			reps = saved.Reps
		}
	}
	err := par.ForEachOpt(k, par.Options{Ctx: ctx}, func(rep int) error {
		mu.Lock()
		_, done := reps[rep]
		mu.Unlock()
		if done {
			return nil
		}
		res, err := fs.SimulateCtx(ctx, horizon, n, seed+uint64(rep)*0x9E3779B9)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		reps[rep] = gpepaRep{X: res.X, Jumps: res.Jumps}
		if ck != nil {
			return ck.Save(gpepaRepPayload{Reps: reps})
		}
		return nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			runctx.Record(fs.Obs, "gpepa.ensemble", cerr)
			return nil, runctx.New("gpepa.ensemble", cerr, len(reps), k, "replications")
		}
		// Deterministic error selection, matching the pre-supervision
		// contract: report the lowest-index failure.
		var merr *par.MultiError
		if errors.As(err, &merr) && len(merr.Errs) > 0 {
			return nil, fmt.Errorf("par: %w", merr.Errs[0])
		}
		return nil, err
	}
	return reps, nil
}

// sampleGrid rebuilds the shared sample times of a k-replication run —
// the same formula Simulate uses, so recomputing it for a resumed
// reduction is bit-identical to reading it off a live trajectory.
func sampleGrid(horizon float64, n int) []float64 {
	times := make([]float64, n+1)
	dt := horizon / float64(n)
	for i := range times {
		times[i] = float64(i) * dt
	}
	return times
}

// MeanOfSimulations averages k independent trajectories on the shared
// grid, for comparing the stochastic mean against the fluid limit.
// Replications run in parallel (the compiled system is read-only during
// simulation); the reduction runs in replication order, so the result is
// bit-identical regardless of scheduling.
func (fs *FluidSystem) MeanOfSimulations(horizon float64, n int, k int, seed uint64) (*SimResult, error) {
	return fs.MeanOfSimulationsCtx(context.Background(), horizon, n, k, seed, "")
}

// MeanOfSimulationsCtx is MeanOfSimulations with cooperative
// cancellation and optional crash-safe checkpointing: a non-empty
// ckPath persists each completed replication, and a rerun under the
// same parameters recomputes only the missing ones, yielding a
// byte-identical mean (docs/RESILIENCE.md).
func (fs *FluidSystem) MeanOfSimulationsCtx(ctx context.Context, horizon float64, n int, k int, seed uint64, ckPath string) (*SimResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("gpepa: need at least one replication")
	}
	runs, err := fs.simulateReps(ctx, horizon, n, k, seed, ckPath)
	if err != nil {
		return nil, err
	}
	fs.Obs.Add("gpepa_sim_replications_total", float64(k))
	acc := &SimResult{System: fs, Times: sampleGrid(horizon, n), X: make([][]float64, n+1)}
	for i := range acc.X {
		acc.X[i] = make([]float64, len(fs.Vars))
	}
	for rep := 0; rep < k; rep++ {
		res := runs[rep]
		for i := range res.X {
			for j := range res.X[i] {
				acc.X[i][j] += res.X[i][j]
			}
		}
		acc.Jumps += res.Jumps
	}
	for i := range acc.X {
		for j := range acc.X[i] {
			acc.X[i][j] /= float64(k)
		}
	}
	return acc, nil
}

// SimEnsemble is the pointwise mean and sample standard deviation of k
// independent population trajectories on a shared grid. The standard
// deviations let callers turn the mean into a confidence band — the
// cross-solver conformance harness compares the fluid ODE solution
// against Mean ± z·Std/√k plus the O(1/√K) mean-field bias allowance.
type SimEnsemble struct {
	System       *FluidSystem
	Times        []float64
	Mean         [][]float64 // Mean[k][i]: mean count of Vars[i] at Times[k]
	Std          [][]float64 // sample standard deviation, same shape
	Replications int
	Jumps        int
}

// EnsembleOfSimulations runs k independent trajectories in parallel and
// reduces them, in replication order, to pointwise means and sample
// standard deviations. Like MeanOfSimulations the result is bit-identical
// for any worker count.
func (fs *FluidSystem) EnsembleOfSimulations(horizon float64, n, k int, seed uint64) (*SimEnsemble, error) {
	return fs.EnsembleOfSimulationsCtx(context.Background(), horizon, n, k, seed, "")
}

// EnsembleOfSimulationsCtx is EnsembleOfSimulations with cooperative
// cancellation and optional crash-safe checkpointing via ckPath (empty
// disables it); see MeanOfSimulationsCtx.
func (fs *FluidSystem) EnsembleOfSimulationsCtx(ctx context.Context, horizon float64, n, k int, seed uint64, ckPath string) (*SimEnsemble, error) {
	if k < 2 {
		return nil, fmt.Errorf("gpepa: ensemble needs at least two replications, got %d", k)
	}
	runs, err := fs.simulateReps(ctx, horizon, n, k, seed, ckPath)
	if err != nil {
		return nil, err
	}
	fs.Obs.Add("gpepa_sim_replications_total", float64(k))
	ens := &SimEnsemble{
		System:       fs,
		Times:        sampleGrid(horizon, n),
		Mean:         make([][]float64, n+1),
		Std:          make([][]float64, n+1),
		Replications: k,
	}
	nv := len(fs.Vars)
	for i := range ens.Mean {
		ens.Mean[i] = make([]float64, nv)
		ens.Std[i] = make([]float64, nv)
	}
	sumSq := make([][]float64, len(ens.Mean))
	for i := range sumSq {
		sumSq[i] = make([]float64, nv)
	}
	for rep := 0; rep < k; rep++ {
		res := runs[rep]
		for i := range res.X {
			for j, v := range res.X[i] {
				ens.Mean[i][j] += v
				sumSq[i][j] += v * v
			}
		}
		ens.Jumps += res.Jumps
	}
	kf := float64(k)
	for i := range ens.Mean {
		for j := range ens.Mean[i] {
			m := ens.Mean[i][j] / kf
			ens.Mean[i][j] = m
			// NaN (overflowed sums) clamps like cancellation slack does:
			// ordered comparisons alone would let it through.
			v := (sumSq[i][j] - kf*m*m) / (kf - 1)
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			ens.Std[i][j] = math.Sqrt(v)
		}
	}
	return ens, nil
}

// Series extracts the time series of one local state from a simulation.
func (s *SimResult) Series(group, state string) ([]float64, error) {
	idx, ok := s.System.Index[LocalState{Group: group, State: state}]
	if !ok {
		return nil, fmt.Errorf("gpepa: unknown local state %s:%s", group, state)
	}
	out := make([]float64, len(s.X))
	for k, x := range s.X {
		out[k] = x[idx]
	}
	return out, nil
}
