package gpepa

import (
	"fmt"
	"math"
)

// This file implements GPAnalyser's reward measures: the client/server
// scalability example "rewards servers for satisfying requests within a
// given time period", which is an accumulated (integrated) action reward
// over the fluid trajectory.

// AccumulatedActionReward integrates the instantaneous rate of an action
// over the trajectory (trapezoidal rule): the expected number of
// completions in [0, T], i.e. the total reward when each completion earns
// one unit.
func (r *FluidResult) AccumulatedActionReward(action string) float64 {
	tp := r.ThroughputSeries(action)
	var total float64
	for k := 1; k < len(r.Times); k++ {
		dt := r.Times[k] - r.Times[k-1]
		total += dt * (tp[k-1] + tp[k]) / 2
	}
	return total
}

// AccumulatedStateReward integrates a weighted sum of local-state
// populations: weights maps LocalState to reward-per-unit-time per
// component in that state (e.g. power draw of an active server).
func (r *FluidResult) AccumulatedStateReward(weights map[LocalState]float64) (float64, error) {
	idx := make(map[int]float64, len(weights))
	for ls, w := range weights {
		i, ok := r.System.Index[ls]
		if !ok {
			return 0, fmt.Errorf("gpepa: reward references unknown local state %s:%s", ls.Group, ls.State)
		}
		idx[i] = w
	}
	var total float64
	instant := func(x []float64) float64 {
		var v float64
		for i, w := range idx {
			v += w * x[i]
		}
		return v
	}
	for k := 1; k < len(r.Times); k++ {
		dt := r.Times[k] - r.Times[k-1]
		total += dt * (instant(r.X[k-1]) + instant(r.X[k])) / 2
	}
	return total, nil
}

// SteadyStateOptions tunes equilibrium detection.
type FluidSteadyOptions struct {
	// Tol is the infinity-norm derivative threshold (default 1e-8,
	// relative to total population).
	Tol float64
	// MaxHorizon bounds the search (default 1e6 time units).
	MaxHorizon float64
	// Step is the probe interval (default 10).
	Step float64
}

// SteadyState integrates until the vector field's infinity norm falls
// below Tol (scaled by the total population), returning the equilibrium
// populations and the time at which they were accepted.
func (fs *FluidSystem) SteadyState(opt FluidSteadyOptions) ([]float64, float64, error) {
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxHorizon <= 0 {
		opt.MaxHorizon = 1e6
	}
	if opt.Step <= 0 {
		opt.Step = 10
	}
	var totalPop float64
	for _, v := range fs.X0 {
		totalPop += v
	}
	if totalPop == 0 {
		return append([]float64(nil), fs.X0...), 0, nil
	}
	scale := opt.Tol * totalPop
	x := append([]float64(nil), fs.X0...)
	dst := make([]float64, len(x))
	t := 0.0
	for t < opt.MaxHorizon {
		fs.Derivative(x, dst)
		var norm float64
		for _, v := range dst {
			if a := math.Abs(v); a > norm {
				norm = a
			}
		}
		if norm < scale {
			return x, t, nil
		}
		// Integrate one probe interval from the current state.
		res, err := fs.solveFrom(x, opt.Step, 8)
		if err != nil {
			return nil, 0, err
		}
		x = res
		t += opt.Step
	}
	return nil, 0, fmt.Errorf("gpepa: no equilibrium within horizon %g", opt.MaxHorizon)
}

// solveFrom integrates the fluid ODE from an arbitrary initial state for a
// span, returning the final state.
func (fs *FluidSystem) solveFrom(x0 []float64, span float64, intervals int) ([]float64, error) {
	saved := fs.X0
	fs.X0 = x0
	defer func() { fs.X0 = saved }()
	res, err := fs.Solve(span, intervals, SolveOptions{})
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res.Final()...), nil
}
