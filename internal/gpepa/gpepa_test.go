package gpepa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// clientServerSrc is the structure of GPAnalyser's bundled
// clientServerScalability.gpepa example: clients cycle through
// request/think, servers cycle through serve/reset, coupled on request.
const clientServerSrc = `
rr = 2.0;    // client request rate
rt = 0.27;   // client think rate
rs = 4.0;    // server service rate
rb = 1.0;    // server reset (bookkeeping) rate

Client = (request, rr).Client_think;
Client_think = (think, rt).Client;

Server = (request, rs).Server_log;
Server_log = (log, rb).Server;

Clients{Client[100]} <request> Servers{Server[10]}
`

func compileClientServer(t *testing.T) *FluidSystem {
	t.Helper()
	m, err := Parse(clientServerSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fs, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return fs
}

func TestParseGroups(t *testing.T) {
	m, err := Parse(clientServerSrc)
	if err != nil {
		t.Fatal(err)
	}
	gs := m.Groups()
	if len(gs) != 2 {
		t.Fatalf("groups = %d, want 2", len(gs))
	}
	if gs[0].Label != "Clients" || gs[0].Seeds[0].Component != "Client" || gs[0].Seeds[0].Count != 100 {
		t.Errorf("first group = %+v", gs[0])
	}
	coop, ok := m.System.(*GroupCoop)
	if !ok {
		t.Fatalf("system is %T", m.System)
	}
	if len(coop.Set) != 1 || coop.Set[0] != "request" {
		t.Errorf("coop set = %v", coop.Set)
	}
}

func TestParseMultiSeedGroup(t *testing.T) {
	m, err := Parse(`
A = (a, 1).B;
B = (b, 1).A;
G{A[3], B[2]}
`)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Groups()[0]
	if len(g.Seeds) != 2 || g.Seeds[1].Count != 2 {
		t.Errorf("seeds = %+v", g.Seeds)
	}
	fs, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.GroupPopulation("G", fs.X0); got != 5 {
		t.Errorf("initial population = %g, want 5", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"G{A[3]}":                         "undefined component",
		"A = (a,1).A; G{A[3]} || G{A[2]}": "duplicate group label",
		"A = (a,1).A; G{}":                "empty group",
		"A = (a,1).A; G{A[3]} trailing":   "trailing tokens",
		"A = (a,1).A;":                    "no system equation",
		"A = (a,1).A; G{A 3}":             "missing brackets",
	}
	for src, why := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad model (%s): %q", why, src)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	m := MustParse(clientServerSrc)
	printed := m.String()
	m2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if m2.String() != printed {
		t.Errorf("print/parse not a fixpoint:\n%s\nvs\n%s", printed, m2.String())
	}
}

func TestCompileVariables(t *testing.T) {
	fs := compileClientServer(t)
	if len(fs.Vars) != 4 {
		t.Fatalf("vars = %v, want 4 local states", fs.Vars)
	}
	if fs.X0[fs.Index[LocalState{Group: "Clients", State: "Client"}]] != 100 {
		t.Errorf("initial clients wrong: %v", fs.X0)
	}
	if len(fs.Actions) != 3 {
		t.Errorf("actions = %v", fs.Actions)
	}
}

func TestCompileRejectsPassive(t *testing.T) {
	_, err := Parse(`
C = (a, T).C;
G{C[5]}
`)
	if err == nil {
		// Parse succeeds (passive is legal syntax); Compile must reject.
		m := MustParse("C = (a, T).C;\nG{C[5]}")
		if _, cerr := Compile(m); cerr == nil {
			t.Error("passive rate accepted by fluid compilation")
		}
		return
	}
	// If Parse rejected it, that is acceptable too, but our grammar allows it.
	t.Logf("parse rejected passive model: %v", err)
}

func TestMassConservationPerGroup(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Solve(50, 100, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		c := fs.GroupPopulation("Clients", res.X[k])
		s := fs.GroupPopulation("Servers", res.X[k])
		if math.Abs(c-100) > 1e-6 {
			t.Errorf("client mass at t=%g: %g", res.Times[k], c)
		}
		if math.Abs(s-10) > 1e-6 {
			t.Errorf("server mass at t=%g: %g", res.Times[k], s)
		}
	}
}

func TestNonNegativity(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Solve(50, 200, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		for i, v := range res.X[k] {
			if v < -1e-6 {
				t.Errorf("negative population %g for %v at t=%g", v, fs.Vars[i], res.Times[k])
			}
		}
	}
}

func TestFluidEquilibriumBalance(t *testing.T) {
	// At equilibrium the request and think flows balance for clients.
	fs := compileClientServer(t)
	res, err := fs.Solve(200, 100, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	dst := make([]float64, len(final))
	fs.Derivative(final, dst)
	for i, v := range dst {
		if math.Abs(v) > 1e-4 {
			t.Errorf("nonzero derivative %g for %v at equilibrium", v, fs.Vars[i])
		}
	}
}

func TestMinCouplingCapsThroughput(t *testing.T) {
	// Server capacity is 10 * rs = 40; client demand is 100 * rr = 200 at
	// t=0, so the coupled request rate must start at 40.
	fs := compileClientServer(t)
	tp := fs.ActionThroughput("request", fs.X0)
	if math.Abs(tp-40) > 1e-9 {
		t.Errorf("initial request throughput = %g, want 40 (server-bound)", tp)
	}
}

func TestScalabilityShape(t *testing.T) {
	// More servers => higher equilibrium request throughput, saturating
	// when clients become the bottleneck (the Fig 5 experiment's shape).
	build := func(servers int) float64 {
		src := strings.Replace(clientServerSrc, "Server[10]", "Server["+itoa(servers)+"]", 1)
		m := MustParse(src)
		fs, err := Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fs.Solve(300, 60, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return fs.ActionThroughput("request", res.Final())
	}
	t5, t20, t80 := build(5), build(20), build(80)
	if !(t5 < t20) {
		t.Errorf("throughput not increasing in servers: 5->%g 20->%g", t5, t20)
	}
	if t80 < t20 {
		t.Errorf("throughput decreased with more servers: 20->%g 80->%g", t20, t80)
	}
	// With 80 servers the clients are the bottleneck; doubling servers
	// again changes little.
	t160 := build(160)
	if math.Abs(t160-t80)/t80 > 0.05 {
		t.Errorf("client-bound regime not saturated: 80->%g 160->%g", t80, t160)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// powerSrc mirrors core.ClientServerPowerGPEPAModel: servers doze into a
// low-power state when idle.
const powerSrc = `
rr = 1.5;
rt = 0.3;
rs = 3.0;
sleep = 0.2;
wake  = 0.8;

Client = (request, rr).Client_think;
Client_think = (think, rt).Client;

Server = (request, rs).Server + (doze, sleep).Server_sleep;
Server_sleep = (wakeup, wake).Server;

Clients{Client[80]} <request> Servers{Server[12]}
`

func TestPowerModelFluidAndReward(t *testing.T) {
	m, err := Parse(powerSrc)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.Solve(100, 200, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Server mass conserved across awake/sleep states.
	for k := range res.Times {
		if got := fs.GroupPopulation("Servers", res.X[k]); got < 12-1e-6 || got > 12+1e-6 {
			t.Fatalf("server mass = %g at t=%g", got, res.Times[k])
		}
	}
	// Power reward: awake servers draw 10 units, sleeping 1 unit.
	power, err := res.AccumulatedStateReward(map[LocalState]float64{
		{Group: "Servers", State: "Server"}:       10,
		{Group: "Servers", State: "Server_sleep"}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if power <= 0 || power > 12*10*100 {
		t.Errorf("accumulated power = %g", power)
	}
	// Some servers must actually doze at equilibrium.
	sleeping, err := res.Series("Servers", "Server_sleep")
	if err != nil {
		t.Fatal(err)
	}
	if sleeping[len(sleeping)-1] <= 0 {
		t.Error("no servers sleeping at equilibrium")
	}
}

func TestSimulationConservesMass(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Simulate(20, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		c := fs.GroupPopulation("Clients", res.X[k])
		if c != 100 {
			t.Errorf("client mass at sample %d: %g", k, c)
		}
	}
	if res.Jumps == 0 {
		t.Error("simulation fired no reactions")
	}
}

func TestSimulationDeterministicBySeed(t *testing.T) {
	fs := compileClientServer(t)
	a, err := fs.Simulate(10, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Simulate(10, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Jumps != b.Jumps {
		t.Fatalf("jump counts differ: %d vs %d", a.Jumps, b.Jumps)
	}
	for k := range a.X {
		for i := range a.X[k] {
			if a.X[k][i] != b.X[k][i] {
				t.Fatalf("trajectories diverge at sample %d", k)
			}
		}
	}
}

func TestFluidApproximatesStochasticMean(t *testing.T) {
	fs := compileClientServer(t)
	fluid, err := fs.Solve(30, 30, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := fs.MeanOfSimulations(30, 30, 40, 2019)
	if err != nil {
		t.Fatal(err)
	}
	idx := fs.Index[LocalState{Group: "Clients", State: "Client_think"}]
	for k := range fluid.Times {
		f := fluid.X[k][idx]
		s := mean.X[k][idx]
		// Mean-field error is O(1/sqrt(N·k)); allow a generous band.
		if math.Abs(f-s) > 8 {
			t.Errorf("t=%g: fluid %g vs stochastic mean %g", fluid.Times[k], f, s)
		}
	}
}

func TestSeriesAndThroughputSeries(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Solve(10, 10, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Series("Clients", "Client")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 11 || s[0] != 100 {
		t.Errorf("series = %v", s[:3])
	}
	if _, err := res.Series("Nope", "X"); err == nil {
		t.Error("unknown series accepted")
	}
	tp := res.ThroughputSeries("request")
	if len(tp) != 11 || tp[0] != 40 {
		t.Errorf("throughput series start = %g, want 40", tp[0])
	}
}

func TestSolveBadInputs(t *testing.T) {
	fs := compileClientServer(t)
	if _, err := fs.Solve(0, 10, SolveOptions{}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := fs.Solve(10, 0, SolveOptions{}); err == nil {
		t.Error("zero intervals accepted")
	}
	if _, err := fs.Simulate(-1, 10, 1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestFluidMassConservationProperty(t *testing.T) {
	// Property: for random rate assignments the derivative sums to zero
	// within each group (mass conservation of the vector field).
	f := func(aRaw, bRaw, cRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 10) + 0.1
		b := math.Mod(math.Abs(bRaw), 10) + 0.1
		c := math.Mod(math.Abs(cRaw), 10) + 0.1
		src := "ra = " + ftoa(a) + "; rb = " + ftoa(b) + "; rc = " + ftoa(c) + ";\n" +
			"C = (req, ra).D; D = (thk, rb).C;\n" +
			"S = (req, rc).S1; S1 = (log, 1).S;\n" +
			"G1{C[50]} <req> G2{S[5]}"
		m, err := Parse(src)
		if err != nil {
			return false
		}
		fs, err := Compile(m)
		if err != nil {
			return false
		}
		dst := make([]float64, len(fs.X0))
		fs.Derivative(fs.X0, dst)
		var g1, g2 float64
		for i, v := range dst {
			if fs.Vars[i].Group == "G1" {
				g1 += v
			} else {
				g2 += v
			}
		}
		return math.Abs(g1) < 1e-9 && math.Abs(g2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func ftoa(v float64) string {
	// Render with fixed precision to stay lexer-friendly.
	i := int(v * 1000)
	return itoa(i/1000) + "." + pad3(i%1000)
}

func pad3(n int) string {
	s := itoa(n)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
