package gpepa

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestInstrumentationNeutrality: stochastic ensembles must be
// bit-identical with and without a metrics registry attached.
func TestInstrumentationNeutrality(t *testing.T) {
	bare := compileClientServer(t)
	instr := compileClientServer(t)
	instr.Obs = obs.NewRegistry()

	ensA, err := bare.EnsembleOfSimulations(5, 20, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	ensB, err := instr.EnsembleOfSimulations(5, 20, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ensA.Mean, ensB.Mean) || !reflect.DeepEqual(ensA.Std, ensB.Std) {
		t.Error("ensemble mean/std differ with instrumentation")
	}
	if ensA.Jumps != ensB.Jumps {
		t.Errorf("jump counts differ: %d vs %d", ensA.Jumps, ensB.Jumps)
	}
	if got := instr.Obs.Counter("gpepa_sim_replications_total"); got != 4 {
		t.Errorf("gpepa_sim_replications_total = %g, want 4", got)
	}
	if got := instr.Obs.Counter("gpepa_sim_runs_total"); got != 4 {
		t.Errorf("gpepa_sim_runs_total = %g, want 4", got)
	}
}
