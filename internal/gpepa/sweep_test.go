package gpepa

import (
	"math"
	"testing"
)

func TestScalabilitySweepShape(t *testing.T) {
	m := MustParse(clientServerSrc)
	counts := []float64{2, 5, 10, 20, 40, 80, 160}
	points, err := ScalabilitySweep(m, "Servers", "Server", counts, 300, "request")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(counts) {
		t.Fatalf("points = %d", len(points))
	}
	// Server-bound regime: throughput ~ servers * rs * (rb/(rs+rb))
	// utilisation factor; must increase monotonically before saturation.
	for i := 1; i < 4; i++ {
		if points[i].Throughput <= points[i-1].Throughput {
			t.Errorf("throughput not increasing at count=%g", counts[i])
		}
	}
	// Client-bound regime: doubling servers changes little.
	last, prev := points[len(points)-1].Throughput, points[len(points)-2].Throughput
	if math.Abs(last-prev)/prev > 0.05 {
		t.Errorf("no saturation: %g -> %g", prev, last)
	}
	knee := Saturation(points, 0.01)
	if knee < 0 {
		t.Error("Saturation found no knee")
	}
	if counts[knee] < 20 || counts[knee] > 160 {
		t.Errorf("knee at count=%g, expected between 20 and 160", counts[knee])
	}
}

func TestScalabilitySweepDoesNotMutateModel(t *testing.T) {
	m := MustParse(clientServerSrc)
	before := m.System.String()
	if _, err := ScalabilitySweep(m, "Servers", "Server", []float64{3, 6}, 50, "request"); err != nil {
		t.Fatal(err)
	}
	if m.System.String() != before {
		t.Error("sweep mutated the model's system equation")
	}
}

func TestScalabilitySweepErrors(t *testing.T) {
	m := MustParse(clientServerSrc)
	if _, err := ScalabilitySweep(m, "Servers", "Server", nil, 50, "request"); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := ScalabilitySweep(m, "Servers", "Server", []float64{1}, 0, "request"); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ScalabilitySweep(m, "Servers", "Server", []float64{-1}, 50, "request"); err == nil {
		t.Error("negative population accepted")
	}
	if _, err := ScalabilitySweep(m, "Ghost", "Server", []float64{1}, 50, "request"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := ScalabilitySweep(m, "Servers", "Ghost", []float64{1}, 50, "request"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestSaturationEdgeCases(t *testing.T) {
	climbing := []SweepPoint{{Throughput: 1}, {Throughput: 2}, {Throughput: 4}}
	if got := Saturation(climbing, 0.01); got != -1 {
		t.Errorf("climbing sweep knee = %d, want -1", got)
	}
	flat := []SweepPoint{{Throughput: 5}, {Throughput: 5.001}}
	if got := Saturation(flat, 0.01); got != 1 {
		t.Errorf("flat sweep knee = %d, want 1", got)
	}
}

func TestScalabilitySweepWorkersBitIdentical(t *testing.T) {
	m := MustParse(clientServerSrc)
	counts := []float64{2, 5, 10, 20}
	ref, err := ScalabilitySweepWorkers(m, "Servers", "Server", counts, 100, "request", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := ScalabilitySweepWorkers(m, "Servers", "Server", counts, 100, "request", workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Float64bits(got[i].Throughput) != math.Float64bits(ref[i].Throughput) {
				t.Fatalf("workers=%d: throughput diverged at count=%g", workers, counts[i])
			}
			for j := range ref[i].Final {
				if math.Float64bits(got[i].Final[j]) != math.Float64bits(ref[i].Final[j]) {
					t.Fatalf("workers=%d: final populations diverged at count=%g", workers, counts[i])
				}
			}
		}
	}
}
