package gpepa

import "testing"

// FuzzParse checks the GPEPA parser never panics; compilable models must
// also compile without panicking.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		clientServerSrc,
		"A = (a, 1).A;\nG{A[3]}",
		"A = (a, 1).B; B = (b, 2).A;\nG{A[3], B[2]}",
		"A = (a, 1).A; B = (a, 2).B;\nG{A[5]} <a> H{B[2]}",
		"A = (a, 1).A;\nG{A[5]} || H{A[2]}",
		"A = (a, 1).A;\n(G{A[5]} <a> H{A[2]}) <a> K{A[1]}",
		"G{A[3]}",
		"A = (a, T).A;\nG{A[3]}",
		"A = (a, 1).A;\nG{}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		printed := m.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparsable output: %v\nprinted:\n%s", err, printed)
		}
		if m2.String() != printed {
			t.Fatalf("print/parse not a fixpoint for %q", src)
		}
		if fs, err := Compile(m); err == nil {
			// A compiled system must produce a finite derivative.
			dst := make([]float64, len(fs.X0))
			fs.Derivative(fs.X0, dst)
		}
	})
}
