package gpepa

import (
	"math"
	"testing"
)

func TestAccumulatedActionReward(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Solve(100, 200, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := res.AccumulatedActionReward("request")
	// Request throughput starts at 40 (server-bound) and relaxes to the
	// equilibrium; the integral over 100 time units must be positive and
	// below the 40/unit upper bound.
	if total <= 0 || total > 40*100 {
		t.Errorf("accumulated reward = %g", total)
	}
	// Longer horizon accumulates more reward.
	res2, err := fs.Solve(200, 400, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.AccumulatedActionReward("request"); got <= total {
		t.Errorf("reward not increasing with horizon: %g then %g", total, got)
	}
}

func TestAccumulatedRewardMatchesEquilibriumRate(t *testing.T) {
	// Once equilibrated, reward accrues at equilibrium throughput; compare
	// the increment over [T, 2T] with rate*T.
	fs := compileClientServer(t)
	resA, err := fs.Solve(300, 600, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := fs.Solve(600, 1200, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	increment := resB.AccumulatedActionReward("request") - resA.AccumulatedActionReward("request")
	eqRate := fs.ActionThroughput("request", resB.Final())
	if math.Abs(increment-eqRate*300)/(eqRate*300) > 0.01 {
		t.Errorf("increment %g vs equilibrium rate*T %g", increment, eqRate*300)
	}
}

func TestAccumulatedStateReward(t *testing.T) {
	fs := compileClientServer(t)
	res, err := fs.Solve(50, 100, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// "Power draw": 1 unit per busy (logging) server per time unit.
	reward, err := res.AccumulatedStateReward(map[LocalState]float64{
		{Group: "Servers", State: "Server_log"}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reward <= 0 || reward > 10*50 {
		t.Errorf("state reward = %g", reward)
	}
	if _, err := res.AccumulatedStateReward(map[LocalState]float64{{Group: "X", State: "Y"}: 1}); err == nil {
		t.Error("unknown local state accepted")
	}
}

func TestFluidSteadyState(t *testing.T) {
	fs := compileClientServer(t)
	x, tEq, err := fs.SteadyState(FluidSteadyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tEq <= 0 {
		t.Errorf("equilibrium time = %g", tEq)
	}
	// The derivative must vanish at the reported equilibrium.
	dst := make([]float64, len(x))
	fs.Derivative(x, dst)
	for i, v := range dst {
		if math.Abs(v) > 1e-4 {
			t.Errorf("derivative[%d] = %g at claimed equilibrium", i, v)
		}
	}
	// Mass is conserved at equilibrium.
	if got := fs.GroupPopulation("Clients", x); math.Abs(got-100) > 1e-6 {
		t.Errorf("client mass at equilibrium = %g", got)
	}
	// The equilibrium matches a long fixed-horizon solve.
	res, err := fs.Solve(500, 100, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	for i := range x {
		if math.Abs(x[i]-final[i]) > 0.01 {
			t.Errorf("equilibrium[%d] = %g vs long-run %g", i, x[i], final[i])
		}
	}
}

func TestFluidSteadyStateHorizonExhaustion(t *testing.T) {
	// A pure drift system (one-way counter) never equilibrates... all our
	// models conserve mass, so emulate by tiny horizon instead.
	fs := compileClientServer(t)
	if _, _, err := fs.SteadyState(FluidSteadyOptions{Tol: 1e-15, MaxHorizon: 0.5, Step: 0.2}); err == nil {
		t.Error("expected horizon exhaustion with impossible tolerance")
	}
}
