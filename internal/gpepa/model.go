// Package gpepa implements Grouped PEPA (Hayden & Bradley) and the fluid
// (mean-field) analysis of the GPAnalyser tool: component groups G{C[n]},
// labelled cooperation between groups, generation of the mean-field ODE
// system with min-coupled apparent rates, and an exact population-CTMC
// stochastic simulator for validation.
//
// GPEPA replaces the underlying CTMC of a PEPA model with a system of
// differential equations over component counts, which is what lets
// GPAnalyser evaluate models with ~10^129 discrete states (the paper's
// §II.A). Sequential component definitions reuse the PEPA syntax from
// internal/pepa; only the system equation differs, using group constructs:
//
//	Clients{Client[100]} <request> Servers{Server[10]}
package gpepa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pepa"
)

// GroupExpr is a node of the grouped system equation: either a Group leaf
// or a cooperation between two grouped subsystems.
type GroupExpr interface {
	String() string
	isGroupExpr()
}

// Group is a labelled group holding counts of sequential components.
type Group struct {
	Label string
	// Seeds maps component constant names to their initial counts, in
	// declaration order.
	Seeds []Seed
}

// Seed is one "C[n]" entry of a group.
type Seed struct {
	Component string
	Count     float64
}

// GroupCoop is cooperation between grouped subsystems over an action set.
type GroupCoop struct {
	Left, Right GroupExpr
	Set         []string // sorted, deduplicated
}

func (*Group) isGroupExpr()     {}
func (*GroupCoop) isGroupExpr() {}

func (g *Group) String() string {
	var b strings.Builder
	b.WriteString(g.Label)
	b.WriteByte('{')
	for i, s := range g.Seeds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[%g]", s.Component, s.Count)
	}
	b.WriteByte('}')
	return b.String()
}

func (c *GroupCoop) String() string {
	return c.Left.String() + " <" + strings.Join(c.Set, ",") + "> " + c.Right.String()
}

// Model is a parsed GPEPA model: PEPA sequential definitions plus a grouped
// system equation.
type Model struct {
	Defs   *pepa.Model // component and rate definitions (its System is unused)
	System GroupExpr
}

// String renders the model in concrete syntax.
func (m *Model) String() string {
	var b strings.Builder
	for _, name := range m.Defs.RateOrder {
		fmt.Fprintf(&b, "%s = %g;\n", name, m.Defs.Rates[name])
	}
	for _, name := range m.Defs.DefOrder {
		fmt.Fprintf(&b, "%s = %s;\n", name, m.Defs.Defs[name].Body.String())
	}
	b.WriteString(m.System.String())
	b.WriteByte('\n')
	return b.String()
}

// Groups returns the group leaves of the system in left-to-right order.
func (m *Model) Groups() []*Group {
	var out []*Group
	var visit func(GroupExpr)
	visit = func(e GroupExpr) {
		switch t := e.(type) {
		case *Group:
			out = append(out, t)
		case *GroupCoop:
			visit(t.Left)
			visit(t.Right)
		}
	}
	visit(m.System)
	return out
}

// Parse parses a GPEPA model: PEPA-style rate and component definitions
// followed by a grouped system equation.
func Parse(src string) (*Model, error) {
	toks, err := pepa.LexAll(src)
	if err != nil {
		return nil, err
	}
	// Split the token stream at the start of the system equation: the first
	// position where an IDENT is followed by '{' at statement start. All
	// statements before it are PEPA definitions (each ends in ';').
	sysStart := -1
	depth := 0
	stmtStart := 0
	for i := 0; i < len(toks); i++ {
		switch toks[i].Kind {
		case pepa.TokSemi:
			if depth == 0 {
				stmtStart = i + 1
			}
		case pepa.TokLParen:
			depth++
		case pepa.TokRParen:
			depth--
		case pepa.TokLBrace:
			// A '{' not preceded by '/' (hiding) begins a group.
			if i > 0 && toks[i-1].Kind == pepa.TokIdent && (i < 2 || toks[i-2].Kind != pepa.TokSlash) {
				sysStart = stmtStart
			}
		}
		if sysStart >= 0 {
			break
		}
	}
	if sysStart < 0 {
		return nil, fmt.Errorf("gpepa: no grouped system equation found (expected Label{Component[count]} ...)")
	}
	// Reconstruct the definitions source from the original text span is
	// fragile; instead re-lex by slicing tokens and re-rendering. Simpler:
	// parse defs by running the PEPA parser over the source up to the
	// system tokens' first position.
	defEnd := toks[sysStart]
	defsSrc := srcPrefixBefore(src, defEnd.Line, defEnd.Col)
	defs, err := pepa.Parse(defsSrc)
	if err != nil {
		return nil, fmt.Errorf("gpepa: parsing definitions: %w", err)
	}
	gp := &groupParser{toks: toks[sysStart:]}
	system, err := gp.parseExpr()
	if err != nil {
		return nil, err
	}
	if !gp.at(pepa.TokEOF) && !gp.at(pepa.TokSemi) {
		return nil, gp.errHere("unexpected trailing input after system equation")
	}
	m := &Model{Defs: defs, System: system}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Model {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// srcPrefixBefore returns the portion of src strictly before (line, col),
// with line and col 1-based.
func srcPrefixBefore(src string, line, col int) string {
	curLine, curCol := 1, 1
	for i, r := range src {
		if curLine == line && curCol == col {
			return src[:i]
		}
		if r == '\n' {
			curLine++
			curCol = 1
		} else {
			curCol++
		}
	}
	return src
}

type groupParser struct {
	toks []pepa.Token
	pos  int
}

func (p *groupParser) cur() pepa.Token          { return p.toks[p.pos] }
func (p *groupParser) at(k pepa.TokenKind) bool { return p.toks[p.pos].Kind == k }

func (p *groupParser) next() pepa.Token {
	t := p.toks[p.pos]
	if t.Kind != pepa.TokEOF {
		p.pos++
	}
	return t
}

func (p *groupParser) expect(k pepa.TokenKind) error {
	if !p.at(k) {
		return p.errHere("expected %s, found %q", k, p.cur().Text)
	}
	p.next()
	return nil
}

func (p *groupParser) errHere(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("gpepa: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// parseExpr := term ( ('<' actions '>' | '||') term )*
func (p *groupParser) parseExpr() (GroupExpr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(pepa.TokLAngle):
			p.next()
			var set []string
			for !p.at(pepa.TokRAngle) {
				t := p.next()
				if t.Kind != pepa.TokIdent {
					return nil, p.errHere("expected action name in cooperation set")
				}
				set = append(set, t.Text)
				if p.at(pepa.TokComma) {
					p.next()
				}
			}
			p.next() // '>'
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &GroupCoop{Left: left, Right: right, Set: pepa.NormalizeSet(set)}
		case p.at(pepa.TokParallel):
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &GroupCoop{Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

// parseTerm := IDENT '{' seeds '}' | '(' expr ')'
func (p *groupParser) parseTerm() (GroupExpr, error) {
	if p.at(pepa.TokLParen) {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(pepa.TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	label := p.next()
	if label.Kind != pepa.TokIdent {
		return nil, p.errHere("expected group label")
	}
	if err := p.expect(pepa.TokLBrace); err != nil {
		return nil, err
	}
	g := &Group{Label: label.Text}
	for {
		comp := p.next()
		if comp.Kind != pepa.TokIdent {
			return nil, p.errHere("expected component name in group %q", g.Label)
		}
		if err := p.expect(pepa.TokLBracket); err != nil {
			return nil, err
		}
		count := p.next()
		if count.Kind != pepa.TokNumber {
			return nil, p.errHere("expected component count for %s in group %q", comp.Text, g.Label)
		}
		if err := p.expect(pepa.TokRBracket); err != nil {
			return nil, err
		}
		g.Seeds = append(g.Seeds, Seed{Component: comp.Text, Count: count.Num})
		if p.at(pepa.TokComma) {
			p.next()
			continue
		}
		if err := p.expect(pepa.TokRBrace); err != nil {
			return nil, err
		}
		return g, nil
	}
}

// Validate checks that every seeded component is defined, sequential, and
// that counts are positive.
func (m *Model) validate() error {
	for _, g := range m.Groups() {
		if len(g.Seeds) == 0 {
			return fmt.Errorf("gpepa: group %q has no components", g.Label)
		}
		for _, s := range g.Seeds {
			if _, ok := m.Defs.Defs[s.Component]; !ok {
				return fmt.Errorf("gpepa: group %q seeds undefined component %q", g.Label, s.Component)
			}
			if s.Count < 0 {
				return fmt.Errorf("gpepa: group %q component %q has negative count %g", g.Label, s.Component, s.Count)
			}
		}
	}
	labels := map[string]bool{}
	for _, g := range m.Groups() {
		if labels[g.Label] {
			return fmt.Errorf("gpepa: duplicate group label %q", g.Label)
		}
		labels[g.Label] = true
	}
	return nil
}

// sortedActions returns the union of cooperation-set actions in the system.
func (m *Model) coopActions() []string {
	set := map[string]bool{}
	var visit func(GroupExpr)
	visit = func(e GroupExpr) {
		if c, ok := e.(*GroupCoop); ok {
			for _, a := range c.Set {
				set[a] = true
			}
			visit(c.Left)
			visit(c.Right)
		}
	}
	visit(m.System)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
